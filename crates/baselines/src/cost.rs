//! AWS instance pricing and iso-cost normalization (paper §6.3).
//!
//! The paper compares throughput **per dollar**: CPU numbers come from a
//! `c4.8xlarge` ($1.591/h), GPU numbers from a `p3.2xlarge` ($3.06/h), and
//! DP-HLS from an `f1.2xlarge` ($1.650/h); all throughputs are scaled to the
//! F1 instance's cost before comparison.

/// An AWS EC2 instance type with its on-demand price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instance {
    /// Instance name.
    pub name: &'static str,
    /// On-demand price in USD per hour (paper §6.3 values).
    pub usd_per_hour: f64,
}

/// The FPGA instance DP-HLS runs on.
pub const F1_2XLARGE: Instance = Instance {
    name: "f1.2xlarge",
    usd_per_hour: 1.650,
};

/// The CPU baseline instance (36-core, 60 GB).
pub const C4_8XLARGE: Instance = Instance {
    name: "c4.8xlarge",
    usd_per_hour: 1.591,
};

/// The GPU baseline instance (NVIDIA Tesla V100).
pub const P3_2XLARGE: Instance = Instance {
    name: "p3.2xlarge",
    usd_per_hour: 3.06,
};

/// Scales a throughput measured on `from` to what the same dollar buys on
/// `to` — the paper's iso-cost normalization.
///
/// # Example
///
/// ```
/// use dphls_baselines::cost::{iso_cost, F1_2XLARGE, P3_2XLARGE};
/// // A GPU throughput of 3.06e5 aln/s costs $3.06/h; at the F1's $1.65/h
/// // the same dollar buys 1.65e5 aln/s.
/// let t = iso_cost(3.06e5, P3_2XLARGE, F1_2XLARGE);
/// assert!((t - 1.65e5).abs() < 1.0);
/// ```
pub fn iso_cost(throughput: f64, from: Instance, to: Instance) -> f64 {
    throughput * to.usd_per_hour / from.usd_per_hour
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prices() {
        assert_eq!(F1_2XLARGE.usd_per_hour, 1.650);
        assert_eq!(C4_8XLARGE.usd_per_hour, 1.591);
        assert_eq!(P3_2XLARGE.usd_per_hour, 3.06);
    }

    #[test]
    fn cpu_to_f1_is_nearly_identity() {
        // $1.591 vs $1.650: within 4%, the paper treats them as comparable.
        let t = iso_cost(1e6, C4_8XLARGE, F1_2XLARGE);
        assert!((t / 1e6 - 1.0).abs() < 0.05);
    }

    #[test]
    fn gpu_normalization_shrinks() {
        let t = iso_cost(1e6, P3_2XLARGE, F1_2XLARGE);
        assert!(t < 0.6e6);
    }

    #[test]
    fn identity_roundtrip() {
        let t = iso_cost(
            iso_cost(5e5, P3_2XLARGE, F1_2XLARGE),
            F1_2XLARGE,
            P3_2XLARGE,
        );
        assert!((t - 5e5).abs() < 1e-6);
    }
}
