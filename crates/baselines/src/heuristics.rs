//! Adaptive search-space pruning heuristics (paper §2.2.4, Fig 1's
//! "Adaptive Banded Alignment" variation): the fixed band of kernels
//! #11–#13 is the hardware-friendly pruning DP-HLS ships; the paper lists
//! **adaptive banding** and **X-Drop** (Darwin-WGA \[12\], LOGAN \[4\]) as the
//! adaptive alternatives. This module implements both at the algorithm
//! level, so the band-policy ablation can quantify what the adaptive
//! variants buy over the fixed band — the paper's stated future-work
//! direction for the framework.

use dphls_kernels::LinearParams;
use dphls_seq::Base;

const NEG: i32 = i32::MIN / 4;

/// Result of a pruned alignment: the score plus how much of the matrix was
/// actually computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrunedRun {
    /// Best score under the heuristic (≤ the exact score).
    pub score: i32,
    /// Interior cells computed.
    pub cells: u64,
}

/// Global alignment with an **adaptive band**: a fixed-width window per row
/// whose center follows the best-scoring column of the previous row
/// (the Suzuki–Kasahara-style band used by nanopore aligners).
///
/// With `width ≥` the true alignment's diagonal drift this recovers the
/// exact global score while computing `O(width × Q)` cells.
///
/// # Panics
///
/// Panics if `width` is zero or either sequence is empty.
pub fn adaptive_banded_nw(
    q: &[Base],
    r: &[Base],
    p: &LinearParams<i32>,
    width: usize,
) -> PrunedRun {
    assert!(width > 0, "band width must be non-zero");
    assert!(
        !q.is_empty() && !r.is_empty(),
        "sequences must be non-empty"
    );
    let n = r.len();
    // row holds H(i, j) for the previous row over 0..=n; out-of-band = NEG.
    let mut prev: Vec<i32> = (0..=n).map(|j| j as i32 * p.gap).collect();
    let mut cells = 0u64;
    let mut center = 0usize; // best column of the previous row
    for (i, &qc) in q.iter().enumerate() {
        let lo = center.saturating_sub(width).max(1);
        let hi = (center + width + 1).min(n);
        let mut cur = vec![NEG; n + 1];
        cur[0] = if i < width {
            (i as i32 + 1) * p.gap
        } else {
            NEG
        };
        let mut best_col = lo;
        let mut best_val = NEG;
        for j in lo..=hi {
            let sub = p.substitution(qc == r[j - 1]);
            let m = (prev[j - 1] + sub)
                .max(prev[j] + p.gap)
                .max(cur[j - 1] + p.gap);
            cur[j] = m;
            cells += 1;
            if m > best_val {
                best_val = m;
                best_col = j;
            }
        }
        center = best_col;
        prev = cur;
    }
    PrunedRun {
        score: prev[n],
        cells,
    }
}

/// Seed extension with **X-Drop pruning** (BLAST / Darwin-WGA style): grow
/// the alignment from `(0, 0)` row by row, dropping any cell whose score
/// falls more than `x` below the best score seen so far; stop when a whole
/// row is dropped. Returns the best (local-extension) score.
///
/// # Panics
///
/// Panics if `x` is negative or either sequence is empty.
pub fn xdrop_extend(q: &[Base], r: &[Base], p: &LinearParams<i32>, x: i32) -> PrunedRun {
    assert!(x >= 0, "x-drop threshold must be non-negative");
    assert!(
        !q.is_empty() && !r.is_empty(),
        "sequences must be non-empty"
    );
    let n = r.len();
    let mut prev: Vec<i32> = vec![NEG; n + 1];
    // Row 0: the boundary ramp, pruned by X against score 0.
    let mut best = 0i32;
    for (j, slot) in prev.iter_mut().enumerate() {
        let v = j as i32 * p.gap;
        if v >= best - x {
            *slot = v;
        }
    }
    let (mut lo, mut hi) = (0usize, n); // inclusive live window of prev
    let mut cells = 0u64;
    for (i, &qc) in q.iter().enumerate() {
        let mut cur = vec![NEG; n + 1];
        let v0 = (i as i32 + 1) * p.gap;
        if lo == 0 && v0 >= best - x {
            cur[0] = v0;
        }
        let row_lo = lo;
        let row_hi = (hi + 1).min(n);
        let mut new_lo = usize::MAX;
        let mut new_hi = 0usize;
        for j in row_lo.max(1)..=row_hi {
            let diag = prev[j - 1];
            let up = prev[j];
            let left = cur[j - 1];
            if diag == NEG && up == NEG && left == NEG {
                continue;
            }
            let sub = p.substitution(qc == r[j - 1]);
            let m = (diag.saturating_add(sub))
                .max(up.saturating_add(p.gap))
                .max(left.saturating_add(p.gap));
            cells += 1;
            if m >= best - x {
                cur[j] = m;
                best = best.max(m);
                new_lo = new_lo.min(j);
                new_hi = new_hi.max(j);
            }
        }
        if new_lo == usize::MAX {
            // Every cell dropped: extension terminates.
            break;
        }
        lo = new_lo.saturating_sub(1);
        hi = new_hi;
        prev = cur;
    }
    PrunedRun { score: best, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::{nw_score, sw_score};
    use dphls_seq::gen::{ErrorModel, ReadSimulator};
    use dphls_seq::DnaSeq;

    fn pair(len: usize, err: f64, seed: u64) -> (DnaSeq, DnaSeq) {
        let mut sim = ReadSimulator::new(seed).error_model(ErrorModel::PACBIO_CLR);
        let (r, mut q) = sim.read_pair(len, err);
        q.truncate(len);
        (q, r)
    }

    #[test]
    fn adaptive_band_recovers_exact_score_with_modest_width() {
        let p = LinearParams::<i32>::dna();
        for seed in 0..5 {
            let (q, r) = pair(256, 0.2, seed);
            let exact = nw_score(q.as_slice(), r.as_slice(), &p);
            let adaptive = adaptive_banded_nw(q.as_slice(), r.as_slice(), &p, 32);
            assert_eq!(adaptive.score, exact, "seed {seed}");
            // and computes far fewer cells than the full matrix
            assert!(adaptive.cells < (q.len() * r.len()) as u64 / 2);
        }
    }

    #[test]
    fn adaptive_band_beats_fixed_band_at_equal_width_under_drift() {
        // Gradual cumulative drift — one deleted base every 8 — pushes the
        // optimal path 32 cells off the main diagonal by the end: far beyond
        // a fixed half-width of 16, but trivially tracked by an adaptive
        // band that re-centers row by row (a single jump larger than the
        // band defeats both policies; gradual drift is where adaptive wins).
        let p = LinearParams::<i32>::dna();
        let genome = dphls_seq::gen::GenomeGenerator::new(0xADA).generate(256);
        let r = genome.clone();
        let q_syms: Vec<_> = genome
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx % 8 != 7)
            .map(|(_, &b)| b)
            .collect();
        let q = DnaSeq::new(q_syms);
        let exact = nw_score(q.as_slice(), r.as_slice(), &p);
        let adaptive = adaptive_banded_nw(q.as_slice(), r.as_slice(), &p, 16);
        let fixed = crate::software::banded_nw_score(q.as_slice(), r.as_slice(), &p, 16);
        assert!(
            adaptive.score > fixed,
            "adaptive {} !> fixed {fixed}",
            adaptive.score
        );
        // The adaptive band pays a transit cost while re-centering but must
        // land near the exact optimum.
        assert!(
            adaptive.score >= exact - 100,
            "adaptive {} vs exact {exact}",
            adaptive.score
        );
    }

    #[test]
    fn adaptive_band_never_exceeds_exact_score() {
        let p = LinearParams::<i32>::dna();
        for seed in 10..16 {
            let (q, r) = pair(128, 0.3, seed);
            let exact = nw_score(q.as_slice(), r.as_slice(), &p);
            for w in [4usize, 8, 16, 64] {
                let run = adaptive_banded_nw(q.as_slice(), r.as_slice(), &p, w);
                assert!(run.score <= exact, "seed {seed} w {w}");
            }
        }
    }

    #[test]
    fn xdrop_matches_local_score_on_similar_pairs() {
        // For high-identity pairs the X-drop extension from (0,0) recovers
        // the dominant local alignment score.
        let p = LinearParams::<i32>::dna();
        for seed in 0..5 {
            let (q, r) = pair(200, 0.1, seed);
            let exact_local = sw_score(q.as_slice(), r.as_slice(), &p);
            let xd = xdrop_extend(q.as_slice(), r.as_slice(), &p, 50);
            assert!(xd.score <= exact_local);
            assert!(
                xd.score as f64 >= exact_local as f64 * 0.95,
                "seed {seed}: xdrop {} vs local {exact_local}",
                xd.score
            );
        }
    }

    #[test]
    fn xdrop_prunes_unrelated_sequences_quickly() {
        let p = LinearParams::<i32>::dna();
        let q: DnaSeq = "A".repeat(200).parse().unwrap();
        let r: DnaSeq = "C".repeat(200).parse().unwrap();
        let xd = xdrop_extend(q.as_slice(), r.as_slice(), &p, 20);
        // All-mismatch: the extension dies within a handful of rows.
        assert!(xd.cells < 2_000, "cells {}", xd.cells);
        assert_eq!(xd.score, 0);
    }

    #[test]
    fn larger_x_computes_more_cells_and_never_lowers_score() {
        let p = LinearParams::<i32>::dna();
        let (q, r) = pair(200, 0.25, 7);
        let mut last = None;
        for x in [10i32, 30, 90, 10_000] {
            let run = xdrop_extend(q.as_slice(), r.as_slice(), &p, x);
            if let Some((score, cells)) = last {
                assert!(run.score >= score);
                assert!(run.cells >= cells);
            }
            last = Some((run.score, run.cells));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let q: DnaSeq = "ACGT".parse().unwrap();
        adaptive_banded_nw(q.as_slice(), q.as_slice(), &LinearParams::dna(), 0);
    }
}
