//! The previous-HLS baseline (paper §7.5): the Smith-Waterman kernel of the
//! AMD Vitis Genomics Library (v2021.2), compared against DP-HLS kernel #3.
//!
//! The paper attributes DP-HLS's 32.6 % advantage to two mechanisms, both of
//! which this model encodes:
//!
//! 1. the Vitis library **streams** sequence data between host and device
//!    per alignment instead of staging batches in device memory — modeled
//!    as per-alignment streaming stalls added to the invocation overhead;
//! 2. DP-HLS's back-end applies more aggressive optimization hints,
//!    reaching a shorter effective initiation behaviour at slightly higher
//!    resource cost — modeled by the baseline's lower effective frequency
//!    despite its 333 MHz target.

use dphls_core::KernelConfig;
use dphls_systolic::{CycleModelParams, Device, KernelCycleInfo};

/// Per-alignment host-streaming stall of the Vitis Genomics SW kernel, in
/// cycles (calibrated so the §7.5 comparison lands near the published
/// 32.6 % gap).
pub const STREAMING_STALL_CYCLES: u64 = 1_500;

/// Effective clock of the baseline: it targets 333 MHz but the streaming
/// interfaces close lower on the F1 shell; the paper's 32.6 % net gap
/// emerges from stalls at a comparable clock.
pub const HLS_BASELINE_FREQ_MHZ: f64 = 250.0;

/// The §7.5 comparison configuration: `NPE = 32, NB = 32, NK = 1`.
pub fn hls_baseline_config() -> KernelConfig {
    KernelConfig::new(32, 32, 1).with_target_freq(333.0)
}

/// Builds the Vitis-Genomics-style device model for kernel #3's shape.
pub fn hls_baseline_device(sym_bits: u32) -> Device {
    let params = CycleModelParams {
        invocation_overhead: CycleModelParams::dphls().invocation_overhead + STREAMING_STALL_CYCLES,
        ..CycleModelParams::dphls()
    };
    Device::new(
        hls_baseline_config(),
        params,
        KernelCycleInfo {
            sym_bits,
            has_walk: true,
            ii: 1,
        },
        HLS_BASELINE_FREQ_MHZ,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_kernels::{LinearParams, LocalLinear};
    use dphls_seq::gen::ReadSimulator;
    use dphls_systolic::Device;

    #[test]
    fn dphls_beats_hls_baseline_by_about_a_third() {
        // Reproduce the §7.5 comparison shape: same kernel (#3), same
        // NPE/NB, DP-HLS schedule vs streaming baseline schedule.
        let mut sim = ReadSimulator::new(21);
        let wl: Vec<_> = sim
            .read_pairs(6, 256, 0.3)
            .into_iter()
            .map(|(r, mut q)| {
                q.truncate(256);
                (q.into_vec(), r.into_vec())
            })
            .collect();
        let params = LinearParams::<i16>::dna();

        let dphls = Device::new(
            KernelConfig::new(32, 32, 1),
            CycleModelParams::dphls(),
            KernelCycleInfo {
                sym_bits: 2,
                has_walk: true,
                ii: 1,
            },
            250.0,
        );
        let baseline = hls_baseline_device(2);
        let t_dphls = dphls
            .run::<LocalLinear>(&params, &wl)
            .unwrap()
            .throughput_aps;
        let t_base = baseline
            .run::<LocalLinear>(&params, &wl)
            .unwrap()
            .throughput_aps;
        let speedup = t_dphls / t_base;
        // Paper: +32.6%. The model must land in the same regime.
        assert!(
            (1.15..1.60).contains(&speedup),
            "speedup {speedup:.3} outside the §7.5 regime"
        );
    }

    #[test]
    fn config_matches_paper() {
        let cfg = hls_baseline_config();
        assert_eq!((cfg.npe, cfg.nb, cfg.nk), (32, 32, 1));
        assert_eq!(cfg.target_freq_mhz, 333.0);
    }
}
