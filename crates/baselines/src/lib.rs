//! Baselines for the DP-HLS comparison experiments (paper §6.3):
//!
//! * [`software`] — an independent, multi-threaded Rust implementation of
//!   every comparable kernel (the SeqAn3 / minimap2 / EMBOSS stand-in),
//!   **measured live** on this machine;
//! * [`rtl`] — cycle models of the hand-written RTL accelerators (GACT, BSW,
//!   SquiggleFilter) sharing the systolic engine but with the overlapped
//!   schedule the paper credits for their 7.7–16.8 % edge;
//! * [`hls`] — the Vitis Genomics Library Smith-Waterman baseline (§7.5);
//! * [`heuristics`] — adaptive banding and X-Drop pruning (paper §2.2.4's
//!   adaptive variants, implemented as the framework's future-work
//!   extension and ablated against the fixed band);
//! * [`published`] — the paper's published CPU/GPU baseline ratios
//!   (unrunnable offline: V100 GPUs, 36-core Xeon boxes), recorded with
//!   provenance for the paper-calibrated columns of Fig 6;
//! * [`cost`] — AWS pricing and iso-cost normalization.

pub mod cost;
pub mod heuristics;
pub mod hls;
pub mod published;
pub mod rtl;
pub mod software;

pub use cost::{iso_cost, Instance, C4_8XLARGE, F1_2XLARGE, P3_2XLARGE};
pub use published::{PublishedBaseline, CPU_BASELINES, GPU_BASELINES, HLS_BASELINE_SPEEDUP};
pub use rtl::{rtl_device, rtl_resources, RtlDesign};
