//! Published baseline throughputs (paper Fig 6 and §7.5), recorded as
//! constants with provenance.
//!
//! The CPU/GPU baselines run on software and hardware we cannot execute
//! offline (SeqAn3 and minimap2 on a 36-core c4.8xlarge, EMBOSS Water under
//! GNU parallel, GASAL2 and CUDASW++ 4.0 on a V100). Per the substitution
//! rule, their **iso-cost throughputs are derived from the paper's published
//! speedup ratios** and DP-HLS Table 2 throughputs; our own measured Rust
//! CPU baseline (`crate::software`) is reported alongside so both a
//! paper-calibrated and a live-measured comparison appear in Fig 6's
//! regeneration.

/// One published baseline data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedBaseline {
    /// Baseline tool name.
    pub tool: &'static str,
    /// Hardware it ran on (paper §6.3).
    pub platform: &'static str,
    /// DP-HLS kernel it is compared against (Table 1 id).
    pub kernel_id: u8,
    /// Paper-reported DP-HLS speedup over this baseline (Fig 6 labels).
    pub paper_speedup: f64,
    /// Paper-reported DP-HLS throughput for that kernel (Table 2 /
    /// Fig 6B's no-traceback variant for CUDASW++), alignments/s.
    pub dphls_aln_per_sec: f64,
}

impl PublishedBaseline {
    /// The baseline's implied iso-cost throughput (alignments/s at F1 cost).
    pub fn baseline_aln_per_sec(&self) -> f64 {
        self.dphls_aln_per_sec / self.paper_speedup
    }
}

/// Fig 6A — CPU baselines: SeqAn3 for kernels #1–4, 6, 7, 11, 12; minimap2
/// for #5; EMBOSS Water for #15.
pub const CPU_BASELINES: [PublishedBaseline; 10] = [
    PublishedBaseline {
        tool: "SeqAn3",
        platform: "c4.8xlarge (32 threads)",
        kernel_id: 1,
        paper_speedup: 2.0,
        dphls_aln_per_sec: 3.51e6,
    },
    PublishedBaseline {
        tool: "SeqAn3",
        platform: "c4.8xlarge (32 threads)",
        kernel_id: 2,
        paper_speedup: 1.6,
        dphls_aln_per_sec: 2.85e6,
    },
    PublishedBaseline {
        tool: "SeqAn3",
        platform: "c4.8xlarge (32 threads)",
        kernel_id: 3,
        paper_speedup: 1.9,
        dphls_aln_per_sec: 3.43e6,
    },
    PublishedBaseline {
        tool: "SeqAn3",
        platform: "c4.8xlarge (32 threads)",
        kernel_id: 4,
        paper_speedup: 1.5,
        dphls_aln_per_sec: 2.71e6,
    },
    PublishedBaseline {
        tool: "minimap2",
        platform: "c4.8xlarge (32 threads)",
        kernel_id: 5,
        paper_speedup: 12.0,
        dphls_aln_per_sec: 1.06e6,
    },
    PublishedBaseline {
        tool: "SeqAn3",
        platform: "c4.8xlarge (32 threads)",
        kernel_id: 6,
        paper_speedup: 1.5,
        dphls_aln_per_sec: 2.73e6,
    },
    PublishedBaseline {
        tool: "SeqAn3",
        platform: "c4.8xlarge (32 threads)",
        kernel_id: 7,
        paper_speedup: 1.9,
        dphls_aln_per_sec: 3.34e6,
    },
    PublishedBaseline {
        tool: "SeqAn3",
        platform: "c4.8xlarge (32 threads)",
        kernel_id: 11,
        paper_speedup: 1.3,
        dphls_aln_per_sec: 2.25e6,
    },
    PublishedBaseline {
        tool: "SeqAn3",
        platform: "c4.8xlarge (32 threads)",
        kernel_id: 12,
        paper_speedup: 2.7,
        dphls_aln_per_sec: 4.77e6,
    },
    PublishedBaseline {
        tool: "EMBOSS Water",
        platform: "c4.8xlarge (32 jobs)",
        kernel_id: 15,
        paper_speedup: 32.0,
        dphls_aln_per_sec: 9.33e5,
    },
];

/// Fig 6B — GPU baselines (iso-cost, V100 p3.2xlarge): GASAL2 for #2, #4,
/// #12; CUDASW++ 4.0 for #15 with traceback disabled on both sides.
pub const GPU_BASELINES: [PublishedBaseline; 4] = [
    PublishedBaseline {
        tool: "GASAL2 (GLOBAL)",
        platform: "p3.2xlarge (V100)",
        kernel_id: 2,
        paper_speedup: 5.8,
        dphls_aln_per_sec: 2.85e6,
    },
    PublishedBaseline {
        tool: "GASAL2 (LOCAL)",
        platform: "p3.2xlarge (V100)",
        kernel_id: 4,
        paper_speedup: 7.6,
        dphls_aln_per_sec: 2.71e6,
    },
    PublishedBaseline {
        tool: "GASAL2 (BSW)",
        platform: "p3.2xlarge (V100)",
        kernel_id: 12,
        paper_speedup: 17.7,
        dphls_aln_per_sec: 4.77e6,
    },
    // #15 without traceback: the paper disables DP-HLS traceback to match
    // CUDASW++; its throughput rises above the Table 2 (with-TB) figure.
    PublishedBaseline {
        tool: "CUDASW++ 4.0",
        platform: "p3.2xlarge (V100)",
        kernel_id: 15,
        paper_speedup: 1.41,
        dphls_aln_per_sec: 1.25e6,
    },
];

/// §7.5 — the Vitis Genomics Library Smith-Waterman HLS baseline: DP-HLS
/// kernel #3 achieves 32.6 % higher throughput.
pub const HLS_BASELINE_SPEEDUP: f64 = 1.326;

/// §7.5 baseline configuration: `NPE = 32, NB = 32, NK = 1`, 333 MHz target.
pub const HLS_BASELINE_CONFIG: (usize, usize, usize, f64) = (32, 32, 1, 333.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_speedup_range_matches_abstract() {
        // The abstract quotes 1.3x–32x over CPU/GPU baselines.
        let min = CPU_BASELINES
            .iter()
            .map(|b| b.paper_speedup)
            .fold(f64::INFINITY, f64::min);
        let max = CPU_BASELINES
            .iter()
            .map(|b| b.paper_speedup)
            .fold(0.0, f64::max);
        assert_eq!(min, 1.3);
        assert_eq!(max, 32.0);
    }

    #[test]
    fn baseline_throughputs_are_consistent() {
        for b in CPU_BASELINES.iter().chain(GPU_BASELINES.iter()) {
            let t = b.baseline_aln_per_sec();
            assert!(t > 0.0 && t < b.dphls_aln_per_sec);
            assert!((t * b.paper_speedup - b.dphls_aln_per_sec).abs() < 1.0);
        }
    }

    #[test]
    fn seqan_baselines_show_minor_variability() {
        // §7.4: "the baseline throughput shows minor variability across
        // these kernels as SeqAn3 uses the same underlying implementation."
        let seqan: Vec<f64> = CPU_BASELINES
            .iter()
            .filter(|b| b.tool == "SeqAn3")
            .map(|b| b.baseline_aln_per_sec())
            .collect();
        let max = seqan.iter().cloned().fold(0.0, f64::max);
        let min = seqan.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.0, "SeqAn3 spread {max}/{min}");
    }

    #[allow(clippy::assertions_on_constants)] // paper constants, asserted on purpose
    #[test]
    fn gpu_kernels_match_fig6b() {
        let ids: Vec<u8> = GPU_BASELINES.iter().map(|b| b.kernel_id).collect();
        assert_eq!(ids, vec![2, 4, 12, 15]);
        assert_eq!(HLS_BASELINE_CONFIG.0, 32);
        assert!(HLS_BASELINE_SPEEDUP > 1.3);
    }
}
