//! Hand-optimized RTL baseline models: GACT \[11\], BSW \[12\], and
//! SquiggleFilter \[57\] — the three accelerators the paper compares against
//! in Figs 4–5 (§6.3, "RTL Baselines").
//!
//! All three are linear systolic arrays computing the same recurrences as
//! DP-HLS kernels #2, #12, and #14, so the functional engine is shared; what
//! differs — and what the paper measures — is the **schedule** (RTL overlaps
//! sequence load and matrix initialization with compute; DP-HLS runs them
//! sequentially, §7.3) and slightly leaner control logic. The models
//! therefore reuse `dphls_systolic` with
//! [`CycleModelParams::rtl_overlapped`] and scale the structural resource
//! estimate by a calibrated RTL-efficiency factor.

use dphls_core::KernelConfig;
use dphls_fpga::{KernelProfile, Resources};
use dphls_kernels::registry::CaseInfo;
use dphls_systolic::{CycleModelParams, Device, KernelCycleInfo};

/// Which hand-written accelerator a model reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtlDesign {
    /// GACT (Darwin) — global affine alignment with traceback, compared
    /// against kernel #2 at `NPE = 32, NB = 1`.
    Gact,
    /// BSW (Darwin-WGA) — banded local affine, score only, compared against
    /// kernel #12 at `NPE = 16, NB = 1`.
    Bsw,
    /// SquiggleFilter — sDTW over integer squiggles, score only (the paper
    /// removes the match-bonus feature to align the recurrences), compared
    /// against kernel #14 at `NPE = 32, NB = 1`.
    SquiggleFilter,
}

impl RtlDesign {
    /// The published design name.
    pub fn name(self) -> &'static str {
        match self {
            RtlDesign::Gact => "GACT (Darwin)",
            RtlDesign::Bsw => "BSW (Darwin-WGA)",
            RtlDesign::SquiggleFilter => "SquiggleFilter",
        }
    }

    /// The DP-HLS kernel it is compared against (Table 1 id).
    pub fn kernel_id(self) -> u8 {
        match self {
            RtlDesign::Gact => 2,
            RtlDesign::Bsw => 12,
            RtlDesign::SquiggleFilter => 14,
        }
    }

    /// The comparison configuration of Fig 4 (NPE matched to the baseline).
    pub fn comparison_config(self) -> KernelConfig {
        match self {
            RtlDesign::Gact => KernelConfig::new(32, 1, 1),
            RtlDesign::Bsw => KernelConfig::new(16, 1, 1).with_banding(32),
            RtlDesign::SquiggleFilter => KernelConfig::new(32, 1, 1),
        }
    }

    /// Paper-reported throughput margin of DP-HLS vs this design
    /// (§7.3: 7.7 %, 16.8 %, 8.16 %).
    pub fn paper_margin(self) -> f64 {
        match self {
            RtlDesign::Gact => 0.077,
            RtlDesign::Bsw => 0.168,
            RtlDesign::SquiggleFilter => 0.0816,
        }
    }
}

/// RTL logic-efficiency factor: hand-written datapaths shave a fraction of
/// the LUT/FF the HLS template spends on generality (Fig 4D shows comparable
/// LUT/FF, GACT slightly leaner; Fig 4E shows DP-HLS slightly leaner than
/// BSW).
const RTL_LOGIC_FACTOR: f64 = 0.93;

/// Builds the RTL-scheduled device model for a design: same functional
/// kernel, overlapped load/init schedule.
pub fn rtl_device(design: RtlDesign, case: &CaseInfo, config: &KernelConfig) -> Device {
    let kinfo = KernelCycleInfo {
        sym_bits: case.sym_bits,
        has_walk: case.meta.traceback.has_walk(),
        ii: 1, // hand-tuned RTL closes II=1 for these recurrences
    };
    let freq = match design {
        // All three baselines close timing at the F1 250 MHz clock.
        RtlDesign::Gact | RtlDesign::Bsw | RtlDesign::SquiggleFilter => 250.0,
    };
    Device::new(*config, CycleModelParams::rtl_overlapped(), kinfo, freq)
}

/// Resource estimate of the hand-written design: the DP-HLS structural
/// block estimate minus the generality overheads (no TB-address DSPs — the
/// baselines hardwire their address generators into LUTs — and leaner
/// control).
pub fn rtl_resources(
    design: RtlDesign,
    profile: &KernelProfile,
    config: &KernelConfig,
) -> Resources {
    let hls = dphls_fpga::estimate_block(profile, config);
    let _ = design;
    Resources {
        lut: (hls.lut as f64 * RTL_LOGIC_FACTOR) as u64,
        ff: (hls.ff as f64 * RTL_LOGIC_FACTOR) as u64,
        bram36: hls.bram36,
        dsp: hls.dsp.saturating_sub(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designs_map_to_paper_kernels() {
        assert_eq!(RtlDesign::Gact.kernel_id(), 2);
        assert_eq!(RtlDesign::Bsw.kernel_id(), 12);
        assert_eq!(RtlDesign::SquiggleFilter.kernel_id(), 14);
    }

    #[test]
    fn comparison_configs_match_fig4() {
        assert_eq!(RtlDesign::Gact.comparison_config().npe, 32);
        assert_eq!(RtlDesign::Bsw.comparison_config().npe, 16);
        assert_eq!(RtlDesign::SquiggleFilter.comparison_config().npe, 32);
        for d in [RtlDesign::Gact, RtlDesign::Bsw, RtlDesign::SquiggleFilter] {
            assert_eq!(d.comparison_config().nb, 1);
        }
    }

    #[test]
    fn margins_match_paper() {
        assert_eq!(RtlDesign::Gact.paper_margin(), 0.077);
        assert_eq!(RtlDesign::Bsw.paper_margin(), 0.168);
        assert_eq!(RtlDesign::SquiggleFilter.paper_margin(), 0.0816);
    }

    #[test]
    fn rtl_resources_are_leaner_but_comparable() {
        use dphls_core::{OpCounts, WalkKind};
        let profile = KernelProfile {
            op_counts: OpCounts {
                adds: 5,
                muls: 0,
                cmps: 4,
                depth: 4,
            },
            score_bits: 16,
            sym_bits: 2,
            tb_bits: 4,
            n_layers: 3,
            walk: Some(WalkKind::Global),
            param_table_bits: 64,
        };
        let cfg = KernelConfig::new(32, 1, 1);
        let hls = dphls_fpga::estimate_block(&profile, &cfg);
        let rtl = rtl_resources(RtlDesign::Gact, &profile, &cfg);
        assert!(rtl.lut < hls.lut);
        assert!(rtl.lut as f64 > hls.lut as f64 * 0.85);
        assert_eq!(rtl.dsp, hls.dsp - 2);
        assert_eq!(rtl.bram36, hls.bram36);
    }
}
