//! The CPU software baseline: an independent, library-style implementation
//! of the paper's alignment kernels, standing in for SeqAn3 / minimap2 /
//! EMBOSS Water (§6.3).
//!
//! These are **separate implementations** from the kernel specs — scalar
//! rolling-row DP loops with O(R) memory and no traceback, the shape a tuned
//! CPU library actually executes for score-only batch alignment — so the
//! CPU-vs-FPGA comparison is not simulator-vs-itself. Functional agreement
//! with the reference engine is asserted by tests.
//!
//! [`measure_throughput`] runs a workload across threads (crossbeam scoped
//! threads, like SeqAn3's 32-thread configuration) and reports wall-clock
//! alignments/second.

use dphls_kernels::{AffineParams, LinearParams, ProteinParams, TwoPieceParams};
use dphls_seq::{AminoAcid, Base};
use std::time::Instant;

const NEG: i32 = i32::MIN / 4;

/// Global linear (Needleman-Wunsch) score, rolling single row.
pub fn nw_score(q: &[Base], r: &[Base], p: &LinearParams<i32>) -> i32 {
    let mut row: Vec<i32> = (0..=r.len() as i32).map(|j| j * p.gap).collect();
    for (i, &qc) in q.iter().enumerate() {
        let mut diag = row[0];
        row[0] = (i as i32 + 1) * p.gap;
        for (j, &rc) in r.iter().enumerate() {
            let sub = if qc == rc { p.match_score } else { p.mismatch };
            let m = (diag + sub).max(row[j + 1] + p.gap).max(row[j] + p.gap);
            diag = row[j + 1];
            row[j + 1] = m;
        }
    }
    row[r.len()]
}

/// Local linear (Smith-Waterman) score.
pub fn sw_score(q: &[Base], r: &[Base], p: &LinearParams<i32>) -> i32 {
    let mut row = vec![0i32; r.len() + 1];
    let mut best = 0i32;
    for &qc in q {
        let mut diag = row[0];
        row[0] = 0;
        for (j, &rc) in r.iter().enumerate() {
            let sub = if qc == rc { p.match_score } else { p.mismatch };
            let m = 0
                .max(diag + sub)
                .max(row[j + 1] + p.gap)
                .max(row[j] + p.gap);
            diag = row[j + 1];
            row[j + 1] = m;
            best = best.max(m);
        }
    }
    best
}

/// Overlap alignment score: free ends, best over last row and column.
pub fn overlap_score(q: &[Base], r: &[Base], p: &LinearParams<i32>) -> i32 {
    let mut row = vec![0i32; r.len() + 1];
    let mut best = NEG;
    for (i, &qc) in q.iter().enumerate() {
        let mut diag = row[0];
        row[0] = 0;
        for (j, &rc) in r.iter().enumerate() {
            let sub = if qc == rc { p.match_score } else { p.mismatch };
            let m = (diag + sub).max(row[j + 1] + p.gap).max(row[j] + p.gap);
            diag = row[j + 1];
            row[j + 1] = m;
            if j + 1 == r.len() || i + 1 == q.len() {
                best = best.max(m);
            }
        }
    }
    best
}

/// Semi-global score: query end-to-end, best over the last row.
pub fn semi_global_score(q: &[Base], r: &[Base], p: &LinearParams<i32>) -> i32 {
    let mut row = vec![0i32; r.len() + 1];
    for (i, &qc) in q.iter().enumerate() {
        let mut diag = row[0];
        row[0] = (i as i32 + 1) * p.gap;
        for (j, &rc) in r.iter().enumerate() {
            let sub = if qc == rc { p.match_score } else { p.mismatch };
            let m = (diag + sub).max(row[j + 1] + p.gap).max(row[j] + p.gap);
            diag = row[j + 1];
            row[j + 1] = m;
        }
        if i + 1 == q.len() {
            return *row[1..].iter().max().expect("non-empty reference");
        }
    }
    row[r.len()]
}

/// Global affine (Gotoh) score with two rolling rows for H and I (D only
/// needs the current row).
pub fn affine_global_score(q: &[Base], r: &[Base], p: &AffineParams<i32>) -> i32 {
    let n = r.len();
    let ramp = |k: usize| p.gap_open + (k as i32 - 1) * p.gap_extend;
    // prev_* hold row i-1; cur_* hold row i.
    let mut prev_h: Vec<i32> = (0..=n).map(|j| if j == 0 { 0 } else { ramp(j) }).collect();
    let mut prev_i: Vec<i32> = vec![NEG; n + 1];
    let mut cur_h = vec![0i32; n + 1];
    let mut cur_i = vec![0i32; n + 1];
    let mut cur_d = vec![0i32; n + 1];
    for (ii, &qc) in q.iter().enumerate() {
        cur_h[0] = ramp(ii + 1);
        cur_i[0] = ramp(ii + 1);
        cur_d[0] = NEG;
        for (j, &rc) in r.iter().enumerate() {
            let sub = if qc == rc { p.match_score } else { p.mismatch };
            cur_i[j + 1] = (prev_h[j + 1] + p.gap_open).max(prev_i[j + 1] + p.gap_extend);
            cur_d[j + 1] = (cur_h[j] + p.gap_open).max(cur_d[j] + p.gap_extend);
            cur_h[j + 1] = (prev_h[j] + sub).max(cur_i[j + 1]).max(cur_d[j + 1]);
        }
        std::mem::swap(&mut prev_h, &mut cur_h);
        std::mem::swap(&mut prev_i, &mut cur_i);
    }
    prev_h[n]
}

/// Local affine (Smith-Waterman-Gotoh) score.
pub fn affine_local_score(q: &[Base], r: &[Base], p: &AffineParams<i32>) -> i32 {
    let n = r.len();
    let mut prev_h = vec![0i32; n + 1];
    let mut prev_i = vec![NEG; n + 1];
    let mut cur_h = vec![0i32; n + 1];
    let mut cur_i = vec![0i32; n + 1];
    let mut cur_d = vec![0i32; n + 1];
    let mut best = 0i32;
    for &qc in q {
        cur_h[0] = 0;
        cur_i[0] = NEG;
        cur_d[0] = NEG;
        for (j, &rc) in r.iter().enumerate() {
            let sub = if qc == rc { p.match_score } else { p.mismatch };
            cur_i[j + 1] = (prev_h[j + 1] + p.gap_open).max(prev_i[j + 1] + p.gap_extend);
            cur_d[j + 1] = (cur_h[j] + p.gap_open).max(cur_d[j] + p.gap_extend);
            cur_h[j + 1] = 0.max(prev_h[j] + sub).max(cur_i[j + 1]).max(cur_d[j + 1]);
            best = best.max(cur_h[j + 1]);
        }
        std::mem::swap(&mut prev_h, &mut cur_h);
        std::mem::swap(&mut prev_i, &mut cur_i);
    }
    best
}

/// Global two-piece affine score (minimap2's gap model).
pub fn two_piece_global_score(q: &[Base], r: &[Base], p: &TwoPieceParams<i32>) -> i32 {
    let n = r.len();
    let ramp = |k: usize| {
        let k = k as i32;
        (p.gap_open1 + (k - 1) * p.gap_extend1).max(p.gap_open2 + (k - 1) * p.gap_extend2)
    };
    let mut prev_h: Vec<i32> = (0..=n).map(|j| if j == 0 { 0 } else { ramp(j) }).collect();
    let mut prev_i1: Vec<i32> = vec![NEG; n + 1];
    let mut prev_i2: Vec<i32> = vec![NEG; n + 1];
    let mut cur_h = vec![0i32; n + 1];
    let mut cur_i1 = vec![0i32; n + 1];
    let mut cur_i2 = vec![0i32; n + 1];
    let mut cur_d1 = vec![0i32; n + 1];
    let mut cur_d2 = vec![0i32; n + 1];
    for (ii, &qc) in q.iter().enumerate() {
        let vr = ramp(ii + 1);
        cur_h[0] = vr;
        cur_i1[0] = p.gap_open1 + ii as i32 * p.gap_extend1;
        cur_i2[0] = p.gap_open2 + ii as i32 * p.gap_extend2;
        cur_d1[0] = NEG;
        cur_d2[0] = NEG;
        for (j, &rc) in r.iter().enumerate() {
            let sub = if qc == rc { p.match_score } else { p.mismatch };
            cur_i1[j + 1] = (prev_h[j + 1] + p.gap_open1).max(prev_i1[j + 1] + p.gap_extend1);
            cur_d1[j + 1] = (cur_h[j] + p.gap_open1).max(cur_d1[j] + p.gap_extend1);
            cur_i2[j + 1] = (prev_h[j + 1] + p.gap_open2).max(prev_i2[j + 1] + p.gap_extend2);
            cur_d2[j + 1] = (cur_h[j] + p.gap_open2).max(cur_d2[j] + p.gap_extend2);
            cur_h[j + 1] = (prev_h[j] + sub)
                .max(cur_i1[j + 1])
                .max(cur_d1[j + 1])
                .max(cur_i2[j + 1])
                .max(cur_d2[j + 1]);
        }
        std::mem::swap(&mut prev_h, &mut cur_h);
        std::mem::swap(&mut prev_i1, &mut cur_i1);
        std::mem::swap(&mut prev_i2, &mut cur_i2);
    }
    prev_h[n]
}

/// Banded global linear score (`|i − j| ≤ w`).
pub fn banded_nw_score(q: &[Base], r: &[Base], p: &LinearParams<i32>, w: usize) -> i32 {
    let n = r.len();
    let mut row: Vec<i32> = (0..=n)
        .map(|j| if j <= w { j as i32 * p.gap } else { NEG })
        .collect();
    for (i, &qc) in q.iter().enumerate() {
        let i1 = i + 1;
        let mut diag = row[0];
        row[0] = if i1 <= w { i1 as i32 * p.gap } else { NEG };
        let lo = i1.saturating_sub(w).max(1);
        let hi = (i1 + w).min(n);
        for j in 1..=n {
            if j < lo || j > hi {
                diag = row[j];
                row[j] = NEG;
                continue;
            }
            let rc = r[j - 1];
            let sub = if qc == rc { p.match_score } else { p.mismatch };
            // Out-of-band neighbors already hold NEG from earlier sweeps.
            let m = (diag + sub).max(row[j] + p.gap).max(row[j - 1] + p.gap);
            diag = row[j];
            row[j] = m;
        }
    }
    row[n]
}

/// Banded local affine score (the BSW workload shape, #12).
pub fn banded_affine_local_score(q: &[Base], r: &[Base], p: &AffineParams<i32>, w: usize) -> i32 {
    let n = r.len();
    let mut prev_h = vec![0i32; n + 1];
    let mut prev_i = vec![NEG; n + 1];
    let mut cur_h = vec![0i32; n + 1];
    let mut cur_i = vec![0i32; n + 1];
    let mut cur_d = vec![0i32; n + 1];
    let mut best = 0i32;
    for (ii, &qc) in q.iter().enumerate() {
        let i1 = ii + 1;
        cur_h[0] = 0;
        cur_i[0] = NEG;
        cur_d[0] = NEG;
        let lo = i1.saturating_sub(w).max(1);
        let hi = (i1 + w).min(n);
        for j in 1..=n {
            if j < lo || j > hi {
                cur_h[j] = NEG;
                cur_i[j] = NEG;
                cur_d[j] = NEG;
                continue;
            }
            let rc = r[j - 1];
            let sub = if qc == rc { p.match_score } else { p.mismatch };
            cur_i[j] = (prev_h[j] + p.gap_open).max(prev_i[j] + p.gap_extend);
            cur_d[j] = (cur_h[j - 1] + p.gap_open).max(cur_d[j - 1] + p.gap_extend);
            cur_h[j] = 0.max(prev_h[j - 1] + sub).max(cur_i[j]).max(cur_d[j]);
            best = best.max(cur_h[j]);
        }
        std::mem::swap(&mut prev_h, &mut cur_h);
        std::mem::swap(&mut prev_i, &mut cur_i);
    }
    best
}

/// Protein Smith-Waterman with a substitution matrix (EMBOSS Water shape).
pub fn protein_sw_score(q: &[AminoAcid], r: &[AminoAcid], p: &ProteinParams<i32>) -> i32 {
    let mut row = vec![0i32; r.len() + 1];
    let mut best = 0i32;
    for &qc in q {
        let mut diag = row[0];
        row[0] = 0;
        let mrow = &p.matrix[qc.index()];
        for (j, &rc) in r.iter().enumerate() {
            let m = 0
                .max(diag + mrow[rc.index()])
                .max(row[j + 1] + p.gap)
                .max(row[j] + p.gap);
            diag = row[j + 1];
            row[j + 1] = m;
            best = best.max(m);
        }
    }
    best
}

/// Runs `align` over the workload on `threads` OS threads and returns
/// wall-clock throughput in alignments/second (the paper's CPU measurement
/// method: total wall time of the batch).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn measure_throughput<T: Sync, F>(workload: &[T], threads: usize, align: F) -> f64
where
    F: Fn(&T) + Sync,
{
    assert!(threads > 0, "thread count must be non-zero");
    if workload.is_empty() {
        return 0.0;
    }
    let start = Instant::now();
    let chunk = workload.len().div_ceil(threads);
    let align = &align;
    crossbeam::scope(|scope| {
        for piece in workload.chunks(chunk) {
            scope.spawn(move |_| {
                for item in piece {
                    align(item);
                }
            });
        }
    })
    .expect("baseline worker thread panicked");
    let secs = start.elapsed().as_secs_f64();
    workload.len() as f64 / secs.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::{run_reference, Banding};
    use dphls_kernels as kn;
    use dphls_seq::gen::{ProteinSampler, ReadSimulator};
    use dphls_seq::DnaSeq;

    fn pairs(n: usize, len: usize) -> Vec<(DnaSeq, DnaSeq)> {
        let mut sim = ReadSimulator::new(99);
        sim.read_pairs(n, len, 0.25)
            .into_iter()
            .map(|(r, mut q)| {
                q.truncate(len);
                (q, r)
            })
            .collect()
    }

    #[test]
    fn nw_matches_reference_engine() {
        let p = LinearParams::<i32>::dna();
        for (q, r) in pairs(6, 48) {
            let want = run_reference::<kn::GlobalLinear<i32>>(
                &p,
                q.as_slice(),
                r.as_slice(),
                Banding::None,
            );
            assert_eq!(nw_score(q.as_slice(), r.as_slice(), &p), want.best_score);
        }
    }

    #[test]
    fn sw_matches_reference_engine() {
        let p = LinearParams::<i32>::dna();
        for (q, r) in pairs(6, 48) {
            let want = run_reference::<kn::LocalLinear<i32>>(
                &p,
                q.as_slice(),
                r.as_slice(),
                Banding::None,
            );
            assert_eq!(sw_score(q.as_slice(), r.as_slice(), &p), want.best_score);
        }
    }

    #[test]
    fn overlap_and_semiglobal_match_reference() {
        let p = LinearParams::<i32>::dna();
        for (q, r) in pairs(5, 40) {
            let want_o =
                run_reference::<kn::Overlap<i32>>(&p, q.as_slice(), r.as_slice(), Banding::None);
            assert_eq!(
                overlap_score(q.as_slice(), r.as_slice(), &p),
                want_o.best_score
            );
            let want_s =
                run_reference::<kn::SemiGlobal<i32>>(&p, q.as_slice(), r.as_slice(), Banding::None);
            assert_eq!(
                semi_global_score(q.as_slice(), r.as_slice(), &p),
                want_s.best_score
            );
        }
    }

    #[test]
    fn affine_matches_reference_engine() {
        let p = AffineParams::<i32>::dna();
        for (q, r) in pairs(6, 40) {
            let want_g = run_reference::<kn::GlobalAffine<i32>>(
                &p,
                q.as_slice(),
                r.as_slice(),
                Banding::None,
            );
            assert_eq!(
                affine_global_score(q.as_slice(), r.as_slice(), &p),
                want_g.best_score
            );
            let want_l = run_reference::<kn::LocalAffine<i32>>(
                &p,
                q.as_slice(),
                r.as_slice(),
                Banding::None,
            );
            assert_eq!(
                affine_local_score(q.as_slice(), r.as_slice(), &p),
                want_l.best_score
            );
        }
    }

    #[test]
    fn two_piece_matches_reference_engine() {
        let p = TwoPieceParams::<i32>::dna();
        for (q, r) in pairs(5, 40) {
            let want = run_reference::<kn::GlobalTwoPiece<i32>>(
                &p,
                q.as_slice(),
                r.as_slice(),
                Banding::None,
            );
            assert_eq!(
                two_piece_global_score(q.as_slice(), r.as_slice(), &p),
                want.best_score
            );
        }
    }

    #[test]
    fn banded_matches_reference_engine() {
        let p = LinearParams::<i32>::dna();
        let pa = AffineParams::<i32>::dna();
        for (q, r) in pairs(5, 40) {
            let want = run_reference::<kn::BandedGlobalLinear<i32>>(
                &p,
                q.as_slice(),
                r.as_slice(),
                Banding::Fixed { half_width: 8 },
            );
            assert_eq!(
                banded_nw_score(q.as_slice(), r.as_slice(), &p, 8),
                want.best_score
            );
            let want_a = run_reference::<kn::BandedLocalAffine<i32>>(
                &pa,
                q.as_slice(),
                r.as_slice(),
                Banding::Fixed { half_width: 8 },
            );
            assert_eq!(
                banded_affine_local_score(q.as_slice(), r.as_slice(), &pa, 8),
                want_a.best_score
            );
        }
    }

    #[test]
    fn protein_matches_reference_engine() {
        let p = ProteinParams::<i32>::blosum62();
        let mut s = ProteinSampler::new(3);
        for _ in 0..5 {
            let (q, r) = s.homolog_pair(40, 0.6);
            let want = run_reference::<kn::ProteinLocal<i32>>(
                &p,
                q.as_slice(),
                r.as_slice(),
                Banding::None,
            );
            assert_eq!(
                protein_sw_score(q.as_slice(), r.as_slice(), &p),
                want.best_score
            );
        }
    }

    #[test]
    fn throughput_measurement_is_positive_and_scales() {
        let p = LinearParams::<i32>::dna();
        let wl = pairs(64, 64);
        let t1 = measure_throughput(&wl, 1, |(q, r)| {
            nw_score(q.as_slice(), r.as_slice(), &p);
        });
        assert!(t1 > 0.0);
        let t4 = measure_throughput(&wl, 4, |(q, r)| {
            nw_score(q.as_slice(), r.as_slice(), &p);
        });
        // Multi-threading should not be drastically slower.
        assert!(t4 > t1 * 0.5);
    }

    #[test]
    fn empty_workload_throughput_zero() {
        let wl: Vec<(DnaSeq, DnaSeq)> = vec![];
        assert_eq!(measure_throughput(&wl, 2, |_| {}), 0.0);
    }
}
