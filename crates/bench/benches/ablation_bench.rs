//! Criterion bench of the DESIGN.md ablations: band-width pruning (cells
//! actually computed) and the schedule/traceback/reduction design points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dphls_bench::experiments::ablation;
use dphls_core::{Banding, KernelConfig};
use dphls_kernels::{BandedGlobalLinear, LinearParams};
use dphls_seq::gen::ReadSimulator;
use dphls_systolic::run_systolic;
use std::time::Duration;

fn bench_band_widths(c: &mut Criterion) {
    let params = LinearParams::<i16>::dna();
    let mut sim = ReadSimulator::new(0xAB);
    let (r, mut q) = sim.read_pair(256, 0.2);
    q.truncate(256);
    let (q, r) = (q.into_vec(), r.into_vec());
    let mut g = c.benchmark_group("band_width");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(600));
    for hw in [8usize, 32, 128] {
        let cfg = KernelConfig {
            banding: Banding::Fixed { half_width: hw },
            ..KernelConfig::new(32, 1, 1)
        };
        g.bench_with_input(BenchmarkId::new("banded_nw", hw), &hw, |b, _| {
            b.iter(|| run_systolic::<BandedGlobalLinear>(&params, &q, &r, &cfg).unwrap())
        });
    }
    g.finish();
}

fn bench_ablation_suites(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_suites");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("schedule_all_kernels", |b| {
        b.iter(ablation::schedule_ablation)
    });
    g.bench_function("band_sweep", |b| b.iter(ablation::band_sweep));
    g.finish();
}

criterion_group!(benches, bench_band_widths, bench_ablation_suites);
criterion_main!(benches);
