//! Criterion bench of the CPU software baselines (the measured column of
//! Fig 6A): per-kernel single-alignment cost of the SeqAn3/minimap2/EMBOSS
//! stand-ins.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dphls_baselines::software;
use dphls_kernels::{AffineParams, LinearParams, ProteinParams, TwoPieceParams};
use dphls_seq::gen::{ProteinSampler, ReadSimulator};
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let mut sim = ReadSimulator::new(3);
    let (r, mut q) = sim.read_pair(256, 0.3);
    q.truncate(256);
    let (q, r) = (q.into_vec(), r.into_vec());
    let mut prot = ProteinSampler::new(3);
    let (pq, pr) = prot.homolog_pair(256, 0.6);
    let (pq, pr) = (pq.into_vec(), pr.into_vec());

    let lin = LinearParams::<i32>::dna();
    let aff = AffineParams::<i32>::dna();
    let two = TwoPieceParams::<i32>::dna();
    let blos = ProteinParams::<i32>::blosum62();

    let mut g = c.benchmark_group("cpu_baselines");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(256 * 256));
    g.bench_function("nw_256", |b| b.iter(|| software::nw_score(&q, &r, &lin)));
    g.bench_function("sw_256", |b| b.iter(|| software::sw_score(&q, &r, &lin)));
    g.bench_function("semi_global_256", |b| {
        b.iter(|| software::semi_global_score(&q, &r, &lin))
    });
    g.bench_function("overlap_256", |b| {
        b.iter(|| software::overlap_score(&q, &r, &lin))
    });
    g.bench_function("affine_global_256", |b| {
        b.iter(|| software::affine_global_score(&q, &r, &aff))
    });
    g.bench_function("affine_local_256", |b| {
        b.iter(|| software::affine_local_score(&q, &r, &aff))
    });
    g.bench_function("two_piece_256", |b| {
        b.iter(|| software::two_piece_global_score(&q, &r, &two))
    });
    g.bench_function("banded_nw_256_w32", |b| {
        b.iter(|| software::banded_nw_score(&q, &r, &lin, 32))
    });
    g.bench_function("banded_affine_local_256_w32", |b| {
        b.iter(|| software::banded_affine_local_score(&q, &r, &aff, 32))
    });
    g.bench_function("protein_sw_256", |b| {
        b.iter(|| software::protein_sw_score(&pq, &pr, &blos))
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
