//! Criterion benches of the two DP engines (reference matrix-fill vs the
//! cycle-level systolic simulator) on representative kernels — the
//! simulation-cost ablation of DESIGN.md §4.5, measured properly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dphls_core::{run_reference, Banding, KernelConfig};
use dphls_kernels::{Dtw, GlobalAffine, GlobalLinear, LinearParams, NoParams};
use dphls_seq::gen::{ComplexSignalGenerator, ReadSimulator};
use dphls_systolic::run_systolic;
use std::time::Duration;

fn dna_pair(len: usize) -> (Vec<dphls_seq::Base>, Vec<dphls_seq::Base>) {
    let mut sim = ReadSimulator::new(42);
    let (r, mut q) = sim.read_pair(len, 0.25);
    q.truncate(len);
    (q.into_vec(), r.into_vec())
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for len in [64usize, 256] {
        let (q, r) = dna_pair(len);
        let params = LinearParams::<i16>::dna();
        let cells = (len * len) as u64;
        g.throughput(Throughput::Elements(cells));
        g.bench_with_input(BenchmarkId::new("reference_nw", len), &len, |b, _| {
            b.iter(|| run_reference::<GlobalLinear>(&params, &q, &r, Banding::None))
        });
        let cfg = KernelConfig::new(32.min(len), 1, 1).with_max_lengths(len, len);
        g.bench_with_input(BenchmarkId::new("systolic_nw", len), &len, |b, _| {
            b.iter(|| run_systolic::<GlobalLinear>(&params, &q, &r, &cfg).unwrap())
        });
    }

    // Affine (3 layers) and DTW (fixed point) engine costs.
    {
        let (q, r) = dna_pair(128);
        let params = dphls_kernels::AffineParams::<i16>::dna();
        let cfg = KernelConfig::new(32, 1, 1).with_max_lengths(128, 160);
        g.bench_function("systolic_affine_128", |b| {
            b.iter(|| run_systolic::<GlobalAffine<i16>>(&params, &q, &r, &cfg).unwrap())
        });
    }
    {
        let mut gen = ComplexSignalGenerator::new(7);
        let (a, bsig) = gen.warped_pair(128, 0.2);
        let (a, bsig) = (a.into_vec(), bsig.into_vec());
        let cfg = KernelConfig::new(32, 1, 1).with_max_lengths(256, 256);
        g.bench_function("systolic_dtw_128", |b| {
            b.iter(|| run_systolic::<Dtw>(&NoParams, &a, &bsig, &cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
