//! Criterion bench regenerating every **figure** experiment (Fig 3–6, §7.5,
//! and the tiling study): each benchmark executes the corresponding
//! experiment driver end-to-end, so `cargo bench` exercises the exact code
//! that reproduces each figure.

use criterion::{criterion_group, criterion_main, Criterion};
use dphls_bench::experiments::{fig3, fig4, fig5, fig6, sec75, tiling};
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("fig3_scaling", |b| b.iter(fig3::run));
    g.bench_function("fig4_rtl_baselines", |b| b.iter(fig4::run));
    g.bench_function("fig5_npe_sweep", |b| b.iter(fig5::run));
    g.bench_function("fig6_iso_cost_calibrated", |b| b.iter(|| fig6::run(0)));
    g.bench_function("sec75_hls_baseline", |b| b.iter(sec75::run));
    g.bench_function("tiling_long_reads", |b| b.iter(tiling::run));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
