//! Criterion bench of the multi-lane wavefront engine (ISSUE 2): the PR 1
//! scalar scratch path vs the LANE_WIDTH-chunked lane path, on the same
//! 10k-pair-class banded short-read workload the acceptance gate uses
//! (shrunk to criterion-sample size), plus the affine kernel where the
//! three-layer SoA recurrence shows the largest win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dphls_bench::perf::make_workload;
use dphls_core::KernelConfig;
use dphls_kernels::{AffineParams, GlobalAffine, GlobalLinear, LinearParams};
use dphls_systolic::{
    run_systolic_scalar_with_scratch, run_systolic_with_scratch, SystolicScratch,
};
use std::time::Duration;

fn bench_lanes(c: &mut Criterion) {
    let pairs = 200usize;
    let len = 256usize;
    let workload = make_workload(pairs, len, 0xD9);
    let linear = LinearParams::<i16>::dna();
    let affine = AffineParams::<i16>::dna();
    let banded_cfg = KernelConfig::new(32, 1, 1)
        .with_max_lengths(len, len)
        .with_banding(16);
    let full_cfg = KernelConfig::new(32, 1, 1).with_max_lengths(len, len);

    let mut g = c.benchmark_group("lanes");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(pairs as u64));

    g.bench_with_input(BenchmarkId::new("banded_scalar", pairs), &pairs, |b, _| {
        let mut scratch = SystolicScratch::new();
        b.iter(|| {
            for (q, r) in &workload {
                run_systolic_scalar_with_scratch::<GlobalLinear>(
                    &linear,
                    q,
                    r,
                    &banded_cfg,
                    &mut scratch,
                )
                .unwrap();
            }
        })
    });
    g.bench_with_input(BenchmarkId::new("banded_laned", pairs), &pairs, |b, _| {
        let mut scratch = SystolicScratch::new();
        b.iter(|| {
            for (q, r) in &workload {
                run_systolic_with_scratch::<GlobalLinear>(&linear, q, r, &banded_cfg, &mut scratch)
                    .unwrap();
            }
        })
    });
    g.bench_with_input(BenchmarkId::new("affine_scalar", pairs), &pairs, |b, _| {
        let mut scratch = SystolicScratch::new();
        b.iter(|| {
            for (q, r) in &workload {
                run_systolic_scalar_with_scratch::<GlobalAffine<i16>>(
                    &affine,
                    q,
                    r,
                    &full_cfg,
                    &mut scratch,
                )
                .unwrap();
            }
        })
    });
    g.bench_with_input(BenchmarkId::new("affine_laned", pairs), &pairs, |b, _| {
        let mut scratch = SystolicScratch::new();
        b.iter(|| {
            for (q, r) in &workload {
                run_systolic_with_scratch::<GlobalAffine<i16>>(
                    &affine,
                    q,
                    r,
                    &full_cfg,
                    &mut scratch,
                )
                .unwrap();
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lanes);
criterion_main!(benches);
