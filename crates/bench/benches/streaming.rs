//! Criterion bench of the streaming pipeline (ISSUE 3): `run_batched` over
//! a materialized workload vs `run_streamed` fed pair-by-pair through the
//! bounded producer channel, on the banded gate workload (shrunk to
//! criterion-sample size), plus a tight-buffer point showing the cost of
//! lockstep production.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dphls_bench::perf::make_workload;
use dphls_core::KernelConfig;
use dphls_host::{run_batched, run_streamed, StreamConfig};
use dphls_kernels::{GlobalLinear, LinearParams};
use dphls_systolic::{CycleModelParams, Device, KernelCycleInfo};
use std::time::Duration;

fn bench_streaming(c: &mut Criterion) {
    let pairs = 200usize;
    let len = 256usize;
    let workload = make_workload(pairs, len, 0xD9);
    let params = LinearParams::<i16>::dna();
    let config = KernelConfig::new(32, 1, 4)
        .with_max_lengths(len, len)
        .with_banding(16);
    let device = Device::new(
        config,
        CycleModelParams::dphls(),
        KernelCycleInfo {
            sym_bits: 2,
            has_walk: true,
            ii: 1,
        },
        250.0,
    );

    let mut g = c.benchmark_group("streaming");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(pairs as u64));

    g.bench_with_input(BenchmarkId::new("batched", pairs), &pairs, |b, _| {
        b.iter(|| run_batched::<GlobalLinear>(&device, &params, &workload).unwrap())
    });
    for (name, cfg) in [
        ("streamed_default", StreamConfig::default()),
        (
            "streamed_lockstep",
            StreamConfig {
                buffer: 1,
                window: 8,
                nb_slots: 0,
            },
        ),
    ] {
        g.bench_with_input(BenchmarkId::new(name, pairs), &pairs, |b, _| {
            b.iter(|| {
                run_streamed::<GlobalLinear, _, std::convert::Infallible, _>(
                    &device,
                    &params,
                    workload.iter().cloned().map(Ok),
                    cfg,
                    |_, out| {
                        std::hint::black_box(&out);
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
