//! Criterion bench regenerating **Table 2**: one benchmark per kernel runs
//! the full synthesize→co-simulate pipeline at the paper's optimal
//! configuration. The printed table itself comes from
//! `cargo run -p dphls-bench --bin table2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dphls_bench::harness::collect_cases;
use dphls_kernels::registry::WorkloadSpec;
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let cases = collect_cases(&WorkloadSpec {
        pairs: 2,
        len: 128,
        ..WorkloadSpec::default()
    });
    let mut g = c.benchmark_group("table2");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    for case in &cases {
        g.bench_with_input(
            BenchmarkId::new("kernel", case.info.meta.id.0),
            case,
            |b, case| b.iter(|| case.run_table2()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
