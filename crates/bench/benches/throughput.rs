//! Criterion bench of the batched alignment engines (ISSUE 1): the naive
//! per-alignment-allocation baseline vs the zero-allocation scratch path vs
//! the work-stealing batch engine, on a banded short-read workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dphls_bench::naive::run_systolic_naive;
use dphls_bench::perf::make_workload;
use dphls_core::KernelConfig;
use dphls_host::run_batched;
use dphls_kernels::{GlobalLinear, LinearParams};
use dphls_systolic::{
    run_systolic_with_scratch, CycleModelParams, Device, KernelCycleInfo, SystolicScratch,
};
use std::time::Duration;

fn bench_throughput(c: &mut Criterion) {
    let pairs = 200usize;
    let len = 256usize;
    let workload = make_workload(pairs, len, 0xBE);
    let params = LinearParams::<i16>::dna();
    let cfg = KernelConfig::new(32, 1, 4)
        .with_max_lengths(len, len)
        .with_banding(16);

    let mut g = c.benchmark_group("throughput");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(pairs as u64));

    g.bench_with_input(BenchmarkId::new("naive_alloc", pairs), &pairs, |b, _| {
        b.iter(|| {
            for (q, r) in &workload {
                run_systolic_naive::<GlobalLinear>(&params, q, r, &cfg);
            }
        })
    });

    g.bench_with_input(BenchmarkId::new("scratch_reuse", pairs), &pairs, |b, _| {
        let mut scratch = SystolicScratch::new();
        b.iter(|| {
            for (q, r) in &workload {
                run_systolic_with_scratch::<GlobalLinear>(&params, q, r, &cfg, &mut scratch)
                    .unwrap();
            }
        })
    });

    let device = Device::new(
        cfg,
        CycleModelParams::dphls(),
        KernelCycleInfo {
            sym_bits: 2,
            has_walk: true,
            ii: 1,
        },
        250.0,
    );
    g.bench_with_input(
        BenchmarkId::new("work_stealing_nk4", pairs),
        &pairs,
        |b, _| b.iter(|| run_batched::<GlobalLinear>(&device, &params, &workload).unwrap()),
    );
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
