//! Runs the design-choice ablations from DESIGN.md §4.

use dphls_bench::experiments::ablation;

fn main() {
    print!("{}", ablation::render_all());
}
