//! Runs every experiment in DESIGN.md's per-experiment index and prints the
//! full paper-vs-measured report (the source of EXPERIMENTS.md's tables).

use dphls_bench::experiments::{
    ablation, explore, fig3, fig4, fig5, fig6, productivity, sec75, table2, tiling,
};
use dphls_bench::report;

fn main() {
    // `--json <path>` writes the machine-readable report instead.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or("experiments.json");
        let full = report::build(50);
        std::fs::write(path, report::to_json(&full)).expect("write JSON report");
        println!("wrote {path}");
        return;
    }
    println!("==== Table 2 ====");
    let t2 = table2::run();
    println!("{}", table2::render(&t2));

    println!("==== Fig 3 ====");
    let (k1, k9) = fig3::run();
    println!("{}", fig3::render(&k1));
    println!("{}", fig3::render(&k9));

    println!("==== Fig 4 ====");
    println!("{}", fig4::render(&fig4::run()));

    println!("==== Fig 5 ====");
    println!("{}", fig5::render(&fig5::run()));

    println!("==== Fig 6 ====");
    let (cpu, gpu) = fig6::run(100);
    println!(
        "{}",
        fig6::render("Fig 6A — CPU baselines (iso-cost)", &cpu)
    );
    println!(
        "{}",
        fig6::render("Fig 6B — GPU baselines (iso-cost)", &gpu)
    );

    println!("==== Section 7.5 ====");
    println!("{}", sec75::render(&sec75::run()));

    println!("==== Long-read tiling ====");
    println!("{}", tiling::render(&tiling::run()));

    println!("==== Ablations ====");
    print!("{}", ablation::render_all());

    println!("==== Configuration exploration (§6.2) ====");
    println!("{}", explore::render(&explore::run()));

    println!("==== Section 7.6 productivity proxy ====");
    let (kern, back) = productivity::run();
    println!("{}", productivity::render(&kern, &back));
}
