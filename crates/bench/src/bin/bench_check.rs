//! Validates a `BENCH_throughput.json` report and optionally diffs its
//! speedup ratios against a committed baseline — the CI bench-regression
//! gate, runnable locally:
//!
//! ```text
//! cargo run -p dphls-bench --bin bench_check -- --report bench_smoke.json
//! cargo run -p dphls-bench --bin bench_check -- \
//!     --report bench_current.json --baseline BENCH_throughput.json --tolerance 0.15
//! ```
//!
//! Exit status 0 = schema valid and (if a baseline was given) no speedup
//! ratio regressed beyond tolerance; 1 = problems found; 2 = usage error.

use dphls_bench::check::{compare, validate, DEFAULT_TOLERANCE};

fn read_json(path: &str) -> serde::JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_check: {path} is not valid JSON: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let mut report_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => report_path = args.next(),
            "--baseline" => baseline_path = args.next(),
            "--tolerance" => {
                tolerance = match args.next().and_then(|v| v.parse().ok()) {
                    Some(t) if (0.0..1.0).contains(&t) => t,
                    _ => {
                        eprintln!("--tolerance needs a fraction in [0, 1)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_check --report FILE [--baseline FILE] [--tolerance FRAC]");
                std::process::exit(2);
            }
        }
    }
    let Some(report_path) = report_path else {
        eprintln!("usage: bench_check --report FILE [--baseline FILE] [--tolerance FRAC]");
        std::process::exit(2);
    };

    let report = read_json(&report_path);
    let problems = validate(&report);
    if problems.is_empty() {
        println!("{report_path}: schema OK");
    } else {
        eprintln!("{report_path}: {} schema problem(s):", problems.len());
        for p in &problems {
            eprintln!("  - {p}");
        }
        std::process::exit(1);
    }

    if let Some(baseline_path) = baseline_path {
        let baseline = read_json(&baseline_path);
        let baseline_problems = validate(&baseline);
        if !baseline_problems.is_empty() {
            eprintln!(
                "{baseline_path}: baseline has {} schema problem(s):",
                baseline_problems.len()
            );
            for p in &baseline_problems {
                eprintln!("  - {p}");
            }
            std::process::exit(1);
        }
        let cmp = compare(&report, &baseline, tolerance);
        for note in &cmp.notes {
            println!("note: {note}");
        }
        if cmp.regressions.is_empty() {
            println!(
                "{report_path} vs {baseline_path}: no speedup regression beyond {:.0}%",
                tolerance * 100.0
            );
        } else {
            eprintln!(
                "{report_path} vs {baseline_path}: {} regression(s):",
                cmp.regressions.len()
            );
            for r in &cmp.regressions {
                eprintln!("  - {r}");
            }
            std::process::exit(1);
        }
    }
}
