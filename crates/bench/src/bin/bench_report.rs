//! Emits `BENCH_throughput.json`: wall-clock alignments/second of the
//! naive baseline, the scalar scratch engine (PR 1), the multi-lane engine
//! (PR 2), and the work-stealing batch engine across the standard workload
//! matrix, plus the ISSUE 1 (≥ 2× scratch-vs-naive) and ISSUE 2 (≥ 1.3×
//! laned-vs-scratch) acceptance measurements, the ISSUE 3 streaming
//! comparison (streamed-vs-batched, gated ≥ 0.9×), the ISSUE 5
//! NB-scaling point (modeled NB-vs-1 ratio, gated ≥ 3.5× at NB = 4), and
//! the PR 6 resilience-overhead point (instrumented-vs-fast-path, gated
//! ≥ 0.95×), the PR 7 serving point (`dphls-serve` under open-loop
//! load vs direct streaming, gated ≥ 0.5×, with latency percentiles), and
//! the ISSUE 8 adaptive-precision point (saturating-`i8` fast path vs the
//! exact `i16` path, gated ≥ 1.3×, escalation rate recorded), and the
//! ISSUE 9 mapping point (long-read recall through the `dphls-mapper`
//! seed-chain-extend pipeline, gated ≥ 0.99 recall and ≤ 0.3× full-band
//! DP cells, plus the sDTW squiggle-separation sub-metric, gated > 1 —
//! all three counting-derived and enforced at every scale), and the PR 10
//! fleet point (modeled 4-device-vs-1 sharding ratio over the banded
//! acceptance workload, gated ≥ 3.5× machine-independently at every scale;
//! the wall-clock device ratio rides along under the 1-core caveat).
//! Validate or diff a report with `bench_check`.
//!
//! ```text
//! cargo run --release -p dphls-bench --bin bench_report            # full matrix
//! cargo run --release -p dphls-bench --bin bench_report -- --scale 20 --out /tmp/t.json
//! ```

use dphls_bench::perf;

fn main() {
    let mut scale = 1usize;
    let mut out = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--scale needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                out = match args.next() {
                    Some(path) => path,
                    None => {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_report [--scale N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "measuring throughput matrix (scale 1/{scale}, {} cores)...",
        perf::host_cores()
    );
    let report = perf::build_report(scale);
    for p in &report.points {
        eprintln!(
            "  {:<12} len {:>4} x{:<6} NPE={:<3} NK={} | naive {:>9.0} aln/s | scratch {:>9.0} ({:>4.2}x) | laned {:>9.0} ({:>4.2}x, {:>4.2}x vs scratch) | batched {:>9.0} ({:>4.2}x)",
            p.workload, p.len, p.pairs, p.npe, p.nk,
            p.naive_aps, p.scratch_aps, p.scratch_speedup,
            p.laned_aps, p.laned_speedup, p.lane_vs_scratch,
            p.batched_aps, p.batched_speedup,
        );
    }
    eprintln!(
        "  streaming    {} x{:<6} NK={} buffer={} window={} | batched {:>9.0} aln/s | streamed {:>9.0} ({:.2}x) {}",
        report.streaming.workload,
        report.streaming.pairs,
        report.streaming.nk,
        report.streaming.buffer,
        report.streaming.window,
        report.streaming.batched_aps,
        report.streaming.streamed_aps,
        report.streaming.ratio,
        if report.streaming.pass {
            format!("PASS (>= {}x)", dphls_bench::check::STREAMING_GATE)
        } else {
            format!("FAIL (< {}x)", dphls_bench::check::STREAMING_GATE)
        },
    );
    eprintln!(
        "  nb_scaling   {} x{:<6} NPE={} NB={} NK={} | slots1 {:>9.0} aln/s | slots{} {:>9.0} ({:.2}x wall) | modeled NBx{:.2} {}",
        report.nb_scaling.workload,
        report.nb_scaling.pairs,
        report.nb_scaling.npe,
        report.nb_scaling.nb,
        report.nb_scaling.nk,
        report.nb_scaling.slots1_aps,
        report.nb_scaling.nb,
        report.nb_scaling.slots_nb_aps,
        report.nb_scaling.slot_ratio,
        report.nb_scaling.modeled_nb_ratio,
        if report.nb_scaling.pass {
            format!("PASS (>= {}x)", dphls_bench::check::NB_MODEL_GATE)
        } else {
            format!("FAIL (< {}x)", dphls_bench::check::NB_MODEL_GATE)
        },
    );
    eprintln!(
        "  fleet        {} x{:<6} NPE={} NB={} NK={} D={} | d1 {:>9.0} aln/s | d{} {:>9.0} ({:.2}x wall) | modeled Dx{:.2} {}",
        report.fleet.workload,
        report.fleet.pairs,
        report.fleet.npe,
        report.fleet.nb,
        report.fleet.nk,
        report.fleet.devices,
        report.fleet.d1_aps,
        report.fleet.devices,
        report.fleet.d_aps,
        report.fleet.d_wall_ratio,
        report.fleet.d_ratio,
        if report.fleet.pass {
            format!("PASS (>= {}x)", dphls_bench::check::FLEET_MODEL_GATE)
        } else {
            format!("FAIL (< {}x)", dphls_bench::check::FLEET_MODEL_GATE)
        },
    );
    eprintln!(
        "  resilience   {} x{:<6} NK={} | disabled {:>9.0} aln/s | resilient {:>9.0} ({:.2}x) {}",
        report.resilience_overhead.workload,
        report.resilience_overhead.pairs,
        report.resilience_overhead.nk,
        report.resilience_overhead.disabled_aps,
        report.resilience_overhead.resilient_aps,
        report.resilience_overhead.ratio,
        if report.resilience_overhead.pass {
            format!("PASS (>= {}x)", dphls_bench::check::RESILIENCE_GATE)
        } else {
            format!("FAIL (< {}x)", dphls_bench::check::RESILIENCE_GATE)
        },
    );
    eprintln!(
        "  serving      {} x{:<6} conns={} NK={} | streamed {:>9.0} aln/s | served {:>9.0} rps ({:.2}x) p50 {:.2} ms p99 {:.2} ms {}",
        report.serving.workload,
        report.serving.pairs,
        report.serving.connections,
        report.serving.nk,
        report.serving.streamed_aps,
        report.serving.served_rps,
        report.serving.ratio,
        report.serving.p50_ms,
        report.serving.p99_ms,
        if report.serving.pass {
            format!("PASS (>= {}x)", dphls_bench::check::SERVING_GATE)
        } else {
            format!("FAIL (< {}x)", dphls_bench::check::SERVING_GATE)
        },
    );
    eprintln!(
        "  adaptive     {} x{:<6} NK={} lanes={} | exact {:>9.0} aln/s | adaptive {:>9.0} ({:.2}x) esc {:.1}% {}",
        report.adaptive_precision.workload,
        report.adaptive_precision.pairs,
        report.adaptive_precision.nk,
        report.adaptive_precision.lanes,
        report.adaptive_precision.exact_aps,
        report.adaptive_precision.adaptive_aps,
        report.adaptive_precision.ratio,
        report.adaptive_precision.escalation_rate * 100.0,
        if report.adaptive_precision.pass {
            format!("PASS (>= {}x)", dphls_bench::check::ADAPTIVE_GATE)
        } else {
            format!("FAIL (< {}x)", dphls_bench::check::ADAPTIVE_GATE)
        },
    );
    eprintln!(
        "  mapping      {} x{:<6} len {}-{} err {:.0}% | {:>9.0} reads/s | recall {:.4} {} | cells {:.3}x {} | sDTW sep {:.2}x {}",
        report.mapping.workload,
        report.mapping.reads,
        report.mapping.min_len,
        report.mapping.max_len,
        report.mapping.error_rate * 100.0,
        report.mapping.mapped_aps,
        report.mapping.recall,
        if report.mapping.recall_pass {
            format!("PASS (>= {})", dphls_bench::check::MAPPING_RECALL_GATE)
        } else {
            format!("FAIL (< {})", dphls_bench::check::MAPPING_RECALL_GATE)
        },
        report.mapping.cells_ratio,
        if report.mapping.cells_pass {
            format!("PASS (<= {}x)", dphls_bench::check::MAPPING_CELLS_GATE)
        } else {
            format!("FAIL (> {}x)", dphls_bench::check::MAPPING_CELLS_GATE)
        },
        report.mapping.sdtw_separation,
        if report.mapping.sdtw_pass {
            format!("PASS (> {}x)", dphls_bench::check::MAPPING_SDTW_GATE)
        } else {
            format!("FAIL (<= {}x)", dphls_bench::check::MAPPING_SDTW_GATE)
        },
    );
    eprintln!(
        "acceptance ({} x{}): scratch/naive {:.2}x {} | laned/scratch {:.2}x {}",
        report.acceptance.workload,
        report.acceptance.pairs,
        report.acceptance.speedup,
        if report.acceptance.pass {
            "PASS (>= 2x)"
        } else {
            "FAIL (< 2x)"
        },
        report.acceptance.lane_vs_scratch,
        if report.acceptance.lane_pass {
            "PASS (>= 1.3x)"
        } else {
            "FAIL (< 1.3x)"
        },
    );

    let json = serde_json::to_string_pretty(&report).expect("report serialization");
    std::fs::write(&out, &json).expect("write report file");
    // Self-check: the emitted file must round-trip as well-formed JSON.
    serde_json::from_str(&json).expect("emitted report must be valid JSON");
    println!("{out}");
}
