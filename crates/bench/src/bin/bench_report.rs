//! Emits `BENCH_throughput.json`: wall-clock alignments/second of the
//! naive baseline, the scratch engine, and the work-stealing batch engine
//! across the standard workload matrix, plus the ISSUE 1 ≥ 2× acceptance
//! measurement.
//!
//! ```text
//! cargo run --release -p dphls-bench --bin bench_report            # full matrix
//! cargo run --release -p dphls-bench --bin bench_report -- --scale 20 --out /tmp/t.json
//! ```

use dphls_bench::perf;

fn main() {
    let mut scale = 1usize;
    let mut out = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--scale needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                out = match args.next() {
                    Some(path) => path,
                    None => {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_report [--scale N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("measuring throughput matrix (scale 1/{scale})...");
    let report = perf::build_report(scale);
    for p in &report.points {
        eprintln!(
            "  {:<12} len {:>4} x{:<6} NPE={:<3} NK={} | naive {:>10.0} aln/s | scratch {:>10.0} ({:>4.2}x) | batched {:>10.0} ({:>4.2}x)",
            p.workload, p.len, p.pairs, p.npe, p.nk,
            p.naive_aps, p.scratch_aps, p.scratch_speedup, p.batched_aps, p.batched_speedup,
        );
    }
    eprintln!(
        "acceptance ({} x{}): {:.2}x {}",
        report.acceptance.workload,
        report.acceptance.pairs,
        report.acceptance.speedup,
        if report.acceptance.pass {
            "PASS (>= 2x)"
        } else {
            "FAIL (< 2x)"
        },
    );

    let json = serde_json::to_string_pretty(&report).expect("report serialization");
    std::fs::write(&out, &json).expect("write report file");
    // Self-check: the emitted file must round-trip as well-formed JSON.
    serde_json::from_str(&json).expect("emitted report must be valid JSON");
    println!("{out}");
}
