//! Automates the paper's §6.2 configuration search: find the
//! throughput-maximizing (NPE, NB, NK) per kernel on the modeled device and
//! compare against Table 2's reported optima.

use dphls_bench::experiments::explore;

fn main() {
    println!("{}", explore::render(&explore::run()));
}
