//! Regenerates Fig 3: NPE / NB scaling of Global Linear (#1) and DTW (#9),
//! throughput and resource utilization.

use dphls_bench::experiments::fig3;

fn main() {
    let (k1, k9) = fig3::run();
    println!("{}", fig3::render(&k1));
    println!("{}", fig3::render(&k9));
}
