//! Regenerates Fig 4: DP-HLS kernels #2/#12/#14 vs the GACT / BSW /
//! SquiggleFilter RTL baselines (throughput and resources).

use dphls_bench::experiments::fig4;

fn main() {
    let rows = fig4::run();
    println!("{}", fig4::render(&rows));
}
