//! Regenerates Fig 5: NPE scaling of Global Affine (#2) vs GACT.

use dphls_bench::experiments::fig5;

fn main() {
    println!("{}", fig5::render(&fig5::run()));
}
