//! Regenerates Fig 6: iso-cost comparison against CPU (A) and GPU (B)
//! baselines, with both paper-calibrated and live-measured baseline columns.

use dphls_bench::experiments::fig6;

fn main() {
    let (cpu, gpu) = fig6::run(200);
    println!(
        "{}",
        fig6::render("Fig 6A — CPU baselines (iso-cost)", &cpu)
    );
    println!(
        "{}",
        fig6::render("Fig 6B — GPU baselines (iso-cost)", &gpu)
    );
}
