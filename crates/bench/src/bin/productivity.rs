//! The §7.6 productivity proxy: front-end kernel LoC vs shared framework.

use dphls_bench::experiments::productivity;

fn main() {
    let (kernels, backend) = productivity::run();
    println!("{}", productivity::render(&kernels, &backend));
}
