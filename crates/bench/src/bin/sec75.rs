//! Regenerates the §7.5 comparison: kernel #3 vs the Vitis Genomics Library
//! Smith-Waterman HLS baseline.

use dphls_bench::experiments::sec75;

fn main() {
    println!("{}", sec75::render(&sec75::run()));
}
