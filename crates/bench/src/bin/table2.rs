//! Regenerates Table 2 (all 15 kernels): resource utilization, optimal
//! configuration, frequency, and throughput, with paper reference columns.

use dphls_bench::experiments::table2;

fn main() {
    let rows = table2::run();
    println!("{}", table2::render(&rows));
    let ratios: Vec<f64> = rows.iter().map(|r| r.throughput_ratio()).collect();
    println!(
        "geomean modeled/paper throughput ratio: {:.2}x over {} kernels",
        dphls_util::geomean(&ratios),
        rows.len()
    );
}
