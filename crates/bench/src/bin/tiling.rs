//! Regenerates the long-read tiling study (§6.2/§7.3): kernel #2 with
//! GACT-style tiling up to 10 kb reads.

use dphls_bench::experiments::tiling;

fn main() {
    println!("{}", tiling::render(&tiling::run()));
}
