//! Schema validation and regression diffing for `BENCH_throughput.json`
//! reports (the `bench_check` binary, run locally and by CI).
//!
//! The previous CI smoke step was a blob of inline Python whose assertions
//! silently passed when the `acceptance` object was missing entirely; this
//! module validates the **full** report schema — version, per-point keys,
//! speedup-ratio consistency, acceptance gates — and can diff a fresh run
//! against the committed baseline.
//!
//! Absolute aln/s figures are machine-dependent, so the regression gate
//! compares only the **speedup ratios** (`scratch_speedup`, `laned_speedup`,
//! `lane_vs_scratch`, `batched_speedup`), which track engine quality rather
//! than container luck. The `batched_speedup` of `nk > 1` points is only
//! compared when *both* reports were recorded with more than one core —
//! the ROADMAP's "no thread scaling on a 1-core container" caveat,
//! machine-checked via the report's `host_cores` field.

use serde::JsonValue;

/// Report schema version this checker understands.
pub const SCHEMA_VERSION: u64 = 9;

/// Default relative tolerance of the regression gate (15 %).
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// Minimum streamed/batched throughput ratio (the ISSUE 3 streaming gate):
/// the bounded-memory pipeline may not cost more than 10 % of the batch
/// engine's throughput on the gate workload.
pub const STREAMING_GATE: f64 = 0.9;

/// Pair count below which the absolute [`STREAMING_GATE`] is not enforced:
/// a scaled-down smoke run times each engine for ~10 ms, where a single
/// scheduler hiccup swings the ratio by 30 % — an absolute threshold on
/// such a sample is noise, not signal. Small runs still get the pass-flag
/// consistency check plus the relative diff against the committed
/// (full-scale, gated) baseline in [`compare`].
pub const STREAMING_GATE_MIN_PAIRS: f64 = 2_000.0;

/// Minimum modeled NB-vs-1 throughput ratio of the `nb_scaling` point (the
/// ISSUE 5 gate): a 4-block channel on the banded acceptance workload must
/// model at least 3.5× a 1-block channel — per Fig 3C, NB scaling is
/// near-perfect until the arbiter binds, and the banded workload's I/O
/// phases are far too small to bind it. The ratio is derived from
/// `BlockStats`, so unlike the wall-clock gates it is machine-independent
/// and enforced at every scale.
pub const NB_MODEL_GATE: f64 = 3.5;

/// Minimum modeled fleet-vs-1 throughput ratio of the `fleet` point (the
/// PR 10 gate): a 4-device fleet on the banded acceptance workload must
/// model at least 3.5× one device after paying the PCIe-class transfer
/// cost — the workload's transfer payload (packed sequences, 2-bit path,
/// and a fixed record) is small next to its fill, so sharding is
/// near-perfect. Like [`NB_MODEL_GATE`] the ratio is derived from
/// `BlockStats`, machine-independent, and enforced at every scale; the
/// wall-clock `d_wall_ratio` riding on the same point carries the 1-core
/// `host_cores` caveat instead.
pub const FLEET_MODEL_GATE: f64 = 3.5;

/// Minimum resilient/disabled throughput ratio of the
/// `resilience_overhead` point (the PR 6 gate): enabling the instrumented
/// resilience path (deadline clock, `catch_unwind` frame, retry
/// bookkeeping) on a fault-free workload may not cost more than 5 % of the
/// fast path's throughput. Like [`STREAMING_GATE`] this is a wall-clock
/// ratio, so the absolute threshold is only enforced at or above
/// [`STREAMING_GATE_MIN_PAIRS`] pairs; smaller smoke runs keep the
/// pass-flag consistency check and the relative diff in [`compare`].
pub const RESILIENCE_GATE: f64 = 0.95;

/// Minimum served/streamed throughput ratio of the `serving` point (the
/// PR 7 gate): answering alignment requests through the `dphls-serve`
/// front end — wire protocol, per-connection reader/writer tasks,
/// per-connection order restoration — may not forfeit more than half of
/// raw `run_streamed` throughput on the gate workload. Both runs share
/// the machine (internally paired), so the ratio itself is comparable
/// across boxes, but it is still a wall-clock figure: fixed per-run costs
/// (connection setup, session spawn) dwarf a few milliseconds of compute,
/// so both the absolute threshold and the [`compare`] diff apply only at
/// or above [`STREAMING_GATE_MIN_PAIRS`] pairs — smoke-scale runs are
/// skipped with a note. The serving latency percentiles (`p50_ms`,
/// `p99_ms`) are *not*
/// gated absolutely — they carry the 1-core `host_cores` caveat and are
/// only regression-diffed between multi-core reports in [`compare`].
pub const SERVING_GATE: f64 = 0.5;

/// Minimum adaptive/exact throughput ratio of the `adaptive_precision`
/// point (the ISSUE 8 gate): the saturating-`i8` fast path — including the
/// escalation tax of its planted guard-tripping pairs — must beat the
/// exact `i16` path by at least 1.3× on the short-read banded workload.
/// Both runs share the engine machinery and the machine (internally
/// paired), so the ratio itself is comparable across boxes; like the other
/// wall-clock gates, the absolute threshold is only enforced at or above
/// [`STREAMING_GATE_MIN_PAIRS`] pairs. The point's `escalation_rate` must
/// be strictly inside `(0, 1)` at every scale — a rate of 0 means the
/// workload never exercises the escalation path (best-case benchmarking),
/// 1 means the fast path never ran at all.
pub const ADAPTIVE_GATE: f64 = 1.3;

/// Minimum locus recall of the `mapping` point (the ISSUE 9 gate): of the
/// simulated long reads (1–5 kb, ~5% error, both strands) streamed through
/// the `dphls-mapper` seed-chain-extend pipeline, at least this fraction
/// must map to their true sampling locus (±64) on their true strand. The
/// recall is a counting figure over a deterministic workload — machine-
/// independent — so like [`NB_MODEL_GATE`] it is enforced at every scale.
pub const MAPPING_RECALL_GATE: f64 = 0.99;

/// Maximum X-drop/full-band DP-cell ratio of the `mapping` point (the
/// other half of the ISSUE 9 gate): the X-drop extension stage may touch
/// at most this fraction of the cells a fixed 128-wide band over the same
/// (read × window) problems would compute. The full-band denominator is
/// analytic (`Banding::cells_in_row` summed), so the ratio is a counting
/// figure too: machine-independent, enforced at every scale. Lower is
/// better — this gate and its [`compare`] direction are inverted relative
/// to the throughput ratios.
pub const MAPPING_CELLS_GATE: f64 = 0.3;

/// Minimum off-target/on-target sDTW score separation of the `mapping`
/// point's signal-space sub-metric: classifying raw nanopore squiggles
/// against the virus reference squiggle (pre-basecalling read-until) must
/// leave the best off-target per-sample distance strictly above the worst
/// on-target one — separation > 1 means a perfect threshold exists.
/// Deterministic workload, machine-independent, enforced at every scale.
pub const MAPPING_SDTW_GATE: f64 = 1.0;

/// Ratio fields diffed by the regression gate.
const RATIO_KEYS: [&str; 4] = [
    "scratch_speedup",
    "laned_speedup",
    "lane_vs_scratch",
    "batched_speedup",
];

/// Per-point throughput fields that must be present and positive.
const APS_KEYS: [&str; 4] = ["naive_aps", "scratch_aps", "laned_aps", "batched_aps"];

/// Required acceptance-object keys.
const ACCEPTANCE_KEYS: [&str; 9] = [
    "workload",
    "pairs",
    "naive_aps",
    "scratch_aps",
    "laned_aps",
    "speedup",
    "lane_vs_scratch",
    "pass",
    "lane_pass",
];

/// Required nb_scaling-object keys.
const NB_SCALING_KEYS: [&str; 13] = [
    "workload",
    "pairs",
    "len",
    "npe",
    "nb",
    "nk",
    "slots1_aps",
    "slots_nb_aps",
    "slot_ratio",
    "modeled_nb1_aps",
    "modeled_nb_aps",
    "modeled_nb_ratio",
    "pass",
];

/// Required fleet-object keys.
const FLEET_KEYS: [&str; 14] = [
    "workload",
    "pairs",
    "len",
    "npe",
    "nb",
    "nk",
    "devices",
    "d1_aps",
    "d_aps",
    "d_wall_ratio",
    "modeled_d1_aps",
    "modeled_d_aps",
    "d_ratio",
    "pass",
];

/// Required streaming-object keys.
const STREAMING_KEYS: [&str; 11] = [
    "workload",
    "pairs",
    "nk",
    "buffer",
    "window",
    "batched_aps",
    "streamed_aps",
    "ratio",
    "pass",
    "reorder_high_water",
    "resident_high_water",
];

/// Required resilience_overhead-object keys.
const RESILIENCE_KEYS: [&str; 7] = [
    "workload",
    "pairs",
    "nk",
    "disabled_aps",
    "resilient_aps",
    "ratio",
    "pass",
];

/// Required serving-object keys.
const SERVING_KEYS: [&str; 13] = [
    "workload",
    "pairs",
    "len",
    "connections",
    "nk",
    "buffer",
    "window",
    "streamed_aps",
    "served_rps",
    "ratio",
    "p50_ms",
    "p99_ms",
    "pass",
];

/// Required adaptive_precision-object keys.
const ADAPTIVE_PRECISION_KEYS: [&str; 11] = [
    "workload",
    "pairs",
    "len",
    "npe",
    "nk",
    "lanes",
    "exact_aps",
    "adaptive_aps",
    "ratio",
    "escalation_rate",
    "pass",
];

/// Required mapping-object keys.
const MAPPING_KEYS: [&str; 20] = [
    "workload",
    "reads",
    "genome_len",
    "min_len",
    "max_len",
    "error_rate",
    "mapped",
    "correct",
    "recall",
    "xdrop_cells",
    "fullband_cells",
    "cells_ratio",
    "mapped_aps",
    "reorder_high_water",
    "sdtw_pos_max",
    "sdtw_neg_min",
    "sdtw_separation",
    "recall_pass",
    "cells_pass",
    "sdtw_pass",
];

fn get<'a>(v: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match v {
        JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Int(i) => Some(*i as f64),
        JsonValue::UInt(u) => Some(*u as f64),
        JsonValue::Float(f) => Some(*f),
        _ => None,
    }
}

fn num(v: &JsonValue, key: &str) -> Option<f64> {
    get(v, key).and_then(as_f64)
}

fn text<'a>(v: &'a JsonValue, key: &str) -> Option<&'a str> {
    match get(v, key) {
        Some(JsonValue::Str(s)) => Some(s),
        _ => None,
    }
}

/// A point's identity across reports: `pairs` scales with `--scale`, so the
/// match key is everything else.
fn point_key(p: &JsonValue) -> String {
    format!(
        "{} len={} npe={} nk={}",
        text(p, "workload").unwrap_or("?"),
        num(p, "len").unwrap_or(-1.0),
        num(p, "npe").unwrap_or(-1.0),
        num(p, "nk").unwrap_or(-1.0),
    )
}

/// Validates the full report schema. Returns every problem found (an empty
/// vector means the report is well-formed).
pub fn validate(report: &JsonValue) -> Vec<String> {
    let mut problems = Vec::new();
    match num(report, "version") {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        Some(v) => problems.push(format!("version is {v}, expected {SCHEMA_VERSION}")),
        None => problems.push("missing `version`".into()),
    }
    match num(report, "host_cores") {
        Some(c) if c >= 1.0 => {}
        Some(c) => problems.push(format!("host_cores is {c}, expected >= 1")),
        None => problems.push("missing `host_cores`".into()),
    }

    let points = match get(report, "points") {
        Some(JsonValue::Array(pts)) if !pts.is_empty() => pts.as_slice(),
        Some(JsonValue::Array(_)) => {
            problems.push("`points` is empty".into());
            &[]
        }
        _ => {
            problems.push("missing `points` array".into());
            &[]
        }
    };
    let mut has_gate_point = false;
    for p in points {
        let key = point_key(p);
        if text(p, "workload").is_none() {
            problems.push(format!("point {key}: missing `workload`"));
        }
        for field in ["len", "pairs", "npe", "nk"] {
            match num(p, field) {
                Some(v) if v >= 1.0 => {}
                _ => problems.push(format!("point {key}: `{field}` missing or < 1")),
            }
        }
        for field in APS_KEYS {
            match num(p, field) {
                Some(v) if v > 0.0 => {}
                _ => problems.push(format!("point {key}: `{field}` missing or <= 0")),
            }
        }
        // Ratio consistency: the stored speedups must be the aps ratios.
        let naive = num(p, "naive_aps").unwrap_or(f64::NAN);
        let scratch = num(p, "scratch_aps").unwrap_or(f64::NAN);
        for (ratio_key, hi, lo) in [
            ("scratch_speedup", num(p, "scratch_aps"), naive),
            ("laned_speedup", num(p, "laned_aps"), naive),
            ("lane_vs_scratch", num(p, "laned_aps"), scratch),
            ("batched_speedup", num(p, "batched_aps"), naive),
        ] {
            match (num(p, ratio_key), hi) {
                (Some(stored), Some(hi)) if lo > 0.0 => {
                    let derived = hi / lo;
                    if (stored - derived).abs() > 1e-6 * derived.abs().max(1.0) {
                        problems.push(format!(
                            "point {key}: `{ratio_key}` = {stored} but aps ratio is {derived}"
                        ));
                    }
                }
                (Some(_), _) => {}
                (None, _) => problems.push(format!("point {key}: missing `{ratio_key}`")),
            }
        }
        if text(p, "workload").is_some_and(|w| w.starts_with("banded")) && num(p, "nk") == Some(1.0)
        {
            has_gate_point = true;
        }
    }
    if !points.is_empty() && !has_gate_point {
        problems.push("no banded nk=1 point (the acceptance gate workload)".into());
    }

    match get(report, "acceptance") {
        Some(acc) => {
            for field in ACCEPTANCE_KEYS {
                if get(acc, field).is_none() {
                    problems.push(format!("acceptance: missing `{field}`"));
                }
            }
            for (gate, value_key, threshold) in [
                ("pass", "speedup", 2.0),
                ("lane_pass", "lane_vs_scratch", 1.3),
            ] {
                match (get(acc, gate), num(acc, value_key)) {
                    (Some(JsonValue::Bool(stored)), Some(v)) => {
                        if *stored != (v >= threshold) {
                            problems.push(format!(
                                "acceptance: `{gate}` = {stored} disagrees with \
                                 `{value_key}` = {v} (threshold {threshold})"
                            ));
                        }
                    }
                    (Some(JsonValue::Bool(_)), None) | (None, _) => {}
                    (Some(_), _) => problems.push(format!("acceptance: `{gate}` not a bool")),
                }
            }
        }
        None => problems.push("missing `acceptance` object".into()),
    }

    match get(report, "streaming") {
        Some(st) => {
            for field in STREAMING_KEYS {
                if get(st, field).is_none() {
                    problems.push(format!("streaming: missing `{field}`"));
                }
            }
            let batched = num(st, "batched_aps");
            let streamed = num(st, "streamed_aps");
            let ratio = num(st, "ratio");
            if let (Some(b), Some(s)) = (batched, streamed) {
                if b <= 0.0 || s <= 0.0 {
                    problems.push("streaming: aps figures must be positive".into());
                } else if let Some(stored) = ratio {
                    let derived = s / b;
                    if (stored - derived).abs() > 1e-6 * derived.abs().max(1.0) {
                        problems.push(format!(
                            "streaming: `ratio` = {stored} but aps ratio is {derived}"
                        ));
                    }
                }
            }
            match (get(st, "pass"), ratio) {
                (Some(JsonValue::Bool(stored)), Some(r)) => {
                    if *stored != (r >= STREAMING_GATE) {
                        problems.push(format!(
                            "streaming: `pass` = {stored} disagrees with `ratio` = {r} \
                             (threshold {STREAMING_GATE})"
                        ));
                    }
                    // The gate itself: streaming overhead must not cost
                    // more than (1 - STREAMING_GATE) of batch throughput.
                    // Only enforced at a pair count where the wall-clock
                    // ratio is signal (the committed baseline always is).
                    if r < STREAMING_GATE
                        && num(st, "pairs").is_some_and(|p| p >= STREAMING_GATE_MIN_PAIRS)
                    {
                        problems.push(format!(
                            "streaming gate failed: streamed/batched ratio {r} < {STREAMING_GATE}"
                        ));
                    }
                }
                (Some(JsonValue::Bool(_)), None) | (None, _) => {}
                (Some(_), _) => problems.push("streaming: `pass` not a bool".into()),
            }
            // The bounded-memory evidence must respect the window.
            if let (Some(hw), Some(w)) = (num(st, "resident_high_water"), num(st, "window")) {
                if hw > w {
                    problems.push(format!(
                        "streaming: `resident_high_water` = {hw} exceeds `window` = {w}"
                    ));
                }
            }
        }
        None => problems.push("missing `streaming` object".into()),
    }

    match get(report, "nb_scaling") {
        Some(nb) => {
            for field in NB_SCALING_KEYS {
                if get(nb, field).is_none() {
                    problems.push(format!("nb_scaling: missing `{field}`"));
                }
            }
            // The point must actually sweep NB: a 1-block channel cannot
            // demonstrate intra-channel scaling.
            match num(nb, "nb") {
                Some(v) if v >= 2.0 => {}
                Some(v) => problems.push(format!("nb_scaling: `nb` is {v}, expected >= 2")),
                None => {}
            }
            // Stored ratios must be the aps ratios.
            for (ratio_key, hi_key, lo_key) in [
                ("slot_ratio", "slots_nb_aps", "slots1_aps"),
                ("modeled_nb_ratio", "modeled_nb_aps", "modeled_nb1_aps"),
            ] {
                if let (Some(stored), Some(hi), Some(lo)) =
                    (num(nb, ratio_key), num(nb, hi_key), num(nb, lo_key))
                {
                    if lo <= 0.0 || hi <= 0.0 {
                        problems.push(format!(
                            "nb_scaling: `{hi_key}`/`{lo_key}` must be positive"
                        ));
                    } else {
                        let derived = hi / lo;
                        if (stored - derived).abs() > 1e-6 * derived.abs().max(1.0) {
                            problems.push(format!(
                                "nb_scaling: `{ratio_key}` = {stored} but aps ratio is {derived}"
                            ));
                        }
                    }
                }
            }
            match (get(nb, "pass"), num(nb, "modeled_nb_ratio")) {
                (Some(JsonValue::Bool(stored)), Some(r)) => {
                    if *stored != (r >= NB_MODEL_GATE) {
                        problems.push(format!(
                            "nb_scaling: `pass` = {stored} disagrees with \
                             `modeled_nb_ratio` = {r} (threshold {NB_MODEL_GATE})"
                        ));
                    }
                    // The gate itself. The modeled ratio is stats-derived
                    // (machine-independent), so unlike the wall-clock
                    // streaming gate it is enforced at every pair count.
                    if r < NB_MODEL_GATE {
                        problems.push(format!(
                            "nb_scaling gate failed: modeled NB ratio {r} < {NB_MODEL_GATE}"
                        ));
                    }
                }
                (Some(JsonValue::Bool(_)), None) | (None, _) => {}
                (Some(_), _) => problems.push("nb_scaling: `pass` not a bool".into()),
            }
        }
        None => problems.push("missing `nb_scaling` object".into()),
    }

    match get(report, "fleet") {
        Some(fl) => {
            for field in FLEET_KEYS {
                if get(fl, field).is_none() {
                    problems.push(format!("fleet: missing `{field}`"));
                }
            }
            // The point must actually shard: a 1-device fleet cannot
            // demonstrate cross-device scaling.
            match num(fl, "devices") {
                Some(v) if v >= 2.0 => {}
                Some(v) => problems.push(format!("fleet: `devices` is {v}, expected >= 2")),
                None => {}
            }
            // Stored ratios must be the aps ratios.
            for (ratio_key, hi_key, lo_key) in [
                ("d_wall_ratio", "d_aps", "d1_aps"),
                ("d_ratio", "modeled_d_aps", "modeled_d1_aps"),
            ] {
                if let (Some(stored), Some(hi), Some(lo)) =
                    (num(fl, ratio_key), num(fl, hi_key), num(fl, lo_key))
                {
                    if lo <= 0.0 || hi <= 0.0 {
                        problems.push(format!("fleet: `{hi_key}`/`{lo_key}` must be positive"));
                    } else {
                        let derived = hi / lo;
                        if (stored - derived).abs() > 1e-6 * derived.abs().max(1.0) {
                            problems.push(format!(
                                "fleet: `{ratio_key}` = {stored} but aps ratio is {derived}"
                            ));
                        }
                    }
                }
            }
            match (get(fl, "pass"), num(fl, "d_ratio")) {
                (Some(JsonValue::Bool(stored)), Some(r)) => {
                    if *stored != (r >= FLEET_MODEL_GATE) {
                        problems.push(format!(
                            "fleet: `pass` = {stored} disagrees with \
                             `d_ratio` = {r} (threshold {FLEET_MODEL_GATE})"
                        ));
                    }
                    // The gate itself. The modeled fleet ratio is
                    // stats-derived (machine-independent), so like the
                    // nb_scaling gate it is enforced at every pair count.
                    if r < FLEET_MODEL_GATE {
                        problems.push(format!(
                            "fleet gate failed: modeled fleet ratio {r} < {FLEET_MODEL_GATE}"
                        ));
                    }
                }
                (Some(JsonValue::Bool(_)), None) | (None, _) => {}
                (Some(_), _) => problems.push("fleet: `pass` not a bool".into()),
            }
        }
        None => problems.push("missing `fleet` object".into()),
    }

    match get(report, "resilience_overhead") {
        Some(ro) => {
            for field in RESILIENCE_KEYS {
                if get(ro, field).is_none() {
                    problems.push(format!("resilience_overhead: missing `{field}`"));
                }
            }
            let ratio = num(ro, "ratio");
            if let (Some(d), Some(r)) = (num(ro, "disabled_aps"), num(ro, "resilient_aps")) {
                if d <= 0.0 || r <= 0.0 {
                    problems.push("resilience_overhead: aps figures must be positive".into());
                } else if let Some(stored) = ratio {
                    let derived = r / d;
                    if (stored - derived).abs() > 1e-6 * derived.abs().max(1.0) {
                        problems.push(format!(
                            "resilience_overhead: `ratio` = {stored} but aps ratio is {derived}"
                        ));
                    }
                }
            }
            match (get(ro, "pass"), ratio) {
                (Some(JsonValue::Bool(stored)), Some(r)) => {
                    if *stored != (r >= RESILIENCE_GATE) {
                        problems.push(format!(
                            "resilience_overhead: `pass` = {stored} disagrees with \
                             `ratio` = {r} (threshold {RESILIENCE_GATE})"
                        ));
                    }
                    // The gate itself: the instrumented path may not cost
                    // more than (1 - RESILIENCE_GATE) of fault-free
                    // throughput. Wall-clock, so only enforced at a pair
                    // count where the ratio is signal.
                    if r < RESILIENCE_GATE
                        && num(ro, "pairs").is_some_and(|p| p >= STREAMING_GATE_MIN_PAIRS)
                    {
                        problems.push(format!(
                            "resilience gate failed: resilient/disabled ratio {r} \
                             < {RESILIENCE_GATE}"
                        ));
                    }
                }
                (Some(JsonValue::Bool(_)), None) | (None, _) => {}
                (Some(_), _) => problems.push("resilience_overhead: `pass` not a bool".into()),
            }
        }
        None => problems.push("missing `resilience_overhead` object".into()),
    }

    match get(report, "serving") {
        Some(sv) => {
            for field in SERVING_KEYS {
                if get(sv, field).is_none() {
                    problems.push(format!("serving: missing `{field}`"));
                }
            }
            let ratio = num(sv, "ratio");
            if let (Some(st), Some(rps)) = (num(sv, "streamed_aps"), num(sv, "served_rps")) {
                if st <= 0.0 || rps <= 0.0 {
                    problems.push("serving: throughput figures must be positive".into());
                } else if let Some(stored) = ratio {
                    let derived = rps / st;
                    if (stored - derived).abs() > 1e-6 * derived.abs().max(1.0) {
                        problems.push(format!(
                            "serving: `ratio` = {stored} but served/streamed is {derived}"
                        ));
                    }
                }
            }
            // Latency percentiles must be positive and ordered.
            if let (Some(p50), Some(p99)) = (num(sv, "p50_ms"), num(sv, "p99_ms")) {
                if p50 <= 0.0 || p99 <= 0.0 {
                    problems.push("serving: latency percentiles must be positive".into());
                } else if p50 > p99 {
                    problems.push(format!(
                        "serving: `p50_ms` = {p50} exceeds `p99_ms` = {p99}"
                    ));
                }
            }
            match (get(sv, "pass"), ratio) {
                (Some(JsonValue::Bool(stored)), Some(r)) => {
                    if *stored != (r >= SERVING_GATE) {
                        problems.push(format!(
                            "serving: `pass` = {stored} disagrees with `ratio` = {r} \
                             (threshold {SERVING_GATE})"
                        ));
                    }
                    // The gate itself: the front end may not forfeit more
                    // than (1 - SERVING_GATE) of streamed throughput.
                    // Wall-clock, so only enforced at a pair count where
                    // the ratio is signal.
                    if r < SERVING_GATE
                        && num(sv, "pairs").is_some_and(|p| p >= STREAMING_GATE_MIN_PAIRS)
                    {
                        problems.push(format!(
                            "serving gate failed: served/streamed ratio {r} < {SERVING_GATE}"
                        ));
                    }
                }
                (Some(JsonValue::Bool(_)), None) | (None, _) => {}
                (Some(_), _) => problems.push("serving: `pass` not a bool".into()),
            }
        }
        None => problems.push("missing `serving` object".into()),
    }

    match get(report, "adaptive_precision") {
        Some(ap) => {
            for field in ADAPTIVE_PRECISION_KEYS {
                if get(ap, field).is_none() {
                    problems.push(format!("adaptive_precision: missing `{field}`"));
                }
            }
            let ratio = num(ap, "ratio");
            if let (Some(e), Some(a)) = (num(ap, "exact_aps"), num(ap, "adaptive_aps")) {
                if e <= 0.0 || a <= 0.0 {
                    problems.push("adaptive_precision: aps figures must be positive".into());
                } else if let Some(stored) = ratio {
                    let derived = a / e;
                    if (stored - derived).abs() > 1e-6 * derived.abs().max(1.0) {
                        problems.push(format!(
                            "adaptive_precision: `ratio` = {stored} but aps ratio is {derived}"
                        ));
                    }
                }
            }
            // The escalation rate must be non-degenerate at every scale:
            // 0 means the guard was never exercised, 1 means the `i8`
            // path never served a pair — either way the ratio measures
            // the wrong thing.
            if let Some(rate) = num(ap, "escalation_rate") {
                if rate <= 0.0 || rate >= 1.0 {
                    problems.push(format!(
                        "adaptive_precision: `escalation_rate` = {rate} is degenerate \
                         (must be strictly inside (0, 1))"
                    ));
                }
            }
            match (get(ap, "pass"), ratio) {
                (Some(JsonValue::Bool(stored)), Some(r)) => {
                    if *stored != (r >= ADAPTIVE_GATE) {
                        problems.push(format!(
                            "adaptive_precision: `pass` = {stored} disagrees with \
                             `ratio` = {r} (threshold {ADAPTIVE_GATE})"
                        ));
                    }
                    // The gate itself: the fast path must beat exact by
                    // the gated margin. Wall-clock, so only enforced at a
                    // pair count where the ratio is signal.
                    if r < ADAPTIVE_GATE
                        && num(ap, "pairs").is_some_and(|p| p >= STREAMING_GATE_MIN_PAIRS)
                    {
                        problems.push(format!(
                            "adaptive gate failed: adaptive/exact ratio {r} < {ADAPTIVE_GATE}"
                        ));
                    }
                }
                (Some(JsonValue::Bool(_)), None) | (None, _) => {}
                (Some(_), _) => problems.push("adaptive_precision: `pass` not a bool".into()),
            }
        }
        None => problems.push("missing `adaptive_precision` object".into()),
    }

    match get(report, "mapping") {
        Some(mp) => {
            for field in MAPPING_KEYS {
                if get(mp, field).is_none() {
                    problems.push(format!("mapping: missing `{field}`"));
                }
            }
            // Stored derived figures must match their inputs.
            for (ratio_key, hi_key, lo_key) in [
                ("recall", "correct", "reads"),
                ("cells_ratio", "xdrop_cells", "fullband_cells"),
                ("sdtw_separation", "sdtw_neg_min", "sdtw_pos_max"),
            ] {
                if let (Some(stored), Some(hi), Some(lo)) =
                    (num(mp, ratio_key), num(mp, hi_key), num(mp, lo_key))
                {
                    if lo <= 0.0 {
                        problems.push(format!("mapping: `{lo_key}` must be positive"));
                    } else {
                        let derived = hi / lo;
                        if (stored - derived).abs() > 1e-6 * derived.abs().max(1.0) {
                            problems.push(format!(
                                "mapping: `{ratio_key}` = {stored} but derived ratio is {derived}"
                            ));
                        }
                    }
                }
            }
            // All three gates are counting figures over deterministic
            // workloads (machine-independent), so — NB-model discipline —
            // they are enforced at every scale, with no min-pairs guard.
            // Note the inverted direction of the cells gate.
            for (flag_key, value_key, value, holds, direction, gate) in [
                (
                    "recall_pass",
                    "recall",
                    num(mp, "recall"),
                    num(mp, "recall").map(|v| v >= MAPPING_RECALL_GATE),
                    "<",
                    MAPPING_RECALL_GATE,
                ),
                (
                    "cells_pass",
                    "cells_ratio",
                    num(mp, "cells_ratio"),
                    num(mp, "cells_ratio").map(|v| v <= MAPPING_CELLS_GATE),
                    ">",
                    MAPPING_CELLS_GATE,
                ),
                (
                    "sdtw_pass",
                    "sdtw_separation",
                    num(mp, "sdtw_separation"),
                    num(mp, "sdtw_separation").map(|v| v > MAPPING_SDTW_GATE),
                    "<=",
                    MAPPING_SDTW_GATE,
                ),
            ] {
                match (get(mp, flag_key), value, holds) {
                    (Some(JsonValue::Bool(stored)), Some(v), Some(ok)) => {
                        if *stored != ok {
                            problems.push(format!(
                                "mapping: `{flag_key}` = {stored} disagrees with \
                                 `{value_key}` = {v} (threshold {gate})"
                            ));
                        }
                        if !ok {
                            problems.push(format!(
                                "mapping gate failed: `{value_key}` {v} {direction} {gate}"
                            ));
                        }
                    }
                    (Some(JsonValue::Bool(_)), None, _) | (None, _, _) => {}
                    (Some(_), _, _) => problems.push(format!("mapping: `{flag_key}` not a bool")),
                }
            }
        }
        None => problems.push("missing `mapping` object".into()),
    }
    problems
}

/// Outcome of a regression comparison.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Regressions beyond tolerance (non-empty fails the gate).
    pub regressions: Vec<String>,
    /// Informational notes (skipped comparisons, improvements).
    pub notes: Vec<String>,
}

/// Diffs `current` against `baseline`: every baseline point must exist in
/// the current report, and no speedup ratio may fall more than `tolerance`
/// (relative) below the baseline value. Thread-scaling ratios of `nk > 1`
/// points are skipped unless both reports saw more than one core.
pub fn compare(current: &JsonValue, baseline: &JsonValue, tolerance: f64) -> Comparison {
    let mut cmp = Comparison::default();
    let (Some(JsonValue::Array(base_pts)), Some(JsonValue::Array(cur_pts))) =
        (get(baseline, "points"), get(current, "points"))
    else {
        cmp.regressions.push("missing `points` array".into());
        return cmp;
    };
    let cores = |r| num(r, "host_cores").unwrap_or(1.0);
    let multicore = cores(baseline) > 1.0 && cores(current) > 1.0;
    if !multicore {
        cmp.notes.push(format!(
            "1-core caveat active (baseline {} cores, current {} cores): \
             nk>1 batched_speedup comparisons skipped",
            cores(baseline),
            cores(current)
        ));
    }

    for bp in base_pts {
        let key = point_key(bp);
        let Some(cp) = cur_pts.iter().find(|cp| point_key(cp) == key) else {
            cmp.regressions
                .push(format!("point {key}: missing from current report"));
            continue;
        };
        for ratio in RATIO_KEYS {
            let nk = num(bp, "nk").unwrap_or(1.0);
            if ratio == "batched_speedup" && nk > 1.0 && !multicore {
                continue;
            }
            let (Some(base), Some(cur)) = (num(bp, ratio), num(cp, ratio)) else {
                cmp.regressions
                    .push(format!("point {key}: `{ratio}` missing on one side"));
                continue;
            };
            let floor = base * (1.0 - tolerance);
            if cur < floor {
                cmp.regressions.push(format!(
                    "point {key}: `{ratio}` regressed {base:.3} -> {cur:.3} \
                     (floor {floor:.3} at {:.0}% tolerance)",
                    tolerance * 100.0
                ));
            } else if cur > base * (1.0 + tolerance) {
                cmp.notes.push(format!(
                    "point {key}: `{ratio}` improved {base:.3} -> {cur:.3}"
                ));
            }
        }
    }

    // The streaming ratio tracks pipeline overhead, not thread scaling
    // (both engines run the same worker threads), so it is compared
    // regardless of core count.
    let streaming_ratio = |r| get(r, "streaming").and_then(|st| num(st, "ratio"));
    match (streaming_ratio(baseline), streaming_ratio(current)) {
        (Some(base), Some(cur)) => {
            let floor = base * (1.0 - tolerance);
            if cur < floor {
                cmp.regressions.push(format!(
                    "streaming: `ratio` regressed {base:.3} -> {cur:.3} \
                     (floor {floor:.3} at {:.0}% tolerance)",
                    tolerance * 100.0
                ));
            } else if cur > base * (1.0 + tolerance) {
                cmp.notes
                    .push(format!("streaming: `ratio` improved {base:.3} -> {cur:.3}"));
            }
        }
        (Some(_), None) => cmp
            .regressions
            .push("streaming: `ratio` missing from current report".into()),
        (None, _) => {}
    }

    // The resilience-overhead ratio is internally paired (both runs use
    // the same worker threads on the same machine), so like the streaming
    // ratio it is compared regardless of core count.
    let resilience_ratio = |r| get(r, "resilience_overhead").and_then(|ro| num(ro, "ratio"));
    match (resilience_ratio(baseline), resilience_ratio(current)) {
        (Some(base), Some(cur)) => {
            let floor = base * (1.0 - tolerance);
            if cur < floor {
                cmp.regressions.push(format!(
                    "resilience_overhead: `ratio` regressed {base:.3} -> {cur:.3} \
                     (floor {floor:.3} at {:.0}% tolerance)",
                    tolerance * 100.0
                ));
            } else if cur > base * (1.0 + tolerance) {
                cmp.notes.push(format!(
                    "resilience_overhead: `ratio` improved {base:.3} -> {cur:.3}"
                ));
            }
        }
        (Some(_), None) => cmp
            .regressions
            .push("resilience_overhead: `ratio` missing from current report".into()),
        (None, _) => {}
    }

    // The serving ratio is internally paired (the direct streamed run and
    // the served run share the machine), so it is compared regardless of
    // core count — but unlike the streaming/resilience ratios it also
    // carries fixed per-run costs (connection setup, session spawn, load
    // rounds) that dwarf a few milliseconds of compute, so smoke-scale
    // runs are skipped with a note rather than diffed: only a current
    // report measured at the same ≥ 2 000 pairs as the absolute gate is
    // comparable. The latency percentiles are raw wall-clock figures; on a
    // 1-core box they mostly measure queueing behind a saturated engine,
    // so `p99_ms` is only diffed when both reports saw more than one core
    // (latency grows under regression, so the direction is inverted).
    let serving_field = |r, key: &str| get(r, "serving").and_then(|sv| num(sv, key));
    let serving_full_scale =
        serving_field(current, "pairs").is_some_and(|p| p >= STREAMING_GATE_MIN_PAIRS);
    match (
        serving_field(baseline, "ratio"),
        serving_field(current, "ratio"),
    ) {
        (Some(_), Some(_)) if !serving_full_scale => cmp.notes.push(format!(
            "smoke-scale caveat: serving `ratio` comparison skipped \
             (current < {STREAMING_GATE_MIN_PAIRS} pairs)"
        )),
        (Some(base), Some(cur)) => {
            let floor = base * (1.0 - tolerance);
            if cur < floor {
                cmp.regressions.push(format!(
                    "serving: `ratio` regressed {base:.3} -> {cur:.3} \
                     (floor {floor:.3} at {:.0}% tolerance)",
                    tolerance * 100.0
                ));
            } else if cur > base * (1.0 + tolerance) {
                cmp.notes
                    .push(format!("serving: `ratio` improved {base:.3} -> {cur:.3}"));
            }
        }
        (Some(_), None) => cmp
            .regressions
            .push("serving: `ratio` missing from current report".into()),
        (None, _) => {}
    }
    match (
        serving_field(baseline, "p99_ms"),
        serving_field(current, "p99_ms"),
    ) {
        (Some(_), Some(_)) if !serving_full_scale => cmp.notes.push(format!(
            "smoke-scale caveat: serving `p99_ms` comparison skipped \
             (current < {STREAMING_GATE_MIN_PAIRS} pairs)"
        )),
        (Some(base), Some(cur)) if multicore => {
            let ceiling = base * (1.0 + tolerance);
            if cur > ceiling {
                cmp.regressions.push(format!(
                    "serving: `p99_ms` regressed {base:.3} -> {cur:.3} \
                     (ceiling {ceiling:.3} at {:.0}% tolerance)",
                    tolerance * 100.0
                ));
            } else if cur < base * (1.0 - tolerance) {
                cmp.notes
                    .push(format!("serving: `p99_ms` improved {base:.3} -> {cur:.3}"));
            }
        }
        // Symmetric caveat: latency is only comparable when BOTH reports
        // saw more than one core — a 1-core measurement on either side
        // (baseline or current) is queueing noise, not signal.
        (Some(_), Some(_)) => cmp.notes.push(format!(
            "1-core caveat: serving `p99_ms` comparison skipped \
             (baseline {} cores, current {} cores)",
            cores(baseline),
            cores(current)
        )),
        (Some(_), None) => cmp
            .regressions
            .push("serving: `p99_ms` missing from current report".into()),
        (None, _) => {}
    }

    // The adaptive-precision ratio is internally paired (the exact and
    // fast-path runs share the engine machinery and the machine), and the
    // point is pure compute with no fixed per-run setup costs, so like the
    // resilience ratio it is compared regardless of core count or scale.
    let adaptive_ratio = |r| get(r, "adaptive_precision").and_then(|ap| num(ap, "ratio"));
    match (adaptive_ratio(baseline), adaptive_ratio(current)) {
        (Some(base), Some(cur)) => {
            let floor = base * (1.0 - tolerance);
            if cur < floor {
                cmp.regressions.push(format!(
                    "adaptive_precision: `ratio` regressed {base:.3} -> {cur:.3} \
                     (floor {floor:.3} at {:.0}% tolerance)",
                    tolerance * 100.0
                ));
            } else if cur > base * (1.0 + tolerance) {
                cmp.notes.push(format!(
                    "adaptive_precision: `ratio` improved {base:.3} -> {cur:.3}"
                ));
            }
        }
        (Some(_), None) => cmp
            .regressions
            .push("adaptive_precision: `ratio` missing from current report".into()),
        (None, _) => {}
    }

    // nb_scaling: the modeled ratio is machine-independent and always
    // diffed; the wall-clock slot_ratio is thread scaling within one
    // channel, so it carries the same 1-core caveat as `batched_speedup`.
    let nb_field = |r, key: &str| get(r, "nb_scaling").and_then(|nb| num(nb, key));
    let mut nb_ratio_keys: Vec<&str> = vec!["modeled_nb_ratio"];
    if multicore {
        nb_ratio_keys.push("slot_ratio");
    } else if nb_field(baseline, "slot_ratio").is_some() {
        cmp.notes
            .push("1-core caveat: nb_scaling `slot_ratio` comparison skipped".into());
    }
    for key in nb_ratio_keys {
        match (nb_field(baseline, key), nb_field(current, key)) {
            (Some(base), Some(cur)) => {
                let floor = base * (1.0 - tolerance);
                if cur < floor {
                    cmp.regressions.push(format!(
                        "nb_scaling: `{key}` regressed {base:.3} -> {cur:.3} \
                         (floor {floor:.3} at {:.0}% tolerance)",
                        tolerance * 100.0
                    ));
                } else if cur > base * (1.0 + tolerance) {
                    cmp.notes.push(format!(
                        "nb_scaling: `{key}` improved {base:.3} -> {cur:.3}"
                    ));
                }
            }
            (Some(_), None) => cmp
                .regressions
                .push(format!("nb_scaling: `{key}` missing from current report")),
            (None, _) => {}
        }
    }

    // fleet: the modeled device-sharding ratio is machine-independent and
    // always diffed; the wall-clock d_wall_ratio pits D host dispatchers
    // against one, so it carries the same 1-core caveat as `slot_ratio`.
    let fleet_field = |r, key: &str| get(r, "fleet").and_then(|fl| num(fl, key));
    let mut fleet_ratio_keys: Vec<&str> = vec!["d_ratio"];
    if multicore {
        fleet_ratio_keys.push("d_wall_ratio");
    } else if fleet_field(baseline, "d_wall_ratio").is_some() {
        cmp.notes
            .push("1-core caveat: fleet `d_wall_ratio` comparison skipped".into());
    }
    for key in fleet_ratio_keys {
        match (fleet_field(baseline, key), fleet_field(current, key)) {
            (Some(base), Some(cur)) => {
                let floor = base * (1.0 - tolerance);
                if cur < floor {
                    cmp.regressions.push(format!(
                        "fleet: `{key}` regressed {base:.3} -> {cur:.3} \
                         (floor {floor:.3} at {:.0}% tolerance)",
                        tolerance * 100.0
                    ));
                } else if cur > base * (1.0 + tolerance) {
                    cmp.notes
                        .push(format!("fleet: `{key}` improved {base:.3} -> {cur:.3}"));
                }
            }
            (Some(_), None) => cmp
                .regressions
                .push(format!("fleet: `{key}` missing from current report")),
            (None, _) => {}
        }
    }

    // The mapping figures are counting ratios over deterministic workloads
    // (machine-independent), so like `modeled_nb_ratio` they are compared
    // regardless of core count or scale. `cells_ratio` is lower-is-better,
    // so its regression direction is inverted.
    let map_field = |r, key: &str| get(r, "mapping").and_then(|mp| num(mp, key));
    for (key, lower_is_better) in [
        ("recall", false),
        ("cells_ratio", true),
        ("sdtw_separation", false),
    ] {
        match (map_field(baseline, key), map_field(current, key)) {
            (Some(base), Some(cur)) => {
                let worse = if lower_is_better {
                    cur > base * (1.0 + tolerance)
                } else {
                    cur < base * (1.0 - tolerance)
                };
                let better = if lower_is_better {
                    cur < base * (1.0 - tolerance)
                } else {
                    cur > base * (1.0 + tolerance)
                };
                if worse {
                    let (kind, bound) = if lower_is_better {
                        ("ceiling", base * (1.0 + tolerance))
                    } else {
                        ("floor", base * (1.0 - tolerance))
                    };
                    cmp.regressions.push(format!(
                        "mapping: `{key}` regressed {base:.3} -> {cur:.3} \
                         ({kind} {bound:.3} at {:.0}% tolerance)",
                        tolerance * 100.0
                    ));
                } else if better {
                    cmp.notes
                        .push(format!("mapping: `{key}` improved {base:.3} -> {cur:.3}"));
                }
            }
            (Some(_), None) => cmp
                .regressions
                .push(format!("mapping: `{key}` missing from current report")),
            (None, _) => {}
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_json(lane_vs_scratch: f64, host_cores: u64) -> String {
        report_json_full(lane_vs_scratch, host_cores, 0.95, 3.98, 0.98, 0.85, 1.6)
    }

    fn report_json_with_streaming(
        lane_vs_scratch: f64,
        host_cores: u64,
        streaming_ratio: f64,
    ) -> String {
        report_json_full(
            lane_vs_scratch,
            host_cores,
            streaming_ratio,
            3.98,
            0.98,
            0.85,
            1.6,
        )
    }

    fn report_json_with_nb(lane_vs_scratch: f64, host_cores: u64, nb_ratio: f64) -> String {
        report_json_full(lane_vs_scratch, host_cores, 0.95, nb_ratio, 0.98, 0.85, 1.6)
    }

    fn report_json_with_resilience(
        lane_vs_scratch: f64,
        host_cores: u64,
        resilience_ratio: f64,
    ) -> String {
        report_json_full(
            lane_vs_scratch,
            host_cores,
            0.95,
            3.98,
            resilience_ratio,
            0.85,
            1.6,
        )
    }

    fn report_json_with_serving(
        lane_vs_scratch: f64,
        host_cores: u64,
        serving_ratio: f64,
    ) -> String {
        report_json_full(
            lane_vs_scratch,
            host_cores,
            0.95,
            3.98,
            0.98,
            serving_ratio,
            1.6,
        )
    }

    fn report_json_with_adaptive(
        lane_vs_scratch: f64,
        host_cores: u64,
        adaptive_ratio: f64,
    ) -> String {
        report_json_full(
            lane_vs_scratch,
            host_cores,
            0.95,
            3.98,
            0.98,
            0.85,
            adaptive_ratio,
        )
    }

    fn report_json_full(
        lane_vs_scratch: f64,
        host_cores: u64,
        streaming_ratio: f64,
        nb_ratio: f64,
        resilience_ratio: f64,
        serving_ratio: f64,
        adaptive_ratio: f64,
    ) -> String {
        let laned = 2000.0 * lane_vs_scratch;
        format!(
            r#"{{
              "version": 9,
              "host_cores": {host_cores},
              "points": [
                {{
                  "workload": "banded_w16", "len": 256, "pairs": 100,
                  "npe": 32, "nk": 1,
                  "naive_aps": 1000.0, "scratch_aps": 2000.0,
                  "laned_aps": {laned}, "batched_aps": 2500.0,
                  "scratch_speedup": 2.0, "laned_speedup": {lspd},
                  "lane_vs_scratch": {lane_vs_scratch}, "batched_speedup": 2.5
                }},
                {{
                  "workload": "banded_w16", "len": 256, "pairs": 100,
                  "npe": 32, "nk": 4,
                  "naive_aps": 1000.0, "scratch_aps": 2000.0,
                  "laned_aps": {laned}, "batched_aps": 3000.0,
                  "scratch_speedup": 2.0, "laned_speedup": {lspd},
                  "lane_vs_scratch": {lane_vs_scratch}, "batched_speedup": 3.0
                }}
              ],
              "acceptance": {{
                "workload": "banded_w16", "pairs": 100,
                "naive_aps": 1000.0, "scratch_aps": 2000.0, "laned_aps": {laned},
                "speedup": 2.0, "lane_vs_scratch": {lane_vs_scratch},
                "pass": true, "lane_pass": {lane_pass}
              }},
              "streaming": {{
                "workload": "banded_w16", "pairs": 10000, "nk": 4,
                "buffer": 64, "window": 256,
                "batched_aps": 3000.0, "streamed_aps": {streamed},
                "ratio": {streaming_ratio}, "pass": {stream_pass},
                "reorder_high_water": 9, "resident_high_water": 13
              }},
              "nb_scaling": {{
                "workload": "banded_w16", "pairs": 10000, "len": 256,
                "npe": 32, "nb": 4, "nk": 1,
                "slots1_aps": 2500.0, "slots_nb_aps": 2600.0,
                "slot_ratio": 1.04,
                "modeled_nb1_aps": 1000000.0, "modeled_nb_aps": {modeled_nb},
                "modeled_nb_ratio": {nb_ratio}, "pass": {nb_pass}
              }},
              "fleet": {{
                "workload": "banded_w16", "pairs": 10000, "len": 256,
                "npe": 32, "nb": 4, "nk": 1, "devices": 4,
                "d1_aps": 2500.0, "d_aps": 2400.0, "d_wall_ratio": 0.96,
                "modeled_d1_aps": 1000000.0, "modeled_d_aps": 3890000.0,
                "d_ratio": 3.89, "pass": true
              }},
              "resilience_overhead": {{
                "workload": "banded_w16", "pairs": 10000, "nk": 4,
                "disabled_aps": 3000.0, "resilient_aps": {resilient},
                "ratio": {resilience_ratio}, "pass": {resilience_pass}
              }},
              "serving": {{
                "workload": "banded_global_linear", "pairs": 4000, "len": 256,
                "connections": 4, "nk": 4, "buffer": 64, "window": 256,
                "streamed_aps": 3000.0, "served_rps": {served},
                "ratio": {serving_ratio}, "p50_ms": 5.0, "p99_ms": 9.0,
                "pass": {serving_pass}
              }},
              "adaptive_precision": {{
                "workload": "banded_w20", "pairs": 10000, "len": 120,
                "npe": 120, "nk": 4, "lanes": 32,
                "exact_aps": 4000.0, "adaptive_aps": {adaptive},
                "ratio": {adaptive_ratio}, "escalation_rate": 0.05,
                "pass": {adaptive_pass}
              }},
              "mapping": {{
                "workload": "long_read_5pct", "reads": 2000,
                "genome_len": 1048576, "min_len": 1000, "max_len": 5000,
                "error_rate": 0.05, "mapped": 2000, "correct": 1999,
                "recall": 0.9995,
                "xdrop_cells": 90000000, "fullband_cells": 360000000,
                "cells_ratio": 0.25, "mapped_aps": 800.0,
                "reorder_high_water": 17,
                "sdtw_pos_max": 30.0, "sdtw_neg_min": 96.0,
                "sdtw_separation": 3.2,
                "recall_pass": true, "cells_pass": true, "sdtw_pass": true
              }}
            }}"#,
            lspd = 2.0 * lane_vs_scratch,
            lane_pass = lane_vs_scratch >= 1.3,
            streamed = 3000.0 * streaming_ratio,
            stream_pass = streaming_ratio >= STREAMING_GATE,
            modeled_nb = 1000000.0 * nb_ratio,
            nb_pass = nb_ratio >= NB_MODEL_GATE,
            resilient = 3000.0 * resilience_ratio,
            resilience_pass = resilience_ratio >= RESILIENCE_GATE,
            served = 3000.0 * serving_ratio,
            serving_pass = serving_ratio >= SERVING_GATE,
            adaptive = 4000.0 * adaptive_ratio,
            adaptive_pass = adaptive_ratio >= ADAPTIVE_GATE,
        )
    }

    fn parse(s: &str) -> JsonValue {
        serde_json::from_str(s).expect("test JSON")
    }

    #[test]
    fn well_formed_report_validates() {
        let r = parse(&report_json(1.5, 1));
        assert_eq!(validate(&r), Vec::<String>::new());
    }

    #[test]
    fn missing_acceptance_is_reported_not_silently_passed() {
        // The failure mode of the old inline-Python check.
        let mut s = report_json(1.5, 1);
        let at = s.find("\"acceptance\"").unwrap();
        s.truncate(at);
        s.truncate(s.rfind(',').unwrap());
        s.push('}');
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("acceptance")),
            "{problems:?}"
        );
    }

    #[test]
    fn inconsistent_ratio_and_gate_flags_are_caught() {
        let s = report_json(1.5, 1).replace("\"lane_vs_scratch\": 1.5", "\"lane_vs_scratch\": 9.9");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("lane_vs_scratch")),
            "{problems:?}"
        );

        let s = report_json(1.1, 1).replace("\"lane_pass\": false", "\"lane_pass\": true");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("lane_pass")),
            "{problems:?}"
        );
    }

    #[test]
    fn wrong_version_and_empty_points_fail() {
        let problems = validate(&parse(r#"{"version": 2, "points": []}"#));
        assert!(problems.iter().any(|p| p.contains("version")));
        assert!(problems.iter().any(|p| p.contains("points")));
        assert!(problems.iter().any(|p| p.contains("host_cores")));
        assert!(problems.iter().any(|p| p.contains("streaming")));
        assert!(problems.iter().any(|p| p.contains("nb_scaling")));
        assert!(problems.iter().any(|p| p.contains("fleet")));
        assert!(problems.iter().any(|p| p.contains("resilience_overhead")));
        assert!(problems.iter().any(|p| p.contains("serving")));
        assert!(problems.iter().any(|p| p.contains("adaptive_precision")));
        assert!(problems.iter().any(|p| p.contains("mapping")));
    }

    #[test]
    fn mapping_gates_and_consistency_are_enforced_at_any_scale() {
        // A consistent but failing recall is a problem even at a tiny read
        // count: the figure is counting-derived, machine-independent.
        let s = report_json(1.5, 1)
            .replace("\"reads\": 2000,", "\"reads\": 20,")
            .replace(
                "\"mapped\": 2000, \"correct\": 1999,",
                "\"mapped\": 20, \"correct\": 19,",
            )
            .replace("\"recall\": 0.9995,", "\"recall\": 0.95,")
            .replace("\"recall_pass\": true", "\"recall_pass\": false");
        let problems = validate(&parse(&s));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("mapping gate failed: `recall`")),
            "{problems:?}"
        );

        // Same for the X-drop cell budget (inverted direction)...
        let s = report_json(1.5, 1)
            .replace("\"xdrop_cells\": 90000000,", "\"xdrop_cells\": 180000000,")
            .replace("\"cells_ratio\": 0.25,", "\"cells_ratio\": 0.5,")
            .replace("\"cells_pass\": true", "\"cells_pass\": false");
        let problems = validate(&parse(&s));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("mapping gate failed: `cells_ratio`")),
            "{problems:?}"
        );

        // ...and the sDTW separation.
        let s = report_json(1.5, 1)
            .replace("\"sdtw_neg_min\": 96.0,", "\"sdtw_neg_min\": 24.0,")
            .replace("\"sdtw_separation\": 3.2,", "\"sdtw_separation\": 0.8,")
            .replace("\"sdtw_pass\": true", "\"sdtw_pass\": false");
        let problems = validate(&parse(&s));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("mapping gate failed: `sdtw_separation`")),
            "{problems:?}"
        );

        // A stored recall that disagrees with correct/reads is caught.
        let s = report_json(1.5, 1).replace("\"recall\": 0.9995,", "\"recall\": 1.0,");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("mapping: `recall`")),
            "{problems:?}"
        );

        // A pass flag that disagrees with its gate is caught.
        let s = report_json(1.5, 1)
            .replace("\"xdrop_cells\": 90000000,", "\"xdrop_cells\": 180000000,")
            .replace("\"cells_ratio\": 0.25,", "\"cells_ratio\": 0.5,");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("mapping: `cells_pass`")),
            "{problems:?}"
        );
    }

    #[test]
    fn mapping_regressions_fail_compare_in_both_directions() {
        let base = parse(&report_json(1.5, 1));
        // Recall collapse beyond tolerance regresses even on a 1-core pair.
        let bad = parse(
            &report_json(1.5, 1)
                .replace(
                    "\"mapped\": 2000, \"correct\": 1999,",
                    "\"mapped\": 2000, \"correct\": 1600,",
                )
                .replace("\"recall\": 0.9995,", "\"recall\": 0.8,"),
        );
        let cmp = compare(&bad, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("mapping: `recall`")),
            "{cmp:?}"
        );
        // A cells_ratio RISE is the regression direction for that key.
        let bad = parse(
            &report_json(1.5, 1)
                .replace("\"xdrop_cells\": 90000000,", "\"xdrop_cells\": 108000000,")
                .replace("\"cells_ratio\": 0.25,", "\"cells_ratio\": 0.3,"),
        );
        let cmp = compare(&bad, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("mapping: `cells_ratio`")),
            "{cmp:?}"
        );
        // ...and a FALL is an improvement note, not a regression.
        let good = parse(
            &report_json(1.5, 1)
                .replace("\"xdrop_cells\": 90000000,", "\"xdrop_cells\": 72000000,")
                .replace("\"cells_ratio\": 0.25,", "\"cells_ratio\": 0.2,"),
        );
        let cmp = compare(&good, &base, DEFAULT_TOLERANCE);
        assert!(cmp.regressions.is_empty(), "{cmp:?}");
        assert!(
            cmp.notes
                .iter()
                .any(|n| n.contains("mapping: `cells_ratio`")),
            "{cmp:?}"
        );
    }

    #[test]
    fn adaptive_gate_and_consistency_are_enforced() {
        // A consistent but failing ratio is a problem at full scale...
        let problems = validate(&parse(&report_json_with_adaptive(1.5, 1, 1.1)));
        assert!(
            problems.iter().any(|p| p.contains("adaptive gate failed")),
            "{problems:?}"
        );
        // ...but not on a scaled-down smoke run (min-pairs guard).
        let small = report_json_with_adaptive(1.5, 1, 1.1).replace(
            "\"pairs\": 10000, \"len\": 120",
            "\"pairs\": 20, \"len\": 120",
        );
        let problems = validate(&parse(&small));
        assert!(
            !problems.iter().any(|p| p.contains("adaptive gate failed")),
            "{problems:?}"
        );

        // A stored ratio that disagrees with the aps figures is caught.
        let s = report_json(1.5, 1).replace(
            "\"ratio\": 1.6, \"escalation_rate\"",
            "\"ratio\": 1.7, \"escalation_rate\"",
        );
        let problems = validate(&parse(&s));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("adaptive_precision: `ratio`")),
            "{problems:?}"
        );

        // A pass flag that disagrees with the gate is caught at any scale.
        let s = report_json_with_adaptive(1.5, 1, 1.1).replace(
            "\"escalation_rate\": 0.05,\n                \"pass\": false",
            "\"escalation_rate\": 0.05,\n                \"pass\": true",
        );
        let problems = validate(&parse(&s));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("adaptive_precision: `pass`")),
            "{problems:?}"
        );
    }

    #[test]
    fn degenerate_escalation_rate_is_caught() {
        // 0: the guard was never exercised — best-case benchmarking.
        for rate in ["0.0", "1.0"] {
            let s = report_json(1.5, 1).replace(
                "\"escalation_rate\": 0.05",
                &format!("\"escalation_rate\": {rate}"),
            );
            let problems = validate(&parse(&s));
            assert!(
                problems.iter().any(|p| p.contains("degenerate")),
                "rate {rate}: {problems:?}"
            );
        }
        // A strictly interior rate is fine.
        let problems = validate(&parse(&report_json(1.5, 1)));
        assert_eq!(problems, Vec::<String>::new());
    }

    #[test]
    fn adaptive_ratio_regression_fails_compare_at_any_core_count() {
        let base = parse(&report_json_with_adaptive(1.5, 1, 1.6));
        let ok = parse(&report_json_with_adaptive(1.5, 1, 1.45)); // -9%, inside 15%
        assert!(compare(&ok, &base, DEFAULT_TOLERANCE)
            .regressions
            .is_empty());
        // The ratio is internally paired, so a collapse regresses even on
        // a 1-core pair (no core-count caveat).
        let bad = parse(&report_json_with_adaptive(1.5, 1, 1.2));
        let cmp = compare(&bad, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("adaptive_precision")),
            "{cmp:?}"
        );
        // An improvement is a note, not a regression.
        let good = parse(&report_json_with_adaptive(1.5, 1, 2.0));
        let cmp = compare(&good, &base, DEFAULT_TOLERANCE);
        assert!(cmp.regressions.is_empty(), "{cmp:?}");
        assert!(
            cmp.notes.iter().any(|n| n.contains("adaptive_precision")),
            "{cmp:?}"
        );
    }

    #[test]
    fn serving_gate_and_consistency_are_enforced() {
        // A consistent but failing ratio is a problem at full scale...
        let problems = validate(&parse(&report_json_with_serving(1.5, 1, 0.3)));
        assert!(
            problems.iter().any(|p| p.contains("serving gate failed")),
            "{problems:?}"
        );
        // ...but not on a scaled-down smoke run (min-pairs guard).
        let small = report_json_with_serving(1.5, 1, 0.3).replace(
            "\"pairs\": 4000, \"len\": 256,\n                \"connections\"",
            "\"pairs\": 8, \"len\": 256,\n                \"connections\"",
        );
        let problems = validate(&parse(&small));
        assert!(
            !problems.iter().any(|p| p.contains("serving gate failed")),
            "{problems:?}"
        );

        // A stored ratio that disagrees with the throughput figures.
        let s = report_json(1.5, 1)
            .replace("\"ratio\": 0.85, \"p50_ms\"", "\"ratio\": 0.9, \"p50_ms\"");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("serving: `ratio`")),
            "{problems:?}"
        );

        // A pass flag that disagrees with the gate is caught at any scale
        // (the serving gate is the only failing one in this fixture, so
        // its `pass` is the only false flag).
        let s = report_json_with_serving(1.5, 1, 0.3).replace("\"pass\": false", "\"pass\": true");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("serving: `pass`")),
            "{problems:?}"
        );

        // Inverted latency percentiles are caught.
        let s = report_json(1.5, 1).replace("\"p50_ms\": 5.0", "\"p50_ms\": 50.0");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("`p50_ms`")),
            "{problems:?}"
        );
    }

    #[test]
    fn serving_ratio_regression_fails_compare_p99_caveated() {
        let base = parse(&report_json_with_serving(1.5, 1, 0.9));
        let ok = parse(&report_json_with_serving(1.5, 1, 0.8)); // -11%, inside 15%
        assert!(compare(&ok, &base, DEFAULT_TOLERANCE)
            .regressions
            .is_empty());
        let bad = parse(
            &report_json_with_serving(1.5, 1, 0.9)
                .replace("\"ratio\": 0.9, \"p50_ms\"", "\"ratio\": 0.6, \"p50_ms\""),
        );
        // (ratio made inconsistent for brevity; compare() only reads it)
        let cmp = compare(&bad, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions.iter().any(|r| r.contains("serving")),
            "{cmp:?}"
        );

        // The same collapsed ratio measured at smoke scale is skipped with
        // a note instead — fixed per-run costs (connection setup, session
        // spawn) dominate tiny runs, so the ratio is not comparable there.
        let shrink = |s: String| s.replace("\"pairs\": 4000", "\"pairs\": 100");
        let bad_small = parse(&shrink(
            report_json_with_serving(1.5, 1, 0.9)
                .replace("\"ratio\": 0.9, \"p50_ms\"", "\"ratio\": 0.2, \"p50_ms\""),
        ));
        let cmp = compare(&bad_small, &base, DEFAULT_TOLERANCE);
        assert!(
            !cmp.regressions.iter().any(|r| r.contains("serving")),
            "{cmp:?}"
        );
        assert!(
            cmp.notes
                .iter()
                .any(|n| n.contains("smoke-scale caveat: serving `ratio`")),
            "{cmp:?}"
        );

        // A tripled p99 is skipped on a 1-core pair...
        let p99_spike = |s: String| s.replace("\"p99_ms\": 9.0", "\"p99_ms\": 27.0");
        let cur = parse(&p99_spike(report_json_with_serving(1.5, 1, 0.9)));
        let cmp = compare(&cur, &base, DEFAULT_TOLERANCE);
        assert!(cmp.regressions.is_empty(), "{cmp:?}");
        assert!(cmp.notes.iter().any(|n| n.contains("p99_ms")), "{cmp:?}");
        // ...and fails on a multi-core pair.
        let base_mc = parse(&report_json_with_serving(1.5, 4, 0.9));
        let cur_mc = parse(&p99_spike(report_json_with_serving(1.5, 4, 0.9)));
        let cmp = compare(&cur_mc, &base_mc, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions.iter().any(|r| r.contains("p99_ms")),
            "{cmp:?}"
        );
    }

    /// The 1-core latency caveat must hold in BOTH mixed orders: a spiked
    /// p99 is skipped whether the 1-core report is the baseline or the
    /// current one. Only a multi-core pair diffs latency.
    #[test]
    fn serving_p99_caveat_is_symmetric_across_core_orders() {
        let p99_spike = |s: String| s.replace("\"p99_ms\": 9.0", "\"p99_ms\": 27.0");
        let skipped = |cmp: &Comparison| {
            !cmp.regressions.iter().any(|r| r.contains("p99_ms"))
                && cmp
                    .notes
                    .iter()
                    .any(|n| n.contains("1-core caveat: serving `p99_ms`"))
        };

        // Multi-core baseline, 1-core current.
        let base_mc = parse(&report_json_with_serving(1.5, 4, 0.9));
        let cur_1c = parse(&p99_spike(report_json_with_serving(1.5, 1, 0.9)));
        let cmp = compare(&cur_1c, &base_mc, DEFAULT_TOLERANCE);
        assert!(skipped(&cmp), "{cmp:?}");

        // 1-core baseline, multi-core current: same skip, other order.
        let base_1c = parse(&report_json_with_serving(1.5, 1, 0.9));
        let cur_mc = parse(&p99_spike(report_json_with_serving(1.5, 4, 0.9)));
        let cmp = compare(&cur_mc, &base_1c, DEFAULT_TOLERANCE);
        assert!(skipped(&cmp), "{cmp:?}");

        // Control: both multi-core diffs (and fails on) the spike.
        let cmp = compare(
            &parse(&p99_spike(report_json_with_serving(1.5, 4, 0.9))),
            &parse(&report_json_with_serving(1.5, 4, 0.9)),
            DEFAULT_TOLERANCE,
        );
        assert!(
            cmp.regressions.iter().any(|r| r.contains("p99_ms")),
            "{cmp:?}"
        );
    }

    #[test]
    fn resilience_gate_and_consistency_are_enforced() {
        // A consistent but failing ratio is a problem at full scale...
        let problems = validate(&parse(&report_json_with_resilience(1.5, 1, 0.8)));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("resilience gate failed")),
            "{problems:?}"
        );
        // ...but not on a scaled-down smoke run (min-pairs guard).
        let small = report_json_with_resilience(1.5, 1, 0.8).replace(
            "\"pairs\": 10000, \"nk\": 4,\n                \"disabled_aps\"",
            "\"pairs\": 20, \"nk\": 4,\n                \"disabled_aps\"",
        );
        let problems = validate(&parse(&small));
        assert!(
            !problems
                .iter()
                .any(|p| p.contains("resilience gate failed")),
            "{problems:?}"
        );

        // A stored ratio that disagrees with the aps figures is caught.
        let s = report_json(1.5, 1).replace(
            "\"ratio\": 0.98, \"pass\": true",
            "\"ratio\": 0.99, \"pass\": true",
        );
        let problems = validate(&parse(&s));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("resilience_overhead: `ratio`")),
            "{problems:?}"
        );

        // A pass flag that disagrees with the gate is caught at any scale.
        let s = report_json_with_resilience(1.5, 1, 0.8).replace(
            "\"ratio\": 0.8, \"pass\": false",
            "\"ratio\": 0.8, \"pass\": true",
        );
        let problems = validate(&parse(&s));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("resilience_overhead: `pass`")),
            "{problems:?}"
        );
    }

    #[test]
    fn resilience_ratio_regression_fails_compare() {
        let base = parse(&report_json_with_resilience(1.5, 1, 1.0));
        let ok = parse(&report_json_with_resilience(1.5, 1, 0.96)); // -4%, inside 15%
        assert!(compare(&ok, &base, DEFAULT_TOLERANCE)
            .regressions
            .is_empty());
        let bad = parse(&report_json_with_resilience(1.5, 1, 0.96).replace(
            "\"ratio\": 0.96, \"pass\": true",
            "\"ratio\": 0.7, \"pass\": false",
        ));
        // (ratio made inconsistent for brevity; compare() only reads it)
        let cmp = compare(&bad, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("resilience_overhead")),
            "{cmp:?}"
        );
    }

    #[test]
    fn nb_scaling_gate_and_consistency_are_enforced() {
        // A consistent but failing modeled ratio is itself a problem, at
        // any pair count (the ratio is machine-independent).
        let problems = validate(&parse(&report_json_with_nb(1.5, 1, 2.0)));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("nb_scaling gate failed")),
            "{problems:?}"
        );
        let small = report_json_with_nb(1.5, 1, 2.0)
            .replace("\"pairs\": 10000, \"len\"", "\"pairs\": 20, \"len\"");
        let problems = validate(&parse(&small));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("nb_scaling gate failed")),
            "{problems:?}"
        );

        // A stored ratio that disagrees with the aps figures is caught.
        let s =
            report_json(1.5, 1).replace("\"modeled_nb_ratio\": 3.98", "\"modeled_nb_ratio\": 3.6");
        let problems = validate(&parse(&s));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("nb_scaling: `modeled_nb_ratio`")),
            "{problems:?}"
        );

        // A pass flag that disagrees with the gate is caught.
        let s = report_json_with_nb(1.5, 1, 2.0).replace(
            "\"modeled_nb_ratio\": 2, \"pass\": false",
            "\"modeled_nb_ratio\": 2, \"pass\": true",
        );
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("nb_scaling: `pass`")),
            "{problems:?}"
        );

        // An NB that cannot demonstrate intra-channel scaling is caught.
        let s = report_json(1.5, 1).replace("\"nb\": 4", "\"nb\": 1");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("`nb` is 1")),
            "{problems:?}"
        );
    }

    #[test]
    fn nb_scaling_modeled_regression_fails_compare_slot_ratio_caveated() {
        let base = parse(&report_json_with_nb(1.5, 1, 3.98));
        // Modeled ratio drop beyond tolerance fails even on 1-core boxes.
        let bad = parse(
            &report_json_with_nb(1.5, 1, 3.98)
                .replace("\"modeled_nb_ratio\": 3.98", "\"modeled_nb_ratio\": 3.0"),
        );
        let cmp = compare(&bad, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("modeled_nb_ratio")),
            "{cmp:?}"
        );
        // A halved slot_ratio is skipped on a 1-core pair...
        let slot_drop = |s: String| {
            s.replace("\"slots_nb_aps\": 2600.0", "\"slots_nb_aps\": 1300.0")
                .replace("\"slot_ratio\": 1.04", "\"slot_ratio\": 0.52")
        };
        let cur = parse(&slot_drop(report_json_with_nb(1.5, 1, 3.98)));
        let cmp = compare(&cur, &base, DEFAULT_TOLERANCE);
        assert!(cmp.regressions.is_empty(), "{cmp:?}");
        assert!(
            cmp.notes.iter().any(|n| n.contains("slot_ratio")),
            "{cmp:?}"
        );
        // ...and fails on a multi-core pair.
        let base_mc = parse(&report_json_with_nb(1.5, 4, 3.98));
        let cur_mc = parse(&slot_drop(report_json_with_nb(1.5, 4, 3.98)));
        let cmp = compare(&cur_mc, &base_mc, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions.iter().any(|r| r.contains("slot_ratio")),
            "{cmp:?}"
        );
    }

    fn report_json_with_fleet(lane_vs_scratch: f64, host_cores: u64, d_ratio: f64) -> String {
        report_json(lane_vs_scratch, host_cores)
            .replace(
                "\"modeled_d_aps\": 3890000.0",
                &format!("\"modeled_d_aps\": {:.1}", 1_000_000.0 * d_ratio),
            )
            .replace(
                "\"d_ratio\": 3.89, \"pass\": true",
                &format!(
                    "\"d_ratio\": {d_ratio}, \"pass\": {}",
                    d_ratio >= FLEET_MODEL_GATE
                ),
            )
    }

    #[test]
    fn fleet_gate_and_consistency_are_enforced() {
        // A consistent but failing modeled fleet ratio is itself a problem,
        // at any pair count (the ratio is machine-independent).
        let problems = validate(&parse(&report_json_with_fleet(1.5, 1, 2.5)));
        assert!(
            problems.iter().any(|p| p.contains("fleet gate failed")),
            "{problems:?}"
        );
        let small = report_json_with_fleet(1.5, 1, 2.5)
            .replace("\"pairs\": 10000, \"len\"", "\"pairs\": 20, \"len\"");
        let problems = validate(&parse(&small));
        assert!(
            problems.iter().any(|p| p.contains("fleet gate failed")),
            "{problems:?}"
        );

        // A stored ratio that disagrees with the aps figures is caught.
        let s = report_json(1.5, 1).replace("\"d_ratio\": 3.89", "\"d_ratio\": 3.6");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("fleet: `d_ratio`")),
            "{problems:?}"
        );

        // A pass flag that disagrees with the gate is caught.
        let s = report_json_with_fleet(1.5, 1, 2.5).replace(
            "\"d_ratio\": 2.5, \"pass\": false",
            "\"d_ratio\": 2.5, \"pass\": true",
        );
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("fleet: `pass`")),
            "{problems:?}"
        );

        // A fleet that cannot demonstrate cross-device sharding is caught.
        let s = report_json(1.5, 1).replace("\"devices\": 4", "\"devices\": 1");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("`devices` is 1")),
            "{problems:?}"
        );
    }

    #[test]
    fn fleet_modeled_regression_fails_compare_wall_caveated() {
        let base = parse(&report_json_with_fleet(1.5, 1, 3.89));
        // Modeled ratio drop beyond tolerance fails even on 1-core boxes.
        let bad = parse(
            &report_json_with_fleet(1.5, 1, 3.89)
                .replace("\"d_ratio\": 3.89", "\"d_ratio\": 3.0")
                .replace(
                    "\"modeled_d_aps\": 3890000.0",
                    "\"modeled_d_aps\": 3000000.0",
                ),
        );
        let cmp = compare(&bad, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions.iter().any(|r| r.contains("d_ratio")),
            "{cmp:?}"
        );
        // A halved d_wall_ratio is skipped on a 1-core pair...
        let wall_drop = |s: String| {
            s.replace("\"d_aps\": 2400.0", "\"d_aps\": 1200.0")
                .replace("\"d_wall_ratio\": 0.96", "\"d_wall_ratio\": 0.48")
        };
        let cur = parse(&wall_drop(report_json_with_fleet(1.5, 1, 3.89)));
        let cmp = compare(&cur, &base, DEFAULT_TOLERANCE);
        assert!(cmp.regressions.is_empty(), "{cmp:?}");
        assert!(
            cmp.notes.iter().any(|n| n.contains("d_wall_ratio")),
            "{cmp:?}"
        );
        // ...and fails on a multi-core pair.
        let base_mc = parse(&report_json_with_fleet(1.5, 4, 3.89));
        let cur_mc = parse(&wall_drop(report_json_with_fleet(1.5, 4, 3.89)));
        let cmp = compare(&cur_mc, &base_mc, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions.iter().any(|r| r.contains("d_wall_ratio")),
            "{cmp:?}"
        );
    }

    #[test]
    fn streaming_gate_and_consistency_are_enforced() {
        // A consistent but failing streaming ratio is itself a problem: the
        // pipeline may not silently cost more than 10% of batch throughput.
        let problems = validate(&parse(&report_json_with_streaming(1.5, 1, 0.8)));
        assert!(
            problems.iter().any(|p| p.contains("streaming gate failed")),
            "{problems:?}"
        );

        // A stored ratio that disagrees with the aps figures is caught.
        let s = report_json(1.5, 1).replace("\"ratio\": 0.95", "\"ratio\": 0.99");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("streaming: `ratio`")),
            "{problems:?}"
        );

        // A pass flag that disagrees with the ratio is caught.
        let s =
            report_json_with_streaming(1.5, 1, 0.8).replace("\"pass\": false", "\"pass\": true");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("streaming: `pass`")),
            "{problems:?}"
        );

        // Bounded-memory evidence: resident high water above the window.
        let s = report_json(1.5, 1).replace(
            "\"resident_high_water\": 13",
            "\"resident_high_water\": 400",
        );
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("resident_high_water")),
            "{problems:?}"
        );
    }

    #[test]
    fn streaming_gate_skipped_below_min_pairs() {
        // A scaled-down smoke run (tiny pair count) with a failing ratio:
        // the pass flag must stay consistent, but the absolute gate does
        // not fire — the sample is too small to be signal.
        let s =
            report_json_with_streaming(1.5, 1, 0.8).replace("\"pairs\": 10000,", "\"pairs\": 200,");
        let problems = validate(&parse(&s));
        assert!(
            !problems.iter().any(|p| p.contains("streaming gate failed")),
            "{problems:?}"
        );
        // Inconsistent pass flag is still caught at any scale.
        let s = s.replace("\"pass\": false", "\"pass\": true");
        let problems = validate(&parse(&s));
        assert!(
            problems.iter().any(|p| p.contains("streaming: `pass`")),
            "{problems:?}"
        );
    }

    #[test]
    fn streaming_ratio_regression_fails_compare() {
        let base = parse(&report_json_with_streaming(1.5, 1, 1.0));
        let ok = parse(&report_json_with_streaming(1.5, 1, 0.92)); // -8%, inside 15%
        assert!(compare(&ok, &base, DEFAULT_TOLERANCE)
            .regressions
            .is_empty());
        let bad = parse(
            &report_json_with_streaming(1.5, 1, 0.95).replace("\"ratio\": 0.95", "\"ratio\": 0.7"),
        );
        // (ratio made inconsistent for brevity; compare() only reads it)
        let cmp = compare(&bad, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions.iter().any(|r| r.contains("streaming")),
            "{cmp:?}"
        );
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = parse(&report_json(1.6, 1));
        let ok = parse(&report_json(1.45, 1)); // −9.4 %, inside 15 %
        let bad = parse(&report_json(1.2, 1)); // −25 %, outside
        assert!(compare(&ok, &base, DEFAULT_TOLERANCE)
            .regressions
            .is_empty());
        let cmp = compare(&bad, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("lane_vs_scratch")),
            "{cmp:?}"
        );
    }

    #[test]
    fn one_core_caveat_skips_nk_gt_1_thread_scaling() {
        // Halve the nk=4 batched_speedup on a 1-core current report: the
        // thread-scaling comparison must be skipped, not failed.
        let base = parse(&report_json(1.5, 4));
        let cur = parse(
            &report_json(1.5, 1)
                .replace("\"batched_aps\": 3000.0", "\"batched_aps\": 1500.0")
                .replace("\"batched_speedup\": 3.0", "\"batched_speedup\": 1.5"),
        );
        let cmp = compare(&cur, &base, DEFAULT_TOLERANCE);
        assert!(cmp.regressions.is_empty(), "{cmp:?}");
        assert!(cmp.notes.iter().any(|n| n.contains("1-core caveat")));
        // On matching multi-core machines the same drop is a failure.
        let cur_mc = parse(
            &report_json(1.5, 4)
                .replace("\"batched_aps\": 3000.0", "\"batched_aps\": 1500.0")
                .replace("\"batched_speedup\": 3.0", "\"batched_speedup\": 1.5"),
        );
        let cmp = compare(&cur_mc, &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("batched_speedup")),
            "{cmp:?}"
        );
    }

    #[test]
    fn missing_point_is_a_regression() {
        let base = parse(&report_json(1.5, 1));
        let cur_str = report_json(1.5, 1).replace("\"nk\": 4", "\"nk\": 2");
        let cmp = compare(&parse(&cur_str), &base, DEFAULT_TOLERANCE);
        assert!(
            cmp.regressions.iter().any(|r| r.contains("missing")),
            "{cmp:?}"
        );
    }
}
