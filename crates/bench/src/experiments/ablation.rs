//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. sequential vs overlapped phase schedule (the §7.3 gap, per kernel);
//! 2. fixed-band width sweep — pruned cells vs score fidelity (§2.2.4);
//! 3. banked+coalesced traceback vs a slower naive walk (§5.2);
//! 4. per-PE local-max + reduction tree vs a serial scan (§5.2);
//! 5. simulation cost: systolic engine vs plain reference engine wall time;
//! 6. band **policy**: fixed band vs adaptive band vs X-Drop on drifting
//!    reads (paper §2.2.4's adaptive variants, the framework's future-work
//!    extension).

use crate::harness::{collect_cases, sweep_workload, KernelCase};
use dphls_core::{run_reference, Banding, KernelConfig};
use dphls_kernels::{GlobalLinear, LinearParams};
use dphls_seq::gen::ReadSimulator;
use dphls_systolic::{run_systolic, CycleModelParams};
use dphls_util::{sci, Table};
use std::time::Instant;

/// Ablation 1: per-kernel schedule gap.
#[derive(Debug, Clone)]
pub struct ScheduleGap {
    /// Kernel id.
    pub id: u8,
    /// Sequential-schedule throughput.
    pub sequential_aps: f64,
    /// Overlapped-schedule throughput.
    pub overlapped_aps: f64,
}

impl ScheduleGap {
    /// Fraction of throughput lost to the sequential schedule.
    pub fn gap(&self) -> f64 {
        1.0 - self.sequential_aps / self.overlapped_aps
    }
}

/// Runs the schedule ablation over all 15 kernels at their Table 2 configs.
pub fn schedule_ablation() -> Vec<ScheduleGap> {
    let cases = collect_cases(&sweep_workload());
    cases
        .iter()
        .map(|case: &KernelCase| {
            let cfg = case.info.table2_config;
            let ii = dphls_fpga::derive_ii(&case.info.op_counts, case.info.ii_hint);
            let freq = cfg.target_freq_mhz;
            let seq = case.run_unverified(&cfg, &CycleModelParams::dphls(), freq, ii);
            let ovl = case.run_unverified(&cfg, &CycleModelParams::rtl_overlapped(), freq, ii);
            ScheduleGap {
                id: case.info.meta.id.0,
                sequential_aps: seq.throughput_aps,
                overlapped_aps: ovl.throughput_aps,
            }
        })
        .collect()
}

/// Ablation 2: one band-width sample for kernel #11's recurrence.
#[derive(Debug, Clone, Copy)]
pub struct BandPoint {
    /// Band half-width (`usize::MAX` row = unbanded).
    pub half_width: usize,
    /// Interior cells computed.
    pub cells: u64,
    /// Wavefront iterations issued.
    pub wavefronts: u64,
    /// Score delta vs the unbanded alignment (0 = exact).
    pub score_delta: f64,
}

/// Sweeps the band half-width for the banded global linear kernel.
pub fn band_sweep() -> Vec<BandPoint> {
    let params = LinearParams::<i16>::dna();
    let mut sim = ReadSimulator::new(0xBA2D);
    let (reference, mut read) = sim.read_pair(256, 0.2);
    read.truncate(256);
    let (q, r) = (read.as_slice(), reference.as_slice());
    let full = run_reference::<GlobalLinear>(&params, q, r, Banding::None);
    let full_score = full.best_score as f64;
    let mut out = Vec::new();
    for hw in [4usize, 8, 16, 32, 64, 256] {
        let banding = if hw >= 256 {
            Banding::None
        } else {
            Banding::Fixed { half_width: hw }
        };
        let cfg = KernelConfig {
            banding,
            ..KernelConfig::new(32, 1, 1)
        };
        let run = run_systolic::<GlobalLinear>(&params, q, r, &cfg).expect("banded run");
        out.push(BandPoint {
            half_width: hw,
            cells: run.stats.cells,
            wavefronts: run.stats.wavefronts,
            score_delta: full_score - run.output.best_score as f64,
        });
    }
    out
}

/// Ablation 3+4: traceback and reduction design points for kernel #2's
/// Table 2 shape, as `(label, cycles_per_alignment)`.
pub fn tb_and_reduction_ablation() -> Vec<(String, f64)> {
    let cases = collect_cases(&sweep_workload());
    let case = &cases[1]; // #2
    let cfg = case.info.table2_config;
    let mut out = Vec::new();
    for (label, tb_cycles, red_cycles) in [
        ("coalesced TB (2 cyc/step), tree reduce", 2u64, 1u64),
        ("naive TB (6 cyc/step), tree reduce", 6, 1),
        ("coalesced TB, serial scan reduce", 2, 8),
    ] {
        let schedule = CycleModelParams {
            tb_cycles_per_step: tb_cycles,
            reduction_cycles_per_level: red_cycles,
            ..CycleModelParams::dphls()
        };
        let summary = case.run_unverified(&cfg, &schedule, cfg.target_freq_mhz, 1);
        out.push((label.to_string(), summary.mean_cycles));
    }
    out
}

/// Ablation 5: wall-clock cost of simulating the hardware vs just computing
/// the DP. Returns `(reference_secs, systolic_secs)` for the same workload.
pub fn simulation_cost(pairs: usize, len: usize) -> (f64, f64) {
    let params = LinearParams::<i16>::dna();
    let mut sim = ReadSimulator::new(5150);
    let wl: Vec<_> = sim
        .read_pairs(pairs, len, 0.25)
        .into_iter()
        .map(|(r, mut q)| {
            q.truncate(len);
            (q, r)
        })
        .collect();
    let cfg = KernelConfig::new(32, 1, 1).with_max_lengths(len, len);
    let t0 = Instant::now();
    for (q, r) in &wl {
        run_reference::<GlobalLinear>(&params, q.as_slice(), r.as_slice(), Banding::None);
    }
    let ref_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for (q, r) in &wl {
        run_systolic::<GlobalLinear>(&params, q.as_slice(), r.as_slice(), &cfg).unwrap();
    }
    (ref_secs, t1.elapsed().as_secs_f64())
}

/// Ablation 6: one band-policy sample.
#[derive(Debug, Clone)]
pub struct BandPolicyPoint {
    /// Policy label.
    pub policy: String,
    /// Score achieved (exact NW = upper bound).
    pub score: i32,
    /// Interior cells computed.
    pub cells: u64,
}

/// Compares fixed banding, adaptive banding, and X-Drop on a read whose
/// optimal path drifts steadily off the main diagonal.
pub fn band_policy_ablation() -> Vec<BandPolicyPoint> {
    use dphls_baselines::heuristics::{adaptive_banded_nw, xdrop_extend};
    use dphls_baselines::software::{banded_nw_score, nw_score};
    let p = dphls_kernels::LinearParams::<i32>::dna();
    let genome = dphls_seq::gen::GenomeGenerator::new(0xFADE).generate(512);
    let r = genome.clone();
    // one deletion every 10 bases: ~51 cells of cumulative drift
    let q_syms: Vec<_> = genome
        .iter()
        .enumerate()
        .filter(|(idx, _)| idx % 10 != 9)
        .map(|(_, &b)| b)
        .collect();
    let q = dphls_seq::DnaSeq::new(q_syms);
    let (qs, rs) = (q.as_slice(), r.as_slice());
    let full_cells = (q.len() * r.len()) as u64;
    let mut out = vec![BandPolicyPoint {
        policy: "full matrix (exact)".into(),
        score: nw_score(qs, rs, &p),
        cells: full_cells,
    }];
    for w in [16usize, 32] {
        out.push(BandPolicyPoint {
            policy: format!("fixed band w={w}"),
            score: banded_nw_score(qs, rs, &p, w),
            cells: (q.len() * (2 * w + 1).min(r.len())) as u64,
        });
        let a = adaptive_banded_nw(qs, rs, &p, w);
        out.push(BandPolicyPoint {
            policy: format!("adaptive band w={w}"),
            score: a.score,
            cells: a.cells,
        });
    }
    let xd = xdrop_extend(qs, rs, &p, 60);
    out.push(BandPolicyPoint {
        policy: "x-drop x=60".into(),
        score: xd.score,
        cells: xd.cells,
    });
    out
}

/// Renders all ablations into one report.
pub fn render_all() -> String {
    let mut out = String::new();
    let mut t1 = Table::new(
        ["kernel", "sequential aln/s", "overlapped aln/s", "gap"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    t1.title("Ablation 1 — sequential vs overlapped phase schedule (§7.3)");
    for g in schedule_ablation() {
        t1.row(vec![
            format!("#{}", g.id),
            sci(g.sequential_aps),
            sci(g.overlapped_aps),
            format!("{:.1}%", 100.0 * g.gap()),
        ]);
    }
    out.push_str(&t1.to_string());
    out.push('\n');

    let mut t2 = Table::new(
        ["half-width", "cells", "wavefronts", "score delta"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    t2.title("Ablation 2 — band width vs pruning and fidelity (kernel #11)");
    for p in band_sweep() {
        t2.row(vec![
            if p.half_width >= 256 {
                "full".into()
            } else {
                p.half_width.to_string()
            },
            p.cells.to_string(),
            p.wavefronts.to_string(),
            format!("{:.0}", p.score_delta),
        ]);
    }
    out.push_str(&t2.to_string());
    out.push('\n');

    let mut t3 = Table::new(
        ["design point", "cycles/alignment"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    t3.title("Ablations 3+4 — traceback memory and reduction design (kernel #2)");
    for (label, cycles) in tb_and_reduction_ablation() {
        t3.row(vec![label, format!("{cycles:.0}")]);
    }
    out.push_str(&t3.to_string());
    out.push('\n');

    let (r, s) = simulation_cost(20, 128);
    out.push_str(&format!(
        "Ablation 5 — engine wall time on 20x128bp: reference {r:.4}s, systolic {s:.4}s ({:.2}x)\n\n",
        s / r.max(1e-12)
    ));

    let mut t6 = Table::new(
        ["policy", "score", "cells"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    t6.title("Ablation 6 — band policy under diagonal drift (512bp, 1 del / 10bp)");
    for p in band_policy_ablation() {
        t6.row(vec![p.policy, p.score.to_string(), p.cells.to_string()]);
    }
    out.push_str(&t6.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_gap_positive_for_all_kernels() {
        for g in schedule_ablation() {
            assert!(g.gap() > 0.0, "#{}: gap {:.3}", g.id, g.gap());
            assert!(g.gap() < 0.5, "#{}: gap {:.3}", g.id, g.gap());
        }
    }

    #[test]
    fn band_sweep_monotone_cells_and_converging_score() {
        let pts = band_sweep();
        for w in pts.windows(2) {
            assert!(w[0].cells <= w[1].cells);
        }
        // Unbanded row has zero delta by construction.
        assert_eq!(pts.last().unwrap().score_delta, 0.0);
        // Wide bands recover the full score.
        assert!(
            pts[4].score_delta.abs() < 1.0,
            "delta {}",
            pts[4].score_delta
        );
        // Narrow bands prune most of the matrix.
        assert!(pts[0].cells * 4 < pts.last().unwrap().cells);
    }

    #[test]
    fn naive_tb_and_serial_scan_cost_cycles() {
        let rows = tb_and_reduction_ablation();
        assert!(rows[1].1 > rows[0].1, "naive TB must cost more");
        assert!(rows[2].1 > rows[0].1, "serial scan must cost more");
    }

    #[test]
    fn simulation_cost_reports_positive_times() {
        let (r, s) = simulation_cost(4, 64);
        assert!(r > 0.0 && s > 0.0);
    }

    #[test]
    fn band_policy_ordering_under_drift() {
        let pts = band_policy_ablation();
        let score = |label: &str| {
            pts.iter()
                .find(|p| p.policy.starts_with(label))
                .unwrap()
                .score
        };
        let exact = score("full matrix");
        // Adaptive tracks the drift; the equal-width fixed band loses it.
        assert!(score("adaptive band w=16") > score("fixed band w=16"));
        assert!(score("adaptive band w=16") >= exact - 60);
        // Wide enough fixed band recovers, but at more cells than adaptive.
        let cells = |label: &str| {
            pts.iter()
                .find(|p| p.policy.starts_with(label))
                .unwrap()
                .cells
        };
        assert!(cells("adaptive band w=16") < cells("full matrix") / 4);
    }
}
