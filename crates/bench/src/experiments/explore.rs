//! Configuration exploration — the paper's own methodology step:
//! "Parameters NPE, NB and NK were configured for each kernel to maximize
//! the device throughput" (§6.2). This experiment automates that search on
//! the modeled device and compares the discovered optima against the
//! `(NPE, NB, NK)` column of Table 2.
//!
//! The search space mirrors the values the paper reports: NPE ∈ {8..64},
//! NB ∈ {1..16}, NK ∈ {1..8}, constrained by device fit (`dphls-fpga`).

use crate::harness::{collect_cases, profile_of, sweep_workload, KernelCase};
use dphls_core::KernelConfig;
use dphls_fpga::{estimate_device, synthesize, XCVU9P};
use dphls_systolic::CycleModelParams;
use dphls_util::{sci, Table};

/// Result of exploring one kernel.
#[derive(Debug, Clone, Copy)]
pub struct ExploredConfig {
    /// Kernel id.
    pub id: u8,
    /// Best configuration found `(NPE, NB, NK)`.
    pub best: (usize, usize, usize),
    /// Modeled throughput at the best configuration.
    pub best_aps: f64,
    /// The paper's Table 2 configuration.
    pub paper: (usize, usize, usize),
    /// Modeled throughput at the paper's configuration.
    pub paper_cfg_aps: f64,
}

impl ExploredConfig {
    /// How much the discovered optimum beats the paper's config *on our
    /// models* (1.0 = identical).
    pub fn gain(&self) -> f64 {
        self.best_aps / self.paper_cfg_aps
    }
}

/// NPE candidates (powers of two, the paper's sweep).
pub const NPE_CANDIDATES: [usize; 4] = [8, 16, 32, 64];
/// NB candidates.
pub const NB_CANDIDATES: [usize; 5] = [1, 2, 4, 8, 16];
/// NK candidates (the values Table 2 reports, plus 1-2).
pub const NK_CANDIDATES: [usize; 6] = [1, 2, 3, 4, 5, 7];

fn explore_kernel(
    case: &KernelCase,
    npe_candidates: &[usize],
    nb_candidates: &[usize],
    nk_candidates: &[usize],
) -> ExploredConfig {
    let info = &case.info;
    let profile = profile_of(info);
    let paper_cfg = info.table2_config;
    let mut best: Option<(f64, (usize, usize, usize))> = None;
    for &npe in npe_candidates {
        // Synthesis (II, fmax) and the block simulation depend only on NPE;
        // NB/NK only replicate blocks and tighten the arbiter bound, so one
        // device run per NPE suffices and the block-count sweep is
        // analytic (throughput = NB·NK·f / max(block cycles, NB·I/O)).
        let base = KernelConfig {
            npe,
            nb: 1,
            nk: 1,
            ..paper_cfg
        };
        let synth = synthesize(&profile, &base, info.ii_hint);
        let summary =
            case.run_unverified(&base, &CycleModelParams::dphls(), synth.fmax_mhz, synth.ii);
        let b = summary.breakdown;
        let io = b.load + b.writeback;
        for &nb in nb_candidates {
            for &nk in nk_candidates {
                let cfg = KernelConfig {
                    npe,
                    nb,
                    nk,
                    ..paper_cfg
                };
                if !estimate_device(&profile, &cfg).fits(&XCVU9P) {
                    continue;
                }
                let cycles = b.total.max(io * nb as u64).max(1);
                let aps = (nb * nk) as f64 * synth.fmax_mhz * 1e6 / cycles as f64;
                if best.is_none_or(|(bst, _)| aps > bst) {
                    best = Some((aps, (npe, nb, nk)));
                }
            }
        }
    }
    let (best_aps, best_cfg) = best.expect("at least one configuration fits");
    let paper_synth = synthesize(&profile, &paper_cfg, info.ii_hint);
    let paper_cfg_aps = case
        .run_unverified(
            &paper_cfg,
            &CycleModelParams::dphls(),
            paper_synth.fmax_mhz,
            paper_synth.ii,
        )
        .throughput_aps;
    ExploredConfig {
        id: info.meta.id.0,
        best: best_cfg,
        best_aps,
        paper: (paper_cfg.npe, paper_cfg.nb, paper_cfg.nk),
        paper_cfg_aps,
    }
}

/// Explores all 15 kernels over the full candidate space.
pub fn run() -> Vec<ExploredConfig> {
    run_with(&NPE_CANDIDATES, &NB_CANDIDATES, &NK_CANDIDATES)
}

/// Explores all 15 kernels over custom candidate lists (tests use a reduced
/// space — the full sweep is ~1,500 device runs).
pub fn run_with(npe: &[usize], nb: &[usize], nk: &[usize]) -> Vec<ExploredConfig> {
    collect_cases(&sweep_workload())
        .iter()
        .map(|case| explore_kernel(case, npe, nb, nk))
        .collect()
}

/// Renders the exploration.
pub fn render(rows: &[ExploredConfig]) -> Table {
    let mut t = Table::new(
        [
            "kernel",
            "explored (NPE,NB,NK)",
            "aln/s",
            "paper cfg",
            "aln/s @paper cfg",
            "gain",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    t.title(
        "Configuration exploration (§6.2's throughput-maximizing search, on the modeled device)",
    );
    for r in rows {
        t.row(vec![
            format!("#{}", r.id),
            format!("({},{},{})", r.best.0, r.best.1, r.best.2),
            sci(r.best_aps),
            format!("({},{},{})", r.paper.0, r.paper.1, r.paper.2),
            sci(r.paper_cfg_aps),
            format!("{:.2}x", r.gain()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // One sweep, all assertions in a single invocation (the sweep itself is
    // cheap: one device run per NPE candidate; the NB/NK space is analytic).
    #[test]
    fn exploration_invariants() {
        let cases = collect_cases(&sweep_workload());
        let rows = run_with(&[8, 16, 32, 64], &NB_CANDIDATES, &NK_CANDIDATES);

        // The paper's config is inside the search space, so the explored
        // optimum can only match or beat it on our models.
        for r in &rows {
            assert!(
                r.gain() >= 0.999,
                "#{}: explored {:?} ({:.3e}) worse than paper {:?} ({:.3e})",
                r.id,
                r.best,
                r.best_aps,
                r.paper,
                r.paper_cfg_aps
            );
        }

        // Every discovered optimum fits the device.
        for (case, r) in cases.iter().zip(&rows) {
            let cfg = KernelConfig {
                npe: r.best.0,
                nb: r.best.1,
                nk: r.best.2,
                ..case.info.table2_config
            };
            assert!(
                estimate_device(&profile_of(&case.info), &cfg).fits(&XCVU9P),
                "#{} best config does not fit",
                r.id
            );
        }

        // DSP-heavy #8 cannot replicate far: its explored block count stays
        // far below the add-only kernels'.
        let blocks = |id: u8| {
            let r = rows.iter().find(|r| r.id == id).unwrap();
            r.best.1 * r.best.2
        };
        assert!(
            blocks(8) < blocks(1) / 2,
            "#8 {} vs #1 {}",
            blocks(8),
            blocks(1)
        );
    }
}
