//! **Figure 3** — scaling of Global Linear (#1) and DTW (#9) with `NPE`
//! (NB = 4) and `NB` (NPE = 32): throughput (A, D) and resource
//! utilization (B, C, E, F), including the BRAM→LUTRAM dip at `NPE = 64`
//! and DTW's DSP-bound NB cap.

use crate::harness::{collect_cases, profile_of, sweep_workload, KernelCase};
use dphls_core::KernelConfig;
use dphls_fpga::{estimate_device, max_nb, XCVU9P};
use dphls_systolic::CycleModelParams;
use dphls_util::{pct, sci, Table};

/// One sweep sample.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// The swept value (NPE or NB).
    pub x: usize,
    /// Modeled throughput (alignments/s).
    pub throughput_aps: f64,
    /// Device utilization `[LUT, FF, BRAM, DSP]` at this point.
    pub util: [f64; 4],
}

/// Fig 3 data for one kernel.
#[derive(Debug, Clone)]
pub struct Fig3Series {
    /// Kernel id (1 or 9).
    pub id: u8,
    /// Kernel name.
    pub name: &'static str,
    /// Fixed frequency used for the sweep (paper: 250 / 200 MHz).
    pub freq_mhz: f64,
    /// Throughput + utilization vs NPE at NB = 4.
    pub npe_sweep: Vec<ScalePoint>,
    /// Throughput + utilization vs NB at NPE = 32.
    pub nb_sweep: Vec<ScalePoint>,
    /// Largest NB that fits the device at NPE = 32 (DTW's DSP cap).
    pub nb_cap: usize,
}

/// The NPE values of Fig 3 (x axis).
pub const NPE_VALUES: [usize; 6] = [2, 4, 8, 16, 32, 64];
/// The NB values of Fig 3 (x axis).
pub const NB_VALUES: [usize; 4] = [2, 4, 8, 16];

fn sweep(case: &KernelCase, freq_mhz: f64) -> Fig3Series {
    let info = &case.info;
    let profile = profile_of(info);
    let ii = dphls_fpga::derive_ii(&info.op_counts, info.ii_hint);
    let schedule = CycleModelParams::dphls();
    let base = KernelConfig {
        banding: info.table2_config.banding,
        ..KernelConfig::new(32, 4, 1)
    };

    let npe_sweep = NPE_VALUES
        .iter()
        .map(|&npe| {
            let cfg = KernelConfig { npe, nb: 4, ..base };
            let summary = case.run_unverified(&cfg, &schedule, freq_mhz, ii);
            ScalePoint {
                x: npe,
                throughput_aps: summary.throughput_aps,
                util: estimate_device(&profile, &cfg).utilization(&XCVU9P),
            }
        })
        .collect();

    let nb_sweep = NB_VALUES
        .iter()
        .map(|&nb| {
            let cfg = KernelConfig {
                npe: 32,
                nb,
                ..base
            };
            let summary = case.run_unverified(&cfg, &schedule, freq_mhz, ii);
            ScalePoint {
                x: nb,
                throughput_aps: summary.throughput_aps,
                util: estimate_device(&profile, &cfg).utilization(&XCVU9P),
            }
        })
        .collect();

    let nb_cap = max_nb(&profile, &KernelConfig { npe: 32, ..base }, &XCVU9P);

    Fig3Series {
        id: info.meta.id.0,
        name: info.meta.name,
        freq_mhz,
        npe_sweep,
        nb_sweep,
        nb_cap,
    }
}

/// Reproduces Fig 3 for kernels #1 (at 250 MHz) and #9 (at 200 MHz).
pub fn run() -> (Fig3Series, Fig3Series) {
    let cases = collect_cases(&sweep_workload());
    let k1 = sweep(&cases[0], 250.0);
    let k9 = sweep(&cases[8], 200.0);
    (k1, k9)
}

/// Renders one kernel's sweeps.
pub fn render(series: &Fig3Series) -> Table {
    let mut t = Table::new(
        ["sweep", "x", "aln/s", "LUT", "FF", "BRAM", "DSP"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    t.title(format!(
        "Fig 3 — {} (#{}) scaling at {} MHz (NB cap on this device: {})",
        series.name, series.id, series.freq_mhz, series.nb_cap
    ));
    for p in &series.npe_sweep {
        t.row(vec![
            "NPE (NB=4)".into(),
            p.x.to_string(),
            sci(p.throughput_aps),
            pct(p.util[0]),
            pct(p.util[1]),
            pct(p.util[2]),
            pct(p.util[3]),
        ]);
    }
    for p in &series.nb_sweep {
        t.row(vec![
            "NB (NPE=32)".into(),
            p.x.to_string(),
            sci(p.throughput_aps),
            pct(p.util[0]),
            pct(p.util[1]),
            pct(p.util[2]),
            pct(p.util[3]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn npe_scaling_is_strong_early_and_saturates_late() {
        let (k1, k9) = run();
        for s in [&k1, &k9] {
            let t = &s.npe_sweep;
            // 2 -> 8 PEs: near-linear (paper: "scales nearly perfectly ...
            // at lower values").
            let early = t[2].throughput_aps / t[0].throughput_aps;
            assert!(early > 2.2, "#{} early scaling {early}", s.id);
            // 32 -> 64 PEs: saturating (edge-effect idle cycles).
            let late = t[5].throughput_aps / t[4].throughput_aps;
            assert!(late < 1.9, "#{} late scaling {late}", s.id);
            assert!(late > 1.0, "#{} still improving {late}", s.id);
        }
    }

    #[test]
    fn nb_scaling_is_nearly_perfect() {
        let (k1, k9) = run();
        for s in [&k1, &k9] {
            let t = &s.nb_sweep;
            let r = t[3].throughput_aps / t[0].throughput_aps; // 16/2
            assert!((r - 8.0).abs() < 0.8, "#{} NB scaling {r}", s.id);
        }
    }

    #[test]
    fn resource_utilization_scales_with_nb() {
        let (k1, _) = run();
        let first = k1.nb_sweep.first().unwrap();
        let last = k1.nb_sweep.last().unwrap();
        for c in 0..4 {
            if first.util[c] > 0.0 {
                let r = last.util[c] / first.util[c];
                assert!((4.0..9.0).contains(&r), "column {c} ratio {r}");
            }
        }
    }

    #[test]
    fn dsp_flat_for_k1_but_scales_for_dtw() {
        let (k1, k9) = run();
        // Paper Fig 3B vs 3E: DSP constant for Global Linear (fixed TB
        // address logic), scaling with NPE for DTW (DSPs inside each PE).
        let k1_dsp_ratio =
            k1.npe_sweep.last().unwrap().util[3] / k1.npe_sweep.first().unwrap().util[3];
        let k9_dsp_ratio =
            k9.npe_sweep.last().unwrap().util[3] / k9.npe_sweep.first().unwrap().util[3];
        assert!(k1_dsp_ratio < 1.5, "k1 DSP ratio {k1_dsp_ratio}");
        assert!(k9_dsp_ratio > 10.0, "k9 DSP ratio {k9_dsp_ratio}");
    }

    #[test]
    fn bram_dips_at_npe_64_for_2bit_pointers() {
        let (k1, _) = run();
        let at32 = k1.npe_sweep[4].util[2];
        let at64 = k1.npe_sweep[5].util[2];
        assert!(at64 < at32, "BRAM {at64} !< {at32} (LUTRAM conversion)");
    }

    #[test]
    fn dtw_nb_cap_is_dsp_bound_and_finite() {
        let (k1, k9) = run();
        // DTW's cap must be far below the add-only kernel's.
        assert!(k9.nb_cap < k1.nb_cap, "{} !< {}", k9.nb_cap, k1.nb_cap);
        assert!(k9.nb_cap >= 8 && k9.nb_cap <= 64, "cap {}", k9.nb_cap);
    }

    #[test]
    fn render_mentions_both_sweeps() {
        let (k1, _) = run();
        let s = render(&k1).to_string();
        assert!(s.contains("NPE (NB=4)"));
        assert!(s.contains("NB (NPE=32)"));
    }
}
