//! **Figure 4** — DP-HLS kernels #2, #12, #14 vs their hand-written RTL
//! baselines (GACT, BSW, SquiggleFilter): throughput (A–C) and resource
//! utilization (D–F). The paper reports DP-HLS within 7.7 % / 16.8 % /
//! 8.16 % of the baselines; the gap comes from the sequential vs overlapped
//! phase schedule (§7.3).

use crate::harness::{collect_cases, profile_of, sweep_workload};
use dphls_baselines::rtl::{rtl_resources, RtlDesign};
use dphls_fpga::{estimate_block, XCVU9P};
use dphls_systolic::CycleModelParams;
use dphls_util::{pct, sci, Table};

/// One baseline comparison row.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Which RTL design.
    pub design: RtlDesign,
    /// DP-HLS kernel id.
    pub kernel_id: u8,
    /// DP-HLS modeled throughput (alignments/s).
    pub dphls_aps: f64,
    /// RTL baseline modeled throughput.
    pub rtl_aps: f64,
    /// Paper-reported margin (DP-HLS below RTL).
    pub paper_margin: f64,
    /// DP-HLS block utilization `[LUT, FF, BRAM, DSP]`.
    pub dphls_util: [f64; 4],
    /// RTL baseline block utilization.
    pub rtl_util: [f64; 4],
}

impl Fig4Row {
    /// Modeled margin: how far DP-HLS falls below the RTL baseline.
    pub fn modeled_margin(&self) -> f64 {
        1.0 - self.dphls_aps / self.rtl_aps
    }
}

/// Reproduces Fig 4 for all three designs.
pub fn run() -> Vec<Fig4Row> {
    let cases = collect_cases(&sweep_workload());
    [RtlDesign::Gact, RtlDesign::Bsw, RtlDesign::SquiggleFilter]
        .into_iter()
        .map(|design| {
            let case = cases
                .iter()
                .find(|c| c.info.meta.id.0 == design.kernel_id())
                .expect("registry covers all designs");
            let info = &case.info;
            let cfg = design.comparison_config();
            let profile = profile_of(info);
            let ii = dphls_fpga::derive_ii(&info.op_counts, info.ii_hint);
            // Both sides run at the same clock so the schedule difference is
            // isolated (the paper matches NPE/NB for the same reason).
            let freq = 250.0;
            let dphls = case.run(&cfg, &CycleModelParams::dphls(), freq, ii);
            let rtl = case.run(&cfg, &CycleModelParams::rtl_overlapped(), freq, 1);
            Fig4Row {
                design,
                kernel_id: design.kernel_id(),
                dphls_aps: dphls.throughput_aps,
                rtl_aps: rtl.throughput_aps,
                paper_margin: design.paper_margin(),
                dphls_util: estimate_block(&profile, &cfg).utilization(&XCVU9P),
                rtl_util: rtl_resources(design, &profile, &cfg).utilization(&XCVU9P),
            }
        })
        .collect()
}

/// Renders the comparison.
pub fn render(rows: &[Fig4Row]) -> Table {
    let mut t = Table::new(
        [
            "design",
            "kernel",
            "DP-HLS aln/s",
            "RTL aln/s",
            "margin",
            "paper",
            "LUT(D/R)",
            "FF(D/R)",
            "BRAM(D/R)",
            "DSP(D/R)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    t.title("Fig 4 — DP-HLS vs hand-written RTL baselines (D = DP-HLS, R = RTL)");
    for r in rows {
        t.row(vec![
            r.design.name().to_string(),
            format!("#{}", r.kernel_id),
            sci(r.dphls_aps),
            sci(r.rtl_aps),
            format!("{:.1}%", 100.0 * r.modeled_margin()),
            format!("{:.1}%", 100.0 * r.paper_margin),
            format!("{}/{}", pct(r.dphls_util[0]), pct(r.rtl_util[0])),
            format!("{}/{}", pct(r.dphls_util[1]), pct(r.rtl_util[1])),
            format!("{}/{}", pct(r.dphls_util[2]), pct(r.rtl_util[2])),
            format!("{}/{}", pct(r.dphls_util[3]), pct(r.rtl_util[3])),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dphls_is_slower_but_competitive() {
        for r in run() {
            let m = r.modeled_margin();
            assert!(m > 0.0, "{}: DP-HLS should trail RTL", r.design.name());
            assert!(
                m < 0.30,
                "{}: margin {m:.3} too large (paper max 16.8%)",
                r.design.name()
            );
        }
    }

    #[test]
    fn margins_track_paper_ordering() {
        let rows = run();
        let margin = |id: u8| {
            rows.iter()
                .find(|r| r.kernel_id == id)
                .unwrap()
                .modeled_margin()
        };
        // Paper: BSW (#12, no traceback) shows the largest gap because the
        // sequential load/init is a bigger fraction of its short runtime.
        assert!(margin(12) > margin(2), "{} !> {}", margin(12), margin(2));
        // All margins within 12 percentage points of the paper's numbers.
        for r in &rows {
            assert!(
                (r.modeled_margin() - r.paper_margin).abs() < 0.12,
                "{}: modeled {:.3} vs paper {:.3}",
                r.design.name(),
                r.modeled_margin(),
                r.paper_margin
            );
        }
    }

    #[test]
    fn resources_are_comparable() {
        for r in run() {
            // LUT/FF within ~25% of each other (Fig 4D-F: "comparable").
            for c in 0..2 {
                let ratio = r.dphls_util[c] / r.rtl_util[c];
                assert!(
                    (0.7..1.4).contains(&ratio),
                    "{} col {c}: ratio {ratio}",
                    r.design.name()
                );
            }
        }
    }

    #[test]
    fn render_lists_three_designs() {
        let s = render(&run()).to_string();
        assert!(s.contains("GACT"));
        assert!(s.contains("BSW"));
        assert!(s.contains("SquiggleFilter"));
    }
}
