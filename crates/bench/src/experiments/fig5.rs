//! **Figure 5** — NPE-scaling comparison of Global Affine (#2) against GACT
//! with `NB = 1`: throughput in log-log (A) and FF / LUT utilization (B, C).
//! The paper's observation: the relative throughput stays consistent and
//! the resource difference stays roughly constant as NPE grows.

use crate::harness::{collect_cases, profile_of, sweep_workload};
use dphls_baselines::rtl::{rtl_resources, RtlDesign};
use dphls_core::KernelConfig;
use dphls_fpga::estimate_block;
use dphls_systolic::CycleModelParams;
use dphls_util::{sci, Table};

/// One NPE sample of the #2-vs-GACT comparison.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// PEs per block.
    pub npe: usize,
    /// DP-HLS throughput (alignments/s).
    pub dphls_aps: f64,
    /// GACT model throughput.
    pub gact_aps: f64,
    /// DP-HLS block FFs.
    pub dphls_ff: u64,
    /// GACT block FFs.
    pub gact_ff: u64,
    /// DP-HLS block LUTs.
    pub dphls_lut: u64,
    /// GACT block LUTs.
    pub gact_lut: u64,
}

/// The swept NPE values (paper's x axis).
pub const NPE_VALUES: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// Reproduces Fig 5.
pub fn run() -> Vec<Fig5Point> {
    let cases = collect_cases(&sweep_workload());
    let case = &cases[1]; // kernel #2
    let info = &case.info;
    let profile = profile_of(info);
    let ii = dphls_fpga::derive_ii(&info.op_counts, info.ii_hint);
    NPE_VALUES
        .iter()
        .map(|&npe| {
            let cfg = KernelConfig::new(npe, 1, 1);
            let dphls = case.run_unverified(&cfg, &CycleModelParams::dphls(), 250.0, ii);
            let gact = case.run_unverified(&cfg, &CycleModelParams::rtl_overlapped(), 250.0, 1);
            let d_res = estimate_block(&profile, &cfg);
            let g_res = rtl_resources(RtlDesign::Gact, &profile, &cfg);
            Fig5Point {
                npe,
                dphls_aps: dphls.throughput_aps,
                gact_aps: gact.throughput_aps,
                dphls_ff: d_res.ff,
                gact_ff: g_res.ff,
                dphls_lut: d_res.lut,
                gact_lut: g_res.lut,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(points: &[Fig5Point]) -> Table {
    let mut t = Table::new(
        [
            "NPE",
            "DP-HLS aln/s",
            "GACT aln/s",
            "rel",
            "FF D/G",
            "LUT D/G",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    t.title("Fig 5 — Global Affine (#2) vs GACT scaling with NPE (NB=1)");
    for p in points {
        t.row(vec![
            p.npe.to_string(),
            sci(p.dphls_aps),
            sci(p.gact_aps),
            format!("{:.3}", p.dphls_aps / p.gact_aps),
            format!("{}/{}", p.dphls_ff, p.gact_ff),
            format!("{}/{}", p.dphls_lut, p.gact_lut),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_relation_is_consistent_across_npe() {
        let pts = run();
        // Paper Fig 5A: the two curves track each other; the ratio varies
        // little across the sweep.
        let ratios: Vec<f64> = pts.iter().map(|p| p.dphls_aps / p.gact_aps).collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.35, "ratio drift {min}..{max}");
        // And DP-HLS always trails, as in Fig 4A.
        assert!(ratios.iter().all(|&r| r < 1.0));
    }

    #[test]
    fn both_scale_with_npe() {
        let pts = run();
        assert!(pts.last().unwrap().dphls_aps > pts[0].dphls_aps * 4.0);
        assert!(pts.last().unwrap().gact_aps > pts[0].gact_aps * 4.0);
    }

    #[test]
    fn resource_difference_stays_bounded() {
        // Paper Fig 5B-C: "the resource usage difference stays constant"
        // (a constant multiplicative offset on the log plot).
        for p in run() {
            let ff_ratio = p.dphls_ff as f64 / p.gact_ff as f64;
            let lut_ratio = p.dphls_lut as f64 / p.gact_lut as f64;
            assert!((1.0..1.3).contains(&ff_ratio), "FF ratio {ff_ratio}");
            assert!((1.0..1.3).contains(&lut_ratio), "LUT ratio {lut_ratio}");
        }
    }

    #[test]
    fn render_has_all_npe_rows() {
        let s = render(&run()).to_string();
        for npe in NPE_VALUES {
            assert!(s
                .lines()
                .any(|l| l.trim_start().starts_with(&npe.to_string())));
        }
    }
}
