//! **Figure 6** — iso-cost throughput comparison of DP-HLS kernels against
//! CPU baselines (A: SeqAn3, minimap2, EMBOSS Water) and GPU baselines
//! (B: GASAL2, CUDASW++ 4.0).
//!
//! Two baseline columns are reported per kernel:
//!
//! * **paper-calibrated** — the baseline's iso-cost throughput implied by
//!   the paper's published speedup ratios (the exact Fig 6 shape;
//!   `dphls_baselines::published`), and
//! * **measured** — our independent multi-threaded Rust implementation of
//!   the same kernel (`dphls_baselines::software`), timed on this machine.
//!   This column is machine-dependent; it demonstrates the comparison is
//!   runnable end-to-end, while the calibrated column carries the paper's
//!   numbers.

use crate::harness::{collect_cases, default_workload};
use dphls_baselines::published::{PublishedBaseline, CPU_BASELINES, GPU_BASELINES};
use dphls_baselines::software;
use dphls_kernels::{AffineParams, LinearParams, ProteinParams, TwoPieceParams};
use dphls_seq::gen::{ProteinSampler, ReadSimulator};
use dphls_seq::{AminoAcid, Base};
use dphls_util::{sci, Table};

/// One Fig 6 comparison row.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Kernel id.
    pub kernel_id: u8,
    /// Baseline tool name.
    pub tool: &'static str,
    /// DP-HLS modeled throughput (alignments/s).
    pub dphls_aps: f64,
    /// Paper-calibrated baseline throughput (iso-cost alignments/s).
    pub baseline_paper_aps: f64,
    /// Measured Rust baseline throughput on this machine (CPU rows only).
    pub baseline_measured_aps: Option<f64>,
    /// Paper-reported speedup.
    pub paper_speedup: f64,
    /// Modeled speedup against the paper-calibrated baseline.
    pub modeled_speedup: f64,
}

fn dna_workload(n: usize, len: usize, seed: u64) -> Vec<(Vec<Base>, Vec<Base>)> {
    let mut sim = ReadSimulator::new(seed);
    sim.read_pairs(n, len, 0.30)
        .into_iter()
        .map(|(r, mut q)| {
            q.truncate(len);
            (q.into_vec(), r.into_vec())
        })
        .collect()
}

fn protein_workload(n: usize, len: usize, seed: u64) -> Vec<(Vec<AminoAcid>, Vec<AminoAcid>)> {
    let mut s = ProteinSampler::new(seed);
    s.homolog_pairs(n, len, 0.6)
        .into_iter()
        .map(|(q, mut t)| {
            t.truncate(len);
            (q.into_vec(), t.into_vec())
        })
        .collect()
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(32) // the paper's 32-thread SeqAn3 configuration
}

/// Measures our Rust software baseline for a CPU-comparable kernel.
fn measure_cpu_baseline(kernel_id: u8, pairs: usize, len: usize) -> Option<f64> {
    let t = threads();
    let seed = 0xF16_u64 + kernel_id as u64;
    let lin = LinearParams::<i32>::dna();
    let aff = AffineParams::<i32>::dna();
    match kernel_id {
        1 => {
            let wl = dna_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, |(q, r)| {
                software::nw_score(q, r, &lin);
            }))
        }
        2 => {
            let wl = dna_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, |(q, r)| {
                software::affine_global_score(q, r, &aff);
            }))
        }
        3 => {
            let wl = dna_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, |(q, r)| {
                software::sw_score(q, r, &lin);
            }))
        }
        4 => {
            let wl = dna_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, |(q, r)| {
                software::affine_local_score(q, r, &aff);
            }))
        }
        5 => {
            let two = TwoPieceParams::<i32>::dna();
            let wl = dna_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, move |(q, r)| {
                software::two_piece_global_score(q, r, &two);
            }))
        }
        6 => {
            let wl = dna_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, |(q, r)| {
                software::overlap_score(q, r, &lin);
            }))
        }
        7 => {
            let wl = dna_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, |(q, r)| {
                software::semi_global_score(q, r, &lin);
            }))
        }
        11 => {
            let wl = dna_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, |(q, r)| {
                software::banded_nw_score(q, r, &lin, 32);
            }))
        }
        12 => {
            let wl = dna_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, |(q, r)| {
                software::banded_affine_local_score(q, r, &aff, 32);
            }))
        }
        15 => {
            let prot = ProteinParams::<i32>::blosum62();
            let wl = protein_workload(pairs, len, seed);
            Some(software::measure_throughput(&wl, t, move |(q, r)| {
                software::protein_sw_score(q, r, &prot);
            }))
        }
        _ => None,
    }
}

fn build_rows(
    baselines: &[PublishedBaseline],
    dphls: &dyn Fn(u8) -> f64,
    measure: bool,
    pairs: usize,
    len: usize,
) -> Vec<Fig6Row> {
    baselines
        .iter()
        .map(|b| {
            let dphls_aps = dphls(b.kernel_id);
            let baseline_paper_aps = b.baseline_aln_per_sec();
            Fig6Row {
                kernel_id: b.kernel_id,
                tool: b.tool,
                dphls_aps,
                baseline_paper_aps,
                baseline_measured_aps: if measure {
                    measure_cpu_baseline(b.kernel_id, pairs, len)
                } else {
                    None
                },
                paper_speedup: b.paper_speedup,
                modeled_speedup: dphls_aps / baseline_paper_aps,
            }
        })
        .collect()
}

/// Reproduces Fig 6: `(cpu_rows, gpu_rows)`.
///
/// `measure_pairs` controls the measured-baseline workload size (hundreds
/// for stable timing; tests use fewer).
pub fn run(measure_pairs: usize) -> (Vec<Fig6Row>, Vec<Fig6Row>) {
    let cases = collect_cases(&default_workload());
    let modeled: Vec<(u8, f64)> = cases
        .iter()
        .map(|c| (c.info.meta.id.0, c.run_table2().1.throughput_aps))
        .collect();
    let dphls = |id: u8| -> f64 {
        modeled
            .iter()
            .find(|(k, _)| *k == id)
            .map(|(_, t)| *t)
            .expect("kernel present")
    };
    let cpu = build_rows(
        &CPU_BASELINES,
        &dphls,
        measure_pairs > 0,
        measure_pairs,
        256,
    );
    let gpu = build_rows(&GPU_BASELINES, &dphls, false, 0, 256);
    (cpu, gpu)
}

/// Renders one panel.
pub fn render(title: &str, rows: &[Fig6Row]) -> Table {
    let mut t = Table::new(
        [
            "kernel",
            "baseline",
            "DP-HLS aln/s",
            "baseline aln/s (paper)",
            "measured Rust aln/s",
            "speedup",
            "paper speedup",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    t.title(title.to_string());
    for r in rows {
        t.row(vec![
            format!("#{}", r.kernel_id),
            r.tool.to_string(),
            sci(r.dphls_aps),
            sci(r.baseline_paper_aps),
            r.baseline_measured_aps.map_or("-".into(), sci),
            format!("{:.2}x", r.modeled_speedup),
            format!("{:.2}x", r.paper_speedup),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_panel_covers_paper_kernels() {
        let (cpu, gpu) = run(8);
        let ids: Vec<u8> = cpu.iter().map(|r| r.kernel_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7, 11, 12, 15]);
        assert_eq!(gpu.len(), 4);
    }

    #[test]
    fn dphls_wins_against_every_paper_baseline() {
        let (cpu, gpu) = run(0);
        for r in cpu.iter().chain(gpu.iter()) {
            assert!(
                r.modeled_speedup > 1.0,
                "#{} vs {}: speedup {:.2}",
                r.kernel_id,
                r.tool,
                r.modeled_speedup
            );
        }
    }

    #[test]
    fn compute_heavy_kernels_show_largest_wins() {
        // Paper: #5 (12x) and #15 (32x) dominate the CPU panel.
        let (cpu, _) = run(0);
        let speedup = |id: u8| {
            cpu.iter()
                .find(|r| r.kernel_id == id)
                .unwrap()
                .modeled_speedup
        };
        let seqan_max = [1u8, 2, 3, 4, 6, 7, 11, 12]
            .iter()
            .map(|&id| speedup(id))
            .fold(0.0, f64::max);
        assert!(
            speedup(5) > seqan_max,
            "#5 {:.1} !> {seqan_max:.1}",
            speedup(5)
        );
        assert!(speedup(15) > seqan_max);
    }

    #[test]
    fn measured_baseline_is_positive_where_defined() {
        let (cpu, _) = run(8);
        for r in &cpu {
            let m = r.baseline_measured_aps.expect("CPU rows are measurable");
            assert!(m > 0.0, "#{} measured {m}", r.kernel_id);
        }
    }

    #[test]
    fn render_has_both_columns() {
        let (cpu, _) = run(0);
        let s = render("Fig 6A", &cpu).to_string();
        assert!(s.contains("SeqAn3"));
        assert!(s.contains("EMBOSS"));
    }
}
