//! One module per paper table/figure (the per-experiment index of
//! DESIGN.md): each `run()` returns structured rows and each `render()`
//! produces the printable table the corresponding `cargo run -p dphls-bench
//! --bin <experiment>` binary emits.

pub mod ablation;
pub mod explore;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod productivity;
pub mod sec75;
pub mod table2;
pub mod tiling;
