//! **§7.6** — productivity proxy: the paper reports that once the framework
//! existed, a new kernel took 2–4 days instead of months. Development time
//! is not measurable offline, so we report the quantity that drives it:
//! the size of each kernel's front-end specification versus the shared
//! back-end it rides on. All 15 kernels together are a small fraction of
//! the framework, and each individual kernel is a few dozen lines of
//! recurrence + FSM.

use dphls_util::Table;
use std::fs;
use std::path::PathBuf;

/// Lines-of-code summary for one source area.
#[derive(Debug, Clone)]
pub struct LocEntry {
    /// Human label.
    pub label: String,
    /// Non-empty, non-comment lines.
    pub loc: usize,
}

fn crate_root(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join(rel)
}

/// Counts non-empty, non-comment lines of a source file.
fn count_loc(path: &PathBuf) -> usize {
    let Ok(text) = fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

/// Front-end kernel sources (the user-written part, paper §4).
pub const KERNEL_SOURCES: [(&str, &str); 8] = [
    ("#1/#3/#6/#7/#11 linear family", "kernels/src/linear.rs"),
    ("#2/#4/#12 affine family", "kernels/src/affine.rs"),
    ("#5/#13 two-piece family", "kernels/src/two_piece.rs"),
    ("#8 profile alignment", "kernels/src/profile.rs"),
    ("#9/#14 DTW family", "kernels/src/dtw.rs"),
    ("#10 Viterbi", "kernels/src/viterbi.rs"),
    ("#15 protein SW", "kernels/src/protein.rs"),
    ("shared ScoringParams", "kernels/src/params.rs"),
];

/// Back-end / framework sources (the part users never touch, paper §5).
pub const BACKEND_SOURCES: [(&str, &str); 4] = [
    ("systolic back-end", "systolic/src"),
    ("FPGA models", "fpga/src"),
    ("front-end core", "core/src"),
    ("host runtime", "host/src"),
];

fn dir_loc(rel: &str) -> usize {
    let root = crate_root(rel);
    let Ok(entries) = fs::read_dir(&root) else {
        return 0;
    };
    entries
        .flatten()
        .map(|e| {
            let p = e.path();
            if p.is_dir() {
                dir_loc(p.to_str().unwrap_or(""))
            } else if p.extension().is_some_and(|x| x == "rs") {
                count_loc(&p)
            } else {
                0
            }
        })
        .sum()
}

/// Computes the productivity summary.
pub fn run() -> (Vec<LocEntry>, Vec<LocEntry>) {
    let kernels = KERNEL_SOURCES
        .iter()
        .map(|(label, rel)| LocEntry {
            label: label.to_string(),
            loc: count_loc(&crate_root(rel)),
        })
        .collect();
    let backend = BACKEND_SOURCES
        .iter()
        .map(|(label, rel)| LocEntry {
            label: label.to_string(),
            loc: if crate_root(rel).is_dir() {
                dir_loc(rel)
            } else {
                count_loc(&crate_root(rel))
            },
        })
        .collect();
    (kernels, backend)
}

/// Renders the summary.
pub fn render(kernels: &[LocEntry], backend: &[LocEntry]) -> Table {
    let mut t = Table::new(
        ["area", "LoC (non-comment)"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    t.title("§7.6 productivity proxy — front-end kernel specs vs shared framework");
    for e in kernels.iter().chain(backend.iter()) {
        t.row(vec![e.label.clone(), e.loc.to_string()]);
    }
    let k: usize = kernels.iter().map(|e| e.loc).sum();
    let b: usize = backend.iter().map(|e| e.loc).sum();
    t.row(vec![
        "TOTAL front-end (all 15 kernels)".into(),
        k.to_string(),
    ]);
    t.row(vec!["TOTAL shared framework".into(), b.to_string()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_specs_are_much_smaller_than_framework() {
        let (kernels, backend) = run();
        let k: usize = kernels.iter().map(|e| e.loc).sum();
        let b: usize = backend.iter().map(|e| e.loc).sum();
        assert!(k > 0 && b > 0);
        // The §7.6 argument: the per-kernel front-end is a small fraction of
        // the shared machinery it reuses.
        assert!(b > k, "framework {b} !> kernels {k}");
    }

    #[test]
    fn every_kernel_source_is_found() {
        let (kernels, _) = run();
        for e in &kernels {
            assert!(e.loc > 0, "{} not found", e.label);
        }
    }

    #[test]
    fn render_totals_present() {
        let (k, b) = run();
        let s = render(&k, &b).to_string();
        assert!(s.contains("TOTAL front-end"));
        assert!(s.contains("TOTAL shared framework"));
    }
}
