//! **§7.5** — DP-HLS kernel #3 vs the AMD Vitis Genomics Library
//! Smith-Waterman HLS baseline: the paper reports DP-HLS 32.6 % faster,
//! attributed to device-memory staging (vs streaming) and stronger back-end
//! optimization hints.

use dphls_baselines::hls::{hls_baseline_config, hls_baseline_device};
use dphls_baselines::published::HLS_BASELINE_SPEEDUP;
use dphls_kernels::{LinearParams, LocalLinear};
use dphls_seq::gen::ReadSimulator;
use dphls_systolic::{CycleModelParams, Device, KernelCycleInfo};
use dphls_util::{sci, Table};

/// The §7.5 comparison result.
#[derive(Debug, Clone, Copy)]
pub struct Sec75Result {
    /// DP-HLS kernel #3 modeled throughput (alignments/s).
    pub dphls_aps: f64,
    /// Vitis Genomics SW baseline modeled throughput.
    pub hls_baseline_aps: f64,
    /// Paper-reported speedup (1.326).
    pub paper_speedup: f64,
}

impl Sec75Result {
    /// Modeled DP-HLS speedup over the HLS baseline.
    pub fn modeled_speedup(&self) -> f64 {
        self.dphls_aps / self.hls_baseline_aps
    }
}

/// Reproduces the §7.5 comparison.
pub fn run() -> Sec75Result {
    let mut sim = ReadSimulator::new(0x75);
    let workload: Vec<_> = sim
        .read_pairs(6, 256, 0.30)
        .into_iter()
        .map(|(r, mut q)| {
            q.truncate(256);
            (q.into_vec(), r.into_vec())
        })
        .collect();
    let params = LinearParams::<i16>::dna();
    let kinfo = KernelCycleInfo {
        sym_bits: 2,
        has_walk: true,
        ii: 1,
    };
    let dphls = Device::new(
        hls_baseline_config(), // same NPE=32, NB=32, NK=1 shape
        CycleModelParams::dphls(),
        kinfo,
        250.0,
    );
    let baseline = hls_baseline_device(2);
    let dphls_aps = dphls
        .run::<LocalLinear>(&params, &workload)
        .expect("dphls run")
        .throughput_aps;
    let hls_baseline_aps = baseline
        .run::<LocalLinear>(&params, &workload)
        .expect("baseline run")
        .throughput_aps;
    Sec75Result {
        dphls_aps,
        hls_baseline_aps,
        paper_speedup: HLS_BASELINE_SPEEDUP,
    }
}

/// Renders the comparison.
pub fn render(r: &Sec75Result) -> Table {
    let mut t = Table::new(
        ["design", "aln/s", "speedup", "paper"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    t.title("§7.5 — Kernel #3 vs AMD Vitis Genomics Library SW (HLS baseline)");
    t.row(vec![
        "DP-HLS #3".into(),
        sci(r.dphls_aps),
        format!("{:.3}x", r.modeled_speedup()),
        format!("{:.3}x", r.paper_speedup),
    ]);
    t.row(vec![
        "Vitis Genomics SW".into(),
        sci(r.hls_baseline_aps),
        "1.000x".into(),
        "1.000x".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dphls_beats_hls_baseline_in_paper_regime() {
        let r = run();
        let s = r.modeled_speedup();
        assert!(s > 1.0, "speedup {s}");
        // Paper: 32.6%. Model within ~15 points.
        assert!((s - 1.326).abs() < 0.15, "speedup {s:.3} vs paper 1.326");
    }

    #[test]
    fn render_shows_both_designs() {
        let s = render(&run()).to_string();
        assert!(s.contains("DP-HLS #3"));
        assert!(s.contains("Vitis Genomics"));
    }
}
