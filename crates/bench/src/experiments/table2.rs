//! **Table 2** — performance summary of all 15 DP-HLS kernels: resource
//! utilization of a 32-PE block, optimal `(NPE, NB, NK)`, maximum frequency,
//! and throughput.

use crate::harness::{collect_cases, default_workload, profile_of};
use dphls_core::KernelConfig;
use dphls_fpga::{estimate_block, XCVU9P};
use dphls_util::{pct, sci, Table};

/// One reproduced Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Kernel id (1..=15).
    pub id: u8,
    /// Kernel name.
    pub name: &'static str,
    /// Modeled block utilization at 32 PEs `[LUT, FF, BRAM, DSP]`.
    pub util: [f64; 4],
    /// Paper-reported utilization `[LUT, FF, BRAM, DSP]`.
    pub paper_util: [f64; 4],
    /// Optimal `(NPE, NB, NK)` (from the paper's exploration).
    pub config: (usize, usize, usize),
    /// Modeled achieved frequency (MHz).
    pub freq_mhz: f64,
    /// Paper-reported frequency (MHz).
    pub paper_freq_mhz: f64,
    /// Modeled throughput (alignments/s) at the optimal configuration.
    pub aln_per_sec: f64,
    /// Paper-reported throughput.
    pub paper_aln_per_sec: f64,
    /// Whether the functional outputs matched the reference engine.
    pub verified: bool,
}

impl Table2Row {
    /// Modeled-vs-paper throughput ratio.
    pub fn throughput_ratio(&self) -> f64 {
        self.aln_per_sec / self.paper_aln_per_sec
    }
}

/// Reproduces Table 2.
pub fn run() -> Vec<Table2Row> {
    let cases = collect_cases(&default_workload());
    cases
        .iter()
        .map(|case| {
            let info = &case.info;
            // Resource column: a single 32-PE block (Table 2's granularity),
            // independent of the throughput-optimal NPE.
            let block32 = KernelConfig {
                npe: 32,
                nb: 1,
                nk: 1,
                ..info.table2_config
            };
            let util = estimate_block(&profile_of(info), &block32).utilization(&XCVU9P);
            let (synth, summary) = case.run_table2();
            Table2Row {
                id: info.meta.id.0,
                name: info.meta.name,
                util,
                paper_util: info.paper.util,
                config: (
                    info.table2_config.npe,
                    info.table2_config.nb,
                    info.table2_config.nk,
                ),
                freq_mhz: synth.fmax_mhz,
                paper_freq_mhz: info.paper.freq_mhz,
                aln_per_sec: summary.throughput_aps,
                paper_aln_per_sec: info.paper.aln_per_sec,
                verified: summary.matches_reference,
            }
        })
        .collect()
}

/// Renders the rows in the paper's layout, with paper reference columns.
pub fn render(rows: &[Table2Row]) -> Table {
    let mut t = Table::new(
        [
            "#",
            "LUT",
            "FF",
            "BRAM",
            "DSP",
            "(NPE,NB,NK)",
            "MHz",
            "aln/s",
            "paper aln/s",
            "ratio",
            "verified",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    t.title("Table 2 — Performance summary of 15 DP-HLS kernels (modeled vs paper)");
    for r in rows {
        t.row(vec![
            format!("#{}", r.id),
            pct(r.util[0]),
            pct(r.util[1]),
            pct(r.util[2]),
            pct(r.util[3]),
            format!("({},{},{})", r.config.0, r.config.1, r.config.2),
            format!("{:.1}", r.freq_mhz),
            sci(r.aln_per_sec),
            sci(r.paper_aln_per_sec),
            format!("{:.2}x", r.throughput_ratio()),
            if r.verified { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fifteen_verified_rows() {
        let rows = run();
        assert_eq!(rows.len(), 15);
        for r in &rows {
            assert!(r.verified, "kernel #{} failed verification", r.id);
            assert!(r.aln_per_sec > 0.0);
        }
    }

    #[test]
    fn throughput_shape_holds() {
        let rows = run();
        let by_id = |id: u8| rows.iter().find(|r| r.id == id).unwrap();
        // Every kernel within 3.5x of the paper's co-sim throughput (kernel
        // #9's signal length is unreported in the paper; see EXPERIMENTS.md).
        for r in &rows {
            let ratio = r.throughput_ratio();
            assert!(
                (0.28..3.5).contains(&ratio),
                "kernel #{}: ratio {ratio:.2}",
                r.id
            );
        }
        // Resource-heavy kernels (#8, #9, #10) are the slowest, as in the
        // paper ("resource-intensive kernels have relatively lower values").
        let slowest = rows
            .iter()
            .min_by(|a, b| a.aln_per_sec.partial_cmp(&b.aln_per_sec).unwrap())
            .unwrap();
        assert!(
            [8, 9, 10].contains(&slowest.id),
            "slowest was #{}",
            slowest.id
        );
        // #8 (profile) has the highest DSP utilization by far.
        let dsp8 = by_id(8).util[3];
        for r in rows.iter().filter(|r| r.id != 8) {
            assert!(dsp8 > 5.0 * r.util[3], "#8 DSP not dominant over #{}", r.id);
        }
    }

    #[test]
    fn bram_trends_match_paper() {
        let rows = run();
        let by_id = |id: u8| rows.iter().find(|r| r.id == id).unwrap();
        // Two-piece kernels (7-bit pointers) use more BRAM than linear (#1).
        assert!(by_id(5).util[2] > by_id(7).util[2]);
        // No-traceback kernels use the least BRAM (#12, #14).
        assert!(by_id(12).util[2] < by_id(1).util[2]);
        assert!(by_id(14).util[2] < by_id(1).util[2]);
        // Protein kernel's substitution matrix raises its BRAM (#15 > #3).
        assert!(by_id(15).util[2] > by_id(3).util[2]);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = run();
        let s = render(&rows).to_string();
        assert!(s.contains("#1"));
        assert!(s.contains("#15"));
        assert!(s.contains("Table 2"));
    }
}
