//! **Long-read tiling** (paper §6.2, §7.3, contribution #5): kernel #2 with
//! GACT-style tiling aligns full-length reads on a 256-wide device kernel.
//! The paper's claims reproduced here:
//!
//! 1. tiling lets a fixed-size kernel align arbitrarily long reads;
//! 2. the stitched score tracks the full (untiled) global score;
//! 3. "the relative throughput of the Global Affine kernel versus GACT
//!    remained consistent for long alignments, as both approaches use the
//!    same number of tiles."

use dphls_core::{run_reference, Banding, KernelConfig};
use dphls_host::tiling::{tiled_global_affine, TilingConfig};
use dphls_kernels::{AffineParams, GlobalAffine};
use dphls_seq::gen::ReadSimulator;
use dphls_systolic::{
    alignment_cycles, effective_cycles_per_alignment, run_systolic, CycleModelParams,
    KernelCycleInfo,
};
use dphls_util::{sci, Table};

/// One tiled-alignment sample.
#[derive(Debug, Clone, Copy)]
pub struct TilingRow {
    /// Read length (bases).
    pub read_len: usize,
    /// Tiles executed.
    pub tiles: usize,
    /// Stitched affine score.
    pub tiled_score: i64,
    /// Full (untiled) global affine score, when feasible to compute.
    pub full_score: Option<i64>,
    /// Modeled DP-HLS reads/second through the tiling pipeline.
    pub dphls_reads_per_sec: f64,
    /// Modeled GACT reads/second (overlapped schedule, same tiles).
    pub gact_reads_per_sec: f64,
}

/// Read lengths swept (up to the paper's 10 kb PacBio reads).
pub const READ_LENGTHS: [usize; 4] = [512, 1_024, 2_048, 10_000];

/// Error rate used for the long reads (the paper's 30 % is used for the
/// dataset; a gentler 15 % keeps the optimal path within the tile band so
/// score-fidelity is measurable).
pub const ERROR_RATE: f64 = 0.15;

/// Reproduces the tiling experiment.
pub fn run() -> Vec<TilingRow> {
    let tiling = TilingConfig::paper_default();
    let params = AffineParams::<i32>::dna();
    let mut sim = ReadSimulator::new(0x7117);
    READ_LENGTHS
        .iter()
        .map(|&len| {
            let (reference, read) = sim.read_pair(len, ERROR_RATE);
            let tiled =
                tiled_global_affine(read.as_slice(), reference.as_slice(), &params, tiling, 32)
                    .expect("tiling succeeds");
            let full_score = if len <= 2_048 {
                Some(
                    run_reference::<GlobalAffine<i32>>(
                        &params,
                        read.as_slice(),
                        reference.as_slice(),
                        Banding::None,
                    )
                    .best_score as i64,
                )
            } else {
                None
            };
            // Per-tile device cycles from a representative full tile.
            let cfg = KernelConfig::new(32, 1, 1).with_max_lengths(tiling.tile, tiling.tile);
            let t = tiling.tile.min(read.len()).min(reference.len());
            let tile_run = run_systolic::<GlobalAffine<i32>>(
                &params,
                &read.as_slice()[..t],
                &reference.as_slice()[..t],
                &cfg,
            )
            .expect("tile run");
            let kinfo = KernelCycleInfo {
                sym_bits: 2,
                has_walk: true,
                ii: 1,
            };
            let reads_per_sec = |sched: &CycleModelParams| {
                let b = alignment_cycles(&tile_run.stats, &kinfo, sched);
                let cycles = effective_cycles_per_alignment(&b, &cfg) * tiled.tiles as u64;
                250.0e6 / cycles as f64
            };
            TilingRow {
                read_len: len,
                tiles: tiled.tiles,
                tiled_score: tiled.score,
                full_score,
                dphls_reads_per_sec: reads_per_sec(&CycleModelParams::dphls()),
                gact_reads_per_sec: reads_per_sec(&CycleModelParams::rtl_overlapped()),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(rows: &[TilingRow]) -> Table {
    let mut t = Table::new(
        [
            "read len",
            "tiles",
            "tiled score",
            "full score",
            "DP-HLS reads/s",
            "GACT reads/s",
            "rel",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    t.title("Long reads via GACT-style tiling of kernel #2 (tile 256, overlap 32)");
    for r in rows {
        t.row(vec![
            r.read_len.to_string(),
            r.tiles.to_string(),
            r.tiled_score.to_string(),
            r.full_score.map_or("-".into(), |s| s.to_string()),
            sci(r.dphls_reads_per_sec),
            sci(r.gact_reads_per_sec),
            format!("{:.3}", r.dphls_reads_per_sec / r.gact_reads_per_sec),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_grow_with_read_length() {
        let rows = run();
        for w in rows.windows(2) {
            assert!(w[1].tiles > w[0].tiles);
        }
        // 10 kb read at 256-tile/32-overlap: on the order of 10000/224 tiles.
        let long = rows.last().unwrap();
        assert!(long.tiles >= 40 && long.tiles <= 70, "tiles {}", long.tiles);
    }

    #[test]
    fn tiled_score_tracks_full_score() {
        for r in run() {
            if let Some(full) = r.full_score {
                assert!(r.tiled_score <= full);
                // Within a small absolute slack of the optimum.
                let slack = (full - r.tiled_score).abs();
                assert!(
                    slack as f64 <= 0.1 * (r.read_len as f64),
                    "len {}: tiled {} vs full {full}",
                    r.read_len,
                    r.tiled_score
                );
            }
        }
    }

    #[test]
    fn relative_throughput_consistent_across_lengths() {
        // §7.3: "The relative throughput ... remained consistent for long
        // alignments, as both approaches use the same number of tiles."
        let rows = run();
        let ratios: Vec<f64> = rows
            .iter()
            .map(|r| r.dphls_reads_per_sec / r.gact_reads_per_sec)
            .collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.05, "ratio drift {min:.3}..{max:.3}");
        assert!(ratios.iter().all(|&x| x < 1.0)); // GACT stays ahead
    }

    #[test]
    fn render_includes_ten_kb_row() {
        let s = render(&run()).to_string();
        assert!(s.contains("10000"));
    }
}
