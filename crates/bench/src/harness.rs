//! The experiment harness: collects every kernel from the registry into an
//! erased [`KernelCase`] that experiments can run at arbitrary
//! configurations without naming kernel types.
//!
//! [`KernelSpec`](dphls_core::KernelSpec) is deliberately not object-safe (the back-end
//! monomorphizes per kernel), so the harness captures a closure per kernel
//! at visit time; the closure owns the default parameters and workload and
//! can replay them on any device configuration.

use dphls_core::{KernelConfig, LaneKernel};
use dphls_fpga::KernelProfile;
use dphls_kernels::registry::{visit_all, CaseInfo, KernelVisitor, WorkloadSpec};
use dphls_systolic::{CycleBreakdown, CycleModelParams, Device, KernelCycleInfo};

/// Erased result of running one kernel's workload on a device model.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Modeled throughput (alignments/second).
    pub throughput_aps: f64,
    /// Mean effective cycles per alignment.
    pub mean_cycles: f64,
    /// Mean per-phase cycle breakdown.
    pub breakdown: CycleBreakdown,
    /// Best scores (as `f64`) per workload pair.
    pub best_scores: Vec<f64>,
    /// Whether every output matched the reference engine bit-for-bit.
    pub matches_reference: bool,
}

type Runner =
    Box<dyn Fn(&KernelConfig, &CycleModelParams, f64, u32, bool) -> RunSummary + Send + Sync>;

/// One kernel, erased for the experiment drivers.
pub struct KernelCase {
    /// Registry info (meta, op counts, Table 2 config, paper numbers).
    pub info: CaseInfo,
    runner: Runner,
}

impl std::fmt::Debug for KernelCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelCase")
            .field("info", &self.info)
            .finish_non_exhaustive()
    }
}

impl KernelCase {
    /// The kernel's structural profile for the FPGA models.
    pub fn profile(&self) -> KernelProfile {
        profile_of(&self.info)
    }

    /// Runs the kernel's captured workload on a device with the given
    /// configuration, schedule, frequency, and II, verifying every output
    /// against the reference engine.
    pub fn run(
        &self,
        config: &KernelConfig,
        schedule: &CycleModelParams,
        freq_mhz: f64,
        ii: u32,
    ) -> RunSummary {
        (self.runner)(config, schedule, freq_mhz, ii, true)
    }

    /// Like [`KernelCase::run`] but skips the per-pair reference
    /// verification — for configuration sweeps where the functional result
    /// is identical across configurations and only the cycle model varies.
    pub fn run_unverified(
        &self,
        config: &KernelConfig,
        schedule: &CycleModelParams,
        freq_mhz: f64,
        ii: u32,
    ) -> RunSummary {
        (self.runner)(config, schedule, freq_mhz, ii, false)
    }

    /// Runs at the kernel's Table 2 configuration with the standard DP-HLS
    /// schedule, deriving II and frequency from the synthesis model.
    pub fn run_table2(&self) -> (dphls_fpga::SynthesisReport, RunSummary) {
        let cfg = self.info.table2_config;
        let synth = dphls_fpga::synthesize(&self.profile(), &cfg, self.info.ii_hint);
        let summary = self.run(&cfg, &CycleModelParams::dphls(), synth.fmax_mhz, synth.ii);
        (synth, summary)
    }
}

/// Converts registry info into the FPGA model's kernel profile.
pub fn profile_of(info: &CaseInfo) -> KernelProfile {
    KernelProfile {
        op_counts: info.op_counts,
        score_bits: info.score_bits,
        sym_bits: info.sym_bits,
        tb_bits: info.meta.tb_bits,
        n_layers: info.meta.n_layers,
        walk: info.meta.traceback.walk,
        param_table_bits: info.param_table_bits,
    }
}

struct Collector {
    cases: Vec<KernelCase>,
}

impl KernelVisitor for Collector {
    fn visit<K: LaneKernel>(
        &mut self,
        info: &CaseInfo,
        params: &K::Params,
        workload: &[dphls_core::SeqPair<K>],
    ) {
        let info = *info;
        let params = params.clone();
        let workload: Vec<dphls_core::SeqPair<K>> = workload.to_vec();
        let sym_bits = info.sym_bits;
        let has_walk = info.meta.traceback.has_walk();
        let runner: Runner = Box::new(move |config, schedule, freq_mhz, ii, verify| {
            let kinfo = KernelCycleInfo {
                sym_bits,
                has_walk,
                ii,
            };
            let max_len = workload
                .iter()
                .flat_map(|(q, r)| [q.len(), r.len()])
                .max()
                .unwrap_or(1)
                .max(config.max_query.min(config.max_ref));
            let config = KernelConfig {
                max_query: config.max_query.max(max_len),
                max_ref: config.max_ref.max(max_len),
                npe: config.npe.min(max_len),
                ..*config
            };
            let device = Device::new(config, *schedule, kinfo, freq_mhz);
            let report = device
                .run::<K>(&params, &workload)
                .expect("harness device run failed");
            let mut matches = true;
            if verify {
                for ((q, r), out) in workload.iter().zip(report.outputs.iter()) {
                    let want = dphls_core::run_reference::<K>(&params, q, r, config.banding);
                    if *out != want {
                        matches = false;
                    }
                }
            }
            RunSummary {
                throughput_aps: report.throughput_aps,
                mean_cycles: report.mean_cycles,
                breakdown: report.mean_breakdown,
                best_scores: report
                    .outputs
                    .iter()
                    .map(|o| dphls_core::Score::to_f64(o.best_score))
                    .collect(),
                matches_reference: matches,
            }
        });
        self.cases.push(KernelCase { info, runner });
    }
}

/// Collects all 15 kernels with the given workload sizing.
pub fn collect_cases(wl: &WorkloadSpec) -> Vec<KernelCase> {
    let mut c = Collector { cases: Vec::new() };
    visit_all(&mut c, wl);
    c.cases
}

/// The default experiment workload: the paper's 256-length sequences at
/// 30 % error, shrunk to a handful of pairs so experiments stay fast.
pub fn default_workload() -> WorkloadSpec {
    WorkloadSpec {
        pairs: 6,
        len: 256,
        ..WorkloadSpec::default()
    }
}

/// A smaller workload for sweeps (Fig 3/5 style).
pub fn sweep_workload() -> WorkloadSpec {
    WorkloadSpec {
        pairs: 3,
        len: 256,
        ..WorkloadSpec::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_all_fifteen() {
        let cases = collect_cases(&WorkloadSpec {
            pairs: 2,
            len: 48,
            ..WorkloadSpec::default()
        });
        assert_eq!(cases.len(), 15);
        for (i, c) in cases.iter().enumerate() {
            assert_eq!(c.info.meta.id.0 as usize, i + 1);
        }
    }

    #[test]
    fn table2_run_is_consistent_with_reference() {
        let cases = collect_cases(&WorkloadSpec {
            pairs: 2,
            len: 64,
            ..WorkloadSpec::default()
        });
        for c in &cases {
            let (synth, summary) = c.run_table2();
            assert!(summary.matches_reference, "kernel {}", c.info.meta.id);
            assert!(summary.throughput_aps > 0.0);
            assert!(synth.fmax_mhz >= 100.0);
            assert!(synth.ii >= 1);
        }
    }

    #[test]
    fn profile_mirrors_info() {
        let cases = collect_cases(&WorkloadSpec {
            pairs: 1,
            len: 32,
            ..WorkloadSpec::default()
        });
        let p = cases[14].profile(); // #15
        assert_eq!(p.score_bits, 16);
        assert_eq!(p.param_table_bits, 401 * 16);
        assert_eq!(p.sym_bits, 5);
    }
}
