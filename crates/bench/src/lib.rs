//! The DP-HLS experiment harness: regenerates every table and figure of the
//! paper's evaluation (§6–§7) against the reproduction's models.
//!
//! * [`harness`] — erased per-kernel runners built from the kernel registry;
//! * [`experiments`] — one module per table/figure (Table 2, Figs 3–6,
//!   §7.5, the tiling study, the ablations, and the §7.6 productivity
//!   proxy).
//!
//! Run everything with `cargo run -p dphls-bench --bin all_experiments`, or
//! a single experiment with e.g. `cargo run -p dphls-bench --bin table2`.

pub mod check;
pub mod experiments;
pub mod harness;
pub mod naive;
pub mod perf;
pub mod report;

pub use harness::{collect_cases, default_workload, profile_of, KernelCase, RunSummary};
