//! The **naive baseline engine**: a frozen copy of the pre-optimization
//! systolic block loop, kept as the reference point for the throughput
//! benchmarks (`benches/throughput.rs`, `bin/bench_report.rs`).
//!
//! Differences from the optimized `dphls_systolic::run_systolic_with_scratch`
//! hot path — exactly the costs this PR removed:
//!
//! * allocates every buffer (`TbMem`, trackers, preserved row, the three
//!   wavefront snapshots, and one `next_row` per chunk) fresh per alignment;
//! * scans all `NPE` lanes on every wavefront and asks
//!   `banding.contains(i, j)` per cell, even when banding leaves most lanes
//!   dead;
//! * iterates every wavefront of every chunk, including fully-dead ones.
//!
//! Functionally it is still bit-identical to the reference engine; only the
//! constant factors differ. Do not "fix" this module — its slowness is the
//! point.

use dphls_core::reference::{offer_if_eligible, walk_traceback, BestTracker};
use dphls_core::{DpOutput, KernelConfig, KernelSpec, LayerVec};
use dphls_systolic::TbMem;

/// Runs one alignment with per-alignment allocation and full lane scans.
///
/// # Panics
///
/// Panics on invalid configurations or empty/oversized sequences (bench
/// workloads are known-valid).
pub fn run_systolic_naive<K: KernelSpec>(
    params: &K::Params,
    query: &[K::Sym],
    reference: &[K::Sym],
    config: &KernelConfig,
) -> DpOutput<K::Score> {
    config.validate().expect("bench config must be valid");
    assert!(!query.is_empty() && !reference.is_empty());
    assert!(query.len() <= config.max_query && reference.len() <= config.max_ref);

    let meta = K::meta();
    let banding = config.banding;
    let (q, r) = (query.len(), reference.len());
    let npe = config.npe;
    let chunks = config.chunks_for(q);
    let worst: LayerVec<K::Score> = LayerVec::splat(meta.n_layers, meta.objective.worst());

    let mut tbmem = TbMem::new(npe, chunks, r);
    let mut trackers: Vec<BestTracker<K::Score>> =
        (0..npe).map(|_| BestTracker::new(meta.objective)).collect();

    let mut prev_row: Vec<LayerVec<K::Score>> = (0..=r)
        .map(|j| {
            if banding.contains(0, j) {
                K::init_row(params, j)
            } else {
                worst
            }
        })
        .collect();

    let mut cells = 0u64;
    let mut wf_m1: Vec<LayerVec<K::Score>> = vec![worst; npe];
    let mut wf_m2: Vec<LayerVec<K::Score>> = vec![worst; npe];
    let mut cur: Vec<LayerVec<K::Score>> = vec![worst; npe];

    for c in 0..chunks {
        let base = c * npe;
        let rows = npe.min(q - base);
        let last_pe = rows - 1;
        let mut next_row: Vec<LayerVec<K::Score>> = vec![worst; r + 1];
        let last_i = base + last_pe + 1;
        next_row[0] = if banding.contains(last_i, 0) {
            K::init_col(params, last_i)
        } else {
            worst
        };
        for s in wf_m1.iter_mut() {
            *s = worst;
        }
        for s in wf_m2.iter_mut() {
            *s = worst;
        }

        let wavefronts = TbMem::wavefronts_per_chunk(npe, r);
        for w in 0..wavefronts {
            for k in 0..npe {
                let i = base + k + 1;
                let jj = w as isize - k as isize + 1;
                if k >= rows || jj < 1 || jj > r as isize {
                    cur[k] = worst;
                    continue;
                }
                let j = jj as usize;
                if !banding.contains(i, j) {
                    cur[k] = worst;
                    continue;
                }
                let left = if j == 1 {
                    if banding.contains(i, 0) {
                        K::init_col(params, i)
                    } else {
                        worst
                    }
                } else {
                    wf_m1[k]
                };
                let up = if k == 0 { prev_row[j] } else { wf_m1[k - 1] };
                let diag = if k == 0 {
                    prev_row[j - 1]
                } else if j == 1 {
                    if banding.contains(i - 1, 0) {
                        K::init_col(params, i - 1)
                    } else {
                        worst
                    }
                } else {
                    wf_m2[k - 1]
                };
                let (out, ptr) = K::pe(params, query[i - 1], reference[j - 1], &diag, &up, &left);
                cells += 1;
                offer_if_eligible(
                    &mut trackers[k],
                    meta.traceback.best,
                    out.primary(),
                    i,
                    j,
                    q,
                    r,
                );
                tbmem.write(k, c, w, ptr);
                if k == last_pe {
                    next_row[j] = out;
                }
                cur[k] = out;
            }
            std::mem::swap(&mut wf_m2, &mut wf_m1);
            std::mem::swap(&mut wf_m1, &mut cur);
        }
        prev_row = next_row;
    }

    let mut global = BestTracker::new(meta.objective);
    for t in &trackers {
        global.merge(t);
    }
    let (best_score, best_cell) = global.best();
    let alignment = meta
        .traceback
        .walk
        .map(|walk| walk_traceback::<K>(&|i, j| tbmem.read_cell(i, j), best_cell, walk));

    DpOutput {
        best_score,
        best_cell,
        alignment,
        cells_computed: cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::Banding;
    use dphls_kernels::{GlobalLinear, LinearParams};
    use dphls_seq::gen::ReadSimulator;

    #[test]
    fn naive_baseline_is_functionally_exact() {
        let params = LinearParams::<i16>::dna();
        let mut sim = ReadSimulator::new(5);
        let (r, mut q) = sim.read_pair(64, 0.2);
        q.truncate(64);
        let (q, r) = (q.into_vec(), r.into_vec());
        for banding in [Banding::None, Banding::Fixed { half_width: 8 }] {
            let cfg = KernelConfig {
                banding,
                ..KernelConfig::new(8, 1, 1).with_max_lengths(96, 96)
            };
            let naive = run_systolic_naive::<GlobalLinear>(&params, &q, &r, &cfg);
            let fast = dphls_systolic::run_systolic::<GlobalLinear>(&params, &q, &r, &cfg)
                .unwrap()
                .output;
            assert_eq!(naive, fast);
        }
    }
}
