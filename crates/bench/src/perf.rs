//! Host-throughput measurement: wall-clock alignments/second of the naive
//! baseline engine ([`crate::naive`]), the zero-allocation **scalar**
//! scratch engine (the PR 1 hot path), the **multi-lane** engine
//! ([`dphls_systolic::run_systolic_with_scratch`], PR 2), and the
//! work-stealing batch engine, across linear / affine / banded workloads at
//! several `(NPE, NK)` points.
//!
//! `bin/bench_report.rs` renders the result as `BENCH_throughput.json` so
//! the performance trajectory is tracked PR over PR; `bin/bench_check.rs`
//! validates the schema and diffs the speedup ratios against the committed
//! baseline in CI; `benches/throughput.rs` and `benches/lanes.rs` expose
//! the same measurements under criterion.

use crate::naive::run_systolic_naive;
use dphls_core::{Banding, I8Lanes, KernelConfig, LaneKernel, LanePrecision};
use dphls_host::{
    run_batched, run_batched_adaptive, run_batched_resilient, run_batched_with, run_streamed,
    BatchConfig, FleetConfig, ResilienceConfig, StreamConfig,
};
use dphls_kernels::{
    default_banding, AffineParams, GlobalAffine, GlobalLinear, LinearParams, NoParams, Sdtw,
};
use dphls_mapper::{
    map_streamed, reverse_complement, IndexConfig, KmerIndex, MapOutcome, MapStreamConfig,
    MapperConfig, Strand,
};
use dphls_seq::gen::{ErrorModel, GenomeGenerator, ReadSimulator, SquiggleSimulator};
use dphls_seq::Base;
use dphls_serve::{run_load, LoadConfig, Server, ServerConfig};
use dphls_systolic::{
    run_systolic_ok, run_systolic_scalar_with_scratch, run_systolic_with_scratch, CycleModelParams,
    Device, KernelCycleInfo, SystolicScratch,
};
use dphls_util::Xoshiro256;
use serde::Serialize;
use std::time::Instant;

/// Which kernel/banding combination a measurement point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Global linear (NW), full matrix.
    Linear,
    /// Global affine, full matrix (3 scoring layers).
    Affine,
    /// Global linear under fixed banding (the paper's §2.2.4 pruning).
    Banded {
        /// Band half-width in cells.
        half_width: usize,
    },
}

impl WorkloadKind {
    fn name(&self) -> String {
        match self {
            WorkloadKind::Linear => "linear".into(),
            WorkloadKind::Affine => "affine".into(),
            WorkloadKind::Banded { half_width } => format!("banded_w{half_width}"),
        }
    }
}

/// One measurement point of the throughput matrix.
#[derive(Debug, Clone, Copy)]
pub struct PointSpec {
    /// Kernel/banding combination.
    pub kind: WorkloadKind,
    /// Sequence length of each pair.
    pub len: usize,
    /// Number of alignment pairs.
    pub pairs: usize,
    /// PEs per systolic array.
    pub npe: usize,
    /// Channels (= host worker threads for the batch engine).
    pub nk: usize,
}

/// Measured alignments/second at one point, serialized into the report.
#[derive(Debug, Serialize)]
pub struct ThroughputPoint {
    /// Workload name (`linear`, `affine`, `banded_w16`, …).
    pub workload: String,
    /// Sequence length per pair.
    pub len: usize,
    /// Pairs measured.
    pub pairs: usize,
    /// PEs per array.
    pub npe: usize,
    /// Channels / host threads.
    pub nk: usize,
    /// Naive per-alignment-allocation engine, single thread (aln/s).
    pub naive_aps: f64,
    /// Scratch-reuse band-aware engine with the **scalar** per-cell loop
    /// (the PR 1 hot path), single thread (aln/s).
    pub scratch_aps: f64,
    /// Scratch-reuse engine with the **multi-lane** wavefront loop (PR 2),
    /// single thread (aln/s).
    pub laned_aps: f64,
    /// Work-stealing batch engine (multi-lane) across `nk` threads (aln/s).
    pub batched_aps: f64,
    /// `scratch_aps / naive_aps` — the PR 1 single-thread hot-path win.
    pub scratch_speedup: f64,
    /// `laned_aps / naive_aps` — the cumulative single-thread win.
    pub laned_speedup: f64,
    /// `laned_aps / scratch_aps` — the PR 2 lane-engine win alone.
    pub lane_vs_scratch: f64,
    /// `batched_aps / naive_aps` — the end-to-end engine win.
    pub batched_speedup: f64,
}

/// The acceptance gates, both measured on the 10k-pair banded single-channel
/// workload: ISSUE 1's ≥ 2× scratch-vs-naive win, plus ISSUE 2's ≥ 1.3×
/// lane-engine win over the PR 1 scratch path.
#[derive(Debug, Serialize)]
pub struct Acceptance {
    /// The workload the gates ran on.
    pub workload: String,
    /// Pairs in the gate workload.
    pub pairs: usize,
    /// Baseline aln/s.
    pub naive_aps: f64,
    /// PR 1 scalar scratch engine, single thread (aln/s).
    pub scratch_aps: f64,
    /// PR 2 multi-lane engine, single thread (aln/s).
    pub laned_aps: f64,
    /// Measured scratch-vs-naive speedup (the ISSUE 1 gate value).
    pub speedup: f64,
    /// Measured laned-vs-scratch speedup (the ISSUE 2 gate value).
    pub lane_vs_scratch: f64,
    /// Whether the ISSUE 1 ≥ 2× gate held.
    pub pass: bool,
    /// Whether the ISSUE 2 ≥ 1.3× gate held.
    pub lane_pass: bool,
}

/// The ISSUE 3 streaming experiment: `run_streamed` (bounded-memory
/// pipeline) against `run_batched` (materialized workload) on the 10k-pair
/// banded workload, timed interleaved like the engine matrix. The gate is
/// `ratio >= 0.9`: the streaming stages (producer channel, admission
/// window, ordered writer) may not cost more than 10 % of batch throughput.
#[derive(Debug, Serialize)]
pub struct StreamingComparison {
    /// Workload name (the banded acceptance shape).
    pub workload: String,
    /// Pairs measured.
    pub pairs: usize,
    /// Channels / worker threads used by both engines.
    pub nk: usize,
    /// Producer channel depth of the streamed run.
    pub buffer: usize,
    /// Admission/reorder window of the streamed run.
    pub window: usize,
    /// Materialized work-stealing engine (aln/s wall clock).
    pub batched_aps: f64,
    /// Streaming pipeline fed pair-by-pair (aln/s wall clock).
    pub streamed_aps: f64,
    /// `streamed_aps / batched_aps`.
    pub ratio: f64,
    /// Whether the `ratio >= 0.9` gate held.
    pub pass: bool,
    /// Peak pairs held by the ordered writer during the streamed run.
    pub reorder_high_water: usize,
    /// Peak pairs in flight between admission and emission.
    pub resident_high_water: usize,
}

/// The ISSUE 5 NB-scaling experiment on the banded acceptance workload:
/// one channel whose `NB = 4` blocks are driven by 1 vs `NB` host block
/// slots (`BatchConfig::nb_slots`), plus the modeled NB-vs-1 device
/// throughput ratio. The machine-independent gate is the **modeled** ratio
/// (`modeled_nb_ratio >= NB_MODEL_GATE`): per Fig 3C, NB scaling is
/// near-perfect until the channel arbiter binds, so a 4-block channel must
/// model at least 3.5× a 1-block channel here. The wall-clock `slot_ratio`
/// carries the same 1-core `host_cores` caveat as the `nk > 1` batched
/// points and is only regression-compared between multi-core reports.
#[derive(Debug, Serialize)]
pub struct NbScaling {
    /// Workload name (the banded acceptance shape).
    pub workload: String,
    /// Pairs measured.
    pub pairs: usize,
    /// Sequence length per pair.
    pub len: usize,
    /// PEs per systolic array.
    pub npe: usize,
    /// Blocks per channel of the scaled device (the swept dimension).
    pub nb: usize,
    /// Channels (1: the point isolates intra-channel scaling).
    pub nk: usize,
    /// Wall-clock aln/s with a single host block slot driving the channel.
    pub slots1_aps: f64,
    /// Wall-clock aln/s with `nb` host block slots driving the channel.
    pub slots_nb_aps: f64,
    /// `slots_nb_aps / slots1_aps` — host slot scaling (thread-bound, so
    /// subject to the 1-core caveat).
    pub slot_ratio: f64,
    /// Modeled device throughput of the same workload on an `NB = 1`
    /// configuration (stats-derived, machine-independent).
    pub modeled_nb1_aps: f64,
    /// Modeled device throughput on the `NB = nb` configuration.
    pub modeled_nb_aps: f64,
    /// `modeled_nb_aps / modeled_nb1_aps` — the NB-scaling gate value.
    pub modeled_nb_ratio: f64,
    /// Whether `modeled_nb_ratio >= NB_MODEL_GATE` held.
    pub pass: bool,
}

/// The PR 10 fleet-sharding experiment on the banded acceptance workload:
/// the batch engine dispatching across `devices` modeled devices
/// ([`BatchConfig::with_fleet`], PCIe-class transfer model) against the
/// single-device engine. The machine-independent gate is the **modeled**
/// ratio (`d_ratio >= FLEET_MODEL_GATE`): each device runs its share of
/// the queue concurrently, so a 4-device fleet must model at least 3.5×
/// one device after paying the host↔device transfer cost. The wall-clock
/// `d_wall_ratio` is host-thread-bound and carries the same 1-core
/// `host_cores` caveat as the `nk > 1` batched points — `bench_check`
/// only regression-compares it between multi-core reports.
#[derive(Debug, Serialize)]
pub struct Fleet {
    /// Workload name (the banded acceptance shape).
    pub workload: String,
    /// Pairs measured.
    pub pairs: usize,
    /// Sequence length per pair.
    pub len: usize,
    /// PEs per systolic array.
    pub npe: usize,
    /// Blocks per channel of each device.
    pub nb: usize,
    /// Channels per device.
    pub nk: usize,
    /// Devices in the sharded fleet (the swept dimension).
    pub devices: usize,
    /// Wall-clock aln/s on one device ([`FleetConfig::single`]).
    pub d1_aps: f64,
    /// Wall-clock aln/s sharded across `devices` devices.
    pub d_aps: f64,
    /// `d_aps / d1_aps` — host-thread-bound, so subject to the 1-core
    /// caveat.
    pub d_wall_ratio: f64,
    /// Modeled throughput on one device with a free link (stats-derived,
    /// machine-independent).
    pub modeled_d1_aps: f64,
    /// Modeled throughput across `devices` devices over a PCIe-class
    /// link ([`dphls_systolic::TransferModel::pcie`]).
    pub modeled_d_aps: f64,
    /// `modeled_d_aps / modeled_d1_aps` — the fleet-scaling gate value.
    pub d_ratio: f64,
    /// Whether `d_ratio >= FLEET_MODEL_GATE` held.
    pub pass: bool,
}

/// The PR 6 resilience-overhead experiment: the batch engine with the full
/// instrumented resilience path ([`ResilienceConfig::standard`] — deadline
/// clock, `catch_unwind` frame, retry bookkeeping) against the disabled
/// fast path on the fault-free banded acceptance workload, timed in
/// interleaved rounds. The gate is `ratio >= 0.95`: turning resilience on
/// may not cost more than 5 % of fault-free throughput.
#[derive(Debug, Serialize)]
pub struct ResilienceOverhead {
    /// Workload name (the banded acceptance shape).
    pub workload: String,
    /// Pairs measured.
    pub pairs: usize,
    /// Channels / worker threads used by both runs.
    pub nk: usize,
    /// Fast path: [`ResilienceConfig::disabled`] (aln/s wall clock).
    pub disabled_aps: f64,
    /// Instrumented path: [`ResilienceConfig::standard`] (aln/s wall
    /// clock).
    pub resilient_aps: f64,
    /// `resilient_aps / disabled_aps`.
    pub ratio: f64,
    /// Whether the `ratio >= 0.95` gate held.
    pub pass: bool,
}

/// The PR 7 serving experiment: the `dphls-serve` front end under
/// open-loop load from `dphls-load`, against a direct `run_streamed` pass
/// over the same distribution on an equivalent device. The served path
/// adds the wire protocol, per-connection reader/writer tasks, and
/// per-connection order restoration on top of the engine; the
/// machine-independent gate is `ratio >= SERVING_GATE` — serving may not
/// forfeit more than the gated fraction of raw streaming throughput. The
/// latency percentiles are wall-clock figures and carry the 1-core
/// `host_cores` caveat: `bench_check` only regression-compares them
/// between multi-core reports.
#[derive(Debug, Serialize)]
pub struct Serving {
    /// Kernel served (a [`dphls_kernels::DISPATCHABLE_KERNELS`] name).
    pub workload: String,
    /// Total requests per measurement round (across all connections).
    pub pairs: usize,
    /// Sequence length of the generated pairs.
    pub len: usize,
    /// Concurrent load-generator connections.
    pub connections: usize,
    /// Engine channels of the server's kernel session.
    pub nk: usize,
    /// Producer channel depth of the serving session.
    pub buffer: usize,
    /// Admission/reorder window of the serving session.
    pub window: usize,
    /// Direct `run_streamed` throughput on the same distribution (aln/s
    /// wall clock).
    pub streamed_aps: f64,
    /// Sustained answers/second through the server under unpaced
    /// open-loop load.
    pub served_rps: f64,
    /// `served_rps / streamed_aps`.
    pub ratio: f64,
    /// Median request latency under that load, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Whether the `ratio >= SERVING_GATE` gate held.
    pub pass: bool,
}

/// The ISSUE 8 adaptive-precision experiment: the batch engine running the
/// saturating-`i8` fast path ([`LanePrecision::Adaptive`], 32 lanes)
/// against the exact `i16` path on a short-read banded workload whose
/// pairs — bar a planted escalating fraction — stay inside the `i8` guard
/// band, so the narrow engine's extra lanes turn into throughput rather
/// than escalation re-runs. Both runs share the machine and the engine
/// machinery (internally paired), so the ratio is comparable across boxes;
/// the gate is `ratio >= ADAPTIVE_GATE` (≥ 1.3× — the fast path must beat
/// exact by at least the lane-engine margin, not merely break even). The
/// planted escalators keep `escalation_rate` non-degenerate: the point
/// measures the adaptive engine *with* its escalation tax, not a
/// best-case all-clean workload.
#[derive(Debug, Serialize)]
pub struct AdaptivePrecision {
    /// Workload name (the banded short-read shape).
    pub workload: String,
    /// Pairs measured (including the planted escalators).
    pub pairs: usize,
    /// Sequence length of the clean short reads.
    pub len: usize,
    /// PEs per systolic array.
    pub npe: usize,
    /// Channels / host threads used by both runs.
    pub nk: usize,
    /// `i8` lane width of the adaptive run (16 or 32).
    pub lanes: usize,
    /// Exact `i16` path ([`LanePrecision::Exact`], aln/s wall clock).
    pub exact_aps: f64,
    /// Saturating-`i8` fast path with exact escalation
    /// ([`LanePrecision::Adaptive`], aln/s wall clock).
    pub adaptive_aps: f64,
    /// `adaptive_aps / exact_aps`.
    pub ratio: f64,
    /// Fraction of completed pairs that tripped the `i8` guard and re-ran
    /// exact (deterministic for a fixed workload; strictly inside (0, 1)
    /// by construction — the planted escalators trip, the short clean
    /// reads do not).
    pub escalation_rate: f64,
    /// Whether the `ratio >= ADAPTIVE_GATE` gate held.
    pub pass: bool,
}

/// The ISSUE 9 mapping point: the full seed-chain-extend pipeline
/// (`dphls-mapper`) streaming simulated long reads (1–5 kb, ~5% PacBio-CLR
/// error, both strands) against a 1 MiB reference. Two machine-independent
/// counting gates ride on it: recall at the true locus must be at least
/// [`crate::check::MAPPING_RECALL_GATE`], and the X-drop extension stage
/// must touch at most [`crate::check::MAPPING_CELLS_GATE`] of the DP cells
/// a fixed 128-wide band over the same (read × window) problems would pay.
/// Both are deterministic for the fixed workload seed, so `bench_check`
/// enforces them at every scale (the NB-model-gate discipline), unlike the
/// wall-clock `mapped_aps` figure, which is recorded but never gated or
/// compared. A signal-space sub-metric rides along: sDTW classification of
/// raw nanopore squiggles against a virus reference squiggle
/// (pre-basecalling read-until, the `virus_detection_sdtw` example's
/// workload) must keep its off-target/on-target score separation above 1.
#[derive(Debug, Serialize)]
pub struct Mapping {
    /// Workload name (the long-read mapping shape).
    pub workload: String,
    /// Reads streamed through the pipeline.
    pub reads: usize,
    /// Reference length the index was built over.
    pub genome_len: usize,
    /// Shortest simulated read length.
    pub min_len: usize,
    /// Longest simulated read length.
    pub max_len: usize,
    /// Per-base error rate of the simulated reads.
    pub error_rate: f64,
    /// Reads the pipeline mapped (any locus).
    pub mapped: usize,
    /// Reads mapped to the true locus (within ±64) on the true strand.
    pub correct: usize,
    /// `correct / reads` — machine-independent, gated at every scale.
    pub recall: f64,
    /// Interior DP cells the X-drop extension stage actually computed.
    pub xdrop_cells: u64,
    /// Cells a fixed 128-wide band over the same (read × window) problems
    /// would compute (analytic, from [`Banding::cells_in_row`]).
    pub fullband_cells: u64,
    /// `xdrop_cells / fullband_cells` — machine-independent, gated at
    /// every scale (lower is better).
    pub cells_ratio: f64,
    /// Streamed mapping throughput (reads/s wall clock; recorded only —
    /// never gated or compared, unlike the counting ratios above).
    pub mapped_aps: f64,
    /// Reorder-buffer high water of the streamed run.
    pub reorder_high_water: usize,
    /// Worst (highest) per-sample sDTW distance of an on-target squiggle.
    pub sdtw_pos_max: f64,
    /// Best (lowest) per-sample sDTW distance of an off-target squiggle.
    pub sdtw_neg_min: f64,
    /// `sdtw_neg_min / sdtw_pos_max` — above 1 means a threshold exists
    /// that classifies every squiggle correctly.
    pub sdtw_separation: f64,
    /// Whether `recall >= MAPPING_RECALL_GATE` held.
    pub recall_pass: bool,
    /// Whether `cells_ratio <= MAPPING_CELLS_GATE` held.
    pub cells_pass: bool,
    /// Whether `sdtw_separation > MAPPING_SDTW_GATE` held.
    pub sdtw_pass: bool,
}

/// The full serialized throughput report.
#[derive(Debug, Serialize)]
pub struct ThroughputReport {
    /// Report schema version (9 since the fleet point landed).
    pub version: u32,
    /// Logical CPUs visible to the measuring process. Absolute aln/s and
    /// the `nk > 1` batched speedups are only comparable between reports
    /// recorded on machines with the same core count — `bench_check` uses
    /// this field to skip thread-scaling comparisons on 1-core containers
    /// (the ROADMAP caveat, machine-checked).
    pub host_cores: usize,
    /// All measured points.
    pub points: Vec<ThroughputPoint>,
    /// The ISSUE 1 + ISSUE 2 acceptance measurements.
    pub acceptance: Acceptance,
    /// The ISSUE 3 streamed-vs-batched comparison and its ≥ 0.9× gate.
    pub streaming: StreamingComparison,
    /// The ISSUE 5 NB-block scaling point and its modeled-ratio gate.
    pub nb_scaling: NbScaling,
    /// The PR 10 fleet-sharding point and its modeled-ratio gate.
    pub fleet: Fleet,
    /// The PR 6 resilience-overhead point and its ≥ 0.95× gate.
    pub resilience_overhead: ResilienceOverhead,
    /// The PR 7 serving point (front-end throughput + latency) and its
    /// ratio gate.
    pub serving: Serving,
    /// The ISSUE 8 adaptive-precision point (`i8` fast path vs exact
    /// `i16`) and its ≥ 1.3× gate.
    pub adaptive_precision: AdaptivePrecision,
    /// The ISSUE 9 long-read mapping point (recall + X-drop cell budget +
    /// sDTW separation, all machine-independent).
    pub mapping: Mapping,
}

/// Logical CPUs available to this process (1 if undetectable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Deterministic read-pair workload: reference windows + noisy reads of
/// equal length (the paper's §6.1 short-read shape).
pub fn make_workload(pairs: usize, len: usize, seed: u64) -> Vec<(Vec<Base>, Vec<Base>)> {
    let mut sim = ReadSimulator::new(seed);
    sim.read_pairs(pairs, len, 0.2)
        .into_iter()
        .map(|(r, mut q)| {
            q.truncate(len);
            let mut r = r.into_vec();
            r.truncate(len);
            (q.into_vec(), r)
        })
        .collect()
}

fn config_for(spec: &PointSpec) -> KernelConfig {
    let base =
        KernelConfig::new(spec.npe.min(spec.len), 1, spec.nk).with_max_lengths(spec.len, spec.len);
    match spec.kind {
        WorkloadKind::Banded { half_width } => base.with_banding(half_width),
        _ => base,
    }
}

// The cycle-model inputs are fixed across the matrix (2-bit DNA symbols,
// traceback on, II=1); only the KernelConfig varies per point.
fn device_for(config: KernelConfig) -> Device {
    Device::new(
        config,
        CycleModelParams::dphls(),
        KernelCycleInfo {
            sym_bits: 2,
            has_walk: true,
            ii: 1,
        },
        250.0,
    )
}

fn aps(pairs: usize, start: Instant) -> f64 {
    pairs as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn measure_kernel<K>(
    params: &K::Params,
    workload: &[dphls_core::SeqPair<K>],
    spec: &PointSpec,
) -> (f64, f64, f64, f64)
where
    K: LaneKernel,
    K::Score: Send,
    K::Params: Sync,
{
    let config = config_for(spec);
    let device = device_for(config);
    // The report's payload is the speedup *ratios*, and a shared (or
    // 1-core CI) box drifts in speed over the seconds a measurement takes.
    // So the four engines are timed **interleaved, in rounds** — within a
    // round every engine sees (nearly) the same machine conditions — and
    // the reported values are one **representative round** taken wholesale:
    // the round with the best sum of per-engine rates, each normalized by
    // that engine's best across rounds. Taking each engine's max
    // independently would re-decouple the ratios (a lucky naive round
    // against an unlucky scratch round reads as a regression); one coherent
    // round keeps numerator and denominator of every ratio paired. Round
    // counts scale inversely with workload size so the sub-second
    // scaled-down CI measurements get several chances to dodge scheduler
    // interference; the early rounds also absorb cold caches.
    let rounds = (3_000 / spec.pairs.max(1)).clamp(2, 6);
    let n = workload.len();
    let mut scratch = SystolicScratch::new();
    let mut rates: Vec<[f64; 4]> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for (q, r) in workload {
            std::hint::black_box(run_systolic_naive::<K>(params, q, r, &config));
        }
        let naive = aps(n, start);

        let start = Instant::now();
        for (q, r) in workload {
            std::hint::black_box(
                run_systolic_scalar_with_scratch::<K>(params, q, r, &config, &mut scratch)
                    .expect("bench workload must be valid"),
            );
        }
        let scratch_aps = aps(n, start);

        let start = Instant::now();
        for (q, r) in workload {
            std::hint::black_box(
                run_systolic_with_scratch::<K>(params, q, r, &config, &mut scratch)
                    .expect("bench workload must be valid"),
            );
        }
        let laned = aps(n, start);

        let start = Instant::now();
        std::hint::black_box(
            run_batched::<K>(&device, params, workload).expect("bench workload must be valid"),
        );
        let batched = aps(n, start);

        rates.push([naive, scratch_aps, laned, batched]);
    }

    let mut best_per_engine = [0.0f64; 4];
    for round in &rates {
        for (best, &rate) in best_per_engine.iter_mut().zip(round) {
            *best = best.max(rate);
        }
    }
    let score = |round: &[f64; 4]| -> f64 {
        round
            .iter()
            .zip(&best_per_engine)
            .map(|(&rate, &best)| rate / best.max(1e-9))
            .sum()
    };
    let pick = rates
        .iter()
        .max_by(|a, b| score(a).total_cmp(&score(b)))
        .expect("at least one measurement round");
    (pick[0], pick[1], pick[2], pick[3])
}

/// Measures one point of the matrix.
pub fn measure_point(spec: &PointSpec) -> ThroughputPoint {
    let workload = make_workload(spec.pairs, spec.len, 0xD9);
    let (naive_aps, scratch_aps, laned_aps, batched_aps) = match spec.kind {
        WorkloadKind::Affine => {
            let params = AffineParams::<i16>::dna();
            measure_kernel::<GlobalAffine<i16>>(&params, &workload, spec)
        }
        _ => {
            let params = LinearParams::<i16>::dna();
            measure_kernel::<GlobalLinear>(&params, &workload, spec)
        }
    };
    ThroughputPoint {
        workload: spec.kind.name(),
        len: spec.len,
        pairs: spec.pairs,
        npe: spec.npe,
        nk: spec.nk,
        naive_aps,
        scratch_aps,
        laned_aps,
        batched_aps,
        scratch_speedup: scratch_aps / naive_aps.max(1e-9),
        laned_speedup: laned_aps / naive_aps.max(1e-9),
        lane_vs_scratch: laned_aps / scratch_aps.max(1e-9),
        batched_speedup: batched_aps / naive_aps.max(1e-9),
    }
}

/// The standard measurement matrix. `scale` divides pair counts (CI smoke
/// runs use `scale > 1`; the recorded report uses `scale = 1`).
pub fn standard_points(scale: usize) -> Vec<PointSpec> {
    let s = scale.max(1);
    let banded = WorkloadKind::Banded { half_width: 16 };
    vec![
        PointSpec {
            kind: WorkloadKind::Linear,
            len: 128,
            pairs: 2_000 / s,
            npe: 8,
            nk: 1,
        },
        PointSpec {
            kind: WorkloadKind::Linear,
            len: 128,
            pairs: 2_000 / s,
            npe: 32,
            nk: 4,
        },
        PointSpec {
            kind: WorkloadKind::Affine,
            len: 128,
            pairs: 1_000 / s,
            npe: 32,
            nk: 4,
        },
        PointSpec {
            kind: banded,
            len: 256,
            pairs: 10_000 / s,
            npe: 32,
            nk: 1,
        },
        PointSpec {
            kind: banded,
            len: 256,
            pairs: 10_000 / s,
            npe: 32,
            nk: 4,
        },
    ]
}

/// Measures the streaming pipeline against the batch engine on the 10k-pair
/// banded workload (scaled by `scale`), timed in interleaved rounds with a
/// representative round taken wholesale — the same ratio-pairing discipline
/// (and rationale) as the engine-matrix measurement in [`measure_point`].
pub fn measure_streaming(scale: usize) -> StreamingComparison {
    let s = scale.max(1);
    let pairs = 10_000 / s;
    let len = 256usize;
    let nk = 4usize;
    let half_width = 16usize;
    let stream_cfg = StreamConfig::default();
    let workload = make_workload(pairs, len, 0xD9);
    let params = LinearParams::<i16>::dna();
    let config = KernelConfig::new(32, 1, nk)
        .with_max_lengths(len, len)
        .with_banding(half_width);
    let device = device_for(config);
    let n = workload.len();

    // The streaming gate is an *absolute* threshold (ratio >= 0.9), so it
    // gets more rounds than the relative-only matrix points: one noisy
    // round must never be the round the gate reads.
    let rounds = (6_000 / pairs.max(1)).clamp(3, 8);
    struct Round {
        batched: f64,
        streamed: f64,
        reorder_high_water: usize,
        resident_high_water: usize,
    }
    let mut samples: Vec<Round> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        std::hint::black_box(
            run_batched::<GlobalLinear>(&device, &params, &workload)
                .expect("bench workload must be valid"),
        );
        let batched = aps(n, start);

        let start = Instant::now();
        let report = run_streamed::<GlobalLinear, _, std::convert::Infallible, _>(
            &device,
            &params,
            workload.iter().cloned().map(Ok),
            stream_cfg,
            |_, out| {
                std::hint::black_box(&out);
            },
        )
        .expect("bench workload must be valid");
        let streamed = aps(n, start);

        samples.push(Round {
            batched,
            streamed,
            reorder_high_water: report.reorder_high_water,
            resident_high_water: report.resident_high_water,
        });
    }

    // The reported value is the round with the MEDIAN streamed/batched
    // ratio (rounds are internally paired, so each round's ratio is a
    // coherent sample), taken WHOLESALE — aps figures and high-water marks
    // from that same run. The matrix points pick a best-coherent round
    // because their payload is a trend; this point's payload is a hard
    // overhead *gate*, where one freak round — fast or slow — must never
    // be the sample the gate reads. The median is robust to both tails.
    let round_ratio = |r: &Round| r.streamed / r.batched.max(1e-9);
    samples.sort_by(|a, b| round_ratio(a).total_cmp(&round_ratio(b)));
    let pick = &samples[samples.len() / 2];
    let ratio = round_ratio(pick);
    StreamingComparison {
        workload: format!("banded_w{half_width}"),
        pairs,
        nk,
        buffer: stream_cfg.buffer,
        window: stream_cfg.window,
        batched_aps: pick.batched,
        streamed_aps: pick.streamed,
        ratio,
        pass: ratio >= crate::check::STREAMING_GATE,
        reorder_high_water: pick.reorder_high_water,
        resident_high_water: pick.resident_high_water,
    }
}

/// Measures NB-block scaling on the banded acceptance workload (scaled by
/// `scale`): wall-clock 1-slot vs `NB`-slot host execution on an `NB = 4`
/// single-channel device, timed in interleaved rounds with the median-ratio
/// round taken wholesale (the gate-point discipline of
/// [`measure_streaming`]), plus the machine-independent modeled NB-vs-1
/// throughput ratio, which only needs one deterministic stats pass per
/// configuration.
pub fn measure_nb_scaling(scale: usize) -> NbScaling {
    let s = scale.max(1);
    let pairs = 10_000 / s;
    let len = 256usize;
    let npe = 32usize;
    let nb = 4usize;
    let nk = 1usize;
    let half_width = 16usize;
    let workload = make_workload(pairs, len, 0xD9);
    let params = LinearParams::<i16>::dna();
    let base = KernelConfig::new(npe, nb, nk)
        .with_max_lengths(len, len)
        .with_banding(half_width);
    let device_nb = device_for(base);
    let device_nb1 = device_for(
        KernelConfig::new(npe, 1, nk)
            .with_max_lengths(len, len)
            .with_banding(half_width),
    );
    let n = workload.len();

    // Modeled figures are derived from BlockStats, so they are exact and
    // machine-independent. The NB=1 configuration needs its own functional
    // pass; the NB=4 figure is read off the first timed round below (it is
    // slot-count-independent — the invariant `tests/nb_slots.rs` holds).
    let modeled_nb1_aps = run_batched_with::<GlobalLinear>(
        &device_nb1,
        &params,
        &workload,
        BatchConfig::single_slot(),
    )
    .expect("bench workload must be valid")
    .throughput_aps;
    let mut modeled_nb_aps = 0.0f64;

    // Wall-clock slot scaling: interleaved rounds, median ratio wholesale
    // (one freak round must never be the sample a report reader compares).
    let rounds = (6_000 / pairs.max(1)).clamp(3, 8);
    let mut samples: Vec<(f64, f64)> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        let report = std::hint::black_box(
            run_batched_with::<GlobalLinear>(
                &device_nb,
                &params,
                &workload,
                BatchConfig::single_slot(),
            )
            .expect("bench workload must be valid"),
        );
        let slots1 = aps(n, start);
        modeled_nb_aps = report.throughput_aps;

        let start = Instant::now();
        std::hint::black_box(
            run_batched_with::<GlobalLinear>(
                &device_nb,
                &params,
                &workload,
                BatchConfig::slots(nb),
            )
            .expect("bench workload must be valid"),
        );
        let slots_nb = aps(n, start);
        samples.push((slots1, slots_nb));
    }
    samples.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    let (slots1_aps, slots_nb_aps) = samples[samples.len() / 2];

    let modeled_nb_ratio = modeled_nb_aps / modeled_nb1_aps.max(1e-9);
    NbScaling {
        workload: format!("banded_w{half_width}"),
        pairs,
        len,
        npe,
        nb,
        nk,
        slots1_aps,
        slots_nb_aps,
        slot_ratio: slots_nb_aps / slots1_aps.max(1e-9),
        modeled_nb1_aps,
        modeled_nb_aps,
        modeled_nb_ratio,
        pass: modeled_nb_ratio >= crate::check::NB_MODEL_GATE,
    }
}

/// Measures fleet sharding on the banded acceptance workload (scaled by
/// `scale`): wall-clock single-device vs `devices`-sharded execution,
/// timed in interleaved rounds with the median-ratio round taken
/// wholesale (the gate-point discipline of [`measure_streaming`]), plus
/// the machine-independent modeled fleet-vs-1 throughput ratio over a
/// PCIe-class link, which only needs one deterministic stats pass per
/// configuration.
pub fn measure_fleet(scale: usize) -> Fleet {
    let s = scale.max(1);
    let pairs = 10_000 / s;
    let len = 256usize;
    let npe = 32usize;
    let nb = 4usize;
    let nk = 1usize;
    let devices = 4usize;
    let half_width = 16usize;
    let workload = make_workload(pairs, len, 0xD9);
    let params = LinearParams::<i16>::dna();
    let config = KernelConfig::new(npe, nb, nk)
        .with_max_lengths(len, len)
        .with_banding(half_width);
    let device = device_for(config);
    let n = workload.len();
    let single = BatchConfig::single_slot();
    let sharded = BatchConfig::single_slot().with_fleet(FleetConfig::new(devices));

    // Modeled figures are derived from BlockStats, so they are exact and
    // machine-independent; they are read off the first timed round below
    // (modeled throughput is wall-clock-independent — the invariant
    // `tests/fleet.rs` holds).
    let mut modeled_d1_aps = 0.0f64;
    let mut modeled_d_aps = 0.0f64;

    // Wall-clock sharding: interleaved rounds, median ratio wholesale
    // (one freak round must never be the sample a report reader compares).
    let rounds = (6_000 / pairs.max(1)).clamp(3, 8);
    let mut samples: Vec<(f64, f64)> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        let report = std::hint::black_box(
            run_batched_with::<GlobalLinear>(&device, &params, &workload, single)
                .expect("bench workload must be valid"),
        );
        let d1 = aps(n, start);
        modeled_d1_aps = report.throughput_aps;

        let start = Instant::now();
        let report = std::hint::black_box(
            run_batched_with::<GlobalLinear>(&device, &params, &workload, sharded)
                .expect("bench workload must be valid"),
        );
        let d = aps(n, start);
        modeled_d_aps = report.throughput_aps;
        samples.push((d1, d));
    }
    samples.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    let (d1_aps, d_aps) = samples[samples.len() / 2];

    let d_ratio = modeled_d_aps / modeled_d1_aps.max(1e-9);
    Fleet {
        workload: format!("banded_w{half_width}"),
        pairs,
        len,
        npe,
        nb,
        nk,
        devices,
        d1_aps,
        d_aps,
        d_wall_ratio: d_aps / d1_aps.max(1e-9),
        modeled_d1_aps,
        modeled_d_aps,
        d_ratio,
        pass: d_ratio >= crate::check::FLEET_MODEL_GATE,
    }
}

/// Measures the overhead of the instrumented resilience path on the
/// fault-free banded acceptance workload (scaled by `scale`):
/// `run_batched_resilient` under [`ResilienceConfig::standard`] (deadline
/// `Instant` reads, `catch_unwind` frame, retry bookkeeping — but zero
/// faults) against the same engine under [`ResilienceConfig::disabled`]
/// (the legacy fast path). Interleaved rounds, median ratio taken
/// wholesale — the gate-point discipline of [`measure_streaming`].
pub fn measure_resilience_overhead(scale: usize) -> ResilienceOverhead {
    let s = scale.max(1);
    let pairs = 10_000 / s;
    let len = 256usize;
    let nk = 4usize;
    let half_width = 16usize;
    let workload = make_workload(pairs, len, 0xD9);
    let params = LinearParams::<i16>::dna();
    let config = KernelConfig::new(32, 1, nk)
        .with_max_lengths(len, len)
        .with_banding(half_width);
    let device = device_for(config);
    let n = workload.len();
    let disabled = ResilienceConfig::disabled();
    let standard = ResilienceConfig::standard();

    // Like the streaming point, this gate is an absolute threshold, so one
    // freak round must never be the sample it reads: interleaved rounds,
    // median ratio wholesale.
    let rounds = (6_000 / pairs.max(1)).clamp(3, 8);
    let mut samples: Vec<(f64, f64)> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        std::hint::black_box(
            run_batched_resilient::<GlobalLinear>(
                &device,
                &params,
                &workload,
                BatchConfig::default(),
                &disabled,
                None,
            )
            .expect("bench workload must be valid"),
        );
        let disabled_aps = aps(n, start);

        let start = Instant::now();
        let report = std::hint::black_box(
            run_batched_resilient::<GlobalLinear>(
                &device,
                &params,
                &workload,
                BatchConfig::default(),
                &standard,
                None,
            )
            .expect("bench workload must be valid"),
        );
        let resilient_aps = aps(n, start);
        assert!(
            report.faults.is_empty() && report.retries == 0,
            "fault-free workload must not fault or retry"
        );
        samples.push((disabled_aps, resilient_aps));
    }
    samples.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    let (disabled_aps, resilient_aps) = samples[samples.len() / 2];
    let ratio = resilient_aps / disabled_aps.max(1e-9);
    ResilienceOverhead {
        workload: format!("banded_w{half_width}"),
        pairs,
        nk,
        disabled_aps,
        resilient_aps,
        ratio,
        pass: ratio >= crate::check::RESILIENCE_GATE,
    }
}

/// Measures the `dphls-serve` front end under unpaced open-loop load
/// against a direct [`run_streamed`] pass on an equivalent device (scaled
/// by `scale`). One in-process server (banded DNA session, NK channels)
/// survives all rounds so every round hits a warm engine; each round pairs
/// one direct streamed run with one `dphls-load` run over the same read
/// distribution and takes the `served_rps / streamed_aps` ratio.
/// Interleaved rounds, median ratio taken wholesale — the gate-point
/// discipline of [`measure_streaming`]. Latency percentiles ride along
/// from the median round but are wall-clock figures; `bench_check` only
/// diffs them between multi-core reports.
pub fn measure_serving(scale: usize) -> Serving {
    let s = scale.max(1);
    let connections = 4usize;
    let requests = (4_000 / s / connections).max(1);
    let pairs = requests * connections;
    let len = 256usize;
    let nk = 4usize;
    // ReadSimulator reads run longer than `len` under insertion errors;
    // the device leaves headroom so the tail of the distribution is
    // served, not quarantined.
    let max_len = len + len / 2;
    let stream_cfg = StreamConfig::default();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            npe: 32,
            nb: 1,
            nk,
            max_len,
            stream: stream_cfg,
            ..ServerConfig::default()
        },
    )
    .expect("bind in-process bench server");
    let addr = server.local_addr();
    let load = LoadConfig {
        connections,
        requests,
        len,
        ..LoadConfig::default()
    };

    // The direct comparison runs the same kernel the server resolves for
    // the load generator's kernel name, on a same-shaped device, over the
    // same read distribution (untruncated, like the wire path).
    let half_width =
        default_banding(&load.kernel).expect("load kernel is banded with a default width");
    let params = LinearParams::<i16>::dna();
    let config = KernelConfig::new(32, 1, nk)
        .with_max_lengths(max_len, max_len)
        .with_banding(half_width);
    let device = device_for(config);
    let mut sim = ReadSimulator::new(load.seed);
    let workload: Vec<(Vec<Base>, Vec<Base>)> = sim
        .read_pairs(pairs, len, 0.2)
        .into_iter()
        .map(|(r, q)| (q.into_vec(), r.into_vec()))
        .collect();
    let n = workload.len();

    // Absolute-threshold gate: interleaved rounds, median ratio wholesale.
    let rounds = (6_000 / pairs.max(1)).clamp(3, 8);
    struct Round {
        streamed: f64,
        served: f64,
        p50_ms: f64,
        p99_ms: f64,
    }
    let mut samples: Vec<Round> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        run_streamed::<GlobalLinear, _, std::convert::Infallible, _>(
            &device,
            &params,
            workload.iter().cloned().map(Ok),
            stream_cfg,
            |_, out| {
                std::hint::black_box(&out);
            },
        )
        .expect("bench workload must be valid");
        let streamed = aps(n, start);

        let report = run_load(addr, &load).expect("load run against the in-process server");
        assert_eq!(
            report.error_frames, 0,
            "bench load must be served without quarantine"
        );
        assert_eq!(report.completed as usize, pairs, "every request answered");
        samples.push(Round {
            streamed,
            served: report.rps,
            p50_ms: report.p50_ms,
            p99_ms: report.p99_ms,
        });
    }
    let stats = server.shutdown();
    assert_eq!(
        stats.error_frames, 0,
        "bench server must not synthesize error frames"
    );

    let round_ratio = |r: &Round| r.served / r.streamed.max(1e-9);
    samples.sort_by(|a, b| round_ratio(a).total_cmp(&round_ratio(b)));
    let pick = &samples[samples.len() / 2];
    let ratio = round_ratio(pick);
    Serving {
        workload: load.kernel.clone(),
        pairs,
        len,
        connections,
        nk,
        buffer: stream_cfg.buffer,
        window: stream_cfg.window,
        streamed_aps: pick.streamed,
        served_rps: pick.served,
        ratio,
        p50_ms: pick.p50_ms,
        p99_ms: pick.p99_ms,
        pass: ratio >= crate::check::SERVING_GATE,
    }
}

/// Measures the adaptive-precision fast path against the exact path on a
/// short-read banded workload (scaled by `scale`): the same
/// [`run_batched_adaptive`] engine under [`LanePrecision::Adaptive`] (32
/// `i8` lanes) and [`LanePrecision::Exact`], timed in interleaved rounds
/// with the median-ratio round taken wholesale — the gate-point discipline
/// of [`measure_streaming`].
///
/// Workload shape, chosen so the guard band does the intended split:
/// * clean reads are 120 bases under unit scoring (`+1/−1/−1`) and a
///   half-width-20 band — the maximum cell value is bounded by
///   `1·120 = 120 < 127` and the band-edge gap ramp by `−20 > −32`, with
///   twelve points of headroom for mismatch dips, so they stay on the
///   `i8` path;
/// * every 20th pair carries a 44-base homopolymer mismatch block —
///   query prefix all-`A`, reference prefix all-`C` — so every in-band
///   cell of the prefix region mismatches under **any** path (no
///   accidental matches for the band to route around) and the wavefront
///   is forced to `−32` by row 32, deterministically tripping the
///   **lower** guard rail about a quarter of the way through the matrix
///   (an early, cheap abort followed by the exact re-run, the realistic
///   escalation shape).
///
/// A functional pre-flight asserts the adaptive outputs are bit-identical
/// to the exact ones and that exactly the planted fraction escalates
/// before any timing happens.
pub fn measure_adaptive_precision(scale: usize) -> AdaptivePrecision {
    let s = scale.max(1);
    let pairs = (10_000 / s).max(10);
    let len = 120usize;
    let escalator_prefix = 44usize;
    let npe = 120usize;
    let nk = 4usize;
    let half_width = 20usize;
    let lanes = I8Lanes::X32;
    let params = LinearParams::<i16>::unit();
    let mut workload = make_workload(pairs, len, 0xD9);
    let mut planted = 0usize;
    for (i, (q, r)) in workload.iter_mut().enumerate() {
        if i % 20 == 3 {
            // Homopolymer mismatch block: all-A query prefix against an
            // all-C reference prefix mismatches at every in-band cell, so
            // the best path is forced one point down per wavefront and
            // crosses −32 by row 32.
            *q = r.clone();
            for b in &mut q[..escalator_prefix] {
                *b = Base::A;
            }
            for b in &mut r[..escalator_prefix] {
                *b = Base::C;
            }
            planted += 1;
        }
    }
    let config = KernelConfig::new(npe, 1, nk)
        .with_max_lengths(len, len)
        .with_banding(half_width);
    let device = device_for(config);
    let n = workload.len();
    let res = ResilienceConfig::disabled();
    let run = |precision| {
        run_batched_adaptive::<GlobalLinear>(
            &device,
            &params,
            precision,
            &workload,
            BatchConfig::default(),
            &res,
            None,
        )
        .expect("bench workload must be valid")
    };

    // Functional pre-flight (untimed): the fast path must be bit-identical
    // and the planted escalators — and only they — must trip the guard.
    let exact_ref = run(LanePrecision::Exact);
    let adaptive_ref = run(LanePrecision::Adaptive(lanes));
    assert_eq!(
        adaptive_ref.outputs, exact_ref.outputs,
        "adaptive outputs must be bit-identical to exact"
    );
    assert_eq!(exact_ref.escalations, 0, "exact path never escalates");
    assert_eq!(
        adaptive_ref.escalations, planted as u64,
        "exactly the planted pairs escalate"
    );
    let escalation_rate = adaptive_ref.escalation_rate();

    // Absolute-threshold gate: interleaved rounds, median ratio wholesale.
    let rounds = (6_000 / pairs.max(1)).clamp(3, 8);
    let mut samples: Vec<(f64, f64)> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        std::hint::black_box(run(LanePrecision::Exact));
        let exact_aps = aps(n, start);

        let start = Instant::now();
        std::hint::black_box(run(LanePrecision::Adaptive(lanes)));
        let adaptive_aps = aps(n, start);
        samples.push((exact_aps, adaptive_aps));
    }
    samples.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    let (exact_aps, adaptive_aps) = samples[samples.len() / 2];
    let ratio = adaptive_aps / exact_aps.max(1e-9);
    AdaptivePrecision {
        workload: format!("banded_w{half_width}"),
        pairs,
        len,
        npe,
        nk,
        lanes: lanes.width(),
        exact_aps,
        adaptive_aps,
        ratio,
        escalation_rate,
        pass: ratio >= crate::check::ADAPTIVE_GATE,
    }
}

/// Measures the ISSUE 9 mapping point: `scale`-divided long-read recall +
/// X-drop cell budget through the streamed `dphls-mapper` pipeline, plus
/// the signal-space sDTW separation sub-metric. See [`Mapping`].
pub fn measure_mapping(scale: usize) -> Mapping {
    let s = scale.max(1);
    let reads_n = (2_000 / s).max(4);
    let lengths = [1_000usize, 2_000, 3_000, 5_000];
    let error_rate = 0.05;
    let mut sim = ReadSimulator::new(0x3A99).error_model(ErrorModel::PACBIO_CLR);
    let genome = sim.genome().clone(); // 1 MiB synthetic reference
    let truth: Vec<(String, Vec<Base>, usize, bool)> = (0..reads_n)
        .map(|i| {
            let r = sim.simulate_read(lengths[i % lengths.len()], error_rate);
            let reverse = i % 2 == 1;
            let bases = if reverse {
                reverse_complement(r.read.as_slice())
            } else {
                r.read.as_slice().to_vec()
            };
            (format!("r{i}"), bases, r.start, reverse)
        })
        .collect();
    let index = KmerIndex::build(&genome, IndexConfig::default());
    let cfg = MapperConfig::default();
    let stream = MapStreamConfig {
        workers: host_cores().clamp(1, 8),
        ..MapStreamConfig::default()
    };
    let run = |outcomes: &mut Vec<MapOutcome>| {
        let source = truth
            .iter()
            .map(|(id, bases, _, _)| Ok::<_, String>((id.clone(), bases.clone())));
        map_streamed(&index, &genome, source, &cfg, stream, |_, out| {
            outcomes.push(out)
        })
    };

    // Functional pass (untimed): recall at the true locus, and the DP-cell
    // budget the X-drop stage actually spent vs what a fixed 128-wide band
    // over the same (read × window) problems would pay (analytic — the
    // comparison needs no second DP run, so it cannot drift with the
    // machine).
    let mut outcomes = Vec::with_capacity(reads_n);
    let report = run(&mut outcomes);
    let full_band = Banding::Fixed { half_width: 128 };
    let mut mapped = 0usize;
    let mut correct = 0usize;
    let mut xdrop_cells = 0u64;
    let mut fullband_cells = 0u64;
    for ((_, bases, start, reverse), out) in truth.iter().zip(&outcomes) {
        if let Some(m) = out.mapping() {
            mapped += 1;
            let strand_ok = (m.strand == Strand::Reverse) == *reverse;
            if strand_ok && m.locus.abs_diff(*start) <= 64 {
                correct += 1;
            }
            xdrop_cells += m.cells;
            // The same window-sizing rule the mapper itself applies.
            let span =
                (bases.len() + bases.len() / 8 + cfg.window_slack).min(genome.len() - m.locus);
            fullband_cells += (1..=bases.len())
                .map(|i| full_band.cells_in_row(i, span) as u64)
                .sum::<u64>();
        }
    }
    let recall = correct as f64 / reads_n as f64;
    let cells_ratio = xdrop_cells as f64 / (fullband_cells as f64).max(1.0);

    // Wall-clock throughput, recorded for the trajectory but never gated
    // or compared (absolute figure): median of a few repeat passes.
    let rounds = (4_000 / reads_n.max(1)).clamp(2, 4);
    let mut samples: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut sink = Vec::with_capacity(reads_n);
        let start = Instant::now();
        std::hint::black_box(run(&mut sink));
        samples.push(aps(reads_n, start));
    }
    samples.sort_by(f64::total_cmp);
    let mapped_aps = samples[samples.len() / 2];

    // Signal-space variant: sDTW read-until classification of raw
    // nanopore squiggles against the virus reference squiggle (the
    // `virus_detection_sdtw` example's generator and operating point).
    // Deterministic, so the separation is a counting figure too.
    let virus = GenomeGenerator::new(0x5157).generate(2_000);
    let reference = SquiggleSimulator::reference_levels(&virus);
    let background = GenomeGenerator::new(9_999).generate(50_000);
    let mut squiggler = SquiggleSimulator::new(3).dwell(1, 2).noise(10);
    let mut rng = Xoshiro256::seed_from_u64(1);
    let sdtw_config = KernelConfig::new(32, 1, 1).with_max_lengths(512, 2_000);
    let mut sdtw_pos_max = 0.0f64;
    let mut sdtw_neg_min = f64::INFINITY;
    for case in 0..12 {
        let on_target = case % 2 == 0;
        let window = if on_target {
            virus.window(rng.next_range(1_800) as usize, 200)
        } else {
            background.window(rng.next_range(49_800) as usize, 200)
        };
        let mut squiggle = squiggler.squiggle(&window);
        squiggle.truncate(400);
        let sdtw = run_systolic_ok::<Sdtw<i32>>(
            &NoParams,
            squiggle.as_slice(),
            reference.as_slice(),
            &sdtw_config,
        );
        let per_sample = sdtw.output.best_score as f64 / squiggle.len() as f64;
        if on_target {
            sdtw_pos_max = sdtw_pos_max.max(per_sample);
        } else {
            sdtw_neg_min = sdtw_neg_min.min(per_sample);
        }
    }
    let sdtw_separation = sdtw_neg_min / sdtw_pos_max.max(1e-9);

    Mapping {
        workload: "long_read_5pct".into(),
        reads: reads_n,
        genome_len: genome.len(),
        min_len: lengths[0],
        max_len: lengths[lengths.len() - 1],
        error_rate,
        mapped,
        correct,
        recall,
        xdrop_cells,
        fullband_cells,
        cells_ratio,
        mapped_aps,
        reorder_high_water: report.reorder_high_water,
        sdtw_pos_max,
        sdtw_neg_min,
        sdtw_separation,
        recall_pass: recall >= crate::check::MAPPING_RECALL_GATE,
        cells_pass: cells_ratio <= crate::check::MAPPING_CELLS_GATE,
        sdtw_pass: sdtw_separation > crate::check::MAPPING_SDTW_GATE,
    }
}

/// Runs the full matrix and assembles the report. The acceptance gate is
/// the banded 10k-pair single-channel point (scaled by `scale`).
pub fn build_report(scale: usize) -> ThroughputReport {
    let points: Vec<ThroughputPoint> = standard_points(scale).iter().map(measure_point).collect();
    let gate = points
        .iter()
        .find(|p| p.workload.starts_with("banded") && p.nk == 1)
        .expect("matrix contains the banded acceptance point");
    let acceptance = Acceptance {
        workload: gate.workload.clone(),
        pairs: gate.pairs,
        naive_aps: gate.naive_aps,
        scratch_aps: gate.scratch_aps,
        laned_aps: gate.laned_aps,
        speedup: gate.scratch_speedup,
        lane_vs_scratch: gate.lane_vs_scratch,
        pass: gate.scratch_speedup >= 2.0,
        lane_pass: gate.lane_vs_scratch >= 1.3,
    };
    ThroughputReport {
        version: 9,
        host_cores: host_cores(),
        points,
        acceptance,
        streaming: measure_streaming(scale),
        nb_scaling: measure_nb_scaling(scale),
        fleet: measure_fleet(scale),
        resilience_overhead: measure_resilience_overhead(scale),
        serving: measure_serving(scale),
        adaptive_precision: measure_adaptive_precision(scale),
        mapping: measure_mapping(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_measures_and_serializes() {
        let spec = PointSpec {
            kind: WorkloadKind::Banded { half_width: 8 },
            len: 64,
            pairs: 20,
            npe: 8,
            nk: 2,
        };
        let p = measure_point(&spec);
        assert!(p.naive_aps > 0.0 && p.scratch_aps > 0.0 && p.batched_aps > 0.0);
        assert!(p.laned_aps > 0.0 && p.lane_vs_scratch > 0.0);
        let json = serde_json::to_string_pretty(&p).unwrap();
        assert!(json.contains("\"scratch_speedup\""));
        assert!(json.contains("\"lane_vs_scratch\""));
        serde_json::from_str(&json).expect("point serializes to valid JSON");
    }

    #[test]
    fn nb_scaling_measures_and_serializes() {
        let p = measure_nb_scaling(500); // 20 pairs
        assert_eq!(p.pairs, 20);
        assert_eq!((p.nb, p.nk), (4, 1));
        assert!(p.slots1_aps > 0.0 && p.slots_nb_aps > 0.0 && p.slot_ratio > 0.0);
        assert!((p.slot_ratio - p.slots_nb_aps / p.slots1_aps).abs() < 1e-9);
        assert!((p.modeled_nb_ratio - p.modeled_nb_aps / p.modeled_nb1_aps).abs() < 1e-9);
        // The banded workload's I/O phases are tiny next to its fill, so a
        // 4-block channel models (essentially exactly) 4x a 1-block channel
        // at any pair count — the machine-independent gate value.
        assert!(
            p.modeled_nb_ratio >= crate::check::NB_MODEL_GATE && p.modeled_nb_ratio <= 4.0 + 1e-6,
            "modeled NB ratio {}",
            p.modeled_nb_ratio
        );
        assert!(p.pass);
        let json = serde_json::to_string_pretty(&p).unwrap();
        assert!(json.contains("\"modeled_nb_ratio\""));
        serde_json::from_str(&json).expect("point serializes to valid JSON");
    }

    #[test]
    fn fleet_measures_and_serializes() {
        let p = measure_fleet(500); // 20 pairs
        assert_eq!(p.pairs, 20);
        assert_eq!((p.devices, p.nb, p.nk), (4, 4, 1));
        assert!(p.d1_aps > 0.0 && p.d_aps > 0.0 && p.d_wall_ratio > 0.0);
        assert!((p.d_wall_ratio - p.d_aps / p.d1_aps).abs() < 1e-9);
        assert!((p.d_ratio - p.modeled_d_aps / p.modeled_d1_aps).abs() < 1e-9);
        // The banded workload's transfer payload is small next to its
        // fill, so a 4-device fleet over a PCIe-class link models close to
        // 4x one device at any pair count — the machine-independent gate
        // value (NB-model discipline: deterministic, enforced at every
        // scale).
        assert!(
            p.d_ratio >= crate::check::FLEET_MODEL_GATE && p.d_ratio <= 4.0 + 1e-6,
            "modeled fleet ratio {}",
            p.d_ratio
        );
        assert!(p.pass);
        let json = serde_json::to_string_pretty(&p).unwrap();
        assert!(json.contains("\"d_ratio\""));
        serde_json::from_str(&json).expect("point serializes to valid JSON");
    }

    #[test]
    fn resilience_overhead_measures_and_serializes() {
        let p = measure_resilience_overhead(500); // 20 pairs
        assert_eq!(p.pairs, 20);
        assert!(p.disabled_aps > 0.0 && p.resilient_aps > 0.0 && p.ratio > 0.0);
        assert!((p.ratio - p.resilient_aps / p.disabled_aps).abs() < 1e-9);
        assert_eq!(p.pass, p.ratio >= crate::check::RESILIENCE_GATE);
        let json = serde_json::to_string_pretty(&p).unwrap();
        assert!(json.contains("\"resilient_aps\""));
        serde_json::from_str(&json).expect("point serializes to valid JSON");
    }

    #[test]
    fn serving_measures_and_serializes() {
        let p = measure_serving(500); // 8 requests over 4 connections
        assert_eq!(p.pairs, 8);
        assert_eq!((p.connections, p.nk), (4, 4));
        assert!(p.streamed_aps > 0.0 && p.served_rps > 0.0 && p.ratio > 0.0);
        assert!((p.ratio - p.served_rps / p.streamed_aps).abs() < 1e-9);
        assert!(p.p50_ms > 0.0 && p.p50_ms <= p.p99_ms);
        assert_eq!(p.pass, p.ratio >= crate::check::SERVING_GATE);
        let json = serde_json::to_string_pretty(&p).unwrap();
        assert!(json.contains("\"served_rps\""));
        serde_json::from_str(&json).expect("point serializes to valid JSON");
    }

    #[test]
    fn adaptive_precision_measures_and_serializes() {
        let p = measure_adaptive_precision(500); // 20 pairs, 1 escalator
        assert_eq!(p.pairs, 20);
        assert_eq!((p.lanes, p.nk), (32, 4));
        assert!(p.exact_aps > 0.0 && p.adaptive_aps > 0.0 && p.ratio > 0.0);
        assert!((p.ratio - p.adaptive_aps / p.exact_aps).abs() < 1e-9);
        // The planted escalators keep the rate strictly non-degenerate at
        // every scale: 1 of 20 pairs here.
        assert!((p.escalation_rate - 0.05).abs() < 1e-9);
        assert_eq!(p.pass, p.ratio >= crate::check::ADAPTIVE_GATE);
        let json = serde_json::to_string_pretty(&p).unwrap();
        assert!(json.contains("\"escalation_rate\""));
        serde_json::from_str(&json).expect("point serializes to valid JSON");
    }

    #[test]
    fn mapping_measures_and_serializes() {
        let p = measure_mapping(500); // 4 reads, 1-5 kb
        assert_eq!(p.reads, 4);
        assert_eq!((p.min_len, p.max_len), (1_000, 5_000));
        // The counting gates are deterministic and machine-independent,
        // so they must hold at smoke scale too (NB-model discipline).
        assert_eq!(p.correct, p.reads, "every 5%-error read maps true");
        assert!((p.recall - 1.0).abs() < 1e-9);
        assert!(p.recall_pass);
        assert!(p.xdrop_cells > 0 && p.fullband_cells > p.xdrop_cells);
        assert!((p.cells_ratio - p.xdrop_cells as f64 / p.fullband_cells as f64).abs() < 1e-9);
        assert!(p.cells_pass, "cells ratio {}", p.cells_ratio);
        assert!(p.sdtw_pos_max > 0.0 && p.sdtw_neg_min > p.sdtw_pos_max);
        assert!(p.sdtw_separation > 1.0 && p.sdtw_pass);
        assert!(p.mapped_aps > 0.0);
        let json = serde_json::to_string_pretty(&p).unwrap();
        assert!(json.contains("\"cells_ratio\""));
        assert!(json.contains("\"sdtw_separation\""));
        serde_json::from_str(&json).expect("point serializes to valid JSON");
    }

    #[test]
    fn streaming_comparison_measures_and_serializes() {
        let s = measure_streaming(500); // 20 pairs
        assert_eq!(s.pairs, 20);
        assert!(s.batched_aps > 0.0 && s.streamed_aps > 0.0 && s.ratio > 0.0);
        assert_eq!(s.pass, s.ratio >= crate::check::STREAMING_GATE);
        assert!((s.ratio - s.streamed_aps / s.batched_aps).abs() < 1e-9);
        assert!(s.resident_high_water <= s.window);
        assert!(s.reorder_high_water < s.window);
        let json = serde_json::to_string_pretty(&s).unwrap();
        assert!(json.contains("\"ratio\""));
        serde_json::from_str(&json).expect("comparison serializes to valid JSON");
    }
}
