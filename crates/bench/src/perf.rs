//! Host-throughput measurement: wall-clock alignments/second of the naive
//! baseline engine ([`crate::naive`]), the zero-allocation scratch engine,
//! and the work-stealing batch engine, across linear / affine / banded
//! workloads at several `(NPE, NK)` points.
//!
//! `bin/bench_report.rs` renders the result as `BENCH_throughput.json` so
//! the performance trajectory is tracked from this PR onward;
//! `benches/throughput.rs` exposes the same measurements under criterion.

use crate::naive::run_systolic_naive;
use dphls_core::{KernelConfig, KernelSpec};
use dphls_host::run_batched;
use dphls_kernels::{AffineParams, GlobalAffine, GlobalLinear, LinearParams};
use dphls_seq::gen::ReadSimulator;
use dphls_seq::Base;
use dphls_systolic::{CycleModelParams, Device, KernelCycleInfo, SystolicScratch};
use serde::Serialize;
use std::time::Instant;

/// Which kernel/banding combination a measurement point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Global linear (NW), full matrix.
    Linear,
    /// Global affine, full matrix (3 scoring layers).
    Affine,
    /// Global linear under fixed banding (the paper's §2.2.4 pruning).
    Banded {
        /// Band half-width in cells.
        half_width: usize,
    },
}

impl WorkloadKind {
    fn name(&self) -> String {
        match self {
            WorkloadKind::Linear => "linear".into(),
            WorkloadKind::Affine => "affine".into(),
            WorkloadKind::Banded { half_width } => format!("banded_w{half_width}"),
        }
    }
}

/// One measurement point of the throughput matrix.
#[derive(Debug, Clone, Copy)]
pub struct PointSpec {
    /// Kernel/banding combination.
    pub kind: WorkloadKind,
    /// Sequence length of each pair.
    pub len: usize,
    /// Number of alignment pairs.
    pub pairs: usize,
    /// PEs per systolic array.
    pub npe: usize,
    /// Channels (= host worker threads for the batch engine).
    pub nk: usize,
}

/// Measured alignments/second at one point, serialized into the report.
#[derive(Debug, Serialize)]
pub struct ThroughputPoint {
    /// Workload name (`linear`, `affine`, `banded_w16`, …).
    pub workload: String,
    /// Sequence length per pair.
    pub len: usize,
    /// Pairs measured.
    pub pairs: usize,
    /// PEs per array.
    pub npe: usize,
    /// Channels / host threads.
    pub nk: usize,
    /// Naive per-alignment-allocation engine, single thread (aln/s).
    pub naive_aps: f64,
    /// Scratch-reuse band-aware engine, single thread (aln/s).
    pub scratch_aps: f64,
    /// Work-stealing batch engine across `nk` threads (aln/s).
    pub batched_aps: f64,
    /// `scratch_aps / naive_aps` — the single-thread hot-path win.
    pub scratch_speedup: f64,
    /// `batched_aps / naive_aps` — the end-to-end engine win.
    pub batched_speedup: f64,
}

/// The acceptance gate of ISSUE 1: ≥ 2× aln/s over the naive baseline on a
/// 10k-pair banded workload (single-thread scratch engine, same thread
/// count as the baseline).
#[derive(Debug, Serialize)]
pub struct Acceptance {
    /// The workload the gate ran on.
    pub workload: String,
    /// Pairs in the gate workload.
    pub pairs: usize,
    /// Baseline aln/s.
    pub naive_aps: f64,
    /// Optimized single-thread aln/s.
    pub scratch_aps: f64,
    /// Measured speedup.
    pub speedup: f64,
    /// Whether the ≥ 2× gate held.
    pub pass: bool,
}

/// The full serialized throughput report.
#[derive(Debug, Serialize)]
pub struct ThroughputReport {
    /// Report schema version.
    pub version: u32,
    /// All measured points.
    pub points: Vec<ThroughputPoint>,
    /// The ISSUE 1 acceptance measurement.
    pub acceptance: Acceptance,
}

/// Deterministic read-pair workload: reference windows + noisy reads of
/// equal length (the paper's §6.1 short-read shape).
pub fn make_workload(pairs: usize, len: usize, seed: u64) -> Vec<(Vec<Base>, Vec<Base>)> {
    let mut sim = ReadSimulator::new(seed);
    sim.read_pairs(pairs, len, 0.2)
        .into_iter()
        .map(|(r, mut q)| {
            q.truncate(len);
            let mut r = r.into_vec();
            r.truncate(len);
            (q.into_vec(), r)
        })
        .collect()
}

fn config_for(spec: &PointSpec) -> KernelConfig {
    let base =
        KernelConfig::new(spec.npe.min(spec.len), 1, spec.nk).with_max_lengths(spec.len, spec.len);
    match spec.kind {
        WorkloadKind::Banded { half_width } => base.with_banding(half_width),
        _ => base,
    }
}

// The cycle-model inputs are fixed across the matrix (2-bit DNA symbols,
// traceback on, II=1); only the KernelConfig varies per point.
fn device_for(config: KernelConfig) -> Device {
    Device::new(
        config,
        CycleModelParams::dphls(),
        KernelCycleInfo {
            sym_bits: 2,
            has_walk: true,
            ii: 1,
        },
        250.0,
    )
}

fn aps(pairs: usize, start: Instant) -> f64 {
    pairs as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn measure_kernel<K>(
    params: &K::Params,
    workload: &[dphls_core::SeqPair<K>],
    spec: &PointSpec,
) -> (f64, f64, f64)
where
    K: KernelSpec,
    K::Score: Send,
    K::Params: Sync,
{
    let config = config_for(spec);
    let device = device_for(config);

    let start = Instant::now();
    for (q, r) in workload {
        std::hint::black_box(run_systolic_naive::<K>(params, q, r, &config));
    }
    let naive = aps(workload.len(), start);

    let mut scratch = SystolicScratch::new();
    let start = Instant::now();
    for (q, r) in workload {
        std::hint::black_box(
            dphls_systolic::run_systolic_with_scratch::<K>(params, q, r, &config, &mut scratch)
                .expect("bench workload must be valid"),
        );
    }
    let scratch_aps = aps(workload.len(), start);

    let start = Instant::now();
    std::hint::black_box(
        run_batched::<K>(&device, params, workload).expect("bench workload must be valid"),
    );
    let batched = aps(workload.len(), start);

    (naive, scratch_aps, batched)
}

/// Measures one point of the matrix.
pub fn measure_point(spec: &PointSpec) -> ThroughputPoint {
    let workload = make_workload(spec.pairs, spec.len, 0xD9);
    let (naive_aps, scratch_aps, batched_aps) = match spec.kind {
        WorkloadKind::Affine => {
            let params = AffineParams::<i16>::dna();
            measure_kernel::<GlobalAffine<i16>>(&params, &workload, spec)
        }
        _ => {
            let params = LinearParams::<i16>::dna();
            measure_kernel::<GlobalLinear>(&params, &workload, spec)
        }
    };
    ThroughputPoint {
        workload: spec.kind.name(),
        len: spec.len,
        pairs: spec.pairs,
        npe: spec.npe,
        nk: spec.nk,
        naive_aps,
        scratch_aps,
        batched_aps,
        scratch_speedup: scratch_aps / naive_aps.max(1e-9),
        batched_speedup: batched_aps / naive_aps.max(1e-9),
    }
}

/// The standard measurement matrix. `scale` divides pair counts (CI smoke
/// runs use `scale > 1`; the recorded report uses `scale = 1`).
pub fn standard_points(scale: usize) -> Vec<PointSpec> {
    let s = scale.max(1);
    let banded = WorkloadKind::Banded { half_width: 16 };
    vec![
        PointSpec {
            kind: WorkloadKind::Linear,
            len: 128,
            pairs: 2_000 / s,
            npe: 8,
            nk: 1,
        },
        PointSpec {
            kind: WorkloadKind::Linear,
            len: 128,
            pairs: 2_000 / s,
            npe: 32,
            nk: 4,
        },
        PointSpec {
            kind: WorkloadKind::Affine,
            len: 128,
            pairs: 1_000 / s,
            npe: 32,
            nk: 4,
        },
        PointSpec {
            kind: banded,
            len: 256,
            pairs: 10_000 / s,
            npe: 32,
            nk: 1,
        },
        PointSpec {
            kind: banded,
            len: 256,
            pairs: 10_000 / s,
            npe: 32,
            nk: 4,
        },
    ]
}

/// Runs the full matrix and assembles the report. The acceptance gate is
/// the banded 10k-pair single-channel point (scaled by `scale`).
pub fn build_report(scale: usize) -> ThroughputReport {
    let points: Vec<ThroughputPoint> = standard_points(scale).iter().map(measure_point).collect();
    let gate = points
        .iter()
        .find(|p| p.workload.starts_with("banded") && p.nk == 1)
        .expect("matrix contains the banded acceptance point");
    let acceptance = Acceptance {
        workload: gate.workload.clone(),
        pairs: gate.pairs,
        naive_aps: gate.naive_aps,
        scratch_aps: gate.scratch_aps,
        speedup: gate.scratch_speedup,
        pass: gate.scratch_speedup >= 2.0,
    };
    ThroughputReport {
        version: 1,
        points,
        acceptance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_measures_and_serializes() {
        let spec = PointSpec {
            kind: WorkloadKind::Banded { half_width: 8 },
            len: 64,
            pairs: 20,
            npe: 8,
            nk: 2,
        };
        let p = measure_point(&spec);
        assert!(p.naive_aps > 0.0 && p.scratch_aps > 0.0 && p.batched_aps > 0.0);
        let json = serde_json::to_string_pretty(&p).unwrap();
        assert!(json.contains("\"scratch_speedup\""));
        serde_json::from_str(&json).expect("point serializes to valid JSON");
    }
}
