//! Machine-readable experiment reports: every experiment's rows serialized
//! to JSON so downstream tooling (plotting, regression tracking) can consume
//! the reproduction without scraping tables.
//!
//! `cargo run -p dphls-bench --bin all_experiments -- --json out.json`
//! writes the full report.

use crate::experiments::{ablation, fig3, fig4, fig5, fig6, sec75, table2, tiling};
use serde::Serialize;

/// One Table 2 row, serialized.
#[derive(Debug, Serialize)]
pub struct Table2Json {
    /// Kernel id.
    pub id: u8,
    /// Kernel name.
    pub name: String,
    /// Modeled block utilization `[LUT, FF, BRAM, DSP]`.
    pub util: [f64; 4],
    /// Paper utilization.
    pub paper_util: [f64; 4],
    /// `(NPE, NB, NK)`.
    pub config: (usize, usize, usize),
    /// Modeled fmax (MHz).
    pub freq_mhz: f64,
    /// Modeled throughput (aln/s).
    pub aln_per_sec: f64,
    /// Paper throughput (aln/s).
    pub paper_aln_per_sec: f64,
}

/// A generic x/y scaling point.
#[derive(Debug, Serialize)]
pub struct PointJson {
    /// Swept value.
    pub x: usize,
    /// Throughput (aln/s).
    pub throughput_aps: f64,
    /// Device utilization `[LUT, FF, BRAM, DSP]`.
    pub util: [f64; 4],
}

/// One baseline comparison entry.
#[derive(Debug, Serialize)]
pub struct ComparisonJson {
    /// Kernel id.
    pub kernel_id: u8,
    /// Baseline name.
    pub baseline: String,
    /// DP-HLS throughput (aln/s).
    pub dphls_aps: f64,
    /// Baseline throughput (aln/s).
    pub baseline_aps: f64,
    /// Modeled speedup or margin.
    pub modeled: f64,
    /// Paper value.
    pub paper: f64,
}

/// The complete serialized report.
#[derive(Debug, Serialize)]
pub struct FullReport {
    /// Table 2 rows.
    pub table2: Vec<Table2Json>,
    /// Fig 3 NPE sweeps, keyed by kernel id.
    pub fig3_npe: Vec<(u8, Vec<PointJson>)>,
    /// Fig 3 NB sweeps, keyed by kernel id.
    pub fig3_nb: Vec<(u8, Vec<PointJson>)>,
    /// Fig 4 RTL margins.
    pub fig4: Vec<ComparisonJson>,
    /// Fig 5 points (#2 vs GACT).
    pub fig5: Vec<ComparisonJson>,
    /// Fig 6 CPU + GPU speedups.
    pub fig6: Vec<ComparisonJson>,
    /// §7.5 HLS baseline speedup (modeled, paper).
    pub sec75: (f64, f64),
    /// Tiling rows: (read_len, tiles, tiled_score, dphls/gact ratio).
    pub tiling: Vec<(usize, usize, i64, f64)>,
    /// Schedule-ablation gaps per kernel.
    pub schedule_gap: Vec<(u8, f64)>,
}

/// Runs every experiment and assembles the JSON report.
pub fn build(measure_pairs: usize) -> FullReport {
    let t2 = table2::run();
    let (k1, k9) = fig3::run();
    let f4 = fig4::run();
    let f5 = fig5::run();
    let (cpu, gpu) = fig6::run(measure_pairs);
    let s75 = sec75::run();
    let til = tiling::run();
    let sched = ablation::schedule_ablation();

    let point = |p: &fig3::ScalePoint| PointJson {
        x: p.x,
        throughput_aps: p.throughput_aps,
        util: p.util,
    };
    FullReport {
        table2: t2
            .iter()
            .map(|r| Table2Json {
                id: r.id,
                name: r.name.to_string(),
                util: r.util,
                paper_util: r.paper_util,
                config: r.config,
                freq_mhz: r.freq_mhz,
                aln_per_sec: r.aln_per_sec,
                paper_aln_per_sec: r.paper_aln_per_sec,
            })
            .collect(),
        fig3_npe: vec![
            (k1.id, k1.npe_sweep.iter().map(point).collect()),
            (k9.id, k9.npe_sweep.iter().map(point).collect()),
        ],
        fig3_nb: vec![
            (k1.id, k1.nb_sweep.iter().map(point).collect()),
            (k9.id, k9.nb_sweep.iter().map(point).collect()),
        ],
        fig4: f4
            .iter()
            .map(|r| ComparisonJson {
                kernel_id: r.kernel_id,
                baseline: r.design.name().to_string(),
                dphls_aps: r.dphls_aps,
                baseline_aps: r.rtl_aps,
                modeled: r.modeled_margin(),
                paper: r.paper_margin,
            })
            .collect(),
        fig5: f5
            .iter()
            .map(|p| ComparisonJson {
                kernel_id: 2,
                baseline: format!("GACT@NPE{}", p.npe),
                dphls_aps: p.dphls_aps,
                baseline_aps: p.gact_aps,
                modeled: p.dphls_aps / p.gact_aps,
                paper: 1.0 - 0.077,
            })
            .collect(),
        fig6: cpu
            .iter()
            .chain(gpu.iter())
            .map(|r| ComparisonJson {
                kernel_id: r.kernel_id,
                baseline: r.tool.to_string(),
                dphls_aps: r.dphls_aps,
                baseline_aps: r.baseline_paper_aps,
                modeled: r.modeled_speedup,
                paper: r.paper_speedup,
            })
            .collect(),
        sec75: (s75.modeled_speedup(), s75.paper_speedup),
        tiling: til
            .iter()
            .map(|r| {
                (
                    r.read_len,
                    r.tiles,
                    r.tiled_score,
                    r.dphls_reads_per_sec / r.gact_reads_per_sec,
                )
            })
            .collect(),
        schedule_gap: sched.iter().map(|g| (g.id, g.gap())).collect(),
    }
}

/// Serializes the report to pretty JSON.
///
/// # Panics
///
/// Panics if serialization fails (plain data; cannot fail in practice).
pub fn to_json(report: &FullReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialization")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_builds_and_serializes() {
        let r = build(0);
        assert_eq!(r.table2.len(), 15);
        assert_eq!(r.fig4.len(), 3);
        assert_eq!(r.fig6.len(), 14);
        assert_eq!(r.schedule_gap.len(), 15);
        let json = to_json(&r);
        assert!(json.contains("\"table2\""));
        assert!(json.contains("\"sec75\""));
        assert!(json.len() > 2_000);
    }
}
