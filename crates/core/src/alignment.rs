//! Alignment paths produced by traceback.

use crate::traceback::TbMove;
use std::fmt;

/// One step of an alignment path, in forward (top-left → bottom-right) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlnOp {
    /// Both sequences advance (match or substitution) — CIGAR `M`.
    Diag,
    /// Query advances, reference gaps — CIGAR `I`.
    Up,
    /// Reference advances, query gaps — CIGAR `D`.
    Left,
}

impl AlnOp {
    /// The CIGAR opcode character.
    pub fn cigar_char(self) -> char {
        match self {
            AlnOp::Diag => 'M',
            AlnOp::Up => 'I',
            AlnOp::Left => 'D',
        }
    }

    /// How many query symbols this op consumes.
    pub fn query_step(self) -> usize {
        match self {
            AlnOp::Diag | AlnOp::Up => 1,
            AlnOp::Left => 0,
        }
    }

    /// How many reference symbols this op consumes.
    pub fn ref_step(self) -> usize {
        match self {
            AlnOp::Diag | AlnOp::Left => 1,
            AlnOp::Up => 0,
        }
    }
}

impl TryFrom<TbMove> for AlnOp {
    type Error = ();
    fn try_from(m: TbMove) -> Result<AlnOp, ()> {
        match m {
            TbMove::Diag => Ok(AlnOp::Diag),
            TbMove::Up => Ok(AlnOp::Up),
            TbMove::Left => Ok(AlnOp::Left),
            TbMove::Stop => Err(()),
        }
    }
}

/// A complete alignment path.
///
/// `start` is the top-left-most matrix cell **preceding** the first op (so a
/// global alignment has `start == (0, 0)`), and `end` is the bottom-right
/// cell where the traceback began. Cell coordinates are `(i, j)` with `i`
/// indexing the query (rows) and `j` the reference (columns), 1-based for
/// interior cells.
///
/// # Example
///
/// ```
/// use dphls_core::{AlnOp, Alignment};
/// let aln = Alignment::new(vec![AlnOp::Diag, AlnOp::Diag, AlnOp::Left], (0, 0), (2, 3));
/// assert_eq!(aln.cigar(), "2M1D");
/// assert_eq!(aln.query_span(), 2);
/// assert_eq!(aln.ref_span(), 3);
/// assert!(aln.is_consistent());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    ops: Vec<AlnOp>,
    start: (usize, usize),
    end: (usize, usize),
}

impl Alignment {
    /// Creates an alignment from forward-ordered ops and its anchor cells.
    pub fn new(ops: Vec<AlnOp>, start: (usize, usize), end: (usize, usize)) -> Self {
        Self { ops, start, end }
    }

    /// The path ops in forward order.
    pub fn ops(&self) -> &[AlnOp] {
        &self.ops
    }

    /// The cell preceding the first op (top anchor).
    pub fn start(&self) -> (usize, usize) {
        self.start
    }

    /// The cell of the last op (bottom anchor, where traceback started).
    pub fn end(&self) -> (usize, usize) {
        self.end
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Query symbols consumed.
    pub fn query_span(&self) -> usize {
        self.ops.iter().map(|o| o.query_step()).sum()
    }

    /// Reference symbols consumed.
    pub fn ref_span(&self) -> usize {
        self.ops.iter().map(|o| o.ref_step()).sum()
    }

    /// Run-length-encoded CIGAR string (`M`/`I`/`D`).
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut it = self.ops.iter().peekable();
        while let Some(&op) = it.next() {
            let mut run = 1usize;
            while it.peek() == Some(&&op) {
                it.next();
                run += 1;
            }
            out.push_str(&run.to_string());
            out.push(op.cigar_char());
        }
        out
    }

    /// Counts of (diag, up, left) ops.
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for op in &self.ops {
            match op {
                AlnOp::Diag => c.0 += 1,
                AlnOp::Up => c.1 += 1,
                AlnOp::Left => c.2 += 1,
            }
        }
        c
    }

    /// Structural validation: the spans implied by the ops must connect
    /// `start` to `end` exactly.
    pub fn is_consistent(&self) -> bool {
        self.start.0 + self.query_span() == self.end.0
            && self.start.1 + self.ref_span() == self.end.1
    }

    /// Fraction of diagonal ops whose symbols match, given the two
    /// sequences. Returns `None` for an empty path or out-of-bounds anchors.
    pub fn identity<T: PartialEq>(&self, query: &[T], reference: &[T]) -> Option<f64> {
        if self.ops.is_empty() || self.end.0 > query.len() || self.end.1 > reference.len() {
            return None;
        }
        let (mut i, mut j) = self.start;
        let mut matches = 0usize;
        let mut diags = 0usize;
        for op in &self.ops {
            match op {
                AlnOp::Diag => {
                    diags += 1;
                    if query[i] == reference[j] {
                        matches += 1;
                    }
                    i += 1;
                    j += 1;
                }
                AlnOp::Up => i += 1,
                AlnOp::Left => j += 1,
            }
        }
        if diags == 0 {
            None
        } else {
            Some(matches as f64 / diags as f64)
        }
    }
}

impl fmt::Display for Alignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@({},{})..({},{})",
            self.cigar(),
            self.start.0,
            self.start.1,
            self.end.0,
            self.end.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Alignment {
        Alignment::new(
            vec![
                AlnOp::Diag,
                AlnOp::Diag,
                AlnOp::Up,
                AlnOp::Left,
                AlnOp::Diag,
            ],
            (0, 0),
            (4, 4),
        )
    }

    #[test]
    fn cigar_run_length_encodes() {
        assert_eq!(sample().cigar(), "2M1I1D1M");
        assert_eq!(Alignment::new(vec![], (0, 0), (0, 0)).cigar(), "");
    }

    #[test]
    fn spans_count_consumption() {
        let a = sample();
        assert_eq!(a.query_span(), 4); // 3 diag + 1 up
        assert_eq!(a.ref_span(), 4); // 3 diag + 1 left
        assert!(a.is_consistent());
    }

    #[test]
    fn inconsistent_anchor_detected() {
        let a = Alignment::new(vec![AlnOp::Diag], (0, 0), (2, 1));
        assert!(!a.is_consistent());
    }

    #[test]
    fn op_counts() {
        assert_eq!(sample().op_counts(), (3, 1, 1));
    }

    #[test]
    fn identity_counts_matching_diags() {
        // query  = A C G
        // ref    = A T G
        let a = Alignment::new(vec![AlnOp::Diag, AlnOp::Diag, AlnOp::Diag], (0, 0), (3, 3));
        let q = ['A', 'C', 'G'];
        let r = ['A', 'T', 'G'];
        assert_eq!(a.identity(&q, &r), Some(2.0 / 3.0));
    }

    #[test]
    fn identity_none_for_gap_only() {
        let a = Alignment::new(vec![AlnOp::Left], (0, 0), (0, 1));
        assert_eq!(a.identity(&['A'], &['A']), None);
    }

    #[test]
    fn tbmove_conversion() {
        assert_eq!(AlnOp::try_from(TbMove::Diag), Ok(AlnOp::Diag));
        assert_eq!(AlnOp::try_from(TbMove::Up), Ok(AlnOp::Up));
        assert_eq!(AlnOp::try_from(TbMove::Left), Ok(AlnOp::Left));
        assert!(AlnOp::try_from(TbMove::Stop).is_err());
    }

    #[test]
    fn display_includes_anchors() {
        let s = sample().to_string();
        assert!(s.contains("(0,0)"));
        assert!(s.contains("(4,4)"));
    }
}
