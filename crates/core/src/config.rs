//! Kernel deployment configuration: parallelism `(NPE, NB, NK)`, maximum
//! sequence lengths, banding, and target frequency (paper §4 steps 1, 5–6).

use std::fmt;

/// Search-space pruning (paper §2.2.4 / §4 step 6: `BANDING`, `BANDWIDTH`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Banding {
    /// Compute the full matrix.
    #[default]
    None,
    /// Compute only cells within `half_width` of the main diagonal
    /// (`|i − j| ≤ half_width`).
    Fixed {
        /// Band half-width in cells.
        half_width: usize,
    },
}

impl Banding {
    /// Whether cell `(i, j)` (1-based matrix coordinates) is inside the band.
    pub fn contains(self, i: usize, j: usize) -> bool {
        match self {
            Banding::None => true,
            Banding::Fixed { half_width } => i.abs_diff(j) <= half_width,
        }
    }

    /// Number of in-band cells in row `i` of a `Q × R` matrix.
    pub fn cells_in_row(self, i: usize, r: usize) -> usize {
        match self {
            Banding::None => r,
            Banding::Fixed { half_width } => {
                let lo = i.saturating_sub(half_width).max(1);
                let hi = (i + half_width).min(r);
                hi.saturating_sub(lo) + usize::from(hi >= lo)
            }
        }
    }
}

/// Configuration of one synthesized kernel instance.
///
/// `npe` is the paper's inner-loop parallelism (PEs per systolic array);
/// `nb` the number of blocks per kernel sharing one channel arbiter; `nk`
/// the number of independent channels. `max_query` / `max_ref` are the
/// paper's `MAX_QUERY_LENGTH` / `MAX_REFERENCE_LENGTH`, which size the
/// on-device sequence buffers and traceback memory.
///
/// # Example
///
/// ```
/// use dphls_core::KernelConfig;
/// let cfg = KernelConfig::new(32, 16, 4).with_max_lengths(256, 256);
/// assert_eq!(cfg.total_blocks(), 64);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelConfig {
    /// Processing elements per systolic array.
    pub npe: usize,
    /// Blocks per kernel (outer-loop parallelism within a channel).
    pub nb: usize,
    /// Independent channels to the host.
    pub nk: usize,
    /// Maximum query length supported by the instance.
    pub max_query: usize,
    /// Maximum reference length supported by the instance.
    pub max_ref: usize,
    /// Fixed banding, if any.
    pub banding: Banding,
    /// Target clock frequency in MHz (paper: 250 MHz before synthesis).
    pub target_freq_mhz: f64,
}

impl KernelConfig {
    /// Creates a configuration with the paper's default 256-length buffers
    /// and 250 MHz target.
    pub fn new(npe: usize, nb: usize, nk: usize) -> Self {
        Self {
            npe,
            nb,
            nk,
            max_query: 256,
            max_ref: 256,
            banding: Banding::None,
            target_freq_mhz: 250.0,
        }
    }

    /// Sets `MAX_QUERY_LENGTH` / `MAX_REFERENCE_LENGTH`.
    pub fn with_max_lengths(mut self, max_query: usize, max_ref: usize) -> Self {
        self.max_query = max_query;
        self.max_ref = max_ref;
        self
    }

    /// Enables fixed banding with the given half-width.
    pub fn with_banding(mut self, half_width: usize) -> Self {
        self.banding = Banding::Fixed { half_width };
        self
    }

    /// Sets the synthesis target frequency in MHz.
    pub fn with_target_freq(mut self, mhz: f64) -> Self {
        self.target_freq_mhz = mhz;
        self
    }

    /// Total parallel blocks on the device (`NB × NK`).
    pub fn total_blocks(&self) -> usize {
        self.nb * self.nk
    }

    /// Number of row chunks for a query of length `q` (`⌈q / NPE⌉`).
    pub fn chunks_for(&self, q: usize) -> usize {
        q.div_ceil(self.npe)
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any field is zero, `npe` exceeds the
    /// maximum query length, or the target frequency is non-positive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.npe == 0 || self.nb == 0 || self.nk == 0 {
            return Err(ConfigError::ZeroParallelism);
        }
        if self.max_query == 0 || self.max_ref == 0 {
            return Err(ConfigError::ZeroLength);
        }
        if self.npe > self.max_query {
            return Err(ConfigError::MorePesThanRows {
                npe: self.npe,
                max_query: self.max_query,
            });
        }
        // `partial_cmp` keeps NaN invalid alongside zero and negatives.
        if self.target_freq_mhz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ConfigError::BadFrequency(self.target_freq_mhz));
        }
        Ok(())
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::new(32, 1, 1)
    }
}

impl fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NPE={} NB={} NK={} maxQ={} maxR={} @{}MHz",
            self.npe, self.nb, self.nk, self.max_query, self.max_ref, self.target_freq_mhz
        )?;
        if let Banding::Fixed { half_width } = self.banding {
            write!(f, " band={half_width}")?;
        }
        Ok(())
    }
}

/// Validation failure for a [`KernelConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// One of NPE/NB/NK is zero.
    ZeroParallelism,
    /// A maximum sequence length is zero.
    ZeroLength,
    /// More PEs than rows the instance can ever process.
    MorePesThanRows {
        /// Configured PE count.
        npe: usize,
        /// Configured maximum query length.
        max_query: usize,
    },
    /// Target frequency not positive.
    BadFrequency(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroParallelism => write!(f, "NPE, NB, and NK must all be non-zero"),
            ConfigError::ZeroLength => write!(f, "maximum sequence lengths must be non-zero"),
            ConfigError::MorePesThanRows { npe, max_query } => write!(
                f,
                "NPE ({npe}) exceeds the maximum query length ({max_query})"
            ),
            ConfigError::BadFrequency(mhz) => write!(f, "target frequency {mhz} MHz is invalid"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banding_none_contains_everything() {
        assert!(Banding::None.contains(1, 1000));
        assert_eq!(Banding::None.cells_in_row(5, 100), 100);
    }

    #[test]
    fn fixed_banding_contains() {
        let b = Banding::Fixed { half_width: 2 };
        assert!(b.contains(5, 5));
        assert!(b.contains(5, 7));
        assert!(!b.contains(5, 8));
        assert!(b.contains(7, 5));
        assert!(!b.contains(8, 5));
    }

    #[test]
    fn fixed_banding_cells_in_row() {
        let b = Banding::Fixed { half_width: 2 };
        // row 1 of a 10-col matrix: cols 1..=3
        assert_eq!(b.cells_in_row(1, 10), 3);
        // middle row: full band 2w+1
        assert_eq!(b.cells_in_row(5, 10), 5);
        // near the right edge: clipped
        assert_eq!(b.cells_in_row(10, 10), 3);
        // band entirely off the matrix
        assert_eq!(b.cells_in_row(20, 10), 0);
    }

    #[test]
    fn config_accessors() {
        let cfg = KernelConfig::new(64, 16, 4);
        assert_eq!(cfg.total_blocks(), 64);
        assert_eq!(cfg.chunks_for(256), 4);
        assert_eq!(cfg.chunks_for(257), 5);
        assert_eq!(cfg.chunks_for(1), 1);
    }

    #[test]
    fn validation_catches_errors() {
        assert_eq!(
            KernelConfig::new(0, 1, 1).validate(),
            Err(ConfigError::ZeroParallelism)
        );
        assert!(KernelConfig::new(32, 1, 1)
            .with_max_lengths(16, 256)
            .validate()
            .is_err());
        assert!(KernelConfig::new(32, 1, 1)
            .with_target_freq(0.0)
            .validate()
            .is_err());
        assert!(KernelConfig::new(32, 1, 1).validate().is_ok());
    }

    #[test]
    fn display_mentions_band() {
        let cfg = KernelConfig::new(16, 2, 1).with_banding(32);
        let s = cfg.to_string();
        assert!(s.contains("NPE=16"));
        assert!(s.contains("band=32"));
    }

    #[test]
    fn default_matches_paper_defaults() {
        let cfg = KernelConfig::default();
        assert_eq!(cfg.npe, 32);
        assert_eq!(cfg.max_query, 256);
        assert_eq!(cfg.target_freq_mhz, 250.0);
    }
}
