//! Operator-count instrumentation for the FPGA resource model.
//!
//! The `dphls-fpga` crate estimates LUT/FF/DSP usage from the *structure* of
//! each kernel's PE function, the way HLS synthesis would. Rather than asking
//! kernel authors to declare their operator mix (which would drift from the
//! code), the mix is **measured**: the kernel's real `pe()` is executed once
//! with [`CountingScore`], a [`Score`] wrapper that increments thread-local
//! counters on every arithmetic operation and tracks the longest dependency
//! chain (a critical-path proxy for the frequency model).

use crate::score::Score;
use std::cell::RefCell;
use std::fmt;

/// Operator counts for one PE-function invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Saturating adders (`add` + `sub`).
    pub adds: u64,
    /// Multipliers (DSP candidates).
    pub muls: u64,
    /// Comparator+mux pairs (`max_with` / `min_with`).
    pub cmps: u64,
    /// Longest dependency chain through the recurrence, in weighted levels
    /// (add/cmp = 1 level, mul = 3 levels).
    pub depth: u32,
}

impl OpCounts {
    /// Total counted operators.
    pub fn total(&self) -> u64 {
        self.adds + self.muls + self.cmps
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adds={} muls={} cmps={} depth={}",
            self.adds, self.muls, self.cmps, self.depth
        )
    }
}

thread_local! {
    static COUNTER: RefCell<OpCounts> = RefCell::new(OpCounts::default());
}

fn record(f: impl FnOnce(&mut OpCounts)) {
    COUNTER.with(|c| f(&mut c.borrow_mut()));
}

/// Resets the thread-local counter and runs `f`, returning its result plus
/// the operators counted during the call.
///
/// # Example
///
/// ```
/// use dphls_core::instrument::{count_ops, CountingScore};
/// use dphls_core::Score;
/// let (_, counts) = count_ops(|| {
///     let a = CountingScore::wrap(1i32);
///     let b = CountingScore::wrap(2i32);
///     a.add(b).max_with(CountingScore::wrap(0)).0
/// });
/// assert_eq!(counts.adds, 1);
/// assert_eq!(counts.cmps, 1);
/// assert_eq!(counts.depth, 2); // add feeding a comparator
/// ```
pub fn count_ops<T>(f: impl FnOnce() -> T) -> (T, OpCounts) {
    COUNTER.with(|c| *c.borrow_mut() = OpCounts::default());
    let out = f();
    let counts = COUNTER.with(|c| *c.borrow());
    (out, counts)
}

/// A [`Score`] wrapper that counts operators and tracks dependency depth.
///
/// Each value carries the length of the operator chain that produced it;
/// binary operations take `max(depth_lhs, depth_rhs) + cost`, and the
/// thread-local counter remembers the maximum depth ever produced.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct CountingScore<S> {
    value: S,
    depth: u32,
}

impl<S: Score> CountingScore<S> {
    /// Wraps a value with zero depth (an input register).
    pub fn wrap(value: S) -> Self {
        Self { value, depth: 0 }
    }

    /// The wrapped value.
    pub fn value(self) -> S {
        self.value
    }

    fn derived(value: S, depth: u32) -> Self {
        record(|c| c.depth = c.depth.max(depth));
        Self { value, depth }
    }
}

impl<S: Score> Score for CountingScore<S> {
    const BITS: u32 = S::BITS;

    fn zero() -> Self {
        Self::wrap(S::zero())
    }
    fn neg_inf() -> Self {
        Self::wrap(S::neg_inf())
    }
    fn pos_inf() -> Self {
        Self::wrap(S::pos_inf())
    }
    fn from_i32(v: i32) -> Self {
        Self::wrap(S::from_i32(v))
    }
    fn from_f64(v: f64) -> Self {
        Self::wrap(S::from_f64(v))
    }
    fn to_f64(self) -> f64 {
        self.value.to_f64()
    }
    fn add(self, rhs: Self) -> Self {
        record(|c| c.adds += 1);
        Self::derived(self.value.add(rhs.value), self.depth.max(rhs.depth) + 1)
    }
    fn sub(self, rhs: Self) -> Self {
        record(|c| c.adds += 1);
        Self::derived(self.value.sub(rhs.value), self.depth.max(rhs.depth) + 1)
    }
    fn mul(self, rhs: Self) -> Self {
        record(|c| c.muls += 1);
        Self::derived(self.value.mul(rhs.value), self.depth.max(rhs.depth) + 3)
    }
    fn max_with(self, rhs: Self) -> (Self, bool) {
        record(|c| c.cmps += 1);
        let (v, rhs_won) = self.value.max_with(rhs.value);
        (Self::derived(v, self.depth.max(rhs.depth) + 1), rhs_won)
    }
    fn min_with(self, rhs: Self) -> (Self, bool) {
        record(|c| c.cmps += 1);
        let (v, rhs_won) = self.value.min_with(rhs.value);
        (Self::derived(v, self.depth.max(rhs.depth) + 1), rhs_won)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{argmax, argmin};

    type C = CountingScore<i32>;

    #[test]
    fn counts_adds_and_muls() {
        let (_, c) = count_ops(|| {
            let a = C::from_i32(2);
            let b = C::from_i32(3);
            let s = a.add(b); // 1 add, depth 1
            let p = s.mul(b); // 1 mul, depth 4
            p.sub(a) // 1 add, depth 5
        });
        assert_eq!(c.adds, 2);
        assert_eq!(c.muls, 1);
        assert_eq!(c.cmps, 0);
        assert_eq!(c.depth, 5);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn depth_takes_longest_path() {
        let (_, c) = count_ops(|| {
            let a = C::from_i32(1);
            let deep = a.add(a).add(a).add(a); // depth 3
            let shallow = a.add(a); // depth 1
            deep.max_with(shallow).0 // depth 4
        });
        assert_eq!(c.depth, 4);
        assert_eq!(c.cmps, 1);
    }

    #[test]
    fn values_stay_correct_under_counting() {
        let ((v, tag), c) = count_ops(|| {
            argmax([
                (C::from_i32(3), 0u8),
                (C::from_i32(9), 1),
                (C::from_i32(5), 2),
            ])
        });
        assert_eq!(v.value(), 9);
        assert_eq!(tag, 1);
        assert_eq!(c.cmps, 2);
    }

    #[test]
    fn argmin_counts_too() {
        let ((v, _), c) = count_ops(|| argmin([(C::from_i32(3), 0u8), (C::from_i32(1), 1)]));
        assert_eq!(v.value(), 1);
        assert_eq!(c.cmps, 1);
    }

    #[test]
    fn counter_resets_between_measurements() {
        let (_, c1) = count_ops(|| C::from_i32(1).add(C::from_i32(2)));
        let (_, c2) = count_ops(|| C::from_i32(1));
        assert_eq!(c1.adds, 1);
        assert_eq!(c2.adds, 0);
        assert_eq!(c2.depth, 0);
    }

    #[test]
    fn display_format() {
        let c = OpCounts {
            adds: 1,
            muls: 2,
            cmps: 3,
            depth: 4,
        };
        assert_eq!(c.to_string(), "adds=1 muls=2 cmps=3 depth=4");
    }

    #[test]
    fn counting_preserves_sentinels() {
        assert_eq!(C::neg_inf().value(), <i32 as Score>::neg_inf());
        assert_eq!(C::pos_inf().value(), <i32 as Score>::pos_inf());
        assert_eq!(C::zero().value(), 0);
        assert_eq!(C::from_f64(2.0).value(), 2);
    }
}
