//! The [`KernelSpec`] trait — the front-end contract every 2-D DP kernel
//! implements (paper §4).

use crate::score::Score;
use crate::traceback::{TbMove, TbPtr, TbState, TracebackSpec};
use dphls_seq::Symbol;
use std::fmt;

/// Maximum number of scoring layers any kernel may use.
///
/// The paper's deepest kernel is the two-piece affine family
/// (#5, #13) with `N_LAYERS = 5` (H, I, D, I', D').
pub const MAX_LAYERS: usize = 5;

/// The per-cell score vector: one value per scoring layer (`N_LAYERS` values
/// stored per DP-matrix cell, paper §4 step 2).
///
/// Layer 0 is always the primary (`H`) layer whose value is reported as the
/// cell score; additional layers carry gap-state values (`I`, `D`, …).
///
/// # Example
///
/// ```
/// use dphls_core::LayerVec;
/// let mut v = LayerVec::splat(3, -1i32);
/// v.set(0, 7);
/// assert_eq!(v.get(0), 7);
/// assert_eq!(v.get(2), -1);
/// assert_eq!(v.len(), 3);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct LayerVec<S> {
    vals: [S; MAX_LAYERS],
    len: usize,
}

impl<S: Score> LayerVec<S> {
    /// Creates a vector of `len` layers, all set to `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or exceeds [`MAX_LAYERS`].
    pub fn splat(len: usize, fill: S) -> Self {
        assert!((1..=MAX_LAYERS).contains(&len), "layer count must be 1..=5");
        Self {
            vals: [fill; MAX_LAYERS],
            len,
        }
    }

    /// Creates from a slice (length = layer count).
    ///
    /// # Panics
    ///
    /// Panics if `vals` is empty or longer than [`MAX_LAYERS`].
    pub fn from_slice(vals: &[S]) -> Self {
        let mut v = Self::splat(vals.len(), vals[0]);
        for (i, &x) in vals.iter().enumerate() {
            v.vals[i] = x;
        }
        v
    }

    /// Number of layers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false (layer vectors are non-empty by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Value of layer `i`.
    ///
    /// `i` must be below [`LayerVec::len`]. The engines guarantee in-range
    /// layer indices, so the bound is checked with `debug_assert!` only:
    /// debug builds panic on violation, release builds return the backing
    /// slot (the vector is always [`MAX_LAYERS`] wide, so no memory
    /// unsafety — just a meaningless value).
    #[inline]
    pub fn get(&self, i: usize) -> S {
        debug_assert!(i < self.len, "layer index out of range");
        self.vals[i]
    }

    /// Sets layer `i`.
    ///
    /// `i` must be below [`LayerVec::len`]; like [`LayerVec::get`] the
    /// bound is a `debug_assert!` (debug builds panic, release builds
    /// write a slot the live layers never read).
    #[inline]
    pub fn set(&mut self, i: usize, v: S) {
        debug_assert!(i < self.len, "layer index out of range");
        self.vals[i] = v;
    }

    /// The primary (H) layer value.
    #[inline]
    pub fn primary(&self) -> S {
        self.vals[0]
    }

    /// View of the live layers.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.vals[..self.len]
    }
}

impl<S: fmt::Debug> fmt::Debug for LayerVec<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.vals[..self.len].iter())
            .finish()
    }
}

/// Whether a kernel searches for the maximum or minimum cell score
/// (paper §2.2.2d: DTW replaces `max` with `min`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Higher scores are better (alignment kernels).
    Maximize,
    /// Lower scores are better (DTW-family kernels).
    Minimize,
}

impl Objective {
    /// Whether `a` is strictly better than `b` under this objective.
    #[inline]
    pub fn better<S: Score>(self, a: S, b: S) -> bool {
        match self {
            Objective::Maximize => a > b,
            Objective::Minimize => a < b,
        }
    }

    /// The worst possible value (the identity of the objective's reduction).
    #[inline]
    pub fn worst<S: Score>(self) -> S {
        match self {
            Objective::Maximize => S::neg_inf(),
            Objective::Minimize => S::pos_inf(),
        }
    }
}

/// Table 1 kernel identity (1..=15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub u8);

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Static description of a kernel: everything the back-end and the resource
/// model need besides the recurrence itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMeta {
    /// Table 1 index.
    pub id: KernelId,
    /// Human-readable name, e.g. `"Global Linear (Needleman-Wunsch)"`.
    pub name: &'static str,
    /// `N_LAYERS`: values stored per DP cell (paper §4 step 2).
    pub n_layers: usize,
    /// Width of the stored traceback pointer in bits (`tb_t`).
    pub tb_bits: u32,
    /// Max or min objective.
    pub objective: Objective,
    /// Traceback strategy (best-cell rule + walk kind).
    pub traceback: TracebackSpec,
}

/// One `(query, reference)` pair of a batch workload for kernel `K`.
///
/// Shared by the device driver, the host scheduler, and the experiment
/// harness so workload signatures stay readable.
pub type SeqPair<K> = (Vec<<K as KernelSpec>::Sym>, Vec<<K as KernelSpec>::Sym>);

/// A 2-D DP kernel specification — the DP-HLS front-end contract.
///
/// Implementations are zero-sized types; all state lives in `Params`
/// (the paper's `ScoringParams`, set at runtime by the host).
///
/// The back-end promises `pe` is called exactly once per in-band cell, with
/// neighbor vectors already populated (out-of-band or out-of-matrix
/// neighbors carry `objective.worst()` in every layer, so recurrences never
/// select them).
pub trait KernelSpec {
    /// The sequence symbol type (`char_t`).
    type Sym: Symbol;
    /// The score type (`type_t`).
    type Score: Score;
    /// Runtime scoring parameters (`ScoringParams`).
    type Params: Clone + Send + Sync + 'static;

    /// Static kernel description.
    fn meta() -> KernelMeta;

    /// Score of boundary cell `(0, j)`, `j ∈ 0..=R` (paper Listing 4).
    fn init_row(params: &Self::Params, j: usize) -> LayerVec<Self::Score>;

    /// Score of boundary cell `(i, 0)`, `i ∈ 1..=Q`.
    fn init_col(params: &Self::Params, i: usize) -> LayerVec<Self::Score>;

    /// The PE function (paper Listings 5–6): computes the score vector and
    /// traceback pointer of cell `(i, j)` from its three neighbors and the
    /// local query/reference symbols.
    fn pe(
        params: &Self::Params,
        q: Self::Sym,
        r: Self::Sym,
        diag: &LayerVec<Self::Score>,
        up: &LayerVec<Self::Score>,
        left: &LayerVec<Self::Score>,
    ) -> (LayerVec<Self::Score>, TbPtr);

    /// The traceback FSM transition (paper Listing 7): maps the current
    /// state and the stored pointer of the current cell to the next state
    /// and the move to perform.
    ///
    /// Kernels without traceback may leave the default (stop immediately).
    fn tb_step(_state: TbState, _ptr: TbPtr) -> (TbState, TbMove) {
        (TbState(0), TbMove::Stop)
    }

    /// The FSM start state (defaults to `MM` = state 0).
    fn tb_start_state() -> TbState {
        TbState(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_vec_accessors() {
        let mut v = LayerVec::splat(5, 0i16);
        for i in 0..5 {
            v.set(i, i as i16);
        }
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.primary(), 0);
        assert_eq!(LayerVec::from_slice(&[7i16, 8]).get(1), 8);
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn layer_vec_rejects_zero_layers() {
        LayerVec::<i16>::splat(0, 0);
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn layer_vec_rejects_six_layers() {
        LayerVec::<i16>::splat(6, 0);
    }

    // The bounds check moved to `debug_assert!` (the engines guarantee
    // in-range indices), so the panic is a debug-build behavior only.
    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)]
    fn layer_vec_get_bounds() {
        LayerVec::<i16>::splat(2, 0).get(2);
    }

    #[test]
    fn objective_better() {
        assert!(Objective::Maximize.better(3i32, 2));
        assert!(!Objective::Maximize.better(2i32, 2));
        assert!(Objective::Minimize.better(1i32, 2));
        assert_eq!(
            Objective::Maximize.worst::<i32>(),
            <i32 as Score>::neg_inf()
        );
        assert_eq!(
            Objective::Minimize.worst::<i32>(),
            <i32 as Score>::pos_inf()
        );
    }

    #[test]
    fn kernel_id_displays_like_paper() {
        assert_eq!(KernelId(7).to_string(), "#7");
    }

    #[test]
    fn layer_vec_debug_lists_values() {
        let v = LayerVec::from_slice(&[1i16, 2]);
        assert_eq!(format!("{v:?}"), "[1, 2]");
    }
}
