//! Multi-lane (SIMD-style) PE evaluation: the [`LaneKernel`] trait.
//!
//! The systolic back-end's wavefront inner loop is data-parallel across the
//! active PE lanes — the cells of one anti-diagonal have no dependencies on
//! each other, only on the two previous wavefronts. [`KernelSpec::pe`]
//! scores one cell per call, which forces the engine through a function
//! call, three [`LayerVec`] copies, and branchy `argmax` selection per cell.
//! [`LaneKernel::pe_lanes`] scores up to [`LANE_WIDTH`] *consecutive* lanes
//! of one wavefront in a single call, so kernels can lay their recurrence
//! out structure-of-arrays over fixed-width chunks: straight-line saturating
//! adds and compare/select chains over `[S; LANE_WIDTH]` arrays that LLVM
//! turns into vector instructions (`vpaddsw`/`vpmaxsw`-class code for the
//! `i16` alignment kernels) with no `portable_simd` / nightly dependency.
//!
//! The trait carries a **scalar fallback**: the default `pe_lanes` body just
//! loops [`KernelSpec::pe`] over the lanes, so every kernel gets a correct
//! (if unvectorized) lane implementation for free and the back-end can
//! require `K: LaneKernel` unconditionally. Kernels that override the
//! default (the linear and affine families in `dphls-kernels`) must stay
//! **bit-identical** to the scalar path — same saturating
//! [`Score`](crate::score::Score) ops,
//! same candidate order and strict-improvement tie-breaks as
//! [`crate::score::argmax`] — which the lane-vs-scalar property suite
//! enforces across scores *and* traceback pointers.

use crate::kernel::{KernelSpec, LayerVec};
use crate::traceback::TbPtr;

/// Number of wavefront lanes one [`LaneKernel::pe_lanes`] call scores.
///
/// Eight lanes of `i16` scores fill a 128-bit vector register — wide enough
/// to saturate SSE2/NEON and to give AVX2 two chunks of useful work, narrow
/// enough that the band-clipped wavefronts of short-read workloads (band
/// half-width 8–32) still fill whole chunks.
pub const LANE_WIDTH: usize = 8;

/// A kernel that can score a contiguous run of wavefront lanes per call.
///
/// # Lane geometry
///
/// Lane `t` of a call scores DP cell `(i₀ + t, j₀ − t)` — consecutive lanes
/// walk *down* the anti-diagonal, so query symbols advance forward while
/// reference symbols advance backward. The engine passes:
///
/// * `q`: `n` query symbols, lane `t` reads `q[t]`;
/// * `r_rev`: `n` reference symbols **in memory order** (a plain subslice of
///   the reference), lane `t` reads `r_rev[n − 1 − t]`;
/// * `diag`/`up`/`left`: `n` neighbor vectors each, lane `t` reads index `t`;
/// * `out`/`ptrs`: `n` output slots, lane `t` writes index `t`.
///
/// All seven slices have the same length `n`, with `1 ≤ n ≤ LANE_WIDTH`.
/// The engine guarantees every lane is in-band and in-matrix and that the
/// neighbor vectors are already populated — the same contract as
/// [`KernelSpec::pe`], widened.
pub trait LaneKernel: KernelSpec {
    /// Scores `q.len()` consecutive lanes of one wavefront.
    ///
    /// The default implementation is the scalar fallback: one
    /// [`KernelSpec::pe`] call per lane. Overrides must produce bit-identical
    /// scores and traceback pointers.
    ///
    /// The eight parameters mirror the hardware port list (three neighbor
    /// streams, two symbol streams, two result streams) — grouping them
    /// into a struct would only add a copy to the hot path.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn pe_lanes(
        params: &Self::Params,
        q: &[Self::Sym],
        r_rev: &[Self::Sym],
        diag: &[LayerVec<Self::Score>],
        up: &[LayerVec<Self::Score>],
        left: &[LayerVec<Self::Score>],
        out: &mut [LayerVec<Self::Score>],
        ptrs: &mut [TbPtr],
    ) {
        let n = q.len();
        debug_assert!(
            (1..=LANE_WIDTH).contains(&n),
            "lane call must score 1..=LANE_WIDTH cells"
        );
        debug_assert!(
            r_rev.len() == n
                && diag.len() == n
                && up.len() == n
                && left.len() == n
                && out.len() == n
                && ptrs.len() == n,
            "lane slices must agree on the lane count"
        );
        for t in 0..n {
            let (o, p) = Self::pe(params, q[t], r_rev[n - 1 - t], &diag[t], &up[t], &left[t]);
            out[t] = o;
            ptrs[t] = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelId, KernelMeta, Objective};
    use crate::score::{argmax, Score};
    use crate::traceback::TracebackSpec;

    /// A toy one-layer kernel relying entirely on the scalar fallback.
    struct Fallback;

    impl KernelSpec for Fallback {
        type Sym = i16;
        type Score = i32;
        type Params = ();

        fn meta() -> KernelMeta {
            KernelMeta {
                id: KernelId(1),
                name: "fallback",
                n_layers: 1,
                tb_bits: 2,
                objective: Objective::Maximize,
                traceback: TracebackSpec::global(),
            }
        }

        fn init_row(_: &(), j: usize) -> LayerVec<i32> {
            LayerVec::splat(1, -(j as i32))
        }

        fn init_col(_: &(), i: usize) -> LayerVec<i32> {
            LayerVec::splat(1, -(i as i32))
        }

        fn pe(
            _: &(),
            q: i16,
            r: i16,
            diag: &LayerVec<i32>,
            up: &LayerVec<i32>,
            left: &LayerVec<i32>,
        ) -> (LayerVec<i32>, TbPtr) {
            let sub = if q == r { 1 } else { -1 };
            let (best, ptr) = argmax([
                (diag.primary().add(sub), TbPtr::DIAG),
                (up.primary().add(-1), TbPtr::UP),
                (left.primary().add(-1), TbPtr::LEFT),
            ]);
            (LayerVec::splat(1, best), ptr)
        }
    }

    impl LaneKernel for Fallback {}

    #[test]
    fn fallback_matches_per_cell_pe() {
        let q = [1i16, 2, 3, 4];
        let r_rev = [4i16, 3, 2, 1]; // lane t reads r_rev[n-1-t] = t+1
        let mk = |vals: [i32; 4]| vals.map(|v| LayerVec::splat(1, v));
        let diag = mk([0, 1, 2, 3]);
        let up = mk([5, 4, 3, 2]);
        let left = mk([1, 1, 1, 1]);
        let mut out = [LayerVec::splat(1, 0i32); 4];
        let mut ptrs = [TbPtr::END; 4];
        Fallback::pe_lanes(&(), &q, &r_rev, &diag, &up, &left, &mut out, &mut ptrs);
        for t in 0..4 {
            let (want, wptr) = Fallback::pe(&(), q[t], r_rev[3 - t], &diag[t], &up[t], &left[t]);
            assert_eq!(out[t], want, "lane {t}");
            assert_eq!(ptrs[t], wptr, "lane {t}");
        }
    }

    #[test]
    fn lane_width_fits_a_vector_register() {
        assert_eq!(LANE_WIDTH * 16, 128); // 8 × i16 = one 128-bit register
    }
}
