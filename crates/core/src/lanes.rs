//! Multi-lane (SIMD-style) PE evaluation: the [`LaneKernel`] trait.
//!
//! The systolic back-end's wavefront inner loop is data-parallel across the
//! active PE lanes — the cells of one anti-diagonal have no dependencies on
//! each other, only on the two previous wavefronts. [`KernelSpec::pe`]
//! scores one cell per call, which forces the engine through a function
//! call, three [`LayerVec`] copies, and branchy `argmax` selection per cell.
//! [`LaneKernel::pe_lanes`] scores up to [`LANE_WIDTH`] *consecutive* lanes
//! of one wavefront in a single call, so kernels can lay their recurrence
//! out structure-of-arrays over fixed-width chunks: straight-line saturating
//! adds and compare/select chains over `[S; LANE_WIDTH]` arrays that LLVM
//! turns into vector instructions (`vpaddsw`/`vpmaxsw`-class code for the
//! `i16` alignment kernels) with no `portable_simd` / nightly dependency.
//!
//! The trait carries a **scalar fallback**: the default `pe_lanes` body just
//! loops [`KernelSpec::pe`] over the lanes, so every kernel gets a correct
//! (if unvectorized) lane implementation for free and the back-end can
//! require `K: LaneKernel` unconditionally. Kernels that override the
//! default (the linear and affine families in `dphls-kernels`) must stay
//! **bit-identical** to the scalar path — same saturating
//! [`Score`] ops,
//! same candidate order and strict-improvement tie-breaks as
//! [`crate::score::argmax`] — which the lane-vs-scalar property suite
//! enforces across scores *and* traceback pointers.

use crate::kernel::{KernelSpec, LayerVec};
use crate::score::Score;
use crate::traceback::TbPtr;

/// Number of wavefront lanes one [`LaneKernel::pe_lanes`] call scores at the
/// default (exact, `i16`) precision.
///
/// Eight lanes of `i16` scores fill a 128-bit vector register — wide enough
/// to saturate SSE2/NEON and to give AVX2 two chunks of useful work, narrow
/// enough that the band-clipped wavefronts of short-read workloads (band
/// half-width 8–32) still fill whole chunks.
pub const LANE_WIDTH: usize = 8;

/// The narrow `i8` fast-path lane width: 16 × `i8` fills the same 128-bit
/// register [`LANE_WIDTH`] fills with `i16`, halving the `pe_lanes` calls
/// per wavefront.
pub const I8_LANES_NARROW: usize = 16;

/// The wide `i8` fast-path lane width: 32 × `i8` fills a 256-bit (AVX2)
/// register, quartering the `pe_lanes` calls per wavefront.
pub const I8_LANES_WIDE: usize = 32;

/// Largest per-candidate score step (match/mismatch/gap parameter magnitude)
/// the `i8` fast path admits.
///
/// The escalation guard band ([`crate::score::I8_GUARD_MIN`]) is sound only
/// when one selection candidate moves a score by at most this much: a
/// candidate derived from the narrow `neg_inf` sentinel (−64) then lands at
/// `−64 + 32 = −32` or below, inside the band, so a clean (non-escalated)
/// run provably never selected one. Parameter sets exceeding this magnitude
/// are rejected by the `narrow_i8` conversions and run the exact path.
pub const I8_PARAM_LIMIT: i16 = 32;

/// Runtime choice of `i8` fast-path lane width — the value the host layers
/// thread through to pick the monomorphized engine instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum I8Lanes {
    /// 16 lanes (one 128-bit register of `i8`).
    #[default]
    X16,
    /// 32 lanes (one 256-bit register of `i8`).
    X32,
}

impl I8Lanes {
    /// The lane count this variant selects.
    pub fn width(self) -> usize {
        match self {
            I8Lanes::X16 => I8_LANES_NARROW,
            I8Lanes::X32 => I8_LANES_WIDE,
        }
    }
}

/// Runtime precision selection for the host engines: score every pair at the
/// kernel's native precision, or try the saturating-`i8` fast path first and
/// escalate dirty pairs. Results are bit-identical either way; only the
/// wall-clock changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LanePrecision {
    /// The exact path: [`LANE_WIDTH`] lanes at the kernel's score type.
    #[default]
    Exact,
    /// The adaptive path: saturating `i8` at the given width, with exact
    /// re-runs for pairs that trip the escalation guard.
    Adaptive(I8Lanes),
}

/// A kernel that can score a contiguous run of wavefront lanes per call.
///
/// `LANES` is the chunk width of one `pe_lanes` call. It defaults to
/// [`LANE_WIDTH`], so `K: LaneKernel` (and every existing bound in the
/// engines) keeps meaning the 8-lane exact path; the adaptive `i8` path
/// instantiates the same kernels at [`I8_LANES_NARROW`] / [`I8_LANES_WIDE`].
///
/// # Lane geometry
///
/// Lane `t` of a call scores DP cell `(i₀ + t, j₀ − t)` — consecutive lanes
/// walk *down* the anti-diagonal, so query symbols advance forward while
/// reference symbols advance backward. The engine passes:
///
/// * `q`: `n` query symbols, lane `t` reads `q[t]`;
/// * `r_rev`: `n` reference symbols **in memory order** (a plain subslice of
///   the reference), lane `t` reads `r_rev[n − 1 − t]`;
/// * `diag`/`up`/`left`: `n` neighbor vectors each, lane `t` reads index `t`;
/// * `out`/`ptrs`: `n` output slots, lane `t` writes index `t`.
///
/// All seven slices have the same length `n`, with `1 ≤ n ≤ LANES`.
/// The engine guarantees every lane is in-band and in-matrix and that the
/// neighbor vectors are already populated — the same contract as
/// [`KernelSpec::pe`], widened.
pub trait LaneKernel<const LANES: usize = { LANE_WIDTH }>: KernelSpec {
    /// Scores `q.len()` consecutive lanes of one wavefront.
    ///
    /// The default implementation is the scalar fallback: one
    /// [`KernelSpec::pe`] call per lane. Overrides must produce bit-identical
    /// scores and traceback pointers.
    ///
    /// The eight parameters mirror the hardware port list (three neighbor
    /// streams, two symbol streams, two result streams) — grouping them
    /// into a struct would only add a copy to the hot path.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn pe_lanes(
        params: &Self::Params,
        q: &[Self::Sym],
        r_rev: &[Self::Sym],
        diag: &[LayerVec<Self::Score>],
        up: &[LayerVec<Self::Score>],
        left: &[LayerVec<Self::Score>],
        out: &mut [LayerVec<Self::Score>],
        ptrs: &mut [TbPtr],
    ) {
        let n = q.len();
        debug_assert!(
            (1..=LANES).contains(&n),
            "lane call must score 1..=LANES cells"
        );
        debug_assert!(
            r_rev.len() == n
                && diag.len() == n
                && up.len() == n
                && left.len() == n
                && out.len() == n
                && ptrs.len() == n,
            "lane slices must agree on the lane count"
        );
        for t in 0..n {
            let (o, p) = Self::pe(params, q[t], r_rev[n - 1 - t], &diag[t], &up[t], &left[t]);
            out[t] = o;
            ptrs[t] = p;
        }
    }

    /// Scores `q.len()` consecutive lanes with **flat single-layer ports**:
    /// the neighbor and output streams are plain `&[Score]` slices instead of
    /// [`LayerVec`] vectors. The engine calls this (never [`Self::pe_lanes`])
    /// for kernels whose [`KernelMeta::n_layers`](crate::KernelMeta) is 1, so
    /// the wavefront buffers stay structure-of-arrays end to end: gathers and
    /// scatters become contiguous vector copies instead of per-lane strided
    /// walks over five-slot layer vectors.
    ///
    /// Returns `true` when any **real** lane's output value is inside the
    /// escalation guard band ([`Score::needs_escalation`]) — the saturation
    /// check is fused into the lane body where the scores are still in
    /// registers. Exact score types return `false` unconditionally and the
    /// whole check compiles away; padded dead lanes are never consulted (they
    /// compute garbage that must not trip the guard).
    ///
    /// The default implementation wraps the flat ports into one-layer
    /// [`LayerVec`]s and defers to [`Self::pe_lanes`], which is bit-identical
    /// for any single-layer kernel (its PE can only consult the primary
    /// layer). Multi-layer kernels must not be called through this port.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn pe_lanes_primary(
        params: &Self::Params,
        q: &[Self::Sym],
        r_rev: &[Self::Sym],
        diag: &[Self::Score],
        up: &[Self::Score],
        left: &[Self::Score],
        out: &mut [Self::Score],
        ptrs: &mut [TbPtr],
    ) -> bool {
        debug_assert_eq!(
            Self::meta().n_layers,
            1,
            "pe_lanes_primary is only defined for single-layer kernels"
        );
        let n = q.len();
        debug_assert!(
            (1..=LANES).contains(&n),
            "lane call must score 1..=LANES cells"
        );
        let fill = LayerVec::splat(1, Self::Score::zero());
        let mut dv = [fill; LANES];
        let mut uv = [fill; LANES];
        let mut lv = [fill; LANES];
        let mut ov = [fill; LANES];
        for t in 0..n {
            dv[t] = LayerVec::splat(1, diag[t]);
            uv[t] = LayerVec::splat(1, up[t]);
            lv[t] = LayerVec::splat(1, left[t]);
        }
        Self::pe_lanes(
            params,
            q,
            r_rev,
            &dv[..n],
            &uv[..n],
            &lv[..n],
            &mut ov[..n],
            ptrs,
        );
        let mut escalate = false;
        for t in 0..n {
            let o = ov[t].primary();
            out[t] = o;
            escalate |= o.needs_escalation();
        }
        escalate
    }
}

/// An exact-`i16` kernel with a saturating-`i8` companion — the dispatch
/// seam of the adaptive-precision path, placed at the kernel boundary (the
/// wavefront loop itself stays precision-oblivious).
///
/// `Lo` is the same recurrence instantiated at `Score = i8` and both fast
/// lane widths. The escalation contract: the adaptive engine scores a pair
/// with `Lo`, scanning every computed wavefront for
/// [`Score::needs_escalation`]
/// values; a clean run is **bit-identical** to the exact engine (scores,
/// traceback, best cell, stats), a dirty run is discarded and the pair
/// re-run with `Self` at `i16`. The cross-precision property suite enforces
/// this over the full kernel family.
pub trait AdaptiveKernel: LaneKernel + KernelSpec<Score = i16> {
    /// The `i8` companion kernel: same symbols, same recurrence, narrow
    /// scores, instantiable at both fast lane widths.
    type Lo: LaneKernel<{ I8_LANES_NARROW }>
        + LaneKernel<{ I8_LANES_WIDE }>
        + KernelSpec<Sym = Self::Sym, Score = i8>;

    /// Value-exact narrowing of the scoring parameters, or `None` when any
    /// magnitude exceeds [`I8_PARAM_LIMIT`] (the fast path would be unsound;
    /// the adaptive engine then escalates every pair).
    fn lo_params(params: &Self::Params) -> Option<<Self::Lo as KernelSpec>::Params>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelId, KernelMeta, Objective};
    use crate::score::{argmax, Score};
    use crate::traceback::TracebackSpec;

    /// A toy one-layer kernel relying entirely on the scalar fallback.
    struct Fallback;

    impl KernelSpec for Fallback {
        type Sym = i16;
        type Score = i32;
        type Params = ();

        fn meta() -> KernelMeta {
            KernelMeta {
                id: KernelId(1),
                name: "fallback",
                n_layers: 1,
                tb_bits: 2,
                objective: Objective::Maximize,
                traceback: TracebackSpec::global(),
            }
        }

        fn init_row(_: &(), j: usize) -> LayerVec<i32> {
            LayerVec::splat(1, -(j as i32))
        }

        fn init_col(_: &(), i: usize) -> LayerVec<i32> {
            LayerVec::splat(1, -(i as i32))
        }

        fn pe(
            _: &(),
            q: i16,
            r: i16,
            diag: &LayerVec<i32>,
            up: &LayerVec<i32>,
            left: &LayerVec<i32>,
        ) -> (LayerVec<i32>, TbPtr) {
            let sub = if q == r { 1 } else { -1 };
            let (best, ptr) = argmax([
                (diag.primary().add(sub), TbPtr::DIAG),
                (up.primary().add(-1), TbPtr::UP),
                (left.primary().add(-1), TbPtr::LEFT),
            ]);
            (LayerVec::splat(1, best), ptr)
        }
    }

    impl LaneKernel for Fallback {}
    impl LaneKernel<16> for Fallback {}

    #[test]
    fn fallback_matches_per_cell_pe() {
        let q = [1i16, 2, 3, 4];
        let r_rev = [4i16, 3, 2, 1]; // lane t reads r_rev[n-1-t] = t+1
        let mk = |vals: [i32; 4]| vals.map(|v| LayerVec::splat(1, v));
        let diag = mk([0, 1, 2, 3]);
        let up = mk([5, 4, 3, 2]);
        let left = mk([1, 1, 1, 1]);
        let mut out = [LayerVec::splat(1, 0i32); 4];
        let mut ptrs = [TbPtr::END; 4];
        <Fallback as LaneKernel>::pe_lanes(&(), &q, &r_rev, &diag, &up, &left, &mut out, &mut ptrs);
        for t in 0..4 {
            let (want, wptr) = Fallback::pe(&(), q[t], r_rev[3 - t], &diag[t], &up[t], &left[t]);
            assert_eq!(out[t], want, "lane {t}");
            assert_eq!(ptrs[t], wptr, "lane {t}");
        }
    }

    #[test]
    fn lane_width_fits_a_vector_register() {
        assert_eq!(LANE_WIDTH * 16, 128); // 8 × i16 = one 128-bit register
        assert_eq!(I8_LANES_NARROW * 8, 128); // 16 × i8 = the same register
        assert_eq!(I8_LANES_WIDE * 8, 256); // 32 × i8 = one AVX2 register
        assert_eq!(I8Lanes::X16.width(), I8_LANES_NARROW);
        assert_eq!(I8Lanes::X32.width(), I8_LANES_WIDE);
        assert_eq!(LanePrecision::default(), LanePrecision::Exact);
    }

    /// The scalar fallback is width-generic: the same kernel type scores
    /// wider chunks when bound at a wider `LANES`.
    #[test]
    fn fallback_scores_wide_chunks() {
        let q: Vec<i16> = (0..12).collect();
        let r_rev: Vec<i16> = (0..12).rev().collect();
        let mk = |n: usize| vec![LayerVec::splat(1, 0i32); n];
        let (diag, up, left) = (mk(12), mk(12), mk(12));
        let mut out = mk(12);
        let mut ptrs = vec![TbPtr::END; 12];
        <Fallback as LaneKernel<16>>::pe_lanes(
            &(),
            &q,
            &r_rev,
            &diag,
            &up,
            &left,
            &mut out,
            &mut ptrs,
        );
        for t in 0..12 {
            let (want, wptr) = Fallback::pe(&(), q[t], r_rev[11 - t], &diag[t], &up[t], &left[t]);
            assert_eq!(out[t], want, "lane {t}");
            assert_eq!(ptrs[t], wptr, "lane {t}");
        }
    }
}
