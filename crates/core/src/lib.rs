//! The DP-HLS **front-end**: everything a user touches to define a new 2-D DP
//! kernel, mirroring §4 of the paper.
//!
//! A kernel in DP-HLS is specified by six customization points (paper §4,
//! steps 1–6); this crate encodes them as the [`KernelSpec`] trait:
//!
//! 1. **Data types and parameters** — the symbol type (`char_t`), the score
//!    type [`Score`] (`type_t`), the number of scoring layers
//!    ([`kernel::KernelMeta::n_layers`], `N_LAYERS`), and an arbitrary
//!    `Params` struct (`ScoringParams`);
//! 2. **Row/column initialization** — [`KernelSpec::init_row`] /
//!    [`KernelSpec::init_col`] (`init_row_scr` / `init_col_scr`);
//! 3. **PE function** — [`KernelSpec::pe`] (`PE_func`): the recurrence for a
//!    single cell, given the `diag`/`up`/`left` neighbors and the local query
//!    and reference symbols;
//! 4. **Traceback strategy** — a start rule + FSM transition
//!    ([`KernelSpec::tb_step`], [`traceback::TracebackSpec`]);
//! 5. **Parallelism** — `(NPE, NB, NK)` in [`config::KernelConfig`]
//!    (consumed by the `dphls-systolic` back-end);
//! 6. **Host-side program** — `dphls-host`.
//!
//! The crate also contains the **reference engine** ([`mod@reference`]): a plain
//! full-matrix DP evaluator used both as the functional golden model for the
//! systolic back-end (the paper's C-simulation step) and as the basis of the
//! CPU baselines, and the **instrumentation** ([`instrument`]) that extracts
//! operator counts from a kernel's PE function for the FPGA resource model.

// Every public item of the front-end is API surface for kernel authors;
// undocumented items are a build error, and CI keeps `cargo doc` warning-free.
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod alignment;
pub mod config;
pub mod instrument;
pub mod kernel;
pub mod lanes;
pub mod reference;
pub mod score;
pub mod traceback;

pub use alignment::{Alignment, AlnOp};
pub use config::{Banding, KernelConfig};
pub use instrument::{CountingScore, OpCounts};
pub use kernel::{KernelId, KernelMeta, KernelSpec, LayerVec, Objective, SeqPair, MAX_LAYERS};
pub use lanes::{
    AdaptiveKernel, I8Lanes, LaneKernel, LanePrecision, I8_LANES_NARROW, I8_LANES_WIDE,
    I8_PARAM_LIMIT, LANE_WIDTH,
};
pub use reference::{run_reference, run_reference_full, DpOutput};
pub use score::{Score, I8_GUARD_MAX, I8_GUARD_MIN};
pub use traceback::{BestCellRule, TbMove, TbPtr, TbState, TracebackSpec, WalkKind};
