//! The reference DP engine: a plain full-matrix evaluation of a
//! [`KernelSpec`], used as the golden model for the systolic back-end
//! (the paper's C-simulation verification step) and as the core of the CPU
//! baselines.

use crate::alignment::{Alignment, AlnOp};
use crate::config::Banding;
use crate::kernel::{KernelSpec, LayerVec, Objective};
use crate::score::Score;
use crate::traceback::{BestCellRule, TbMove, TbPtr, WalkKind};

/// Result of evaluating a kernel on one sequence pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DpOutput<S> {
    /// Best score per the kernel's [`BestCellRule`] (layer 0).
    pub best_score: S,
    /// Cell `(i, j)` holding the best score (the traceback start).
    pub best_cell: (usize, usize),
    /// The traceback path, for kernels that perform one.
    pub alignment: Option<Alignment>,
    /// Number of interior cells actually computed (banding ablations).
    pub cells_computed: u64,
}

/// Deterministic best-cell tracker shared by the reference and systolic
/// engines so both resolve score ties identically: better score wins; equal
/// scores prefer the smaller `(i, j)` lexicographically.
#[derive(Debug, Clone)]
pub struct BestTracker<S> {
    objective: Objective,
    best: S,
    cell: (usize, usize),
    any: bool,
}

impl<S: Score> BestTracker<S> {
    /// Creates an empty tracker.
    pub fn new(objective: Objective) -> Self {
        Self {
            objective,
            best: objective.worst(),
            cell: (0, 0),
            any: false,
        }
    }

    /// Clears the tracker for reuse under a (possibly different) objective,
    /// leaving it exactly as [`BestTracker::new`] would. Lets the systolic
    /// engine's scratch arena recycle trackers across alignments without
    /// reallocating.
    pub fn reset(&mut self, objective: Objective) {
        self.objective = objective;
        self.best = objective.worst();
        self.cell = (0, 0);
        self.any = false;
    }

    /// Offers a candidate cell score.
    pub fn offer(&mut self, score: S, i: usize, j: usize) {
        let replace = !self.any
            || self.objective.better(score, self.best)
            || (score == self.best && (i, j) < self.cell);
        if replace {
            self.best = score;
            self.cell = (i, j);
            self.any = true;
        }
    }

    /// Merges another tracker (used by the systolic reduction stage).
    pub fn merge(&mut self, other: &BestTracker<S>) {
        if other.any {
            self.offer(other.best, other.cell.0, other.cell.1);
        }
    }

    /// Best (score, cell) seen so far, or the objective's worst if nothing
    /// was offered.
    pub fn best(&self) -> (S, (usize, usize)) {
        (self.best, self.cell)
    }

    /// Whether any cell was offered.
    pub fn is_populated(&self) -> bool {
        self.any
    }
}

/// A filled DP matrix exposed for tests and debugging.
#[derive(Debug, Clone)]
pub struct Matrix<S> {
    q: usize,
    r: usize,
    cells: Vec<LayerVec<S>>,
    tb: Vec<TbPtr>,
}

impl<S: Score> Matrix<S> {
    /// Score vector of cell `(i, j)` (`0..=Q`, `0..=R`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn cell(&self, i: usize, j: usize) -> &LayerVec<S> {
        assert!(i <= self.q && j <= self.r, "matrix index out of range");
        &self.cells[i * (self.r + 1) + j]
    }

    /// Primary-layer score of cell `(i, j)`.
    pub fn score(&self, i: usize, j: usize) -> S {
        self.cell(i, j).primary()
    }

    /// Stored traceback pointer of interior cell `(i, j)` (`1..=Q`, `1..=R`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are not interior.
    pub fn tb(&self, i: usize, j: usize) -> TbPtr {
        assert!(
            (1..=self.q).contains(&i) && (1..=self.r).contains(&j),
            "traceback pointers exist only for interior cells"
        );
        self.tb[(i - 1) * self.r + (j - 1)]
    }

    /// Query (row) count.
    pub fn query_len(&self) -> usize {
        self.q
    }

    /// Reference (column) count.
    pub fn ref_len(&self) -> usize {
        self.r
    }
}

/// Runs a kernel on one sequence pair with the reference engine.
///
/// `query` spans the matrix rows, `reference` the columns. Banding prunes
/// cells with `|i − j| > half_width`; pruned cells hold the objective's worst
/// value so the recurrence never selects them.
///
/// # Panics
///
/// Panics if either sequence is empty.
///
/// See `dphls-kernels` for concrete kernels; this is the generic driver
/// every engine and baseline shares.
pub fn run_reference<K: KernelSpec>(
    params: &K::Params,
    query: &[K::Sym],
    reference: &[K::Sym],
    banding: Banding,
) -> DpOutput<K::Score> {
    let (out, _) = run_reference_full::<K>(params, query, reference, banding);
    out
}

/// Like [`run_reference`] but also returns the filled matrix (tests).
pub fn run_reference_full<K: KernelSpec>(
    params: &K::Params,
    query: &[K::Sym],
    reference: &[K::Sym],
    banding: Banding,
) -> (DpOutput<K::Score>, Matrix<K::Score>) {
    assert!(
        !query.is_empty() && !reference.is_empty(),
        "sequences must be non-empty"
    );
    let meta = K::meta();
    let (q, r) = (query.len(), reference.len());
    let worst: LayerVec<K::Score> = LayerVec::splat(meta.n_layers, meta.objective.worst());
    let mut m = Matrix {
        q,
        r,
        cells: vec![worst; (q + 1) * (r + 1)],
        tb: vec![TbPtr::END; q * r],
    };

    // Boundary initialization (paper §4 step 2).
    for j in 0..=r {
        if banding.contains(0, j) {
            let v = K::init_row(params, j);
            debug_assert_eq!(v.len(), meta.n_layers, "init_row layer count mismatch");
            m.cells[j] = v;
        }
    }
    for i in 1..=q {
        if banding.contains(i, 0) {
            let v = K::init_col(params, i);
            debug_assert_eq!(v.len(), meta.n_layers, "init_col layer count mismatch");
            m.cells[i * (r + 1)] = v;
        }
    }

    // Matrix fill.
    let stride = r + 1;
    let mut cells_computed = 0u64;
    let mut tracker = BestTracker::new(meta.objective);
    for i in 1..=q {
        for j in 1..=r {
            if !banding.contains(i, j) {
                continue;
            }
            let diag = &m.cells[(i - 1) * stride + (j - 1)];
            let up = &m.cells[(i - 1) * stride + j];
            let left = &m.cells[i * stride + (j - 1)];
            let (out, ptr) = K::pe(params, query[i - 1], reference[j - 1], diag, up, left);
            debug_assert_eq!(out.len(), meta.n_layers, "pe layer count mismatch");
            cells_computed += 1;
            offer_if_eligible(&mut tracker, meta.traceback.best, out.primary(), i, j, q, r);
            m.cells[i * stride + j] = out;
            m.tb[(i - 1) * r + (j - 1)] = ptr;
        }
    }

    let (best_score, best_cell) = tracker.best();
    let alignment = meta
        .traceback
        .walk
        .map(|walk| walk_traceback::<K>(&|i, j| m.tb(i, j), best_cell, walk));
    (
        DpOutput {
            best_score,
            best_cell,
            alignment,
            cells_computed,
        },
        m,
    )
}

/// Offers `(score, i, j)` to the tracker if the cell is eligible under the
/// best-cell rule. Shared with the systolic engine's per-PE local trackers.
pub fn offer_if_eligible<S: Score>(
    tracker: &mut BestTracker<S>,
    rule: BestCellRule,
    score: S,
    i: usize,
    j: usize,
    q: usize,
    r: usize,
) {
    let eligible = match rule {
        BestCellRule::BottomRight => i == q && j == r,
        BestCellRule::AllCells => true,
        BestCellRule::LastRow => i == q,
        BestCellRule::LastRowOrCol => i == q || j == r,
    };
    if eligible {
        tracker.offer(score, i, j);
    }
}

/// Walks the traceback from `start` using stored pointers, applying the
/// kernel's FSM ([`KernelSpec::tb_step`]) and the walk kind's boundary/stop
/// rules (paper §2.2.3). Shared by the reference and systolic engines.
///
/// # Panics
///
/// Panics if the kernel FSM fails to make progress (a kernel bug).
pub fn walk_traceback<K: KernelSpec>(
    tb_at: &dyn Fn(usize, usize) -> TbPtr,
    start: (usize, usize),
    walk: WalkKind,
) -> Alignment {
    let mut state = K::tb_start_state();
    let (mut i, mut j) = start;
    let mut rev: Vec<AlnOp> = Vec::with_capacity(i + j);
    let max_steps = 2 * (i + j) + 4;
    let mut steps = 0usize;
    while i > 0 && j > 0 {
        steps += 1;
        assert!(steps <= max_steps, "traceback failed to make progress");
        let ptr = tb_at(i, j);
        let (next_state, mv) = K::tb_step(state, ptr);
        state = next_state;
        match mv {
            TbMove::Stop => break,
            TbMove::Diag => {
                rev.push(AlnOp::Diag);
                i -= 1;
                j -= 1;
            }
            TbMove::Up => {
                rev.push(AlnOp::Up);
                i -= 1;
            }
            TbMove::Left => {
                rev.push(AlnOp::Left);
                j -= 1;
            }
        }
    }
    // Boundary completion depends on the strategy (Fig 1's four variants).
    match walk {
        WalkKind::Global => {
            while i > 0 {
                rev.push(AlnOp::Up);
                i -= 1;
            }
            while j > 0 {
                rev.push(AlnOp::Left);
                j -= 1;
            }
        }
        WalkKind::SemiGlobal => {
            while i > 0 {
                rev.push(AlnOp::Up);
                i -= 1;
            }
        }
        WalkKind::Local | WalkKind::Overlap => {}
    }
    rev.reverse();
    Alignment::new(rev, (i, j), start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_prefers_better_then_smaller_cell() {
        let mut t = BestTracker::<i32>::new(Objective::Maximize);
        t.offer(5, 3, 3);
        t.offer(5, 2, 9); // tie, smaller i wins
        assert_eq!(t.best(), (5, (2, 9)));
        t.offer(5, 2, 4); // tie, smaller j wins
        assert_eq!(t.best(), (5, (2, 4)));
        t.offer(7, 9, 9); // better score wins regardless
        assert_eq!(t.best(), (7, (9, 9)));
        t.offer(6, 1, 1); // worse, ignored
        assert_eq!(t.best(), (7, (9, 9)));
    }

    #[test]
    fn tracker_minimize() {
        let mut t = BestTracker::<i32>::new(Objective::Minimize);
        t.offer(5, 1, 1);
        t.offer(3, 2, 2);
        t.offer(4, 3, 3);
        assert_eq!(t.best(), (3, (2, 2)));
    }

    #[test]
    fn tracker_merge_behaves_like_offers() {
        let mut a = BestTracker::<i32>::new(Objective::Maximize);
        a.offer(4, 5, 5);
        let mut b = BestTracker::<i32>::new(Objective::Maximize);
        b.offer(4, 2, 2);
        a.merge(&b);
        assert_eq!(a.best(), (4, (2, 2)));
        let empty = BestTracker::<i32>::new(Objective::Maximize);
        a.merge(&empty); // merging empty changes nothing
        assert_eq!(a.best(), (4, (2, 2)));
    }

    #[test]
    fn eligibility_rules() {
        let mk = || BestTracker::<i32>::new(Objective::Maximize);
        let mut t = mk();
        offer_if_eligible(&mut t, BestCellRule::BottomRight, 1, 3, 4, 4, 4);
        assert!(!t.is_populated());
        offer_if_eligible(&mut t, BestCellRule::BottomRight, 1, 4, 4, 4, 4);
        assert!(t.is_populated());

        let mut t = mk();
        offer_if_eligible(&mut t, BestCellRule::LastRow, 1, 3, 4, 4, 4);
        assert!(!t.is_populated());
        offer_if_eligible(&mut t, BestCellRule::LastRow, 1, 4, 1, 4, 4);
        assert!(t.is_populated());

        let mut t = mk();
        offer_if_eligible(&mut t, BestCellRule::LastRowOrCol, 1, 2, 4, 4, 4);
        assert!(t.is_populated());

        let mut t = mk();
        offer_if_eligible(&mut t, BestCellRule::AllCells, 1, 2, 2, 4, 4);
        assert!(t.is_populated());
    }
}
