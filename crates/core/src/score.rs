//! The score value abstraction (`type_t` in the paper's front-end).
//!
//! DP-HLS lets each kernel pick the precision of its scores (paper §4
//! step 1: "custom data types of variable precision for scoring"); kernels in
//! this reproduction are generic over a [`Score`] type so that the same
//! recurrence runs with
//!
//! * a plain integer (`i16`/`i32`) for the alignment kernels,
//! * a fixed-point [`dphls_fixed::ApFixed`] for DTW and Viterbi, and
//! * an instrumented [`crate::CountingScore`] wrapper that counts operators
//!   for the FPGA resource model (`dphls-fpga`).
//!
//! All arithmetic **saturates**: DP recurrences routinely add penalties to
//! "−∞" sentinels, and on the FPGA the corresponding `ap_int` datapaths are
//! sized to never wrap in the representable range.

use dphls_fixed::ApFixed;
use std::fmt;

/// A value that can flow through a DP recurrence.
///
/// Kernels must compute **only** through these methods (not through native
/// `+`/`max`), so that the instrumented wrapper sees every operator the
/// synthesized datapath would contain.
pub trait Score: Copy + fmt::Debug + PartialEq + PartialOrd + Send + Sync + 'static {
    /// Datapath width in bits (drives LUT/FF/DSP estimates).
    const BITS: u32;

    /// The additive identity.
    fn zero() -> Self;
    /// The "−∞" sentinel: worse than any reachable score under `max`,
    /// and far enough from the representable minimum that subtracting
    /// penalties cannot wrap it past a real score.
    fn neg_inf() -> Self;
    /// The "+∞" sentinel (for `min`-objective kernels such as DTW).
    fn pos_inf() -> Self;
    /// Converts a small integer parameter.
    fn from_i32(v: i32) -> Self;
    /// Converts a float parameter (used by fixed-point kernels).
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` for reporting.
    fn to_f64(self) -> f64;
    /// Saturating addition (one hardware adder).
    fn add(self, rhs: Self) -> Self;
    /// Saturating subtraction (one hardware adder).
    fn sub(self, rhs: Self) -> Self;
    /// Saturating multiplication (one hardware multiplier / DSP tile group).
    fn mul(self, rhs: Self) -> Self;
    /// Returns `(max(self, rhs), rhs_won)` — one comparator plus one mux.
    fn max_with(self, rhs: Self) -> (Self, bool);
    /// Returns `(min(self, rhs), rhs_won)` — one comparator plus one mux.
    fn min_with(self, rhs: Self) -> (Self, bool);
    /// Whether a computed cell value at this precision can no longer be
    /// trusted to match a wider-precision run bit-for-bit, so the pair must
    /// be escalated (re-run at the wider precision).
    ///
    /// Only narrow fast-path types (`i8`) override this; every exact
    /// precision returns `false` so the guard scan compiles away.
    fn needs_escalation(self) -> bool {
        false
    }
}

macro_rules! impl_score_int {
    ($t:ty, $bits:expr) => {
        impl Score for $t {
            const BITS: u32 = $bits;

            fn zero() -> Self {
                0
            }
            fn neg_inf() -> Self {
                // Half the range: headroom so sentinel - penalty never wraps.
                <$t>::MIN / 2
            }
            fn pos_inf() -> Self {
                <$t>::MAX / 2
            }
            fn from_i32(v: i32) -> Self {
                v as $t
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn add(self, rhs: Self) -> Self {
                self.saturating_add(rhs)
            }
            fn sub(self, rhs: Self) -> Self {
                self.saturating_sub(rhs)
            }
            fn mul(self, rhs: Self) -> Self {
                self.saturating_mul(rhs)
            }
            fn max_with(self, rhs: Self) -> (Self, bool) {
                if rhs > self {
                    (rhs, true)
                } else {
                    (self, false)
                }
            }
            fn min_with(self, rhs: Self) -> (Self, bool) {
                if rhs < self {
                    (rhs, true)
                } else {
                    (self, false)
                }
            }
        }
    };
}

impl_score_int!(i16, 16);
impl_score_int!(i32, 32);
impl_score_int!(i64, 64);

/// Upper edge of the `i8` guard band: any computed value at or above this
/// forces escalation. A saturating add can only produce `i8::MAX` when the
/// true sum is ≥ `i8::MAX`, so flagging the cap itself catches every upward
/// overflow at the moment it is created.
pub const I8_GUARD_MAX: i8 = i8::MAX;

/// Lower edge of the `i8` guard band: any computed value at or below this
/// forces escalation.
///
/// `−32 = MIN/4` is what makes the narrow `neg_inf` sentinel (`MIN/2 = −64`)
/// safe: every adaptive-eligible kernel steps scores by at most
/// [`crate::lanes::I8_PARAM_LIMIT`] per selection candidate, so a candidate
/// derived from a sentinel (or from a saturated boundary init, ≤ `−64`
/// either way) can reach at most `−64 + 32 = −32`. A run whose computed
/// cells all stay strictly inside `(−32, 127)` therefore never *selected* a
/// sentinel-derived or saturated candidate anywhere, which is exactly the
/// inductive condition for bit-identity with the wide engine. Flagging only
/// `i8::MIN`/`i8::MAX` would miss sentinel chains that "recover" into the
/// representable range without ever touching the rails.
pub const I8_GUARD_MIN: i8 = i8::MIN / 4;

/// The saturating-`i8` fast-path score: same recurrence semantics as the
/// other integer scores (sentinels at `MIN/2`, saturating arithmetic,
/// strict-improvement `max_with`), plus the guard-band
/// [`Score::needs_escalation`] that the adaptive engine scans every computed
/// wavefront for.
impl Score for i8 {
    const BITS: u32 = 8;

    fn zero() -> Self {
        0
    }
    fn neg_inf() -> Self {
        // Half the range: headroom so sentinel - penalty never wraps.
        i8::MIN / 2
    }
    fn pos_inf() -> Self {
        i8::MAX / 2
    }
    fn from_i32(v: i32) -> Self {
        v as i8
    }
    fn from_f64(v: f64) -> Self {
        v as i8
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
    fn max_with(self, rhs: Self) -> (Self, bool) {
        if rhs > self {
            (rhs, true)
        } else {
            (self, false)
        }
    }
    fn min_with(self, rhs: Self) -> (Self, bool) {
        if rhs < self {
            (rhs, true)
        } else {
            (self, false)
        }
    }
    fn needs_escalation(self) -> bool {
        // `I8_GUARD_MAX` is `i8::MAX` itself: a cell can only sit *at* the
        // rail (saturation may already have eaten score mass), never above.
        self == I8_GUARD_MAX || self <= I8_GUARD_MIN
    }
}

impl<const W: u32, const I: u32> Score for ApFixed<W, I> {
    const BITS: u32 = W;

    fn zero() -> Self {
        ApFixed::ZERO
    }
    fn neg_inf() -> Self {
        ApFixed::from_raw(ApFixed::<W, I>::MIN.raw() / 2)
    }
    fn pos_inf() -> Self {
        ApFixed::from_raw(ApFixed::<W, I>::MAX.raw() / 2)
    }
    fn from_i32(v: i32) -> Self {
        ApFixed::from_int(v as i64)
    }
    fn from_f64(v: f64) -> Self {
        ApFixed::from_f64(v)
    }
    fn to_f64(self) -> f64 {
        ApFixed::to_f64(self)
    }
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
    fn max_with(self, rhs: Self) -> (Self, bool) {
        if rhs > self {
            (rhs, true)
        } else {
            (self, false)
        }
    }
    fn min_with(self, rhs: Self) -> (Self, bool) {
        if rhs < self {
            (rhs, true)
        } else {
            (self, false)
        }
    }
}

/// Reduces candidates to the best (value, tag) pair under `max`, in order —
/// the paper's Listing 6 pattern ("find max cell score and traceback
/// pointer"). Later candidates win ties only if strictly greater.
///
/// # Panics
///
/// Panics if `candidates` is empty.
///
/// # Example
///
/// ```
/// use dphls_core::score::argmax;
/// let (v, tag) = argmax([(3i32, 'a'), (5, 'b'), (5, 'c')]);
/// assert_eq!((v, tag), (5, 'b'));
/// ```
pub fn argmax<S: Score, T: Copy>(candidates: impl IntoIterator<Item = (S, T)>) -> (S, T) {
    let mut it = candidates.into_iter();
    let (mut best, mut tag) = it.next().expect("argmax requires at least one candidate");
    for (v, t) in it {
        let (m, rhs_won) = best.max_with(v);
        best = m;
        if rhs_won {
            tag = t;
        }
    }
    (best, tag)
}

/// Like [`argmax`] but under `min` (DTW-family kernels).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn argmin<S: Score, T: Copy>(candidates: impl IntoIterator<Item = (S, T)>) -> (S, T) {
    let mut it = candidates.into_iter();
    let (mut best, mut tag) = it.next().expect("argmin requires at least one candidate");
    for (v, t) in it {
        let (m, rhs_won) = best.min_with(v);
        best = m;
        if rhs_won {
            tag = t;
        }
    }
    (best, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_sentinels_have_headroom() {
        let ni = <i16 as Score>::neg_inf();
        // subtracting a large penalty must not wrap past real scores
        let drifted = ni.sub(10_000);
        assert!(drifted < 0);
        assert!(drifted <= ni);
        let pi = <i16 as Score>::pos_inf();
        assert!(pi.add(10_000) >= pi);
    }

    #[test]
    fn add_saturates() {
        let big = i16::MAX;
        assert_eq!(Score::add(big, 10), i16::MAX);
        assert_eq!(Score::sub(i16::MIN, 10), i16::MIN);
    }

    #[test]
    fn max_with_reports_winner() {
        assert_eq!(3i32.max_with(5), (5, true));
        assert_eq!(5i32.max_with(3), (5, false));
        assert_eq!(5i32.max_with(5), (5, false)); // ties keep lhs
        assert_eq!(3i32.min_with(5), (3, false));
        assert_eq!(5i32.min_with(3), (3, true));
    }

    #[test]
    fn argmax_first_wins_ties() {
        let (v, t) = argmax([(1i16, 0u8), (4, 1), (4, 2), (2, 3)]);
        assert_eq!((v, t), (4, 1));
    }

    #[test]
    fn argmin_basic() {
        let (v, t) = argmin([(9i32, 'x'), (2, 'y'), (2, 'z')]);
        assert_eq!((v, t), (2, 'y'));
    }

    #[test]
    fn fixed_point_score_ops() {
        type F = ApFixed<32, 16>;
        let a = <F as Score>::from_f64(1.5);
        let b = <F as Score>::from_f64(2.0);
        assert_eq!(Score::add(a, b).to_f64(), 3.5);
        assert_eq!(Score::mul(a, b).to_f64(), 3.0);
        assert!(<F as Score>::neg_inf() < <F as Score>::zero());
        assert!(<F as Score>::pos_inf() > b);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(<i32 as Score>::from_i32(-7), -7);
        assert_eq!(<i16 as Score>::from_f64(3.0), 3);
        assert_eq!(Score::to_f64(42i64), 42.0);
    }

    #[test]
    fn bits_constants() {
        assert_eq!(<i16 as Score>::BITS, 16);
        assert_eq!(<i32 as Score>::BITS, 32);
        assert_eq!(<i8 as Score>::BITS, 8);
        assert_eq!(<ApFixed<32, 26> as Score>::BITS, 32);
    }

    #[test]
    fn i8_score_matches_int_scheme() {
        assert_eq!(<i8 as Score>::neg_inf(), -64);
        assert_eq!(<i8 as Score>::pos_inf(), 63);
        assert_eq!(Score::add(100i8, 100), i8::MAX);
        assert_eq!(Score::sub(-100i8, 100), i8::MIN);
        assert_eq!(3i8.max_with(3), (3, false)); // ties keep lhs
    }

    #[test]
    fn i8_guard_band_flags_rails_and_sentinel_reach() {
        // Exact precisions never escalate.
        assert!(!Score::needs_escalation(i16::MAX));
        assert!(!Score::needs_escalation(i16::MIN));
        // The i8 band is [MIN, -32] ∪ [127, MAX].
        assert!(Score::needs_escalation(i8::MAX));
        assert!(Score::needs_escalation(i8::MIN));
        assert!(Score::needs_escalation(I8_GUARD_MIN));
        assert!(Score::needs_escalation(<i8 as Score>::neg_inf()));
        // neg_inf + the largest allowed parameter step still lands in band.
        assert!(Score::needs_escalation(<i8 as Score>::neg_inf().add(32)));
        assert!(!Score::needs_escalation(I8_GUARD_MIN + 1));
        assert!(!Score::needs_escalation(I8_GUARD_MAX - 1));
        assert!(!Score::needs_escalation(0i8));
    }
}
