//! The score value abstraction (`type_t` in the paper's front-end).
//!
//! DP-HLS lets each kernel pick the precision of its scores (paper §4
//! step 1: "custom data types of variable precision for scoring"); kernels in
//! this reproduction are generic over a [`Score`] type so that the same
//! recurrence runs with
//!
//! * a plain integer (`i16`/`i32`) for the alignment kernels,
//! * a fixed-point [`dphls_fixed::ApFixed`] for DTW and Viterbi, and
//! * an instrumented [`crate::CountingScore`] wrapper that counts operators
//!   for the FPGA resource model (`dphls-fpga`).
//!
//! All arithmetic **saturates**: DP recurrences routinely add penalties to
//! "−∞" sentinels, and on the FPGA the corresponding `ap_int` datapaths are
//! sized to never wrap in the representable range.

use dphls_fixed::ApFixed;
use std::fmt;

/// A value that can flow through a DP recurrence.
///
/// Kernels must compute **only** through these methods (not through native
/// `+`/`max`), so that the instrumented wrapper sees every operator the
/// synthesized datapath would contain.
pub trait Score: Copy + fmt::Debug + PartialEq + PartialOrd + Send + Sync + 'static {
    /// Datapath width in bits (drives LUT/FF/DSP estimates).
    const BITS: u32;

    /// The additive identity.
    fn zero() -> Self;
    /// The "−∞" sentinel: worse than any reachable score under `max`,
    /// and far enough from the representable minimum that subtracting
    /// penalties cannot wrap it past a real score.
    fn neg_inf() -> Self;
    /// The "+∞" sentinel (for `min`-objective kernels such as DTW).
    fn pos_inf() -> Self;
    /// Converts a small integer parameter.
    fn from_i32(v: i32) -> Self;
    /// Converts a float parameter (used by fixed-point kernels).
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` for reporting.
    fn to_f64(self) -> f64;
    /// Saturating addition (one hardware adder).
    fn add(self, rhs: Self) -> Self;
    /// Saturating subtraction (one hardware adder).
    fn sub(self, rhs: Self) -> Self;
    /// Saturating multiplication (one hardware multiplier / DSP tile group).
    fn mul(self, rhs: Self) -> Self;
    /// Returns `(max(self, rhs), rhs_won)` — one comparator plus one mux.
    fn max_with(self, rhs: Self) -> (Self, bool);
    /// Returns `(min(self, rhs), rhs_won)` — one comparator plus one mux.
    fn min_with(self, rhs: Self) -> (Self, bool);
}

macro_rules! impl_score_int {
    ($t:ty, $bits:expr) => {
        impl Score for $t {
            const BITS: u32 = $bits;

            fn zero() -> Self {
                0
            }
            fn neg_inf() -> Self {
                // Half the range: headroom so sentinel - penalty never wraps.
                <$t>::MIN / 2
            }
            fn pos_inf() -> Self {
                <$t>::MAX / 2
            }
            fn from_i32(v: i32) -> Self {
                v as $t
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn add(self, rhs: Self) -> Self {
                self.saturating_add(rhs)
            }
            fn sub(self, rhs: Self) -> Self {
                self.saturating_sub(rhs)
            }
            fn mul(self, rhs: Self) -> Self {
                self.saturating_mul(rhs)
            }
            fn max_with(self, rhs: Self) -> (Self, bool) {
                if rhs > self {
                    (rhs, true)
                } else {
                    (self, false)
                }
            }
            fn min_with(self, rhs: Self) -> (Self, bool) {
                if rhs < self {
                    (rhs, true)
                } else {
                    (self, false)
                }
            }
        }
    };
}

impl_score_int!(i16, 16);
impl_score_int!(i32, 32);
impl_score_int!(i64, 64);

impl<const W: u32, const I: u32> Score for ApFixed<W, I> {
    const BITS: u32 = W;

    fn zero() -> Self {
        ApFixed::ZERO
    }
    fn neg_inf() -> Self {
        ApFixed::from_raw(ApFixed::<W, I>::MIN.raw() / 2)
    }
    fn pos_inf() -> Self {
        ApFixed::from_raw(ApFixed::<W, I>::MAX.raw() / 2)
    }
    fn from_i32(v: i32) -> Self {
        ApFixed::from_int(v as i64)
    }
    fn from_f64(v: f64) -> Self {
        ApFixed::from_f64(v)
    }
    fn to_f64(self) -> f64 {
        ApFixed::to_f64(self)
    }
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
    fn max_with(self, rhs: Self) -> (Self, bool) {
        if rhs > self {
            (rhs, true)
        } else {
            (self, false)
        }
    }
    fn min_with(self, rhs: Self) -> (Self, bool) {
        if rhs < self {
            (rhs, true)
        } else {
            (self, false)
        }
    }
}

/// Reduces candidates to the best (value, tag) pair under `max`, in order —
/// the paper's Listing 6 pattern ("find max cell score and traceback
/// pointer"). Later candidates win ties only if strictly greater.
///
/// # Panics
///
/// Panics if `candidates` is empty.
///
/// # Example
///
/// ```
/// use dphls_core::score::argmax;
/// let (v, tag) = argmax([(3i32, 'a'), (5, 'b'), (5, 'c')]);
/// assert_eq!((v, tag), (5, 'b'));
/// ```
pub fn argmax<S: Score, T: Copy>(candidates: impl IntoIterator<Item = (S, T)>) -> (S, T) {
    let mut it = candidates.into_iter();
    let (mut best, mut tag) = it.next().expect("argmax requires at least one candidate");
    for (v, t) in it {
        let (m, rhs_won) = best.max_with(v);
        best = m;
        if rhs_won {
            tag = t;
        }
    }
    (best, tag)
}

/// Like [`argmax`] but under `min` (DTW-family kernels).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn argmin<S: Score, T: Copy>(candidates: impl IntoIterator<Item = (S, T)>) -> (S, T) {
    let mut it = candidates.into_iter();
    let (mut best, mut tag) = it.next().expect("argmin requires at least one candidate");
    for (v, t) in it {
        let (m, rhs_won) = best.min_with(v);
        best = m;
        if rhs_won {
            tag = t;
        }
    }
    (best, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_sentinels_have_headroom() {
        let ni = <i16 as Score>::neg_inf();
        // subtracting a large penalty must not wrap past real scores
        let drifted = ni.sub(10_000);
        assert!(drifted < 0);
        assert!(drifted <= ni);
        let pi = <i16 as Score>::pos_inf();
        assert!(pi.add(10_000) >= pi);
    }

    #[test]
    fn add_saturates() {
        let big = i16::MAX;
        assert_eq!(Score::add(big, 10), i16::MAX);
        assert_eq!(Score::sub(i16::MIN, 10), i16::MIN);
    }

    #[test]
    fn max_with_reports_winner() {
        assert_eq!(3i32.max_with(5), (5, true));
        assert_eq!(5i32.max_with(3), (5, false));
        assert_eq!(5i32.max_with(5), (5, false)); // ties keep lhs
        assert_eq!(3i32.min_with(5), (3, false));
        assert_eq!(5i32.min_with(3), (3, true));
    }

    #[test]
    fn argmax_first_wins_ties() {
        let (v, t) = argmax([(1i16, 0u8), (4, 1), (4, 2), (2, 3)]);
        assert_eq!((v, t), (4, 1));
    }

    #[test]
    fn argmin_basic() {
        let (v, t) = argmin([(9i32, 'x'), (2, 'y'), (2, 'z')]);
        assert_eq!((v, t), (2, 'y'));
    }

    #[test]
    fn fixed_point_score_ops() {
        type F = ApFixed<32, 16>;
        let a = <F as Score>::from_f64(1.5);
        let b = <F as Score>::from_f64(2.0);
        assert_eq!(Score::add(a, b).to_f64(), 3.5);
        assert_eq!(Score::mul(a, b).to_f64(), 3.0);
        assert!(<F as Score>::neg_inf() < <F as Score>::zero());
        assert!(<F as Score>::pos_inf() > b);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(<i32 as Score>::from_i32(-7), -7);
        assert_eq!(<i16 as Score>::from_f64(3.0), 3);
        assert_eq!(Score::to_f64(42i64), 42.0);
    }

    #[test]
    fn bits_constants() {
        assert_eq!(<i16 as Score>::BITS, 16);
        assert_eq!(<i32 as Score>::BITS, 32);
        assert_eq!(<ApFixed<32, 26> as Score>::BITS, 32);
    }
}
