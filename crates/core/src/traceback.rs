//! Traceback pointers, FSM states, and strategies (paper §2.2.3 and §4
//! steps 4–5).
//!
//! The traceback stage of a 2-D DP kernel is a finite state machine: the
//! current state plus the stored pointer of the current cell determine the
//! next state and which neighbor the path moves to (paper Listing 7). The
//! four classic strategies — global, local, semi-global, overlap — differ in
//! where the walk *starts* and *stops*; [`TracebackSpec`] captures both.

use std::fmt;

/// A stored traceback pointer (`tb_t` in the paper, an `ap_uint<W>`).
///
/// The low 2 bits conventionally carry the direction
/// ([`TbPtr::DIAG`]/[`TbPtr::UP`]/[`TbPtr::LEFT`]/[`TbPtr::END`]); kernels
/// with multiple scoring layers pack additional state bits above them (e.g.
/// the Global Affine kernel stores gap-open/extend flags in bits 2–3, needing
/// the 4-bit `tb_t` the paper quotes for kernel #2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TbPtr(pub u8);

impl TbPtr {
    /// Move diagonally (consume one query and one reference symbol).
    pub const DIAG: TbPtr = TbPtr(0);
    /// Move up (consume one query symbol; gap in the reference).
    pub const UP: TbPtr = TbPtr(1);
    /// Move left (consume one reference symbol; gap in the query).
    pub const LEFT: TbPtr = TbPtr(2);
    /// End of path (local alignment reached a zero-score cell).
    pub const END: TbPtr = TbPtr(3);

    /// The direction field (low 2 bits).
    pub fn direction(self) -> TbPtr {
        TbPtr(self.0 & 0b11)
    }

    /// Extra kernel-defined bits above the direction field.
    pub fn flags(self) -> u8 {
        self.0 >> 2
    }

    /// Builds a pointer from a direction and kernel-defined flag bits.
    pub fn with_flags(direction: TbPtr, flags: u8) -> TbPtr {
        TbPtr((direction.0 & 0b11) | (flags << 2))
    }
}

impl fmt::Display for TbPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self.direction() {
            TbPtr::DIAG => "DIAG",
            TbPtr::UP => "UP",
            TbPtr::LEFT => "LEFT",
            _ => "END",
        };
        if self.flags() != 0 {
            write!(f, "{d}+{:#x}", self.flags())
        } else {
            write!(f, "{d}")
        }
    }
}

/// A traceback FSM state (`TB_STATE` in the paper). Kernels enumerate their
/// own states; `TbState(0)` is the conventional start state (`MM`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TbState(pub u8);

/// One step of the traceback walk, as decided by the kernel FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TbMove {
    /// Consume one query and one reference symbol (match/mismatch).
    Diag,
    /// Consume one query symbol (gap in the reference).
    Up,
    /// Consume one reference symbol (gap in the query).
    Left,
    /// Terminate the walk (local alignments).
    Stop,
}

/// Where the best cell (the traceback start / reported score) is searched
/// for, matching the reduction predicates of paper §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BestCellRule {
    /// The bottom-right corner (global alignment).
    BottomRight,
    /// Anywhere in the matrix (local alignment).
    AllCells,
    /// The last row only (semi-global, sDTW).
    LastRow,
    /// The last row or the last column (overlap alignment).
    LastRowOrCol,
}

/// The walk variant: determines boundary behaviour and stop condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalkKind {
    /// Bottom-right → top-left; continues along boundaries to the origin.
    Global,
    /// Best cell → first `END` pointer (zero-score cell).
    Local,
    /// Last-row best → top row; follows the left boundary up if reached.
    SemiGlobal,
    /// Last row/col best → top row or left column.
    Overlap,
}

/// The complete traceback strategy of a kernel: best-cell rule plus optional
/// walk (kernels #10, #12, #14 skip the walk — the paper's "no-traceback
/// option").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TracebackSpec {
    /// Where the reported best score lives.
    pub best: BestCellRule,
    /// The walk to perform, or `None` for score-only kernels.
    pub walk: Option<WalkKind>,
}

impl TracebackSpec {
    /// Global alignment: score at bottom-right, walk to the origin.
    pub const fn global() -> Self {
        Self {
            best: BestCellRule::BottomRight,
            walk: Some(WalkKind::Global),
        }
    }

    /// Local alignment: max anywhere, walk until a zero-score cell.
    pub const fn local() -> Self {
        Self {
            best: BestCellRule::AllCells,
            walk: Some(WalkKind::Local),
        }
    }

    /// Semi-global alignment: last-row max, walk to the top row.
    pub const fn semi_global() -> Self {
        Self {
            best: BestCellRule::LastRow,
            walk: Some(WalkKind::SemiGlobal),
        }
    }

    /// Overlap alignment: last row/col max, walk to top row or left column.
    pub const fn overlap() -> Self {
        Self {
            best: BestCellRule::LastRowOrCol,
            walk: Some(WalkKind::Overlap),
        }
    }

    /// Score only, no walk (paper's no-traceback option).
    pub const fn score_only(best: BestCellRule) -> Self {
        Self { best, walk: None }
    }

    /// Whether this kernel performs a traceback walk (and therefore needs
    /// traceback memory on the device).
    pub const fn has_walk(&self) -> bool {
        self.walk.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_constants_fit_two_bits() {
        for p in [TbPtr::DIAG, TbPtr::UP, TbPtr::LEFT, TbPtr::END] {
            assert!(p.0 <= 3);
            assert_eq!(p.direction(), p);
            assert_eq!(p.flags(), 0);
        }
    }

    #[test]
    fn flags_roundtrip() {
        let p = TbPtr::with_flags(TbPtr::UP, 0b101);
        assert_eq!(p.direction(), TbPtr::UP);
        assert_eq!(p.flags(), 0b101);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(TbPtr::DIAG.to_string(), "DIAG");
        assert_eq!(TbPtr::with_flags(TbPtr::LEFT, 1).to_string(), "LEFT+0x1");
    }

    #[test]
    fn spec_constructors_are_consistent() {
        assert_eq!(TracebackSpec::global().best, BestCellRule::BottomRight);
        assert_eq!(TracebackSpec::local().walk, Some(WalkKind::Local));
        assert_eq!(TracebackSpec::semi_global().best, BestCellRule::LastRow);
        assert_eq!(TracebackSpec::overlap().best, BestCellRule::LastRowOrCol);
        assert!(!TracebackSpec::score_only(BestCellRule::AllCells).has_walk());
        assert!(TracebackSpec::global().has_walk());
    }
}
