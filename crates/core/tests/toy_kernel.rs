//! Integration tests of the reference engine's traceback strategies using a
//! deliberately tiny toy kernel, so every boundary rule of §2.2.3 (global /
//! local / semi-global / overlap walks) is pinned down independently of the
//! production kernels.

use dphls_core::score::argmax;
use dphls_core::{
    run_reference, run_reference_full, Banding, KernelId, KernelMeta, KernelSpec, LayerVec,
    Objective, Score, TbMove, TbPtr, TbState, TracebackSpec,
};
use dphls_seq::Base;

/// A unit-cost match/mismatch kernel whose traceback spec is chosen by a
/// const parameter: 0 global, 1 local, 2 semi-global, 3 overlap.
struct Toy<const MODE: u8>;

impl<const MODE: u8> KernelSpec for Toy<MODE> {
    type Sym = Base;
    type Score = i32;
    type Params = ();

    fn meta() -> KernelMeta {
        let traceback = match MODE {
            0 => TracebackSpec::global(),
            1 => TracebackSpec::local(),
            2 => TracebackSpec::semi_global(),
            _ => TracebackSpec::overlap(),
        };
        KernelMeta {
            id: KernelId(100 + MODE),
            name: "toy",
            n_layers: 1,
            tb_bits: 2,
            objective: Objective::Maximize,
            traceback,
        }
    }

    fn init_row(_: &(), j: usize) -> LayerVec<i32> {
        // Global charges the boundary; the free-start modes don't.
        let v = match MODE {
            0 => -(j as i32),
            2 => 0, // semi-global: free reference start
            _ => 0,
        };
        LayerVec::splat(1, v)
    }

    fn init_col(_: &(), i: usize) -> LayerVec<i32> {
        let v = match MODE {
            0 | 2 => -(i as i32), // query end-to-end modes charge the column
            _ => 0,
        };
        LayerVec::splat(1, v)
    }

    fn pe(
        _: &(),
        q: Base,
        r: Base,
        diag: &LayerVec<i32>,
        up: &LayerVec<i32>,
        left: &LayerVec<i32>,
    ) -> (LayerVec<i32>, TbPtr) {
        let sub = if q == r { 1 } else { -1 };
        let mat = diag.primary().add(sub);
        let del = up.primary().add(-1);
        let ins = left.primary().add(-1);
        let (best, ptr) = if MODE == 1 {
            argmax([
                (0i32, TbPtr::END),
                (mat, TbPtr::DIAG),
                (del, TbPtr::UP),
                (ins, TbPtr::LEFT),
            ])
        } else {
            argmax([(mat, TbPtr::DIAG), (del, TbPtr::UP), (ins, TbPtr::LEFT)])
        };
        (LayerVec::splat(1, best), ptr)
    }

    fn tb_step(s: TbState, ptr: TbPtr) -> (TbState, TbMove) {
        let mv = match ptr.direction() {
            TbPtr::DIAG => TbMove::Diag,
            TbPtr::UP => TbMove::Up,
            TbPtr::LEFT => TbMove::Left,
            _ => TbMove::Stop,
        };
        (s, mv)
    }
}

fn dna(s: &str) -> Vec<Base> {
    s.chars().map(|c| Base::from_char(c).unwrap()).collect()
}

#[test]
fn global_walk_always_reaches_origin_and_corner() {
    let q = dna("ACG");
    let r = dna("AGGT");
    let out = run_reference::<Toy<0>>(&(), &q, &r, Banding::None);
    let aln = out.alignment.unwrap();
    assert_eq!(aln.start(), (0, 0));
    assert_eq!(aln.end(), (3, 4));
    assert_eq!(out.best_cell, (3, 4));
    assert!(aln.is_consistent());
}

#[test]
fn global_walk_covers_degenerate_single_symbol() {
    let q = dna("A");
    let r = dna("TTTT");
    let out = run_reference::<Toy<0>>(&(), &q, &r, Banding::None);
    let aln = out.alignment.unwrap();
    assert_eq!(aln.query_span(), 1);
    assert_eq!(aln.ref_span(), 4);
}

#[test]
fn local_walk_stops_at_zero_cell_not_boundary() {
    // Match block in the middle; the local path must cover exactly it.
    let q = dna("TTACGTT");
    let r = dna("GGACGGG");
    let out = run_reference::<Toy<1>>(&(), &q, &r, Banding::None);
    assert_eq!(out.best_score, 3); // "ACG"
    let aln = out.alignment.unwrap();
    assert_eq!(aln.cigar(), "3M");
    // Anchors interior, not on the matrix boundary.
    let (si, sj) = aln.start();
    assert!(si > 0 && sj > 0);
}

#[test]
fn local_walk_empty_when_nothing_matches() {
    let q = dna("AAA");
    let r = dna("CCC");
    let out = run_reference::<Toy<1>>(&(), &q, &r, Banding::None);
    assert_eq!(out.best_score, 0);
    let aln = out.alignment.unwrap();
    // Best-cell tie-break picks the first interior cell; its END pointer
    // stops the walk immediately: an empty path.
    assert!(aln.is_empty());
    assert!(aln.is_consistent());
}

#[test]
fn semi_global_pins_query_ends_only() {
    let q = dna("CGT");
    let r = dna("AACGTAA");
    let out = run_reference::<Toy<2>>(&(), &q, &r, Banding::None);
    assert_eq!(out.best_score, 3);
    assert_eq!(out.best_cell.0, 3); // last row
    let aln = out.alignment.unwrap();
    assert_eq!(aln.query_span(), 3); // query end-to-end
    assert_eq!(aln.start().0, 0); // walk climbed to the top row
    assert_eq!(aln.ref_span(), 3); // reference consumed only partially
    assert_eq!(aln.start().1, 2); // starting inside the reference
}

#[test]
fn semi_global_climbs_left_boundary_when_query_overhangs() {
    // Query longer than reference: the path must still consume the whole
    // query, using Up moves along the left boundary.
    let q = dna("TTACG");
    let r = dna("ACG");
    let out = run_reference::<Toy<2>>(&(), &q, &r, Banding::None);
    let aln = out.alignment.unwrap();
    assert_eq!(aln.query_span(), 5);
    assert_eq!(aln.start(), (0, 0));
}

#[test]
fn overlap_anchors_on_opposite_boundaries() {
    // Suffix of q overlaps prefix of r.
    let q = dna("TTTACGT");
    let r = dna("ACGTCCC");
    let out = run_reference::<Toy<3>>(&(), &q, &r, Banding::None);
    assert_eq!(out.best_score, 4);
    let aln = out.alignment.unwrap();
    // Starts on a boundary (free start) and ends on last row or column.
    let (si, sj) = aln.start();
    assert!(si == 0 || sj == 0, "start {:?}", aln.start());
    let (ei, ej) = aln.end();
    assert!(ei == q.len() || ej == r.len(), "end {:?}", aln.end());
    assert_eq!(aln.cigar(), "4M");
}

#[test]
fn overlap_best_cell_rule_scans_last_row_and_col_only() {
    // The best interior value is a long match block NOT touching the last
    // row/col; overlap must ignore it in favor of a boundary cell.
    let q = dna("ACGTAAAAA");
    let r = dna("ACGTCCCCC");
    let out = run_reference::<Toy<3>>(&(), &q, &r, Banding::None);
    let (i, j) = out.best_cell;
    assert!(
        i == q.len() || j == r.len(),
        "best cell {:?}",
        out.best_cell
    );
}

#[test]
fn matrix_accessors_expose_fill_and_pointers() {
    let q = dna("AC");
    let r = dna("AC");
    let (_, m) = run_reference_full::<Toy<0>>(&(), &q, &r, Banding::None);
    assert_eq!(m.query_len(), 2);
    assert_eq!(m.ref_len(), 2);
    assert_eq!(m.score(0, 0), 0);
    assert_eq!(m.score(2, 2), 2);
    assert_eq!(m.tb(1, 1), TbPtr::DIAG);
    assert_eq!(m.cell(1, 1).len(), 1);
}

#[test]
#[should_panic(expected = "interior")]
fn tb_accessor_rejects_boundary() {
    let q = dna("AC");
    let (_, m) = run_reference_full::<Toy<0>>(&(), &q, &q, Banding::None);
    m.tb(0, 1);
}

#[test]
#[should_panic(expected = "non-empty")]
fn empty_sequences_panic() {
    run_reference::<Toy<0>>(&(), &[], &dna("A"), Banding::None);
}

#[test]
fn banded_global_with_asymmetric_lengths() {
    // Band must cover |q.len - r.len| for the corner to be reachable.
    let q = dna("ACGTACGT");
    let r = dna("ACGT");
    let out = run_reference::<Toy<0>>(&(), &q, &r, Banding::Fixed { half_width: 4 });
    let full = run_reference::<Toy<0>>(&(), &q, &r, Banding::None);
    assert_eq!(out.best_score, full.best_score);
}
