//! Compile-time-width signed fixed-point, mirroring Vitis HLS `ap_fixed<W, I>`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Signed fixed-point number with `W` total bits, `I` integer bits (including
/// the sign bit), and `W - I` fraction bits, stored in a saturating `i64`.
///
/// Semantics follow the Vitis HLS defaults that DP-HLS relies on:
/// * overflow **saturates** to the representable min/max (HLS `AP_SAT`) —
///   DP recurrences add penalties to sentinel values and must not wrap;
/// * conversion from `f64` rounds to nearest; multiplication truncates the
///   extra fraction bits toward negative infinity (HLS `AP_TRN`).
///
/// # Panics
///
/// Constructing any value panics (via a const assertion at first use) if
/// `W == 0`, `W > 63`, or `I > W`.
///
/// # Example
///
/// ```
/// use dphls_fixed::ApFixed;
/// type Q16 = ApFixed<32, 16>; // 16 fraction bits
/// let x = Q16::from_f64(-0.5);
/// assert_eq!((x + x).to_f64(), -1.0);
/// assert!(Q16::MAX > Q16::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ApFixed<const W: u32, const I: u32> {
    raw: i64,
}

impl<const W: u32, const I: u32> ApFixed<W, I> {
    const VALID: () = assert!(
        W >= 1 && W <= 63 && I <= W,
        "ApFixed requires 1 <= W <= 63 and I <= W"
    );

    /// Number of fraction bits.
    pub const FRAC_BITS: u32 = W - I;
    /// Total bit width (feeds the FPGA resource model).
    pub const WIDTH: u32 = W;

    /// Zero.
    pub const ZERO: Self = Self { raw: 0 };
    /// Largest representable value.
    pub const MAX: Self = Self {
        raw: (1i64 << (W - 1)) - 1,
    };
    /// Smallest (most negative) representable value.
    pub const MIN: Self = Self {
        raw: -(1i64 << (W - 1)),
    };

    /// Builds a value from its raw two's-complement integer representation
    /// (the value is `raw / 2^FRAC_BITS`), saturating if out of range.
    pub fn from_raw(raw: i64) -> Self {
        #[allow(clippy::let_unit_value)]
        let _ = Self::VALID;
        Self {
            raw: raw.clamp(Self::MIN.raw, Self::MAX.raw),
        }
    }

    /// Raw two's-complement representation.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// Converts from `f64`, rounding to nearest and saturating.
    pub fn from_f64(x: f64) -> Self {
        #[allow(clippy::let_unit_value)]
        let _ = Self::VALID;
        if x.is_nan() {
            return Self::ZERO;
        }
        let scaled = x * (1u64 << Self::FRAC_BITS) as f64;
        if scaled >= Self::MAX.raw as f64 {
            Self::MAX
        } else if scaled <= Self::MIN.raw as f64 {
            Self::MIN
        } else {
            Self {
                raw: scaled.round() as i64,
            }
        }
    }

    /// Converts from an integer, saturating — including the widest shapes
    /// (`FRAC_BITS == 63`), where the scale factor `2^FRAC_BITS` itself
    /// overflows `i64` and every nonzero integer is out of range.
    pub fn from_int(x: i64) -> Self {
        #[allow(clippy::let_unit_value)]
        let _ = Self::VALID;
        // `checked_shl` only rejects shifts >= 64; a 63-bit shift "succeeds"
        // with a negative scale, so filter that overflow out explicitly.
        let scale = 1i64.checked_shl(Self::FRAC_BITS).filter(|s| *s > 0);
        match scale.and_then(|s| x.checked_mul(s)) {
            Some(raw) => Self::from_raw(raw),
            None => match x.cmp(&0) {
                Ordering::Greater => Self::MAX,
                Ordering::Equal => Self::ZERO,
                Ordering::Less => Self::MIN,
            },
        }
    }

    /// Converts to `f64` exactly (every representable value fits in f64 for W ≤ 63... 53;
    /// for wider widths the nearest f64 is returned).
    pub fn to_f64(self) -> f64 {
        self.raw as f64 / (1u64 << Self::FRAC_BITS) as f64
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self::from_raw(self.raw.saturating_add(rhs.raw))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self::from_raw(self.raw.saturating_sub(rhs.raw))
    }

    /// Saturating multiplication (truncates extra fraction bits toward -inf,
    /// matching the HLS `AP_TRN` default).
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = (self.raw as i128) * (rhs.raw as i128);
        let shifted = wide >> Self::FRAC_BITS;
        let clamped = shifted.clamp(Self::MIN.raw as i128, Self::MAX.raw as i128);
        Self {
            raw: clamped as i64,
        }
    }

    /// Division (truncating). Division by zero saturates to MAX/MIN by sign,
    /// mirroring the "garbage but defined" HLS behaviour in a safe way.
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.raw == 0 {
            return if self.raw >= 0 { Self::MAX } else { Self::MIN };
        }
        let wide = ((self.raw as i128) << Self::FRAC_BITS) / rhs.raw as i128;
        let clamped = wide.clamp(Self::MIN.raw as i128, Self::MAX.raw as i128);
        Self {
            raw: clamped as i64,
        }
    }

    /// Absolute value, saturating (|MIN| -> MAX).
    pub fn abs(self) -> Self {
        if self.raw < 0 {
            Self::ZERO.saturating_sub(self)
        } else {
            self
        }
    }

    /// Larger of two values.
    pub fn max(self, other: Self) -> Self {
        if self.raw >= other.raw {
            self
        } else {
            other
        }
    }

    /// Smaller of two values.
    pub fn min(self, other: Self) -> Self {
        if self.raw <= other.raw {
            self
        } else {
            other
        }
    }
}

impl<const W: u32, const I: u32> Add for ApFixed<W, I> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl<const W: u32, const I: u32> Sub for ApFixed<W, I> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl<const W: u32, const I: u32> Mul for ApFixed<W, I> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl<const W: u32, const I: u32> Div for ApFixed<W, I> {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        self.saturating_div(rhs)
    }
}

impl<const W: u32, const I: u32> Neg for ApFixed<W, I> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::ZERO.saturating_sub(self)
    }
}

impl<const W: u32, const I: u32> PartialOrd for ApFixed<W, I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const W: u32, const I: u32> Ord for ApFixed<W, I> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.raw.cmp(&other.raw)
    }
}

impl<const W: u32, const I: u32> fmt::Debug for ApFixed<W, I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ApFixed<{W},{I}>({})", self.to_f64())
    }
}

impl<const W: u32, const I: u32> fmt::Display for ApFixed<W, I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl<const W: u32, const I: u32> From<i32> for ApFixed<W, I> {
    fn from(x: i32) -> Self {
        Self::from_int(x as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Q26 = ApFixed<32, 26>; // the paper's DTW signal type
    type Q8 = ApFixed<16, 8>;

    #[test]
    fn roundtrip_f64() {
        for x in [-3.5, -0.015625, 0.0, 0.25, 1.0, 100.75] {
            assert_eq!(Q26::from_f64(x).to_f64(), x);
        }
    }

    #[test]
    fn rounding_to_nearest() {
        // Q8 has 8 fraction bits: resolution 1/256.
        let x = Q8::from_f64(0.001); // nearest multiple of 1/256 is 0
        assert_eq!(x.to_f64(), 0.0);
        let y = Q8::from_f64(0.003); // 0.00390625/2 < 0.003 -> rounds to 1/256
        assert_eq!(y.to_f64(), 1.0 / 256.0);
    }

    #[test]
    fn add_saturates_at_max() {
        let big = Q8::MAX;
        assert_eq!(big + Q8::from_f64(10.0), Q8::MAX);
        assert_eq!(Q8::MIN - Q8::from_f64(10.0), Q8::MIN);
    }

    #[test]
    fn mul_truncates_toward_neg_inf() {
        // 0.75 * 0.0039 in Q8: exact = 0.0029..., truncated to 0 fraction steps.
        let a = Q8::from_f64(0.75);
        let tiny = Q8::from_raw(1); // 1/256
        assert_eq!((a * tiny).raw(), 0);
        // Negative case truncates toward -inf: -0.75 * 1/256 = -0.0029 -> -1/256.
        let na = Q8::from_f64(-0.75);
        assert_eq!((na * tiny).raw(), -1);
    }

    #[test]
    fn mul_basic() {
        let a = Q8::from_f64(1.5);
        let b = Q8::from_f64(-2.0);
        assert_eq!((a * b).to_f64(), -3.0);
    }

    #[test]
    fn div_basic_and_by_zero() {
        let a = Q8::from_f64(3.0);
        let b = Q8::from_f64(2.0);
        assert_eq!((a / b).to_f64(), 1.5);
        assert_eq!(a / Q8::ZERO, Q8::MAX);
        assert_eq!((-a) / Q8::ZERO, Q8::MIN);
    }

    #[test]
    fn neg_and_abs() {
        let a = Q8::from_f64(-4.25);
        assert_eq!((-a).to_f64(), 4.25);
        assert_eq!(a.abs().to_f64(), 4.25);
        assert_eq!(Q8::MIN.abs(), Q8::MAX); // saturating |MIN|
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Q8::from_f64(-1.0) < Q8::ZERO);
        assert!(Q8::from_f64(2.5) > Q8::from_f64(2.25));
        assert_eq!(Q8::from_f64(1.0).max(Q8::from_f64(2.0)).to_f64(), 2.0);
        assert_eq!(Q8::from_f64(1.0).min(Q8::from_f64(2.0)).to_f64(), 1.0);
    }

    #[test]
    fn from_int_saturates() {
        assert_eq!(Q8::from_int(1000), Q8::MAX); // 1000 > 127.99
        assert_eq!(Q8::from_int(-1000), Q8::MIN);
        assert_eq!(Q8::from_int(5).to_f64(), 5.0);
    }

    #[test]
    fn from_int_saturates_at_extreme_widths() {
        // FRAC_BITS == 63: the scale factor 2^63 itself overflows i64, so
        // the multiply must not run — every nonzero integer saturates.
        type AllFrac = ApFixed<63, 0>;
        assert_eq!(AllFrac::from_int(1), AllFrac::MAX);
        assert_eq!(AllFrac::from_int(-1), AllFrac::MIN);
        assert_eq!(AllFrac::from_int(i64::MAX), AllFrac::MAX);
        assert_eq!(AllFrac::from_int(i64::MIN), AllFrac::MIN);
        assert_eq!(AllFrac::from_int(0), AllFrac::ZERO);

        // FRAC_BITS == 0 at full width: pure clamp into the 63-bit range.
        type AllInt = ApFixed<63, 63>;
        assert_eq!(AllInt::from_int(42).raw(), 42);
        assert_eq!(AllInt::from_int(i64::MAX), AllInt::MAX);
        assert_eq!(AllInt::from_int(i64::MIN), AllInt::MIN);

        // Single-bit type: only 0 and -1 are representable.
        type OneBit = ApFixed<1, 1>;
        assert_eq!(OneBit::from_int(7), OneBit::MAX);
        assert_eq!(OneBit::from_int(-7), OneBit::MIN);

        // Overflow in the multiply (not the shift) still saturates by sign.
        type Q16 = ApFixed<32, 16>;
        assert_eq!(Q16::from_int(i64::MAX), Q16::MAX);
        assert_eq!(Q16::from_int(i64::MIN), Q16::MIN);
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(Q8::from_f64(f64::NAN), Q8::ZERO);
    }

    #[test]
    fn min_max_bounds() {
        assert_eq!(Q8::MAX.to_f64(), 127.99609375);
        assert_eq!(Q8::MIN.to_f64(), -128.0);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let a = Q8::from_f64(1.5);
        assert_eq!(format!("{a}"), "1.5");
        assert!(format!("{a:?}").contains("ApFixed<16,8>"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    type Q16 = ApFixed<32, 16>;

    proptest! {
        #[test]
        fn add_commutes(a in -30000.0f64..30000.0, b in -30000.0f64..30000.0) {
            let (x, y) = (Q16::from_f64(a), Q16::from_f64(b));
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn add_matches_f64_when_in_range(a in -10000.0f64..10000.0, b in -10000.0f64..10000.0) {
            let sum = (Q16::from_f64(a) + Q16::from_f64(b)).to_f64();
            let expect = Q16::from_f64(a).to_f64() + Q16::from_f64(b).to_f64();
            prop_assert!((sum - expect).abs() < 1e-9);
        }

        #[test]
        fn raw_roundtrip(r in -(1i64 << 31)..(1i64 << 31) - 1) {
            prop_assert_eq!(Q16::from_raw(r).raw(), r);
        }

        #[test]
        fn ordering_matches_f64(a in -30000.0f64..30000.0, b in -30000.0f64..30000.0) {
            let (x, y) = (Q16::from_f64(a), Q16::from_f64(b));
            if x < y { prop_assert!(x.to_f64() < y.to_f64() + 1e-9); }
        }

        #[test]
        fn mul_error_within_one_ulp(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let exact = Q16::from_f64(a).to_f64() * Q16::from_f64(b).to_f64();
            let got = (Q16::from_f64(a) * Q16::from_f64(b)).to_f64();
            // truncation loses at most one fraction step (2^-16)
            prop_assert!((exact - got).abs() <= 1.0 / 65536.0 + 1e-12);
        }

        #[test]
        fn saturation_is_idempotent(a in proptest::num::f64::NORMAL) {
            let x = Q16::from_f64(a);
            prop_assert!(x <= Q16::MAX && x >= Q16::MIN);
        }
    }
}
