//! Runtime-width integers mirroring Vitis HLS `ap_int<W>` / `ap_uint<W>`.
//!
//! DP-HLS uses these for sequence symbols (`ap_uint<2>` for DNA bases,
//! Listing 1) and traceback pointers (`ap_uint<2>` / `ap_uint<4>`, §4 step 5).
//! The width is a runtime field rather than a const generic because the
//! traceback-memory model sizes BRAM banks from widths chosen per kernel at
//! configuration time.

use std::fmt;

/// Unsigned integer truncated to `width` bits (1..=64), wrapping like the HLS
/// `ap_uint<W>` default.
///
/// # Example
///
/// ```
/// use dphls_fixed::ApUInt;
/// let base = ApUInt::new(2, 3); // ap_uint<2> holding 0b11 (base 'T')
/// assert_eq!(base.value(), 3);
/// assert_eq!(base.wrapping_add(1).value(), 0); // wraps at 2 bits
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApUInt {
    width: u32,
    value: u64,
}

impl ApUInt {
    /// Creates a `width`-bit unsigned value; the input is truncated to fit.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32, value: u64) -> Self {
        assert!((1..=64).contains(&width), "ApUInt width must be 1..=64");
        Self {
            width,
            value: value & Self::mask(width),
        }
    }

    fn mask(width: u32) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// The stored value.
    pub fn value(self) -> u64 {
        self.value
    }

    /// The declared bit width.
    pub fn width(self) -> u32 {
        self.width
    }

    /// Largest representable value for this width.
    pub fn max_value(self) -> u64 {
        Self::mask(self.width)
    }

    /// Addition with wrap-around at the declared width.
    pub fn wrapping_add(self, rhs: u64) -> Self {
        Self::new(self.width, self.value.wrapping_add(rhs))
    }

    /// Extracts bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(self, i: u32) -> bool {
        assert!(i < self.width, "bit index out of width");
        (self.value >> i) & 1 == 1
    }

    /// Extracts the inclusive bit range `[lo, hi]`, like HLS `x.range(hi, lo)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi >= width`.
    pub fn range(self, hi: u32, lo: u32) -> u64 {
        assert!(lo <= hi && hi < self.width, "invalid bit range");
        (self.value >> lo) & Self::mask(hi - lo + 1)
    }
}

impl fmt::Display for ApUInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u{}", self.value, self.width)
    }
}

/// Signed integer held in `width` bits (1..=64) with two's-complement
/// wrap-around, mirroring HLS `ap_int<W>`.
///
/// # Example
///
/// ```
/// use dphls_fixed::ApInt;
/// let x = ApInt::new(4, -8);          // ap_int<4> minimum
/// assert_eq!(x.value(), -8);
/// assert_eq!(x.wrapping_add(-1).value(), 7); // wraps to +7
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApInt {
    width: u32,
    value: i64,
}

impl ApInt {
    /// Creates a `width`-bit signed value; the input is truncated and
    /// sign-extended to fit.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32, value: i64) -> Self {
        assert!((1..=64).contains(&width), "ApInt width must be 1..=64");
        Self {
            width,
            value: Self::sext(width, value as u64),
        }
    }

    fn sext(width: u32, bits: u64) -> i64 {
        if width == 64 {
            return bits as i64;
        }
        let shift = 64 - width;
        ((bits << shift) as i64) >> shift
    }

    /// The stored (sign-extended) value.
    pub fn value(self) -> i64 {
        self.value
    }

    /// The declared bit width.
    pub fn width(self) -> u32 {
        self.width
    }

    /// Largest representable value for this width.
    pub fn max_value(self) -> i64 {
        if self.width == 64 {
            i64::MAX
        } else {
            (1i64 << (self.width - 1)) - 1
        }
    }

    /// Smallest representable value for this width.
    pub fn min_value(self) -> i64 {
        if self.width == 64 {
            i64::MIN
        } else {
            -(1i64 << (self.width - 1))
        }
    }

    /// Addition with two's-complement wrap at the declared width.
    pub fn wrapping_add(self, rhs: i64) -> Self {
        Self::new(self.width, self.value.wrapping_add(rhs))
    }

    /// Saturating addition at the declared width.
    pub fn saturating_add(self, rhs: i64) -> Self {
        let sum = (self.value as i128) + (rhs as i128);
        let clamped = sum.clamp(self.min_value() as i128, self.max_value() as i128);
        Self::new(self.width, clamped as i64)
    }
}

impl fmt::Display for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}i{}", self.value, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apuint_truncates_on_construction() {
        assert_eq!(ApUInt::new(2, 7).value(), 3);
        assert_eq!(ApUInt::new(8, 0x1FF).value(), 0xFF);
        assert_eq!(ApUInt::new(64, u64::MAX).value(), u64::MAX);
    }

    #[test]
    fn apuint_wraps_on_add() {
        let x = ApUInt::new(3, 7);
        assert_eq!(x.wrapping_add(1).value(), 0);
        assert_eq!(x.wrapping_add(2).value(), 1);
    }

    #[test]
    fn apuint_bit_and_range() {
        let x = ApUInt::new(8, 0b1011_0110);
        assert!(x.bit(1));
        assert!(!x.bit(0));
        assert_eq!(x.range(5, 2), 0b1101);
        assert_eq!(x.range(7, 0), 0b1011_0110);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn apuint_zero_width_panics() {
        ApUInt::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn apuint_bad_range_panics() {
        ApUInt::new(4, 0).range(4, 0);
    }

    #[test]
    fn apint_sign_extends() {
        assert_eq!(ApInt::new(4, 0b1111).value(), -1);
        assert_eq!(ApInt::new(4, 7).value(), 7);
        assert_eq!(ApInt::new(4, 8).value(), -8); // 0b1000 is -8 in 4 bits
        assert_eq!(ApInt::new(64, -5).value(), -5);
    }

    #[test]
    fn apint_wrapping_add() {
        let x = ApInt::new(4, 7);
        assert_eq!(x.wrapping_add(1).value(), -8);
        let y = ApInt::new(4, -8);
        assert_eq!(y.wrapping_add(-1).value(), 7);
    }

    #[test]
    fn apint_saturating_add() {
        let x = ApInt::new(4, 7);
        assert_eq!(x.saturating_add(5).value(), 7);
        let y = ApInt::new(4, -8);
        assert_eq!(y.saturating_add(-5).value(), -8);
        assert_eq!(ApInt::new(4, 2).saturating_add(3).value(), 5);
    }

    #[test]
    fn apint_bounds() {
        let x = ApInt::new(4, 0);
        assert_eq!(x.max_value(), 7);
        assert_eq!(x.min_value(), -8);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(ApUInt::new(2, 3).to_string(), "3u2");
        assert_eq!(ApInt::new(4, -2).to_string(), "-2i4");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn apuint_value_below_bound(width in 1u32..=63, v in any::<u64>()) {
            let x = ApUInt::new(width, v);
            prop_assert!(x.value() <= x.max_value());
        }

        #[test]
        fn apint_within_bounds(width in 1u32..=63, v in any::<i64>()) {
            let x = ApInt::new(width, v);
            prop_assert!(x.value() >= x.min_value() && x.value() <= x.max_value());
        }

        #[test]
        fn apint_roundtrips_in_range(width in 2u32..=63, v in any::<i64>()) {
            let probe = ApInt::new(width, 0);
            let clamped = v.clamp(probe.min_value(), probe.max_value());
            prop_assert_eq!(ApInt::new(width, clamped).value(), clamped);
        }

        #[test]
        fn apuint_range_composes(v in any::<u64>()) {
            let x = ApUInt::new(16, v);
            let hi = x.range(15, 8);
            let lo = x.range(7, 0);
            prop_assert_eq!((hi << 8) | lo, x.value());
        }
    }
}
