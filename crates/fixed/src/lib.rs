//! Arbitrary-precision numeric types standing in for the Vitis HLS
//! `ap_int<W>` / `ap_uint<W>` / `ap_fixed<W, I>` types that DP-HLS kernels use
//! for scores, traceback pointers, and signal samples (paper §4, step 1).
//!
//! On an FPGA these types exist to let the synthesizer build datapaths of
//! exactly the required width; in this reproduction they serve two purposes:
//!
//! 1. **Functional fidelity** — kernels like DTW (#9) and Viterbi (#10)
//!    compute in fixed point (`ap_fixed<32, 26>` in the paper's Listing 1);
//!    [`ApFixed`] reproduces that arithmetic (saturating, truncating-toward-
//!    negative-infinity on multiply) so scores match what the hardware
//!    computes rather than what `f64` would.
//! 2. **Resource modeling** — the bit-widths declared here feed the
//!    `dphls-fpga` structural model (adder LUTs ∝ width, DSPs ∝ multiplier
//!    tile count).
//!
//! # Example
//!
//! ```
//! use dphls_fixed::ApFixed;
//! // ap_fixed<32, 26>: 26 integer bits, 6 fraction bits.
//! type Sig = ApFixed<32, 26>;
//! let a = Sig::from_f64(1.5);
//! let b = Sig::from_f64(2.25);
//! assert_eq!((a + b).to_f64(), 3.75);
//! assert_eq!((a * b).to_f64(), 3.375);
//! ```

pub mod apfixed;
pub mod apint;

pub use apfixed::ApFixed;
pub use apint::{ApInt, ApUInt};
