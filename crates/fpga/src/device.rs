//! FPGA device catalog.
//!
//! The paper deploys on AWS EC2 F1 (`f1.2xlarge`), whose FPGA is a Xilinx
//! Virtex UltraScale+ `xcvu9p-flgb2104-2-i`. Table 2 reports utilization as
//! percentages of this device's resources.

/// Resource capacity of an FPGA part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaDevice {
    /// Part name.
    pub name: &'static str,
    /// 6-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36 Kb block RAMs.
    pub bram36: u64,
    /// DSP48E2 slices.
    pub dsps: u64,
    /// Fraction of the device available to user kernels (the AWS F1 shell
    /// and routing margin reserve the rest).
    pub usable_fraction: f64,
}

/// The AWS EC2 F1 FPGA: `xcvu9p-flgb2104-2-i` (paper §6.2).
pub const XCVU9P: FpgaDevice = FpgaDevice {
    name: "xcvu9p-flgb2104-2-i (AWS EC2 F1)",
    luts: 1_182_240,
    ffs: 2_364_480,
    bram36: 2_160,
    dsps: 6_840,
    usable_fraction: 0.85,
};

/// Absolute resource counts (one block, or an aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// 6-input LUTs.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// 36 Kb block RAMs.
    pub bram36: u64,
    /// DSP48E2 slices.
    pub dsp: u64,
}

impl Resources {
    /// Element-wise sum.
    pub fn plus(self, other: Resources) -> Resources {
        Resources {
            lut: self.lut + other.lut,
            ff: self.ff + other.ff,
            bram36: self.bram36 + other.bram36,
            dsp: self.dsp + other.dsp,
        }
    }

    /// Element-wise scaling (replicating a block `n` times).
    pub fn times(self, n: u64) -> Resources {
        Resources {
            lut: self.lut * n,
            ff: self.ff * n,
            bram36: self.bram36 * n,
            dsp: self.dsp * n,
        }
    }

    /// Utilization fractions `[LUT, FF, BRAM, DSP]` on a device.
    pub fn utilization(self, dev: &FpgaDevice) -> [f64; 4] {
        [
            self.lut as f64 / dev.luts as f64,
            self.ff as f64 / dev.ffs as f64,
            self.bram36 as f64 / dev.bram36 as f64,
            self.dsp as f64 / dev.dsps as f64,
        ]
    }

    /// Whether this aggregate fits in the device's usable fraction.
    pub fn fits(self, dev: &FpgaDevice) -> bool {
        self.utilization(dev)
            .iter()
            .all(|&u| u <= dev.usable_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::assertions_on_constants)] // device constants, asserted on purpose
    #[test]
    fn vu9p_capacities() {
        assert_eq!(XCVU9P.bram36, 2160);
        assert_eq!(XCVU9P.dsps, 6840);
        assert!(XCVU9P.luts > 1_000_000);
        assert!(XCVU9P.usable_fraction > 0.5 && XCVU9P.usable_fraction < 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = Resources {
            lut: 100,
            ff: 200,
            bram36: 3,
            dsp: 4,
        };
        let b = a.times(2).plus(a);
        assert_eq!(b.lut, 300);
        assert_eq!(b.dsp, 12);
    }

    #[test]
    fn utilization_fractions() {
        let r = Resources {
            lut: 118_224, // exactly 10% of the xcvu9p
            ff: 0,
            bram36: 216,
            dsp: 0,
        };
        let u = r.utilization(&XCVU9P);
        assert!((u[0] - 0.1).abs() < 1e-9);
        assert!((u[2] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn fits_respects_usable_fraction() {
        let ok = Resources {
            dsp: (XCVU9P.dsps as f64 * 0.7) as u64,
            ..Resources::default()
        };
        assert!(ok.fits(&XCVU9P));
        let too_big = Resources {
            dsp: (XCVU9P.dsps as f64 * 0.9) as u64,
            ..Resources::default()
        };
        assert!(!too_big.fits(&XCVU9P));
    }
}
