//! The synthesis-flow façade, mirroring the paper's Fig 2A pipeline:
//! C-simulation → C-synthesis → co-simulation → implementation.
//!
//! In the reproduction each stage maps to an executable model:
//!
//! | Paper stage        | Here |
//! |--------------------|------|
//! | C-simulation       | `dphls_core::run_reference` (functional check) |
//! | C-synthesis        | [`synthesize`]: II + fmax + block resources |
//! | Co-simulation      | `dphls_systolic::Device::run` (cycle counts) |
//! | Implementation     | [`SynthesisReport::device_utilization`] (post-"route" totals) |

use crate::device::{FpgaDevice, Resources, XCVU9P};
use crate::frequency::{achieved_fmax_mhz, derive_ii};
use crate::resources::{estimate_block, estimate_device, KernelProfile};
use dphls_core::KernelConfig;
use dphls_systolic::KernelCycleInfo;

/// Output of "synthesizing" a kernel configuration onto the virtual device.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// Wavefront initiation interval.
    pub ii: u32,
    /// Achieved clock frequency (MHz).
    pub fmax_mhz: f64,
    /// Resources of a single block (Table 2 granularity).
    pub block: Resources,
    /// Resources of the full `NB × NK` deployment.
    pub device_total: Resources,
    /// Block utilization fractions `[LUT, FF, BRAM, DSP]` on the target.
    pub block_utilization: [f64; 4],
    /// Whether the full deployment fits the usable device.
    pub fits: bool,
}

impl SynthesisReport {
    /// Device-level utilization fractions.
    pub fn device_utilization(&self, dev: &FpgaDevice) -> [f64; 4] {
        self.device_total.utilization(dev)
    }

    /// The cycle-model inputs implied by this synthesis result.
    pub fn cycle_info(&self, sym_bits: u32, has_walk: bool) -> KernelCycleInfo {
        KernelCycleInfo {
            sym_bits,
            has_walk,
            ii: self.ii,
        }
    }
}

/// Synthesizes a kernel profile at a configuration onto the AWS F1 device.
pub fn synthesize(
    profile: &KernelProfile,
    config: &KernelConfig,
    ii_hint: Option<u32>,
) -> SynthesisReport {
    synthesize_on(profile, config, ii_hint, &XCVU9P)
}

/// Synthesizes onto an explicit device.
pub fn synthesize_on(
    profile: &KernelProfile,
    config: &KernelConfig,
    ii_hint: Option<u32>,
    device: &FpgaDevice,
) -> SynthesisReport {
    let ii = derive_ii(&profile.op_counts, ii_hint);
    let fmax_mhz = achieved_fmax_mhz(
        &profile.op_counts,
        ii,
        profile.score_bits,
        profile.n_layers,
        config.target_freq_mhz,
    );
    let block = estimate_block(profile, config);
    let device_total = estimate_device(profile, config);
    SynthesisReport {
        ii,
        fmax_mhz,
        block,
        block_utilization: block.utilization(device),
        fits: device_total.fits(device),
        device_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::{OpCounts, WalkKind};

    fn profile() -> KernelProfile {
        KernelProfile {
            op_counts: OpCounts {
                adds: 3,
                muls: 0,
                cmps: 2,
                depth: 3,
            },
            score_bits: 16,
            sym_bits: 2,
            tb_bits: 2,
            n_layers: 1,
            walk: Some(WalkKind::Global),
            param_table_bits: 48,
        }
    }

    #[test]
    fn report_is_consistent() {
        let cfg = KernelConfig::new(32, 16, 4);
        let rep = synthesize(&profile(), &cfg, None);
        assert_eq!(rep.ii, 1);
        assert_eq!(rep.fmax_mhz, 250.0);
        assert!(rep.fits);
        assert!(rep.device_total.lut >= rep.block.lut * 64);
        let ci = rep.cycle_info(2, true);
        assert_eq!(ci.ii, 1);
        assert!(ci.has_walk);
    }

    #[test]
    fn oversized_deployment_does_not_fit() {
        let cfg = KernelConfig::new(32, 128, 16);
        let rep = synthesize(&profile(), &cfg, None);
        assert!(!rep.fits);
    }

    #[test]
    fn ii_hint_propagates() {
        let cfg = KernelConfig::new(16, 1, 1);
        let rep = synthesize(&profile(), &cfg, Some(4));
        assert_eq!(rep.ii, 4);
    }
}
