//! Timing model: initiation interval (II) and achievable clock frequency.
//!
//! Vitis HLS pipelines the wavefront loop at `II = 1` when the PE recurrence
//! fits in one stage; deeper recurrences (multiplier chains, many stacked
//! comparators) either raise the II (paper §5.1: "for complex PE functions
//! ... HLS finds the minimum possible II") or lower the achievable clock
//! (paper §7.1: "the complexity of the scoring equations also impacts clock
//! frequency"). Both effects are derived here from the instrumented
//! dependency depth of the real PE code.

use dphls_core::OpCounts;

/// Logic levels Vitis HLS comfortably fits in one pipeline stage at the
/// 250 MHz F1 target (calibrated so kernel #8's ~44-level sum-of-pairs chain
/// yields the paper's II = 4).
const LEVELS_PER_STAGE: u32 = 12;

/// Derives the wavefront initiation interval from the measured dependency
/// depth, unless the kernel pins it (`ii_hint`).
///
/// # Example
///
/// ```
/// use dphls_core::OpCounts;
/// use dphls_fpga::frequency::derive_ii;
/// let shallow = OpCounts { adds: 3, muls: 0, cmps: 2, depth: 3 };
/// assert_eq!(derive_ii(&shallow, None), 1);
/// let deep = OpCounts { adds: 13, muls: 30, cmps: 2, depth: 44 };
/// assert_eq!(derive_ii(&deep, None), 4); // kernel #8's paper-stated II
/// ```
pub fn derive_ii(op_counts: &OpCounts, ii_hint: Option<u32>) -> u32 {
    ii_hint.unwrap_or_else(|| op_counts.depth.div_ceil(LEVELS_PER_STAGE).max(1))
}

/// Structural frequency ceiling in MHz: starts at the 250 MHz F1 clock and
/// degrades with per-stage complexity (depth beyond what one stage absorbs,
/// wide datapaths, many layers). The result is snapped down to the discrete
/// clock steps Vitis typically closes at.
pub fn structural_fmax_mhz(op_counts: &OpCounts, ii: u32, score_bits: u32, n_layers: usize) -> f64 {
    let per_stage_depth = op_counts.depth.div_ceil(ii.max(1));
    let penalty_points = per_stage_depth as f64
        + if op_counts.muls > 0 { 2.0 } else { 0.0 }
        + (score_bits as f64 / 16.0 - 1.0)
        + (n_layers as f64 - 1.0);
    let raw = 250.0 / (1.0 + 0.05 * (penalty_points - 8.0).max(0.0));
    snap_down(raw)
}

/// Achieved frequency: the lower of the synthesis target and the structural
/// ceiling (the paper sets a 250 MHz target, then reports the achieved
/// maximum per kernel in Table 2).
pub fn achieved_fmax_mhz(
    op_counts: &OpCounts,
    ii: u32,
    score_bits: u32,
    n_layers: usize,
    target_mhz: f64,
) -> f64 {
    target_mhz.min(structural_fmax_mhz(op_counts, ii, score_bits, n_layers))
}

/// The discrete frequency steps observed across Table 2.
const FREQ_STEPS: [f64; 6] = [250.0, 200.0, 166.7, 150.0, 125.0, 100.0];

fn snap_down(mhz: f64) -> f64 {
    for &f in &FREQ_STEPS {
        if mhz >= f {
            return f;
        }
    }
    *FREQ_STEPS.last().expect("non-empty table")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(depth: u32, muls: u64) -> OpCounts {
        OpCounts {
            adds: 4,
            muls,
            cmps: 3,
            depth,
        }
    }

    #[test]
    fn ii_hint_wins() {
        assert_eq!(derive_ii(&ops(44, 30), Some(4)), 4);
        assert_eq!(derive_ii(&ops(3, 0), Some(2)), 2);
    }

    #[test]
    fn ii_grows_with_depth() {
        assert_eq!(derive_ii(&ops(1, 0), None), 1);
        assert_eq!(derive_ii(&ops(12, 0), None), 1);
        assert_eq!(derive_ii(&ops(13, 0), None), 2);
        assert_eq!(derive_ii(&ops(44, 30), None), 4);
    }

    #[test]
    fn simple_kernels_hit_target() {
        // Kernel #1-like: shallow, no muls, 16-bit.
        let f = achieved_fmax_mhz(&ops(3, 0), 1, 16, 1, 250.0);
        assert_eq!(f, 250.0);
    }

    #[test]
    fn complex_kernels_degrade() {
        // Kernel #8-like: deep + muls + wide.
        let f = structural_fmax_mhz(&ops(44, 30), 4, 32, 1);
        assert!(f < 250.0, "fmax {f}");
        // And never below the lowest step.
        assert!(f >= 100.0);
    }

    #[test]
    fn target_caps_achieved() {
        let f = achieved_fmax_mhz(&ops(3, 0), 1, 16, 1, 150.0);
        assert_eq!(f, 150.0);
    }

    #[test]
    fn snapping_is_monotone() {
        let mut last = f64::INFINITY;
        for d in [1u32, 8, 16, 24, 40, 64, 96] {
            let f = structural_fmax_mhz(&ops(d, 0), 1, 32, 3);
            assert!(f <= last, "non-monotone at depth {d}");
            last = f;
        }
    }

    #[test]
    fn snap_down_steps() {
        assert_eq!(snap_down(251.0), 250.0);
        assert_eq!(snap_down(249.0), 200.0);
        assert_eq!(snap_down(170.0), 166.7);
        assert_eq!(snap_down(40.0), 100.0);
    }
}
