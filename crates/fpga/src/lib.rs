//! The virtual FPGA: resource and timing models standing in for the Vitis
//! HLS / Vivado synthesis flow the paper runs on AWS EC2 F1 (§6.2).
//!
//! No synthesis tool is reachable from a pure-Rust build, so Table 2's
//! resource/frequency columns are reproduced **structurally**: the
//! instrumented operator counts of each kernel's real PE function
//! ([`dphls_core::instrument`]) drive LUT/FF/DSP estimates, the traceback
//! memory geometry drives BRAM (with the BRAM→LUTRAM conversion the paper
//! observes at `NPE = 64`), and the dependency depth drives the initiation
//! interval and clock model. Constants are calibrated once against Table 2's
//! kernel #1 row and held fixed everywhere; residuals are tabulated in
//! EXPERIMENTS.md.
//!
//! # Example
//!
//! ```
//! use dphls_fpga::{synthesize, KernelProfile, XCVU9P};
//! use dphls_core::{KernelConfig, OpCounts, WalkKind};
//!
//! let profile = KernelProfile {
//!     op_counts: OpCounts { adds: 3, muls: 0, cmps: 2, depth: 3 },
//!     score_bits: 16,
//!     sym_bits: 2,
//!     tb_bits: 2,
//!     n_layers: 1,
//!     walk: Some(WalkKind::Global),
//!     param_table_bits: 48,
//! };
//! let report = synthesize(&profile, &KernelConfig::new(32, 16, 4), None);
//! assert_eq!(report.ii, 1);
//! assert!(report.fits);
//! println!("block LUTs: {} ({:.2}%)", report.block.lut,
//!          100.0 * report.block_utilization[0]);
//! ```

pub mod device;
pub mod flow;
pub mod frequency;
pub mod resources;

pub use device::{FpgaDevice, Resources, XCVU9P};
pub use flow::{synthesize, synthesize_on, SynthesisReport};
pub use frequency::{achieved_fmax_mhz, derive_ii, structural_fmax_mhz};
pub use resources::{estimate_block, estimate_device, max_nb, KernelProfile};
