//! The structural resource model: LUT/FF/BRAM/DSP estimates for one
//! synthesized block, driven by the kernel's *measured* PE operator counts
//! (`dphls_core::instrument`) and the block geometry.
//!
//! The model mirrors how the real design consumes resources (paper §7.1):
//!
//! * **LUT/FF** scale with the adder/comparator widths in each PE, times
//!   `NPE` (the linear systolic array), plus per-block control;
//! * **DSP** comes from multipliers in the PE recurrence (profile alignment
//!   and DTW), plus a fixed couple of DSPs that precompute traceback start
//!   addresses (which is why even add-only kernels show ~2 DSPs);
//! * **BRAM** is dominated by the banked traceback memory (bank count =
//!   `NPE`, depth = chunks × wavefronts, width = `tb_bits`), plus I/O
//!   buffers, wide `ScoringParams` tables replicated per PE (kernel #15's
//!   20×20 matrix), and the preserved-row buffer;
//! * shallow traceback banks are converted to **LUTRAM** (the paper observes
//!   exactly this at `NPE = 64`, §7.2), moving bits from BRAM to LUT.
//!
//! Constants were calibrated once against Table 2's kernel #1 row and are
//! held fixed for every other kernel and experiment; residuals are reported
//! in EXPERIMENTS.md.

use crate::device::Resources;
use dphls_core::{Banding, KernelConfig, OpCounts, WalkKind};

/// Everything the resource/frequency models need to know about a kernel —
/// the structural profile the harness builds from the kernel registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Measured PE operator counts.
    pub op_counts: OpCounts,
    /// Score datapath width (bits).
    pub score_bits: u32,
    /// Symbol storage width (bits).
    pub sym_bits: u32,
    /// Traceback pointer width (bits, 0 when no traceback).
    pub tb_bits: u32,
    /// Scoring layers per cell.
    pub n_layers: usize,
    /// The traceback walk kind, if any.
    pub walk: Option<WalkKind>,
    /// `ScoringParams` storage footprint (bits).
    pub param_table_bits: u32,
}

// ---- calibrated constants (fit once on Table 2 kernel #1; see module doc) --

/// LUTs per adder bit.
const LUT_PER_ADD_BIT: u64 = 1;
/// LUTs per comparator+mux bit.
const LUT_PER_CMP_BIT: u64 = 2;
/// Fixed per-PE control LUTs (wavefront index tracking, symbol compare).
const LUT_PE_FIXED: u64 = 30;
/// FFs per operator output bit (pipeline staging, two-deep).
const FF_PER_OP_BIT: u64 = 2;
/// FFs per stored layer bit (DP memory buffer holds two wavefronts).
const FF_PER_LAYER_BIT: u64 = 2;
/// Fixed per-PE FFs.
const FF_PE_FIXED: u64 = 40;
/// Per-block control LUTs (chunk/wavefront FSM, arbiter port).
const LUT_BLOCK_FIXED: u64 = 1_300;
/// Per-block control FFs.
const FF_BLOCK_FIXED: u64 = 1_500;
/// Per-block interface BRAM18s (input/output buffering behind the arbiter).
const BRAM_BLOCK_FIXED: u64 = 10;
/// A traceback bank at or below this many bits becomes LUTRAM.
const LUTRAM_THRESHOLD_BITS: u64 = 4_096;
/// LUTs consumed per 64 bits of LUTRAM (one RAM64X1D per 64-bit column).
const LUT_PER_LUTRAM_WORD: u64 = 1;
/// Params tables larger than this are stored in BRAM per PE (smaller ones
/// synthesize to LUT ROMs).
const PARAM_BRAM_THRESHOLD_BITS: u32 = 2_048;

/// DSP48 slices per multiplier of the given operand width.
pub fn dsp_per_mult(score_bits: u32) -> u64 {
    score_bits.div_ceil(18) as u64
}

/// BRAM18 units needed for one memory bank of `depth` entries × `width`
/// bits, honoring the BRAM18 depth/width aspect configurations
/// (16K×1 … 512×36).
pub fn bram18_for_bank(depth: u64, width: u32) -> u64 {
    if depth == 0 || width == 0 {
        return 0;
    }
    let max_depth_at_width: u64 = match width {
        1 => 16_384,
        2 => 8_192,
        3..=4 => 4_096,
        5..=9 => 2_048,
        10..=18 => 1_024,
        _ => 512,
    };
    if width <= 36 {
        depth.div_ceil(max_depth_at_width)
    } else {
        // Wider than one BRAM18 port: split the width, then the depth.
        (width as u64).div_ceil(36) * depth.div_ceil(512)
    }
}

/// Resource estimate for one block of `config.npe` PEs.
///
/// Matches the granularity of Table 2 ("utilization ... for a single block
/// for 32 PEs").
pub fn estimate_block(profile: &KernelProfile, config: &KernelConfig) -> Resources {
    let npe = config.npe as u64;
    let ops = &profile.op_counts;
    let sb = profile.score_bits as u64;

    // Datapath per PE.
    let lut_pe = ops.adds * sb * LUT_PER_ADD_BIT
        + ops.cmps * sb * LUT_PER_CMP_BIT
        + profile.sym_bits as u64
        + LUT_PE_FIXED;
    let ff_pe = (ops.adds + ops.cmps + ops.muls) * sb * FF_PER_OP_BIT
        + profile.n_layers as u64 * sb * FF_PER_LAYER_BIT
        + FF_PE_FIXED;
    let dsp_pe = ops.muls * dsp_per_mult(profile.score_bits);

    let mut lut = lut_pe * npe + LUT_BLOCK_FIXED;
    let mut ff = ff_pe * npe + FF_BLOCK_FIXED;
    let mut dsp = dsp_pe * npe;
    let mut bram18: u64 = BRAM_BLOCK_FIXED;

    // Traceback start-address precompute (paper §7.1/§7.2: DSPs outside the
    // PEs): global walks need the full chunk/wavefront address arithmetic.
    dsp += match profile.walk {
        Some(WalkKind::Global) => 2,
        Some(_) | None => 1,
    };

    // Banded kernels add band-boundary address logic per PE (paper §7.1:
    // "banding kernels have slightly elevated logic usage").
    if let Banding::Fixed { .. } = config.banding {
        lut += 24 * npe;
        ff += 16 * npe;
    }

    // Traceback memory: NPE banks, coalesced (paper §5.2).
    if profile.walk.is_some() && profile.tb_bits > 0 {
        let chunks = config.max_query.div_ceil(config.npe) as u64;
        let depth = chunks * (config.max_ref as u64 + npe - 1);
        let bank_bits = depth * profile.tb_bits as u64;
        if bank_bits <= LUTRAM_THRESHOLD_BITS {
            // Shallow banks become LUTRAM (observed at NPE = 64, §7.2).
            lut += npe * bank_bits.div_ceil(64) * LUT_PER_LUTRAM_WORD;
        } else {
            bram18 += npe * bram18_for_bank(depth, profile.tb_bits);
        }
    }

    // Sequence buffers (local query/reference) are fully partitioned into
    // registers for parallel PE access.
    ff += (config.max_query as u64 + config.max_ref as u64) * profile.sym_bits as u64 / 8;

    // Preserved row score buffer: MAX_R × N_LAYERS × score bits.
    let row_bits = config.max_ref as u64 * profile.n_layers as u64 * sb;
    bram18 += bram18_for_bank(config.max_ref as u64, (profile.n_layers as u64 * sb) as u32)
        .min(row_bits.div_ceil(18_432).max(1));

    // Wide ScoringParams tables replicate per PE for parallel access
    // (kernel #15's BLOSUM matrix drives its BRAM, §7.1).
    if profile.param_table_bits > PARAM_BRAM_THRESHOLD_BITS {
        bram18 += npe * (profile.param_table_bits as u64).div_ceil(18_432);
    }

    Resources {
        lut,
        ff,
        bram36: bram18.div_ceil(2),
        dsp,
    }
}

/// Device-level aggregate: `NB × NK` blocks plus per-channel arbiter logic.
pub fn estimate_device(profile: &KernelProfile, config: &KernelConfig) -> Resources {
    let block = estimate_block(profile, config);
    let arbiters = Resources {
        lut: 2_000,
        ff: 2_500,
        bram36: 4,
        dsp: 0,
    };
    block
        .times(config.total_blocks() as u64)
        .plus(arbiters.times(config.nk as u64))
}

/// The largest `NB` (at fixed `NPE`, `NK`) whose aggregate still fits the
/// device — the paper's "NB capped at 24 as it reached maximum DSP
/// availability" analysis for DTW (§7.2).
pub fn max_nb(
    profile: &KernelProfile,
    base: &KernelConfig,
    device: &crate::device::FpgaDevice,
) -> usize {
    let mut nb = 0usize;
    loop {
        let candidate = KernelConfig {
            nb: nb + 1,
            ..*base
        };
        if !estimate_device(profile, &candidate).fits(device) || nb + 1 > 4096 {
            return nb;
        }
        nb += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::XCVU9P;
    use dphls_core::WalkKind;

    fn linear_profile() -> KernelProfile {
        // Kernel #1-like: 3 adds, 2 cmps, no muls, 16-bit scores, 2-bit tb.
        KernelProfile {
            op_counts: OpCounts {
                adds: 3,
                muls: 0,
                cmps: 2,
                depth: 3,
            },
            score_bits: 16,
            sym_bits: 2,
            tb_bits: 2,
            n_layers: 1,
            walk: Some(WalkKind::Global),
            param_table_bits: 48,
        }
    }

    fn profile_kernel_profile() -> KernelProfile {
        // Kernel #8-like: 30 muls on 32-bit scores.
        KernelProfile {
            op_counts: OpCounts {
                adds: 13,
                muls: 30,
                cmps: 2,
                depth: 44,
            },
            score_bits: 32,
            sym_bits: 80,
            tb_bits: 2,
            n_layers: 1,
            walk: Some(WalkKind::Global),
            param_table_bits: 832,
        }
    }

    fn cfg32() -> KernelConfig {
        KernelConfig::new(32, 1, 1)
    }

    #[test]
    fn kernel1_block_lands_near_table2() {
        // Table 2 row #1 (32-PE block): LUT 0.72%, FF 0.42%, BRAM 1.78%,
        // DSP 0.029% of xcvu9p. The model must land within 2.5x on every
        // column (absolute synthesis numbers are tool noise; the trend
        // matters).
        let r = estimate_block(&linear_profile(), &cfg32());
        let u = r.utilization(&XCVU9P);
        let paper = [0.0072, 0.0042, 0.0178, 0.00029];
        for (i, (&got, &want)) in u.iter().zip(paper.iter()).enumerate() {
            let ratio = got / want;
            assert!(
                (0.4..2.5).contains(&ratio),
                "column {i}: got {got:.5}, paper {want:.5}, ratio {ratio:.2}"
            );
        }
    }

    #[test]
    fn dsp_follows_multipliers() {
        let lin = estimate_block(&linear_profile(), &cfg32());
        let prof = estimate_block(&profile_kernel_profile(), &cfg32());
        // Add-only kernel: just the TB-address DSPs.
        assert_eq!(lin.dsp, 2);
        // 30 muls x 2 DSP x 32 PEs + 2 = 1922 — Table 2's 28.11% (1923).
        assert_eq!(prof.dsp, 30 * 2 * 32 + 2);
    }

    #[test]
    fn lut_ff_scale_linearly_with_npe() {
        // Use a no-traceback profile so the BRAM->LUTRAM conversion at high
        // NPE does not perturb the datapath LUT count.
        let mut p = linear_profile();
        p.walk = None;
        p.tb_bits = 0;
        let r16 = estimate_block(&p, &KernelConfig::new(16, 1, 1));
        let r64 = estimate_block(&p, &KernelConfig::new(64, 1, 1));
        let lut_ratio = (r64.lut - LUT_BLOCK_FIXED) as f64 / (r16.lut - LUT_BLOCK_FIXED) as f64;
        assert!((lut_ratio - 4.0).abs() < 0.5, "ratio {lut_ratio}");
    }

    #[test]
    fn lutram_conversion_at_high_npe() {
        // NPE = 64 with 2-bit pointers: banks shrink below the threshold and
        // convert to LUTRAM, dropping BRAM (paper §7.2 / Fig 3B).
        let p = linear_profile();
        let r32 = estimate_block(&p, &KernelConfig::new(32, 1, 1));
        let r64 = estimate_block(&p, &KernelConfig::new(64, 1, 1));
        assert!(
            r64.bram36 < r32.bram36,
            "bram {} !< {}",
            r64.bram36,
            r32.bram36
        );
    }

    #[test]
    fn wide_pointers_use_more_bram() {
        // 7-bit two-piece pointers vs 2-bit linear pointers (paper §7.1).
        let mut p = linear_profile();
        let narrow = estimate_block(&p, &cfg32());
        p.tb_bits = 7;
        let wide = estimate_block(&p, &cfg32());
        assert!(wide.bram36 > narrow.bram36);
    }

    #[test]
    fn no_walk_skips_tb_bram() {
        let mut p = linear_profile();
        p.walk = None;
        p.tb_bits = 0;
        let r = estimate_block(&p, &cfg32());
        let with_tb = estimate_block(&linear_profile(), &cfg32());
        assert!(r.bram36 < with_tb.bram36);
        assert_eq!(r.dsp, 1);
    }

    #[test]
    fn protein_matrix_replicates_per_pe() {
        let mut p = linear_profile();
        p.param_table_bits = 6_416; // BLOSUM62 + gap
        let r = estimate_block(&p, &cfg32());
        let base = estimate_block(&linear_profile(), &cfg32());
        assert!(r.bram36 >= base.bram36 + 16); // one BRAM18 per PE
    }

    #[test]
    fn banding_adds_logic() {
        let p = linear_profile();
        let plain = estimate_block(&p, &cfg32());
        let banded = estimate_block(&p, &cfg32().with_banding(16));
        assert!(banded.lut > plain.lut);
        assert!(banded.ff > plain.ff);
    }

    #[test]
    fn device_estimate_scales_with_blocks() {
        let p = linear_profile();
        let cfg = KernelConfig::new(32, 4, 2);
        let dev = estimate_device(&p, &cfg);
        let block = estimate_block(&p, &cfg);
        assert!(dev.lut >= block.lut * 8);
        assert_eq!(dev.dsp, block.dsp * 8);
    }

    #[test]
    fn max_nb_is_finite_and_positive() {
        let p = profile_kernel_profile();
        let base = KernelConfig::new(32, 1, 1);
        let cap = max_nb(&p, &base, &XCVU9P);
        // DSP-heavy kernel: the cap lands in the single-digit-to-tens range
        // (the paper's DTW NB cap analysis).
        assert!(cap > 0 && cap < 64, "cap {cap}");
    }

    #[test]
    fn bram18_bank_aspect_ratios() {
        assert_eq!(bram18_for_bank(2048, 2), 1);
        assert_eq!(bram18_for_bank(8192, 2), 1);
        assert_eq!(bram18_for_bank(8193, 2), 2);
        assert_eq!(bram18_for_bank(2296, 7), 2); // the #5 case: depth > 2048 at 7 bits
        assert_eq!(bram18_for_bank(512, 36), 1);
        assert_eq!(bram18_for_bank(0, 4), 0);
        // 72-bit wide: split into two 36-bit halves.
        assert_eq!(bram18_for_bank(512, 72), 2);
    }

    #[test]
    fn dsp_per_mult_widths() {
        assert_eq!(dsp_per_mult(16), 1);
        assert_eq!(dsp_per_mult(18), 1);
        assert_eq!(dsp_per_mult(32), 2);
        assert_eq!(dsp_per_mult(64), 4);
    }
}
