//! The per-pair execution seam between the host schedulers and the systolic
//! back-end: a [`PairEngine`] turns `(query, reference)` into a
//! [`SystolicRun`], owning whatever scratch state that takes. The batch and
//! streaming engines are generic over it, so **runtime precision dispatch**
//! costs the host layers zero API churn:
//!
//! * [`ExactEngine`] — the original path, one exact run per pair at the
//!   kernel's native score width;
//! * [`AdaptiveEngine`] — the saturating-`i8` fast path with exact `i16`
//!   escalation ([`dphls_systolic::run_adaptive_with_scratch`]), narrowing
//!   the parameters once at construction.
//!
//! Both produce bit-identical outputs (the adaptive escalation contract —
//! see `crates/systolic/src/adaptive.rs`); the only report-visible
//! difference is the escalation counter.

use dphls_core::{AdaptiveKernel, I8Lanes, KernelConfig, KernelSpec, LaneKernel, LanePrecision};
use dphls_systolic::{
    run_adaptive_with_scratch, run_systolic_with_scratch, AdaptiveScratch, SystolicError,
    SystolicRun, SystolicScratch,
};

/// One pair in, one run out: the strategy object the host schedulers thread
/// through their worker loops. Implementations must be cheap to share
/// (`Sync`) — one instance serves every worker thread — and hand each worker
/// its own scratch via [`new_scratch`](Self::new_scratch).
pub trait PairEngine<K: KernelSpec>: Sync {
    /// Per-worker scratch state, created once per worker thread and reused
    /// across all its pairs (and rebuilt after a caught panic, which may
    /// have left it inconsistent).
    type Scratch;

    /// Creates one worker's scratch arena.
    fn new_scratch(&self) -> Self::Scratch;

    /// Runs one alignment.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError`] if the configuration is invalid, a
    /// sequence is empty, or a sequence exceeds the configured maximums.
    fn run_pair(
        &self,
        q: &[K::Sym],
        r: &[K::Sym],
        config: &KernelConfig,
        scratch: &mut Self::Scratch,
    ) -> Result<SystolicRun<K::Score>, SystolicError>;
}

/// The exact path: every pair runs once at the kernel's native score width
/// through [`run_systolic_with_scratch`]. [`BlockStats::escalations`] is
/// always 0 here.
///
/// [`BlockStats::escalations`]: dphls_systolic::BlockStats::escalations
pub struct ExactEngine<K: KernelSpec> {
    params: K::Params,
}

impl<K: KernelSpec> ExactEngine<K> {
    /// Wraps the kernel parameters.
    pub fn new(params: K::Params) -> Self {
        Self { params }
    }
}

impl<K: LaneKernel> PairEngine<K> for ExactEngine<K> {
    type Scratch = SystolicScratch<K::Score>;

    fn new_scratch(&self) -> Self::Scratch {
        SystolicScratch::new()
    }

    fn run_pair(
        &self,
        q: &[K::Sym],
        r: &[K::Sym],
        config: &KernelConfig,
        scratch: &mut Self::Scratch,
    ) -> Result<SystolicRun<K::Score>, SystolicError> {
        run_systolic_with_scratch::<K>(&self.params, q, r, config, scratch)
    }
}

/// The adaptive path: saturating `i8` first, exact `i16` re-run when the
/// guard trips. Parameters are narrowed **once** at construction; if they
/// exceed the `i8` envelope ([`dphls_core::I8_PARAM_LIMIT`]) every pair
/// runs exact and counts as escalated.
pub struct AdaptiveEngine<K: AdaptiveKernel> {
    params: K::Params,
    lo_params: Option<<K::Lo as KernelSpec>::Params>,
    lanes: I8Lanes,
}

impl<K: AdaptiveKernel> AdaptiveEngine<K> {
    /// Wraps the kernel parameters, narrowing them for the `i8` fast path.
    pub fn new(params: K::Params, lanes: I8Lanes) -> Self {
        let lo_params = K::lo_params(&params);
        Self {
            params,
            lo_params,
            lanes,
        }
    }

    /// Whether the fast path is live (parameters fit the `i8` envelope).
    pub fn narrow_path_enabled(&self) -> bool {
        self.lo_params.is_some()
    }
}

impl<K: AdaptiveKernel> PairEngine<K> for AdaptiveEngine<K> {
    type Scratch = AdaptiveScratch;

    fn new_scratch(&self) -> Self::Scratch {
        AdaptiveScratch::new()
    }

    fn run_pair(
        &self,
        q: &[K::Sym],
        r: &[K::Sym],
        config: &KernelConfig,
        scratch: &mut Self::Scratch,
    ) -> Result<SystolicRun<K::Score>, SystolicError> {
        run_adaptive_with_scratch::<K>(
            &self.params,
            self.lo_params.as_ref(),
            self.lanes,
            q,
            r,
            config,
            scratch,
        )
    }
}

/// Either engine behind one type, so callers can pick the precision at
/// **runtime** from a [`LanePrecision`] knob (config files, CLI flags, the
/// serve layer) without monomorphizing two whole pipelines themselves.
pub enum PrecisionEngine<K: AdaptiveKernel> {
    /// Always run at the native score width.
    Exact(ExactEngine<K>),
    /// `i8` fast path with `i16` escalation.
    Adaptive(AdaptiveEngine<K>),
}

impl<K: AdaptiveKernel> PrecisionEngine<K> {
    /// Builds the engine selected by `precision`.
    pub fn new(params: K::Params, precision: LanePrecision) -> Self {
        match precision {
            LanePrecision::Exact => Self::Exact(ExactEngine::new(params)),
            LanePrecision::Adaptive(lanes) => Self::Adaptive(AdaptiveEngine::new(params, lanes)),
        }
    }
}

/// Scratch for [`PrecisionEngine`]: the variant matching the live engine.
///
/// The variants differ in size (the adaptive arena is two arenas), but a
/// scratch exists once per slot thread and lives for the whole run, so the
/// footprint is slots-bounded and indirection would only add a pointer
/// chase to the hot loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PrecisionScratch<S> {
    /// Exact-path arena.
    Exact(SystolicScratch<S>),
    /// Adaptive-path arena pair.
    Adaptive(AdaptiveScratch),
}

impl<K: AdaptiveKernel> PairEngine<K> for PrecisionEngine<K> {
    type Scratch = PrecisionScratch<i16>;

    fn new_scratch(&self) -> Self::Scratch {
        match self {
            Self::Exact(_) => PrecisionScratch::Exact(SystolicScratch::new()),
            Self::Adaptive(_) => PrecisionScratch::Adaptive(AdaptiveScratch::new()),
        }
    }

    fn run_pair(
        &self,
        q: &[K::Sym],
        r: &[K::Sym],
        config: &KernelConfig,
        scratch: &mut Self::Scratch,
    ) -> Result<SystolicRun<i16>, SystolicError> {
        match (self, scratch) {
            (Self::Exact(e), PrecisionScratch::Exact(s)) => e.run_pair(q, r, config, s),
            (Self::Adaptive(e), PrecisionScratch::Adaptive(s)) => e.run_pair(q, r, config, s),
            // A worker's scratch always comes from this engine's
            // `new_scratch`, so the variants can only disagree through a
            // caller bug; rebuild rather than corrupt.
            (Self::Exact(e), s) => {
                *s = PrecisionScratch::Exact(SystolicScratch::new());
                let PrecisionScratch::Exact(inner) = s else {
                    unreachable!()
                };
                e.run_pair(q, r, config, inner)
            }
            (Self::Adaptive(e), s) => {
                *s = PrecisionScratch::Adaptive(AdaptiveScratch::new());
                let PrecisionScratch::Adaptive(inner) = s else {
                    unreachable!()
                };
                e.run_pair(q, r, config, inner)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_kernels::{GlobalLinear, LinearParams};
    use dphls_seq::DnaSeq;

    fn cfg() -> KernelConfig {
        KernelConfig::new(4, 1, 1).with_max_lengths(64, 64)
    }

    #[test]
    fn engines_agree_and_report_escalations() {
        let q: DnaSeq = "ACGTACGTAC".parse().unwrap();
        let r: DnaSeq = "ACGATCGTTC".parse().unwrap();
        let exact = ExactEngine::<GlobalLinear>::new(LinearParams::dna());
        let mut es = PairEngine::<GlobalLinear>::new_scratch(&exact);
        let want = exact
            .run_pair(q.as_slice(), r.as_slice(), &cfg(), &mut es)
            .unwrap();
        assert_eq!(want.stats.escalations, 0);

        for precision in [
            LanePrecision::Exact,
            LanePrecision::Adaptive(I8Lanes::X16),
            LanePrecision::Adaptive(I8Lanes::X32),
        ] {
            let eng = PrecisionEngine::<GlobalLinear>::new(LinearParams::dna(), precision);
            let mut s = eng.new_scratch();
            let got = eng
                .run_pair(q.as_slice(), r.as_slice(), &cfg(), &mut s)
                .unwrap();
            assert_eq!(got.output, want.output, "{precision:?}");
        }
    }

    #[test]
    fn adaptive_engine_narrows_once() {
        let eng = AdaptiveEngine::<GlobalLinear>::new(LinearParams::dna(), I8Lanes::X16);
        assert!(eng.narrow_path_enabled());
        let wide = AdaptiveEngine::<GlobalLinear>::new(
            LinearParams {
                match_score: 100,
                mismatch: -3,
                gap: -2,
            },
            I8Lanes::X16,
        );
        assert!(!wide.narrow_path_enabled());
    }
}
