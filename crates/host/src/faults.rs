//! Deterministic fault injection for the host engines.
//!
//! A [`FaultPlan`] names, per input pair index, a fault to inject while the
//! engines run: a kernel error, a worker panic, an artificial slot stall
//! (to trip the cost-scaled deadline), or — streaming only — a mid-stream
//! source error. Plans are plain data, built explicitly or seeded via
//! [`FaultPlan::random`], so every chaos run is reproducible from its seed.
//!
//! Both engines accept an optional plan
//! ([`run_batched_resilient`](crate::scheduler::run_batched_resilient),
//! [`run_streamed_resilient`](crate::streaming::run_streamed_resilient));
//! `None` (the production configuration) skips every injection check.
//! `tests/chaos.rs` drives the degradation contract on top: surviving
//! outputs bit-identical to the fault-free run, input-ordered, and every
//! injection reconciled exactly once against the report's
//! `faults`/`retries`/`timeouts`.
//!
//! Injection points exercise the *real* failure machinery — an injected
//! panic is a genuine `panic!` caught by the slot-loop `catch_unwind`, an
//! injected stall is a genuine sleep measured by the real deadline clock —
//! so the chaos suite covers the same code paths a production fault would.

use std::time::Duration;

use dphls_systolic::SystolicError;
use dphls_util::Xoshiro256;

/// What to inject at a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker reports [`injected_kernel_error`] for the pair instead
    /// of running the kernel.
    KernelError,
    /// The worker panics (with [`injected_panic_message`]) while holding
    /// the pair — caught by the slot-loop `catch_unwind`.
    Panic,
    /// The worker sleeps this long before scoring the pair, tripping a
    /// cost-scaled deadline when one is configured. The sleep is
    /// abort-aware on the engine side, so a stalled slot never outlives
    /// the run.
    Stall {
        /// Artificial delay in milliseconds.
        millis: u64,
    },
    /// Streaming only: the source iterator yields an error at this index
    /// instead of a sequence pair (see [`FaultPlan::wrap_source`]). The
    /// worker-side [`FaultPlan::worker_fault`] never reports this kind.
    SourceError,
    /// The whole device that picks up this pair is lost: its workers stop
    /// dispatching, its queued pairs migrate to surviving devices, and the
    /// in-flight pair itself fails with
    /// [`FaultCause::DeviceLost`](crate::resilience::FaultCause::DeviceLost)
    /// and re-enters the normal retry/quarantine path. Ignored (the pair
    /// runs normally) when no other live device remains — a fleet never
    /// loses its last device. Not produced by [`FaultPlan::random`], whose
    /// per-pair kinds stay device-local.
    DeviceLoss,
}

/// One planned injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Input pair index the fault fires at.
    pub idx: usize,
    /// The fault to inject.
    pub kind: FaultKind,
    /// `false`: fire only on the pair's first attempt, so a retry
    /// succeeds (models a transient fault). `true`: fire on every
    /// attempt, so the pair exhausts its retries and is quarantined
    /// (models a persistent fault). Source errors are not retried, so the
    /// flag is irrelevant for [`FaultKind::SourceError`].
    pub sticky: bool,
}

/// A deterministic set of injections, at most one per pair index — the
/// one-per-index invariant is what lets the chaos suite reconcile the
/// report's fault accounting *exactly* against the plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    injections: Vec<Injection>,
}

/// The sentinel error every injected [`FaultKind::KernelError`] reports.
/// A real empty-sequence error cannot occur for a workload the engines
/// already validated, so chaos tests can tell injections from genuine
/// kernel failures.
pub fn injected_kernel_error() -> SystolicError {
    SystolicError::EmptySequence
}

/// The panic message an injected [`FaultKind::Panic`] carries; the chaos
/// suite's panic hook matches on this prefix to keep expected panics out
/// of test output.
pub fn injected_panic_message(idx: usize) -> String {
    format!("injected panic: pair {idx}")
}

impl FaultPlan {
    /// An empty plan (no injections).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a transient injection at `idx` (fires on the first attempt
    /// only, so one retry clears it).
    ///
    /// # Panics
    ///
    /// Panics if `idx` already has an injection — one fault per pair is
    /// the invariant exact reconciliation rests on.
    pub fn inject(mut self, idx: usize, kind: FaultKind) -> Self {
        self.push(Injection {
            idx,
            kind,
            sticky: false,
        });
        self
    }

    /// Adds a persistent injection at `idx` (fires on every attempt, so
    /// the pair is quarantined once retries run out).
    ///
    /// # Panics
    ///
    /// Panics if `idx` already has an injection.
    pub fn inject_sticky(mut self, idx: usize, kind: FaultKind) -> Self {
        self.push(Injection {
            idx,
            kind,
            sticky: true,
        });
        self
    }

    fn push(&mut self, injection: Injection) {
        assert!(
            !self.injections.iter().any(|i| i.idx == injection.idx),
            "FaultPlan already injects at pair {}",
            injection.idx
        );
        self.injections.push(injection);
    }

    /// A seeded random plan: `count` distinct pair indices in
    /// `0..pairs`, each given a random worker-side fault kind
    /// (kernel error / panic / `Stall {{ millis: stall_millis }}`) and a
    /// random stickiness. Identical seeds give identical plans.
    pub fn random(seed: u64, pairs: usize, count: usize, stall_millis: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let count = count.min(pairs);
        let mut taken = vec![false; pairs];
        for _ in 0..count {
            let mut idx = rng.next_range(pairs as u64) as usize;
            while taken[idx] {
                idx = (idx + 1) % pairs;
            }
            taken[idx] = true;
            let kind = match rng.next_range(3) {
                0 => FaultKind::KernelError,
                1 => FaultKind::Panic,
                _ => FaultKind::Stall {
                    millis: stall_millis,
                },
            };
            let injection = Injection {
                idx,
                kind,
                sticky: rng.next_bool(0.5),
            };
            plan.push(injection);
        }
        plan.injections.sort_by_key(|i| i.idx);
        plan
    }

    /// The planned injections, in insertion order ([`FaultPlan::random`]
    /// sorts by index).
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The worker-side fault to apply when scoring pair `idx` on attempt
    /// `attempt` (0-based): `Some` for a sticky injection on any attempt,
    /// or a transient one on attempt 0. [`FaultKind::SourceError`] is a
    /// source-side injection and is never reported here.
    pub fn worker_fault(&self, idx: usize, attempt: u32) -> Option<FaultKind> {
        self.injections
            .iter()
            .find(|i| i.idx == idx && i.kind != FaultKind::SourceError)
            .filter(|i| i.sticky || attempt == 0)
            .map(|i| i.kind)
    }

    /// The pair indices carrying [`FaultKind::SourceError`] injections.
    pub fn source_error_indices(&self) -> Vec<usize> {
        self.injections
            .iter()
            .filter(|i| i.kind == FaultKind::SourceError)
            .map(|i| i.idx)
            .collect()
    }

    /// Wraps a fallible stream source so that items at this plan's
    /// [`FaultKind::SourceError`] indices are replaced with
    /// `Err(make_err(idx))` — the original item is consumed and dropped,
    /// modelling a record that failed to parse mid-stream.
    pub fn wrap_source<T, E, I, F>(
        &self,
        source: I,
        mut make_err: F,
    ) -> impl Iterator<Item = Result<T, E>>
    where
        I: Iterator<Item = Result<T, E>>,
        F: FnMut(usize) -> E,
    {
        let bad = self.source_error_indices();
        source.enumerate().map(move |(idx, item)| {
            if bad.contains(&idx) {
                Err(make_err(idx))
            } else {
                item
            }
        })
    }

    /// Total artificial stall time the plan can add to one attempt wave —
    /// used by tests to budget deadlines.
    pub fn total_stall(&self) -> Duration {
        self.injections
            .iter()
            .map(|i| match i.kind {
                FaultKind::Stall { millis } => Duration::from_millis(millis),
                _ => Duration::ZERO,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fires_once_sticky_fires_always() {
        let plan = FaultPlan::new()
            .inject(3, FaultKind::KernelError)
            .inject_sticky(5, FaultKind::Panic);
        assert_eq!(plan.worker_fault(3, 0), Some(FaultKind::KernelError));
        assert_eq!(plan.worker_fault(3, 1), None);
        assert_eq!(plan.worker_fault(5, 0), Some(FaultKind::Panic));
        assert_eq!(plan.worker_fault(5, 4), Some(FaultKind::Panic));
        assert_eq!(plan.worker_fault(4, 0), None);
    }

    #[test]
    #[should_panic(expected = "already injects")]
    fn duplicate_index_rejected() {
        let _ = FaultPlan::new()
            .inject(1, FaultKind::Panic)
            .inject(1, FaultKind::KernelError);
    }

    #[test]
    fn random_is_deterministic_and_distinct() {
        let a = FaultPlan::random(42, 100, 10, 5);
        let b = FaultPlan::random(42, 100, 10, 5);
        assert_eq!(a, b);
        assert_eq!(a.injections().len(), 10);
        let mut idxs: Vec<_> = a.injections().iter().map(|i| i.idx).collect();
        idxs.dedup();
        assert_eq!(idxs.len(), 10, "indices must be distinct and sorted");
        assert!(idxs.iter().all(|&i| i < 100));
        let c = FaultPlan::random(43, 100, 10, 5);
        assert_ne!(a, c, "different seeds give different plans");
        // Requesting more faults than pairs saturates at one per pair.
        assert_eq!(FaultPlan::random(7, 4, 10, 5).injections().len(), 4);
    }

    #[test]
    fn source_faults_replace_items() {
        let plan = FaultPlan::new()
            .inject(1, FaultKind::SourceError)
            .inject(2, FaultKind::KernelError);
        assert_eq!(plan.source_error_indices(), vec![1]);
        // SourceError never surfaces as a worker fault.
        assert_eq!(plan.worker_fault(1, 0), None);
        let src = (0..4).map(Ok::<u32, String>);
        let wrapped: Vec<_> = plan.wrap_source(src, |i| format!("io at {i}")).collect();
        assert_eq!(
            wrapped,
            vec![Ok(0), Err("io at 1".to_string()), Ok(2), Ok(3)]
        );
    }

    #[test]
    fn stall_budget_sums() {
        let plan = FaultPlan::new()
            .inject(0, FaultKind::Stall { millis: 5 })
            .inject_sticky(1, FaultKind::Stall { millis: 7 })
            .inject(2, FaultKind::Panic);
        assert_eq!(plan.total_stall(), Duration::from_millis(12));
    }
}
