//! Fleet topology: a simulated pool of `D` identical devices behind one
//! host dispatcher (ROADMAP's "one level up" generalization of the paper's
//! single NPE×NB×NK device).
//!
//! Following Chi et al.'s task-parallel HLS blueprint (PAPERS.md), the
//! fleet is modeled as communicating tasks over bounded queues rather than
//! a monolithic loop nest: the host deals the cost-ranked workload across
//! `D` per-device queue groups, each device drains its own group with its
//! full `NK × nb_slots` worker pool, and idle devices steal from busy ones.
//! The cycle model composes per-device [`arbitrated_cycles`] with a modeled
//! host↔device [`TransferModel`] cost and divides by `D`
//! ([`fleet_cycles`]) — so the fleet is a **pure throughput/topology
//! change**: outputs, ordering, and error behavior are bit-identical across
//! every `D` (enforced by `crates/host/tests/fleet.rs`).
//!
//! [`arbitrated_cycles`]: dphls_systolic::arbitrated_cycles
//! [`fleet_cycles`]: dphls_systolic::fleet_cycles

use dphls_systolic::TransferModel;

/// How many simulated devices the host shards work across, and what moving
/// a pair to a device costs in the cycle model.
///
/// Each device is a full NPE×NB×NK pool (the [`Device`] the run was given,
/// replicated `devices` times). [`FleetConfig::single`] — one device, free
/// transfer — reproduces the pre-fleet engines exactly, cycle for cycle,
/// and is the default.
///
/// [`Device`]: dphls_systolic::Device
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of simulated devices `D`. `0` is treated as `1` (see
    /// [`FleetConfig::resolve_devices`]).
    pub devices: usize,
    /// Modeled host↔device transfer cost charged to every pair (see
    /// [`TransferModel`]). [`TransferModel::zero`] makes the link free.
    pub transfer: TransferModel,
}

impl FleetConfig {
    /// One device with a free link — the exact pre-fleet behavior, and the
    /// default.
    pub fn single() -> Self {
        Self {
            devices: 1,
            transfer: TransferModel::zero(),
        }
    }

    /// A fleet of `devices` devices behind [`TransferModel::pcie`] links.
    pub fn new(devices: usize) -> Self {
        Self {
            devices,
            transfer: TransferModel::pcie(),
        }
    }

    /// Replaces the transfer model, builder-style.
    pub fn with_transfer(mut self, transfer: TransferModel) -> Self {
        self.transfer = transfer;
        self
    }

    /// The device count a run will actually use: `devices`, with `0`
    /// clamped to `1` (a fleet always has at least one device).
    pub fn resolve_devices(&self) -> usize {
        self.devices.max(1)
    }
}

impl Default for FleetConfig {
    /// Defaults to [`FleetConfig::single`] so existing entry points keep
    /// their exact pre-fleet semantics.
    fn default() -> Self {
        FleetConfig::single()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_default_and_free() {
        assert_eq!(FleetConfig::default(), FleetConfig::single());
        assert_eq!(FleetConfig::single().resolve_devices(), 1);
        assert_eq!(FleetConfig::single().transfer, TransferModel::zero());
        assert_eq!(FleetConfig::single().transfer.transfer_cycles(1 << 20), 0);
    }

    #[test]
    fn new_uses_pcie_and_zero_devices_resolve_to_one() {
        let f = FleetConfig::new(4);
        assert_eq!(f.resolve_devices(), 4);
        assert_eq!(f.transfer, TransferModel::pcie());
        assert_eq!(FleetConfig { devices: 0, ..f }.resolve_devices(), 1);
        let free = FleetConfig::new(2).with_transfer(TransferModel::zero());
        assert_eq!(free.transfer.transfer_cycles(4096), 0);
    }
}
