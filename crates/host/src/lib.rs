//! Host-side runtime for the DP-HLS reproduction (paper §4 step 6):
//! batching work across the device's `NK` channels with host threads
//! ([`scheduler`]) and aligning arbitrarily long reads on a fixed-size
//! device kernel with GACT-style tiling ([`tiling`]).
//!
//! # Example
//!
//! ```
//! use dphls_host::tiling::{tiled_global_affine, TilingConfig};
//! use dphls_kernels::AffineParams;
//! use dphls_seq::gen::ReadSimulator;
//!
//! // A 1,000-base read aligned on a 128-wide device kernel.
//! let mut sim = ReadSimulator::new(1);
//! let (reference, read) = sim.read_pair(1000, 0.1);
//! let params = AffineParams::<i32>::dna();
//! let cfg = TilingConfig { tile: 128, overlap: 32 };
//! let out = tiled_global_affine(read.as_slice(), reference.as_slice(), &params, cfg, 32)?;
//! assert_eq!(out.alignment.ref_span(), reference.len());
//! # Ok::<(), dphls_host::tiling::TilingError>(())
//! ```

// The host runtime is the outermost user-facing API; undocumented items are
// a build error, and CI keeps `cargo doc` warning-free.
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod engine;
pub mod faults;
pub mod fleet;
pub mod resilience;
pub mod scheduler;
pub mod session;
pub mod streaming;
pub mod tiling;

pub use engine::{AdaptiveEngine, ExactEngine, PairEngine, PrecisionEngine, PrecisionScratch};
pub use faults::{injected_kernel_error, injected_panic_message, FaultKind, FaultPlan, Injection};
pub use fleet::FleetConfig;
pub use resilience::{FailurePolicy, FaultCause, PairFault, ResilienceConfig};
pub use scheduler::{
    run_batched, run_batched_adaptive, run_batched_engine, run_batched_resilient, run_batched_with,
    BatchConfig, BatchError, BatchReport, ScheduleReport,
};
pub use session::{SessionClosed, StreamSession};
pub use streaming::{
    run_streamed, run_streamed_adaptive, run_streamed_collect, run_streamed_engine,
    run_streamed_fleet, run_streamed_fleet_collect, run_streamed_fleet_resilient,
    run_streamed_resilient, OrderedWriter, ReorderOverflow, StreamConfig, StreamError,
    StreamReport,
};
pub use tiling::{
    score_path_affine, tiled_global_affine, TiledAlignment, TilingConfig, TilingError,
};
