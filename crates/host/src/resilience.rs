//! Resilience policy for the host engines: per-pair fault isolation,
//! cost-scaled deadlines, retry with exponential backoff, and quarantine.
//!
//! The ROADMAP's alignment-as-a-service north star cannot stand on engines
//! where one malformed record or one panicking kernel aborts the whole
//! `run_batched` / `run_streamed` invocation. This module defines the
//! *policy* types threaded through both engines:
//!
//! * [`ResilienceConfig`] — how hard to try before giving up on a pair
//!   (deadline, retries, backoff) and what giving up means
//!   ([`FailurePolicy::Abort`] the run, or [`FailurePolicy::Quarantine`]
//!   just that pair).
//! * [`PairFault`] — the structured record a quarantined pair leaves behind
//!   in [`BatchReport::faults`](crate::scheduler::BatchReport) /
//!   [`StreamReport::faults`](crate::streaming::StreamReport).
//! * [`FaultCause`] — the fault taxonomy: kernel error, worker panic,
//!   deadline timeout, or (streaming only) a source-iterator error.
//!
//! The degradation contract both engines gate on in `tests/chaos.rs`: for
//! any fault pattern, the *surviving* outputs are bit-identical to a
//! fault-free run and arrive in input order, and every injected fault is
//! accounted for exactly once across `faults` and the retry/timeout
//! counters.

use std::fmt;
use std::time::Duration;

use dphls_systolic::SystolicError;

/// What the engine does with a pair that failed even after retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Tear down the run and surface the first failure as the run error —
    /// the pre-resilience behaviour, and the default.
    #[default]
    Abort,
    /// Record a [`PairFault`] for the pair and keep the run alive; the
    /// pair's output slot stays empty (`None` in batch, an `Err` slot in
    /// the streaming sink).
    Quarantine,
}

/// Why a pair failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultCause {
    /// The systolic kernel rejected or failed the pair.
    Kernel(SystolicError),
    /// The worker panicked while scoring the pair (caught at the slot
    /// loop); carries the stringified panic payload.
    Panic(String),
    /// The pair exceeded its cost-scaled deadline.
    Timeout {
        /// The deadline that was exceeded (already scaled by the pair's
        /// cost estimate).
        deadline: Duration,
    },
    /// Streaming only: the source iterator yielded an error for this
    /// record instead of a sequence pair; carries the stringified source
    /// error.
    Source(String),
    /// The fleet device holding the pair was lost (injected via
    /// [`FaultKind::DeviceLoss`](crate::faults::FaultKind::DeviceLoss));
    /// the pair is re-dealt to a surviving device or quarantined per
    /// policy.
    DeviceLost {
        /// Zero-based index of the lost device within the fleet.
        device: usize,
    },
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCause::Kernel(e) => write!(f, "kernel error: {e}"),
            FaultCause::Panic(msg) => write!(f, "worker panic: {msg}"),
            FaultCause::Timeout { deadline } => {
                write!(f, "pair deadline exceeded ({deadline:?})")
            }
            FaultCause::Source(msg) => write!(f, "source error: {msg}"),
            FaultCause::DeviceLost { device } => {
                write!(f, "fleet device {device} lost")
            }
        }
    }
}

/// A quarantined pair: which input it was, why it failed, and how many
/// times the engine tried it.
#[derive(Debug, Clone, PartialEq)]
pub struct PairFault {
    /// Input index of the pair (position in the batch workload / stream).
    pub idx: usize,
    /// The last failure observed for the pair.
    pub cause: FaultCause,
    /// Number of times the pair was attempted (1 = failed on the first try
    /// with no retries configured or available; source errors are never
    /// attempted, so they report 0).
    pub attempts: u32,
}

impl fmt::Display for PairFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pair {} quarantined after {} attempt(s): {}",
            self.idx, self.attempts, self.cause
        )
    }
}

/// Cell-count unit the per-pair deadline is quoted in: a deadline of `d`
/// means "d per [`DEADLINE_COST_UNIT`] DP cells, rounded up", so long pairs
/// get proportionally more time. 64 Ki cells is a 256×256 unbanded pair.
pub const DEADLINE_COST_UNIT: u64 = 1 << 16;

/// Resilience policy threaded through [`run_batched_resilient`] and
/// [`run_streamed_resilient`].
///
/// [`run_batched_resilient`]: crate::scheduler::run_batched_resilient
/// [`run_streamed_resilient`]: crate::streaming::run_streamed_resilient
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Per-pair deadline per [`DEADLINE_COST_UNIT`] DP cells (see
    /// [`ResilienceConfig::deadline_for`]); `None` disables deadlines. The
    /// check is cooperative — elapsed time is measured when the pair
    /// completes, and an over-deadline result is discarded and re-dealt —
    /// so a pair is never interrupted mid-recurrence.
    pub pair_deadline: Option<Duration>,
    /// How many times a failed/timed-out pair is re-dealt (onto a
    /// different channel's queue) before it is quarantined or aborts the
    /// run. `0` means one attempt total.
    pub max_retries: u32,
    /// Base backoff before retry `n` sleeps `backoff << (n - 1)`
    /// (exponential), so a transiently overloaded slot is not immediately
    /// re-hit.
    pub backoff: Duration,
    /// What to do once retries are exhausted.
    pub failure_policy: FailurePolicy,
    /// Streaming only: how long the producer may block feeding the bounded
    /// channel before the run degrades to
    /// [`StreamError::Stalled`](crate::streaming::StreamError::Stalled)
    /// instead of deadlocking behind a wedged consumer. `None` blocks
    /// forever (the pre-resilience behaviour).
    pub send_deadline: Option<Duration>,
}

impl ResilienceConfig {
    /// No resilience: no deadlines, no retries, abort on first failure —
    /// the exact pre-resilience engine behaviour, and the zero-overhead
    /// fast path (no `Instant` reads, no `catch_unwind` frame).
    pub fn disabled() -> Self {
        ResilienceConfig {
            pair_deadline: None,
            max_retries: 0,
            backoff: Duration::ZERO,
            failure_policy: FailurePolicy::Abort,
            send_deadline: None,
        }
    }

    /// A production-shaped default: 250 ms per 64 Ki-cell unit, two
    /// retries with 1 ms exponential backoff, quarantine on exhaustion,
    /// and a 30 s producer send deadline.
    pub fn standard() -> Self {
        ResilienceConfig {
            pair_deadline: Some(Duration::from_millis(250)),
            max_retries: 2,
            backoff: Duration::from_millis(1),
            failure_policy: FailurePolicy::Quarantine,
            send_deadline: Some(Duration::from_secs(30)),
        }
    }

    /// True when every mechanism is off and the engines may skip the
    /// timing/catch_unwind instrumentation entirely.
    pub fn is_disabled(&self) -> bool {
        self.pair_deadline.is_none()
            && self.max_retries == 0
            && self.failure_policy == FailurePolicy::Abort
            && self.send_deadline.is_none()
    }

    /// The absolute deadline for a pair whose cost estimate is
    /// `cost_cells` DP cells: `pair_deadline × ceil(cost / unit)`, at
    /// least one unit. `None` when deadlines are disabled.
    pub fn deadline_for(&self, cost_cells: u64) -> Option<Duration> {
        let base = self.pair_deadline?;
        let units = cost_cells.div_ceil(DEADLINE_COST_UNIT).max(1);
        Some(base.saturating_mul(u32::try_from(units).unwrap_or(u32::MAX)))
    }

    /// The backoff before retry attempt `attempt` (1-based): exponential
    /// doubling of [`ResilienceConfig::backoff`], capped at 2^16× to avoid
    /// shift overflow on absurd retry counts.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        if self.backoff.is_zero() || attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(16);
        self.backoff.saturating_mul(1u32 << shift)
    }
}

impl Default for ResilienceConfig {
    /// Defaults to [`ResilienceConfig::disabled`] so existing entry points
    /// keep their exact pre-resilience semantics.
    fn default() -> Self {
        ResilienceConfig::disabled()
    }
}

/// Sleeps for `total`, polling `abort` every couple of milliseconds so a
/// stalled or backing-off worker never outlives an aborted run.
pub(crate) fn abort_aware_sleep(total: Duration, abort: &std::sync::atomic::AtomicBool) {
    use std::sync::atomic::Ordering;
    use std::time::Instant;
    if total.is_zero() {
        return;
    }
    let deadline = Instant::now() + total;
    let step = Duration::from_millis(2);
    loop {
        if abort.load(Ordering::Relaxed) {
            return;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return;
        }
        std::thread::sleep(remaining.min(step));
    }
}

/// Best-effort stringification of a panic payload (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_recognised_and_default() {
        assert!(ResilienceConfig::disabled().is_disabled());
        assert!(ResilienceConfig::default().is_disabled());
        assert!(!ResilienceConfig::standard().is_disabled());
        let mut c = ResilienceConfig::disabled();
        c.failure_policy = FailurePolicy::Quarantine;
        assert!(!c.is_disabled());
    }

    #[test]
    fn deadline_scales_with_cost() {
        let c = ResilienceConfig {
            pair_deadline: Some(Duration::from_millis(100)),
            ..ResilienceConfig::disabled()
        };
        // Below one unit: one unit's worth.
        assert_eq!(c.deadline_for(0), Some(Duration::from_millis(100)));
        assert_eq!(c.deadline_for(100), Some(Duration::from_millis(100)));
        // Exactly one unit.
        assert_eq!(
            c.deadline_for(DEADLINE_COST_UNIT),
            Some(Duration::from_millis(100))
        );
        // Two-and-a-bit units round up to three.
        assert_eq!(
            c.deadline_for(2 * DEADLINE_COST_UNIT + 1),
            Some(Duration::from_millis(300))
        );
        assert_eq!(ResilienceConfig::disabled().deadline_for(1 << 30), None);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let c = ResilienceConfig {
            backoff: Duration::from_millis(2),
            ..ResilienceConfig::disabled()
        };
        assert_eq!(c.backoff_for(0), Duration::ZERO);
        assert_eq!(c.backoff_for(1), Duration::from_millis(2));
        assert_eq!(c.backoff_for(2), Duration::from_millis(4));
        assert_eq!(c.backoff_for(3), Duration::from_millis(8));
        assert_eq!(ResilienceConfig::disabled().backoff_for(5), Duration::ZERO);
    }

    #[test]
    fn fault_display_is_informative() {
        let f = PairFault {
            idx: 7,
            cause: FaultCause::Panic("boom".into()),
            attempts: 3,
        };
        let s = f.to_string();
        assert!(s.contains("pair 7"));
        assert!(s.contains("3 attempt"));
        assert!(s.contains("boom"));
        let t = FaultCause::Timeout {
            deadline: Duration::from_millis(250),
        }
        .to_string();
        assert!(t.contains("deadline"));
    }
}
