//! Host-side batch scheduler (paper §4 step 6): splits a workload across
//! the device's `NK` independent channels using host threads, mirroring the
//! paper's advice to "use multi-threading to leverage the device's NK
//! independent channels".

use dphls_core::{DpOutput, KernelSpec};
use dphls_systolic::{Device, SystolicError};
use parking_lot::Mutex;

/// Result of a scheduled batch run.
#[derive(Debug, Clone)]
pub struct ScheduleReport<S> {
    /// Outputs in input order.
    pub outputs: Vec<DpOutput<S>>,
    /// Alignments dispatched per channel.
    pub per_channel: Vec<usize>,
    /// Modeled device throughput (from the channel's device model).
    pub throughput_aps: f64,
}

/// Dispatches `workload` across the device's `NK` channels, one host thread
/// per channel (round-robin assignment, the paper's batching strategy).
///
/// # Errors
///
/// Propagates the first [`SystolicError`] encountered on any channel.
pub fn run_batched<K: KernelSpec>(
    device: &Device,
    params: &K::Params,
    workload: &[(Vec<K::Sym>, Vec<K::Sym>)],
) -> Result<ScheduleReport<K::Score>, SystolicError>
where
    K::Score: Send,
    K::Params: Sync,
{
    let nk = device.config().nk.max(1);
    let slots: Mutex<Vec<Option<DpOutput<K::Score>>>> =
        Mutex::new((0..workload.len()).map(|_| None).collect());
    let error: Mutex<Option<SystolicError>> = Mutex::new(None);
    let mut per_channel = vec![0usize; nk];
    for (idx, count) in per_channel.iter_mut().enumerate() {
        *count = workload.iter().skip(idx).step_by(nk).count();
    }

    crossbeam::scope(|scope| {
        for ch in 0..nk {
            let slots = &slots;
            let error = &error;
            scope.spawn(move |_| {
                for (i, (q, r)) in workload
                    .iter()
                    .enumerate()
                    .skip(ch)
                    .step_by(nk)
                {
                    match dphls_systolic::run_systolic::<K>(params, q, r, device.config()) {
                        Ok(run) => slots.lock()[i] = Some(run.output),
                        Err(e) => {
                            let mut guard = error.lock();
                            if guard.is_none() {
                                *guard = Some(e);
                            }
                            return;
                        }
                    }
                }
            });
        }
    })
    .expect("scheduler channel thread panicked");

    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    let outputs: Vec<DpOutput<K::Score>> = slots
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect();
    // Throughput comes from the device's cycle model over the same workload.
    let throughput_aps = device.run::<K>(params, workload)?.throughput_aps;
    Ok(ScheduleReport {
        outputs,
        per_channel,
        throughput_aps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::{run_reference, Banding, KernelConfig};
    use dphls_kernels::{GlobalLinear, LinearParams};
    use dphls_seq::gen::ReadSimulator;
    use dphls_systolic::{CycleModelParams, KernelCycleInfo};

    fn device(nk: usize) -> Device {
        Device::new(
            KernelConfig::new(8, 2, nk).with_max_lengths(96, 96),
            CycleModelParams::dphls(),
            KernelCycleInfo {
                sym_bits: 2,
                has_walk: true,
                ii: 1,
            },
            250.0,
        )
    }

    fn workload(n: usize) -> Vec<(Vec<dphls_seq::Base>, Vec<dphls_seq::Base>)> {
        let mut sim = ReadSimulator::new(31);
        sim.read_pairs(n, 80, 0.25)
            .into_iter()
            .map(|(r, mut q)| {
                q.truncate(80);
                (q.into_vec(), r.into_vec())
            })
            .collect()
    }

    #[test]
    fn outputs_preserve_input_order_and_values() {
        let wl = workload(11);
        let params = LinearParams::<i16>::dna();
        let rep = run_batched::<GlobalLinear>(&device(3), &params, &wl).unwrap();
        assert_eq!(rep.outputs.len(), 11);
        for (i, (q, r)) in wl.iter().enumerate() {
            let want = run_reference::<GlobalLinear>(&params, q, r, Banding::None);
            assert_eq!(rep.outputs[i], want, "pair {i}");
        }
    }

    #[test]
    fn channels_split_round_robin() {
        let wl = workload(10);
        let params = LinearParams::<i16>::dna();
        let rep = run_batched::<GlobalLinear>(&device(4), &params, &wl).unwrap();
        assert_eq!(rep.per_channel, vec![3, 3, 2, 2]);
        assert!(rep.throughput_aps > 0.0);
    }

    #[test]
    fn oversized_sequence_propagates_error() {
        let params = LinearParams::<i16>::dna();
        let too_long = vec![(vec![dphls_seq::Base::A; 200], vec![dphls_seq::Base::C; 50])];
        let err = run_batched::<GlobalLinear>(&device(2), &params, &too_long);
        assert!(err.is_err());
    }

    #[test]
    fn empty_workload() {
        let params = LinearParams::<i16>::dna();
        let rep = run_batched::<GlobalLinear>(&device(2), &params, &[]).unwrap();
        assert!(rep.outputs.is_empty());
    }
}
