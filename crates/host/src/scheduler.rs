//! Host-side batch scheduler (paper §4 step 6): a **work-stealing** engine
//! that drives the device's `NK` independent channels from host threads,
//! following the paper's advice to "use multi-threading to leverage the
//! device's NK independent channels".
//!
//! The seed implementation dispatched alignments round-robin, which is
//! load-imbalanced for variable-length reads (a channel stuck with the long
//! reads finishes last while the others idle), and then re-simulated the
//! whole workload a second time just to report modeled throughput. This
//! engine fixes both:
//!
//! * **Cost-ranked work stealing** — alignments are ranked by a cell-count
//!   cost estimate (`q·r`, or the band area when fixed banding is on) and
//!   dealt round-robin across per-channel deques; each worker drains its own
//!   deque from the expensive end and, when empty, steals the *cheapest*
//!   remaining job from another channel's tail. Long-tail imbalance is
//!   bounded by one alignment per channel.
//! * **Thread-local scratch** — every worker owns a
//!   [`SystolicScratch`](dphls_systolic::SystolicScratch)
//!   reused across all its alignments, so the per-alignment hot path
//!   performs no heap allocation (see `dphls-systolic`).
//! * **Single-pass throughput** — the modeled `throughput_aps` is derived
//!   from the [`BlockStats`] each functional run already produces, exactly
//!   as [`Device::run`] would compute it, without running the device model
//!   over the workload a second time (this halves total simulated work).
//! * **NB-block slot pools** — the device exposes `NB × NK` blocks, not
//!   just `NK` channels: each channel fronts `NB` blocks behind one
//!   arbiter. The engine mirrors that with up to [`KernelConfig::nb`]
//!   **block slots** per channel — each slot is a host thread with its own
//!   [`SystolicScratch`](dphls_systolic::SystolicScratch) arena, and all
//!   slots of a channel drain the same
//!   per-channel deque, so intra-channel concurrency needs no new queue
//!   discipline. Completions are folded through the arbiter-aware cycle
//!   model ([`arbitrated_cycles`] at full `NB` occupancy, the steady-state
//!   the throughput model assumes), which keeps modeled throughput and
//!   outputs **bit-identical** across slot counts — only wall-clock
//!   parallelism changes. See [`BatchConfig::nb_slots`].
//! * **Per-pair fault isolation** — [`run_batched_resilient`] threads a
//!   [`ResilienceConfig`] through the slot loop: kernel errors, worker
//!   panics (caught at the slot loop), and cost-scaled deadline timeouts
//!   are retried with backoff on another channel and then quarantined into
//!   [`BatchReport::faults`] instead of tearing down the run. See
//!   `crates/host/src/resilience.rs` and the chaos suite
//!   (`crates/host/tests/chaos.rs`).
//! * **Fleet sharding** — [`BatchConfig::fleet`] replicates the whole
//!   `NK × nb_slots` pool across `D` simulated devices: the ranked queue is
//!   dealt across `D × NK` per-device deques, idle devices steal from busy
//!   ones, completions are folded through [`fleet_cycles`] (per-device
//!   arbitration plus a modeled host↔device transfer cost, divided by
//!   `D`), and a whole device can be injected as lost
//!   ([`FaultKind::DeviceLoss`]) with its in-flight work re-dealt to
//!   survivors. Outputs, order, and error behavior are bit-identical across
//!   every `D` (enforced by `crates/host/tests/fleet.rs`); only the modeled
//!   throughput and the wall-clock parallelism change.
//!
//! [`KernelConfig::nb`]: dphls_core::KernelConfig
//! [`arbitrated_cycles`]: dphls_systolic::arbitrated_cycles
//! [`fleet_cycles`]: dphls_systolic::fleet_cycles
//! [`BlockStats`]: dphls_systolic::BlockStats
//! [`Device::run`]: dphls_systolic::Device::run

use dphls_core::{
    AdaptiveKernel, Banding, DpOutput, KernelConfig, KernelSpec, LaneKernel, LanePrecision,
};
use dphls_systolic::{alignment_cycles, fleet_cycles, throughput_aps, transfer_bytes, Device};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::engine::{ExactEngine, PairEngine, PrecisionEngine};
use crate::faults::{injected_kernel_error, injected_panic_message, FaultKind, FaultPlan};
use crate::fleet::FleetConfig;
use crate::resilience::{
    abort_aware_sleep, panic_message, FailurePolicy, FaultCause, PairFault, ResilienceConfig,
};

/// Host-side execution knobs of the batch engine (the device side lives in
/// [`KernelConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchConfig {
    /// In-flight block slots per channel: how many host threads concurrently
    /// drive one channel's `NB` blocks. Each slot owns a scratch arena; all
    /// slots of a channel share its deque.
    ///
    /// `0` (the default) resolves automatically to
    /// `min(NB, ceil(host threads / NK))` — exploit the device's
    /// intra-channel blocks as far as the host has cores to drive them, and
    /// stay at one slot per channel on a saturated or single-core host.
    /// Explicit values are clamped to `1..=NB`: the device has no more than
    /// `NB` blocks per channel to dispatch to.
    ///
    /// Outputs, ordering, and modeled throughput are **bit-identical** for
    /// every slot count (enforced by `crates/host/tests/nb_slots.rs`); the
    /// knob only changes host wall-clock parallelism.
    pub nb_slots: usize,
    /// Fleet topology: how many simulated devices the workload is sharded
    /// across, and the modeled host↔device transfer cost. The default
    /// ([`FleetConfig::single`]) is one device with a free link — the exact
    /// pre-fleet behavior. Outputs, ordering, and error behavior are
    /// **bit-identical** for every device count (enforced by
    /// `crates/host/tests/fleet.rs`); only modeled throughput and host
    /// wall-clock parallelism change.
    pub fleet: FleetConfig,
}

impl BatchConfig {
    /// Exactly one block slot per channel — the pre-NB host behavior
    /// (one thread per channel).
    pub fn single_slot() -> Self {
        Self {
            nb_slots: 1,
            fleet: FleetConfig::single(),
        }
    }

    /// An explicit slot count per channel, clamped to `1..=NB` at run
    /// time. Passing `0` does **not** clamp to 1 — it selects the
    /// auto-sizing policy, exactly like [`BatchConfig::default`] (see
    /// [`BatchConfig::nb_slots`]); use [`BatchConfig::single_slot`] to pin
    /// one slot.
    pub fn slots(nb_slots: usize) -> Self {
        Self {
            nb_slots,
            fleet: FleetConfig::single(),
        }
    }

    /// Replaces the fleet topology, builder-style.
    pub fn with_fleet(mut self, fleet: FleetConfig) -> Self {
        self.fleet = fleet;
        self
    }

    /// The slot count a run against `config` will actually use (see
    /// [`BatchConfig::nb_slots`] for the auto rule).
    pub fn resolve_slots(&self, config: &KernelConfig) -> usize {
        let nb = config.nb.max(1);
        if self.nb_slots == 0 {
            let host = std::thread::available_parallelism().map_or(1, |n| n.get());
            nb.min(host.div_ceil(config.nk.max(1))).max(1)
        } else {
            self.nb_slots.clamp(1, nb)
        }
    }
}

/// Error of a batch run: the first pair failure under
/// [`FailurePolicy::Abort`], or a worker-thread panic that escaped per-pair
/// isolation (only possible with resilience disabled, where the slot loop
/// runs without a `catch_unwind` frame).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// A pair failed (kernel error, panic, or deadline timeout — see
    /// [`FaultCause`]) and the active [`FailurePolicy`] was `Abort`.
    Fault(PairFault),
    /// A worker thread panicked and tore down the scope; carries the join
    /// payload (std's scope reports a generic message — per-pair payloads
    /// are only recoverable under [`FailurePolicy::Quarantine`], where they
    /// land in [`BatchReport::faults`] instead).
    WorkerPanic(String),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Fault(fault) => write!(f, "batch aborted: {fault}"),
            BatchError::WorkerPanic(msg) => write!(f, "batch worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Result of a resilient batch run ([`run_batched_resilient`]): like
/// [`ScheduleReport`], but with per-pair holes where quarantined pairs
/// would be, plus the fault ledger the degradation contract reconciles
/// against.
#[derive(Debug, Clone)]
pub struct BatchReport<S> {
    /// One slot per input pair, in input order; `None` exactly where a
    /// pair was quarantined (every `None` has a matching entry in
    /// [`faults`](Self::faults)).
    pub outputs: Vec<Option<DpOutput<S>>>,
    /// Quarantined pairs, sorted by input index.
    pub faults: Vec<PairFault>,
    /// Failed or timed-out attempts that were re-dealt (each retry of each
    /// pair counts once).
    pub retries: usize,
    /// Attempts discarded because they exceeded their cost-scaled deadline
    /// (a subset of the failures behind [`retries`](Self::retries) /
    /// [`faults`](Self::faults)).
    pub timeouts: usize,
    /// Alignments each channel successfully executed, aggregated across
    /// the fleet (channel `c` sums every device's channel `c`).
    pub per_channel: Vec<usize>,
    /// Successful alignments per block slot, `per_slot[channel][slot]`,
    /// aggregated across the fleet like
    /// [`per_channel`](Self::per_channel).
    pub per_slot: Vec<Vec<usize>>,
    /// Block slots each channel ran with.
    pub nb_slots: usize,
    /// Fleet devices the run sharded across (the resolved
    /// [`BatchConfig::fleet`] device count).
    pub devices: usize,
    /// Successful alignments per fleet device, `per_device[device]`.
    pub per_device: Vec<usize>,
    /// Devices lost to [`FaultKind::DeviceLoss`] injections during the
    /// run (0 without a fault plan).
    pub device_losses: usize,
    /// Alignments stolen across channels or devices.
    pub steals: usize,
    /// Modeled device throughput over the successful alignments.
    pub throughput_aps: f64,
    /// Pairs that escalated from the `i8` fast path to the exact `i16`
    /// engine (always 0 on the exact path — see
    /// [`crate::engine::AdaptiveEngine`]).
    pub escalations: u64,
}

impl<S> BatchReport<S> {
    /// Number of pairs that completed successfully.
    pub fn completed(&self) -> usize {
        self.outputs.len() - self.faults.len()
    }

    /// Fraction of completed pairs that escalated to the exact engine
    /// (0.0 on the exact path or an empty run).
    pub fn escalation_rate(&self) -> f64 {
        let completed = self.completed();
        if completed == 0 {
            0.0
        } else {
            self.escalations as f64 / completed as f64
        }
    }
}

/// Result of a scheduled batch run.
#[derive(Debug, Clone)]
pub struct ScheduleReport<S> {
    /// Outputs in input order.
    pub outputs: Vec<DpOutput<S>>,
    /// Alignments each channel **actually executed** (all of its block
    /// slots, own share plus anything stolen), not the pre-computed split;
    /// aggregated across the fleet (channel `c` sums every device's
    /// channel `c`).
    pub per_channel: Vec<usize>,
    /// Alignments per block slot, `per_slot[channel][slot]`; row sums equal
    /// [`per_channel`](Self::per_channel).
    pub per_slot: Vec<Vec<usize>>,
    /// Block slots each channel ran with (the resolved
    /// [`BatchConfig::nb_slots`]).
    pub nb_slots: usize,
    /// Fleet devices the run sharded across (the resolved
    /// [`BatchConfig::fleet`] device count).
    pub devices: usize,
    /// Alignments each fleet device executed, `per_device[device]`.
    pub per_device: Vec<usize>,
    /// Alignments that were stolen across channels or devices
    /// (load-balancing events).
    pub steals: usize,
    /// Modeled device throughput in alignments/second, derived from the
    /// cycle statistics of the functional runs.
    pub throughput_aps: f64,
    /// Pairs that escalated from the `i8` fast path to the exact `i16`
    /// engine (always 0 on the exact path).
    pub escalations: u64,
}

impl<S> ScheduleReport<S> {
    /// Fraction of pairs that escalated to the exact engine (0.0 on the
    /// exact path or an empty run).
    pub fn escalation_rate(&self) -> f64 {
        if self.outputs.is_empty() {
            0.0
        } else {
            self.escalations as f64 / self.outputs.len() as f64
        }
    }
}

/// Estimated compute cost of one alignment in DP cells: the full matrix, or
/// the band's footprint under fixed banding. Only the *ranking* matters, so
/// the band estimate uses the closed-form strip area rather than the exact
/// clipped count.
pub(crate) fn cost_estimate(q: usize, r: usize, banding: Banding) -> u64 {
    let full = q as u64 * r as u64;
    match banding {
        Banding::None => full,
        Banding::Fixed { half_width } => {
            let strip = (2 * half_width as u64 + 1) * q.min(r) as u64;
            strip.min(full)
        }
    }
}

/// Dispatches `workload` across the device's `NK` channels with an
/// automatically sized block-slot pool per channel
/// ([`BatchConfig::default`]), using cost-ranked work stealing (see the
/// module docs). Outputs are returned in input order and are bit-identical
/// to running each pair through [`dphls_systolic::run_systolic`]
/// individually. Resilience is disabled (the zero-overhead path); use
/// [`run_batched_resilient`] for quarantine/retry/deadline semantics.
///
/// # Errors
///
/// [`BatchError::Fault`] wrapping the first kernel error encountered on any
/// channel, or [`BatchError::WorkerPanic`] if a worker thread panicked.
pub fn run_batched<K: LaneKernel>(
    device: &Device,
    params: &K::Params,
    workload: &[dphls_core::SeqPair<K>],
) -> Result<ScheduleReport<K::Score>, BatchError>
where
    K::Score: Send,
    K::Params: Sync,
{
    run_batched_with::<K>(device, params, workload, BatchConfig::default())
}

/// [`run_batched`] with explicit host-side knobs: `batch.nb_slots` block
/// slots per channel concurrently drain that channel's deque, each slot on
/// its own thread with its own scratch arena. Outputs, ordering, and
/// modeled throughput are bit-identical for every slot count.
///
/// # Errors
///
/// [`BatchError::Fault`] wrapping the first kernel error encountered on any
/// channel, or [`BatchError::WorkerPanic`] if a worker thread panicked.
pub fn run_batched_with<K: LaneKernel>(
    device: &Device,
    params: &K::Params,
    workload: &[dphls_core::SeqPair<K>],
    batch: BatchConfig,
) -> Result<ScheduleReport<K::Score>, BatchError>
where
    K::Score: Send,
    K::Params: Sync,
{
    let report = run_batched_resilient::<K>(
        device,
        params,
        workload,
        batch,
        &ResilienceConfig::disabled(),
        None,
    )?;
    // Under the (disabled-resilience) Abort policy nothing is quarantined:
    // any failure returned as the error above, so every slot is filled.
    Ok(ScheduleReport {
        outputs: report
            .outputs
            .into_iter()
            .map(|o| o.expect("abort policy leaves no quarantine holes"))
            .collect(),
        per_channel: report.per_channel,
        per_slot: report.per_slot,
        nb_slots: report.nb_slots,
        devices: report.devices,
        per_device: report.per_device,
        steals: report.steals,
        throughput_aps: report.throughput_aps,
        escalations: report.escalations,
    })
}

/// [`run_batched_with`] plus a resilience policy and an optional fault
/// plan: per-pair failures (kernel errors, worker panics caught at the slot
/// loop, cost-scaled deadline timeouts) are retried with exponential
/// backoff onto a different channel's queue up to
/// [`ResilienceConfig::max_retries`] times, then quarantined into
/// [`BatchReport::faults`] (under [`FailurePolicy::Quarantine`]) or
/// returned as the run error (under [`FailurePolicy::Abort`]).
///
/// The degradation contract (enforced by `tests/chaos.rs`): surviving
/// outputs are bit-identical to a fault-free run and sit at their input
/// index; every `None` output slot has exactly one entry in
/// [`BatchReport::faults`].
///
/// `plan` injects deterministic faults for chaos testing ([`FaultPlan`]);
/// production callers pass `None`, which skips every injection check.
/// When both the config [`is_disabled`](ResilienceConfig::is_disabled) and
/// `plan` is `None`, the slot loop runs the original uninstrumented hot
/// path — no clock reads, no `catch_unwind` frame.
///
/// # Errors
///
/// Under `Abort`, the first [`PairFault`] as [`BatchError::Fault`];
/// [`BatchError::WorkerPanic`] if a panic escapes the slot loop (possible
/// only on the uninstrumented path).
pub fn run_batched_resilient<K: LaneKernel>(
    device: &Device,
    params: &K::Params,
    workload: &[dphls_core::SeqPair<K>],
    batch: BatchConfig,
    res: &ResilienceConfig,
    plan: Option<&FaultPlan>,
) -> Result<BatchReport<K::Score>, BatchError>
where
    K::Score: Send,
    K::Params: Sync,
{
    let engine = ExactEngine::<K>::new(params.clone());
    run_batched_engine::<K, _>(device, &engine, workload, batch, res, plan)
}

/// [`run_batched_resilient`] with **runtime precision dispatch**: the
/// workload runs on the saturating-`i8` fast path, escalating individual
/// pairs to the exact `i16` engine when their guard trips (or running
/// everything exact under [`LanePrecision::Exact`]). Outputs are
/// bit-identical to the exact run for every precision; the report's
/// [`escalations`](BatchReport::escalations) /
/// [`escalation_rate`](BatchReport::escalation_rate) expose how often the
/// fast path bailed.
///
/// # Errors
///
/// Exactly as [`run_batched_resilient`].
pub fn run_batched_adaptive<K: AdaptiveKernel>(
    device: &Device,
    params: &K::Params,
    precision: LanePrecision,
    workload: &[dphls_core::SeqPair<K>],
    batch: BatchConfig,
    res: &ResilienceConfig,
    plan: Option<&FaultPlan>,
) -> Result<BatchReport<i16>, BatchError>
where
    K::Params: Sync,
{
    let engine = PrecisionEngine::<K>::new(params.clone(), precision);
    run_batched_engine::<K, _>(device, &engine, workload, batch, res, plan)
}

/// The work-stealing batch loop, generic over the per-pair execution
/// strategy ([`PairEngine`]): every public batch entry point funnels here.
/// See [`run_batched_resilient`] for the dispatch/retry/quarantine
/// semantics — this function adds none of its own.
///
/// # Errors
///
/// Exactly as [`run_batched_resilient`].
pub fn run_batched_engine<K, E>(
    device: &Device,
    engine: &E,
    workload: &[dphls_core::SeqPair<K>],
    batch: BatchConfig,
    res: &ResilienceConfig,
    plan: Option<&FaultPlan>,
) -> Result<BatchReport<K::Score>, BatchError>
where
    K: KernelSpec,
    E: PairEngine<K>,
    K::Score: Send,
{
    let config = device.config();
    let nk = config.nk.max(1);
    let slots = batch.resolve_slots(config);
    let d = batch.fleet.resolve_devices();
    let transfer = batch.fleet.transfer;
    let n = workload.len();
    // Instrumented = any resilience mechanism or injection active; the
    // alternative is the original zero-overhead slot loop.
    let instrumented = !res.is_disabled() || plan.is_some_and(|p| !p.is_empty());

    // Rank by descending cost estimate, then deal round-robin across the
    // fleet's `D × NK` per-device channel deques (queue `dev * nk + ch`)
    // so every channel of every device starts with a balanced mix of
    // expensive and cheap work. Queue entries carry the pair's attempt
    // count so retries re-enter the same dispatch discipline.
    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by_key(|&i| {
        let (q, r) = &workload[i];
        std::cmp::Reverse(cost_estimate(q.len(), r.len(), config.banding))
    });
    let queues: Vec<Mutex<VecDeque<(usize, u32)>>> = (0..d * nk)
        .map(|qi| {
            Mutex::new(
                ranked
                    .iter()
                    .copied()
                    .skip(qi)
                    .step_by(d * nk)
                    .map(|idx| (idx, 0))
                    .collect(),
            )
        })
        .collect();

    struct WorkerResult<S> {
        /// `(input index, output)` pairs, merged into slots after the join.
        outputs: Vec<(usize, DpOutput<S>)>,
        /// Effective device cycles summed over this worker's alignments.
        cycle_sum: u64,
        /// Jobs taken from other channels' queues.
        stolen: usize,
        /// i8→i16 precision escalations among this worker's alignments.
        escalations: u64,
    }

    let abort = AtomicBool::new(false);
    let error: Mutex<Option<BatchError>> = Mutex::new(None);
    let faults: Mutex<Vec<PairFault>> = Mutex::new(Vec::new());
    let retries = AtomicUsize::new(0);
    let timeouts = AtomicUsize::new(0);
    let device_losses = AtomicUsize::new(0);
    // Per-device loss flags: a lost device's workers stop dispatching and
    // its queued pairs migrate to a survivor. The same lock guards the
    // "never lose the last live device" invariant.
    let lost: Mutex<Vec<bool>> = Mutex::new(vec![false; d]);
    // Pairs that reached a terminal state (output or quarantine record).
    // Instrumented workers idle-wait on this instead of exiting when the
    // queues drain, because retries and device-loss migrations can re-fill
    // a queue after its workers would otherwise have left.
    let settled = AtomicUsize::new(0);
    // One result cell per block slot, indexed `(dev * nk + ch) * slots + slot`.
    let results: Vec<Mutex<WorkerResult<K::Score>>> = (0..d * nk * slots)
        .map(|_| {
            Mutex::new(WorkerResult {
                outputs: Vec::new(),
                cycle_sum: 0,
                stolen: 0,
                escalations: 0,
            })
        })
        .collect();

    crossbeam::scope(|scope| {
        for worker in 0..d * nk * slots {
            let qown = worker / slots;
            let dev = qown / nk;
            let ch = qown % nk;
            let (queues, abort, error, results) = (&queues, &abort, &error, &results);
            let (faults, retries, timeouts) = (&faults, &retries, &timeouts);
            let (lost, settled, device_losses) = (&lost, &settled, &device_losses);
            scope.spawn(move |_| {
                // Every block slot owns its scratch arena: the per-alignment
                // hot path stays allocation-free at any slot count.
                let mut scratch = engine.new_scratch();
                let mut local = WorkerResult {
                    outputs: Vec::with_capacity(n / (d * nk * slots) + 1),
                    cycle_sum: 0,
                    stolen: 0,
                    escalations: 0,
                };
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    // A lost device dispatches nothing further; its queued
                    // work was migrated when the loss fired.
                    if instrumented && lost.lock()[dev] {
                        break;
                    }
                    // Own channel's queue first (expensive end), then steal
                    // the cheapest remaining job: same-device channels
                    // before other devices, always from the tail. The
                    // slots of one channel share its deque, so
                    // intra-channel dispatch is not a steal.
                    let mut job = queues[qown].lock().pop_front();
                    if job.is_none() {
                        'steal: for du in 0..d {
                            let dd = (dev + du) % d;
                            let start = usize::from(du == 0);
                            for cu in start..nk {
                                let victim = dd * nk + (ch + cu) % nk;
                                job = queues[victim].lock().pop_back();
                                if job.is_some() {
                                    local.stolen += 1;
                                    break 'steal;
                                }
                            }
                        }
                    }
                    let Some((idx, attempts)) = job else {
                        if !instrumented || settled.load(Ordering::Relaxed) >= n {
                            break;
                        }
                        // Retries and device-loss migrations can re-fill a
                        // queue after a drain: stay scheduled until every
                        // pair has an output or a fault record.
                        std::thread::sleep(Duration::from_micros(50));
                        continue;
                    };
                    let (q, r) = &workload[idx];

                    if !instrumented {
                        // Original hot path: no clock, no catch_unwind.
                        match engine.run_pair(q, r, config, &mut scratch) {
                            Ok(run) => {
                                let b = alignment_cycles(
                                    &run.stats,
                                    device.kernel_cycle_info(),
                                    device.cycle_params(),
                                );
                                // Fold the completion through the channel
                                // arbiter at full NB occupancy — the steady
                                // state the throughput model assumes — plus
                                // the modeled host↔device transfer, spread
                                // across the fleet; the modeled figure is
                                // independent of how many host slots
                                // happened to be dispatching.
                                local.cycle_sum += fleet_cycles(
                                    &b,
                                    config.nb,
                                    d,
                                    &transfer,
                                    transfer_bytes(&run.stats, device.kernel_cycle_info()),
                                );
                                local.escalations += run.stats.escalations;
                                local.outputs.push((idx, run.output));
                            }
                            Err(e) => {
                                let fault = PairFault {
                                    idx,
                                    cause: FaultCause::Kernel(e),
                                    attempts: 1,
                                };
                                let mut guard = error.lock();
                                if guard.is_none() {
                                    *guard = Some(BatchError::Fault(fault));
                                }
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        continue;
                    }

                    // Instrumented path: deadline clock, fault injection,
                    // panic isolation, retry/quarantine bookkeeping.
                    let deadline =
                        res.deadline_for(cost_estimate(q.len(), r.len(), config.banding));
                    let started = Instant::now();
                    let mut injected = plan.and_then(|p| p.worker_fault(idx, attempts));
                    if injected == Some(FaultKind::DeviceLoss) {
                        // Take this device down — unless it is the last
                        // live one, in which case the injection is ignored
                        // and the pair runs normally (a fleet never loses
                        // its final device).
                        let took = {
                            let mut l = lost.lock();
                            let survives = !l[dev] && l.iter().filter(|&&x| !x).count() > 1;
                            if survives {
                                l[dev] = true;
                            }
                            survives
                        };
                        if took {
                            device_losses.fetch_add(1, Ordering::Relaxed);
                            // Migrate the dead device's queued pairs to the
                            // next live device, channel to channel and in
                            // order; the in-flight pair itself fails below
                            // with a DeviceLost cause and re-enters the
                            // normal retry/quarantine path.
                            let target = {
                                let l = lost.lock();
                                (1..d)
                                    .map(|v| (dev + v) % d)
                                    .find(|&t| !l[t])
                                    .expect("loss gate keeps one live device")
                            };
                            for c in 0..nk {
                                let moved: Vec<(usize, u32)> =
                                    queues[dev * nk + c].lock().drain(..).collect();
                                if !moved.is_empty() {
                                    queues[target * nk + c].lock().extend(moved);
                                }
                            }
                        } else {
                            injected = None;
                        }
                    }
                    let outcome = if injected == Some(FaultKind::DeviceLoss) {
                        Err(FaultCause::DeviceLost { device: dev })
                    } else if injected == Some(FaultKind::KernelError) {
                        Err(FaultCause::Kernel(injected_kernel_error()))
                    } else {
                        if let Some(FaultKind::Stall { millis }) = injected {
                            abort_aware_sleep(Duration::from_millis(millis), abort);
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            if injected == Some(FaultKind::Panic) {
                                panic!("{}", injected_panic_message(idx));
                            }
                            engine.run_pair(q, r, config, &mut scratch)
                        }));
                        match caught {
                            Ok(Ok(run)) => Ok(run),
                            Ok(Err(e)) => Err(FaultCause::Kernel(e)),
                            Err(payload) => {
                                // The panic may have unwound mid-update and
                                // left the arena inconsistent: rebuild it.
                                scratch = engine.new_scratch();
                                Err(FaultCause::Panic(panic_message(payload)))
                            }
                        }
                    };
                    // Cooperative deadline: an over-deadline result is
                    // discarded (the retry recomputes it bit-identically),
                    // so a stalled slot costs latency, never correctness.
                    let outcome = match (outcome, deadline) {
                        (Ok(run), Some(d)) if started.elapsed() > d => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                            let _ = run;
                            Err(FaultCause::Timeout { deadline: d })
                        }
                        (o, _) => o,
                    };
                    match outcome {
                        Ok(run) => {
                            let b = alignment_cycles(
                                &run.stats,
                                device.kernel_cycle_info(),
                                device.cycle_params(),
                            );
                            local.cycle_sum += fleet_cycles(
                                &b,
                                config.nb,
                                d,
                                &transfer,
                                transfer_bytes(&run.stats, device.kernel_cycle_info()),
                            );
                            local.escalations += run.stats.escalations;
                            local.outputs.push((idx, run.output));
                            settled.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(cause) => {
                            if attempts < res.max_retries {
                                retries.fetch_add(1, Ordering::Relaxed);
                                abort_aware_sleep(res.backoff_for(attempts + 1), abort);
                                // Re-deal to the next queue on a *live*
                                // device: a different slot picks it up when
                                // one exists, and idle workers stay
                                // scheduled (the settled-count wait above)
                                // until every pair lands somewhere.
                                let target = {
                                    let l = lost.lock();
                                    (1..d * nk)
                                        .map(|v| (qown + v) % (d * nk))
                                        .find(|&qi| !l[qi / nk])
                                        .unwrap_or(qown)
                                };
                                queues[target].lock().push_back((idx, attempts + 1));
                            } else {
                                let fault = PairFault {
                                    idx,
                                    cause,
                                    attempts: attempts + 1,
                                };
                                match res.failure_policy {
                                    FailurePolicy::Quarantine => {
                                        faults.lock().push(fault);
                                        settled.fetch_add(1, Ordering::Relaxed);
                                    }
                                    FailurePolicy::Abort => {
                                        let mut guard = error.lock();
                                        if guard.is_none() {
                                            *guard = Some(BatchError::Fault(fault));
                                        }
                                        abort.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
                *results[worker].lock() = local;
            });
        }
    })
    .map_err(|payload| BatchError::WorkerPanic(panic_message(payload)))?;

    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    let mut faults = faults.into_inner();
    faults.sort_by_key(|f| f.idx);

    let mut per_channel = vec![0usize; nk];
    let mut per_slot = vec![vec![0usize; slots]; nk];
    let mut per_device = vec![0usize; d];
    let mut steals = 0usize;
    let mut cycle_sum = 0u64;
    let mut escalations = 0u64;
    let mut filled: Vec<Option<DpOutput<K::Score>>> = (0..n).map(|_| None).collect();
    for (worker, result) in results.into_iter().enumerate() {
        let done = result.into_inner();
        let qown = worker / slots;
        per_channel[qown % nk] += done.outputs.len();
        per_slot[qown % nk][worker % slots] += done.outputs.len();
        per_device[qown / nk] += done.outputs.len();
        steals += done.stolen;
        cycle_sum += done.cycle_sum;
        escalations += done.escalations;
        for (idx, out) in done.outputs {
            filled[idx] = Some(out);
        }
    }
    debug_assert!(
        filled
            .iter()
            .enumerate()
            .all(|(i, o)| o.is_some() != faults.iter().any(|f| f.idx == i)),
        "every hole must have exactly one fault record"
    );

    // Same formula as `Device::run`, fed by the stats already collected —
    // over the pairs that completed.
    let completed = n - faults.len();
    let throughput = if completed == 0 {
        0.0
    } else {
        let mean_cycles = cycle_sum as f64 / completed as f64;
        throughput_aps(
            mean_cycles.round().max(1.0) as u64,
            device.freq_mhz(),
            config,
        )
    };
    Ok(BatchReport {
        outputs: filled,
        faults,
        retries: retries.into_inner(),
        timeouts: timeouts.into_inner(),
        per_channel,
        per_slot,
        nb_slots: slots,
        devices: d,
        per_device,
        device_losses: device_losses.into_inner(),
        steals,
        throughput_aps: throughput,
        escalations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::{run_reference, Banding, KernelConfig};
    use dphls_kernels::{GlobalLinear, LinearParams};
    use dphls_seq::gen::ReadSimulator;
    use dphls_systolic::{CycleModelParams, KernelCycleInfo};

    fn device(nk: usize) -> Device {
        Device::new(
            KernelConfig::new(8, 2, nk).with_max_lengths(96, 96),
            CycleModelParams::dphls(),
            KernelCycleInfo {
                sym_bits: 2,
                has_walk: true,
                ii: 1,
            },
            250.0,
        )
    }

    fn workload(n: usize) -> Vec<(Vec<dphls_seq::Base>, Vec<dphls_seq::Base>)> {
        let mut sim = ReadSimulator::new(31);
        sim.read_pairs(n, 80, 0.25)
            .into_iter()
            .map(|(r, mut q)| {
                q.truncate(80);
                (q.into_vec(), r.into_vec())
            })
            .collect()
    }

    #[test]
    fn outputs_preserve_input_order_and_values() {
        let wl = workload(11);
        let params = LinearParams::<i16>::dna();
        let rep = run_batched::<GlobalLinear>(&device(3), &params, &wl).unwrap();
        assert_eq!(rep.outputs.len(), 11);
        for (i, (q, r)) in wl.iter().enumerate() {
            let want = run_reference::<GlobalLinear>(&params, q, r, Banding::None);
            assert_eq!(rep.outputs[i], want, "pair {i}");
        }
    }

    #[test]
    fn per_channel_reports_actual_execution() {
        let wl = workload(10);
        let params = LinearParams::<i16>::dna();
        let rep = run_batched::<GlobalLinear>(&device(4), &params, &wl).unwrap();
        // Work stealing makes the exact split nondeterministic; what must
        // hold is that the per-worker counts account for every alignment
        // exactly once, channel by channel and slot by slot.
        assert_eq!(rep.per_channel.len(), 4);
        assert_eq!(rep.per_channel.iter().sum::<usize>(), 10);
        assert_eq!(rep.per_slot.len(), 4);
        for (ch, row) in rep.per_slot.iter().enumerate() {
            assert_eq!(row.len(), rep.nb_slots);
            assert_eq!(row.iter().sum::<usize>(), rep.per_channel[ch]);
        }
        assert!(rep.throughput_aps > 0.0);
    }

    #[test]
    fn batch_config_resolves_slots() {
        let cfg = KernelConfig::new(8, 4, 2).with_max_lengths(96, 96);
        assert_eq!(BatchConfig::single_slot().resolve_slots(&cfg), 1);
        assert_eq!(BatchConfig::slots(2).resolve_slots(&cfg), 2);
        // Explicit values clamp to the device's NB above and to 1 below.
        assert_eq!(BatchConfig::slots(64).resolve_slots(&cfg), 4);
        assert_eq!(
            BatchConfig::slots(0).resolve_slots(&cfg),
            BatchConfig::default().resolve_slots(&cfg)
        );
        let auto = BatchConfig::default().resolve_slots(&cfg);
        assert!((1..=4).contains(&auto), "auto resolved to {auto}");
        // An NB = 1 device always resolves to one slot, whatever the host.
        let cfg1 = KernelConfig::new(8, 1, 2).with_max_lengths(96, 96);
        assert_eq!(BatchConfig::default().resolve_slots(&cfg1), 1);
        assert_eq!(BatchConfig::slots(9).resolve_slots(&cfg1), 1);
    }

    #[test]
    fn slot_pool_is_bit_identical_to_single_slot() {
        // The in-crate smoke version of the `tests/nb_slots.rs` differential
        // suite: outputs, order, and the modeled (stats-derived) throughput
        // must not depend on the host's slot count.
        let wl = workload(17);
        let params = LinearParams::<i16>::dna();
        let dev = device(2); // NB = 2 per channel
        let single =
            run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::single_slot())
                .unwrap();
        assert_eq!(single.nb_slots, 1);
        let pooled =
            run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::slots(2)).unwrap();
        assert_eq!(pooled.nb_slots, 2);
        assert_eq!(pooled.outputs, single.outputs);
        assert!((pooled.throughput_aps - single.throughput_aps).abs() < 1e-9);
        assert_eq!(pooled.per_channel.iter().sum::<usize>(), wl.len());
    }

    #[test]
    fn fleet_is_bit_identical_and_speeds_the_model() {
        // The in-crate smoke version of the `tests/fleet.rs` differential
        // suite: outputs and order must not depend on the device count;
        // only the modeled throughput scales.
        use crate::fleet::FleetConfig;
        use dphls_systolic::TransferModel;
        let wl = workload(17);
        let params = LinearParams::<i16>::dna();
        let dev = device(2);
        let single =
            run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::single_slot())
                .unwrap();
        assert_eq!(single.devices, 1);
        assert_eq!(single.per_device, vec![17]);
        let cfg = BatchConfig::single_slot()
            .with_fleet(FleetConfig::new(4).with_transfer(TransferModel::zero()));
        let fleet = run_batched_with::<GlobalLinear>(&dev, &params, &wl, cfg).unwrap();
        assert_eq!(fleet.devices, 4);
        assert_eq!(fleet.outputs, single.outputs);
        assert_eq!(fleet.per_device.len(), 4);
        assert_eq!(fleet.per_device.iter().sum::<usize>(), wl.len());
        assert_eq!(fleet.per_channel.iter().sum::<usize>(), wl.len());
        // Four devices with a free link model ceil(cycles / 4) per pair.
        assert!(
            fleet.throughput_aps > single.throughput_aps * 3.0,
            "fleet {} vs single {}",
            fleet.throughput_aps,
            single.throughput_aps
        );
        // A priced link slows the model back down, but never below 1 device.
        let priced = BatchConfig::single_slot().with_fleet(FleetConfig::new(4));
        let pr = run_batched_with::<GlobalLinear>(&dev, &params, &wl, priced).unwrap();
        assert_eq!(pr.outputs, single.outputs);
        assert!(pr.throughput_aps < fleet.throughput_aps);
    }

    #[test]
    fn throughput_matches_device_model_without_second_pass() {
        let wl = workload(7);
        let params = LinearParams::<i16>::dna();
        let dev = device(2);
        let rep = run_batched::<GlobalLinear>(&dev, &params, &wl).unwrap();
        // The engine derives throughput from the stats of its own runs; it
        // must agree with what a (separate) device-model pass reports.
        let model = dev.run::<GlobalLinear>(&params, &wl).unwrap();
        assert!(
            (rep.throughput_aps - model.throughput_aps).abs() < 1e-6,
            "engine {} vs model {}",
            rep.throughput_aps,
            model.throughput_aps
        );
    }

    #[test]
    fn variable_length_workload_is_balanced() {
        // One long read plus many short ones: with static round-robin the
        // long read's channel also keeps half the short reads; with
        // stealing, the other channel drains them.
        let mut sim = ReadSimulator::new(77);
        let mut wl = Vec::new();
        let (r, q) = sim.read_pair(96, 0.2);
        wl.push((q.into_vec()[..90.min(r.len())].to_vec(), r.into_vec()));
        for _ in 0..40 {
            let (r, q) = sim.read_pair(12, 0.2);
            let mut q = q.into_vec();
            q.truncate(10);
            wl.push((q, r.into_vec()));
        }
        let params = LinearParams::<i16>::dna();
        let rep = run_batched::<GlobalLinear>(&device(2), &params, &wl).unwrap();
        assert_eq!(rep.per_channel.iter().sum::<usize>(), 41);
        for (i, (q, r)) in wl.iter().enumerate() {
            let want = run_reference::<GlobalLinear>(&params, q, r, Banding::None);
            assert_eq!(rep.outputs[i], want, "pair {i}");
        }
    }

    #[test]
    fn oversized_sequence_propagates_error() {
        let params = LinearParams::<i16>::dna();
        let too_long = vec![(vec![dphls_seq::Base::A; 200], vec![dphls_seq::Base::C; 50])];
        let err = run_batched::<GlobalLinear>(&device(2), &params, &too_long);
        assert!(err.is_err());
    }

    #[test]
    fn empty_workload() {
        let params = LinearParams::<i16>::dna();
        let rep = run_batched::<GlobalLinear>(&device(2), &params, &[]).unwrap();
        assert!(rep.outputs.is_empty());
        assert_eq!(rep.steals, 0);
        assert_eq!(rep.throughput_aps, 0.0);
    }

    #[test]
    fn cost_estimate_ranks_banded_work() {
        assert_eq!(cost_estimate(10, 10, Banding::None), 100);
        let banded = cost_estimate(100, 100, Banding::Fixed { half_width: 4 });
        assert_eq!(banded, 900);
        // The estimate never exceeds the full matrix.
        assert_eq!(cost_estimate(3, 3, Banding::Fixed { half_width: 50 }), 9);
    }
}
