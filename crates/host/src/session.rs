//! Long-lived session mode for the streaming engine: instead of handing
//! [`run_streamed_resilient`] a complete source iterator, a
//! [`StreamSession`] keeps the whole pipeline (producer channel, dealer,
//! NB-slot workers, [`OrderedWriter`]) alive on a background thread and
//! accepts pairs **one call at a time** — the entry-point shape a serving
//! front end needs, where requests arrive from live connections rather
//! than a file.
//!
//! The session inherits the streaming engine's contracts wholesale:
//!
//! * outputs reach the sink in strict submission order (`Ok` slots for
//!   completed pairs, `Err` slots for quarantined ones);
//! * at most `buffer + window` pairs are resident; a caller that submits
//!   faster than the engine drains **blocks inside [`submit`]** — the
//!   admission window is the backpressure mechanism;
//! * under [`FailurePolicy::Quarantine`] a failing pair costs an `Err`
//!   slot, never the session.
//!
//! [`run_streamed_resilient`]: crate::run_streamed_resilient
//! [`OrderedWriter`]: crate::OrderedWriter
//! [`FailurePolicy::Quarantine`]: crate::FailurePolicy::Quarantine
//! [`submit`]: StreamSession::submit

use crate::engine::PrecisionEngine;
use crate::fleet::FleetConfig;
use crate::resilience::{panic_message, PairFault, ResilienceConfig};
use crate::streaming::{
    run_streamed_engine, run_streamed_fleet_resilient, StreamConfig, StreamError, StreamReport,
};
use crossbeam::channel::{bounded, Receiver, Sender};
use dphls_core::{AdaptiveKernel, DpOutput, LaneKernel, LanePrecision};
use dphls_systolic::Device;
use std::convert::Infallible;
use std::fmt;
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Error from [`StreamSession::submit`]: the session was closed, or its
/// engine shut down on its own (e.g. [`StreamError::Stalled`] after a
/// wedged sink exhausted [`ResilienceConfig::send_deadline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionClosed {
    /// The index handed to the `register` callback of
    /// [`StreamSession::submit_with`] before the send failed, if
    /// registration happened. The sink will never fire for this index, so
    /// the caller must roll back any state keyed by it.
    pub registered: Option<usize>,
}

impl fmt::Display for SessionClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream session closed")
    }
}

impl std::error::Error for SessionClosed {}

/// Owned source end of the session: the bounded channel sender plus the
/// submission counter that assigns input indices. Both live under one lock
/// so the channel's FIFO order — which *is* the engine's global input
/// order — always matches the indices handed out.
struct SessionInner<K: LaneKernel> {
    tx: Option<Sender<dphls_core::SeqPair<K>>>,
    submitted: usize,
}

/// Join handle of the background engine thread: the pipeline's final
/// verdict, exactly what [`run_streamed_resilient`](crate::run_streamed_resilient) returns.
type EngineHandle = JoinHandle<Result<StreamReport, StreamError<Infallible>>>;

/// The streaming pipeline as a long-lived service: spawned once, fed pair
/// by pair from any number of threads, closed for its final
/// [`StreamReport`].
///
/// Submissions from concurrent callers are serialized internally; each
/// receives the input index its outputs will carry. The sink runs on the
/// engine's worker threads exactly as in
/// [`run_streamed_resilient`](crate::run_streamed_resilient) — hand
/// off, don't compute.
pub struct StreamSession<K: LaneKernel> {
    inner: Mutex<SessionInner<K>>,
    engine: Mutex<Option<EngineHandle>>,
}

impl<K> StreamSession<K>
where
    K: LaneKernel + 'static,
    K::Score: Send + 'static,
    K::Sym: Send + 'static,
{
    /// Spawns the pipeline on a background thread and returns the live
    /// session. `device`, `params`, `config`, and `res` have exactly their
    /// [`run_streamed_resilient`](crate::run_streamed_resilient) meaning;
    /// the sink receives `(input index, Ok(output) | Err(fault))` in
    /// strict index order.
    ///
    /// # Panics
    ///
    /// Panics if `config.buffer` or `config.window` is zero (the engine's
    /// own precondition, surfaced when the background thread starts).
    pub fn spawn<F>(
        device: Device,
        params: K::Params,
        config: StreamConfig,
        res: ResilienceConfig,
        sink: F,
    ) -> Self
    where
        F: FnMut(usize, Result<DpOutput<K::Score>, PairFault>) + Send + 'static,
    {
        Self::spawn_fleet(device, params, config, FleetConfig::single(), res, sink)
    }

    /// [`spawn`](Self::spawn) sharded across a simulated fleet of
    /// [`FleetConfig::devices`] devices: outputs, order, and error
    /// behavior are bit-identical to the single-device session; only the
    /// modeled throughput in the final [`StreamReport`] and the host
    /// wall-clock parallelism change.
    ///
    /// # Panics
    ///
    /// Panics if `config.buffer` or `config.window` is zero (the engine's
    /// own precondition, surfaced when the background thread starts).
    pub fn spawn_fleet<F>(
        device: Device,
        params: K::Params,
        config: StreamConfig,
        fleet: FleetConfig,
        res: ResilienceConfig,
        sink: F,
    ) -> Self
    where
        F: FnMut(usize, Result<DpOutput<K::Score>, PairFault>) + Send + 'static,
    {
        let (tx, rx) = bounded::<dphls_core::SeqPair<K>>(config.buffer.max(1));
        let engine = std::thread::spawn(move || {
            run_streamed_fleet_resilient::<K, _, Infallible, F>(
                &device,
                &params,
                SessionSource(rx),
                config,
                fleet,
                &res,
                None,
                sink,
            )
        });
        Self {
            inner: Mutex::new(SessionInner {
                tx: Some(tx),
                submitted: 0,
            }),
            engine: Mutex::new(Some(engine)),
        }
    }

    /// [`spawn`](Self::spawn) with **runtime precision dispatch** (only for
    /// kernels with an `i8` companion, [`AdaptiveKernel`]): pairs run on
    /// the saturating-`i8` fast path and escalate individually to the exact
    /// `i16` engine when their guard trips. Outputs are bit-identical for
    /// every precision; the final [`StreamReport`] carries the session's
    /// escalation count and rate.
    ///
    /// # Panics
    ///
    /// Panics if `config.buffer` or `config.window` is zero (the engine's
    /// own precondition, surfaced when the background thread starts).
    pub fn spawn_adaptive<F>(
        device: Device,
        params: K::Params,
        precision: LanePrecision,
        config: StreamConfig,
        res: ResilienceConfig,
        sink: F,
    ) -> Self
    where
        K: AdaptiveKernel,
        F: FnMut(usize, Result<DpOutput<i16>, PairFault>) + Send + 'static,
    {
        Self::spawn_adaptive_fleet(
            device,
            params,
            precision,
            config,
            FleetConfig::single(),
            res,
            sink,
        )
    }

    /// [`spawn_adaptive`](Self::spawn_adaptive) sharded across a simulated
    /// fleet — precision dispatch and fleet topology compose freely, and
    /// outputs stay bit-identical across both knobs.
    ///
    /// # Panics
    ///
    /// Panics if `config.buffer` or `config.window` is zero (the engine's
    /// own precondition, surfaced when the background thread starts).
    pub fn spawn_adaptive_fleet<F>(
        device: Device,
        params: K::Params,
        precision: LanePrecision,
        config: StreamConfig,
        fleet: FleetConfig,
        res: ResilienceConfig,
        sink: F,
    ) -> Self
    where
        K: AdaptiveKernel,
        F: FnMut(usize, Result<DpOutput<i16>, PairFault>) + Send + 'static,
    {
        let (tx, rx) = bounded::<dphls_core::SeqPair<K>>(config.buffer.max(1));
        let engine = std::thread::spawn(move || {
            let engine = PrecisionEngine::<K>::new(params, precision);
            run_streamed_engine::<K, _, _, Infallible, F>(
                &device,
                &engine,
                SessionSource(rx),
                config,
                fleet,
                &res,
                None,
                sink,
            )
        });
        Self {
            inner: Mutex::new(SessionInner {
                tx: Some(tx),
                submitted: 0,
            }),
            engine: Mutex::new(Some(engine)),
        }
    }

    /// Submits one pair, blocking while the engine's buffer and admission
    /// window are both full (backpressure). Returns the pair's input
    /// index — the index its sink slot will carry.
    ///
    /// # Errors
    ///
    /// [`SessionClosed`] if [`close`](Self::close) ran or the engine shut
    /// down on its own.
    pub fn submit(&self, q: Vec<K::Sym>, r: Vec<K::Sym>) -> Result<usize, SessionClosed> {
        self.submit_with(q, r, |_| {})
    }

    /// [`submit`](Self::submit), with a callback invoked with the assigned
    /// index *before* the pair enters the engine — and therefore strictly
    /// before the sink can fire for it. Callers routing sink outputs by
    /// index (a serving front end mapping indices back to connections)
    /// need this ordering; registering after `submit` returns would race
    /// the sink.
    ///
    /// The callback runs under the session's submission lock: keep it
    /// short, and do not call back into the session from it.
    ///
    /// # Errors
    ///
    /// [`SessionClosed`] if the session is closed. When the failure is
    /// detected *after* `register` already ran (the engine hung up
    /// between index assignment and the channel send), the error carries
    /// the registered index so the caller can roll back.
    pub fn submit_with(
        &self,
        q: Vec<K::Sym>,
        r: Vec<K::Sym>,
        register: impl FnOnce(usize),
    ) -> Result<usize, SessionClosed> {
        let mut inner = self.inner.lock().expect("session mutex");
        let Some(tx) = inner.tx.as_ref() else {
            return Err(SessionClosed { registered: None });
        };
        let idx = inner.submitted;
        register(idx);
        // Blocks while the bounded buffer is full — the dealer drains it
        // only as the admission window frees, so this send *is* the
        // backpressure path. The lock is held across the wait, which
        // serializes concurrent submitters (required: channel FIFO order
        // defines the engine's input indices).
        if tx.send((q, r)).is_err() {
            // The engine tore down (abort path); drop our end too.
            inner.tx = None;
            return Err(SessionClosed {
                registered: Some(idx),
            });
        }
        inner.submitted = idx + 1;
        Ok(idx)
    }

    /// Pairs accepted so far (the next index [`submit`](Self::submit)
    /// will assign).
    pub fn submitted(&self) -> usize {
        self.inner.lock().expect("session mutex").submitted
    }

    /// Closes the session: no further submissions are accepted, the
    /// engine drains everything already admitted (emitting every slot
    /// through the sink), and its final report is returned.
    ///
    /// # Errors
    ///
    /// Whatever the underlying engine run returned — see
    /// [`run_streamed_resilient`](crate::run_streamed_resilient). The
    /// source is infallible here, so `StreamError::Source` cannot occur.
    pub fn close(self) -> Result<StreamReport, StreamError<Infallible>> {
        self.shutdown()
            .expect("freshly consumed session closes exactly once")
    }

    /// Interior-mutability variant of [`close`](Self::close) for sessions
    /// behind an `Arc` (a server holding one session per kernel): the
    /// first call drains the engine and returns its result, every later
    /// call returns `None`.
    pub fn shutdown(&self) -> Option<Result<StreamReport, StreamError<Infallible>>> {
        // Dropping the sender ends the producer's source iterator; the
        // engine then drains and joins.
        self.inner.lock().expect("session mutex").tx = None;
        let engine = self.engine.lock().expect("engine mutex").take()?;
        Some(
            engine
                .join()
                .unwrap_or_else(|payload| Err(StreamError::WorkerPanic(panic_message(payload)))),
        )
    }
}

/// Adapts the owned channel receiver to the engine's source-iterator
/// contract; ends cleanly when every sender is gone.
struct SessionSource<T>(Receiver<T>);

impl<T> Iterator for SessionSource<T> {
    type Item = Result<T, Infallible>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.recv().ok().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailurePolicy;
    use dphls_core::KernelConfig;
    use dphls_kernels::{GlobalLinear, LinearParams};
    use dphls_systolic::{CycleModelParams, KernelCycleInfo};
    use std::sync::Arc;

    fn device(nk: usize) -> Device {
        Device::new(
            KernelConfig::new(8, 2, nk).with_max_lengths(96, 96),
            CycleModelParams::dphls(),
            KernelCycleInfo {
                sym_bits: 2,
                has_walk: true,
                ii: 1,
            },
            250.0,
        )
    }

    fn workload(n: usize) -> Vec<(Vec<dphls_seq::Base>, Vec<dphls_seq::Base>)> {
        let mut sim = dphls_seq::gen::ReadSimulator::new(77);
        sim.read_pairs(n, 80, 0.2)
            .into_iter()
            .map(|(r, q)| (q.into_vec(), r.into_vec()))
            .collect()
    }

    #[test]
    fn session_outputs_match_run_batched() {
        let wl = workload(40);
        let dev = device(2);
        let params = LinearParams::<i16>::dna();
        let expected = crate::run_batched::<GlobalLinear>(&dev, &params, &wl).unwrap();

        let got = Arc::new(Mutex::new(Vec::new()));
        let sink_got = Arc::clone(&got);
        let session = StreamSession::<GlobalLinear>::spawn(
            dev,
            params,
            StreamConfig {
                buffer: 4,
                window: 8,
                nb_slots: 0,
            },
            ResilienceConfig::disabled(),
            move |idx, slot| {
                sink_got
                    .lock()
                    .unwrap()
                    .push((idx, slot.expect("fault-free workload")));
            },
        );
        for (i, (q, r)) in wl.iter().cloned().enumerate() {
            assert_eq!(session.submit(q, r).unwrap(), i);
        }
        assert_eq!(session.submitted(), wl.len());
        let report = session.close().unwrap();
        assert_eq!(report.pairs, wl.len());
        assert!(report.faults.is_empty());

        let got = got.lock().unwrap();
        assert_eq!(got.len(), wl.len());
        for (i, (idx, out)) in got.iter().enumerate() {
            assert_eq!(*idx, i, "sink indices are the submission order");
            assert_eq!(*out, expected.outputs[i], "bit-identical to run_batched");
        }
    }

    #[test]
    fn concurrent_submitters_get_unique_contiguous_indices() {
        let wl = workload(30);
        let dev = device(3);
        let params = LinearParams::<i16>::dna();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let session = Arc::new(StreamSession::<GlobalLinear>::spawn(
            dev,
            params,
            StreamConfig::default(),
            ResilienceConfig::disabled(),
            move |idx, _| sink_seen.lock().unwrap().push(idx),
        ));
        std::thread::scope(|scope| {
            for chunk in wl.chunks(10) {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    for (q, r) in chunk.iter().cloned() {
                        session.submit(q, r).unwrap();
                    }
                });
            }
        });
        let report = session.shutdown().unwrap().unwrap();
        assert_eq!(report.pairs, wl.len());
        // Strict emission order over the whole session, regardless of
        // which thread submitted which pair.
        assert_eq!(*seen.lock().unwrap(), (0..wl.len()).collect::<Vec<_>>());
        // Later shutdowns are no-ops, and submissions are refused.
        assert!(session.shutdown().is_none());
        let (q, r) = wl[0].clone();
        assert_eq!(
            session.submit(q, r),
            Err(SessionClosed { registered: None })
        );
    }

    #[test]
    fn register_runs_before_sink_and_quarantine_emits_err_slot() {
        let dev = device(1);
        let params = LinearParams::<i16>::dna();
        let registered = Arc::new(Mutex::new(Vec::new()));
        let events = Arc::new(Mutex::new(Vec::new()));
        let (sink_reg, sink_events) = (Arc::clone(&registered), Arc::clone(&events));
        let session = StreamSession::<GlobalLinear>::spawn(
            dev,
            params,
            StreamConfig {
                buffer: 1,
                window: 1,
                nb_slots: 0,
            },
            ResilienceConfig {
                failure_policy: FailurePolicy::Quarantine,
                max_retries: 0,
                ..ResilienceConfig::standard()
            },
            move |idx, slot| {
                assert!(
                    sink_reg.lock().unwrap().contains(&idx),
                    "index {idx} must be registered before its sink slot fires"
                );
                sink_events.lock().unwrap().push((idx, slot.is_ok()));
            },
        );
        let wl = workload(3);
        for (i, (q, r)) in wl.iter().cloned().enumerate() {
            let reg = Arc::clone(&registered);
            let idx = session
                .submit_with(q, r, move |idx| reg.lock().unwrap().push(idx))
                .unwrap();
            assert_eq!(idx, i);
        }
        // Over-length query: a per-pair kernel error, quarantined mid-run.
        let reg = Arc::clone(&registered);
        session
            .submit_with(
                vec![dphls_seq::Base::A; 200],
                vec![dphls_seq::Base::C; 50],
                move |idx| reg.lock().unwrap().push(idx),
            )
            .unwrap();
        let report = session.close().unwrap();
        assert_eq!(report.pairs, 4);
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].idx, 3);
        assert_eq!(
            *events.lock().unwrap(),
            vec![(0, true), (1, true), (2, true), (3, false)]
        );
    }
}
