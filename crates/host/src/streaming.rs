//! Streaming batch pipeline: feeds the work-stealing channel workers from an
//! **incremental** source instead of a pre-built `Vec`, so workloads larger
//! than host RAM can run and the `NK` channels start aligning while input is
//! still being parsed (ROADMAP "Async I/O batching"; the bounded-FIFO
//! producer/consumer decoupling of the task-parallel HLS literature).
//!
//! Three stages, connected by bounded buffers:
//!
//! 1. **Producer** — a spawned thread pulls pairs from the caller's iterator
//!    (e.g. a [`dphls_seq::fasta::FastaStream`] adapter) and pushes them
//!    through a bounded `crossbeam` channel of depth [`StreamConfig::buffer`].
//!    A full channel blocks the producer: parse never runs ahead of compute
//!    by more than `buffer` pairs.
//! 2. **Dealer + workers** — the calling thread receives pairs, cost-ranks
//!    each one (same estimate as [`run_batched`]), and deals it round-robin
//!    into the per-channel deques, **admission-gated** so at most
//!    [`StreamConfig::window`] pairs are in flight between admission and
//!    ordered emission. Each channel is drained by up to
//!    [`StreamConfig::nb_slots`] **block-slot** threads (the device's `NB`
//!    blocks per channel, mirrored host-side exactly as in
//!    [`crate::BatchConfig`]), every slot with its own scratch arena. The
//!    deques carry a "producer still live" state: a worker finding every
//!    deque empty blocks on a condvar instead of exiting, and steals the
//!    cheapest job from a neighbor's tail exactly as the batch engine does.
//! 3. **[`OrderedWriter`]** — workers complete alignments out of input order;
//!    the writer restores input order with a reorder buffer whose occupancy
//!    is bounded by the admission window, invoking the caller's sink as soon
//!    as each next-in-order output is ready.
//!
//! Peak resident pairs are therefore `buffer + window` (+1 in the producer's
//! hand), **not** O(workload); both bounds are tracked by high-water-mark
//! counters in the [`StreamReport`] and asserted by the differential tests.
//!
//! [`run_batched`]: crate::run_batched

use crate::engine::{ExactEngine, PairEngine, PrecisionEngine};
use crate::faults::{injected_kernel_error, injected_panic_message, FaultKind, FaultPlan};
use crate::fleet::FleetConfig;
use crate::resilience::{
    abort_aware_sleep, panic_message, FailurePolicy, FaultCause, PairFault, ResilienceConfig,
};
use crate::scheduler::{cost_estimate, BatchConfig};
use crossbeam::channel::SendTimeoutError;
use dphls_core::{AdaptiveKernel, DpOutput, KernelSpec, LaneKernel, LanePrecision};
use dphls_systolic::{
    alignment_cycles, fleet_cycles, throughput_aps, transfer_bytes, Device, SystolicError,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Buffer-depth knobs of the streaming pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Depth of the bounded producer channel: how many parsed pairs may sit
    /// between the input source and the dealer. Depth 1 runs the producer in
    /// lockstep with the dealer.
    pub buffer: usize,
    /// Admission window: how many pairs may be in flight between dealing and
    /// ordered emission. This simultaneously bounds the per-channel deques,
    /// the in-execution set, and the [`OrderedWriter`] reorder buffer.
    pub window: usize,
    /// In-flight block slots per channel, with exactly the semantics of
    /// [`BatchConfig::nb_slots`]: `0` (the default) auto-sizes to
    /// `min(NB, ceil(host threads / NK))`, explicit values clamp to
    /// `1..=NB`. Outputs, ordering, and modeled throughput are
    /// bit-identical for every slot count.
    pub nb_slots: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        // Large enough to keep every channel busy under skewed costs, small
        // enough that resident memory stays trivially bounded.
        Self {
            buffer: 64,
            window: 256,
            nb_slots: 0,
        }
    }
}

/// Result of a streamed run: the [`crate::ScheduleReport`] contract
/// (per-channel stats, steals, single-pass modeled throughput) plus the
/// bounded-memory evidence.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Pairs aligned (and emitted, in input order, through the sink).
    pub pairs: usize,
    /// Alignments each channel actually executed (all of its block slots,
    /// own + stolen), aggregated across the fleet (channel `c` sums every
    /// device's channel `c`).
    pub per_channel: Vec<usize>,
    /// Alignments per block slot, `per_slot[channel][slot]`; row sums equal
    /// [`per_channel`](Self::per_channel).
    pub per_slot: Vec<Vec<usize>>,
    /// Block slots each channel ran with (the resolved
    /// [`StreamConfig::nb_slots`]).
    pub nb_slots: usize,
    /// Fleet devices the run sharded across (the resolved
    /// [`FleetConfig`] device count; 1 for the non-fleet entry points).
    pub devices: usize,
    /// Alignments each fleet device executed, `per_device[device]`.
    pub per_device: Vec<usize>,
    /// Devices lost to [`FaultKind::DeviceLoss`] injections during the run
    /// (0 without a fault plan).
    pub device_losses: usize,
    /// Alignments stolen across channels or devices.
    pub steals: usize,
    /// Modeled device throughput in alignments/second, derived from the
    /// cycle statistics of the functional runs (no second pass).
    pub throughput_aps: f64,
    /// Peak pairs simultaneously held in the [`OrderedWriter`] reorder
    /// buffer; always `< window`.
    pub reorder_high_water: usize,
    /// Peak pairs simultaneously in flight between admission and ordered
    /// emission (deques + executing + reorder buffer); always `<= window`.
    /// Total resident pairs are bounded by `buffer + resident_high_water`
    /// plus the one pair in the producer's hand.
    pub resident_high_water: usize,
    /// Quarantined pairs, sorted by input index — empty unless
    /// [`run_streamed_resilient`] ran under [`FailurePolicy::Quarantine`].
    /// Each entry matches exactly one `Err` slot the sink received.
    pub faults: Vec<PairFault>,
    /// Failed or timed-out attempts that were re-dealt.
    pub retries: usize,
    /// Attempts discarded for exceeding their cost-scaled deadline.
    pub timeouts: usize,
    /// Pairs that escalated from the `i8` fast path to the exact `i16`
    /// engine (always 0 on the exact path — see
    /// [`crate::engine::AdaptiveEngine`]).
    pub escalations: u64,
}

impl StreamReport {
    /// Pairs that completed successfully (emitted as `Ok` slots).
    pub fn completed(&self) -> usize {
        self.pairs - self.faults.len()
    }

    /// Fraction of completed pairs that escalated to the exact engine
    /// (0.0 on the exact path or an empty run).
    pub fn escalation_rate(&self) -> f64 {
        let completed = self.completed();
        if completed == 0 {
            0.0
        } else {
            self.escalations as f64 / completed as f64
        }
    }
}

/// Error from a streamed run.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError<E> {
    /// The input source yielded an error; produced outputs that preceded it
    /// may already have been emitted through the sink.
    Source(E),
    /// An alignment failed on the device model.
    Systolic(SystolicError),
    /// A pair failed with a non-kernel cause (worker panic or deadline
    /// timeout) under [`FailurePolicy::Abort`].
    Fault(PairFault),
    /// The producer could not feed the bounded channel within
    /// [`ResilienceConfig::send_deadline`] — the consumer side is wedged.
    /// The pipeline shut down cleanly instead of deadlocking.
    Stalled {
        /// How long the producer waited before giving up.
        waited: Duration,
    },
    /// A pipeline thread panicked outside per-pair isolation (only
    /// possible with resilience disabled); carries the join payload.
    WorkerPanic(String),
}

impl<E: fmt::Display> fmt::Display for StreamError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Source(e) => write!(f, "streaming source failed: {e}"),
            StreamError::Systolic(e) => write!(f, "alignment failed: {e}"),
            StreamError::Fault(fault) => write!(f, "stream aborted: {fault}"),
            StreamError::Stalled { waited } => {
                write!(
                    f,
                    "stream producer stalled for {waited:?} (consumer wedged)"
                )
            }
            StreamError::WorkerPanic(msg) => write!(f, "stream worker panicked: {msg}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for StreamError<E> {}

/// A push landed outside the writer's reorder window (or was a duplicate) —
/// the producer side failed to respect the admission gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderOverflow {
    /// Index of the offending push.
    pub idx: usize,
    /// Next index the writer will emit.
    pub next_emit: usize,
    /// Configured window.
    pub window: usize,
}

impl fmt::Display for ReorderOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output index {} outside reorder window [{}, {})",
            self.idx,
            self.next_emit,
            self.next_emit + self.window
        )
    }
}

impl std::error::Error for ReorderOverflow {}

/// Restores input order over out-of-order completions with a bounded
/// reorder buffer: outputs pushed as `(input index, value)` are handed to
/// the sink in strictly increasing index order, holding at most
/// `window - 1` out-of-order values (an in-order push is forwarded without
/// buffering). The peak held count is exposed as [`high_water`] so tests
/// can assert the bound.
///
/// [`high_water`]: OrderedWriter::high_water
pub struct OrderedWriter<S, F: FnMut(usize, S)> {
    sink: F,
    window: usize,
    next_emit: usize,
    pending: BTreeMap<usize, S>,
    high_water: usize,
}

impl<S, F: FnMut(usize, S)> OrderedWriter<S, F> {
    /// Creates a writer that accepts indices within `window` of the next
    /// unemitted one.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize, sink: F) -> Self {
        assert!(window > 0, "reorder window must be >= 1");
        Self {
            sink,
            window,
            next_emit: 0,
            pending: BTreeMap::new(),
            high_water: 0,
        }
    }

    /// Accepts the output for input index `idx`, emitting it (and any
    /// now-contiguous buffered successors) if it is next in order, else
    /// buffering it.
    ///
    /// # Errors
    ///
    /// Returns [`ReorderOverflow`] if `idx` was already emitted or lies at
    /// or beyond `next_emit + window`; the value is dropped.
    pub fn push(&mut self, idx: usize, value: S) -> Result<(), ReorderOverflow> {
        if idx < self.next_emit || idx >= self.next_emit + self.window {
            return Err(ReorderOverflow {
                idx,
                next_emit: self.next_emit,
                window: self.window,
            });
        }
        if idx == self.next_emit {
            (self.sink)(idx, value);
            self.next_emit += 1;
            while let Some(v) = self.pending.remove(&self.next_emit) {
                (self.sink)(self.next_emit, v);
                self.next_emit += 1;
            }
        } else {
            self.pending.insert(idx, value);
            self.high_water = self.high_water.max(self.pending.len());
        }
        Ok(())
    }

    /// Next index the writer will emit (= count of emitted outputs).
    pub fn next_emit(&self) -> usize {
        self.next_emit
    }

    /// Outputs currently buffered out of order.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Peak number of outputs ever buffered at once (always `< window`).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Whether every pushed output has been emitted.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

/// A job dealt into a channel deque: the pair, its input index, its
/// cost-estimate rank, and how many times it has already been attempted
/// (retries re-enter the deques with `attempts` bumped).
struct Job<Sym> {
    idx: usize,
    q: Vec<Sym>,
    r: Vec<Sym>,
    cost: u64,
    attempts: u32,
}

/// Deque state shared by the dealer and the workers: the per-device
/// per-channel job queues (queue `dev * nk + ch`) plus the "producer still
/// live" flag that turns steal-on-empty from an exit condition into a
/// blocking wait, the fleet's per-device loss flags, and the count of jobs
/// currently in a worker's hand (so survivors outwait a lost device's
/// re-deals instead of exiting early).
struct Sched<Sym> {
    queues: Vec<VecDeque<Job<Sym>>>,
    producer_live: bool,
    /// One flag per fleet device; a lost device dispatches nothing more.
    lost: Vec<bool>,
    /// Jobs popped but not yet terminal (output, quarantine, or re-deal);
    /// maintained on the instrumented path only.
    busy: usize,
}

/// Writer-side shared state: the ordered sink plus admission accounting.
struct Emit<S, F: FnMut(usize, S)> {
    writer: OrderedWriter<S, F>,
    /// Pairs admitted by the dealer (dealt into a deque).
    admitted: usize,
    /// Peak `admitted - emitted` (exact: both mutate under this lock).
    resident_high_water: usize,
}

/// Per-worker execution tally, merged into the report after the join.
#[derive(Default)]
struct WorkerStats {
    executed: usize,
    cycle_sum: u64,
    stolen: usize,
    escalations: u64,
}

/// Aligns pairs pulled incrementally from `source` across the device's `NK`
/// channels, emitting outputs **in input order** through `sink` as they
/// complete. Outputs are bit-identical to [`crate::run_batched`] on the same
/// pairs; peak resident pairs are bounded by `config.buffer + config.window`
/// (see the module docs and [`StreamReport`]'s high-water marks).
///
/// The sink receives `(input index, output)` with indices strictly
/// increasing from 0; it is invoked from worker threads under a lock, so it
/// should hand off rather than do heavy work.
///
/// # Errors
///
/// [`StreamError::Source`] if the source iterator yields an error (outputs
/// emitted before that point have already reached the sink),
/// [`StreamError::Systolic`] for the first device-model failure, or
/// [`StreamError::WorkerPanic`] if a pipeline thread panicked.
///
/// # Panics
///
/// Panics if `config.buffer` or `config.window` is zero.
pub fn run_streamed<K, I, E, F>(
    device: &Device,
    params: &K::Params,
    source: I,
    config: StreamConfig,
    mut sink: F,
) -> Result<StreamReport, StreamError<E>>
where
    K: LaneKernel,
    K::Score: Send,
    K::Params: Sync,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send + fmt::Display,
    F: FnMut(usize, DpOutput<K::Score>) + Send,
{
    run_streamed_resilient::<K, I, E, _>(
        device,
        params,
        source,
        config,
        &ResilienceConfig::disabled(),
        None,
        move |idx, slot| match slot {
            Ok(out) => sink(idx, out),
            // The Abort policy returns the first failure as the run error
            // before anything is quarantined.
            Err(fault) => unreachable!("abort policy never emits quarantined slots: {fault}"),
        },
    )
}

/// [`run_streamed`] plus a resilience policy and an optional fault plan:
/// the sink receives `Result`-shaped slots — `Ok(output)` for completed
/// pairs and `Err(`[`PairFault`]`)` for quarantined ones — still in strict
/// input order, so order restoration survives holes. Per-pair failures
/// (kernel errors, worker panics caught at the slot loop, cost-scaled
/// deadline timeouts, and — under [`FailurePolicy::Quarantine`] — source
/// errors for individual records) are retried with exponential backoff up
/// to [`ResilienceConfig::max_retries`] times before quarantine; with
/// [`ResilienceConfig::send_deadline`] set, a producer unable to feed the
/// bounded channel degrades to [`StreamError::Stalled`] instead of
/// deadlocking behind a wedged consumer.
///
/// The degradation contract (enforced by `tests/chaos.rs`): surviving
/// outputs are bit-identical to a fault-free run and arrive at strictly
/// increasing indices; every `Err` slot matches exactly one entry of
/// [`StreamReport::faults`].
///
/// # Errors
///
/// [`StreamError::Source`] for a source error under
/// [`FailurePolicy::Abort`] (under `Quarantine` the record is faulted and
/// the stream continues); [`StreamError::Systolic`] /
/// [`StreamError::Fault`] for the first pair failure under `Abort`;
/// [`StreamError::Stalled`] when the producer's send deadline expires;
/// [`StreamError::WorkerPanic`] if a panic escapes per-pair isolation.
///
/// # Panics
///
/// Panics if `config.buffer` or `config.window` is zero.
pub fn run_streamed_resilient<K, I, E, F>(
    device: &Device,
    params: &K::Params,
    source: I,
    config: StreamConfig,
    res: &ResilienceConfig,
    plan: Option<&FaultPlan>,
    sink: F,
) -> Result<StreamReport, StreamError<E>>
where
    K: LaneKernel,
    K::Score: Send,
    K::Params: Sync,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send + fmt::Display,
    F: FnMut(usize, Result<DpOutput<K::Score>, PairFault>) + Send,
{
    run_streamed_fleet_resilient::<K, I, E, F>(
        device,
        params,
        source,
        config,
        FleetConfig::single(),
        res,
        plan,
        sink,
    )
}

/// [`run_streamed`] sharded across a simulated fleet of
/// [`FleetConfig::devices`] devices: outputs, order, and error behavior
/// are bit-identical to the single-device run (enforced by
/// `crates/host/tests/fleet.rs`); only the modeled throughput (per-device
/// arbitration plus transfer cost, spread across the fleet — see
/// [`dphls_systolic::fleet_cycles`]) and the wall-clock parallelism
/// change.
///
/// # Errors
///
/// Same as [`run_streamed`].
///
/// # Panics
///
/// Panics if `config.buffer` or `config.window` is zero.
pub fn run_streamed_fleet<K, I, E, F>(
    device: &Device,
    params: &K::Params,
    source: I,
    config: StreamConfig,
    fleet: FleetConfig,
    mut sink: F,
) -> Result<StreamReport, StreamError<E>>
where
    K: LaneKernel,
    K::Score: Send,
    K::Params: Sync,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send + fmt::Display,
    F: FnMut(usize, DpOutput<K::Score>) + Send,
{
    run_streamed_fleet_resilient::<K, I, E, _>(
        device,
        params,
        source,
        config,
        fleet,
        &ResilienceConfig::disabled(),
        None,
        move |idx, slot| match slot {
            Ok(out) => sink(idx, out),
            Err(fault) => unreachable!("abort policy never emits quarantined slots: {fault}"),
        },
    )
}

/// [`run_streamed_resilient`] sharded across a simulated fleet — the full
/// streaming surface (resilience policy, fault plan including
/// [`FaultKind::DeviceLoss`], fleet topology) in one entry point.
///
/// # Errors
///
/// Exactly as [`run_streamed_resilient`].
///
/// # Panics
///
/// Panics if `config.buffer` or `config.window` is zero.
#[allow(clippy::too_many_arguments)]
pub fn run_streamed_fleet_resilient<K, I, E, F>(
    device: &Device,
    params: &K::Params,
    source: I,
    config: StreamConfig,
    fleet: FleetConfig,
    res: &ResilienceConfig,
    plan: Option<&FaultPlan>,
    sink: F,
) -> Result<StreamReport, StreamError<E>>
where
    K: LaneKernel,
    K::Score: Send,
    K::Params: Sync,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send + fmt::Display,
    F: FnMut(usize, Result<DpOutput<K::Score>, PairFault>) + Send,
{
    let engine = ExactEngine::<K>::new(params.clone());
    run_streamed_engine::<K, _, I, E, F>(device, &engine, source, config, fleet, res, plan, sink)
}

/// [`run_streamed_resilient`] with **runtime precision dispatch**: pairs
/// run on the saturating-`i8` fast path and escalate individually to the
/// exact `i16` engine when their guard trips (or run entirely exact under
/// [`LanePrecision::Exact`]). Outputs are bit-identical for every
/// precision; [`StreamReport::escalations`] /
/// [`StreamReport::escalation_rate`] expose how often the fast path bailed.
///
/// # Errors
///
/// Exactly as [`run_streamed_resilient`].
///
/// # Panics
///
/// Panics if `config.buffer` or `config.window` is zero.
#[allow(clippy::too_many_arguments)]
pub fn run_streamed_adaptive<K, I, E, F>(
    device: &Device,
    params: &K::Params,
    precision: LanePrecision,
    source: I,
    config: StreamConfig,
    res: &ResilienceConfig,
    plan: Option<&FaultPlan>,
    sink: F,
) -> Result<StreamReport, StreamError<E>>
where
    K: AdaptiveKernel,
    K::Params: Sync,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send + fmt::Display,
    F: FnMut(usize, Result<DpOutput<i16>, PairFault>) + Send,
{
    let engine = PrecisionEngine::<K>::new(params.clone(), precision);
    run_streamed_engine::<K, _, I, E, F>(
        device,
        &engine,
        source,
        config,
        FleetConfig::single(),
        res,
        plan,
        sink,
    )
}

/// The streaming pipeline, generic over the per-pair execution strategy
/// ([`PairEngine`]): every streamed entry point funnels here. See
/// [`run_streamed_resilient`] for the pipeline semantics — this function
/// adds none of its own.
///
/// # Errors
///
/// Exactly as [`run_streamed_resilient`].
///
/// # Panics
///
/// Panics if `config.buffer` or `config.window` is zero.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn run_streamed_engine<K, En, I, E, F>(
    device: &Device,
    engine: &En,
    source: I,
    config: StreamConfig,
    fleet: FleetConfig,
    res: &ResilienceConfig,
    plan: Option<&FaultPlan>,
    sink: F,
) -> Result<StreamReport, StreamError<E>>
where
    K: KernelSpec,
    En: PairEngine<K>,
    K::Score: Send,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send + fmt::Display,
    F: FnMut(usize, Result<DpOutput<K::Score>, PairFault>) + Send,
{
    assert!(config.buffer > 0, "stream buffer depth must be >= 1");
    assert!(config.window > 0, "stream window must be >= 1");
    let kernel_config = device.config();
    let nk = kernel_config.nk.max(1);
    let slots = BatchConfig::slots(config.nb_slots).resolve_slots(kernel_config);
    let d = fleet.resolve_devices();
    let transfer = fleet.transfer;
    // Instrumented = any resilience mechanism or injection active; the
    // alternative is the original zero-overhead slot loop.
    let instrumented = !res.is_disabled() || plan.is_some_and(|p| !p.is_empty());
    let quarantine = res.failure_policy == FailurePolicy::Quarantine;

    let sched: Mutex<Sched<K::Sym>> = Mutex::new(Sched {
        queues: (0..d * nk).map(|_| VecDeque::new()).collect(),
        producer_live: true,
        lost: vec![false; d],
        busy: 0,
    });
    // Wakes workers blocked on empty deques.
    let work_cv = Condvar::new();
    type SlotOutcome<S> = Result<DpOutput<S>, PairFault>;
    let emit: Mutex<Emit<SlotOutcome<K::Score>, F>> = Mutex::new(Emit {
        writer: OrderedWriter::new(config.window, sink),
        admitted: 0,
        resident_high_water: 0,
    });
    // Wakes the dealer blocked on a full admission window.
    let space_cv = Condvar::new();
    let abort = AtomicBool::new(false);
    let source_error: Mutex<Option<E>> = Mutex::new(None);
    let pair_error: Mutex<Option<PairFault>> = Mutex::new(None);
    let stalled: Mutex<Option<Duration>> = Mutex::new(None);
    let faults: Mutex<Vec<PairFault>> = Mutex::new(Vec::new());
    let retries = AtomicUsize::new(0);
    let timeouts = AtomicUsize::new(0);
    let device_losses = AtomicUsize::new(0);
    // One tally per block slot, indexed `(dev * nk + ch) * slots + slot`.
    let stats: Vec<Mutex<WorkerStats>> = (0..d * nk * slots)
        .map(|_| Mutex::new(WorkerStats::default()))
        .collect();

    let (tx, rx) =
        crossbeam::channel::bounded::<Result<(Vec<K::Sym>, Vec<K::Sym>), E>>(config.buffer);

    crossbeam::scope(|scope| {
        // Stage 1: producer — drains the source into the bounded channel.
        // A send error means the dealer hung up (abort path); under the
        // Abort policy a source error ends production, under Quarantine the
        // dealer faults the record and production continues. With a send
        // deadline configured, a consumer that stops draining degrades the
        // run to `Stalled` instead of blocking this thread forever.
        {
            let (sched, work_cv, emit, space_cv) = (&sched, &work_cv, &emit, &space_cv);
            let (abort, stalled) = (&abort, &stalled);
            let send_deadline = res.send_deadline;
            scope.spawn(move |_| {
                for item in source {
                    let stop = item.is_err() && !quarantine;
                    match send_deadline {
                        None => {
                            if tx.send(item).is_err() || stop {
                                break;
                            }
                        }
                        Some(deadline) => {
                            let started = Instant::now();
                            match tx.send_timeout(item, deadline) {
                                Ok(()) => {
                                    if stop {
                                        break;
                                    }
                                }
                                Err(SendTimeoutError::Disconnected(_)) => break,
                                Err(SendTimeoutError::Timeout(_)) => {
                                    *stalled.lock().expect("stalled mutex") =
                                        Some(started.elapsed());
                                    abort.store(true, Ordering::Relaxed);
                                    // Bridged notifies (see the worker abort
                                    // path): wake the dealer and any parked
                                    // workers so the pipeline unwinds.
                                    drop(sched.lock().expect("sched mutex"));
                                    work_cv.notify_all();
                                    drop(emit.lock().expect("emit mutex"));
                                    space_cv.notify_all();
                                    break;
                                }
                            }
                        }
                    }
                }
            });
        }

        // Stage 2b: block-slot workers (`nb_slots` threads per NK channel
        // per fleet device; the slots of one channel share its deque, so
        // dispatch within a channel is not a steal).
        for worker in 0..d * nk * slots {
            let qown = worker / slots;
            let dev = qown / nk;
            let ch = qown % nk;
            let (sched, work_cv, emit, space_cv) = (&sched, &work_cv, &emit, &space_cv);
            let (abort, pair_error, stats) = (&abort, &pair_error, &stats);
            let (faults, retries, timeouts) = (&faults, &retries, &timeouts);
            let device_losses = &device_losses;
            scope.spawn(move |_| {
                // Every block slot owns its scratch arena.
                let mut scratch = engine.new_scratch();
                let mut local = WorkerStats::default();
                'work: loop {
                    // Own deque's expensive end first; then steal the
                    // cheapest job — same-device channels before other
                    // devices, always from the tail; then block if the
                    // producer may still deal more (or a busy peer may
                    // still re-deal); exit otherwise.
                    let job = {
                        let mut guard = sched.lock().expect("sched mutex");
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break None;
                            }
                            // A lost device dispatches nothing further.
                            if guard.lost[dev] {
                                break None;
                            }
                            if let Some(job) = guard.queues[qown].pop_front() {
                                // Counted under the same guard as the pop so
                                // peers never observe empty queues with the
                                // job invisibly in a hand.
                                if instrumented {
                                    guard.busy += 1;
                                }
                                break Some(job);
                            }
                            let mut stolen = None;
                            'steal: for du in 0..d {
                                let dd = (dev + du) % d;
                                for cu in usize::from(du == 0)..nk {
                                    let victim = dd * nk + (ch + cu) % nk;
                                    stolen = guard.queues[victim].pop_back();
                                    if stolen.is_some() {
                                        break 'steal;
                                    }
                                }
                            }
                            if let Some(job) = stolen {
                                local.stolen += 1;
                                if instrumented {
                                    guard.busy += 1;
                                }
                                break Some(job);
                            }
                            if !guard.producer_live && (!instrumented || guard.busy == 0) {
                                break None;
                            }
                            guard = work_cv.wait(guard).expect("sched mutex");
                        }
                    };
                    let Some(job) = job else { break };

                    let outcome = if !instrumented {
                        // Original hot path: no clock, no catch_unwind.
                        engine
                            .run_pair(&job.q, &job.r, kernel_config, &mut scratch)
                            .map_err(FaultCause::Kernel)
                    } else {
                        let deadline = res.deadline_for(job.cost);
                        let started = Instant::now();
                        let mut injected = plan.and_then(|p| p.worker_fault(job.idx, job.attempts));
                        if injected == Some(FaultKind::DeviceLoss) {
                            // Take this device down — unless it is the last
                            // live one, in which case the injection is
                            // ignored and the job runs normally.
                            let took = {
                                let mut guard = sched.lock().expect("sched mutex");
                                let survives = !guard.lost[dev]
                                    && guard.lost.iter().filter(|&&x| !x).count() > 1;
                                if survives {
                                    guard.lost[dev] = true;
                                    // Migrate the dead device's queued jobs
                                    // to the next live device, channel to
                                    // channel, keeping each deque's cost
                                    // order; the in-flight job itself fails
                                    // below with a DeviceLost cause and
                                    // re-enters the retry/quarantine path.
                                    let target = (1..d)
                                        .map(|v| (dev + v) % d)
                                        .find(|&t| !guard.lost[t])
                                        .expect("loss gate keeps one live device");
                                    for c in 0..nk {
                                        let moved: Vec<Job<K::Sym>> =
                                            guard.queues[dev * nk + c].drain(..).collect();
                                        for j in moved {
                                            let queue = &mut guard.queues[target * nk + c];
                                            let at = queue.partition_point(|x| x.cost >= j.cost);
                                            queue.insert(at, j);
                                        }
                                    }
                                }
                                survives
                            };
                            if took {
                                device_losses.fetch_add(1, Ordering::Relaxed);
                                work_cv.notify_all();
                            } else {
                                injected = None;
                            }
                        }
                        if let Some(FaultKind::Stall { millis }) = injected {
                            abort_aware_sleep(Duration::from_millis(millis), abort);
                            if abort.load(Ordering::Relaxed) {
                                break 'work;
                            }
                        }
                        let outcome = if injected == Some(FaultKind::DeviceLoss) {
                            Err(FaultCause::DeviceLost { device: dev })
                        } else if injected == Some(FaultKind::KernelError) {
                            Err(FaultCause::Kernel(injected_kernel_error()))
                        } else {
                            let caught = catch_unwind(AssertUnwindSafe(|| {
                                if injected == Some(FaultKind::Panic) {
                                    panic!("{}", injected_panic_message(job.idx));
                                }
                                engine.run_pair(&job.q, &job.r, kernel_config, &mut scratch)
                            }));
                            match caught {
                                Ok(Ok(run)) => Ok(run),
                                Ok(Err(e)) => Err(FaultCause::Kernel(e)),
                                Err(payload) => {
                                    // The panic may have unwound mid-update
                                    // and left the arena inconsistent.
                                    scratch = engine.new_scratch();
                                    Err(FaultCause::Panic(panic_message(payload)))
                                }
                            }
                        };
                        // Cooperative deadline: an over-deadline result is
                        // discarded (the retry recomputes it identically).
                        match (outcome, deadline) {
                            (Ok(run), Some(d)) if started.elapsed() > d => {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                                let _ = run;
                                Err(FaultCause::Timeout { deadline: d })
                            }
                            (o, _) => o,
                        }
                    };

                    match outcome {
                        Ok(run) => {
                            let b = alignment_cycles(
                                &run.stats,
                                device.kernel_cycle_info(),
                                device.cycle_params(),
                            );
                            // Full-NB arbiter occupancy plus the modeled
                            // host↔device transfer, spread across the
                            // fleet, exactly as the batch engine folds it:
                            // the modeled figure is independent of the host
                            // slot count.
                            local.cycle_sum += fleet_cycles(
                                &b,
                                kernel_config.nb,
                                d,
                                &transfer,
                                transfer_bytes(&run.stats, device.kernel_cycle_info()),
                            );
                            local.escalations += run.stats.escalations;
                            local.executed += 1;
                            let mut e = emit.lock().expect("emit mutex");
                            let before = e.writer.next_emit();
                            e.writer
                                .push(job.idx, Ok(run.output))
                                .expect("admission gate keeps outputs inside the window");
                            if e.writer.next_emit() != before {
                                // Emission progress frees admission slots.
                                space_cv.notify_all();
                            }
                            drop(e);
                            if instrumented {
                                // Terminal: release the busy count so idle
                                // peers can exit once everything settles.
                                sched.lock().expect("sched mutex").busy -= 1;
                                work_cv.notify_all();
                            }
                        }
                        Err(cause) if job.attempts < res.max_retries => {
                            retries.fetch_add(1, Ordering::Relaxed);
                            let _ = cause;
                            abort_aware_sleep(res.backoff_for(job.attempts + 1), abort);
                            // Re-deal to the next queue on a *live* device
                            // (sorted by cost like the dealer's inserts): a
                            // different slot picks it up when one exists,
                            // and idle workers stay parked on the busy
                            // count until every job lands somewhere.
                            let mut guard = sched.lock().expect("sched mutex");
                            let target = (1..d * nk)
                                .map(|v| (qown + v) % (d * nk))
                                .find(|&qi| !guard.lost[qi / nk])
                                .unwrap_or(qown);
                            let queue = &mut guard.queues[target];
                            let at = queue.partition_point(|j| j.cost >= job.cost);
                            queue.insert(
                                at,
                                Job {
                                    attempts: job.attempts + 1,
                                    ..job
                                },
                            );
                            // The job left this worker's hand for a queue.
                            guard.busy -= 1;
                            drop(guard);
                            work_cv.notify_all();
                        }
                        Err(cause) => {
                            let fault = PairFault {
                                idx: job.idx,
                                cause,
                                attempts: job.attempts + 1,
                            };
                            if quarantine {
                                faults.lock().expect("faults mutex").push(fault.clone());
                                // The hole is emitted through the writer so
                                // order restoration (and the admission
                                // window) survive it.
                                let mut e = emit.lock().expect("emit mutex");
                                let before = e.writer.next_emit();
                                e.writer
                                    .push(fault.idx, Err(fault))
                                    .expect("admission gate keeps outputs inside the window");
                                if e.writer.next_emit() != before {
                                    space_cv.notify_all();
                                }
                                drop(e);
                                sched.lock().expect("sched mutex").busy -= 1;
                                work_cv.notify_all();
                            } else {
                                let mut guard = pair_error.lock().expect("error mutex");
                                if guard.is_none() {
                                    *guard = Some(fault);
                                }
                                drop(guard);
                                abort.store(true, Ordering::Relaxed);
                                // Each notify bridges through its condvar's
                                // mutex: a peer holds that mutex between
                                // checking `abort` and parking, so acquiring
                                // it first guarantees the notify lands after
                                // the peer is actually waiting (no lost
                                // wakeup).
                                drop(sched.lock().expect("sched mutex"));
                                work_cv.notify_all();
                                drop(emit.lock().expect("emit mutex"));
                                space_cv.notify_all();
                                break;
                            }
                        }
                    }
                }
                *stats[worker].lock().expect("stats mutex") = local;
            });
        }

        // Stage 2a: dealer (this thread) — receives parsed pairs, waits for
        // an admission slot, cost-ranks, and deals round-robin.
        'deal: for (next_idx, item) in rx.iter().enumerate() {
            let (q, r) = match item {
                Ok(pair) => pair,
                Err(e) if quarantine => {
                    // Lenient-stream degradation: the record becomes a
                    // quarantined slot. It still passes the admission gate
                    // (it occupies a writer slot) and is emitted through
                    // the writer immediately — there is nothing to compute.
                    let fault = PairFault {
                        idx: next_idx,
                        cause: FaultCause::Source(e.to_string()),
                        attempts: 0,
                    };
                    faults.lock().expect("faults mutex").push(fault.clone());
                    let mut em = emit.lock().expect("emit mutex");
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break 'deal;
                        }
                        if next_idx < em.writer.next_emit() + config.window {
                            em.admitted += 1;
                            let resident = em.admitted - em.writer.next_emit();
                            em.resident_high_water = em.resident_high_water.max(resident);
                            let before = em.writer.next_emit();
                            em.writer
                                .push(next_idx, Err(fault))
                                .expect("admission gate keeps outputs inside the window");
                            if em.writer.next_emit() != before {
                                space_cv.notify_all();
                            }
                            break;
                        }
                        em = space_cv.wait(em).expect("emit mutex");
                    }
                    continue 'deal;
                }
                Err(e) => {
                    *source_error.lock().expect("error mutex") = Some(e);
                    abort.store(true, Ordering::Relaxed);
                    break 'deal;
                }
            };
            {
                let mut e = emit.lock().expect("emit mutex");
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break 'deal;
                    }
                    if next_idx < e.writer.next_emit() + config.window {
                        e.admitted += 1;
                        let resident = e.admitted - e.writer.next_emit();
                        e.resident_high_water = e.resident_high_water.max(resident);
                        break;
                    }
                    e = space_cv.wait(e).expect("emit mutex");
                }
            }
            let cost = cost_estimate(q.len(), r.len(), kernel_config.banding);
            let job = Job {
                idx: next_idx,
                q,
                r,
                cost,
                attempts: 0,
            };
            {
                let mut guard = sched.lock().expect("sched mutex");
                // Deal round-robin across the fleet's live devices; a lost
                // device's deques receive nothing further.
                let target = (0..d * nk)
                    .map(|v| (next_idx + v) % (d * nk))
                    .find(|&qi| !guard.lost[qi / nk])
                    .unwrap_or(next_idx % (d * nk));
                let queue = &mut guard.queues[target];
                // Keep each deque sorted by descending cost: the owner pops
                // expensive work from the front, thieves take the cheapest
                // from the back — the batch engine's discipline, applied
                // incrementally.
                let at = queue.partition_point(|j| j.cost >= job.cost);
                queue.insert(at, job);
            }
            work_cv.notify_one();
        }
        // Hang up on the producer (unblocks a full-channel send on abort)
        // and flip the deques out of their "producer live" state.
        drop(rx);
        sched.lock().expect("sched mutex").producer_live = false;
        work_cv.notify_all();
    })
    .map_err(|payload| StreamError::WorkerPanic(panic_message(payload)))?;

    if let Some(e) = source_error.into_inner().expect("error mutex") {
        return Err(StreamError::Source(e));
    }
    if let Some(waited) = stalled.into_inner().expect("stalled mutex") {
        return Err(StreamError::Stalled { waited });
    }
    if let Some(fault) = pair_error.into_inner().expect("error mutex") {
        return Err(match fault {
            // Back-compat: a kernel failure under Abort surfaces exactly as
            // it did before the resilience layer existed.
            PairFault {
                cause: FaultCause::Kernel(e),
                ..
            } => StreamError::Systolic(e),
            other => StreamError::Fault(other),
        });
    }

    let emit = emit.into_inner().expect("emit mutex");
    debug_assert!(emit.writer.is_drained(), "all admitted outputs emitted");
    let mut faults = faults.into_inner().expect("faults mutex");
    faults.sort_by_key(|f| f.idx);
    let mut per_channel = vec![0usize; nk];
    let mut per_slot = vec![vec![0usize; slots]; nk];
    let mut per_device = vec![0usize; d];
    let mut steals = 0usize;
    let mut cycle_sum = 0u64;
    let mut escalations = 0u64;
    for (worker, stat) in stats.into_iter().enumerate() {
        let s = stat.into_inner().expect("stats mutex");
        let qown = worker / slots;
        per_channel[qown % nk] += s.executed;
        per_slot[qown % nk][worker % slots] += s.executed;
        per_device[qown / nk] += s.executed;
        steals += s.stolen;
        cycle_sum += s.cycle_sum;
        escalations += s.escalations;
    }
    let n = emit.writer.next_emit();
    let completed = n - faults.len();
    let throughput = if completed == 0 {
        0.0
    } else {
        let mean_cycles = cycle_sum as f64 / completed as f64;
        throughput_aps(
            mean_cycles.round().max(1.0) as u64,
            device.freq_mhz(),
            kernel_config,
        )
    };
    Ok(StreamReport {
        pairs: n,
        per_channel,
        per_slot,
        nb_slots: slots,
        devices: d,
        per_device,
        device_losses: device_losses.into_inner(),
        steals,
        throughput_aps: throughput,
        reorder_high_water: emit.writer.high_water(),
        resident_high_water: emit.resident_high_water,
        faults,
        retries: retries.into_inner(),
        timeouts: timeouts.into_inner(),
        escalations,
    })
}

/// Convenience wrapper with the exact [`crate::ScheduleReport`] contract of
/// [`crate::run_batched`]: collects the streamed outputs into an in-order
/// `Vec` (so memory is O(workload) again — use [`run_streamed`] with a real
/// sink for bounded-memory operation) and returns the stream report
/// alongside for the bounded-memory evidence.
///
/// # Errors
///
/// Same as [`run_streamed`].
pub fn run_streamed_collect<K, I, E>(
    device: &Device,
    params: &K::Params,
    source: I,
    config: StreamConfig,
) -> Result<(crate::ScheduleReport<K::Score>, StreamReport), StreamError<E>>
where
    K: LaneKernel,
    K::Score: Send,
    K::Params: Sync,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send + fmt::Display,
{
    run_streamed_fleet_collect::<K, I, E>(device, params, source, config, FleetConfig::single())
}

/// [`run_streamed_collect`] sharded across a simulated fleet: the collected
/// outputs (and their order) are bit-identical to the single-device run for
/// every device count — only the modeled throughput changes.
///
/// # Errors
///
/// Same as [`run_streamed`].
pub fn run_streamed_fleet_collect<K, I, E>(
    device: &Device,
    params: &K::Params,
    source: I,
    config: StreamConfig,
    fleet: FleetConfig,
) -> Result<(crate::ScheduleReport<K::Score>, StreamReport), StreamError<E>>
where
    K: LaneKernel,
    K::Score: Send,
    K::Params: Sync,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send + fmt::Display,
{
    let outputs: Mutex<Vec<DpOutput<K::Score>>> = Mutex::new(Vec::new());
    let report =
        run_streamed_fleet::<K, I, E, _>(device, params, source, config, fleet, |idx, out| {
            let mut o = outputs.lock().expect("outputs mutex");
            debug_assert_eq!(o.len(), idx, "sink indices are contiguous from 0");
            o.push(out);
        })?;
    Ok((
        crate::ScheduleReport {
            outputs: outputs.into_inner().expect("outputs mutex"),
            per_channel: report.per_channel.clone(),
            per_slot: report.per_slot.clone(),
            nb_slots: report.nb_slots,
            devices: report.devices,
            per_device: report.per_device.clone(),
            steals: report.steals,
            throughput_aps: report.throughput_aps,
            escalations: report.escalations,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::KernelConfig;
    use dphls_kernels::{GlobalLinear, LinearParams};
    use dphls_systolic::{CycleModelParams, KernelCycleInfo};
    use std::convert::Infallible;

    fn device(nk: usize) -> Device {
        Device::new(
            KernelConfig::new(8, 2, nk).with_max_lengths(96, 96),
            CycleModelParams::dphls(),
            KernelCycleInfo {
                sym_bits: 2,
                has_walk: true,
                ii: 1,
            },
            250.0,
        )
    }

    fn workload(n: usize) -> Vec<(Vec<dphls_seq::Base>, Vec<dphls_seq::Base>)> {
        let mut sim = dphls_seq::gen::ReadSimulator::new(31);
        sim.read_pairs(n, 80, 0.25)
            .into_iter()
            .map(|(r, mut q)| {
                q.truncate(80);
                (q.into_vec(), r.into_vec())
            })
            .collect()
    }

    #[test]
    fn ordered_writer_emits_in_order() {
        let got = std::cell::RefCell::new(Vec::new());
        let mut w = OrderedWriter::new(4, |idx, v: u32| got.borrow_mut().push((idx, v)));
        w.push(1, 10).unwrap();
        w.push(3, 30).unwrap();
        assert_eq!(*got.borrow(), vec![]);
        w.push(0, 0).unwrap(); // releases 0 and 1
        assert_eq!(*got.borrow(), vec![(0, 0), (1, 10)]);
        w.push(2, 20).unwrap(); // releases 2 and 3
        assert_eq!(*got.borrow(), vec![(0, 0), (1, 10), (2, 20), (3, 30)]);
        assert_eq!(w.high_water(), 2);
        assert!(w.is_drained());
    }

    #[test]
    fn ordered_writer_rejects_out_of_window_and_duplicates() {
        let mut w = OrderedWriter::new(2, |_, _: u32| {});
        assert!(w.push(2, 0).is_err()); // beyond [0, 2)
        w.push(0, 0).unwrap();
        assert!(w.push(0, 0).is_err()); // already emitted
        let err = w.push(3, 0).unwrap_err();
        assert_eq!(err.next_emit, 1);
        assert_eq!(err.window, 2);
    }

    #[test]
    fn empty_source_reports_zeroes() {
        let params = LinearParams::<i16>::dna();
        let (rep, stream) = run_streamed_collect::<GlobalLinear, _, Infallible>(
            &device(2),
            &params,
            std::iter::empty(),
            StreamConfig::default(),
        )
        .unwrap();
        assert!(rep.outputs.is_empty());
        assert_eq!(stream.pairs, 0);
        assert_eq!(stream.throughput_aps, 0.0);
        assert_eq!(stream.reorder_high_water, 0);
    }

    #[test]
    fn source_error_propagates_and_stops_pipeline() {
        let wl = workload(6);
        let params = LinearParams::<i16>::dna();
        let source = wl
            .iter()
            .cloned()
            .map(Ok)
            .chain(std::iter::once(Err("broken record")));
        let err = run_streamed_collect::<GlobalLinear, _, _>(
            &device(2),
            &params,
            source,
            StreamConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, StreamError::Source("broken record"));
    }

    #[test]
    fn systolic_error_propagates() {
        let params = LinearParams::<i16>::dna();
        let too_long = vec![(vec![dphls_seq::Base::A; 200], vec![dphls_seq::Base::C; 50])];
        let err = run_streamed_collect::<GlobalLinear, _, Infallible>(
            &device(2),
            &params,
            too_long.into_iter().map(Ok),
            StreamConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::Systolic(_)));
    }

    #[test]
    fn fleet_stream_is_bit_identical_and_speeds_the_model() {
        use dphls_systolic::TransferModel;
        let wl = workload(23);
        let params = LinearParams::<i16>::dna();
        let dev = device(2);
        let (single, srep) = run_streamed_collect::<GlobalLinear, _, Infallible>(
            &dev,
            &params,
            wl.iter().cloned().map(Ok),
            StreamConfig::default(),
        )
        .unwrap();
        assert_eq!(srep.devices, 1);
        assert_eq!(srep.per_device, vec![23]);
        assert_eq!(srep.device_losses, 0);
        let (fleet, frep) = run_streamed_fleet_collect::<GlobalLinear, _, Infallible>(
            &dev,
            &params,
            wl.iter().cloned().map(Ok),
            StreamConfig::default(),
            FleetConfig::new(4).with_transfer(TransferModel::zero()),
        )
        .unwrap();
        assert_eq!(frep.devices, 4);
        assert_eq!(frep.per_device.iter().sum::<usize>(), wl.len());
        assert_eq!(fleet.outputs, single.outputs);
        assert!(
            frep.throughput_aps > srep.throughput_aps * 3.0,
            "fleet {} vs single {}",
            frep.throughput_aps,
            srep.throughput_aps
        );
    }

    #[test]
    fn tight_window_and_buffer_still_complete() {
        let wl = workload(23);
        let params = LinearParams::<i16>::dna();
        let dev = device(3);
        let batched = crate::run_batched::<GlobalLinear>(&dev, &params, &wl).unwrap();
        for (buffer, window) in [(1, 1), (1, 2), (2, 3), (64, 4)] {
            let (rep, stream) = run_streamed_collect::<GlobalLinear, _, Infallible>(
                &dev,
                &params,
                wl.iter().cloned().map(Ok),
                StreamConfig {
                    buffer,
                    window,
                    nb_slots: 0,
                },
            )
            .unwrap();
            assert_eq!(
                rep.outputs, batched.outputs,
                "buffer {buffer} window {window}"
            );
            assert!(stream.resident_high_water <= window);
            assert!(stream.reorder_high_water < window.max(1));
        }
    }
}
