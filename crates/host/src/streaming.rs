//! Streaming batch pipeline: feeds the work-stealing channel workers from an
//! **incremental** source instead of a pre-built `Vec`, so workloads larger
//! than host RAM can run and the `NK` channels start aligning while input is
//! still being parsed (ROADMAP "Async I/O batching"; the bounded-FIFO
//! producer/consumer decoupling of the task-parallel HLS literature).
//!
//! Three stages, connected by bounded buffers:
//!
//! 1. **Producer** — a spawned thread pulls pairs from the caller's iterator
//!    (e.g. a [`dphls_seq::fasta::FastaStream`] adapter) and pushes them
//!    through a bounded `crossbeam` channel of depth [`StreamConfig::buffer`].
//!    A full channel blocks the producer: parse never runs ahead of compute
//!    by more than `buffer` pairs.
//! 2. **Dealer + workers** — the calling thread receives pairs, cost-ranks
//!    each one (same estimate as [`run_batched`]), and deals it round-robin
//!    into the per-channel deques, **admission-gated** so at most
//!    [`StreamConfig::window`] pairs are in flight between admission and
//!    ordered emission. Each channel is drained by up to
//!    [`StreamConfig::nb_slots`] **block-slot** threads (the device's `NB`
//!    blocks per channel, mirrored host-side exactly as in
//!    [`crate::BatchConfig`]), every slot with its own scratch arena. The
//!    deques carry a "producer still live" state: a worker finding every
//!    deque empty blocks on a condvar instead of exiting, and steals the
//!    cheapest job from a neighbor's tail exactly as the batch engine does.
//! 3. **[`OrderedWriter`]** — workers complete alignments out of input order;
//!    the writer restores input order with a reorder buffer whose occupancy
//!    is bounded by the admission window, invoking the caller's sink as soon
//!    as each next-in-order output is ready.
//!
//! Peak resident pairs are therefore `buffer + window` (+1 in the producer's
//! hand), **not** O(workload); both bounds are tracked by high-water-mark
//! counters in the [`StreamReport`] and asserted by the differential tests.
//!
//! [`run_batched`]: crate::run_batched

use crate::scheduler::{cost_estimate, BatchConfig};
use dphls_core::{DpOutput, LaneKernel};
use dphls_systolic::{
    alignment_cycles, arbitrated_cycles, throughput_aps, Device, SystolicError, SystolicScratch,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Buffer-depth knobs of the streaming pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Depth of the bounded producer channel: how many parsed pairs may sit
    /// between the input source and the dealer. Depth 1 runs the producer in
    /// lockstep with the dealer.
    pub buffer: usize,
    /// Admission window: how many pairs may be in flight between dealing and
    /// ordered emission. This simultaneously bounds the per-channel deques,
    /// the in-execution set, and the [`OrderedWriter`] reorder buffer.
    pub window: usize,
    /// In-flight block slots per channel, with exactly the semantics of
    /// [`BatchConfig::nb_slots`]: `0` (the default) auto-sizes to
    /// `min(NB, ceil(host threads / NK))`, explicit values clamp to
    /// `1..=NB`. Outputs, ordering, and modeled throughput are
    /// bit-identical for every slot count.
    pub nb_slots: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        // Large enough to keep every channel busy under skewed costs, small
        // enough that resident memory stays trivially bounded.
        Self {
            buffer: 64,
            window: 256,
            nb_slots: 0,
        }
    }
}

/// Result of a streamed run: the [`crate::ScheduleReport`] contract
/// (per-channel stats, steals, single-pass modeled throughput) plus the
/// bounded-memory evidence.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Pairs aligned (and emitted, in input order, through the sink).
    pub pairs: usize,
    /// Alignments each channel actually executed (all of its block slots,
    /// own + stolen).
    pub per_channel: Vec<usize>,
    /// Alignments per block slot, `per_slot[channel][slot]`; row sums equal
    /// [`per_channel`](Self::per_channel).
    pub per_slot: Vec<Vec<usize>>,
    /// Block slots each channel ran with (the resolved
    /// [`StreamConfig::nb_slots`]).
    pub nb_slots: usize,
    /// Alignments stolen across channels.
    pub steals: usize,
    /// Modeled device throughput in alignments/second, derived from the
    /// cycle statistics of the functional runs (no second pass).
    pub throughput_aps: f64,
    /// Peak pairs simultaneously held in the [`OrderedWriter`] reorder
    /// buffer; always `< window`.
    pub reorder_high_water: usize,
    /// Peak pairs simultaneously in flight between admission and ordered
    /// emission (deques + executing + reorder buffer); always `<= window`.
    /// Total resident pairs are bounded by `buffer + resident_high_water`
    /// plus the one pair in the producer's hand.
    pub resident_high_water: usize,
}

/// Error from a streamed run.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError<E> {
    /// The input source yielded an error; produced outputs that preceded it
    /// may already have been emitted through the sink.
    Source(E),
    /// An alignment failed on the device model.
    Systolic(SystolicError),
}

impl<E: fmt::Display> fmt::Display for StreamError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Source(e) => write!(f, "streaming source failed: {e}"),
            StreamError::Systolic(e) => write!(f, "alignment failed: {e}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for StreamError<E> {}

/// A push landed outside the writer's reorder window (or was a duplicate) —
/// the producer side failed to respect the admission gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderOverflow {
    /// Index of the offending push.
    pub idx: usize,
    /// Next index the writer will emit.
    pub next_emit: usize,
    /// Configured window.
    pub window: usize,
}

impl fmt::Display for ReorderOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output index {} outside reorder window [{}, {})",
            self.idx,
            self.next_emit,
            self.next_emit + self.window
        )
    }
}

impl std::error::Error for ReorderOverflow {}

/// Restores input order over out-of-order completions with a bounded
/// reorder buffer: outputs pushed as `(input index, value)` are handed to
/// the sink in strictly increasing index order, holding at most
/// `window - 1` out-of-order values (an in-order push is forwarded without
/// buffering). The peak held count is exposed as [`high_water`] so tests
/// can assert the bound.
///
/// [`high_water`]: OrderedWriter::high_water
pub struct OrderedWriter<S, F: FnMut(usize, S)> {
    sink: F,
    window: usize,
    next_emit: usize,
    pending: BTreeMap<usize, S>,
    high_water: usize,
}

impl<S, F: FnMut(usize, S)> OrderedWriter<S, F> {
    /// Creates a writer that accepts indices within `window` of the next
    /// unemitted one.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize, sink: F) -> Self {
        assert!(window > 0, "reorder window must be >= 1");
        Self {
            sink,
            window,
            next_emit: 0,
            pending: BTreeMap::new(),
            high_water: 0,
        }
    }

    /// Accepts the output for input index `idx`, emitting it (and any
    /// now-contiguous buffered successors) if it is next in order, else
    /// buffering it.
    ///
    /// # Errors
    ///
    /// Returns [`ReorderOverflow`] if `idx` was already emitted or lies at
    /// or beyond `next_emit + window`; the value is dropped.
    pub fn push(&mut self, idx: usize, value: S) -> Result<(), ReorderOverflow> {
        if idx < self.next_emit || idx >= self.next_emit + self.window {
            return Err(ReorderOverflow {
                idx,
                next_emit: self.next_emit,
                window: self.window,
            });
        }
        if idx == self.next_emit {
            (self.sink)(idx, value);
            self.next_emit += 1;
            while let Some(v) = self.pending.remove(&self.next_emit) {
                (self.sink)(self.next_emit, v);
                self.next_emit += 1;
            }
        } else {
            self.pending.insert(idx, value);
            self.high_water = self.high_water.max(self.pending.len());
        }
        Ok(())
    }

    /// Next index the writer will emit (= count of emitted outputs).
    pub fn next_emit(&self) -> usize {
        self.next_emit
    }

    /// Outputs currently buffered out of order.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Peak number of outputs ever buffered at once (always `< window`).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Whether every pushed output has been emitted.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

/// A job dealt into a channel deque: the pair, its input index, and its
/// cost-estimate rank.
struct Job<Sym> {
    idx: usize,
    q: Vec<Sym>,
    r: Vec<Sym>,
    cost: u64,
}

/// Deque state shared by the dealer and the workers: the per-channel job
/// queues plus the "producer still live" flag that turns steal-on-empty
/// from an exit condition into a blocking wait.
struct Sched<Sym> {
    queues: Vec<VecDeque<Job<Sym>>>,
    producer_live: bool,
}

/// Writer-side shared state: the ordered sink plus admission accounting.
struct Emit<S, F: FnMut(usize, S)> {
    writer: OrderedWriter<S, F>,
    /// Pairs admitted by the dealer (dealt into a deque).
    admitted: usize,
    /// Peak `admitted - emitted` (exact: both mutate under this lock).
    resident_high_water: usize,
}

/// Per-worker execution tally, merged into the report after the join.
#[derive(Default)]
struct WorkerStats {
    executed: usize,
    cycle_sum: u64,
    stolen: usize,
}

/// Aligns pairs pulled incrementally from `source` across the device's `NK`
/// channels, emitting outputs **in input order** through `sink` as they
/// complete. Outputs are bit-identical to [`crate::run_batched`] on the same
/// pairs; peak resident pairs are bounded by `config.buffer + config.window`
/// (see the module docs and [`StreamReport`]'s high-water marks).
///
/// The sink receives `(input index, output)` with indices strictly
/// increasing from 0; it is invoked from worker threads under a lock, so it
/// should hand off rather than do heavy work.
///
/// # Errors
///
/// [`StreamError::Source`] if the source iterator yields an error (outputs
/// emitted before that point have already reached the sink), or
/// [`StreamError::Systolic`] for the first device-model failure.
///
/// # Panics
///
/// Panics if `config.buffer` or `config.window` is zero.
pub fn run_streamed<K, I, E, F>(
    device: &Device,
    params: &K::Params,
    source: I,
    config: StreamConfig,
    sink: F,
) -> Result<StreamReport, StreamError<E>>
where
    K: LaneKernel,
    K::Score: Send,
    K::Params: Sync,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send,
    F: FnMut(usize, DpOutput<K::Score>) + Send,
{
    assert!(config.buffer > 0, "stream buffer depth must be >= 1");
    assert!(config.window > 0, "stream window must be >= 1");
    let kernel_config = device.config();
    let nk = kernel_config.nk.max(1);
    let slots = BatchConfig::slots(config.nb_slots).resolve_slots(kernel_config);

    let sched: Mutex<Sched<K::Sym>> = Mutex::new(Sched {
        queues: (0..nk).map(|_| VecDeque::new()).collect(),
        producer_live: true,
    });
    // Wakes workers blocked on empty deques.
    let work_cv = Condvar::new();
    let emit: Mutex<Emit<DpOutput<K::Score>, F>> = Mutex::new(Emit {
        writer: OrderedWriter::new(config.window, sink),
        admitted: 0,
        resident_high_water: 0,
    });
    // Wakes the dealer blocked on a full admission window.
    let space_cv = Condvar::new();
    let abort = AtomicBool::new(false);
    let source_error: Mutex<Option<E>> = Mutex::new(None);
    let systolic_error: Mutex<Option<SystolicError>> = Mutex::new(None);
    // One tally per block slot, indexed `ch * slots + slot`.
    let stats: Vec<Mutex<WorkerStats>> = (0..nk * slots)
        .map(|_| Mutex::new(WorkerStats::default()))
        .collect();

    let (tx, rx) =
        crossbeam::channel::bounded::<Result<(Vec<K::Sym>, Vec<K::Sym>), E>>(config.buffer);

    crossbeam::scope(|scope| {
        // Stage 1: producer — drains the source into the bounded channel.
        // A send error means the dealer hung up (abort path); a source error
        // is forwarded once and ends production.
        scope.spawn(move |_| {
            for item in source {
                let stop = item.is_err();
                if tx.send(item).is_err() || stop {
                    break;
                }
            }
        });

        // Stage 2b: block-slot workers (`nb_slots` threads per NK channel;
        // the slots of one channel share its deque, so dispatch within a
        // channel is not a steal).
        for worker in 0..nk * slots {
            let ch = worker / slots;
            let (sched, work_cv, emit, space_cv) = (&sched, &work_cv, &emit, &space_cv);
            let (abort, systolic_error, stats) = (&abort, &systolic_error, &stats);
            scope.spawn(move |_| {
                // Every block slot owns its scratch arena.
                let mut scratch = SystolicScratch::new();
                let mut local = WorkerStats::default();
                loop {
                    // Own deque's expensive end first; then steal the
                    // cheapest job from a neighbor; then block if the
                    // producer may still deal more; exit otherwise.
                    let job = {
                        let mut guard = sched.lock().expect("sched mutex");
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break None;
                            }
                            if let Some(job) = guard.queues[ch].pop_front() {
                                break Some(job);
                            }
                            let stolen =
                                (1..nk).find_map(|v| guard.queues[(ch + v) % nk].pop_back());
                            if let Some(job) = stolen {
                                local.stolen += 1;
                                break Some(job);
                            }
                            if !guard.producer_live {
                                break None;
                            }
                            guard = work_cv.wait(guard).expect("sched mutex");
                        }
                    };
                    let Some(job) = job else { break };
                    match dphls_systolic::run_systolic_with_scratch::<K>(
                        params,
                        &job.q,
                        &job.r,
                        kernel_config,
                        &mut scratch,
                    ) {
                        Ok(run) => {
                            let b = alignment_cycles(
                                &run.stats,
                                device.kernel_cycle_info(),
                                device.cycle_params(),
                            );
                            // Full-NB arbiter occupancy, exactly as the
                            // batch engine folds it: the modeled figure is
                            // independent of the host slot count.
                            local.cycle_sum += arbitrated_cycles(&b, kernel_config.nb);
                            local.executed += 1;
                            let mut e = emit.lock().expect("emit mutex");
                            let before = e.writer.next_emit();
                            e.writer
                                .push(job.idx, run.output)
                                .expect("admission gate keeps outputs inside the window");
                            if e.writer.next_emit() != before {
                                // Emission progress frees admission slots.
                                space_cv.notify_all();
                            }
                        }
                        Err(err) => {
                            let mut guard = systolic_error.lock().expect("error mutex");
                            if guard.is_none() {
                                *guard = Some(err);
                            }
                            drop(guard);
                            abort.store(true, Ordering::Relaxed);
                            // Each notify bridges through its condvar's
                            // mutex: a peer holds that mutex between
                            // checking `abort` and parking, so acquiring it
                            // first guarantees the notify lands after the
                            // peer is actually waiting (no lost wakeup).
                            drop(sched.lock().expect("sched mutex"));
                            work_cv.notify_all();
                            drop(emit.lock().expect("emit mutex"));
                            space_cv.notify_all();
                            break;
                        }
                    }
                }
                *stats[worker].lock().expect("stats mutex") = local;
            });
        }

        // Stage 2a: dealer (this thread) — receives parsed pairs, waits for
        // an admission slot, cost-ranks, and deals round-robin.
        'deal: for (next_idx, item) in rx.iter().enumerate() {
            let (q, r) = match item {
                Ok(pair) => pair,
                Err(e) => {
                    *source_error.lock().expect("error mutex") = Some(e);
                    abort.store(true, Ordering::Relaxed);
                    break 'deal;
                }
            };
            {
                let mut e = emit.lock().expect("emit mutex");
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break 'deal;
                    }
                    if next_idx < e.writer.next_emit() + config.window {
                        e.admitted += 1;
                        let resident = e.admitted - e.writer.next_emit();
                        e.resident_high_water = e.resident_high_water.max(resident);
                        break;
                    }
                    e = space_cv.wait(e).expect("emit mutex");
                }
            }
            let cost = cost_estimate(q.len(), r.len(), kernel_config.banding);
            let job = Job {
                idx: next_idx,
                q,
                r,
                cost,
            };
            {
                let mut guard = sched.lock().expect("sched mutex");
                let queue = &mut guard.queues[next_idx % nk];
                // Keep each deque sorted by descending cost: the owner pops
                // expensive work from the front, thieves take the cheapest
                // from the back — the batch engine's discipline, applied
                // incrementally.
                let at = queue.partition_point(|j| j.cost >= job.cost);
                queue.insert(at, job);
            }
            work_cv.notify_one();
        }
        // Hang up on the producer (unblocks a full-channel send on abort)
        // and flip the deques out of their "producer live" state.
        drop(rx);
        sched.lock().expect("sched mutex").producer_live = false;
        work_cv.notify_all();
    })
    .expect("streaming pipeline thread panicked");

    if let Some(e) = source_error.into_inner().expect("error mutex") {
        return Err(StreamError::Source(e));
    }
    if let Some(e) = systolic_error.into_inner().expect("error mutex") {
        return Err(StreamError::Systolic(e));
    }

    let emit = emit.into_inner().expect("emit mutex");
    debug_assert!(emit.writer.is_drained(), "all admitted outputs emitted");
    let mut per_channel = vec![0usize; nk];
    let mut per_slot = vec![vec![0usize; slots]; nk];
    let mut steals = 0usize;
    let mut cycle_sum = 0u64;
    for (worker, stat) in stats.into_iter().enumerate() {
        let s = stat.into_inner().expect("stats mutex");
        per_channel[worker / slots] += s.executed;
        per_slot[worker / slots][worker % slots] = s.executed;
        steals += s.stolen;
        cycle_sum += s.cycle_sum;
    }
    let n = emit.writer.next_emit();
    let throughput = if n == 0 {
        0.0
    } else {
        let mean_cycles = cycle_sum as f64 / n as f64;
        throughput_aps(
            mean_cycles.round().max(1.0) as u64,
            device.freq_mhz(),
            kernel_config,
        )
    };
    Ok(StreamReport {
        pairs: n,
        per_channel,
        per_slot,
        nb_slots: slots,
        steals,
        throughput_aps: throughput,
        reorder_high_water: emit.writer.high_water(),
        resident_high_water: emit.resident_high_water,
    })
}

/// Convenience wrapper with the exact [`crate::ScheduleReport`] contract of
/// [`crate::run_batched`]: collects the streamed outputs into an in-order
/// `Vec` (so memory is O(workload) again — use [`run_streamed`] with a real
/// sink for bounded-memory operation) and returns the stream report
/// alongside for the bounded-memory evidence.
///
/// # Errors
///
/// Same as [`run_streamed`].
pub fn run_streamed_collect<K, I, E>(
    device: &Device,
    params: &K::Params,
    source: I,
    config: StreamConfig,
) -> Result<(crate::ScheduleReport<K::Score>, StreamReport), StreamError<E>>
where
    K: LaneKernel,
    K::Score: Send,
    K::Params: Sync,
    K::Sym: Send,
    I: Iterator<Item = Result<dphls_core::SeqPair<K>, E>> + Send,
    E: Send,
{
    let outputs: Mutex<Vec<DpOutput<K::Score>>> = Mutex::new(Vec::new());
    let report = run_streamed::<K, I, E, _>(device, params, source, config, |idx, out| {
        let mut o = outputs.lock().expect("outputs mutex");
        debug_assert_eq!(o.len(), idx, "sink indices are contiguous from 0");
        o.push(out);
    })?;
    Ok((
        crate::ScheduleReport {
            outputs: outputs.into_inner().expect("outputs mutex"),
            per_channel: report.per_channel.clone(),
            per_slot: report.per_slot.clone(),
            nb_slots: report.nb_slots,
            steals: report.steals,
            throughput_aps: report.throughput_aps,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::KernelConfig;
    use dphls_kernels::{GlobalLinear, LinearParams};
    use dphls_systolic::{CycleModelParams, KernelCycleInfo};
    use std::convert::Infallible;

    fn device(nk: usize) -> Device {
        Device::new(
            KernelConfig::new(8, 2, nk).with_max_lengths(96, 96),
            CycleModelParams::dphls(),
            KernelCycleInfo {
                sym_bits: 2,
                has_walk: true,
                ii: 1,
            },
            250.0,
        )
    }

    fn workload(n: usize) -> Vec<(Vec<dphls_seq::Base>, Vec<dphls_seq::Base>)> {
        let mut sim = dphls_seq::gen::ReadSimulator::new(31);
        sim.read_pairs(n, 80, 0.25)
            .into_iter()
            .map(|(r, mut q)| {
                q.truncate(80);
                (q.into_vec(), r.into_vec())
            })
            .collect()
    }

    #[test]
    fn ordered_writer_emits_in_order() {
        let got = std::cell::RefCell::new(Vec::new());
        let mut w = OrderedWriter::new(4, |idx, v: u32| got.borrow_mut().push((idx, v)));
        w.push(1, 10).unwrap();
        w.push(3, 30).unwrap();
        assert_eq!(*got.borrow(), vec![]);
        w.push(0, 0).unwrap(); // releases 0 and 1
        assert_eq!(*got.borrow(), vec![(0, 0), (1, 10)]);
        w.push(2, 20).unwrap(); // releases 2 and 3
        assert_eq!(*got.borrow(), vec![(0, 0), (1, 10), (2, 20), (3, 30)]);
        assert_eq!(w.high_water(), 2);
        assert!(w.is_drained());
    }

    #[test]
    fn ordered_writer_rejects_out_of_window_and_duplicates() {
        let mut w = OrderedWriter::new(2, |_, _: u32| {});
        assert!(w.push(2, 0).is_err()); // beyond [0, 2)
        w.push(0, 0).unwrap();
        assert!(w.push(0, 0).is_err()); // already emitted
        let err = w.push(3, 0).unwrap_err();
        assert_eq!(err.next_emit, 1);
        assert_eq!(err.window, 2);
    }

    #[test]
    fn empty_source_reports_zeroes() {
        let params = LinearParams::<i16>::dna();
        let (rep, stream) = run_streamed_collect::<GlobalLinear, _, Infallible>(
            &device(2),
            &params,
            std::iter::empty(),
            StreamConfig::default(),
        )
        .unwrap();
        assert!(rep.outputs.is_empty());
        assert_eq!(stream.pairs, 0);
        assert_eq!(stream.throughput_aps, 0.0);
        assert_eq!(stream.reorder_high_water, 0);
    }

    #[test]
    fn source_error_propagates_and_stops_pipeline() {
        let wl = workload(6);
        let params = LinearParams::<i16>::dna();
        let source = wl
            .iter()
            .cloned()
            .map(Ok)
            .chain(std::iter::once(Err("broken record")));
        let err = run_streamed_collect::<GlobalLinear, _, _>(
            &device(2),
            &params,
            source,
            StreamConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, StreamError::Source("broken record"));
    }

    #[test]
    fn systolic_error_propagates() {
        let params = LinearParams::<i16>::dna();
        let too_long = vec![(vec![dphls_seq::Base::A; 200], vec![dphls_seq::Base::C; 50])];
        let err = run_streamed_collect::<GlobalLinear, _, Infallible>(
            &device(2),
            &params,
            too_long.into_iter().map(Ok),
            StreamConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::Systolic(_)));
    }

    #[test]
    fn tight_window_and_buffer_still_complete() {
        let wl = workload(23);
        let params = LinearParams::<i16>::dna();
        let dev = device(3);
        let batched = crate::run_batched::<GlobalLinear>(&dev, &params, &wl).unwrap();
        for (buffer, window) in [(1, 1), (1, 2), (2, 3), (64, 4)] {
            let (rep, stream) = run_streamed_collect::<GlobalLinear, _, Infallible>(
                &dev,
                &params,
                wl.iter().cloned().map(Ok),
                StreamConfig {
                    buffer,
                    window,
                    nb_slots: 0,
                },
            )
            .unwrap();
            assert_eq!(
                rep.outputs, batched.outputs,
                "buffer {buffer} window {window}"
            );
            assert!(stream.resident_high_water <= window);
            assert!(stream.reorder_high_water < window.max(1));
        }
    }
}
