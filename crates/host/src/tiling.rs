//! GACT-style tiling for long-read alignment (paper §6.2, §7.3, and
//! contribution #5: "recently proposed tiling heuristics \[11\] are compatible
//! with DP-HLS and can be used for performing both short and long sequence
//! alignments on the FPGA").
//!
//! The device kernel supports fixed maximum lengths; the host aligns
//! arbitrarily long sequences by sliding a `tile × tile` global-affine
//! alignment (kernel #2) along the pair: each tile is aligned on the
//! device, only the first `tile − overlap` of its path is **committed**, and
//! the next tile starts at the committed endpoint — Darwin's GACT heuristic.

use dphls_core::{Alignment, AlnOp, KernelConfig};
use dphls_kernels::{AffineParams, GlobalAffine};
use dphls_seq::Base;
use dphls_systolic::{run_systolic, SystolicError};
use std::fmt;

/// Tiling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingConfig {
    /// Tile edge length (the device's `MAX_QUERY_LENGTH` /
    /// `MAX_REFERENCE_LENGTH`).
    pub tile: usize,
    /// Overlap retained between consecutive tiles (GACT's O).
    pub overlap: usize,
}

impl TilingConfig {
    /// The paper's long-read setting: 256-wide tiles with a 32-column
    /// overlap.
    pub fn paper_default() -> Self {
        Self {
            tile: 256,
            overlap: 32,
        }
    }

    /// Validates `overlap < tile` and non-zero tile.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::BadConfig`] when violated.
    pub fn validate(&self) -> Result<(), TilingError> {
        if self.tile == 0 || self.overlap >= self.tile {
            return Err(TilingError::BadConfig {
                tile: self.tile,
                overlap: self.overlap,
            });
        }
        Ok(())
    }
}

/// Errors from the tiling driver.
#[derive(Debug, Clone, PartialEq)]
pub enum TilingError {
    /// Overlap must be smaller than the tile.
    BadConfig {
        /// Configured tile size.
        tile: usize,
        /// Configured overlap.
        overlap: usize,
    },
    /// A device-level failure inside a tile.
    Device(SystolicError),
    /// A tile produced an empty committed segment (pathological inputs).
    NoProgress {
        /// Query offset where the driver stalled.
        at_query: usize,
        /// Reference offset where the driver stalled.
        at_ref: usize,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::BadConfig { tile, overlap } => {
                write!(
                    f,
                    "tiling requires overlap ({overlap}) < tile ({tile}) and tile > 0"
                )
            }
            TilingError::Device(e) => write!(f, "tile alignment failed: {e}"),
            TilingError::NoProgress { at_query, at_ref } => {
                write!(
                    f,
                    "tiling made no progress at query {at_query}, reference {at_ref}"
                )
            }
        }
    }
}

impl std::error::Error for TilingError {}

impl From<SystolicError> for TilingError {
    fn from(e: SystolicError) -> Self {
        TilingError::Device(e)
    }
}

/// A stitched long alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledAlignment {
    /// The stitched global path covering both full sequences.
    pub alignment: Alignment,
    /// The affine score of the stitched path, recomputed end-to-end.
    pub score: i64,
    /// Number of device tiles executed.
    pub tiles: usize,
}

/// Scores an alignment path under the affine model (used to report the
/// stitched score and to validate tiling against full alignments).
pub fn score_path_affine(q: &[Base], r: &[Base], aln: &Alignment, p: &AffineParams<i32>) -> i64 {
    let (mut i, mut j) = aln.start();
    let mut score = 0i64;
    #[derive(PartialEq, Clone, Copy)]
    enum GapState {
        None,
        Up,
        Left,
    }
    let mut state = GapState::None;
    for op in aln.ops() {
        match op {
            AlnOp::Diag => {
                score += if q[i] == r[j] {
                    p.match_score as i64
                } else {
                    p.mismatch as i64
                };
                i += 1;
                j += 1;
                state = GapState::None;
            }
            AlnOp::Up => {
                score += if state == GapState::Up {
                    p.gap_extend as i64
                } else {
                    p.gap_open as i64
                };
                i += 1;
                state = GapState::Up;
            }
            AlnOp::Left => {
                score += if state == GapState::Left {
                    p.gap_extend as i64
                } else {
                    p.gap_open as i64
                };
                j += 1;
                state = GapState::Left;
            }
        }
    }
    score
}

/// Aligns a long pair with GACT-style tiling of the Global Affine kernel
/// (#2) on the modeled device.
///
/// # Errors
///
/// Returns [`TilingError`] on invalid configuration, device failures, or
/// lack of progress.
pub fn tiled_global_affine(
    query: &[Base],
    reference: &[Base],
    params: &AffineParams<i32>,
    tiling: TilingConfig,
    npe: usize,
) -> Result<TiledAlignment, TilingError> {
    tiling.validate()?;
    if query.is_empty() || reference.is_empty() {
        return Err(TilingError::Device(SystolicError::EmptySequence));
    }
    let device_cfg =
        KernelConfig::new(npe.min(tiling.tile), 1, 1).with_max_lengths(tiling.tile, tiling.tile);

    let mut qi = 0usize; // committed query offset
    let mut rj = 0usize; // committed reference offset
    let mut ops: Vec<AlnOp> = Vec::with_capacity(query.len() + reference.len());
    let mut tiles = 0usize;

    while qi < query.len() || rj < reference.len() {
        // Degenerate tails: one sequence exhausted → straight gap run.
        if qi >= query.len() {
            ops.extend(std::iter::repeat_n(AlnOp::Left, reference.len() - rj));
            rj = reference.len();
            break;
        }
        if rj >= reference.len() {
            ops.extend(std::iter::repeat_n(AlnOp::Up, query.len() - qi));
            qi = query.len();
            break;
        }
        let q_tile = &query[qi..(qi + tiling.tile).min(query.len())];
        let r_tile = &reference[rj..(rj + tiling.tile).min(reference.len())];
        let run = run_systolic::<GlobalAffine<i32>>(params, q_tile, r_tile, &device_cfg)?;
        tiles += 1;
        let aln = run
            .output
            .alignment
            .expect("global affine kernel always produces a path");
        let last_tile = q_tile.len() < tiling.tile && r_tile.len() < tiling.tile;
        let commit_limit = tiling.tile - tiling.overlap;
        let mut committed = 0usize;
        let (mut dq, mut dr) = (0usize, 0usize);
        for op in aln.ops() {
            if !last_tile && (dq >= commit_limit || dr >= commit_limit) {
                break;
            }
            dq += op.query_step();
            dr += op.ref_step();
            ops.push(*op);
            committed += 1;
        }
        if committed == 0 {
            return Err(TilingError::NoProgress {
                at_query: qi,
                at_ref: rj,
            });
        }
        qi += dq;
        rj += dr;
        if last_tile {
            break;
        }
    }

    let alignment = Alignment::new(ops, (0, 0), (qi, rj));
    debug_assert!(alignment.is_consistent());
    let score = score_path_affine(query, reference, &alignment, params);
    Ok(TiledAlignment {
        alignment,
        score,
        tiles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::{run_reference, Banding};
    use dphls_seq::gen::{ErrorModel, ReadSimulator};
    use dphls_seq::DnaSeq;

    fn long_pair(len: usize, err: f64) -> (DnaSeq, DnaSeq) {
        let mut sim = ReadSimulator::new(77).error_model(ErrorModel::PACBIO_CLR);
        let (reference, read) = sim.read_pair(len, err);
        (read, reference)
    }

    #[test]
    fn config_validation() {
        assert!(TilingConfig {
            tile: 0,
            overlap: 0
        }
        .validate()
        .is_err());
        assert!(TilingConfig {
            tile: 64,
            overlap: 64
        }
        .validate()
        .is_err());
        assert!(TilingConfig {
            tile: 64,
            overlap: 16
        }
        .validate()
        .is_ok());
        assert_eq!(TilingConfig::paper_default().tile, 256);
    }

    #[test]
    fn tiled_path_covers_both_sequences() {
        let (q, r) = long_pair(700, 0.15);
        let p = AffineParams::<i32>::dna();
        let out = tiled_global_affine(
            q.as_slice(),
            r.as_slice(),
            &p,
            TilingConfig {
                tile: 128,
                overlap: 32,
            },
            32,
        )
        .unwrap();
        assert_eq!(out.alignment.query_span(), q.len());
        assert_eq!(out.alignment.ref_span(), r.len());
        assert!(out.alignment.is_consistent());
        assert!(out.tiles >= 5, "tiles {}", out.tiles);
    }

    #[test]
    fn tiling_matches_full_alignment_score_on_clean_reads() {
        // Low error: the optimal path stays near the diagonal, so GACT
        // tiling recovers the exact global score.
        let (q, r) = long_pair(600, 0.05);
        let p = AffineParams::<i32>::dna();
        let tiled = tiled_global_affine(
            q.as_slice(),
            r.as_slice(),
            &p,
            TilingConfig {
                tile: 128,
                overlap: 32,
            },
            32,
        )
        .unwrap();
        let full =
            run_reference::<GlobalAffine<i32>>(&p, q.as_slice(), r.as_slice(), Banding::None);
        let full_score = full.best_score as i64;
        assert!(
            tiled.score >= full_score - 10,
            "tiled {} vs full {full_score}",
            tiled.score
        );
        assert!(tiled.score <= full_score);
    }

    #[test]
    fn tiling_handles_length_mismatch_tails() {
        let q: DnaSeq = "ACGTACGTACGT".parse().unwrap();
        let r: DnaSeq = "ACGTACGT".parse().unwrap();
        let p = AffineParams::<i32>::dna();
        let out = tiled_global_affine(
            q.as_slice(),
            r.as_slice(),
            &p,
            TilingConfig {
                tile: 16,
                overlap: 4,
            },
            8,
        )
        .unwrap();
        assert_eq!(out.alignment.query_span(), 12);
        assert_eq!(out.alignment.ref_span(), 8);
    }

    #[test]
    fn score_path_affine_known_case() {
        // 4M with one mismatch + 2-gap: 3*2 - 3 + (-5 -1) = -3... built by hand:
        // q = ACGT, r = ACAT -> 4M: A(+2) C(+2) G/A(-3) T(+2) = 3
        let q: DnaSeq = "ACGT".parse().unwrap();
        let r: DnaSeq = "ACAT".parse().unwrap();
        let aln = Alignment::new(vec![AlnOp::Diag; 4], (0, 0), (4, 4));
        let p = AffineParams::<i32>::dna();
        assert_eq!(score_path_affine(q.as_slice(), r.as_slice(), &aln, &p), 3);
        // Gap run: open then extend.
        let q2: DnaSeq = "AC".parse().unwrap();
        let r2: DnaSeq = "ACGG".parse().unwrap();
        let aln2 = Alignment::new(
            vec![AlnOp::Diag, AlnOp::Diag, AlnOp::Left, AlnOp::Left],
            (0, 0),
            (2, 4),
        );
        assert_eq!(
            score_path_affine(q2.as_slice(), r2.as_slice(), &aln2, &p),
            2 + 2 - 5 - 1
        );
    }

    #[test]
    fn more_tiles_for_longer_reads() {
        let p = AffineParams::<i32>::dna();
        let cfg = TilingConfig {
            tile: 128,
            overlap: 32,
        };
        let (q1, r1) = long_pair(400, 0.1);
        let (q2, r2) = long_pair(1200, 0.1);
        let t1 = tiled_global_affine(q1.as_slice(), r1.as_slice(), &p, cfg, 32).unwrap();
        let t2 = tiled_global_affine(q2.as_slice(), r2.as_slice(), &p, cfg, 32).unwrap();
        assert!(t2.tiles > t1.tiles);
    }
}
