//! Chaos suite: drives the host engines through deterministic
//! [`FaultPlan`]s and checks the degradation contract from
//! `docs/ARCHITECTURE.md`:
//!
//! * **Bit-identical survivors** — for any fault pattern, every pair that
//!   is *not* quarantined produces exactly the output a fault-free run
//!   produces, in input order.
//! * **Exact reconciliation** — every injection is accounted for exactly
//!   once across the report's `faults`, `retries`, and `timeouts`
//!   counters; nothing is double-counted and nothing disappears.
//! * **Bounded degradation** — a wedged consumer turns into
//!   [`StreamError::Stalled`] within the producer's send deadline instead
//!   of a deadlock.
//!
//! Every fault kind is exercised on both engines at `NK` 1 and 3, plus
//! seeded random plans over a fixed seed matrix (the same seeds CI runs at
//! release scale).

use std::convert::Infallible;
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

use dphls_core::{DpOutput, KernelConfig};
use dphls_host::{
    injected_kernel_error, injected_panic_message, run_batched, run_batched_resilient,
    run_streamed_fleet_resilient, run_streamed_resilient, BatchError, FailurePolicy, FaultCause,
    FaultKind, FaultPlan, FleetConfig, PairFault, ResilienceConfig, StreamConfig, StreamError,
};
use dphls_kernels::{GlobalLinear, LinearParams};
use dphls_seq::Base;
use dphls_systolic::{CycleModelParams, Device, KernelCycleInfo};

/// Injected panics are part of the plan; keep their payloads out of test
/// output while leaving every other panic loud.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if msg.is_some_and(|m| m.contains("injected panic")) {
                return;
            }
            prev(info);
        }));
    });
}

fn device(nk: usize) -> Device {
    Device::new(
        KernelConfig::new(8, 2, nk).with_max_lengths(96, 96),
        CycleModelParams::dphls(),
        KernelCycleInfo {
            sym_bits: 2,
            has_walk: true,
            ii: 1,
        },
        250.0,
    )
}

fn workload(n: usize) -> Vec<(Vec<Base>, Vec<Base>)> {
    let mut sim = dphls_seq::gen::ReadSimulator::new(77);
    sim.read_pairs(n, 80, 0.25)
        .into_iter()
        .map(|(r, mut q)| {
            q.truncate(80);
            (q.into_vec(), r.into_vec())
        })
        .collect()
}

/// The fault-free outputs every surviving pair must match bit-for-bit.
fn baseline(wl: &[(Vec<Base>, Vec<Base>)]) -> Vec<DpOutput<i16>> {
    let params = LinearParams::<i16>::dna();
    run_batched::<GlobalLinear>(&device(1), &params, wl)
        .unwrap()
        .outputs
}

/// Quarantine policy with a deadline generous enough that only injected
/// stalls trip it (the workload's pairs complete in well under a
/// millisecond).
fn quarantine(max_retries: u32) -> ResilienceConfig {
    ResilienceConfig {
        pair_deadline: Some(Duration::from_millis(50)),
        max_retries,
        backoff: Duration::from_millis(1),
        failure_policy: FailurePolicy::Quarantine,
        send_deadline: Some(Duration::from_secs(10)),
    }
}

const STALL: FaultKind = FaultKind::Stall { millis: 200 };

/// An `(input index, slot)` pair as the streaming sink receives it.
type EmittedSlot = (usize, Result<DpOutput<i16>, PairFault>);

/// Runs the streamed engine with a collecting sink and returns
/// `(report, emitted slots)`.
fn stream_with_plan(
    nk: usize,
    wl: &[(Vec<Base>, Vec<Base>)],
    res: &ResilienceConfig,
    plan: &FaultPlan,
) -> (dphls_host::StreamReport, Vec<EmittedSlot>) {
    let params = LinearParams::<i16>::dna();
    let source = plan.wrap_source(wl.iter().cloned().map(Ok::<_, String>), |i| {
        format!("record {i} unreadable")
    });
    let emitted = Mutex::new(Vec::new());
    let report = run_streamed_resilient::<GlobalLinear, _, _, _>(
        &device(nk),
        &params,
        source,
        StreamConfig {
            buffer: 4,
            window: 8,
            nb_slots: 2,
        },
        res,
        Some(plan),
        |idx, slot| emitted.lock().unwrap().push((idx, slot)),
    )
    .unwrap();
    (report, emitted.into_inner().unwrap())
}

#[test]
fn batched_sticky_faults_quarantine_with_exact_accounting() {
    silence_injected_panics();
    let wl = workload(12);
    let base = baseline(&wl);
    let params = LinearParams::<i16>::dna();
    let plan = FaultPlan::new()
        .inject_sticky(0, STALL)
        .inject_sticky(2, FaultKind::KernelError)
        .inject_sticky(5, FaultKind::Panic);
    for nk in [1, 3] {
        let rep = run_batched_resilient::<GlobalLinear>(
            &device(nk),
            &params,
            &wl,
            dphls_host::BatchConfig::slots(2),
            &quarantine(1),
            Some(&plan),
        )
        .unwrap();

        // Exactly the sticky indices are quarantined, sorted, after
        // 1 + max_retries attempts each.
        let idxs: Vec<_> = rep.faults.iter().map(|f| f.idx).collect();
        assert_eq!(idxs, vec![0, 2, 5], "nk {nk}");
        assert!(rep.faults.iter().all(|f| f.attempts == 2));
        assert!(matches!(rep.faults[0].cause, FaultCause::Timeout { .. }));
        assert_eq!(
            rep.faults[1].cause,
            FaultCause::Kernel(injected_kernel_error())
        );
        assert_eq!(
            rep.faults[2].cause,
            FaultCause::Panic(injected_panic_message(5))
        );

        // One retry per sticky fault; both stall attempts timed out.
        assert_eq!(rep.retries, 3, "nk {nk}");
        assert_eq!(rep.timeouts, 2, "nk {nk}");

        // Survivors are bit-identical to the fault-free run, holes are
        // exactly the quarantined indices.
        assert_eq!(rep.outputs.len(), 12);
        assert_eq!(rep.completed(), 9);
        for (i, out) in rep.outputs.iter().enumerate() {
            if [0, 2, 5].contains(&i) {
                assert!(out.is_none(), "pair {i} should be quarantined");
            } else {
                assert_eq!(out.as_ref(), Some(&base[i]), "pair {i} nk {nk}");
            }
        }
        // Execution counters cover the successes exactly.
        assert_eq!(rep.per_channel.iter().sum::<usize>(), 9);
    }
}

#[test]
fn batched_transient_faults_retry_to_success() {
    silence_injected_panics();
    let wl = workload(10);
    let base = baseline(&wl);
    let params = LinearParams::<i16>::dna();
    let plan = FaultPlan::new()
        .inject(1, FaultKind::KernelError)
        .inject(3, FaultKind::Panic)
        .inject(4, STALL);
    for nk in [1, 3] {
        let rep = run_batched_resilient::<GlobalLinear>(
            &device(nk),
            &params,
            &wl,
            dphls_host::BatchConfig::slots(2),
            &quarantine(2),
            Some(&plan),
        )
        .unwrap();
        assert!(rep.faults.is_empty(), "nk {nk}: {:?}", rep.faults);
        assert_eq!(rep.retries, 3, "one retry clears each transient fault");
        assert_eq!(rep.timeouts, 1, "only the stalled first attempt timed out");
        let outs: Vec<_> = rep.outputs.into_iter().map(Option::unwrap).collect();
        assert_eq!(outs, base, "retried pairs recompute bit-identically");
    }
}

#[test]
fn batched_abort_policy_surfaces_the_fault() {
    silence_injected_panics();
    let wl = workload(6);
    let params = LinearParams::<i16>::dna();
    let plan = FaultPlan::new().inject_sticky(3, FaultKind::Panic);
    let err = run_batched_resilient::<GlobalLinear>(
        &device(2),
        &params,
        &wl,
        dphls_host::BatchConfig::single_slot(),
        &ResilienceConfig::disabled(),
        Some(&plan),
    )
    .unwrap_err();
    match err {
        BatchError::Fault(fault) => {
            assert_eq!(fault.idx, 3);
            assert_eq!(fault.cause, FaultCause::Panic(injected_panic_message(3)));
            assert_eq!(fault.attempts, 1);
        }
        other => panic!("expected a pair fault, got {other:?}"),
    }
}

#[test]
fn streamed_sticky_and_source_faults_quarantine_in_order() {
    silence_injected_panics();
    let wl = workload(12);
    let base = baseline(&wl);
    let plan = FaultPlan::new()
        .inject_sticky(1, FaultKind::KernelError)
        .inject_sticky(4, FaultKind::Panic)
        .inject(6, FaultKind::SourceError);
    let res = ResilienceConfig {
        pair_deadline: None,
        ..quarantine(1)
    };
    for nk in [1, 3] {
        let (report, emitted) = stream_with_plan(nk, &wl, &res, &plan);

        // Every slot is emitted exactly once, in input order.
        let order: Vec<_> = emitted.iter().map(|(idx, _)| *idx).collect();
        assert_eq!(order, (0..12).collect::<Vec<_>>(), "nk {nk}");
        assert_eq!(report.pairs, 12);
        assert_eq!(report.completed(), 9);

        for (idx, slot) in &emitted {
            match (*idx, slot) {
                (1, Err(f)) => {
                    assert_eq!(f.cause, FaultCause::Kernel(injected_kernel_error()));
                    assert_eq!(f.attempts, 2);
                }
                (4, Err(f)) => {
                    assert_eq!(f.cause, FaultCause::Panic(injected_panic_message(4)));
                    assert_eq!(f.attempts, 2);
                }
                (6, Err(f)) => {
                    assert!(
                        matches!(&f.cause, FaultCause::Source(m) if m.contains("unreadable")),
                        "got {f:?}"
                    );
                    assert_eq!(f.attempts, 0, "source errors are never attempted");
                }
                (i, Ok(out)) => assert_eq!(out, &base[i], "pair {i} nk {nk}"),
                (i, Err(f)) => panic!("unplanned fault at pair {i}: {f}"),
            }
        }

        // Report-side accounting mirrors the sink exactly.
        let idxs: Vec<_> = report.faults.iter().map(|f| f.idx).collect();
        assert_eq!(idxs, vec![1, 4, 6]);
        assert_eq!(report.retries, 2, "one retry per sticky worker fault");
        assert_eq!(report.timeouts, 0);
    }
}

#[test]
fn streamed_transient_faults_recover_bit_identically() {
    silence_injected_panics();
    let wl = workload(10);
    let base = baseline(&wl);
    let plan = FaultPlan::new()
        .inject(0, FaultKind::Panic)
        .inject(7, FaultKind::KernelError);
    let res = ResilienceConfig {
        pair_deadline: None,
        ..quarantine(2)
    };
    for nk in [1, 3] {
        let (report, emitted) = stream_with_plan(nk, &wl, &res, &plan);
        assert!(report.faults.is_empty(), "nk {nk}: {:?}", report.faults);
        assert_eq!(report.retries, 2);
        assert_eq!(report.pairs, 10);
        let outs: Vec<_> = emitted
            .into_iter()
            .map(|(idx, slot)| {
                assert!(slot.is_ok(), "pair {idx} should have recovered");
                slot.unwrap()
            })
            .collect();
        assert_eq!(outs, base);
    }
}

#[test]
fn streamed_abort_policy_maps_faults_onto_stream_errors() {
    silence_injected_panics();
    let wl = workload(6);
    let params = LinearParams::<i16>::dna();

    // A panic under Abort is a PairFault-shaped stream error...
    let plan = FaultPlan::new().inject_sticky(2, FaultKind::Panic);
    let err = run_streamed_resilient::<GlobalLinear, _, Infallible, _>(
        &device(2),
        &params,
        wl.iter().cloned().map(Ok),
        StreamConfig::default(),
        &ResilienceConfig::disabled(),
        Some(&plan),
        |_, _| {},
    )
    .unwrap_err();
    assert!(
        matches!(&err, StreamError::Fault(f) if f.idx == 2
            && matches!(f.cause, FaultCause::Panic(_))),
        "got {err:?}"
    );

    // ...while a kernel error keeps the pre-resilience Systolic shape.
    let plan = FaultPlan::new().inject_sticky(1, FaultKind::KernelError);
    let err = run_streamed_resilient::<GlobalLinear, _, Infallible, _>(
        &device(2),
        &params,
        wl.iter().cloned().map(Ok),
        StreamConfig::default(),
        &ResilienceConfig::disabled(),
        Some(&plan),
        |_, _| {},
    )
    .unwrap_err();
    assert!(
        matches!(err, StreamError::Systolic(e) if e == injected_kernel_error()),
        "kernel faults stay backward-compatible under Abort"
    );
}

#[test]
fn wedged_consumer_degrades_to_stalled_within_the_send_deadline() {
    let wl = workload(6);
    let params = LinearParams::<i16>::dna();
    // Pair 0 wedges its worker for 60 s; with one slot, one buffered item,
    // and a window of one, the producer cannot make progress and must give
    // up after its 200 ms send deadline instead of deadlocking.
    let plan = FaultPlan::new().inject_sticky(0, FaultKind::Stall { millis: 60_000 });
    let res = ResilienceConfig {
        pair_deadline: None,
        max_retries: 0,
        backoff: Duration::ZERO,
        failure_policy: FailurePolicy::Quarantine,
        send_deadline: Some(Duration::from_millis(200)),
    };
    let started = Instant::now();
    let err = run_streamed_resilient::<GlobalLinear, _, Infallible, _>(
        &device(1),
        &params,
        wl.iter().cloned().map(Ok),
        StreamConfig {
            buffer: 1,
            window: 1,
            nb_slots: 1,
        },
        &res,
        Some(&plan),
        |_, _| {},
    )
    .unwrap_err();
    let elapsed = started.elapsed();
    match err {
        StreamError::Stalled { waited } => {
            assert!(
                waited >= Duration::from_millis(200),
                "gave up early: {waited:?}"
            );
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
    // The abort must also wake the stalled worker: the whole run returns
    // promptly, nowhere near the 60 s stall.
    assert!(
        elapsed < Duration::from_secs(20),
        "run took {elapsed:?}; the stalled slot outlived the abort"
    );
}

/// Faults landing on a pair that takes the i8 -> i16 escalation path must
/// reconcile exactly like any other fault: one retry per injection, one
/// quarantine entry per sticky injection, and — crucially — one escalation
/// counted per pair that *completes* via the exact re-run, no matter how
/// many failed attempts preceded it.
#[test]
fn adaptive_escalation_faults_reconcile_exactly() {
    use dphls_core::{I8Lanes, LanePrecision};
    use dphls_host::{run_batched_adaptive, run_streamed_adaptive};

    silence_injected_panics();
    let params = LinearParams::<i16>::dna();
    // Short reads stay on the i8 fast path with the DNA params (the -2/base
    // boundary gap crosses the -32 guard floor only past 15 bases); the two
    // planted 64-base identical pairs score 128 >= the +127 rail and MUST
    // escalate on every (re-)attempt.
    let mut sim = dphls_seq::gen::ReadSimulator::new(99);
    let mut wl: Vec<(Vec<Base>, Vec<Base>)> = sim
        .read_pairs(8, 12, 0.2)
        .into_iter()
        .map(|(r, q)| (q.into_vec(), r.into_vec()))
        .collect();
    let hot = vec![Base::A; 64];
    wl[2] = (hot.clone(), hot.clone());
    wl[5] = (hot.clone(), hot);
    let base = run_batched::<GlobalLinear>(&device(1), &params, &wl)
        .unwrap()
        .outputs;
    let precision = LanePrecision::Adaptive(I8Lanes::X16);

    // Transient kernel error on escalating pair 2: the retry re-runs the
    // whole adaptive path (i8 then exact), so the pair still completes,
    // still counts exactly one escalation, and stays bit-identical.
    let plan = FaultPlan::new().inject(2, FaultKind::KernelError);
    let rep = run_batched_adaptive::<GlobalLinear>(
        &device(2),
        &params,
        precision,
        &wl,
        dphls_host::BatchConfig::slots(2),
        &quarantine(1),
        Some(&plan),
    )
    .unwrap();
    assert!(rep.faults.is_empty(), "{:?}", rep.faults);
    assert_eq!(rep.retries, 1, "the injection costs exactly one retry");
    assert_eq!(rep.escalations, 2, "both hot pairs escalate exactly once");
    let outs: Vec<_> = rep.outputs.into_iter().map(Option::unwrap).collect();
    assert_eq!(outs, base, "bit-identical after fault + escalation");

    // Sticky kernel error on escalating pair 5: quarantined after
    // 1 + max_retries attempts, paired exactly once in `faults`, and its
    // never-completed escalations never reach the counter.
    let plan = FaultPlan::new().inject_sticky(5, FaultKind::KernelError);
    let rep = run_batched_adaptive::<GlobalLinear>(
        &device(2),
        &params,
        precision,
        &wl,
        dphls_host::BatchConfig::slots(2),
        &quarantine(1),
        Some(&plan),
    )
    .unwrap();
    let idxs: Vec<_> = rep.faults.iter().map(|f| f.idx).collect();
    assert_eq!(idxs, vec![5], "exactly one quarantine entry");
    assert_eq!(rep.faults[0].attempts, 2);
    assert_eq!(
        rep.faults[0].cause,
        FaultCause::Kernel(injected_kernel_error())
    );
    assert_eq!(rep.retries, 1);
    assert_eq!(rep.escalations, 1, "only the surviving hot pair counts");
    assert_eq!(rep.completed(), wl.len() - 1);
    for (i, out) in rep.outputs.iter().enumerate() {
        if i == 5 {
            assert!(out.is_none());
        } else {
            assert_eq!(out.as_ref(), Some(&base[i]), "pair {i}");
        }
    }

    // The streamed engine reconciles the same plan identically.
    let plan = FaultPlan::new()
        .inject(2, FaultKind::KernelError)
        .inject_sticky(5, FaultKind::KernelError);
    let emitted = Mutex::new(Vec::new());
    let report = run_streamed_adaptive::<GlobalLinear, _, Infallible, _>(
        &device(2),
        &params,
        precision,
        wl.iter().cloned().map(Ok),
        StreamConfig {
            buffer: 4,
            window: 8,
            nb_slots: 2,
        },
        &ResilienceConfig {
            pair_deadline: None,
            ..quarantine(1)
        },
        Some(&plan),
        |idx, slot| emitted.lock().unwrap().push((idx, slot)),
    )
    .unwrap();
    let emitted = emitted.into_inner().unwrap();
    assert_eq!(report.retries, 2, "one per injection");
    assert_eq!(report.escalations, 1, "pair 2 recovered, pair 5 never ran");
    let fault_idxs: Vec<_> = report.faults.iter().map(|f| f.idx).collect();
    assert_eq!(fault_idxs, vec![5]);
    for (idx, slot) in &emitted {
        match slot {
            Ok(out) => assert_eq!(out, &base[*idx], "pair {idx}"),
            Err(f) => {
                assert_eq!(*idx, 5, "unplanned fault: {f}");
                assert_eq!(f.attempts, 2);
            }
        }
    }
}

/// Fleet analogue of [`stream_with_plan`]: the streamed engine sharded
/// across `d` devices with a collecting sink.
fn stream_with_plan_fleet(
    nk: usize,
    d: usize,
    wl: &[(Vec<Base>, Vec<Base>)],
    res: &ResilienceConfig,
    plan: &FaultPlan,
) -> (dphls_host::StreamReport, Vec<EmittedSlot>) {
    let params = LinearParams::<i16>::dna();
    let emitted = Mutex::new(Vec::new());
    let report = run_streamed_fleet_resilient::<GlobalLinear, _, Infallible, _>(
        &device(nk),
        &params,
        wl.iter().cloned().map(Ok),
        StreamConfig {
            buffer: 4,
            window: 8,
            nb_slots: 2,
        },
        FleetConfig::new(d),
        res,
        Some(plan),
        |idx, slot| emitted.lock().unwrap().push((idx, slot)),
    )
    .unwrap();
    (report, emitted.into_inner().unwrap())
}

#[test]
fn device_loss_is_ignored_on_a_single_device_fleet() {
    // With one device there is no survivor to fail over to: the loss
    // injection downgrades to normal execution and the run is identical
    // to a fault-free one.
    let wl = workload(10);
    let base = baseline(&wl);
    let params = LinearParams::<i16>::dna();
    let plan = FaultPlan::new().inject_sticky(3, FaultKind::DeviceLoss);
    let rep = run_batched_resilient::<GlobalLinear>(
        &device(2),
        &params,
        &wl,
        dphls_host::BatchConfig::single_slot(),
        &quarantine(1),
        Some(&plan),
    )
    .unwrap();
    assert!(rep.faults.is_empty());
    assert_eq!(rep.retries, 0);
    assert_eq!(rep.device_losses, 0);
    let outs: Vec<_> = rep.outputs.into_iter().map(Option::unwrap).collect();
    assert_eq!(outs, base);

    let (report, emitted) = stream_with_plan_fleet(2, 1, &wl, &quarantine(1), &plan);
    assert!(report.faults.is_empty());
    assert_eq!(report.device_losses, 0);
    for (idx, slot) in &emitted {
        assert_eq!(slot.as_ref().unwrap(), &base[*idx], "pair {idx}");
    }
}

#[test]
fn batched_device_loss_redeals_to_survivors_bit_identically() {
    let wl = workload(14);
    let base = baseline(&wl);
    let params = LinearParams::<i16>::dna();
    for nk in [1, 3] {
        // Transient loss at D = 4: the pair's first device dies, the pair
        // is re-dealt to a survivor, and everything completes.
        let plan = FaultPlan::new().inject(3, FaultKind::DeviceLoss);
        let rep = run_batched_resilient::<GlobalLinear>(
            &device(nk),
            &params,
            &wl,
            dphls_host::BatchConfig::single_slot().with_fleet(FleetConfig::new(4)),
            &quarantine(1),
            Some(&plan),
        )
        .unwrap();
        assert!(rep.faults.is_empty(), "nk {nk}: {:?}", rep.faults);
        assert_eq!(
            rep.retries, 1,
            "nk {nk}: the loss costs exactly one re-deal"
        );
        assert_eq!(rep.device_losses, 1, "nk {nk}");
        assert_eq!(rep.per_device.len(), 4);
        assert_eq!(rep.per_device.iter().sum::<usize>(), wl.len());
        let outs: Vec<_> = rep.outputs.into_iter().map(Option::unwrap).collect();
        assert_eq!(outs, base, "nk {nk}: survivors are bit-identical");

        // Sticky loss at D = 2: the second attempt runs on the last live
        // device, where the injection downgrades (no survivor to take
        // over), so the pair still completes.
        let plan = FaultPlan::new().inject_sticky(5, FaultKind::DeviceLoss);
        let rep = run_batched_resilient::<GlobalLinear>(
            &device(nk),
            &params,
            &wl,
            dphls_host::BatchConfig::single_slot().with_fleet(FleetConfig::new(2)),
            &quarantine(1),
            Some(&plan),
        )
        .unwrap();
        assert!(rep.faults.is_empty(), "nk {nk}: {:?}", rep.faults);
        assert_eq!(rep.retries, 1, "nk {nk}");
        assert_eq!(rep.device_losses, 1, "nk {nk}");
        let outs: Vec<_> = rep.outputs.into_iter().map(Option::unwrap).collect();
        assert_eq!(outs, base, "nk {nk}");
    }
}

#[test]
fn batched_device_loss_quarantines_exactly_once_when_retries_exhaust() {
    let wl = workload(14);
    let base = baseline(&wl);
    let params = LinearParams::<i16>::dna();
    // Sticky loss at D = 4 with one retry: both attempts land on a device
    // with live peers, so both kill their device; the pair quarantines
    // with the loss as its cause, exactly once.
    let plan = FaultPlan::new().inject_sticky(5, FaultKind::DeviceLoss);
    let rep = run_batched_resilient::<GlobalLinear>(
        &device(2),
        &params,
        &wl,
        dphls_host::BatchConfig::single_slot().with_fleet(FleetConfig::new(4)),
        &quarantine(1),
        Some(&plan),
    )
    .unwrap();
    let idxs: Vec<_> = rep.faults.iter().map(|f| f.idx).collect();
    assert_eq!(idxs, vec![5], "exactly one quarantine entry");
    assert_eq!(rep.faults[0].attempts, 2);
    assert!(
        matches!(rep.faults[0].cause, FaultCause::DeviceLost { .. }),
        "got {:?}",
        rep.faults[0].cause
    );
    assert_eq!(rep.retries, 1);
    assert_eq!(rep.device_losses, 2, "each attempt killed one device");
    assert_eq!(rep.completed(), wl.len() - 1);
    assert_eq!(rep.per_device.iter().sum::<usize>(), wl.len() - 1);
    for (i, out) in rep.outputs.iter().enumerate() {
        if i == 5 {
            assert!(out.is_none());
        } else {
            assert_eq!(out.as_ref(), Some(&base[i]), "pair {i}");
        }
    }
}

#[test]
fn streamed_device_loss_reconciles_in_order_on_survivors() {
    let wl = workload(16);
    let base = baseline(&wl);
    // Transient loss on pair 2 (recovers on a survivor) plus sticky loss
    // on pair 7 (kills a device per attempt until retries exhaust): three
    // devices die in total and one carries the rest of the stream.
    let plan = FaultPlan::new()
        .inject(2, FaultKind::DeviceLoss)
        .inject_sticky(7, FaultKind::DeviceLoss);
    for nk in [1, 3] {
        let (report, emitted) = stream_with_plan_fleet(nk, 4, &wl, &quarantine(1), &plan);

        // Every slot emitted exactly once, in input order.
        let order: Vec<_> = emitted.iter().map(|(idx, _)| *idx).collect();
        assert_eq!(order, (0..wl.len()).collect::<Vec<_>>(), "nk {nk}");
        assert_eq!(report.devices, 4);
        assert_eq!(report.device_losses, 3, "nk {nk}");
        assert_eq!(report.retries, 2, "nk {nk}: one re-deal per injection");
        let fault_idxs: Vec<_> = report.faults.iter().map(|f| f.idx).collect();
        assert_eq!(fault_idxs, vec![7], "nk {nk}");
        assert_eq!(report.per_device.iter().sum::<usize>(), wl.len() - 1);

        for (idx, slot) in &emitted {
            match slot {
                Ok(out) => assert_eq!(out, &base[*idx], "nk {nk} pair {idx}"),
                Err(f) => {
                    assert_eq!(*idx, 7, "nk {nk} unplanned fault: {f}");
                    assert_eq!(f.attempts, 2);
                    assert!(matches!(f.cause, FaultCause::DeviceLost { .. }));
                }
            }
        }
    }
}

#[test]
fn random_seeded_plans_reconcile_exactly_on_both_engines() {
    silence_injected_panics();
    let wl = workload(24);
    let base = baseline(&wl);
    let params = LinearParams::<i16>::dna();
    // The same fixed seed matrix CI runs at release scale.
    for seed in [11u64, 22, 33] {
        let plan = FaultPlan::random(seed, wl.len(), 6, 200);
        let res = quarantine(1);

        // Expectations derived from the plan alone: a sticky injection
        // quarantines its pair after 2 attempts, a transient one costs a
        // single retry; every stall attempt that runs also times out.
        let sticky: Vec<usize> = plan
            .injections()
            .iter()
            .filter(|i| i.sticky)
            .map(|i| i.idx)
            .collect();
        let expected_retries = plan.injections().len();
        let expected_timeouts: usize = plan
            .injections()
            .iter()
            .filter(|i| matches!(i.kind, FaultKind::Stall { .. }))
            .map(|i| if i.sticky { 2 } else { 1 })
            .sum();

        let rep = run_batched_resilient::<GlobalLinear>(
            &device(3),
            &params,
            &wl,
            dphls_host::BatchConfig::slots(2),
            &res,
            Some(&plan),
        )
        .unwrap();
        let fault_idxs: Vec<_> = rep.faults.iter().map(|f| f.idx).collect();
        assert_eq!(fault_idxs, sticky, "seed {seed}");
        assert_eq!(rep.retries, expected_retries, "seed {seed}");
        assert_eq!(rep.timeouts, expected_timeouts, "seed {seed}");
        for (i, out) in rep.outputs.iter().enumerate() {
            if sticky.contains(&i) {
                assert!(out.is_none(), "seed {seed} pair {i}");
            } else {
                assert_eq!(out.as_ref(), Some(&base[i]), "seed {seed} pair {i}");
            }
        }

        // The streamed engine reconciles the identical plan identically.
        let (report, emitted) = stream_with_plan(3, &wl, &res, &plan);
        let order: Vec<_> = emitted.iter().map(|(idx, _)| *idx).collect();
        assert_eq!(order, (0..wl.len()).collect::<Vec<_>>(), "seed {seed}");
        let stream_fault_idxs: Vec<_> = report.faults.iter().map(|f| f.idx).collect();
        assert_eq!(stream_fault_idxs, sticky, "seed {seed}");
        assert_eq!(report.retries, expected_retries, "seed {seed}");
        assert_eq!(report.timeouts, expected_timeouts, "seed {seed}");
        for (idx, slot) in &emitted {
            match slot {
                Ok(out) => assert_eq!(out, &base[*idx], "seed {seed} pair {idx}"),
                Err(f) => assert!(sticky.contains(idx), "seed {seed} unplanned {f}"),
            }
        }
    }
}
