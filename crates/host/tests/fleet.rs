//! Differential suite for fleet sharding: dispatching the work queue
//! across `D` modeled devices (`BatchConfig::with_fleet` /
//! `run_streamed_fleet_collect`) must be observationally identical to the
//! single-device path — same scores, same traceback paths, same input
//! order, same error behavior, balanced per-device accounting — for
//! `D ∈ {1, 2, 4}`, across both the batched and the streamed engines.
//! Only the modeled throughput may change, and it must change the right
//! way: more devices never model slower, a free link at `D = 1`
//! degenerates exactly to the single-device cycle model, and transfer
//! cost grows monotonically with payload size.

use dphls_core::{run_reference, Banding, KernelConfig};
use dphls_host::{
    run_batched_with, run_streamed_fleet_collect, BatchConfig, FleetConfig, StreamConfig,
};
use dphls_kernels::{GlobalLinear, LinearParams};
use dphls_seq::gen::ReadSimulator;
use dphls_seq::Base;
use dphls_systolic::{
    arbitrated_cycles, fleet_cycles, CycleBreakdown, CycleModelParams, Device, KernelCycleInfo,
    TransferModel,
};
use proptest::prelude::*;
use std::convert::Infallible;

fn device(config: KernelConfig) -> Device {
    Device::new(
        config,
        CycleModelParams::dphls(),
        KernelCycleInfo {
            sym_bits: 2,
            has_walk: true,
            ii: 1,
        },
        250.0,
    )
}

/// Varied-length pairs so cost ranking, dealing, and cross-device
/// stealing all fire (same shape as the nb_slots suite).
fn varied_workload(n: usize, max_len: usize, seed: u64) -> Vec<(Vec<Base>, Vec<Base>)> {
    let mut sim = ReadSimulator::new(seed);
    (0..n)
        .map(|i| {
            let len = 4 + (i * 13) % (max_len - 8);
            let (r, q) = sim.read_pair(len.max(4), 0.2);
            let mut q = q.into_vec();
            q.truncate(max_len - 4);
            let mut r = r.into_vec();
            r.truncate(max_len - 4);
            (q, r)
        })
        .collect()
}

const FLEET_SIZES: [usize; 3] = [1, 2, 4];

#[test]
fn batched_fleet_sizes_are_bit_identical_to_single_device() {
    let params = LinearParams::<i16>::dna();
    for nk in [1usize, 3] {
        let wl = varied_workload(43 + nk * 7, 72, 0xF1EE7 + nk as u64);
        let config = KernelConfig::new(8, 4, nk).with_max_lengths(96, 96);
        let dev = device(config);
        let single =
            run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::single_slot())
                .unwrap();
        assert_eq!(single.devices, 1);
        assert_eq!(single.per_device, vec![wl.len()]);
        for d in FLEET_SIZES {
            for transfer in [TransferModel::zero(), TransferModel::pcie()] {
                let cfg = BatchConfig::single_slot()
                    .with_fleet(FleetConfig::new(d).with_transfer(transfer));
                let rep = run_batched_with::<GlobalLinear>(&dev, &params, &wl, cfg).unwrap();
                // Scores, tracebacks, and input order, bit for bit.
                assert_eq!(rep.outputs, single.outputs, "nk {nk} d {d} {transfer:?}");
                // Accounting: every pair lands on exactly one device and
                // one channel, regardless of the fleet size.
                assert_eq!(rep.devices, d);
                assert_eq!(rep.per_device.len(), d);
                assert_eq!(rep.per_device.iter().sum::<usize>(), wl.len());
                assert_eq!(rep.per_channel.len(), nk);
                assert_eq!(rep.per_channel.iter().sum::<usize>(), wl.len());
            }
        }
        // The modeled throughput with a free link scales with the fleet:
        // strictly more devices never model slower.
        let mut last = 0.0f64;
        for d in FLEET_SIZES {
            let cfg = BatchConfig::single_slot()
                .with_fleet(FleetConfig::new(d).with_transfer(TransferModel::zero()));
            let rep = run_batched_with::<GlobalLinear>(&dev, &params, &wl, cfg).unwrap();
            assert!(
                rep.throughput_aps >= last,
                "fleet model regressed at nk {nk} d {d}: {} < {last}",
                rep.throughput_aps
            );
            last = rep.throughput_aps;
        }
    }
}

#[test]
fn streamed_fleet_sizes_are_bit_identical_to_single_device() {
    let params = LinearParams::<i16>::dna();
    for nk in [1usize, 3] {
        let wl = varied_workload(39 + nk * 5, 72, 0xF2EE7 + nk as u64);
        let config = KernelConfig::new(8, 4, nk).with_max_lengths(96, 96);
        let dev = device(config);
        let single =
            run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::single_slot())
                .unwrap();
        for d in FLEET_SIZES {
            for (buffer, window) in [(1usize, 2usize), (4, 16), (64, 128)] {
                let cfg = StreamConfig {
                    buffer,
                    window,
                    nb_slots: 1,
                };
                let (rep, stream) = run_streamed_fleet_collect::<GlobalLinear, _, Infallible>(
                    &dev,
                    &params,
                    wl.iter().cloned().map(Ok),
                    cfg,
                    FleetConfig::new(d).with_transfer(TransferModel::pcie()),
                )
                .unwrap();
                assert_eq!(rep.outputs, single.outputs, "nk {nk} d {d} {cfg:?}");
                assert_eq!(stream.devices, d);
                assert_eq!(stream.per_device.len(), d);
                assert_eq!(stream.per_device.iter().sum::<usize>(), wl.len());
                assert_eq!(stream.per_channel.iter().sum::<usize>(), wl.len());
                assert_eq!(stream.device_losses, 0);
                // Fleet sharding must not loosen the bounded-memory
                // contract: admission still gates everything in flight.
                assert!(stream.resident_high_water <= window);
                assert!(stream.reorder_high_water < window);
            }
        }
    }
}

#[test]
fn fleet_outputs_match_the_reference_engine() {
    // Not just internally consistent: the sharded engine still agrees
    // with the golden full-matrix model pair by pair.
    let wl = varied_workload(23, 64, 0xFEEB);
    let params = LinearParams::<i16>::dna();
    let config = KernelConfig::new(8, 4, 2).with_max_lengths(96, 96);
    let cfg = BatchConfig::single_slot().with_fleet(FleetConfig::new(4));
    let rep = run_batched_with::<GlobalLinear>(&device(config), &params, &wl, cfg).unwrap();
    for (i, (q, r)) in wl.iter().enumerate() {
        let want = run_reference::<GlobalLinear>(&params, q, r, Banding::None);
        assert_eq!(rep.outputs[i], want, "pair {i}");
    }
}

#[test]
fn oversized_sequence_error_propagates_from_any_fleet_size() {
    // Error behavior is part of the observational contract: a pair the
    // single-device engine rejects is rejected at every fleet size.
    let params = LinearParams::<i16>::dna();
    let dev = device(KernelConfig::new(8, 4, 2).with_max_lengths(96, 96));
    let mut wl = varied_workload(12, 64, 0xE45);
    wl.push((vec![Base::A; 200], vec![Base::C; 50]));
    for d in FLEET_SIZES {
        let cfg = BatchConfig::single_slot().with_fleet(FleetConfig::new(d));
        let err = run_batched_with::<GlobalLinear>(&dev, &params, &wl, cfg);
        assert!(err.is_err(), "oversized pair must fail at d {d}");
        let err = run_streamed_fleet_collect::<GlobalLinear, _, Infallible>(
            &dev,
            &params,
            wl.iter().cloned().map(Ok),
            StreamConfig::default(),
            FleetConfig::new(d),
        );
        assert!(err.is_err(), "oversized pair must fail streamed at d {d}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// More devices never model slower: `fleet_cycles` is monotonically
    /// non-increasing in `D` for any breakdown, occupancy, link, and
    /// payload.
    #[test]
    fn fleet_cycles_monotone_in_devices(
        load in 0u64..10_000,
        fill in 0u64..100_000,
        writeback in 0u64..10_000,
        occupied in 0usize..8,
        latency in 0u64..1_000,
        bpc in 0u64..256,
        payload in 0u64..100_000,
    ) {
        let b = CycleBreakdown {
            load,
            init: 0,
            fill,
            reduce: 0,
            traceback: 0,
            writeback,
            overhead: 0,
            total: load + fill + writeback,
        };
        let t = TransferModel { latency_cycles: latency, bytes_per_cycle: bpc };
        let mut last = u64::MAX;
        for d in 1..=8usize {
            let c = fleet_cycles(&b, occupied, d, &t, payload);
            prop_assert!(c <= last, "d {d}: {c} > {last}");
            last = c;
        }
    }

    /// At `D = 1` with a free link the fleet model degenerates exactly to
    /// the single-device arbitrated cycle count — no hidden constant.
    #[test]
    fn fleet_degenerates_to_arbitrated_at_one_device_zero_transfer(
        load in 0u64..10_000,
        fill in 0u64..100_000,
        writeback in 0u64..10_000,
        occupied in 0usize..8,
        payload in 0u64..100_000,
    ) {
        let b = CycleBreakdown {
            load,
            init: 0,
            fill,
            reduce: 0,
            traceback: 0,
            writeback,
            overhead: 0,
            total: load + fill + writeback,
        };
        let zero = TransferModel::zero();
        prop_assert_eq!(
            fleet_cycles(&b, occupied, 1, &zero, payload),
            arbitrated_cycles(&b, occupied)
        );
        // A zero-device fleet resolves to one device, never divides by 0.
        prop_assert_eq!(
            fleet_cycles(&b, occupied, 0, &zero, payload),
            arbitrated_cycles(&b, occupied)
        );
    }

    /// Transfer cost grows monotonically with payload size on any link.
    #[test]
    fn transfer_cost_monotone_in_payload(
        latency in 0u64..1_000,
        bpc in 0u64..256,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let t = TransferModel { latency_cycles: latency, bytes_per_cycle: bpc };
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(t.transfer_cycles(small) <= t.transfer_cycles(large));
    }
}

/// Release-scale banded acceptance shape (debug builds shrink the pair
/// count; the differential property is scale-invariant). This is the
/// fleet analogue of the nb_slots release-scale case, run by the CI
/// release-scale step.
#[test]
fn banded_release_scale_fleet_differential() {
    let pairs = if cfg!(debug_assertions) { 200 } else { 4_000 };
    let len = 256;
    let mut sim = ReadSimulator::new(0xDA);
    let wl: Vec<(Vec<Base>, Vec<Base>)> = sim
        .read_pairs(pairs, len, 0.2)
        .into_iter()
        .map(|(r, mut q)| {
            q.truncate(len);
            let mut r = r.into_vec();
            r.truncate(len);
            (q.into_vec(), r)
        })
        .collect();
    let config = KernelConfig::new(32, 4, 4)
        .with_max_lengths(len, len)
        .with_banding(16);
    let params = LinearParams::<i16>::dna();
    let dev = device(config);
    let single =
        run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::single_slot()).unwrap();
    let fleet_cfg = BatchConfig::single_slot().with_fleet(FleetConfig::new(4));
    let fleet = run_batched_with::<GlobalLinear>(&dev, &params, &wl, fleet_cfg).unwrap();
    assert_eq!(fleet.outputs, single.outputs);
    assert_eq!(fleet.per_device.iter().sum::<usize>(), wl.len());
    // The acceptance gate the bench suite enforces machine-independently:
    // a 4-device fleet over a PCIe-class link models at least 3.5x the
    // single-device throughput on this workload.
    assert!(
        fleet.throughput_aps >= single.throughput_aps * 3.5,
        "modeled fleet ratio too low: {} vs {}",
        fleet.throughput_aps,
        single.throughput_aps
    );
    let (streamed, srep) = run_streamed_fleet_collect::<GlobalLinear, _, Infallible>(
        &dev,
        &params,
        wl.iter().cloned().map(Ok),
        StreamConfig::default(),
        FleetConfig::new(4),
    )
    .unwrap();
    assert_eq!(streamed.outputs, single.outputs);
    assert_eq!(srep.per_device.iter().sum::<usize>(), wl.len());
    assert!((streamed.throughput_aps - fleet.throughput_aps).abs() < 1e-9);
}
