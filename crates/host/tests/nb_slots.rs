//! Differential suite for NB-block intra-channel parallelism: the host's
//! per-channel block-slot pool (`BatchConfig::nb_slots` /
//! `StreamConfig::nb_slots`) must be observationally identical to the
//! single-slot path — same scores, same traceback paths, same input order,
//! same modeled throughput, same per-channel accounting totals — for
//! `nb_slots ∈ {1, 2, 4}`, across both the batched and the streamed
//! engines, on devices where `NB` actually exposes that many blocks.

use dphls_core::{run_reference, Banding, KernelConfig};
use dphls_host::{run_batched, run_batched_with, run_streamed_collect, BatchConfig, StreamConfig};
use dphls_kernels::{GlobalLinear, LinearParams};
use dphls_seq::gen::ReadSimulator;
use dphls_seq::Base;
use dphls_systolic::{CycleModelParams, Device, KernelCycleInfo};
use std::convert::Infallible;

fn device(config: KernelConfig) -> Device {
    Device::new(
        config,
        CycleModelParams::dphls(),
        KernelCycleInfo {
            sym_bits: 2,
            has_walk: true,
            ii: 1,
        },
        250.0,
    )
}

/// Varied-length pairs so cost ranking, stealing, and slot dispatch all
/// fire (the same shape as the streamed-vs-batched suite).
fn varied_workload(n: usize, max_len: usize, seed: u64) -> Vec<(Vec<Base>, Vec<Base>)> {
    let mut sim = ReadSimulator::new(seed);
    (0..n)
        .map(|i| {
            let len = 4 + (i * 13) % (max_len - 8);
            let (r, q) = sim.read_pair(len.max(4), 0.2);
            let mut q = q.into_vec();
            q.truncate(max_len - 4);
            let mut r = r.into_vec();
            r.truncate(max_len - 4);
            (q, r)
        })
        .collect()
}

const SLOT_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn batched_slot_counts_are_bit_identical_to_single_slot() {
    let params = LinearParams::<i16>::dna();
    for nk in [1usize, 3] {
        let wl = varied_workload(41 + nk * 7, 72, 0x5107 + nk as u64);
        // NB = 4 so every tested slot count maps to real device blocks.
        let config = KernelConfig::new(8, 4, nk).with_max_lengths(96, 96);
        let dev = device(config);
        let single =
            run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::single_slot())
                .unwrap();
        assert_eq!(single.nb_slots, 1);
        for slots in SLOT_COUNTS {
            let rep =
                run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::slots(slots))
                    .unwrap();
            // Scores, tracebacks, and input order, bit for bit.
            assert_eq!(rep.outputs, single.outputs, "nk {nk} slots {slots}");
            // Stats: the modeled (stats-derived) throughput is exact — the
            // same alignments produce the same BlockStats no matter which
            // slot ran them — and the accounting totals must balance.
            assert_eq!(rep.nb_slots, slots);
            assert!(
                (rep.throughput_aps - single.throughput_aps).abs() < 1e-9,
                "throughput {} vs {} at nk {nk} slots {slots}",
                rep.throughput_aps,
                single.throughput_aps
            );
            assert_eq!(rep.per_channel.len(), nk);
            assert_eq!(rep.per_channel.iter().sum::<usize>(), wl.len());
            assert_eq!(rep.per_slot.len(), nk);
            for (ch, row) in rep.per_slot.iter().enumerate() {
                assert_eq!(row.len(), slots);
                assert_eq!(row.iter().sum::<usize>(), rep.per_channel[ch]);
            }
        }
    }
}

#[test]
fn streamed_slot_counts_are_bit_identical_to_single_slot() {
    let params = LinearParams::<i16>::dna();
    for nk in [1usize, 3] {
        let wl = varied_workload(38 + nk * 5, 72, 0xAB5 + nk as u64);
        let config = KernelConfig::new(8, 4, nk).with_max_lengths(96, 96);
        let dev = device(config);
        let batched =
            run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::single_slot())
                .unwrap();
        for slots in SLOT_COUNTS {
            for (buffer, window) in [(1usize, 2usize), (4, 16), (64, 128)] {
                let cfg = StreamConfig {
                    buffer,
                    window,
                    nb_slots: slots,
                };
                let (rep, stream) = run_streamed_collect::<GlobalLinear, _, Infallible>(
                    &dev,
                    &params,
                    wl.iter().cloned().map(Ok),
                    cfg,
                )
                .unwrap();
                assert_eq!(rep.outputs, batched.outputs, "nk {nk} {cfg:?}");
                assert_eq!(stream.nb_slots, slots);
                assert!(
                    (rep.throughput_aps - batched.throughput_aps).abs() < 1e-9,
                    "throughput at nk {nk} {cfg:?}"
                );
                assert_eq!(stream.per_channel.iter().sum::<usize>(), wl.len());
                for (ch, row) in stream.per_slot.iter().enumerate() {
                    assert_eq!(row.len(), slots);
                    assert_eq!(row.iter().sum::<usize>(), stream.per_channel[ch]);
                }
                // Slot concurrency must not loosen the bounded-memory
                // contract: admission still gates everything in flight.
                assert!(stream.resident_high_water <= window);
                assert!(stream.reorder_high_water < window);
            }
        }
    }
}

#[test]
fn slot_outputs_match_the_reference_engine() {
    // Not just internally consistent: the pooled engine still agrees with
    // the golden full-matrix model pair by pair.
    let wl = varied_workload(23, 64, 0xFEED);
    let params = LinearParams::<i16>::dna();
    let config = KernelConfig::new(8, 4, 2).with_max_lengths(96, 96);
    let rep =
        run_batched_with::<GlobalLinear>(&device(config), &params, &wl, BatchConfig::slots(4))
            .unwrap();
    for (i, (q, r)) in wl.iter().enumerate() {
        let want = run_reference::<GlobalLinear>(&params, q, r, Banding::None);
        assert_eq!(rep.outputs[i], want, "pair {i}");
    }
}

#[test]
fn default_run_batched_matches_explicit_single_slot() {
    // The auto slot policy may pick any count in 1..=NB depending on host
    // cores; whatever it picks must be invisible in the results.
    let wl = varied_workload(29, 64, 0xC0DE);
    let params = LinearParams::<i16>::dna();
    let dev = device(KernelConfig::new(8, 4, 2).with_max_lengths(96, 96));
    let auto = run_batched::<GlobalLinear>(&dev, &params, &wl).unwrap();
    let single =
        run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::single_slot()).unwrap();
    assert!((1..=4).contains(&auto.nb_slots));
    assert_eq!(auto.outputs, single.outputs);
    assert!((auto.throughput_aps - single.throughput_aps).abs() < 1e-9);
}

#[test]
fn oversized_sequence_error_propagates_from_slot_pool() {
    let params = LinearParams::<i16>::dna();
    let dev = device(KernelConfig::new(8, 4, 2).with_max_lengths(96, 96));
    let mut wl = varied_workload(12, 64, 0xE44);
    wl.push((vec![Base::A; 200], vec![Base::C; 50]));
    let err = run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::slots(4));
    assert!(err.is_err(), "oversized pair must fail at any slot count");
    let err = run_streamed_collect::<GlobalLinear, _, Infallible>(
        &dev,
        &params,
        wl.into_iter().map(Ok),
        StreamConfig {
            buffer: 2,
            window: 8,
            nb_slots: 4,
        },
    );
    assert!(err.is_err());
}

/// Release-scale banded acceptance shape with a real NB (debug builds
/// shrink the pair count; the differential property is scale-invariant).
#[test]
fn banded_release_scale_slot_pool_differential() {
    let pairs = if cfg!(debug_assertions) { 200 } else { 4_000 };
    let len = 256;
    let mut sim = ReadSimulator::new(0xD9);
    let wl: Vec<(Vec<Base>, Vec<Base>)> = sim
        .read_pairs(pairs, len, 0.2)
        .into_iter()
        .map(|(r, mut q)| {
            q.truncate(len);
            let mut r = r.into_vec();
            r.truncate(len);
            (q.into_vec(), r)
        })
        .collect();
    let config = KernelConfig::new(32, 4, 4)
        .with_max_lengths(len, len)
        .with_banding(16);
    let params = LinearParams::<i16>::dna();
    let dev = device(config);
    let single =
        run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::single_slot()).unwrap();
    let pooled =
        run_batched_with::<GlobalLinear>(&dev, &params, &wl, BatchConfig::slots(4)).unwrap();
    assert_eq!(pooled.outputs, single.outputs);
    assert!((pooled.throughput_aps - single.throughput_aps).abs() < 1e-9);
    let (streamed, _) = run_streamed_collect::<GlobalLinear, _, Infallible>(
        &dev,
        &params,
        wl.iter().cloned().map(Ok),
        StreamConfig {
            nb_slots: 4,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    assert_eq!(streamed.outputs, single.outputs);
    assert!((streamed.throughput_aps - single.throughput_aps).abs() < 1e-9);
}
