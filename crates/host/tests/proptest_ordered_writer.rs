//! Property-based verification of [`OrderedWriter`]: over random
//! window-respecting completion permutations, the emitted order must equal
//! the input order and the reorder buffer must never hold `window` or more
//! outputs (the high-water-mark counter makes the bound assertable); pushes
//! that land outside the window must be rejected without corrupting state.

use dphls_host::OrderedWriter;
use proptest::prelude::*;
use std::cell::RefCell;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Simulates the pipeline's admission discipline: indices are admitted
    /// in order, at most `window` in flight, and complete in an arbitrary
    /// (choice-driven) order. Whatever the permutation, the writer must
    /// emit 0, 1, 2, … and its buffer occupancy must stay under `window`.
    #[test]
    fn window_respecting_permutations_emit_in_input_order(
        n in 1usize..80,
        window in 1usize..9,
        choices in proptest::collection::vec(0usize..1_000_000, 1..240),
    ) {
        let emitted = RefCell::new(Vec::new());
        let mut writer = OrderedWriter::new(window, |idx, v: usize| {
            // The value round-trips with its index.
            assert_eq!(idx, v);
            emitted.borrow_mut().push(idx);
        });
        let mut outstanding: Vec<usize> = Vec::new();
        let mut next_admit = 0usize;
        let mut step = 0usize;
        while emitted.borrow().len() < n {
            let can_admit = next_admit < n && next_admit < writer.next_emit() + window;
            let options = outstanding.len() + usize::from(can_admit);
            // If nothing is outstanding, everything admitted has been
            // emitted, so the gate is open whenever work remains.
            prop_assert!(options > 0, "deadlocked schedule");
            let sel = choices[step % choices.len()] % options;
            if sel < outstanding.len() {
                let idx = outstanding.swap_remove(sel);
                prop_assert!(writer.push(idx, idx).is_ok());
            } else {
                outstanding.push(next_admit);
                next_admit += 1;
            }
            // The bound, live at every step: the reorder buffer holds at
            // most window - 1 outputs (an in-order arrival never buffers).
            prop_assert!(writer.pending_len() < window);
            step += 1;
        }
        prop_assert_eq!(emitted.borrow().clone(), (0..n).collect::<Vec<_>>());
        prop_assert!(writer.is_drained());
        prop_assert!(writer.high_water() < window, "high water {} at window {}", writer.high_water(), window);
        prop_assert_eq!(writer.next_emit(), n);
    }

    /// Any push at or beyond `next_emit + window` — and any duplicate of an
    /// already-emitted index — is rejected, and the rejection leaves the
    /// writer's ordering state untouched.
    #[test]
    fn out_of_window_pushes_rejected_without_state_damage(
        prefix in 0usize..30,
        jump in 0usize..50,
        window in 1usize..9,
    ) {
        let emitted = RefCell::new(Vec::new());
        let mut writer = OrderedWriter::new(window, |idx, _: usize| {
            emitted.borrow_mut().push(idx);
        });
        // Emit an in-order prefix.
        for i in 0..prefix {
            writer.push(i, i).unwrap();
        }
        let high_before = writer.high_water();

        // Beyond the window: rejected.
        let bad = prefix + window + jump;
        let err = writer.push(bad, bad).unwrap_err();
        prop_assert_eq!(err.idx, bad);
        prop_assert_eq!(err.next_emit, prefix);
        prop_assert_eq!(err.window, window);

        // Duplicate of an emitted index: rejected (when a prefix exists).
        if prefix > 0 {
            prop_assert!(writer.push(prefix - 1, 0).is_err());
        }

        // State is intact: the next in-order push still works and nothing
        // was buffered by the rejected pushes.
        prop_assert_eq!(writer.high_water(), high_before);
        writer.push(prefix, prefix).unwrap();
        prop_assert_eq!(emitted.borrow().clone(), (0..=prefix).collect::<Vec<_>>());
    }

    /// The resilience engines push `Result` slots: `Ok(output)` for
    /// completed pairs and `Err(fault)` for quarantined ones. Whatever
    /// random subset of pairs is faulted and however completions permute
    /// within the window, the writer must emit every slot exactly once, in
    /// input order, with each slot's Ok/Err-ness preserved — and faulted
    /// slots must obey the same `< window` buffer bound as successes.
    #[test]
    fn interleaved_ok_and_err_slots_emit_in_input_order(
        n in 1usize..60,
        window in 1usize..9,
        fault_mask in proptest::collection::vec(any::<bool>(), 60..61),
        choices in proptest::collection::vec(0usize..1_000_000, 1..200),
    ) {
        let emitted = RefCell::new(Vec::new());
        let mut writer = OrderedWriter::new(window, |idx, v: Result<usize, usize>| {
            // Ok and Err both round-trip with their index.
            assert_eq!(v.unwrap_or_else(|e| e), idx);
            emitted.borrow_mut().push((idx, v.is_err()));
        });
        let slot = |idx: usize| if fault_mask[idx] { Err(idx) } else { Ok(idx) };
        let mut outstanding: Vec<usize> = Vec::new();
        let mut next_admit = 0usize;
        let mut step = 0usize;
        while emitted.borrow().len() < n {
            let can_admit = next_admit < n && next_admit < writer.next_emit() + window;
            let options = outstanding.len() + usize::from(can_admit);
            prop_assert!(options > 0, "deadlocked schedule");
            let sel = choices[step % choices.len()] % options;
            if sel < outstanding.len() {
                let idx = outstanding.swap_remove(sel);
                prop_assert!(writer.push(idx, slot(idx)).is_ok());
            } else {
                outstanding.push(next_admit);
                next_admit += 1;
            }
            // Quarantined slots occupy buffer space exactly like outputs.
            prop_assert!(writer.pending_len() < window);
            step += 1;
        }
        let want: Vec<_> = (0..n).map(|i| (i, fault_mask[i])).collect();
        prop_assert_eq!(emitted.borrow().clone(), want);
        prop_assert!(writer.is_drained());
        prop_assert!(writer.high_water() < window);
    }

    /// A `ReorderOverflow` rejection while quarantined slots are already
    /// buffered leaves the writer able to finish the run: after the bad
    /// push is rejected, draining the remaining in-window slots (holes
    /// included) still emits the full input order.
    #[test]
    fn overflow_rejection_recovers_with_holes_buffered(
        window in 2usize..9,
        err_slots in proptest::collection::vec(any::<bool>(), 9..10),
        jump in 0usize..40,
    ) {
        let emitted = RefCell::new(Vec::new());
        let mut writer = OrderedWriter::new(window, |idx, v: Result<usize, usize>| {
            emitted.borrow_mut().push((idx, v.is_err()));
        });
        let slot = |idx: usize| if err_slots[idx] { Err(idx) } else { Ok(idx) };
        // Buffer the window's tail out of order — holes and all — leaving
        // index 0 outstanding so nothing emits yet.
        for idx in (1..window).rev() {
            writer.push(idx, slot(idx)).unwrap();
        }
        prop_assert_eq!(writer.pending_len(), window - 1);

        // An out-of-window arrival is rejected without disturbing the
        // buffered holes...
        let bad = window + jump;
        let err = writer.push(bad, slot(0)).unwrap_err();
        prop_assert_eq!(err.next_emit, 0);
        prop_assert_eq!(writer.pending_len(), window - 1);
        prop_assert!(emitted.borrow().is_empty());

        // ...and the missing head releases the whole window in input
        // order, Ok/Err shape intact.
        writer.push(0, slot(0)).unwrap();
        let want: Vec<_> = (0..window).map(|i| (i, err_slots[i])).collect();
        prop_assert_eq!(emitted.borrow().clone(), want);
        prop_assert!(writer.is_drained());
        prop_assert_eq!(writer.high_water(), window - 1);
    }
}
