//! Differential suite: [`run_streamed`] against [`run_batched`] — the
//! streaming pipeline must be an observationally identical drop-in for the
//! materialized batch engine (same outputs, same input order, same modeled
//! throughput) across random workloads, channel counts 1–4, and buffer
//! depths down to the fully lock-stepped depth-1 case, while its high-water
//! marks prove the bounded-memory contract.

use dphls_core::KernelConfig;
use dphls_host::{run_batched, run_streamed_collect, StreamConfig};
use dphls_kernels::{GlobalLinear, LinearParams};
use dphls_seq::gen::ReadSimulator;
use dphls_seq::Base;
use dphls_systolic::{CycleModelParams, Device, KernelCycleInfo};
use std::convert::Infallible;

fn device(config: KernelConfig) -> Device {
    Device::new(
        config,
        CycleModelParams::dphls(),
        KernelCycleInfo {
            sym_bits: 2,
            has_walk: true,
            ii: 1,
        },
        250.0,
    )
}

/// Varied-length pairs (short reads mixed with near-max ones) so the
/// cost-ranked dealing and stealing paths all fire.
fn varied_workload(n: usize, max_len: usize, seed: u64) -> Vec<(Vec<Base>, Vec<Base>)> {
    let mut sim = ReadSimulator::new(seed);
    (0..n)
        .map(|i| {
            let len = 4 + (i * 13) % (max_len - 8);
            let (r, q) = sim.read_pair(len.max(4), 0.2);
            let mut q = q.into_vec();
            q.truncate(max_len - 4);
            let mut r = r.into_vec();
            r.truncate(max_len - 4);
            (q, r)
        })
        .collect()
}

/// The differential contract, checked at one (nk, buffer, window) point.
fn assert_streamed_matches_batched(
    wl: &[(Vec<Base>, Vec<Base>)],
    config: KernelConfig,
    stream_cfg: StreamConfig,
) {
    let params = LinearParams::<i16>::dna();
    let dev = device(config);
    let batched = run_batched::<GlobalLinear>(&dev, &params, wl).unwrap();
    let (streamed, stream) = run_streamed_collect::<GlobalLinear, _, Infallible>(
        &dev,
        &params,
        wl.iter().cloned().map(Ok),
        stream_cfg,
    )
    .unwrap();

    // Identical outputs in identical (input) order, bit for bit.
    assert_eq!(
        streamed.outputs, batched.outputs,
        "outputs differ at {stream_cfg:?}"
    );
    // Identical per-channel accounting shape and totals: stealing makes the
    // exact split nondeterministic in both engines, but each must account
    // for every alignment exactly once across the same channel count.
    assert_eq!(streamed.per_channel.len(), batched.per_channel.len());
    assert_eq!(
        streamed.per_channel.iter().sum::<usize>(),
        wl.len(),
        "streamed per-channel totals at {stream_cfg:?}"
    );
    assert_eq!(batched.per_channel.iter().sum::<usize>(), wl.len());
    assert_eq!(stream.pairs, wl.len());
    // Identical single-pass modeled throughput: bit-identical runs produce
    // identical BlockStats, so the derived figure must agree exactly.
    assert!(
        (streamed.throughput_aps - batched.throughput_aps).abs() < 1e-6,
        "throughput {} vs {} at {stream_cfg:?}",
        streamed.throughput_aps,
        batched.throughput_aps
    );
    // Bounded-memory evidence.
    assert!(
        stream.resident_high_water <= stream_cfg.window,
        "resident {} > window {}",
        stream.resident_high_water,
        stream_cfg.window
    );
    assert!(
        stream.reorder_high_water < stream_cfg.window,
        "reorder {} >= window {}",
        stream.reorder_high_water,
        stream_cfg.window
    );
}

#[test]
fn random_workloads_nk_1_to_4_buffer_depths() {
    for nk in 1..=4usize {
        let wl = varied_workload(37 + nk * 5, 72, 0xBEEF + nk as u64);
        let config = KernelConfig::new(8, 1, nk).with_max_lengths(96, 96);
        // Buffer depths from the issue (1 = lockstep producer, 2 = minimal
        // double-buffering, 64 = deep) crossed with tight and roomy windows.
        for buffer in [1usize, 2, 64] {
            for window in [1usize, 3, 128] {
                assert_streamed_matches_batched(
                    &wl,
                    config,
                    StreamConfig {
                        buffer,
                        window,
                        nb_slots: 0,
                    },
                );
            }
        }
    }
}

#[test]
fn lockstep_buffer_depth_one_window_one_is_fully_serial() {
    let wl = varied_workload(21, 64, 7);
    let config = KernelConfig::new(8, 1, 3).with_max_lengths(96, 96);
    let params = LinearParams::<i16>::dna();
    let dev = device(config);
    let (streamed, stream) = run_streamed_collect::<GlobalLinear, _, Infallible>(
        &dev,
        &params,
        wl.iter().cloned().map(Ok),
        StreamConfig {
            buffer: 1,
            window: 1,
            nb_slots: 0,
        },
    )
    .unwrap();
    let batched = run_batched::<GlobalLinear>(&dev, &params, &wl).unwrap();
    assert_eq!(streamed.outputs, batched.outputs);
    // Window 1 admits one pair at a time: nothing is ever held out of
    // order and at most one pair is in flight.
    assert_eq!(stream.reorder_high_water, 0);
    assert_eq!(stream.resident_high_water, 1);
}

/// The ISSUE acceptance workload: the banded point the bench gate runs.
/// Debug builds scale the pair count down (the differential property is
/// scale-invariant); `cargo test --release` runs the full 10k pairs.
#[test]
fn banded_10k_workload_bit_identical_and_bounded() {
    let pairs = if cfg!(debug_assertions) { 400 } else { 10_000 };
    let len = 256;
    let mut sim = ReadSimulator::new(0xD9);
    let wl: Vec<(Vec<Base>, Vec<Base>)> = sim
        .read_pairs(pairs, len, 0.2)
        .into_iter()
        .map(|(r, mut q)| {
            q.truncate(len);
            let mut r = r.into_vec();
            r.truncate(len);
            (q.into_vec(), r)
        })
        .collect();
    let config = KernelConfig::new(32, 1, 4)
        .with_max_lengths(len, len)
        .with_banding(16);
    let stream_cfg = StreamConfig::default();

    let params = LinearParams::<i16>::dna();
    let dev = device(config);
    let batched = run_batched::<GlobalLinear>(&dev, &params, &wl).unwrap();
    let (streamed, stream) = run_streamed_collect::<GlobalLinear, _, Infallible>(
        &dev,
        &params,
        wl.iter().cloned().map(Ok),
        stream_cfg,
    )
    .unwrap();

    // Bit-identical scores, tracebacks, and ordering.
    assert_eq!(streamed.outputs, batched.outputs);
    assert!((streamed.throughput_aps - batched.throughput_aps).abs() < 1e-6);
    // Peak resident pair count bounded by buffer + window: the channel
    // holds at most `buffer` pairs by construction and the high-water mark
    // proves the scheduler+writer side never exceeded `window`.
    assert!(
        stream.resident_high_water <= stream_cfg.window,
        "resident high water {} exceeds window {}",
        stream.resident_high_water,
        stream_cfg.window
    );
    assert!(stream.reorder_high_water < stream_cfg.window);
}

#[test]
fn streaming_from_fasta_source_matches_batched() {
    // End-to-end front half: pairs streamed out of FASTA text through
    // FastaStream must produce the same alignments as the materialized
    // parse + batch path.
    let wl = varied_workload(16, 48, 99);
    let mut text = String::new();
    for (i, (q, r)) in wl.iter().enumerate() {
        let qs: String = q.iter().map(|b| b.to_char()).collect();
        let rs: String = r.iter().map(|b| b.to_char()).collect();
        text.push_str(&format!(">q{i}\n{qs}\n>r{i}\n{rs}\n"));
    }
    let config = KernelConfig::new(8, 1, 2).with_max_lengths(64, 64);
    let params = LinearParams::<i16>::dna();
    let dev = device(config);

    let mut records = dphls_seq::fasta::FastaStream::new(text.as_bytes());
    let source = std::iter::from_fn(move || {
        let q = records.next()?;
        let r = records.next().expect("records come in pairs");
        Some(q.and_then(|q| {
            let r = r?;
            Ok((q.dna()?.into_vec(), r.dna()?.into_vec()))
        }))
    });
    let (streamed, _) = run_streamed_collect::<GlobalLinear, _, _>(
        &dev,
        &params,
        source,
        StreamConfig {
            buffer: 2,
            window: 8,
            nb_slots: 0,
        },
    )
    .unwrap();
    let batched = run_batched::<GlobalLinear>(&dev, &params, &wl).unwrap();
    assert_eq!(streamed.outputs, batched.outputs);
}
