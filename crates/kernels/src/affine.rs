//! Affine-gap-penalty kernels (Gotoh): Global Affine (#2), Local Affine
//! (#4), and Banded Local Affine (#12, no traceback — the BSW comparand).
//!
//! Three scoring layers per cell (`N_LAYERS = 3`): `H` (layer 0), `I`
//! (layer 1, vertical gaps consuming the query) and `D` (layer 2, horizontal
//! gaps consuming the reference). The 4-bit traceback pointer packs the H
//! direction (2 bits) plus "gap opened here" flags for I and D — exactly why
//! the paper quotes `ap_uint<4>` for kernel #2 (§4 step 5).

use crate::params::AffineParams;
use dphls_core::score::argmax;
use dphls_core::{
    AdaptiveKernel, BestCellRule, KernelId, KernelMeta, KernelSpec, LaneKernel, LayerVec,
    Objective, Score, TbMove, TbPtr, TbState, TracebackSpec,
};
use dphls_seq::Base;
use std::marker::PhantomData;

/// Pointer flag bit: the I (vertical) layer took the gap-open transition.
const FLAG_I_OPEN: u8 = 0b01;
/// Pointer flag bit: the D (horizontal) layer took the gap-open transition.
const FLAG_D_OPEN: u8 = 0b10;

/// Traceback FSM states (paper Listing 3 left).
const MM: TbState = TbState(0);
const INS: TbState = TbState(1);
const DEL: TbState = TbState(2);

fn affine_pe<S: Score>(
    p: &AffineParams<S>,
    q: Base,
    r: Base,
    diag: &LayerVec<S>,
    up: &LayerVec<S>,
    left: &LayerVec<S>,
    clamp_zero: bool,
) -> (LayerVec<S>, TbPtr) {
    // I(i,j) = max(H(i-1,j) + open, I(i-1,j) + extend)
    let i_open = up.get(0).add(p.gap_open);
    let i_ext = up.get(1).add(p.gap_extend);
    let (i_val, i_opened) = i_ext.max_with(i_open);
    // D(i,j) = max(H(i,j-1) + open, D(i,j-1) + extend)
    let d_open = left.get(0).add(p.gap_open);
    let d_ext = left.get(2).add(p.gap_extend);
    let (d_val, d_opened) = d_ext.max_with(d_open);
    // H(i,j) = max(diag + s, I, D) [, 0 for local]
    let sub = if q == r { p.match_score } else { p.mismatch };
    let mat = diag.get(0).add(sub);
    let (h, dir) = if clamp_zero {
        argmax([
            (S::zero(), TbPtr::END),
            (mat, TbPtr::DIAG),
            (i_val, TbPtr::UP),
            (d_val, TbPtr::LEFT),
        ])
    } else {
        argmax([(mat, TbPtr::DIAG), (i_val, TbPtr::UP), (d_val, TbPtr::LEFT)])
    };
    let flags = (i_opened as u8 * FLAG_I_OPEN) | (d_opened as u8 * FLAG_D_OPEN);
    (
        LayerVec::from_slice(&[h, i_val, d_val]),
        TbPtr::with_flags(dir, flags),
    )
}

/// Multi-lane affine PE: up to `W` wavefront cells per call,
/// all three layers (H/I/D) in structure-of-arrays form. Bit-identical to
/// [`affine_pe`] — same [`Score::max_with`] "rhs wins only if strictly
/// greater" semantics for the gap-open decisions and the same [`argmax`]
/// candidate order for the H layer — with the per-layer passes laid out as
/// straight-line array loops the autovectorizer can widen (`W = 8` for the
/// exact `i16` path, `W = 16`/`32` for the `i8` fast path).
#[allow(clippy::too_many_arguments)]
fn affine_pe_lanes<S: Score, const W: usize>(
    p: &AffineParams<S>,
    q: &[Base],
    r_rev: &[Base],
    diag: &[LayerVec<S>],
    up: &[LayerVec<S>],
    left: &[LayerVec<S>],
    out: &mut [LayerVec<S>],
    ptrs: &mut [TbPtr],
    clamp_zero: bool,
) {
    let n = q.len();
    debug_assert!((1..=W).contains(&n));
    // One up-front narrowing per slice so the gather/scatter loops below
    // carry no per-element bounds checks.
    let (q, r_rev) = (&q[..n], &r_rev[..n]);
    let (diag, up, left) = (&diag[..n], &up[..n], &left[..n]);
    let zero = S::zero();
    // Gather the three layers into padded fixed-width arrays; dead tail
    // lanes compute garbage (saturating ops, no side effects) and are never
    // written back.
    let mut h_up = [zero; W];
    let mut i_up = [zero; W];
    let mut h_left = [zero; W];
    let mut d_left = [zero; W];
    let mut h_diag = [zero; W];
    let mut sub = [zero; W];
    for t in 0..n {
        h_up[t] = up[t].get(0);
        i_up[t] = up[t].get(1);
        h_left[t] = left[t].get(0);
        d_left[t] = left[t].get(2);
        h_diag[t] = diag[t].get(0);
        sub[t] = if q[t] == r_rev[n - 1 - t] {
            p.match_score
        } else {
            p.mismatch
        };
    }
    // Fixed-trip-count recurrence: identical `max_with` ("rhs wins only if
    // strictly greater") semantics and argmax candidate order as the scalar
    // PE, expressed as branchless compare/select chains.
    let mut h_out = [zero; W];
    let mut i_out = [zero; W];
    let mut d_out = [zero; W];
    let mut ptr_out = [0u8; W];
    for t in 0..W {
        // I(i,j) = max(H(i-1,j) + open, I(i-1,j) + extend)
        let i_open = h_up[t].add(p.gap_open);
        let i_ext = i_up[t].add(p.gap_extend);
        let (i_val, i_opened) = i_ext.max_with(i_open);
        // D(i,j) = max(H(i,j-1) + open, D(i,j-1) + extend)
        let d_open = h_left[t].add(p.gap_open);
        let d_ext = d_left[t].add(p.gap_extend);
        let (d_val, d_opened) = d_ext.max_with(d_open);
        // H = argmax([(0, END)?, (mat, DIAG), (I, UP), (D, LEFT)]).
        let mat = h_diag[t].add(sub[t]);
        let (mut h, mut dir) = if clamp_zero {
            let (b, won) = zero.max_with(mat);
            (b, if won { TbPtr::DIAG.0 } else { TbPtr::END.0 })
        } else {
            (mat, TbPtr::DIAG.0)
        };
        let (b, won) = h.max_with(i_val);
        h = b;
        dir = if won { TbPtr::UP.0 } else { dir };
        let (b, won) = h.max_with(d_val);
        h = b;
        dir = if won { TbPtr::LEFT.0 } else { dir };
        h_out[t] = h;
        i_out[t] = i_val;
        d_out[t] = d_val;
        ptr_out[t] =
            dir | ((i_opened as u8 * FLAG_I_OPEN) << 2) | ((d_opened as u8 * FLAG_D_OPEN) << 2);
    }
    let (out, ptrs) = (&mut out[..n], &mut ptrs[..n]);
    for t in 0..n {
        out[t] = LayerVec::from_slice(&[h_out[t], i_out[t], d_out[t]]);
        ptrs[t] = TbPtr(ptr_out[t]);
    }
}

/// The three-state affine traceback FSM: in `INS`/`DEL` the walk follows the
/// gap layer until the cell whose pointer says the gap was opened from `H`.
fn affine_tb(state: TbState, ptr: TbPtr) -> (TbState, TbMove) {
    let i_opened = ptr.flags() & FLAG_I_OPEN != 0;
    let d_opened = ptr.flags() & FLAG_D_OPEN != 0;
    match state {
        s if s == INS => (if i_opened { MM } else { INS }, TbMove::Up),
        s if s == DEL => (if d_opened { MM } else { DEL }, TbMove::Left),
        _ => match ptr.direction() {
            TbPtr::DIAG => (MM, TbMove::Diag),
            TbPtr::UP => (if i_opened { MM } else { INS }, TbMove::Up),
            TbPtr::LEFT => (if d_opened { MM } else { DEL }, TbMove::Left),
            _ => (MM, TbMove::Stop),
        },
    }
}

/// Gotoh global boundary: `H(0,j) = D(0,j) = open + (j−1)·extend`, vertical
/// layer unreachable (and symmetrically for the first column).
fn affine_ramp<S: Score>(p: &AffineParams<S>, k: usize, vertical: bool) -> LayerVec<S> {
    if k == 0 {
        return LayerVec::from_slice(&[S::zero(), S::neg_inf(), S::neg_inf()]);
    }
    let cost = S::from_f64(p.gap_open.to_f64() + (k - 1) as f64 * p.gap_extend.to_f64());
    if vertical {
        LayerVec::from_slice(&[cost, cost, S::neg_inf()])
    } else {
        LayerVec::from_slice(&[cost, S::neg_inf(), cost])
    }
}

fn zero_affine_init<S: Score>() -> LayerVec<S> {
    LayerVec::from_slice(&[S::zero(), S::neg_inf(), S::neg_inf()])
}

macro_rules! affine_kernel {
    (
        $(#[$doc:meta])*
        $name:ident, id: $id:expr, kname: $kname:expr,
        clamp: $clamp:expr, tb: $tbspec:expr, tb_bits: $tb_bits:expr,
        init_row: $init_row:expr, init_col: $init_col:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name<S = i16>(PhantomData<S>);

        impl<S: Score> KernelSpec for $name<S> {
            type Sym = Base;
            type Score = S;
            type Params = AffineParams<S>;

            fn meta() -> KernelMeta {
                KernelMeta {
                    id: KernelId($id),
                    name: $kname,
                    n_layers: 3,
                    tb_bits: $tb_bits,
                    objective: Objective::Maximize,
                    traceback: $tbspec,
                }
            }

            #[inline]
            fn init_row(params: &Self::Params, j: usize) -> LayerVec<S> {
                let f: fn(&AffineParams<S>, usize) -> LayerVec<S> = $init_row;
                f(params, j)
            }

            #[inline]
            fn init_col(params: &Self::Params, i: usize) -> LayerVec<S> {
                let f: fn(&AffineParams<S>, usize) -> LayerVec<S> = $init_col;
                f(params, i)
            }

            #[inline]
            fn pe(
                params: &Self::Params,
                q: Base,
                r: Base,
                diag: &LayerVec<S>,
                up: &LayerVec<S>,
                left: &LayerVec<S>,
            ) -> (LayerVec<S>, TbPtr) {
                affine_pe(params, q, r, diag, up, left, $clamp)
            }

            #[inline]
            fn tb_step(state: TbState, ptr: TbPtr) -> (TbState, TbMove) {
                affine_tb(state, ptr)
            }
        }

        impl<S: Score, const W: usize> LaneKernel<W> for $name<S> {
            #[inline]
            fn pe_lanes(
                params: &Self::Params,
                q: &[Base],
                r_rev: &[Base],
                diag: &[LayerVec<S>],
                up: &[LayerVec<S>],
                left: &[LayerVec<S>],
                out: &mut [LayerVec<S>],
                ptrs: &mut [TbPtr],
            ) {
                affine_pe_lanes::<S, W>(params, q, r_rev, diag, up, left, out, ptrs, $clamp)
            }
        }

        impl AdaptiveKernel for $name<i16> {
            type Lo = $name<i8>;

            fn lo_params(params: &AffineParams<i16>) -> Option<AffineParams<i8>> {
                params.narrow_i8()
            }
        }
    };
}

affine_kernel!(
    /// Kernel #2 — Global Affine alignment (Gotoh), the GACT comparand of
    /// Figs 4–5 and the kernel the long-read tiling driver runs.
    GlobalAffine, id: 2, kname: "Global Affine (Gotoh)",
    clamp: false, tb: TracebackSpec::global(), tb_bits: 4,
    init_row: |p, j| affine_ramp(p, j, false),
    init_col: |p, i| affine_ramp(p, i, true)
);

affine_kernel!(
    /// Kernel #4 — Local Affine alignment (Smith-Waterman-Gotoh).
    LocalAffine, id: 4, kname: "Local Affine (Smith-Waterman-Gotoh)",
    clamp: true, tb: TracebackSpec::local(), tb_bits: 4,
    init_row: |_, _| zero_affine_init(),
    init_col: |_, _| zero_affine_init()
);

affine_kernel!(
    /// Kernel #12 — Banded Local Affine alignment, score-only (the paper
    /// disables traceback to match the BSW accelerator \[12\]); the band comes
    /// from [`dphls_core::KernelConfig::banding`].
    BandedLocalAffine, id: 12, kname: "Banded Local Affine",
    clamp: true, tb: TracebackSpec::score_only(BestCellRule::AllCells), tb_bits: 0,
    init_row: |_, _| zero_affine_init(),
    init_col: |_, _| zero_affine_init()
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{GlobalLinear, LocalLinear};
    use crate::params::LinearParams;
    use dphls_core::LANE_WIDTH;
    use dphls_core::{run_reference, run_reference_full, Banding};
    use dphls_seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn p16() -> AffineParams<i16> {
        AffineParams::dna()
    }

    #[test]
    fn identical_sequences_all_match() {
        let s = dna("ACGTACGTACGT");
        let out = run_reference::<GlobalAffine>(&p16(), s.as_slice(), s.as_slice(), Banding::None);
        assert_eq!(out.best_score, 24);
        assert_eq!(out.alignment.unwrap().cigar(), "12M");
    }

    #[test]
    fn long_gap_cheaper_than_linear_equivalent() {
        // One 6-base deletion: affine cost = open + 5*extend = -10,
        // vs linear with gap=-2 per base = -12.
        let q = dna("ACGTACGTACGT");
        let r = dna("ACGTACGTACGTGGGGGG");
        let affine =
            run_reference::<GlobalAffine>(&p16(), q.as_slice(), r.as_slice(), Banding::None);
        let linear = run_reference::<GlobalLinear>(
            &LinearParams::<i16> {
                match_score: 2,
                mismatch: -3,
                gap: -2,
            },
            q.as_slice(),
            r.as_slice(),
            Banding::None,
        );
        assert_eq!(affine.best_score, 24 - 10);
        assert!(affine.best_score > linear.best_score);
        // And the gap is one contiguous run in the cigar.
        let aln = affine.alignment.unwrap();
        assert_eq!(aln.cigar(), "12M6D");
    }

    #[test]
    fn gap_runs_are_contiguous() {
        let q = dna("AAAACCCCGGGG");
        let r = dna("AAAAGGGG");
        let out = run_reference::<GlobalAffine>(&p16(), q.as_slice(), r.as_slice(), Banding::None);
        let aln = out.alignment.unwrap();
        // Affine prefers one 4-long insertion over scattered gaps.
        assert_eq!(aln.cigar(), "4M4I4M");
        assert!(aln.is_consistent());
    }

    #[test]
    fn affine_boundary_values() {
        let (_, m) = run_reference_full::<GlobalAffine>(
            &p16(),
            dna("ACGT").as_slice(),
            dna("ACGT").as_slice(),
            Banding::None,
        );
        assert_eq!(m.score(0, 0), 0);
        assert_eq!(m.score(0, 1), -5); // open
        assert_eq!(m.score(0, 3), -7); // open + 2*extend
        assert_eq!(m.score(3, 0), -7);
    }

    #[test]
    fn local_affine_is_non_negative_and_at_least_local_linear_with_affine_gaps() {
        let q = dna("CCCCGATTACAGGGG");
        let r = dna("TTGATTACATT");
        let out = run_reference::<LocalAffine>(&p16(), q.as_slice(), r.as_slice(), Banding::None);
        assert_eq!(out.best_score, 14); // GATTACA = 7 matches x 2
        assert!(out.best_score >= 0);
        let aln = out.alignment.unwrap();
        assert_eq!(aln.cigar(), "7M");
    }

    #[test]
    fn local_affine_zero_for_disjoint_alphabets() {
        let out = run_reference::<LocalAffine>(
            &p16(),
            dna("AAAAA").as_slice(),
            dna("CCCCC").as_slice(),
            Banding::None,
        );
        assert_eq!(out.best_score, 0);
    }

    #[test]
    fn local_affine_matches_local_linear_when_gaps_equal() {
        // With open == extend, affine degenerates to linear.
        let pa = AffineParams::<i16> {
            match_score: 2,
            mismatch: -3,
            gap_open: -2,
            gap_extend: -2,
        };
        let pl = LinearParams::<i16> {
            match_score: 2,
            mismatch: -3,
            gap: -2,
        };
        let q = dna("ACGGTTACGT");
        let r = dna("AGGTTACGGT");
        let a = run_reference::<LocalAffine>(&pa, q.as_slice(), r.as_slice(), Banding::None);
        let l = run_reference::<LocalLinear>(&pl, q.as_slice(), r.as_slice(), Banding::None);
        assert_eq!(a.best_score, l.best_score);
    }

    #[test]
    fn banded_local_affine_reports_score_without_alignment() {
        let q = dna("ACGTACGTAC");
        let r = dna("ACGTTCGTAC");
        let out = run_reference::<BandedLocalAffine>(
            &p16(),
            q.as_slice(),
            r.as_slice(),
            Banding::Fixed { half_width: 4 },
        );
        assert!(out.alignment.is_none());
        assert!(out.best_score > 0);
        // Wide band reproduces the unbanded local affine score.
        let unbanded =
            run_reference::<LocalAffine>(&p16(), q.as_slice(), r.as_slice(), Banding::None);
        let wide = run_reference::<BandedLocalAffine>(
            &p16(),
            q.as_slice(),
            r.as_slice(),
            Banding::Fixed { half_width: 10 },
        );
        assert_eq!(wide.best_score, unbanded.best_score);
    }

    #[test]
    fn metas() {
        assert_eq!(GlobalAffine::<i16>::meta().id, KernelId(2));
        assert_eq!(GlobalAffine::<i16>::meta().n_layers, 3);
        assert_eq!(GlobalAffine::<i16>::meta().tb_bits, 4);
        assert_eq!(LocalAffine::<i16>::meta().id, KernelId(4));
        assert_eq!(BandedLocalAffine::<i16>::meta().id, KernelId(12));
        assert!(!BandedLocalAffine::<i16>::meta().traceback.has_walk());
        assert_eq!(BandedLocalAffine::<i16>::meta().tb_bits, 0);
    }

    #[test]
    fn pe_lanes_matches_scalar_pe_lane_by_lane() {
        // Direct check of the three-layer vectorized override: H/I/D values,
        // direction bits, and gap-open flags must all match the scalar PE.
        let p = p16();
        let q: Vec<Base> = dna("ACGTACGT").into_vec();
        let r_rev: Vec<Base> = dna("CAGTTCGA").into_vec();
        let n = q.len();
        let mk = |h: &[i16]| -> Vec<LayerVec<i16>> {
            h.iter()
                .enumerate()
                .map(|(t, &v)| {
                    LayerVec::from_slice(&[v, v - (t as i16 % 3), v - 2 + (t as i16 % 2)])
                })
                .collect()
        };
        let diag = mk(&[0, 2, -4, 6, 0, -2, 4, 1]);
        let up = mk(&[1, -1, 3, 3, 0, 5, -6, 2]);
        let left = mk(&[-2, 4, 4, -3, 0, 1, 2, 2]);
        for clamp in [false, true] {
            let mut out = vec![LayerVec::splat(3, 0i16); n];
            let mut ptrs = vec![TbPtr::END; n];
            affine_pe_lanes::<i16, LANE_WIDTH>(
                &p, &q, &r_rev, &diag, &up, &left, &mut out, &mut ptrs, clamp,
            );
            for t in 0..n {
                let (want, wptr) = affine_pe(
                    &p,
                    q[t],
                    r_rev[n - 1 - t],
                    &diag[t],
                    &up[t],
                    &left[t],
                    clamp,
                );
                assert_eq!(out[t], want, "lane {t} clamp={clamp}");
                assert_eq!(ptrs[t], wptr, "lane {t} clamp={clamp}");
            }
        }
    }

    #[test]
    fn fsm_transitions() {
        // In MM, a DIAG pointer stays in MM.
        assert_eq!(affine_tb(MM, TbPtr::DIAG), (MM, TbMove::Diag));
        // Entering a non-opened vertical gap goes to INS and stays there...
        let ptr_ext = TbPtr::with_flags(TbPtr::UP, 0);
        assert_eq!(affine_tb(MM, ptr_ext), (INS, TbMove::Up));
        assert_eq!(affine_tb(INS, ptr_ext), (INS, TbMove::Up));
        // ...until an opened pointer returns to MM.
        let ptr_open = TbPtr::with_flags(TbPtr::UP, FLAG_I_OPEN);
        assert_eq!(affine_tb(INS, ptr_open), (MM, TbMove::Up));
        // Horizontal mirror.
        let ptr_d_open = TbPtr::with_flags(TbPtr::LEFT, FLAG_D_OPEN);
        assert_eq!(affine_tb(MM, ptr_d_open), (MM, TbMove::Left));
        assert_eq!(affine_tb(DEL, TbPtr::LEFT), (DEL, TbMove::Left));
        // END stops.
        assert_eq!(affine_tb(MM, TbPtr::END).1, TbMove::Stop);
    }
}
