//! Runtime kernel dispatch by name for the DNA/`i16` kernel family.
//!
//! The back-end is monomorphized per kernel ([`KernelSpec`] is not
//! object-safe by design, mirroring HLS elaboration), so a front end that
//! receives the kernel name at runtime — the `dphls-serve` wire protocol,
//! a CLI flag — cannot simply look a kernel "object" up in a table.
//! Instead, this module maps a stable snake_case name to a statically
//! typed instantiation and hands it to a caller-supplied
//! [`DnaKernelRunner`], the same visitor discipline as
//! [`crate::registry`] but keyed by name instead of Table 1 id, and
//! restricted to the kernels that share one symbol/score shape
//! (`Sym = `[`Base`]`, Score = i16`) so a single generic continuation can
//! serve every dispatchable kernel.
//!
//! The non-DNA kernels (#8–#10, #14, #15) have per-kernel symbol types
//! (profile columns, complex samples, amino acids) and are deliberately
//! not dispatchable here; a front end for them would need a per-alphabet
//! wire encoding first.

use crate::affine::{BandedLocalAffine, GlobalAffine, LocalAffine};
use crate::linear::{BandedGlobalLinear, GlobalLinear, LocalLinear, Overlap, SemiGlobal};
use crate::params::{AffineParams, LinearParams, TwoPieceParams};
use crate::registry::DEFAULT_BAND;
use crate::two_piece::{BandedGlobalTwoPiece, GlobalTwoPiece};
use dphls_core::{AdaptiveKernel, KernelSpec, LaneKernel};
use dphls_seq::Base;

/// Stable wire/CLI names of every dispatchable kernel, in Table 1 order.
///
/// Each name resolves through [`dispatch_dna`]; the banded entries carry a
/// default band half-width via [`default_banding`].
pub const DISPATCHABLE_KERNELS: [&str; 10] = [
    "global_linear",
    "global_affine",
    "local_linear",
    "local_affine",
    "global_two_piece",
    "overlap",
    "semi_global",
    "banded_global_linear",
    "banded_local_affine",
    "banded_global_two_piece",
];

/// A generic continuation for [`dispatch_dna`]: `run` is instantiated with
/// the statically-typed kernel the requested name resolves to, plus that
/// kernel's default DNA parameters.
///
/// The bound pins the shared shape of the dispatchable family
/// (`Sym = `[`Base`]`, Score = i16`), so implementations can move symbol
/// buffers and score values across a non-generic boundary (a wire
/// protocol, a type-erased session) without per-kernel plumbing.
pub trait DnaKernelRunner {
    /// Value returned through [`dispatch_dna`].
    type Out;

    /// Called with the resolved kernel type and its default parameters.
    ///
    /// The `'static` bound (trivially satisfied by every kernel type)
    /// lets implementations move the instantiation into long-lived
    /// machinery — a spawned engine session, a boxed closure.
    fn run<K>(self, params: K::Params) -> Self::Out
    where
        K: LaneKernel + KernelSpec<Sym = Base, Score = i16> + 'static;
}

/// Resolves `name` (an entry of [`DISPATCHABLE_KERNELS`]) and runs the
/// continuation with the matching kernel type and its default DNA
/// parameters. Returns `None` for unknown names — the caller owns the
/// error surface (e.g. an `unknown kernel` wire frame).
pub fn dispatch_dna<R: DnaKernelRunner>(name: &str, runner: R) -> Option<R::Out> {
    Some(match name {
        "global_linear" => runner.run::<GlobalLinear<i16>>(LinearParams::<i16>::dna()),
        "global_affine" => runner.run::<GlobalAffine<i16>>(AffineParams::<i16>::dna()),
        "local_linear" => runner.run::<LocalLinear<i16>>(LinearParams::<i16>::dna()),
        "local_affine" => runner.run::<LocalAffine<i16>>(AffineParams::<i16>::dna()),
        "global_two_piece" => runner.run::<GlobalTwoPiece<i16>>(TwoPieceParams::<i16>::dna()),
        "overlap" => runner.run::<Overlap<i16>>(LinearParams::<i16>::dna()),
        "semi_global" => runner.run::<SemiGlobal<i16>>(LinearParams::<i16>::dna()),
        "banded_global_linear" => runner.run::<BandedGlobalLinear<i16>>(LinearParams::<i16>::dna()),
        "banded_local_affine" => runner.run::<BandedLocalAffine<i16>>(AffineParams::<i16>::dna()),
        "banded_global_two_piece" => {
            runner.run::<BandedGlobalTwoPiece<i16>>(TwoPieceParams::<i16>::dna())
        }
        _ => return None,
    })
}

/// A generic continuation for [`dispatch_dna_adaptive`]: like
/// [`DnaKernelRunner`] but with the stronger [`AdaptiveKernel`] bound, so
/// implementations may build the saturating-`i8` fast path with exact
/// `i16` escalation for the resolved kernel.
pub trait AdaptiveDnaRunner {
    /// Value returned through [`dispatch_dna_adaptive`].
    type Out;

    /// Called with the resolved adaptive kernel type and its default
    /// parameters.
    fn run<K>(self, params: K::Params) -> Self::Out
    where
        K: AdaptiveKernel + KernelSpec<Sym = Base, Score = i16> + 'static;
}

/// Resolves `name` to an [`AdaptiveKernel`] instantiation and runs the
/// continuation with it. The adaptive family is the linear and affine
/// kernels (8 of the 10 dispatchable names); the two-piece kernels carry
/// a third parameter regime that has no `i8` narrowing yet, so they — and
/// unknown names — return `None`. A front end should fall back to
/// [`dispatch_dna`] (exact precision) when this returns `None` for a name
/// that *does* dispatch there.
pub fn dispatch_dna_adaptive<R: AdaptiveDnaRunner>(name: &str, runner: R) -> Option<R::Out> {
    Some(match name {
        "global_linear" => runner.run::<GlobalLinear<i16>>(LinearParams::<i16>::dna()),
        "global_affine" => runner.run::<GlobalAffine<i16>>(AffineParams::<i16>::dna()),
        "local_linear" => runner.run::<LocalLinear<i16>>(LinearParams::<i16>::dna()),
        "local_affine" => runner.run::<LocalAffine<i16>>(AffineParams::<i16>::dna()),
        "overlap" => runner.run::<Overlap<i16>>(LinearParams::<i16>::dna()),
        "semi_global" => runner.run::<SemiGlobal<i16>>(LinearParams::<i16>::dna()),
        "banded_global_linear" => runner.run::<BandedGlobalLinear<i16>>(LinearParams::<i16>::dna()),
        "banded_local_affine" => runner.run::<BandedLocalAffine<i16>>(AffineParams::<i16>::dna()),
        _ => return None,
    })
}

/// Default band half-width a front end should configure for `name`:
/// [`DEFAULT_BAND`] for the banded kernels (#11–#13), `None` for the
/// full-matrix ones. Unknown names return `None` — pair with
/// [`dispatch_dna`] for existence checks.
pub fn default_banding(name: &str) -> Option<usize> {
    match name {
        "banded_global_linear" | "banded_local_affine" | "banded_global_two_piece" => {
            Some(DEFAULT_BAND)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::{run_reference, Banding, KernelMeta};

    /// A runner that just reports the resolved kernel's metadata.
    struct MetaOf;
    impl DnaKernelRunner for MetaOf {
        type Out = KernelMeta;
        fn run<K>(self, _params: K::Params) -> KernelMeta
        where
            K: LaneKernel + KernelSpec<Sym = Base, Score = i16> + 'static,
        {
            K::meta()
        }
    }

    /// A runner that scores one pair through the reference engine, proving
    /// the dispatched parameters are usable without per-kernel plumbing.
    struct ScoreOne {
        q: Vec<Base>,
        r: Vec<Base>,
        banding: Banding,
    }
    impl DnaKernelRunner for ScoreOne {
        type Out = i16;
        fn run<K>(self, params: K::Params) -> i16
        where
            K: LaneKernel + KernelSpec<Sym = Base, Score = i16> + 'static,
        {
            run_reference::<K>(&params, &self.q, &self.r, self.banding).best_score
        }
    }

    #[test]
    fn every_listed_name_dispatches() {
        let mut ids = Vec::new();
        for name in DISPATCHABLE_KERNELS {
            let meta = dispatch_dna(name, MetaOf).unwrap_or_else(|| panic!("{name} dispatches"));
            ids.push(meta.id.0);
        }
        // Table 1 ids of the DNA/i16 family, in DISPATCHABLE_KERNELS order.
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7, 11, 12, 13]);
    }

    #[test]
    fn unknown_names_return_none() {
        for name in ["", "GLOBAL_LINEAR", "global-linear", "dtw", "protein_local"] {
            assert!(dispatch_dna(name, MetaOf).is_none(), "{name:?}");
        }
    }

    #[test]
    fn banding_defaults_cover_exactly_the_banded_family() {
        for name in DISPATCHABLE_KERNELS {
            let expect = name.starts_with("banded_");
            assert_eq!(default_banding(name).is_some(), expect, "{name}");
        }
        assert_eq!(default_banding("no_such_kernel"), None);
    }

    #[test]
    fn adaptive_family_is_the_linear_and_affine_kernels() {
        struct Nop;
        impl AdaptiveDnaRunner for Nop {
            type Out = ();
            fn run<K>(self, _params: K::Params)
            where
                K: AdaptiveKernel + KernelSpec<Sym = Base, Score = i16> + 'static,
            {
            }
        }
        for name in DISPATCHABLE_KERNELS {
            let expect = !name.contains("two_piece");
            assert_eq!(dispatch_dna_adaptive(name, Nop).is_some(), expect, "{name}");
        }
        assert!(dispatch_dna_adaptive("no_such_kernel", Nop).is_none());
    }

    #[test]
    fn adaptive_dispatch_narrows_default_dna_params() {
        /// Checks the dispatched kernel's default DNA parameters fit the
        /// `i8` envelope, and that the low-precision twin shares the hi
        /// kernel's Table 1 identity.
        struct NarrowCheck;
        impl AdaptiveDnaRunner for NarrowCheck {
            type Out = bool;
            fn run<K>(self, params: K::Params) -> bool
            where
                K: AdaptiveKernel + KernelSpec<Sym = Base, Score = i16> + 'static,
            {
                assert_eq!(K::Lo::meta().id, K::meta().id);
                assert_eq!(K::Lo::meta().objective, K::meta().objective);
                K::lo_params(&params).is_some()
            }
        }
        for name in DISPATCHABLE_KERNELS {
            if let Some(narrowed) = dispatch_dna_adaptive(name, NarrowCheck) {
                assert!(narrowed, "{name}: dna() params escape the i8 envelope");
            }
        }
    }

    #[test]
    fn dispatched_params_score_a_pair() {
        let mut sim = dphls_seq::gen::ReadSimulator::new(7);
        let (r, q) = sim.read_pair(48, 0.1);
        for name in DISPATCHABLE_KERNELS {
            let banding = match default_banding(name) {
                Some(half_width) => Banding::Fixed { half_width },
                None => Banding::None,
            };
            let score = dispatch_dna(
                name,
                ScoreOne {
                    q: q.clone().into_vec(),
                    r: r.clone().into_vec(),
                    banding,
                },
            )
            .unwrap_or_else(|| panic!("{name} dispatches"));
            // Near-identical 48-mers must align positively everywhere.
            assert!(score > 0, "{name} scored {score}");
        }
    }
}
