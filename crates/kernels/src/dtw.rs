//! Dynamic Time Warping kernels: DTW over complex signals (#9) and
//! semi-global DTW over integer squiggles (#14, the SquiggleFilter
//! comparand).
//!
//! Both are **min**-objective kernels (paper §2.2.2d): the recurrence
//! replaces `max` with `min` and the boundary uses `+∞` instead of gap
//! ramps. The substitution "score" is a distance computed from the symbols
//! themselves — squared Euclidean distance between complex samples for #9
//! (two multipliers per PE, which is why DTW's DSP usage scales with NPE in
//! Fig 3E), absolute difference for #14.

use crate::params::NoParams;
use dphls_core::score::argmin;
use dphls_core::{
    BestCellRule, KernelId, KernelMeta, KernelSpec, LayerVec, Objective, Score, TbMove, TbPtr,
    TbState, TracebackSpec,
};
use dphls_seq::Complex;
use std::marker::PhantomData;

/// The paper's fixed-point signal score type (`ap_fixed<32,26>`, Listing 1).
pub type DtwScore = dphls_fixed::ApFixed<32, 26>;

/// Kernel #9 — Dynamic Time Warping over complex-valued signals
/// (basecalling workloads): `S(i,j) = dist(Qᵢ, Rⱼ) + min(S(i−1,j),
/// S(i−1,j−1), S(i,j−1))` with a global warping path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dtw<S = DtwScore>(PhantomData<S>);

/// DTW's min-objective recurrence uses the scalar lane fallback.
impl<S: Score, const W: usize> dphls_core::LaneKernel<W> for Dtw<S> {}

impl<S: Score> KernelSpec for Dtw<S> {
    type Sym = Complex;
    type Score = S;
    type Params = NoParams;

    fn meta() -> KernelMeta {
        KernelMeta {
            id: KernelId(9),
            name: "Dynamic Time Warping (DTW)",
            n_layers: 1,
            tb_bits: 2,
            objective: Objective::Minimize,
            traceback: TracebackSpec::global(),
        }
    }

    #[inline]
    fn init_row(_: &NoParams, j: usize) -> LayerVec<S> {
        // S(0,0) = 0, S(0,j>0) = +inf: the path must start at the origin.
        LayerVec::splat(1, if j == 0 { S::zero() } else { S::pos_inf() })
    }

    #[inline]
    fn init_col(_: &NoParams, _i: usize) -> LayerVec<S> {
        LayerVec::splat(1, S::pos_inf())
    }

    #[inline]
    fn pe(
        _: &NoParams,
        q: Complex,
        r: Complex,
        diag: &LayerVec<S>,
        up: &LayerVec<S>,
        left: &LayerVec<S>,
    ) -> (LayerVec<S>, TbPtr) {
        // Squared Euclidean distance, computed in the score datapath.
        let dr = S::from_f64(q.re.to_f64()).sub(S::from_f64(r.re.to_f64()));
        let di = S::from_f64(q.im.to_f64()).sub(S::from_f64(r.im.to_f64()));
        let dist = dr.mul(dr).add(di.mul(di));
        let (m, ptr) = argmin([
            (diag.primary(), TbPtr::DIAG),
            (up.primary(), TbPtr::UP),
            (left.primary(), TbPtr::LEFT),
        ]);
        (LayerVec::splat(1, dist.add(m)), ptr)
    }

    #[inline]
    fn tb_step(state: TbState, ptr: TbPtr) -> (TbState, TbMove) {
        let mv = match ptr.direction() {
            TbPtr::DIAG => TbMove::Diag,
            TbPtr::UP => TbMove::Up,
            TbPtr::LEFT => TbMove::Left,
            _ => TbMove::Stop,
        };
        (state, mv)
    }
}

/// Kernel #14 — semi-global DTW over integer signals (SquiggleFilter /
/// RawHash): the query squiggle aligns end-to-end starting anywhere along
/// the reference (free first row), the result is the minimum last-row cost,
/// and — matching SquiggleFilter — no traceback is performed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sdtw<S = i32>(PhantomData<S>);

/// sDTW uses the scalar lane fallback.
impl<S: Score, const W: usize> dphls_core::LaneKernel<W> for Sdtw<S> {}

impl<S: Score> KernelSpec for Sdtw<S> {
    type Sym = i16;
    type Score = S;
    type Params = NoParams;

    fn meta() -> KernelMeta {
        KernelMeta {
            id: KernelId(14),
            name: "Semi-global DTW (sDTW)",
            n_layers: 1,
            tb_bits: 0,
            objective: Objective::Minimize,
            traceback: TracebackSpec::score_only(BestCellRule::LastRow),
        }
    }

    #[inline]
    fn init_row(_: &NoParams, _j: usize) -> LayerVec<S> {
        // Free start anywhere along the reference.
        LayerVec::splat(1, S::zero())
    }

    #[inline]
    fn init_col(_: &NoParams, _i: usize) -> LayerVec<S> {
        LayerVec::splat(1, S::pos_inf())
    }

    #[inline]
    fn pe(
        _: &NoParams,
        q: i16,
        r: i16,
        diag: &LayerVec<S>,
        up: &LayerVec<S>,
        left: &LayerVec<S>,
    ) -> (LayerVec<S>, TbPtr) {
        // |q - r| in the score datapath (one subtract + one compare).
        let diff = S::from_i32(q as i32).sub(S::from_i32(r as i32));
        let (dist, _) = diff.max_with(S::zero().sub(diff));
        let (m, _) = argmin([
            (diag.primary(), 0u8),
            (up.primary(), 1),
            (left.primary(), 2),
        ]);
        (LayerVec::splat(1, dist.add(m)), TbPtr::END)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::{run_reference, Banding};
    use dphls_seq::gen::{ComplexSignalGenerator, SquiggleSimulator};
    use dphls_seq::{ComplexSeq, DnaSeq, SignalSeq};

    fn csig(vals: &[(f64, f64)]) -> ComplexSeq {
        ComplexSeq::new(vals.iter().map(|&(a, b)| Complex::from_f64(a, b)).collect())
    }

    #[test]
    fn identical_signals_have_zero_distance() {
        let s = csig(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5), (3.0, -1.0)]);
        let out = run_reference::<Dtw>(&NoParams, s.as_slice(), s.as_slice(), Banding::None);
        assert_eq!(out.best_score.to_f64(), 0.0);
        // The warping path of identical signals is the main diagonal.
        assert_eq!(out.alignment.unwrap().cigar(), "4M");
    }

    #[test]
    fn dtw_known_small_case() {
        // 1-D signals embedded as complex with im = 0:
        // a = [0, 1, 2], b = [0, 2]. Squared distances:
        //   d(0,0)=0 d(0,2)=4 / d(1,0)=1 d(1,2)=1 / d(2,0)=4 d(2,2)=0
        // Optimal: (0,0)->(1,1)->(2,2)... DTW cost = 0 + 1 + 0 = 1.
        let a = csig(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = csig(&[(0.0, 0.0), (2.0, 0.0)]);
        let out = run_reference::<Dtw>(&NoParams, a.as_slice(), b.as_slice(), Banding::None);
        assert_eq!(out.best_score.to_f64(), 1.0);
    }

    #[test]
    fn dtw_absorbs_time_warp_cheaply() {
        let mut g = ComplexSignalGenerator::new(7);
        let (a, b) = g.warped_pair(64, 0.25);
        let warped = run_reference::<Dtw>(&NoParams, a.as_slice(), b.as_slice(), Banding::None);
        // Compare against an unrelated signal of the same length.
        let c = ComplexSignalGenerator::new(999).signal(b.len());
        let unrelated = run_reference::<Dtw>(&NoParams, a.as_slice(), c.as_slice(), Banding::None);
        assert!(
            warped.best_score.to_f64() < unrelated.best_score.to_f64(),
            "warped {} !< unrelated {}",
            warped.best_score.to_f64(),
            unrelated.best_score.to_f64()
        );
    }

    #[test]
    fn dtw_path_is_monotone_and_consistent() {
        let mut g = ComplexSignalGenerator::new(3);
        let (a, b) = g.warped_pair(32, 0.3);
        let out = run_reference::<Dtw>(&NoParams, a.as_slice(), b.as_slice(), Banding::None);
        let aln = out.alignment.unwrap();
        assert!(aln.is_consistent());
        assert_eq!(aln.start(), (0, 0));
        assert_eq!(aln.end(), (a.len(), b.len()));
    }

    #[test]
    fn sdtw_finds_embedded_squiggle() {
        // Reference: levels of a 64-base template; query: noisy squiggle of
        // a 16-base window. The min last-row cost must be far below that of
        // a random query of equal length.
        let dna: DnaSeq = {
            let mut g = dphls_seq::gen::GenomeGenerator::new(11);
            g.generate(64)
        };
        let reference = SquiggleSimulator::reference_levels(&dna);
        let window = dna.window(20, 16);
        let mut sim = SquiggleSimulator::new(5).dwell(1, 1).noise(3);
        let query = sim.squiggle(&window);
        let hit = run_reference::<Sdtw>(
            &NoParams,
            query.as_slice(),
            reference.as_slice(),
            Banding::None,
        );

        let other: SignalSeq = SignalSeq::new(vec![100i16; query.len()]);
        let miss = run_reference::<Sdtw>(
            &NoParams,
            other.as_slice(),
            reference.as_slice(),
            Banding::None,
        );
        assert!(hit.best_score < miss.best_score / 10);
        assert!(hit.alignment.is_none());
        // Best cell must be on the last row.
        assert_eq!(hit.best_cell.0, query.len());
    }

    #[test]
    fn sdtw_zero_for_constant_equal_signals() {
        let q = SignalSeq::new(vec![500i16; 8]);
        let r = SignalSeq::new(vec![500i16; 32]);
        let out = run_reference::<Sdtw>(&NoParams, q.as_slice(), r.as_slice(), Banding::None);
        assert_eq!(out.best_score, 0);
    }

    #[test]
    fn sdtw_abs_distance() {
        // Single-sample signals: cost = |q - r|.
        let q = SignalSeq::new(vec![10i16]);
        let r = SignalSeq::new(vec![3i16]);
        let out = run_reference::<Sdtw>(&NoParams, q.as_slice(), r.as_slice(), Banding::None);
        assert_eq!(out.best_score, 7);
        let out2 = run_reference::<Sdtw>(&NoParams, r.as_slice(), q.as_slice(), Banding::None);
        assert_eq!(out2.best_score, 7);
    }

    #[test]
    fn metas() {
        assert_eq!(Dtw::<DtwScore>::meta().id, KernelId(9));
        assert_eq!(Dtw::<DtwScore>::meta().objective, Objective::Minimize);
        assert!(Dtw::<DtwScore>::meta().traceback.has_walk());
        assert_eq!(Sdtw::<i32>::meta().id, KernelId(14));
        assert!(!Sdtw::<i32>::meta().traceback.has_walk());
        assert_eq!(Sdtw::<i32>::meta().traceback.best, BestCellRule::LastRow);
    }
}
