//! The 15 bioinformatics 2-D DP kernels of the paper's Table 1, expressed
//! through the DP-HLS front-end ([`dphls_core::KernelSpec`]).
//!
//! | # | Kernel | Type |
//! |---|--------|------|
//! | 1 | Global Linear (Needleman-Wunsch) | [`GlobalLinear`] |
//! | 2 | Global Affine (Gotoh) | [`GlobalAffine`] |
//! | 3 | Local Linear (Smith-Waterman) | [`LocalLinear`] |
//! | 4 | Local Affine (Smith-Waterman-Gotoh) | [`LocalAffine`] |
//! | 5 | Global Two-piece Affine | [`GlobalTwoPiece`] |
//! | 6 | Overlap | [`Overlap`] |
//! | 7 | Semi-global | [`SemiGlobal`] |
//! | 8 | Profile Alignment | [`ProfileAlign`] |
//! | 9 | Dynamic Time Warping | [`Dtw`] |
//! | 10 | Viterbi (PairHMM) | [`Viterbi`] |
//! | 11 | Banded Global Linear | [`BandedGlobalLinear`] |
//! | 12 | Banded Local Affine | [`BandedLocalAffine`] |
//! | 13 | Banded Global Two-piece Affine | [`BandedGlobalTwoPiece`] |
//! | 14 | Semi-global DTW (sDTW) | [`Sdtw`] |
//! | 15 | Protein Local Linear (BLOSUM62) | [`ProteinLocal`] |
//!
//! Each kernel is generic over its score type, so the same recurrence runs
//! with production types (`i16`, `ApFixed`, …) and with the instrumented
//! [`dphls_core::CountingScore`] used by the resource model. The
//! [`registry`] module enumerates all 15 with default parameters, paper
//! configurations, and representative workloads.
//!
//! # Example
//!
//! ```
//! use dphls_core::{run_reference, Banding};
//! use dphls_kernels::{GlobalLinear, LinearParams};
//! use dphls_seq::DnaSeq;
//!
//! let q: DnaSeq = "ACGTACGT".parse()?;
//! let r: DnaSeq = "ACGAACGT".parse()?;
//! let params = LinearParams::<i16>::dna();
//! let out = run_reference::<GlobalLinear>(&params, q.as_slice(), r.as_slice(), Banding::None);
//! assert!(out.best_score > 0);
//! println!("{}", out.alignment.unwrap().cigar());
//! # Ok::<(), dphls_seq::ParseSeqError>(())
//! ```

// DP scoring matrices are naturally index-addressed; the range-loop lint
// fights the domain idiom here.
#![allow(clippy::needless_range_loop)]

pub mod affine;
pub mod dispatch;
pub mod dtw;
pub mod linear;
pub mod params;
pub mod profile;
pub mod protein;
pub mod registry;
pub mod two_piece;
pub mod viterbi;

pub use affine::{BandedLocalAffine, GlobalAffine, LocalAffine};
pub use dispatch::{
    default_banding, dispatch_dna, dispatch_dna_adaptive, AdaptiveDnaRunner, DnaKernelRunner,
    DISPATCHABLE_KERNELS,
};
pub use dtw::{Dtw, DtwScore, Sdtw};
pub use linear::{BandedGlobalLinear, GlobalLinear, LocalLinear, Overlap, SemiGlobal};
pub use params::{
    AffineParams, LinearParams, NoParams, ProfileParams, ProteinParams, ToCounting, TwoPieceParams,
    ViterbiParams, BLOSUM62,
};
pub use profile::ProfileAlign;
pub use protein::ProteinLocal;
pub use registry::{
    visit_all, visit_kernel, CaseInfo, KernelVisitor, PaperTable2, WorkloadSpec, ALL_KERNEL_IDS,
};
pub use two_piece::{BandedGlobalTwoPiece, GlobalTwoPiece};
pub use viterbi::{Viterbi, ViterbiScore};
