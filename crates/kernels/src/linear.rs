//! Linear-gap-penalty kernels: Global Linear / Needleman-Wunsch (#1),
//! Local Linear / Smith-Waterman (#3), Overlap (#6), Semi-global (#7), and
//! Banded Global Linear (#11).
//!
//! These five kernels share one PE recurrence (paper Fig 1, top-left) and
//! differ only in initialization, traceback strategy, and banding — exactly
//! the "Modifications in DP-HLS" column of Table 1.

use crate::params::LinearParams;
use dphls_core::score::argmax;
use dphls_core::{
    AdaptiveKernel, KernelId, KernelMeta, KernelSpec, LaneKernel, LayerVec, Objective, Score,
    TbMove, TbPtr, TbState, TracebackSpec,
};
use dphls_seq::Base;
use std::marker::PhantomData;

/// Shared PE recurrence for the linear family: one layer, three candidates.
/// `clamp_zero` adds the Smith-Waterman `max(…, 0)` with an `END` pointer
/// (paper Listing 6).
fn linear_pe<S: Score>(
    p: &LinearParams<S>,
    q: Base,
    r: Base,
    diag: &LayerVec<S>,
    up: &LayerVec<S>,
    left: &LayerVec<S>,
    clamp_zero: bool,
) -> (LayerVec<S>, TbPtr) {
    let sub = p.substitution(q == r);
    let mat = diag.primary().add(sub);
    let del = up.primary().add(p.gap);
    let ins = left.primary().add(p.gap);
    let (best, ptr) = if clamp_zero {
        argmax([
            (S::zero(), TbPtr::END),
            (mat, TbPtr::DIAG),
            (del, TbPtr::UP),
            (ins, TbPtr::LEFT),
        ])
    } else {
        argmax([(mat, TbPtr::DIAG), (del, TbPtr::UP), (ins, TbPtr::LEFT)])
    };
    (LayerVec::splat(1, best), ptr)
}

/// Multi-lane linear PE: up to `W` wavefront cells per call in
/// structure-of-arrays form. Bit-identical to [`linear_pe`] — the candidate
/// order and strict-improvement tie-breaks replicate [`argmax`] exactly —
/// but laid out as branch-free passes over `[S; W]` arrays so the
/// saturating adds and compare/selects vectorize (the `i16` kernels at
/// `W = 8` compile to `vpaddsw`/`vpcmpgtw`/blend chains; the `i8` fast path
/// instantiates `W = 16`/`32` over the byte-wide equivalents).
#[allow(clippy::too_many_arguments)]
fn linear_pe_lanes<S: Score, const W: usize>(
    p: &LinearParams<S>,
    q: &[Base],
    r_rev: &[Base],
    diag: &[LayerVec<S>],
    up: &[LayerVec<S>],
    left: &[LayerVec<S>],
    out: &mut [LayerVec<S>],
    ptrs: &mut [TbPtr],
    clamp_zero: bool,
) {
    let n = q.len();
    debug_assert!((1..=W).contains(&n));
    // One up-front narrowing per slice so the gather/scatter loops below
    // carry no per-element bounds checks.
    let (q, r_rev) = (&q[..n], &r_rev[..n]);
    let (diag, up, left) = (&diag[..n], &up[..n], &left[..n]);
    let zero = S::zero();
    // Gather into padded fixed-width arrays; the dead tail lanes compute
    // garbage (saturating ops, no side effects) and are never written back.
    let mut d = [zero; W];
    let mut u = [zero; W];
    let mut l = [zero; W];
    let mut sub = [zero; W];
    for t in 0..n {
        d[t] = diag[t].primary();
        u[t] = up[t].primary();
        l[t] = left[t].primary();
        sub[t] = p.substitution(q[t] == r_rev[n - 1 - t]);
    }
    // Fixed-trip-count arithmetic and selection: same reduction as
    // argmax([(0, END)?, (mat, DIAG), (del, UP), (ins, LEFT)]) — later
    // candidates win only if strictly greater — expressed as branchless
    // compare/select chains over whole arrays.
    let mut best = [zero; W];
    let mut dir = [0u8; W];
    for t in 0..W {
        let mat = d[t].add(sub[t]);
        let del = u[t].add(p.gap);
        let ins = l[t].add(p.gap);
        let (mut b, mut dr) = if clamp_zero {
            let (b, won) = zero.max_with(mat);
            (b, if won { TbPtr::DIAG.0 } else { TbPtr::END.0 })
        } else {
            (mat, TbPtr::DIAG.0)
        };
        let (m, won) = b.max_with(del);
        b = m;
        dr = if won { TbPtr::UP.0 } else { dr };
        let (m, won) = b.max_with(ins);
        b = m;
        dr = if won { TbPtr::LEFT.0 } else { dr };
        best[t] = b;
        dir[t] = dr;
    }
    let (out, ptrs) = (&mut out[..n], &mut ptrs[..n]);
    for t in 0..n {
        out[t] = LayerVec::splat(1, best[t]);
        ptrs[t] = TbPtr(dir[t]);
    }
}

/// Flat-port variant of [`linear_pe_lanes`] for the engine's single-layer
/// structure-of-arrays wavefront path: the neighbor and output streams are
/// plain score slices, so the gathers and scatters are contiguous
/// `copy_from_slice` vector moves instead of per-lane `LayerVec` walks, and
/// the saturation guard is fused into the lane body — one branchless
/// OR-reduction over the freshly computed `best` array while it is still in
/// registers (free for exact score types, whose `needs_escalation` is
/// constant `false`). Bit-identical to [`linear_pe`] lane by lane.
#[allow(clippy::too_many_arguments)]
fn linear_pe_lanes_primary<S: Score, const W: usize>(
    p: &LinearParams<S>,
    q: &[Base],
    r_rev: &[Base],
    diag: &[S],
    up: &[S],
    left: &[S],
    out: &mut [S],
    ptrs: &mut [TbPtr],
    clamp_zero: bool,
) -> bool {
    let n = q.len();
    debug_assert!((1..=W).contains(&n));
    let (q, r_rev) = (&q[..n], &r_rev[..n]);
    let zero = S::zero();
    // Contiguous vector-copy gathers; the dead tail lanes hold zeros and
    // compute garbage (saturating ops, no side effects) that is neither
    // written back nor consulted by the guard.
    let mut d = [zero; W];
    let mut u = [zero; W];
    let mut l = [zero; W];
    let mut sub = [zero; W];
    d[..n].copy_from_slice(&diag[..n]);
    u[..n].copy_from_slice(&up[..n]);
    l[..n].copy_from_slice(&left[..n]);
    for t in 0..n {
        sub[t] = p.substitution(q[t] == r_rev[n - 1 - t]);
    }
    // Same fixed-trip-count branchless selection as linear_pe_lanes.
    let mut best = [zero; W];
    let mut dir = [0u8; W];
    for t in 0..W {
        let mat = d[t].add(sub[t]);
        let del = u[t].add(p.gap);
        let ins = l[t].add(p.gap);
        let (mut b, mut dr) = if clamp_zero {
            let (b, won) = zero.max_with(mat);
            (b, if won { TbPtr::DIAG.0 } else { TbPtr::END.0 })
        } else {
            (mat, TbPtr::DIAG.0)
        };
        let (m, won) = b.max_with(del);
        b = m;
        dr = if won { TbPtr::UP.0 } else { dr };
        let (m, won) = b.max_with(ins);
        b = m;
        dr = if won { TbPtr::LEFT.0 } else { dr };
        best[t] = b;
        dir[t] = dr;
    }
    let mut escalate = false;
    for t in 0..n {
        escalate |= best[t].needs_escalation();
    }
    out[..n].copy_from_slice(&best[..n]);
    for t in 0..n {
        ptrs[t] = TbPtr(dir[t]);
    }
    escalate
}

/// Shared single-state traceback FSM (paper Listing 7).
fn linear_tb(state: TbState, ptr: TbPtr) -> (TbState, TbMove) {
    let mv = match ptr.direction() {
        TbPtr::DIAG => TbMove::Diag,
        TbPtr::UP => TbMove::Up,
        TbPtr::LEFT => TbMove::Left,
        _ => TbMove::Stop,
    };
    (state, mv)
}

/// Boundary scores that accumulate the gap penalty (`j × gap`), paper
/// Listing 4.
fn gap_ramp<S: Score>(gap: S, k: usize) -> LayerVec<S> {
    LayerVec::splat(1, S::from_f64(gap.to_f64() * k as f64))
}

/// Zero boundary (local / overlap / semi-global free ends).
fn zero_init<S: Score>() -> LayerVec<S> {
    LayerVec::splat(1, S::zero())
}

macro_rules! linear_kernel {
    (
        $(#[$doc:meta])*
        $name:ident, id: $id:expr, kname: $kname:expr,
        clamp: $clamp:expr, tb: $tbspec:expr,
        init_row: $init_row:expr, init_col: $init_col:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name<S = i16>(PhantomData<S>);

        impl<S: Score> KernelSpec for $name<S> {
            type Sym = Base;
            type Score = S;
            type Params = LinearParams<S>;

            fn meta() -> KernelMeta {
                KernelMeta {
                    id: KernelId($id),
                    name: $kname,
                    n_layers: 1,
                    tb_bits: 2,
                    objective: Objective::Maximize,
                    traceback: $tbspec,
                }
            }

            #[inline]
            fn init_row(params: &Self::Params, j: usize) -> LayerVec<S> {
                let f: fn(&LinearParams<S>, usize) -> LayerVec<S> = $init_row;
                f(params, j)
            }

            #[inline]
            fn init_col(params: &Self::Params, i: usize) -> LayerVec<S> {
                let f: fn(&LinearParams<S>, usize) -> LayerVec<S> = $init_col;
                f(params, i)
            }

            #[inline]
            fn pe(
                params: &Self::Params,
                q: Base,
                r: Base,
                diag: &LayerVec<S>,
                up: &LayerVec<S>,
                left: &LayerVec<S>,
            ) -> (LayerVec<S>, TbPtr) {
                linear_pe(params, q, r, diag, up, left, $clamp)
            }

            #[inline]
            fn tb_step(state: TbState, ptr: TbPtr) -> (TbState, TbMove) {
                linear_tb(state, ptr)
            }
        }

        impl<S: Score, const W: usize> LaneKernel<W> for $name<S> {
            #[inline]
            fn pe_lanes(
                params: &Self::Params,
                q: &[Base],
                r_rev: &[Base],
                diag: &[LayerVec<S>],
                up: &[LayerVec<S>],
                left: &[LayerVec<S>],
                out: &mut [LayerVec<S>],
                ptrs: &mut [TbPtr],
            ) {
                linear_pe_lanes::<S, W>(params, q, r_rev, diag, up, left, out, ptrs, $clamp)
            }

            #[inline]
            fn pe_lanes_primary(
                params: &Self::Params,
                q: &[Base],
                r_rev: &[Base],
                diag: &[S],
                up: &[S],
                left: &[S],
                out: &mut [S],
                ptrs: &mut [TbPtr],
            ) -> bool {
                linear_pe_lanes_primary::<S, W>(
                    params, q, r_rev, diag, up, left, out, ptrs, $clamp,
                )
            }
        }

        impl AdaptiveKernel for $name<i16> {
            type Lo = $name<i8>;

            fn lo_params(params: &LinearParams<i16>) -> Option<LinearParams<i8>> {
                params.narrow_i8()
            }
        }
    };
}

linear_kernel!(
    /// Kernel #1 — Global Linear alignment (Needleman-Wunsch), the paper's
    /// baseline kernel: gap-ramp initialization, global traceback.
    GlobalLinear, id: 1, kname: "Global Linear (Needleman-Wunsch)",
    clamp: false, tb: TracebackSpec::global(),
    init_row: |p, j| gap_ramp(p.gap, j),
    init_col: |p, i| gap_ramp(p.gap, i)
);

linear_kernel!(
    /// Kernel #3 — Local Linear alignment (Smith-Waterman): zero
    /// initialization, scores clamped at zero, traceback from the global
    /// maximum to the first zero-score cell.
    LocalLinear, id: 3, kname: "Local Linear (Smith-Waterman)",
    clamp: true, tb: TracebackSpec::local(),
    init_row: |_, _| zero_init(),
    init_col: |_, _| zero_init()
);

linear_kernel!(
    /// Kernel #6 — Overlap alignment (suffix–prefix matching for genome
    /// assembly): free initialization, best cell in the last row or column,
    /// traceback to the top row or leftmost column.
    Overlap, id: 6, kname: "Overlap Alignment",
    clamp: false, tb: TracebackSpec::overlap(),
    init_row: |_, _| zero_init(),
    init_col: |_, _| zero_init()
);

linear_kernel!(
    /// Kernel #7 — Semi-global alignment (short-read mapping): the query
    /// aligns end-to-end against a reference substring; free reference ends,
    /// gap-ramped query start.
    SemiGlobal, id: 7, kname: "Semi-global Alignment",
    clamp: false, tb: TracebackSpec::semi_global(),
    init_row: |_, _| zero_init(),
    init_col: |p, i| gap_ramp(p.gap, i)
);

linear_kernel!(
    /// Kernel #11 — Banded Global Linear alignment: identical recurrence to
    /// #1; the fixed band is applied by the engines from
    /// [`dphls_core::KernelConfig::banding`] (paper §4 step 6's `BANDING` /
    /// `BANDWIDTH` macros).
    BandedGlobalLinear, id: 11, kname: "Banded Global Linear",
    clamp: false, tb: TracebackSpec::global(),
    init_row: |p, j| gap_ramp(p.gap, j),
    init_col: |p, i| gap_ramp(p.gap, i)
);

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::LANE_WIDTH;
    use dphls_core::{run_reference, run_reference_full, Banding, BestCellRule};
    use dphls_seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn nw_identical_sequences_score_full_match() {
        let p = LinearParams::<i16>::unit();
        let s = dna("ACGTACGT");
        let out = run_reference::<GlobalLinear>(&p, s.as_slice(), s.as_slice(), Banding::None);
        assert_eq!(out.best_score, 8);
        assert_eq!(out.best_cell, (8, 8));
        let aln = out.alignment.unwrap();
        assert_eq!(aln.cigar(), "8M");
        assert!(aln.is_consistent());
    }

    #[test]
    fn nw_fig1_example() {
        // The paper's Fig 1 walkthrough: ACTG vs ACTC with +1/-1/-1
        // fills H(4,4) = 2 (3 matches, 1 mismatch at the end... the figure
        // shows bottom-right = 2).
        let p = LinearParams::<i16>::unit();
        let out = run_reference::<GlobalLinear>(
            &p,
            dna("ACTG").as_slice(),
            dna("ACTC").as_slice(),
            Banding::None,
        );
        assert_eq!(out.best_score, 2);
    }

    #[test]
    fn nw_known_matrix_values() {
        let p = LinearParams::<i16>::unit();
        let (_, m) = run_reference_full::<GlobalLinear>(
            &p,
            dna("ACTG").as_slice(),
            dna("ACTC").as_slice(),
            Banding::None,
        );
        // Boundary ramp
        assert_eq!(m.score(0, 0), 0);
        assert_eq!(m.score(0, 4), -4);
        assert_eq!(m.score(4, 0), -4);
        // First row of fills from Fig 1: 1, 0, -1, -2
        assert_eq!(m.score(1, 1), 1);
        assert_eq!(m.score(1, 2), 0);
        assert_eq!(m.score(2, 2), 2);
        assert_eq!(m.score(3, 3), 3);
        assert_eq!(m.score(4, 4), 2);
    }

    #[test]
    fn nw_is_symmetric_in_score() {
        let p = LinearParams::<i16>::dna();
        let a = dna("ACGTTGCA");
        let b = dna("AGGTTGA");
        let s1 = run_reference::<GlobalLinear>(&p, a.as_slice(), b.as_slice(), Banding::None);
        let s2 = run_reference::<GlobalLinear>(&p, b.as_slice(), a.as_slice(), Banding::None);
        assert_eq!(s1.best_score, s2.best_score);
    }

    #[test]
    fn sw_score_is_non_negative_and_finds_motif() {
        let p = LinearParams::<i16>::dna();
        // Common motif "GATTACA" embedded in junk on both sides.
        let a = dna("CCCCGATTACACCCC");
        let b = dna("TTTTTGATTACATTTTT");
        let out = run_reference::<LocalLinear>(&p, a.as_slice(), b.as_slice(), Banding::None);
        assert_eq!(out.best_score, 14); // 7 matches x 2
        let aln = out.alignment.unwrap();
        assert_eq!(aln.cigar(), "7M");
        assert_eq!(aln.identity(a.as_slice(), b.as_slice()), Some(1.0));
    }

    #[test]
    fn sw_unrelated_sequences_score_zero_floor() {
        let p = LinearParams::<i16>::dna();
        let out = run_reference::<LocalLinear>(
            &p,
            dna("AAAA").as_slice(),
            dna("CCCC").as_slice(),
            Banding::None,
        );
        assert_eq!(out.best_score, 0);
    }

    #[test]
    fn overlap_finds_suffix_prefix() {
        let p = LinearParams::<i16>::dna();
        // suffix of a = prefix of b = "ACGTACGT"
        let a = dna("TTTTACGTACGT");
        let b = dna("ACGTACGTGGGG");
        let out = run_reference::<Overlap>(&p, a.as_slice(), b.as_slice(), Banding::None);
        assert_eq!(out.best_score, 16); // 8 matches x 2
        let aln = out.alignment.unwrap();
        // Path must start on a boundary (free start) and end on last row/col.
        let (si, sj) = aln.start();
        assert!(si == 0 || sj == 0);
        let (ei, ej) = aln.end();
        assert!(ei == a.len() || ej == b.len());
    }

    #[test]
    fn semi_global_aligns_query_end_to_end() {
        let p = LinearParams::<i16>::dna();
        let q = dna("ACGTAC");
        let r = dna("TTTTTACGTACTTTTT");
        let out = run_reference::<SemiGlobal>(&p, q.as_slice(), r.as_slice(), Banding::None);
        assert_eq!(out.best_score, 12); // 6 matches
        let aln = out.alignment.unwrap();
        assert_eq!(aln.query_span(), q.len()); // end-to-end in the query
        assert_eq!(aln.start().0, 0);
        assert_eq!(aln.end().0, q.len());
    }

    #[test]
    fn banded_equals_unbanded_when_band_covers_matrix() {
        let p = LinearParams::<i16>::dna();
        let a = dna("ACGTTGCATG");
        let b = dna("ACGATGCTTG");
        let full = run_reference::<GlobalLinear>(&p, a.as_slice(), b.as_slice(), Banding::None);
        let banded = run_reference::<BandedGlobalLinear>(
            &p,
            a.as_slice(),
            b.as_slice(),
            Banding::Fixed { half_width: 10 },
        );
        assert_eq!(full.best_score, banded.best_score);
        assert_eq!(full.alignment, banded.alignment);
    }

    #[test]
    fn narrow_band_computes_fewer_cells() {
        let p = LinearParams::<i16>::dna();
        let a = dna("ACGTTGCATGACGTTGCATG");
        let b = dna("ACGTTGCATGACGTTGCATG");
        let full =
            run_reference::<BandedGlobalLinear>(&p, a.as_slice(), b.as_slice(), Banding::None);
        let banded = run_reference::<BandedGlobalLinear>(
            &p,
            a.as_slice(),
            b.as_slice(),
            Banding::Fixed { half_width: 2 },
        );
        assert!(banded.cells_computed < full.cells_computed);
        // Identical sequences stay on the diagonal: same score.
        assert_eq!(banded.best_score, full.best_score);
    }

    #[test]
    fn gap_ramp_matches_listing4() {
        let p = LinearParams::<i16>::dna();
        let v = GlobalLinear::<i16>::init_row(&p, 5);
        assert_eq!(v.primary(), -10); // 5 * gap(-2)
        assert_eq!(GlobalLinear::<i16>::init_col(&p, 0).primary(), 0);
    }

    #[test]
    fn metas_are_distinct_and_correct() {
        assert_eq!(GlobalLinear::<i16>::meta().id, KernelId(1));
        assert_eq!(LocalLinear::<i16>::meta().id, KernelId(3));
        assert_eq!(Overlap::<i16>::meta().id, KernelId(6));
        assert_eq!(SemiGlobal::<i16>::meta().id, KernelId(7));
        assert_eq!(BandedGlobalLinear::<i16>::meta().id, KernelId(11));
        assert_eq!(
            LocalLinear::<i16>::meta().traceback.best,
            BestCellRule::AllCells
        );
        assert_eq!(
            SemiGlobal::<i16>::meta().traceback.best,
            BestCellRule::LastRow
        );
        for m in [GlobalLinear::<i16>::meta(), LocalLinear::<i16>::meta()] {
            assert_eq!(m.n_layers, 1);
            assert_eq!(m.tb_bits, 2);
        }
    }

    #[test]
    fn pe_lanes_matches_scalar_pe_lane_by_lane() {
        // Direct unit check of the vectorized override against the scalar
        // recurrence, including the local (clamp-zero) variant's END ties.
        let p = LinearParams::<i16>::dna();
        let q: Vec<Base> = dna("ACGTACGT").into_vec();
        let r_rev: Vec<Base> = dna("TGCATGCA").into_vec();
        let n = q.len();
        let mk = |vals: &[i16]| -> Vec<LayerVec<i16>> {
            vals.iter().map(|&v| LayerVec::splat(1, v)).collect()
        };
        let diag = mk(&[0, 2, -4, 6, 0, -2, 4, 1]);
        let up = mk(&[1, -1, 3, 3, 0, 5, -6, 2]);
        let left = mk(&[-2, 4, 4, -3, 0, 1, 2, 2]);
        for clamp in [false, true] {
            let mut out = vec![LayerVec::splat(1, 0i16); n];
            let mut ptrs = vec![TbPtr::END; n];
            linear_pe_lanes::<i16, LANE_WIDTH>(
                &p, &q, &r_rev, &diag, &up, &left, &mut out, &mut ptrs, clamp,
            );
            for t in 0..n {
                let (want, wptr) = linear_pe(
                    &p,
                    q[t],
                    r_rev[n - 1 - t],
                    &diag[t],
                    &up[t],
                    &left[t],
                    clamp,
                );
                assert_eq!(out[t], want, "lane {t} clamp={clamp}");
                assert_eq!(ptrs[t], wptr, "lane {t} clamp={clamp}");
            }
        }
    }

    #[test]
    fn deletion_appears_in_global_cigar() {
        let p = LinearParams::<i16>::dna();
        let q = dna("ACGTACGT");
        let r = dna("ACGTTACGT"); // one extra T in the reference
        let out = run_reference::<GlobalLinear>(&p, q.as_slice(), r.as_slice(), Banding::None);
        let aln = out.alignment.unwrap();
        assert_eq!(aln.query_span(), 8);
        assert_eq!(aln.ref_span(), 9);
        assert!(aln.cigar().contains('D'), "cigar {}", aln.cigar());
    }
}
