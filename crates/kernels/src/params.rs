//! `ScoringParams` structs shared by the 15 kernels (paper §4 step 1.3).
//!
//! Every params struct is generic over the [`Score`] type so the same kernel
//! can run with a concrete score (`i16`, `ApFixed`, …) or with the
//! instrumented [`CountingScore`] used by the FPGA resource model; the
//! [`ToCounting`] trait performs that mapping.

use dphls_core::{CountingScore, Score, I8_PARAM_LIMIT};

/// Value-exact `i16 → i8` narrowing inside the adaptive fast path's sound
/// parameter envelope, `|v| ≤ I8_PARAM_LIMIT`.
fn narrow_i8(v: i16) -> Option<i8> {
    (-I8_PARAM_LIMIT..=I8_PARAM_LIMIT)
        .contains(&v)
        .then_some(v as i8)
}

/// Maps a params struct from score type `S` to `CountingScore<S>` so the
/// kernel's PE function can be executed under instrumentation.
pub trait ToCounting<S: Score> {
    /// The counting-typed mirror of this struct.
    type Counted;
    /// Wraps every score-typed field.
    fn to_counting(&self) -> Self::Counted;
}

/// Linear gap penalty parameters (kernels #1, #3, #6, #7, #11; paper
/// Listing 2 left). `gap` is the (negative) score added per gap symbol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearParams<S> {
    /// Score added for a symbol match.
    pub match_score: S,
    /// Score added for a substitution.
    pub mismatch: S,
    /// Score added per gap symbol (negative).
    pub gap: S,
}

impl<S: Score> LinearParams<S> {
    /// The classic `+1 / −1 / −1` scheme of the paper's Fig 1 walkthrough.
    pub fn unit() -> Self {
        Self {
            match_score: S::from_i32(1),
            mismatch: S::from_i32(-1),
            gap: S::from_i32(-1),
        }
    }

    /// A common DNA scheme (`+2 / −3 / −2`) used by the workloads.
    pub fn dna() -> Self {
        Self {
            match_score: S::from_i32(2),
            mismatch: S::from_i32(-3),
            gap: S::from_i32(-2),
        }
    }

    /// The substitution score for an observed symbol comparison — the hook
    /// the kernel PEs, the CPU heuristics, and the `dphls_systolic::xdrop`
    /// extension engine all share, so a parameter change cannot diverge
    /// between the production band and the pruned extension path.
    #[inline]
    pub fn substitution(&self, matched: bool) -> S {
        if matched {
            self.match_score
        } else {
            self.mismatch
        }
    }
}

impl LinearParams<i16> {
    /// The `i8` mirror of these parameters for the adaptive fast path, or
    /// `None` when any magnitude exceeds the sound envelope
    /// ([`dphls_core::I8_PARAM_LIMIT`]) — the adaptive engine then escalates
    /// every pair instead of running an unsound narrow path.
    pub fn narrow_i8(&self) -> Option<LinearParams<i8>> {
        Some(LinearParams {
            match_score: narrow_i8(self.match_score)?,
            mismatch: narrow_i8(self.mismatch)?,
            gap: narrow_i8(self.gap)?,
        })
    }
}

impl<S: Score> ToCounting<S> for LinearParams<S> {
    type Counted = LinearParams<CountingScore<S>>;
    fn to_counting(&self) -> Self::Counted {
        LinearParams {
            match_score: CountingScore::wrap(self.match_score),
            mismatch: CountingScore::wrap(self.mismatch),
            gap: CountingScore::wrap(self.gap),
        }
    }
}

/// Affine gap penalty parameters (kernels #2, #4, #12): opening a gap costs
/// `gap_open`, each further symbol `gap_extend` (both negative, applied as in
/// Gotoh's recurrence — `gap_open` is charged on the H→I/D transition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineParams<S> {
    /// Score added for a symbol match.
    pub match_score: S,
    /// Score added for a substitution.
    pub mismatch: S,
    /// Score added when opening a gap (negative, includes first symbol).
    pub gap_open: S,
    /// Score added per gap extension symbol (negative).
    pub gap_extend: S,
}

impl<S: Score> AffineParams<S> {
    /// A common DNA affine scheme (`+2 / −3 / −5 / −1`).
    pub fn dna() -> Self {
        Self {
            match_score: S::from_i32(2),
            mismatch: S::from_i32(-3),
            gap_open: S::from_i32(-5),
            gap_extend: S::from_i32(-1),
        }
    }
}

impl AffineParams<i16> {
    /// The `i8` mirror of these parameters for the adaptive fast path, or
    /// `None` when any magnitude exceeds the sound envelope
    /// ([`dphls_core::I8_PARAM_LIMIT`]).
    pub fn narrow_i8(&self) -> Option<AffineParams<i8>> {
        Some(AffineParams {
            match_score: narrow_i8(self.match_score)?,
            mismatch: narrow_i8(self.mismatch)?,
            gap_open: narrow_i8(self.gap_open)?,
            gap_extend: narrow_i8(self.gap_extend)?,
        })
    }
}

impl<S: Score> ToCounting<S> for AffineParams<S> {
    type Counted = AffineParams<CountingScore<S>>;
    fn to_counting(&self) -> Self::Counted {
        AffineParams {
            match_score: CountingScore::wrap(self.match_score),
            mismatch: CountingScore::wrap(self.mismatch),
            gap_open: CountingScore::wrap(self.gap_open),
            gap_extend: CountingScore::wrap(self.gap_extend),
        }
    }
}

/// Two-piece affine gap parameters (kernels #5, #13; minimap2-style): the
/// effective gap cost is the **better** of two affine functions, letting long
/// gaps pay the cheaper second slope (paper §2.2.2b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPieceParams<S> {
    /// Score added for a symbol match.
    pub match_score: S,
    /// Score added for a substitution.
    pub mismatch: S,
    /// First-piece gap open (negative, steeper slope for short gaps).
    pub gap_open1: S,
    /// First-piece gap extend (negative).
    pub gap_extend1: S,
    /// Second-piece gap open (negative, higher open cost).
    pub gap_open2: S,
    /// Second-piece gap extend (negative, shallower slope for long gaps).
    pub gap_extend2: S,
}

impl<S: Score> TwoPieceParams<S> {
    /// minimap2-like defaults (`+2/−4`, piece 1 `−4/−2`, piece 2 `−24/−1`).
    pub fn dna() -> Self {
        Self {
            match_score: S::from_i32(2),
            mismatch: S::from_i32(-4),
            gap_open1: S::from_i32(-4),
            gap_extend1: S::from_i32(-2),
            gap_open2: S::from_i32(-24),
            gap_extend2: S::from_i32(-1),
        }
    }
}

impl<S: Score> ToCounting<S> for TwoPieceParams<S> {
    type Counted = TwoPieceParams<CountingScore<S>>;
    fn to_counting(&self) -> Self::Counted {
        TwoPieceParams {
            match_score: CountingScore::wrap(self.match_score),
            mismatch: CountingScore::wrap(self.mismatch),
            gap_open1: CountingScore::wrap(self.gap_open1),
            gap_extend1: CountingScore::wrap(self.gap_extend1),
            gap_open2: CountingScore::wrap(self.gap_open2),
            gap_extend2: CountingScore::wrap(self.gap_extend2),
        }
    }
}

/// Profile-alignment parameters (kernel #8): a 5×5 sum-of-pairs substitution
/// matrix over {A, C, G, T, gap} plus a linear gap score per profile column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileParams<S> {
    /// Sum-of-pairs substitution matrix over {A, C, G, T, −}.
    pub sub: [[S; 5]; 5],
    /// Score added per gapped column (negative), already scaled by depth.
    pub gap: S,
}

impl<S: Score> ProfileParams<S> {
    /// Default sum-of-pairs scheme: match +2, mismatch −1, base↔gap −2,
    /// gap↔gap 0, with a column gap penalty for `depth` sequences.
    pub fn dna(depth: u32) -> Self {
        let m = |a: usize, b: usize| -> i32 {
            match (a, b) {
                (4, 4) => 0,
                (4, _) | (_, 4) => -2,
                _ if a == b => 2,
                _ => -1,
            }
        };
        let mut sub = [[S::zero(); 5]; 5];
        for (a, row) in sub.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                *cell = S::from_i32(m(a, b));
            }
        }
        Self {
            sub,
            // Aligning a column against a gap costs −2 per sequence pair.
            gap: S::from_i32(-2 * depth as i32 * depth as i32),
        }
    }
}

impl<S: Score> ToCounting<S> for ProfileParams<S> {
    type Counted = ProfileParams<CountingScore<S>>;
    fn to_counting(&self) -> Self::Counted {
        let mut sub = [[CountingScore::wrap(S::zero()); 5]; 5];
        for a in 0..5 {
            for b in 0..5 {
                sub[a][b] = CountingScore::wrap(self.sub[a][b]);
            }
        }
        ProfileParams {
            sub,
            gap: CountingScore::wrap(self.gap),
        }
    }
}

/// Pair-HMM Viterbi parameters in log space (kernel #10; paper Listing 2
/// right): transition log-probabilities derived from gap-open (δ) and
/// gap-extend (ε) plus a 5×5 emission matrix for the match state and a flat
/// insert-emission probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViterbiParams<S> {
    /// `log δ` — M→I / M→J transition.
    pub log_delta: S,
    /// `log ε` — I→I / J→J transition.
    pub log_epsilon: S,
    /// `log (1 − 2δ)` — M→M transition.
    pub log_one_minus_2delta: S,
    /// `log (1 − ε)` — I→M / J→M transition.
    pub log_one_minus_epsilon: S,
    /// `log q` — emission probability in the insert states (flat ¼).
    pub log_q: S,
    /// Match-state emission log-probabilities over {A, C, G, T, −} pairs.
    pub emission: [[S; 5]; 5],
}

impl<S: Score> ViterbiParams<S> {
    /// A standard PairHMM parameterization (δ = 0.1, ε = 0.3, 90 % match
    /// emission concentrated on the diagonal).
    pub fn pair_hmm() -> Self {
        let delta: f64 = 0.1;
        let epsilon: f64 = 0.3;
        let p_match = 0.9f64; // P(x,x) in the M state
        let p_sub = (1.0 - p_match) / 3.0;
        let mut emission = [[S::zero(); 5]; 5];
        for (a, row) in emission.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                let p = if a == 4 || b == 4 {
                    1e-6 // padding symbol: effectively never emitted in M
                } else if a == b {
                    p_match / 4.0
                } else {
                    p_sub / 4.0
                };
                *cell = S::from_f64(p.ln());
            }
        }
        Self {
            log_delta: S::from_f64(delta.ln()),
            log_epsilon: S::from_f64(epsilon.ln()),
            log_one_minus_2delta: S::from_f64((1.0 - 2.0 * delta).ln()),
            log_one_minus_epsilon: S::from_f64((1.0 - epsilon).ln()),
            log_q: S::from_f64(0.25f64.ln()),
            emission,
        }
    }
}

impl<S: Score> ToCounting<S> for ViterbiParams<S> {
    type Counted = ViterbiParams<CountingScore<S>>;
    fn to_counting(&self) -> Self::Counted {
        let mut emission = [[CountingScore::wrap(S::zero()); 5]; 5];
        for a in 0..5 {
            for b in 0..5 {
                emission[a][b] = CountingScore::wrap(self.emission[a][b]);
            }
        }
        ViterbiParams {
            log_delta: CountingScore::wrap(self.log_delta),
            log_epsilon: CountingScore::wrap(self.log_epsilon),
            log_one_minus_2delta: CountingScore::wrap(self.log_one_minus_2delta),
            log_one_minus_epsilon: CountingScore::wrap(self.log_one_minus_epsilon),
            log_q: CountingScore::wrap(self.log_q),
            emission,
        }
    }
}

/// Parameters for kernels whose recurrence needs no runtime constants
/// (DTW #9 and sDTW #14: the "score" is a distance computed from the
/// symbols themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoParams;

impl<S: Score> ToCounting<S> for NoParams {
    type Counted = NoParams;
    fn to_counting(&self) -> NoParams {
        NoParams
    }
}

/// Protein substitution parameters (kernel #15): a 20×20 matrix plus linear
/// gap, the 400-entry `ScoringParams` whose BRAM the paper calls out in §7.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProteinParams<S> {
    /// Substitution matrix indexed by [`dphls_seq::alphabet::AMINO_ORDER`].
    pub matrix: [[S; 20]; 20],
    /// Score added per gap symbol (negative).
    pub gap: S,
}

/// The BLOSUM62 substitution matrix in `AMINO_ORDER`
/// (A R N D C Q E G H I L K M F P S T W Y V) — the standard matrix of
/// BLASTp/EMBOSS Water, the baselines for kernel #15.
pub const BLOSUM62: [[i8; 20]; 20] = [
    [
        4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0,
    ],
    [
        -1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3,
    ],
    [
        -2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3,
    ],
    [
        -2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3,
    ],
    [
        0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1,
    ],
    [
        -1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2,
    ],
    [
        -1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2,
    ],
    [
        0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3,
    ],
    [
        -2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3,
    ],
    [
        -1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3,
    ],
    [
        -1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1,
    ],
    [
        -1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2,
    ],
    [
        -1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1,
    ],
    [
        -2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1,
    ],
    [
        -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2,
    ],
    [
        1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2,
    ],
    [
        0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0,
    ],
    [
        -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3,
    ],
    [
        -2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1,
    ],
    [
        0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4,
    ],
];

impl<S: Score> ProteinParams<S> {
    /// BLOSUM62 with gap −6 (EMBOSS Water-like linear gap).
    pub fn blosum62() -> Self {
        let mut matrix = [[S::zero(); 20]; 20];
        for (a, row) in matrix.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                *cell = S::from_i32(BLOSUM62[a][b] as i32);
            }
        }
        Self {
            matrix,
            gap: S::from_i32(-6),
        }
    }
}

impl<S: Score> ToCounting<S> for ProteinParams<S> {
    type Counted = ProteinParams<CountingScore<S>>;
    fn to_counting(&self) -> Self::Counted {
        let mut matrix = [[CountingScore::wrap(S::zero()); 20]; 20];
        for a in 0..20 {
            for b in 0..20 {
                matrix[a][b] = CountingScore::wrap(self.matrix[a][b]);
            }
        }
        ProteinParams {
            matrix,
            gap: CountingScore::wrap(self.gap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_defaults() {
        let p = LinearParams::<i16>::unit();
        assert_eq!(p.match_score, 1);
        assert_eq!(p.gap, -1);
        let d = LinearParams::<i32>::dna();
        assert!(d.mismatch < 0);
    }

    #[test]
    fn affine_open_worse_than_extend() {
        let p = AffineParams::<i16>::dna();
        assert!(p.gap_open < p.gap_extend);
    }

    #[test]
    fn two_piece_slopes_cross() {
        let p = TwoPieceParams::<i32>::dna();
        // Piece 1 is cheaper for short gaps, piece 2 for long gaps.
        let cost1 = |k: i32| p.gap_open1 + (k - 1) * p.gap_extend1;
        let cost2 = |k: i32| p.gap_open2 + (k - 1) * p.gap_extend2;
        assert!(cost1(1) > cost2(1));
        assert!(cost1(100) < cost2(100));
    }

    #[test]
    fn blosum62_is_symmetric_with_positive_diagonal() {
        for a in 0..20 {
            assert!(BLOSUM62[a][a] > 0, "diagonal {a}");
            for b in 0..20 {
                assert_eq!(BLOSUM62[a][b], BLOSUM62[b][a], "asym at {a},{b}");
            }
        }
    }

    #[test]
    fn blosum62_known_entries() {
        // W-W = 11, the largest; A-A = 4; W-A = -3.
        assert_eq!(BLOSUM62[17][17], 11);
        assert_eq!(BLOSUM62[0][0], 4);
        assert_eq!(BLOSUM62[17][0], -3);
    }

    type LogFixed = dphls_fixed::ApFixed<32, 16>;

    #[test]
    fn viterbi_logs_are_negative() {
        let p = ViterbiParams::<LogFixed>::pair_hmm();
        assert!(p.log_delta.to_f64() < 0.0);
        assert!(p.log_epsilon.to_f64() < 0.0);
        assert!(p.log_one_minus_2delta.to_f64() < 0.0);
        // match emission more likely than substitution
        assert!(p.emission[0][0] > p.emission[0][1]);
    }

    #[test]
    fn profile_params_shape() {
        let p = ProfileParams::<i32>::dna(4);
        assert_eq!(p.sub[0][0], 2);
        assert_eq!(p.sub[4][4], 0);
        assert_eq!(p.sub[0][4], -2);
        assert_eq!(p.gap, -32); // -2 * 4 * 4
    }

    #[test]
    fn narrow_i8_is_value_exact_inside_the_envelope() {
        let p = LinearParams::<i16>::dna();
        let n = p.narrow_i8().unwrap();
        assert_eq!(n.match_score as i16, p.match_score);
        assert_eq!(n.mismatch as i16, p.mismatch);
        assert_eq!(n.gap as i16, p.gap);
        let a = AffineParams::<i16>::dna().narrow_i8().unwrap();
        assert_eq!(a.gap_open, -5);
        assert_eq!(a.gap_extend, -1);
    }

    #[test]
    fn narrow_i8_rejects_out_of_envelope_parameters() {
        let mut p = LinearParams::<i16>::dna();
        p.mismatch = -(I8_PARAM_LIMIT + 1);
        assert!(p.narrow_i8().is_none());
        let mut a = AffineParams::<i16>::dna();
        a.match_score = I8_PARAM_LIMIT + 1;
        assert!(a.narrow_i8().is_none());
        // The envelope edge itself is allowed.
        let mut edge = LinearParams::<i16>::dna();
        edge.gap = -I8_PARAM_LIMIT;
        assert_eq!(edge.narrow_i8().unwrap().gap as i16, -I8_PARAM_LIMIT);
    }

    #[test]
    fn counting_wrap_preserves_values() {
        let p = LinearParams::<i16>::dna();
        let c = p.to_counting();
        assert_eq!(c.match_score.value(), p.match_score);
        assert_eq!(c.gap.value(), p.gap);
    }
}
