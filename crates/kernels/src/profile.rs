//! Kernel #8 — Profile Alignment (multiple-sequence-alignment workloads,
//! CLUSTALW/MUSCLE progressive alignment steps).
//!
//! Symbols are profile columns (5-tuples of nucleotide/gap frequencies,
//! §2.2.1) and the substitution score is computed **dynamically** per cell by
//! sum-of-pairs scoring (§2.2.2a): `SP(c₁, c₂) = Σₐ Σᵦ c₁[a]·M[a][b]·c₂[b]` —
//! a 5×5 matrix–vector product plus a dot product per cell. Those ~30
//! multiplies per PE are exactly why kernel #8 tops the DSP column of
//! Table 2 and needs `II = 4`.

use crate::params::ProfileParams;
use dphls_core::score::argmax;
use dphls_core::{
    KernelId, KernelMeta, KernelSpec, LayerVec, Objective, Score, TbMove, TbPtr, TbState,
    TracebackSpec,
};
use dphls_seq::{ProfileColumn, PROFILE_DEPTH};
use std::marker::PhantomData;

/// Kernel #8 — global profile–profile alignment with linear column gaps.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileAlign<S = i32>(PhantomData<S>);

/// Sum-of-pairs score between two profile columns through the score
/// datapath: `c₁ᵀ · M · c₂`.
fn sum_of_pairs<S: Score>(p: &ProfileParams<S>, c1: &ProfileColumn, c2: &ProfileColumn) -> S {
    let mut total = S::zero();
    for a in 0..PROFILE_DEPTH {
        // inner = Σ_b M[a][b] * c2[b]   (matrix-vector row)
        let mut inner = S::zero();
        for b in 0..PROFILE_DEPTH {
            inner = inner.add(p.sub[a][b].mul(S::from_i32(c2.count(b) as i32)));
        }
        // total += c1[a] * inner        (dot product)
        total = total.add(S::from_i32(c1.count(a) as i32).mul(inner));
    }
    total
}

/// Profile alignment uses the scalar lane fallback (per-column PSSM
/// lookups defeat the SoA layout).
impl<S: Score, const W: usize> dphls_core::LaneKernel<W> for ProfileAlign<S> {}

impl<S: Score> KernelSpec for ProfileAlign<S> {
    type Sym = ProfileColumn;
    type Score = S;
    type Params = ProfileParams<S>;

    fn meta() -> KernelMeta {
        KernelMeta {
            id: KernelId(8),
            name: "Profile Alignment",
            n_layers: 1,
            tb_bits: 2,
            objective: Objective::Maximize,
            traceback: TracebackSpec::global(),
        }
    }

    #[inline]
    fn init_row(params: &Self::Params, j: usize) -> LayerVec<S> {
        LayerVec::splat(1, S::from_f64(params.gap.to_f64() * j as f64))
    }

    #[inline]
    fn init_col(params: &Self::Params, i: usize) -> LayerVec<S> {
        LayerVec::splat(1, S::from_f64(params.gap.to_f64() * i as f64))
    }

    #[inline]
    fn pe(
        params: &Self::Params,
        q: ProfileColumn,
        r: ProfileColumn,
        diag: &LayerVec<S>,
        up: &LayerVec<S>,
        left: &LayerVec<S>,
    ) -> (LayerVec<S>, TbPtr) {
        let sp = sum_of_pairs(params, &q, &r);
        let mat = diag.primary().add(sp);
        let del = up.primary().add(params.gap);
        let ins = left.primary().add(params.gap);
        let (best, ptr) = argmax([(mat, TbPtr::DIAG), (del, TbPtr::UP), (ins, TbPtr::LEFT)]);
        (LayerVec::splat(1, best), ptr)
    }

    #[inline]
    fn tb_step(state: TbState, ptr: TbPtr) -> (TbState, TbMove) {
        let mv = match ptr.direction() {
            TbPtr::DIAG => TbMove::Diag,
            TbPtr::UP => TbMove::Up,
            TbPtr::LEFT => TbMove::Left,
            _ => TbMove::Stop,
        };
        (state, mv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::GlobalLinear;
    use crate::params::LinearParams;
    use dphls_core::{run_reference, Banding};
    use dphls_seq::gen::ProfileBuilder;
    use dphls_seq::{DnaSeq, ProfileSeq};

    fn params_depth1() -> ProfileParams<i32> {
        ProfileParams::dna(1)
    }

    #[test]
    fn sum_of_pairs_counts_pairwise_scores() {
        let p = params_depth1();
        // Unanimous A column vs unanimous A column, depth 2:
        // SP = 2*2*match = 8.
        let a2 = ProfileColumn::new([2, 0, 0, 0, 0]);
        assert_eq!(sum_of_pairs(&p, &a2, &a2), 8);
        // A vs C (depth 1): one mismatch pair.
        let a = ProfileColumn::new([1, 0, 0, 0, 0]);
        let c = ProfileColumn::new([0, 1, 0, 0, 0]);
        assert_eq!(sum_of_pairs(&p, &a, &c), -1);
        // A vs gap: -2.
        let g = ProfileColumn::new([0, 0, 0, 0, 1]);
        assert_eq!(sum_of_pairs(&p, &a, &g), -2);
        // gap vs gap: 0.
        assert_eq!(sum_of_pairs(&p, &g, &g), 0);
    }

    #[test]
    fn degenerate_profiles_reduce_to_pairwise_alignment() {
        // Depth-1 profiles of plain sequences must give the same score as
        // Global Linear with (match=2, mismatch=-1, gap=-2).
        let q: DnaSeq = "ACGTTACG".parse().unwrap();
        let r: DnaSeq = "ACGATACG".parse().unwrap();
        let pq = ProfileBuilder::degenerate(&q);
        let pr = ProfileBuilder::degenerate(&r);
        let prof = run_reference::<ProfileAlign>(
            &params_depth1(),
            pq.as_slice(),
            pr.as_slice(),
            Banding::None,
        );
        let lin = run_reference::<GlobalLinear<i32>>(
            &LinearParams::<i32> {
                match_score: 2,
                mismatch: -1,
                gap: -2,
            },
            q.as_slice(),
            r.as_slice(),
            Banding::None,
        );
        assert_eq!(prof.best_score, lin.best_score);
        assert_eq!(
            prof.alignment.unwrap().cigar(),
            lin.alignment.unwrap().cigar()
        );
    }

    #[test]
    fn related_profiles_score_higher_than_unrelated() {
        let mut b = ProfileBuilder::new(42);
        let base = b.profile(48, 4, 0.05);
        // A "related" profile: same builder seed region family.
        let related = base.clone();
        let unrelated = ProfileBuilder::new(777).profile(48, 4, 0.05);
        let p = ProfileParams::<i32>::dna(4);
        let same =
            run_reference::<ProfileAlign>(&p, base.as_slice(), related.as_slice(), Banding::None);
        let diff =
            run_reference::<ProfileAlign>(&p, base.as_slice(), unrelated.as_slice(), Banding::None);
        assert!(same.best_score > diff.best_score);
    }

    #[test]
    fn global_walk_spans_both_profiles() {
        let mut b = ProfileBuilder::new(9);
        let (x, y): (ProfileSeq, ProfileSeq) = b.profile_pair(20, 3, 0.2);
        let p = ProfileParams::<i32>::dna(3);
        let out = run_reference::<ProfileAlign>(&p, x.as_slice(), y.as_slice(), Banding::None);
        let aln = out.alignment.unwrap();
        assert_eq!(aln.start(), (0, 0));
        assert_eq!(aln.end(), (20, 20));
        assert!(aln.is_consistent());
    }

    #[test]
    fn meta() {
        let m = ProfileAlign::<i32>::meta();
        assert_eq!(m.id, KernelId(8));
        assert_eq!(m.n_layers, 1);
        assert!(m.traceback.has_walk());
    }
}
