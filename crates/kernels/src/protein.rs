//! Kernel #15 — Local Linear alignment of protein sequences (EMBOSS Water /
//! BLASTp / DIAMOND workloads).
//!
//! Structurally a Smith-Waterman with a 20-letter alphabet and a full 20×20
//! substitution matrix (BLOSUM62) in `ScoringParams` — the 400-entry table
//! whose on-device storage the paper credits for kernel #15's higher BRAM
//! usage (§7.1).

use crate::params::ProteinParams;
use dphls_core::score::argmax;
use dphls_core::{
    KernelId, KernelMeta, KernelSpec, LayerVec, Objective, Score, TbMove, TbPtr, TbState,
    TracebackSpec,
};
use dphls_seq::AminoAcid;
use std::marker::PhantomData;

/// Kernel #15 — protein Smith-Waterman with a substitution matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProteinLocal<S = i16>(PhantomData<S>);

/// BLOSUM62 table lookups gather per lane; scalar fallback.
impl<S: Score, const W: usize> dphls_core::LaneKernel<W> for ProteinLocal<S> {}

impl<S: Score> KernelSpec for ProteinLocal<S> {
    type Sym = AminoAcid;
    type Score = S;
    type Params = ProteinParams<S>;

    fn meta() -> KernelMeta {
        KernelMeta {
            id: KernelId(15),
            name: "Protein Local Linear (SW + BLOSUM62)",
            n_layers: 1,
            tb_bits: 2,
            objective: Objective::Maximize,
            traceback: TracebackSpec::local(),
        }
    }

    #[inline]
    fn init_row(_: &Self::Params, _j: usize) -> LayerVec<S> {
        LayerVec::splat(1, S::zero())
    }

    #[inline]
    fn init_col(_: &Self::Params, _i: usize) -> LayerVec<S> {
        LayerVec::splat(1, S::zero())
    }

    #[inline]
    fn pe(
        params: &Self::Params,
        q: AminoAcid,
        r: AminoAcid,
        diag: &LayerVec<S>,
        up: &LayerVec<S>,
        left: &LayerVec<S>,
    ) -> (LayerVec<S>, TbPtr) {
        let sub = params.matrix[q.index()][r.index()];
        let mat = diag.primary().add(sub);
        let del = up.primary().add(params.gap);
        let ins = left.primary().add(params.gap);
        let (best, ptr) = argmax([
            (S::zero(), TbPtr::END),
            (mat, TbPtr::DIAG),
            (del, TbPtr::UP),
            (ins, TbPtr::LEFT),
        ]);
        (LayerVec::splat(1, best), ptr)
    }

    #[inline]
    fn tb_step(state: TbState, ptr: TbPtr) -> (TbState, TbMove) {
        let mv = match ptr.direction() {
            TbPtr::DIAG => TbMove::Diag,
            TbPtr::UP => TbMove::Up,
            TbPtr::LEFT => TbMove::Left,
            _ => TbMove::Stop,
        };
        (state, mv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::{run_reference, Banding};
    use dphls_seq::gen::ProteinSampler;
    use dphls_seq::ProteinSeq;

    fn prot(s: &str) -> ProteinSeq {
        s.parse().unwrap()
    }

    fn params() -> ProteinParams<i16> {
        ProteinParams::blosum62()
    }

    #[test]
    fn identical_peptide_scores_blosum_diagonal_sum() {
        // W(11) + W(11) + K(5) + V(4) = 31
        let s = prot("WWKV");
        let out =
            run_reference::<ProteinLocal>(&params(), s.as_slice(), s.as_slice(), Banding::None);
        assert_eq!(out.best_score, 31);
        assert_eq!(out.alignment.unwrap().cigar(), "4M");
    }

    #[test]
    fn finds_conserved_motif_in_junk() {
        // The motif "WWWW" dominates (11 each).
        let q = prot("AAAAWWWWAAAA");
        let r = prot("GGGGWWWWGGGG");
        let out =
            run_reference::<ProteinLocal>(&params(), q.as_slice(), r.as_slice(), Banding::None);
        assert!(out.best_score >= 44);
        let aln = out.alignment.unwrap();
        assert!(aln.cigar().contains('M'));
        assert!(aln.identity(q.as_slice(), r.as_slice()).unwrap() > 0.5);
    }

    #[test]
    fn score_is_non_negative() {
        let mut s = ProteinSampler::new(4);
        let a = s.sample(60);
        let b = s.sample(60);
        let out =
            run_reference::<ProteinLocal>(&params(), a.as_slice(), b.as_slice(), Banding::None);
        assert!(out.best_score >= 0);
    }

    #[test]
    fn homologs_score_higher_than_random() {
        let mut s = ProteinSampler::new(5);
        let (q, hom) = s.homolog_pair(120, 0.8);
        let rnd = ProteinSampler::new(777).sample(hom.len());
        let hit =
            run_reference::<ProteinLocal>(&params(), q.as_slice(), hom.as_slice(), Banding::None);
        let miss =
            run_reference::<ProteinLocal>(&params(), q.as_slice(), rnd.as_slice(), Banding::None);
        assert!(hit.best_score > 2 * miss.best_score);
    }

    #[test]
    fn similar_amino_acids_substitute_positively() {
        // I/V score +3 in BLOSUM62 — a local alignment across an I->V
        // substitution keeps extending.
        let q = prot("KKKIKKK");
        let r = prot("KKKVKKK");
        let out =
            run_reference::<ProteinLocal>(&params(), q.as_slice(), r.as_slice(), Banding::None);
        assert_eq!(out.alignment.unwrap().cigar(), "7M");
    }

    #[test]
    fn meta() {
        let m = ProteinLocal::<i16>::meta();
        assert_eq!(m.id, KernelId(15));
        assert_eq!(m.tb_bits, 2);
        assert!(m.traceback.has_walk());
    }
}
