//! Kernel registry: a uniform way for the experiment harness to enumerate
//! all 15 kernels, with their default parameters, Table 2 configurations,
//! paper-reported reference numbers, measured PE operator counts, and
//! representative workloads.
//!
//! Kernels are statically typed ([`KernelSpec`] is not object-safe by
//! design — the back-end monomorphizes per kernel like HLS elaborates per
//! C++ template instantiation), so enumeration uses a visitor with a generic
//! `visit` method: the registry instantiates each kernel type and hands it
//! to the visitor together with its [`CaseInfo`].

use crate::affine::{BandedLocalAffine, GlobalAffine, LocalAffine};
use crate::dtw::{Dtw, DtwScore, Sdtw};
use crate::linear::{BandedGlobalLinear, GlobalLinear, LocalLinear, Overlap, SemiGlobal};
use crate::params::{
    AffineParams, LinearParams, NoParams, ProfileParams, ProteinParams, ToCounting, TwoPieceParams,
    ViterbiParams,
};
use crate::profile::ProfileAlign;
use crate::protein::ProteinLocal;
use crate::two_piece::{BandedGlobalTwoPiece, GlobalTwoPiece};
use crate::viterbi::{Viterbi, ViterbiScore};
use dphls_core::instrument::count_ops;
use dphls_core::{
    CountingScore, KernelConfig, KernelMeta, KernelSpec, LaneKernel, LayerVec, OpCounts, Score,
};
use dphls_seq::gen::{
    ComplexSignalGenerator, ProfileBuilder, ProteinSampler, ReadSimulator, SquiggleSimulator,
};
use dphls_seq::{Base, Complex, ProfileColumn, Symbol};

/// Paper-reported Table 2 reference values for one kernel (used only for
/// paper-vs-measured comparisons in EXPERIMENTS.md; never fed back into the
/// models).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable2 {
    /// Reported maximum frequency (MHz).
    pub freq_mhz: f64,
    /// Reported throughput (alignments/second) at the optimal config.
    pub aln_per_sec: f64,
    /// Reported resource utilization for one 32-PE block, as fractions of
    /// the device (LUT, FF, BRAM, DSP).
    pub util: [f64; 4],
}

/// Everything the harness needs to know about a kernel besides the
/// recurrence itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseInfo {
    /// The kernel's static metadata.
    pub meta: KernelMeta,
    /// Symbol storage width in bits.
    pub sym_bits: u32,
    /// Score datapath width in bits.
    pub score_bits: u32,
    /// Measured operator counts of one PE-function invocation.
    pub op_counts: OpCounts,
    /// The paper's throughput-optimal `(NPE, NB, NK)` configuration
    /// (Table 2), including default banding for #11–#13.
    pub table2_config: KernelConfig,
    /// Paper-stated initiation-interval override (kernel #8: II = 4).
    pub ii_hint: Option<u32>,
    /// Storage footprint of `ScoringParams` on the device in bits (e.g. the
    /// 20×20 BLOSUM matrix of kernel #15), feeding the BRAM model.
    pub param_table_bits: u32,
    /// Paper-reported reference values.
    pub paper: PaperTable2,
}

/// A visitor over statically-typed kernels. The bound is [`LaneKernel`]
/// (every registry kernel implements it) so visitors can run the systolic
/// back-end's multi-lane engine directly.
pub trait KernelVisitor {
    /// Called once per kernel with its info, default parameters, and a
    /// deterministic workload of `(query, reference)` symbol pairs.
    fn visit<K: LaneKernel>(
        &mut self,
        info: &CaseInfo,
        params: &K::Params,
        workload: &[dphls_core::SeqPair<K>],
    );
}

/// Workload sizing shared across kernels (§6.1's dataset shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// PRNG seed.
    pub seed: u64,
    /// Number of sequence pairs.
    pub pairs: usize,
    /// Target sequence length (the paper's 256 for short kernels).
    pub len: usize,
    /// DNA read error rate (the paper's 0.30).
    pub error_rate: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            seed: 0xD9E5,
            pairs: 20,
            len: 256,
            error_rate: 0.30,
        }
    }
}

/// All Table 1 kernel ids in order.
pub const ALL_KERNEL_IDS: [u8; 15] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];

/// Measures the operator counts of one PE invocation of kernel `K`.
pub fn measure_pe<K: KernelSpec>(params: &K::Params, q: K::Sym, r: K::Sym) -> OpCounts {
    let z = LayerVec::splat(K::meta().n_layers, K::Score::zero());
    let (_, counts) = count_ops(|| K::pe(params, q, r, &z, &z, &z));
    counts
}

fn info<K: KernelSpec>(
    op_counts: OpCounts,
    table2_config: KernelConfig,
    ii_hint: Option<u32>,
    paper: PaperTable2,
) -> CaseInfo {
    let param_table_bits = match K::meta().id.0 {
        1 | 3 | 6 | 7 | 11 => 3 * 16, // LinearParams
        2 | 4 | 12 => 4 * 16,         // AffineParams
        5 | 13 => 6 * 16,             // TwoPieceParams
        8 => 26 * 32,                 // 5x5 sum-of-pairs matrix + gap
        9 | 14 => 0,                  // NoParams
        10 => 30 * 32,                // 5x5 emission + 5 scalars
        15 => 401 * 16,               // BLOSUM62 + gap
        _ => 0,
    };
    CaseInfo {
        meta: K::meta(),
        sym_bits: K::Sym::BITS,
        score_bits: K::Score::BITS,
        op_counts,
        table2_config,
        ii_hint,
        param_table_bits,
        paper,
    }
}

fn paper(freq: f64, thr: f64, lut: f64, ff: f64, bram: f64, dsp: f64) -> PaperTable2 {
    PaperTable2 {
        freq_mhz: freq,
        aln_per_sec: thr,
        util: [lut / 100.0, ff / 100.0, bram / 100.0, dsp / 100.0],
    }
}

fn dna_pairs(wl: &WorkloadSpec, salt: u64) -> Vec<(Vec<Base>, Vec<Base>)> {
    let mut sim = ReadSimulator::new(wl.seed ^ salt);
    sim.read_pairs(wl.pairs, wl.len, wl.error_rate)
        .into_iter()
        .map(|(reference, mut read)| {
            read.truncate(wl.len);
            (read.into_vec(), reference.into_vec())
        })
        .collect()
}

/// Default band half-width for the banded kernels (#11–#13): generous enough
/// to cover 30 %-error indel drift at 256 bp.
pub const DEFAULT_BAND: usize = 32;

// Per-kernel drivers. The counting instantiation reuses the same generic
// kernel type with `CountingScore<S>` substituted for `S`, so the measured
// operator mix is the real recurrence, not a hand-maintained estimate.

fn k01<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = GlobalLinear<i16>;
    type KC = GlobalLinear<CountingScore<i16>>;
    let params = LinearParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(64, 16, 4);
    let pap = paper(250.0, 3.51e6, 0.72, 0.42, 1.78, 0.029);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 1));
}

fn k02<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = GlobalAffine<i16>;
    type KC = GlobalAffine<CountingScore<i16>>;
    let params = AffineParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(32, 16, 4);
    let pap = paper(250.0, 2.85e6, 1.30, 0.517, 1.78, 0.029);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 2));
}

fn k03<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = LocalLinear<i16>;
    type KC = LocalLinear<CountingScore<i16>>;
    let params = LinearParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(32, 16, 5);
    let pap = paper(250.0, 3.43e6, 0.95, 0.63, 1.67, 0.014);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 3));
}

fn k04<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = LocalAffine<i16>;
    type KC = LocalAffine<CountingScore<i16>>;
    let params = AffineParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(32, 16, 4);
    let pap = paper(250.0, 2.71e6, 1.60, 0.75, 1.67, 0.014);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 4));
}

fn k05<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = GlobalTwoPiece<i16>;
    type KC = GlobalTwoPiece<CountingScore<i16>>;
    let params = TwoPieceParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(32, 8, 5).with_target_freq(150.0);
    let pap = paper(150.0, 1.06e6, 2.03, 0.65, 2.67, 0.029);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 5));
}

fn k06<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = Overlap<i16>;
    type KC = Overlap<CountingScore<i16>>;
    let params = LinearParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(32, 16, 4);
    let pap = paper(250.0, 2.73e6, 0.98, 0.66, 1.67, 0.014);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 6));
}

fn k07<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = SemiGlobal<i16>;
    type KC = SemiGlobal<CountingScore<i16>>;
    let params = LinearParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(32, 16, 4);
    let pap = paper(250.0, 3.34e6, 1.17, 0.67, 0.83, 0.014);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 7));
}

fn k08<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = ProfileAlign<i32>;
    type KC = ProfileAlign<CountingScore<i32>>;
    const DEPTH: usize = 4;
    let params = ProfileParams::<i32>::dna(DEPTH as u32);
    let sample = ProfileColumn::new([1, 1, 1, 1, 0]);
    let counts = measure_pe::<KC>(&params.to_counting(), sample, sample);
    let cfg = KernelConfig::new(16, 1, 5).with_target_freq(166.7);
    let pap = paper(166.7, 3.70e4, 3.66, 2.56, 2.56, 28.11);
    let ci = info::<K>(counts, cfg, Some(4), pap);
    let mut b = ProfileBuilder::new(wl.seed ^ 8);
    let workload: Vec<_> = (0..wl.pairs)
        .map(|_| {
            let (x, y) = b.profile_pair(wl.len, DEPTH, 0.2);
            (x.into_vec(), y.into_vec())
        })
        .collect();
    v.visit::<K>(&ci, &params, &workload);
}

fn k09<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = Dtw<DtwScore>;
    type KC = Dtw<CountingScore<DtwScore>>;
    let params = NoParams;
    let (a, b) = (Complex::from_f64(1.5, -0.5), Complex::from_f64(0.25, 1.0));
    let counts = measure_pe::<KC>(&params, a, b);
    let cfg = KernelConfig::new(64, 4, 3).with_target_freq(200.0);
    let pap = paper(200.0, 2.31e5, 1.62, 1.55, 1.88, 2.84);
    let ci = info::<K>(counts, cfg, None, pap);
    let mut g = ComplexSignalGenerator::new(wl.seed ^ 9);
    let workload: Vec<_> = (0..wl.pairs)
        .map(|_| {
            let (x, mut y) = g.warped_pair(wl.len, 0.2);
            y.truncate(wl.len);
            (x.into_vec(), y.into_vec())
        })
        .collect();
    v.visit::<K>(&ci, &params, &workload);
}

fn k10<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = Viterbi<ViterbiScore>;
    type KC = Viterbi<CountingScore<ViterbiScore>>;
    let params = ViterbiParams::<ViterbiScore>::pair_hmm();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(16, 4, 7).with_target_freq(125.0);
    let pap = paper(125.0, 4.90e5, 3.78, 1.69, 1.67, 0.014);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 10));
}

fn k11<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = BandedGlobalLinear<i16>;
    type KC = BandedGlobalLinear<CountingScore<i16>>;
    let params = LinearParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(64, 8, 7)
        .with_target_freq(166.7)
        .with_banding(DEFAULT_BAND);
    let pap = paper(166.7, 2.25e6, 1.02, 0.40, 0.94, 0.029);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 11));
}

fn k12<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = BandedLocalAffine<i16>;
    type KC = BandedLocalAffine<CountingScore<i16>>;
    let params = AffineParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(16, 16, 7)
        .with_target_freq(200.0)
        .with_banding(DEFAULT_BAND);
    let pap = paper(200.0, 4.77e6, 1.44, 0.70, 0.57, 0.014);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 12));
}

fn k13<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = BandedGlobalTwoPiece<i16>;
    type KC = BandedGlobalTwoPiece<CountingScore<i16>>;
    let params = TwoPieceParams::<i16>::dna();
    let counts = measure_pe::<KC>(&params.to_counting(), Base::A, Base::C);
    let cfg = KernelConfig::new(16, 8, 7)
        .with_target_freq(125.0)
        .with_banding(DEFAULT_BAND);
    let pap = paper(125.0, 1.24e6, 2.25, 0.69, 1.83, 0.029);
    let ci = info::<K>(counts, cfg, None, pap);
    v.visit::<K>(&ci, &params, &dna_pairs(wl, 13));
}

fn k14<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = Sdtw<i32>;
    type KC = Sdtw<CountingScore<i32>>;
    let params = NoParams;
    let counts = measure_pe::<KC>(&params, 400i16, 530i16);
    let cfg = KernelConfig::new(32, 16, 5);
    let pap = paper(250.0, 5.16e6, 1.22, 0.76, 0.57, 0.014);
    let ci = info::<K>(counts, cfg, None, pap);
    // Squiggle workload: reference = per-base levels of a len-base template,
    // query = noisy squiggle of a sub-window, truncated to len samples.
    let mut genome = dphls_seq::gen::GenomeGenerator::new(wl.seed ^ 14);
    let template = genome.generate(wl.len.max(16));
    let mut sim = SquiggleSimulator::new(wl.seed ^ 0x41);
    let reference = SquiggleSimulator::reference_levels(&template);
    let workload: Vec<_> = (0..wl.pairs)
        .map(|_| {
            let wlen = (wl.len / 8).max(2).min(template.len());
            let start = (wl.seed as usize + 7) % (template.len() - wlen + 1);
            let window = template.window(start, wlen);
            let mut query = sim.squiggle(&window);
            query.truncate(wl.len);
            (query.into_vec(), reference.clone().into_vec())
        })
        .collect();
    v.visit::<K>(&ci, &params, &workload);
}

fn k15<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    type K = ProteinLocal<i16>;
    type KC = ProteinLocal<CountingScore<i16>>;
    let params = ProteinParams::<i16>::blosum62();
    let counts = measure_pe::<KC>(
        &params.to_counting(),
        dphls_seq::AminoAcid::from_char('W').unwrap(),
        dphls_seq::AminoAcid::from_char('V').unwrap(),
    );
    let cfg = KernelConfig::new(32, 8, 5).with_target_freq(200.0);
    let pap = paper(200.0, 9.33e5, 1.47, 0.95, 2.56, 0.014);
    let ci = info::<K>(counts, cfg, None, pap);
    let mut s = ProteinSampler::new(wl.seed ^ 15);
    let workload: Vec<_> = s
        .homolog_pairs(wl.pairs, wl.len, 0.6)
        .into_iter()
        .map(|(q, mut t)| {
            t.truncate(wl.len);
            (q.into_vec(), t.into_vec())
        })
        .collect();
    v.visit::<K>(&ci, &params, &workload);
}

/// Visits one kernel by Table 1 id.
///
/// # Panics
///
/// Panics if `id` is not in `1..=15`.
pub fn visit_kernel<V: KernelVisitor>(id: u8, v: &mut V, wl: &WorkloadSpec) {
    match id {
        1 => k01(v, wl),
        2 => k02(v, wl),
        3 => k03(v, wl),
        4 => k04(v, wl),
        5 => k05(v, wl),
        6 => k06(v, wl),
        7 => k07(v, wl),
        8 => k08(v, wl),
        9 => k09(v, wl),
        10 => k10(v, wl),
        11 => k11(v, wl),
        12 => k12(v, wl),
        13 => k13(v, wl),
        14 => k14(v, wl),
        15 => k15(v, wl),
        _ => panic!("unknown kernel id {id}; Table 1 defines #1..#15"),
    }
}

/// Visits all 15 kernels in Table 1 order.
pub fn visit_all<V: KernelVisitor>(v: &mut V, wl: &WorkloadSpec) {
    for id in ALL_KERNEL_IDS {
        visit_kernel(id, v, wl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Collector {
        infos: Vec<CaseInfo>,
        workload_sizes: Vec<usize>,
    }

    impl KernelVisitor for Collector {
        fn visit<K: LaneKernel>(
            &mut self,
            info: &CaseInfo,
            _params: &K::Params,
            workload: &[(Vec<K::Sym>, Vec<K::Sym>)],
        ) {
            self.infos.push(*info);
            self.workload_sizes.push(workload.len());
        }
    }

    fn collect() -> Collector {
        let mut c = Collector::default();
        let wl = WorkloadSpec {
            pairs: 3,
            len: 64,
            ..WorkloadSpec::default()
        };
        visit_all(&mut c, &wl);
        c
    }

    #[test]
    fn all_fifteen_kernels_enumerate() {
        let c = collect();
        assert_eq!(c.infos.len(), 15);
        let ids: Vec<u8> = c.infos.iter().map(|i| i.meta.id.0).collect();
        assert_eq!(ids, ALL_KERNEL_IDS.to_vec());
        assert!(c.workload_sizes.iter().all(|&n| n == 3));
    }

    #[test]
    fn table2_configs_match_paper() {
        let c = collect();
        let cfg = |id: u8| c.infos[(id - 1) as usize].table2_config;
        assert_eq!((cfg(1).npe, cfg(1).nb, cfg(1).nk), (64, 16, 4));
        assert_eq!((cfg(8).npe, cfg(8).nb, cfg(8).nk), (16, 1, 5));
        assert_eq!((cfg(12).npe, cfg(12).nb, cfg(12).nk), (16, 16, 7));
        assert_eq!(cfg(5).target_freq_mhz, 150.0);
        assert_eq!(cfg(9).target_freq_mhz, 200.0);
    }

    #[test]
    fn profile_kernel_is_dsp_dominant() {
        let c = collect();
        let profile = &c.infos[7]; // #8
                                   // 5x5 matrix-vector + dot product: 30 multiplies.
        assert_eq!(profile.op_counts.muls, 30);
        // More multipliers than any other kernel.
        for other in c.infos.iter().filter(|i| i.meta.id.0 != 8) {
            assert!(profile.op_counts.muls > other.op_counts.muls);
        }
    }

    #[test]
    fn dtw_uses_two_multipliers() {
        let c = collect();
        let dtw = &c.infos[8]; // #9
        assert_eq!(dtw.op_counts.muls, 2);
        // Linear alignment kernels use none.
        assert_eq!(c.infos[0].op_counts.muls, 0);
    }

    #[test]
    fn affine_kernels_use_more_ops_than_linear() {
        let c = collect();
        let lin = c.infos[0].op_counts.total(); // #1
        let aff = c.infos[1].op_counts.total(); // #2
        let two = c.infos[4].op_counts.total(); // #5
        assert!(aff > lin);
        assert!(two > aff);
    }

    #[test]
    fn banded_kernels_carry_band_config() {
        let c = collect();
        for id in [11usize, 12, 13] {
            match c.infos[id - 1].table2_config.banding {
                dphls_core::Banding::Fixed { half_width } => {
                    assert_eq!(half_width, DEFAULT_BAND)
                }
                _ => panic!("kernel #{id} must default to fixed banding"),
            }
        }
        assert_eq!(c.infos[0].table2_config.banding, dphls_core::Banding::None);
    }

    #[test]
    fn ii_hint_only_for_profile_kernel() {
        let c = collect();
        for i in &c.infos {
            if i.meta.id.0 == 8 {
                assert_eq!(i.ii_hint, Some(4));
            } else {
                assert_eq!(i.ii_hint, None);
            }
        }
    }

    #[test]
    fn paper_numbers_are_plausible() {
        let c = collect();
        for i in &c.infos {
            assert!(i.paper.freq_mhz >= 125.0 && i.paper.freq_mhz <= 250.0);
            assert!(i.paper.aln_per_sec > 1e4);
            for u in i.paper.util {
                assert!((0.0..0.5).contains(&u));
            }
        }
        // #14 has the highest paper throughput.
        let t14 = c.infos[13].paper.aln_per_sec;
        assert!(c.infos.iter().all(|i| i.paper.aln_per_sec <= t14));
    }

    #[test]
    #[should_panic(expected = "unknown kernel id")]
    fn unknown_id_panics() {
        let mut c = Collector::default();
        visit_kernel(16, &mut c, &WorkloadSpec::default());
    }

    #[test]
    fn score_and_symbol_bits() {
        let c = collect();
        assert_eq!(c.infos[0].sym_bits, 2); // DNA
        assert_eq!(c.infos[8].sym_bits, 64); // complex
        assert_eq!(c.infos[7].sym_bits, 80); // profile column
        assert_eq!(c.infos[14].sym_bits, 5); // amino acid
        assert_eq!(c.infos[0].score_bits, 16);
        assert_eq!(c.infos[4].score_bits, 16);
    }
}
