//! Two-piece affine gap kernels (minimap2-style): Global Two-piece Affine
//! (#5) and Banded Global Two-piece Affine (#13).
//!
//! Five scoring layers per cell (`N_LAYERS = 5`): `H`, plus two affine gap
//! pairs `(I₁, D₁)` and `(I₂, D₂)` with different open/extend slopes; the
//! effective gap cost is the better of the two pieces, approximating a
//! concave gap function (paper §2.2.2b). The traceback pointer needs 7 bits
//! (3-bit source + 4 open flags), matching the "at least 7 bits per pointer"
//! the paper quotes for BRAM sizing of kernels #5/#13 (§7.1).

use crate::params::TwoPieceParams;
use dphls_core::score::argmax;
use dphls_core::{
    KernelId, KernelMeta, KernelSpec, LayerVec, Objective, Score, TbMove, TbPtr, TbState,
    TracebackSpec,
};
use dphls_seq::Base;
use std::marker::PhantomData;

// Layer indices.
const H: usize = 0;
const I1: usize = 1;
const D1: usize = 2;
const I2: usize = 3;
const D2: usize = 4;

// Pointer encoding: bits 0..=2 = source of H (0 diag, 1 I1, 2 D1, 3 I2,
// 4 D2); bits 3..=6 = open flags for I1, D1, I2, D2.
const SRC_MASK: u8 = 0b111;
const OPEN_I1: u8 = 1 << 3;
const OPEN_D1: u8 = 1 << 4;
const OPEN_I2: u8 = 1 << 5;
const OPEN_D2: u8 = 1 << 6;

// FSM states (paper Listing 3 right: MM, INS, DEL, LONG_INS, LONG_DEL).
const MM: TbState = TbState(0);
const INS1: TbState = TbState(1);
const DEL1: TbState = TbState(2);
const INS2: TbState = TbState(3);
const DEL2: TbState = TbState(4);

fn pe_impl<S: Score>(
    p: &TwoPieceParams<S>,
    q: Base,
    r: Base,
    diag: &LayerVec<S>,
    up: &LayerVec<S>,
    left: &LayerVec<S>,
) -> (LayerVec<S>, TbPtr) {
    let gap_layer = |h_src: S, gap_src: S, open: S, ext: S| -> (S, bool) {
        let from_open = h_src.add(open);
        let from_ext = gap_src.add(ext);
        from_ext.max_with(from_open)
    };
    let (i1, i1_open) = gap_layer(up.get(H), up.get(I1), p.gap_open1, p.gap_extend1);
    let (d1, d1_open) = gap_layer(left.get(H), left.get(D1), p.gap_open1, p.gap_extend1);
    let (i2, i2_open) = gap_layer(up.get(H), up.get(I2), p.gap_open2, p.gap_extend2);
    let (d2, d2_open) = gap_layer(left.get(H), left.get(D2), p.gap_open2, p.gap_extend2);
    let sub = if q == r { p.match_score } else { p.mismatch };
    let mat = diag.get(H).add(sub);
    let (h, src) = argmax([(mat, 0u8), (i1, 1), (d1, 2), (i2, 3), (d2, 4)]);
    let flags = (i1_open as u8 * OPEN_I1)
        | (d1_open as u8 * OPEN_D1)
        | (i2_open as u8 * OPEN_I2)
        | (d2_open as u8 * OPEN_D2);
    (
        LayerVec::from_slice(&[h, i1, d1, i2, d2]),
        TbPtr(src | flags),
    )
}

fn tb_impl(state: TbState, ptr: TbPtr) -> (TbState, TbMove) {
    let gap_move = |open_flag: u8, cont: TbState, mv: TbMove| -> (TbState, TbMove) {
        if ptr.0 & open_flag != 0 {
            (MM, mv)
        } else {
            (cont, mv)
        }
    };
    match state {
        s if s == INS1 => gap_move(OPEN_I1, INS1, TbMove::Up),
        s if s == DEL1 => gap_move(OPEN_D1, DEL1, TbMove::Left),
        s if s == INS2 => gap_move(OPEN_I2, INS2, TbMove::Up),
        s if s == DEL2 => gap_move(OPEN_D2, DEL2, TbMove::Left),
        _ => match ptr.0 & SRC_MASK {
            0 => (MM, TbMove::Diag),
            1 => gap_move(OPEN_I1, INS1, TbMove::Up),
            2 => gap_move(OPEN_D1, DEL1, TbMove::Left),
            3 => gap_move(OPEN_I2, INS2, TbMove::Up),
            4 => gap_move(OPEN_D2, DEL2, TbMove::Left),
            _ => (MM, TbMove::Stop),
        },
    }
}

/// Boundary: a leading gap of length `k` pays the better of the two affine
/// pieces; the matching gap layers carry their own piece's cost.
fn two_piece_ramp<S: Score>(p: &TwoPieceParams<S>, k: usize, vertical: bool) -> LayerVec<S> {
    if k == 0 {
        return LayerVec::from_slice(&[
            S::zero(),
            S::neg_inf(),
            S::neg_inf(),
            S::neg_inf(),
            S::neg_inf(),
        ]);
    }
    let km1 = (k - 1) as f64;
    let c1 = S::from_f64(p.gap_open1.to_f64() + km1 * p.gap_extend1.to_f64());
    let c2 = S::from_f64(p.gap_open2.to_f64() + km1 * p.gap_extend2.to_f64());
    let (h, _) = c1.max_with(c2);
    let ni = S::neg_inf();
    if vertical {
        LayerVec::from_slice(&[h, c1, ni, c2, ni])
    } else {
        LayerVec::from_slice(&[h, ni, c1, ni, c2])
    }
}

macro_rules! two_piece_kernel {
    ($(#[$doc:meta])* $name:ident, id: $id:expr, kname: $kname:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name<S = i32>(PhantomData<S>);

        impl<S: Score> KernelSpec for $name<S> {
            type Sym = Base;
            type Score = S;
            type Params = TwoPieceParams<S>;

            fn meta() -> KernelMeta {
                KernelMeta {
                    id: KernelId($id),
                    name: $kname,
                    n_layers: 5,
                    tb_bits: 7,
                    objective: Objective::Maximize,
                    traceback: TracebackSpec::global(),
                }
            }

            #[inline]
            fn init_row(params: &Self::Params, j: usize) -> LayerVec<S> {
                two_piece_ramp(params, j, false)
            }

            #[inline]
            fn init_col(params: &Self::Params, i: usize) -> LayerVec<S> {
                two_piece_ramp(params, i, true)
            }

            #[inline]
            fn pe(
                params: &Self::Params,
                q: Base,
                r: Base,
                diag: &LayerVec<S>,
                up: &LayerVec<S>,
                left: &LayerVec<S>,
            ) -> (LayerVec<S>, TbPtr) {
                pe_impl(params, q, r, diag, up, left)
            }

            #[inline]
            fn tb_step(state: TbState, ptr: TbPtr) -> (TbState, TbMove) {
                tb_impl(state, ptr)
            }
        }

        // Five-layer recurrence: the scalar lane fallback is already
        // memory-bound on the H/I₁/D₁/I₂/D₂ traffic, so no override.
        impl<S: Score, const W: usize> dphls_core::LaneKernel<W> for $name<S> {}
    };
}

two_piece_kernel!(
    /// Kernel #5 — Global Two-piece Affine alignment (minimap2's long-read
    /// gap model).
    GlobalTwoPiece, id: 5, kname: "Global Two-piece Affine"
);

two_piece_kernel!(
    /// Kernel #13 — Banded Global Two-piece Affine alignment; the band comes
    /// from [`dphls_core::KernelConfig::banding`].
    BandedGlobalTwoPiece, id: 13, kname: "Banded Global Two-piece Affine"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::GlobalAffine;
    use crate::params::AffineParams;
    use dphls_core::{run_reference, Banding};
    use dphls_seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn p() -> TwoPieceParams<i32> {
        TwoPieceParams::dna()
    }

    #[test]
    fn identical_sequences() {
        let s = dna("ACGTACGTAC");
        let out = run_reference::<GlobalTwoPiece>(&p(), s.as_slice(), s.as_slice(), Banding::None);
        assert_eq!(out.best_score, 20);
        assert_eq!(out.alignment.unwrap().cigar(), "10M");
    }

    #[test]
    fn short_gap_uses_piece_one() {
        // 2-base gap: piece1 = -4 -2 = -6, piece2 = -24 -1 = -25.
        let q = dna("ACGTACGT");
        let r = dna("ACGTGGACGT");
        let out = run_reference::<GlobalTwoPiece>(&p(), q.as_slice(), r.as_slice(), Banding::None);
        assert_eq!(out.best_score, 16 - 6);
        assert_eq!(out.alignment.unwrap().cigar(), "4M2D4M");
    }

    #[test]
    fn long_gap_switches_to_piece_two() {
        // 40-base gap: piece1 = -4 - 39*2 = -82; piece2 = -24 - 39 = -63.
        let q = dna("ACGTACGT");
        let mut r_str = String::from("ACGT");
        r_str.push_str(&"G".repeat(40));
        r_str.push_str("ACGT");
        let r = dna(&r_str);
        let out = run_reference::<GlobalTwoPiece>(&p(), q.as_slice(), r.as_slice(), Banding::None);
        assert_eq!(out.best_score, 16 - 63);
        let aln = out.alignment.unwrap();
        assert_eq!(aln.cigar(), "4M40D4M");
        assert!(aln.is_consistent());
    }

    #[test]
    fn two_piece_never_worse_than_single_affine_piece_one() {
        // With the same piece-1 parameters, adding the second piece can only
        // help (gap cost = max of the two pieces).
        let pa = AffineParams::<i32> {
            match_score: 2,
            mismatch: -4,
            gap_open: -4,
            gap_extend: -2,
        };
        for (qs, rs) in [
            ("ACGTACGTACGT", "ACGTACGT"),
            ("ACGT", "ACGTGGGGGGGGGGGGGGGGACGT"),
            ("ACCGTTACGGTA", "ATCGTTAGGGTA"),
        ] {
            let q = dna(qs);
            let r = dna(rs);
            let two =
                run_reference::<GlobalTwoPiece>(&p(), q.as_slice(), r.as_slice(), Banding::None);
            let one =
                run_reference::<GlobalAffine<i32>>(&pa, q.as_slice(), r.as_slice(), Banding::None);
            assert!(
                two.best_score >= one.best_score,
                "{qs} vs {rs}: {} < {}",
                two.best_score,
                one.best_score
            );
        }
    }

    #[test]
    fn boundary_ramp_takes_better_piece() {
        let pp = p();
        // k=2: piece1 = -6, piece2 = -25 -> H = -6
        assert_eq!(GlobalTwoPiece::<i32>::init_row(&pp, 2).get(H), -6);
        // k=30: piece1 = -4-58 = -62, piece2 = -24-29 = -53 -> H = -53
        assert_eq!(GlobalTwoPiece::<i32>::init_row(&pp, 30).get(H), -53);
        assert_eq!(GlobalTwoPiece::<i32>::init_row(&pp, 0).get(H), 0);
    }

    #[test]
    fn fsm_long_gap_states() {
        // Entering a long (piece-2) insertion from MM stays in INS2 until an
        // open flag appears.
        let ptr_ext = TbPtr(3); // src = I2, no open flags
        assert_eq!(tb_impl(MM, ptr_ext), (INS2, TbMove::Up));
        assert_eq!(tb_impl(INS2, ptr_ext), (INS2, TbMove::Up));
        let ptr_open = TbPtr(3 | OPEN_I2);
        assert_eq!(tb_impl(INS2, ptr_open), (MM, TbMove::Up));
        // Piece-2 deletion mirror.
        assert_eq!(tb_impl(DEL2, TbPtr(0)), (DEL2, TbMove::Left));
        assert_eq!(tb_impl(DEL2, TbPtr(OPEN_D2)), (MM, TbMove::Left));
        // Diag keeps MM.
        assert_eq!(tb_impl(MM, TbPtr(0)), (MM, TbMove::Diag));
    }

    #[test]
    fn metas() {
        assert_eq!(GlobalTwoPiece::<i32>::meta().id, KernelId(5));
        assert_eq!(GlobalTwoPiece::<i32>::meta().n_layers, 5);
        assert_eq!(GlobalTwoPiece::<i32>::meta().tb_bits, 7);
        assert_eq!(BandedGlobalTwoPiece::<i32>::meta().id, KernelId(13));
    }
}
