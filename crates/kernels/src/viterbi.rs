//! Kernel #10 — the Viterbi algorithm over a PairHMM (remote homology
//! search, gene prediction; HMMER/AUGUSTUS workloads).
//!
//! Three scoring layers per cell track the most probable path ending in the
//! match (`VM`), insert (`VI`), and delete (`VJ`) hidden states. The paper's
//! recurrence multiplies probabilities (Fig 1); we compute in **log space**
//! with the fixed-point score type, turning the products into saturating adds
//! — the standard hardware formulation (and the reason the paper's Listing 2
//! stores `log_mu`/`log_lambda`). No traceback (paper Table 1).

use crate::params::ViterbiParams;
use dphls_core::score::argmax;
use dphls_core::{
    BestCellRule, KernelId, KernelMeta, KernelSpec, LayerVec, Objective, Score, TracebackSpec,
};
use dphls_seq::Base;
use std::marker::PhantomData;

/// Default fixed-point type for log-probabilities: `ap_fixed<32,16>`
/// (16 integer bits for magnitudes down to −32768, 16 fraction bits).
pub type ViterbiScore = dphls_fixed::ApFixed<32, 16>;

const VM: usize = 0;
const VI: usize = 1;
const VJ: usize = 2;

/// Kernel #10 — PairHMM Viterbi in log space.
#[derive(Debug, Clone, Copy, Default)]
pub struct Viterbi<S = ViterbiScore>(PhantomData<S>);

/// Viterbi's probability products use the scalar lane fallback.
impl<S: Score, const W: usize> dphls_core::LaneKernel<W> for Viterbi<S> {}

impl<S: Score> KernelSpec for Viterbi<S> {
    type Sym = Base;
    type Score = S;
    type Params = ViterbiParams<S>;

    fn meta() -> KernelMeta {
        KernelMeta {
            id: KernelId(10),
            name: "Viterbi (PairHMM)",
            n_layers: 3,
            tb_bits: 0,
            objective: Objective::Maximize,
            traceback: TracebackSpec::score_only(BestCellRule::BottomRight),
        }
    }

    #[inline]
    fn init_row(params: &Self::Params, j: usize) -> LayerVec<S> {
        if j == 0 {
            // log P(start) = 0; gap states unreachable at the origin.
            return LayerVec::from_slice(&[S::zero(), S::neg_inf(), S::neg_inf()]);
        }
        // Leading run of j J-state emissions: δ · ε^{j−1} · q^j.
        let lp = params.log_delta.to_f64()
            + (j - 1) as f64 * params.log_epsilon.to_f64()
            + j as f64 * params.log_q.to_f64();
        LayerVec::from_slice(&[S::neg_inf(), S::neg_inf(), S::from_f64(lp)])
    }

    #[inline]
    fn init_col(params: &Self::Params, i: usize) -> LayerVec<S> {
        let lp = params.log_delta.to_f64()
            + (i - 1) as f64 * params.log_epsilon.to_f64()
            + i as f64 * params.log_q.to_f64();
        LayerVec::from_slice(&[S::neg_inf(), S::from_f64(lp), S::neg_inf()])
    }

    #[inline]
    fn pe(
        params: &Self::Params,
        q: Base,
        r: Base,
        diag: &LayerVec<S>,
        up: &LayerVec<S>,
        left: &LayerVec<S>,
    ) -> (LayerVec<S>, dphls_core::TbPtr) {
        // VM(i,j) = P(xᵢ,yⱼ) · max((1−2δ)·VM, (1−ε)·VI, (1−ε)·VJ) at (i−1,j−1)
        let e_m = params.emission[q.code() as usize][r.code() as usize];
        let (m_best, _) = argmax([
            (diag.get(VM).add(params.log_one_minus_2delta), 0u8),
            (diag.get(VI).add(params.log_one_minus_epsilon), 1),
            (diag.get(VJ).add(params.log_one_minus_epsilon), 2),
        ]);
        let vm = e_m.add(m_best);
        // VI(i,j) = Q(xᵢ) · max(δ·VM, ε·VI) at (i−1,j)
        let (i_best, _) = argmax([
            (up.get(VM).add(params.log_delta), 0u8),
            (up.get(VI).add(params.log_epsilon), 1),
        ]);
        let vi = params.log_q.add(i_best);
        // VJ(i,j) = Q(yⱼ) · max(δ·VM, ε·VJ) at (i,j−1)
        let (j_best, _) = argmax([
            (left.get(VM).add(params.log_delta), 0u8),
            (left.get(VJ).add(params.log_epsilon), 1),
        ]);
        let vj = params.log_q.add(j_best);
        (LayerVec::from_slice(&[vm, vi, vj]), dphls_core::TbPtr::END)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_core::{run_reference, Banding};
    use dphls_seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn params() -> ViterbiParams<ViterbiScore> {
        ViterbiParams::pair_hmm()
    }

    /// Direct probability-space Viterbi over f64, the independent reference
    /// for the log-space fixed-point kernel.
    fn viterbi_f64(q: &[Base], r: &[Base]) -> f64 {
        let delta = 0.1f64;
        let epsilon = 0.3f64;
        let p_match = 0.9f64;
        let p_sub = (1.0 - p_match) / 3.0;
        let em = |a: Base, b: Base| if a == b { p_match / 4.0 } else { p_sub / 4.0 };
        let qp = 0.25f64;
        let (n, m) = (q.len(), r.len());
        let mut vm = vec![vec![0.0f64; m + 1]; n + 1];
        let mut vi = vec![vec![0.0f64; m + 1]; n + 1];
        let mut vj = vec![vec![0.0f64; m + 1]; n + 1];
        vm[0][0] = 1.0;
        for j in 1..=m {
            vj[0][j] = delta * epsilon.powi(j as i32 - 1) * qp.powi(j as i32);
        }
        for i in 1..=n {
            vi[i][0] = delta * epsilon.powi(i as i32 - 1) * qp.powi(i as i32);
        }
        for i in 1..=n {
            for j in 1..=m {
                let mbest = ((1.0 - 2.0 * delta) * vm[i - 1][j - 1])
                    .max((1.0 - epsilon) * vi[i - 1][j - 1])
                    .max((1.0 - epsilon) * vj[i - 1][j - 1]);
                vm[i][j] = em(q[i - 1], r[j - 1]) * mbest;
                vi[i][j] = qp * (delta * vm[i - 1][j]).max(epsilon * vi[i - 1][j]);
                vj[i][j] = qp * (delta * vm[i][j - 1]).max(epsilon * vj[i][j - 1]);
            }
        }
        vm[n][m]
    }

    #[test]
    fn log_space_matches_direct_probability() {
        for (qs, rs) in [
            ("ACGT", "ACGT"),
            ("ACGTACGT", "ACTTACGT"),
            ("AACCGGTT", "ACGT"),
            ("ACGTA", "TGCAT"),
        ] {
            let q = dna(qs);
            let r = dna(rs);
            let out =
                run_reference::<Viterbi>(&params(), q.as_slice(), r.as_slice(), Banding::None);
            let direct = viterbi_f64(q.as_slice(), r.as_slice());
            let log_direct = direct.ln();
            let got = out.best_score.to_f64();
            assert!(
                (got - log_direct).abs() < 0.05,
                "{qs}/{rs}: log-space {got} vs direct {log_direct}"
            );
        }
    }

    #[test]
    fn matching_pair_more_probable_than_mismatching() {
        let a = dna("ACGTACGTACGT");
        let b = dna("ACGTACGTACGT");
        let c = dna("TTTTGGGGCCCC");
        let same = run_reference::<Viterbi>(&params(), a.as_slice(), b.as_slice(), Banding::None);
        let diff = run_reference::<Viterbi>(&params(), a.as_slice(), c.as_slice(), Banding::None);
        assert!(same.best_score > diff.best_score);
    }

    #[test]
    fn no_alignment_returned() {
        let a = dna("ACGT");
        let out = run_reference::<Viterbi>(&params(), a.as_slice(), a.as_slice(), Banding::None);
        assert!(out.alignment.is_none());
        assert_eq!(out.best_cell, (4, 4));
    }

    #[test]
    fn log_probability_is_negative_and_decreases_with_length() {
        let a = dna("ACGTACGT");
        let b = dna("ACGTACGTACGTACGT");
        let short = run_reference::<Viterbi>(&params(), a.as_slice(), a.as_slice(), Banding::None);
        let long = run_reference::<Viterbi>(&params(), b.as_slice(), b.as_slice(), Banding::None);
        assert!(short.best_score.to_f64() < 0.0);
        assert!(long.best_score < short.best_score);
    }

    #[test]
    fn meta() {
        let m = Viterbi::<ViterbiScore>::meta();
        assert_eq!(m.id, KernelId(10));
        assert_eq!(m.n_layers, 3);
        assert!(!m.traceback.has_walk());
        assert_eq!(m.traceback.best, BestCellRule::BottomRight);
    }
}
