//! Independent cross-validation: kernels checked against *textbook
//! formulations written from scratch in this file* (plain f64/i64 matrices,
//! no shared code with the kernel specs or engines). This closes the loop
//! that differential engine tests cannot: if a recurrence were encoded
//! wrongly in the kernel, both engines would agree on the wrong answer —
//! these tests would not.

// Textbook DP recurrences are index-addressed by nature.
#![allow(clippy::needless_range_loop)]

use dphls_core::{run_reference, Banding};
use dphls_kernels::{
    AffineParams, Dtw, GlobalAffine, GlobalLinear, LinearParams, LocalLinear, NoParams,
    ProfileAlign, ProfileParams, Sdtw,
};
use dphls_seq::gen::{ComplexSignalGenerator, ReadSimulator};
use dphls_seq::{Base, Complex, ProfileColumn};
use proptest::prelude::*;

fn dna_strategy(max_len: usize) -> impl Strategy<Value = Vec<Base>> {
    proptest::collection::vec((0u8..4).prop_map(Base::from_code), 1..max_len)
}

/// Textbook Needleman-Wunsch, written directly from the recurrence in the
/// paper's Fig 1 (no shared code with dphls-kernels).
fn textbook_nw(q: &[Base], r: &[Base], ma: i64, mi: i64, gap: i64) -> i64 {
    let (n, m) = (q.len(), r.len());
    let mut h = vec![vec![0i64; m + 1]; n + 1];
    for (j, row0) in h[0].iter_mut().enumerate() {
        *row0 = j as i64 * gap;
    }
    for i in 1..=n {
        h[i][0] = i as i64 * gap;
        for j in 1..=m {
            let s = if q[i - 1] == r[j - 1] { ma } else { mi };
            h[i][j] = (h[i - 1][j - 1] + s)
                .max(h[i - 1][j] + gap)
                .max(h[i][j - 1] + gap);
        }
    }
    h[n][m]
}

/// Textbook Smith-Waterman.
fn textbook_sw(q: &[Base], r: &[Base], ma: i64, mi: i64, gap: i64) -> i64 {
    let (n, m) = (q.len(), r.len());
    let mut h = vec![vec![0i64; m + 1]; n + 1];
    let mut best = 0;
    for i in 1..=n {
        for j in 1..=m {
            let s = if q[i - 1] == r[j - 1] { ma } else { mi };
            h[i][j] = 0i64
                .max(h[i - 1][j - 1] + s)
                .max(h[i - 1][j] + gap)
                .max(h[i][j - 1] + gap);
            best = best.max(h[i][j]);
        }
    }
    best
}

/// Textbook Gotoh global affine (three explicit matrices).
fn textbook_gotoh(q: &[Base], r: &[Base], ma: i64, mi: i64, open: i64, ext: i64) -> i64 {
    let (n, m) = (q.len(), r.len());
    const NEG: i64 = i64::MIN / 4;
    let mut h = vec![vec![NEG; m + 1]; n + 1];
    let mut e = vec![vec![NEG; m + 1]; n + 1]; // vertical (query gap run)
    let mut f = vec![vec![NEG; m + 1]; n + 1]; // horizontal
    h[0][0] = 0;
    for j in 1..=m {
        h[0][j] = open + (j as i64 - 1) * ext;
        f[0][j] = h[0][j];
    }
    for i in 1..=n {
        h[i][0] = open + (i as i64 - 1) * ext;
        e[i][0] = h[i][0];
        for j in 1..=m {
            let s = if q[i - 1] == r[j - 1] { ma } else { mi };
            e[i][j] = (h[i - 1][j] + open).max(e[i - 1][j] + ext);
            f[i][j] = (h[i][j - 1] + open).max(f[i][j - 1] + ext);
            h[i][j] = (h[i - 1][j - 1] + s).max(e[i][j]).max(f[i][j]);
        }
    }
    h[n][m]
}

/// Textbook DTW over f64 with squared Euclidean distance.
fn textbook_dtw(a: &[Complex], b: &[Complex]) -> f64 {
    let (n, m) = (a.len(), b.len());
    let mut d = vec![vec![f64::INFINITY; m + 1]; n + 1];
    d[0][0] = 0.0;
    for i in 1..=n {
        for j in 1..=m {
            let dr = a[i - 1].re.to_f64() - b[j - 1].re.to_f64();
            let di = a[i - 1].im.to_f64() - b[j - 1].im.to_f64();
            let dist = dr * dr + di * di;
            d[i][j] = dist + d[i - 1][j - 1].min(d[i - 1][j]).min(d[i][j - 1]);
        }
    }
    d[n][m]
}

/// Textbook semi-global DTW over integers with |·| distance, min over the
/// last row, free start on the reference.
fn textbook_sdtw(q: &[i16], r: &[i16]) -> i64 {
    let (n, m) = (q.len(), r.len());
    const INF: i64 = i64::MAX / 4;
    let mut d = vec![vec![INF; m + 1]; n + 1];
    for j in 0..=m {
        d[0][j] = 0;
    }
    for i in 1..=n {
        for j in 1..=m {
            let dist = (q[i - 1] as i64 - r[j - 1] as i64).abs();
            d[i][j] = dist + d[i - 1][j - 1].min(d[i - 1][j]).min(d[i][j - 1]);
        }
    }
    (1..=m).map(|j| d[n][j]).min().expect("non-empty row")
}

/// Textbook sum-of-pairs profile alignment (global, linear column gap).
fn textbook_profile(
    x: &[ProfileColumn],
    y: &[ProfileColumn],
    sub: &dyn Fn(usize, usize) -> i64,
    gap: i64,
) -> i64 {
    let sp = |c1: &ProfileColumn, c2: &ProfileColumn| -> i64 {
        let mut t = 0i64;
        for a in 0..5 {
            for b in 0..5 {
                t += c1.count(a) as i64 * c2.count(b) as i64 * sub(a, b);
            }
        }
        t
    };
    let (n, m) = (x.len(), y.len());
    let mut h = vec![vec![0i64; m + 1]; n + 1];
    for j in 1..=m {
        h[0][j] = j as i64 * gap;
    }
    for i in 1..=n {
        h[i][0] = i as i64 * gap;
        for j in 1..=m {
            h[i][j] = (h[i - 1][j - 1] + sp(&x[i - 1], &y[j - 1]))
                .max(h[i - 1][j] + gap)
                .max(h[i][j - 1] + gap);
        }
    }
    h[n][m]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn nw_matches_textbook(
        q in dna_strategy(40),
        r in dna_strategy(40),
        ma in 1i32..4,
        mi in -4i32..0,
        gap in -4i32..0,
    ) {
        let params = LinearParams::<i32> { match_score: ma, mismatch: mi, gap };
        let ours = run_reference::<GlobalLinear<i32>>(&params, &q, &r, Banding::None).best_score;
        let textbook = textbook_nw(&q, &r, ma as i64, mi as i64, gap as i64);
        prop_assert_eq!(ours as i64, textbook);
    }

    #[test]
    fn sw_matches_textbook(q in dna_strategy(40), r in dna_strategy(40)) {
        let params = LinearParams::<i32>::dna();
        let ours = run_reference::<LocalLinear<i32>>(&params, &q, &r, Banding::None).best_score;
        let textbook = textbook_sw(&q, &r, 2, -3, -2);
        prop_assert_eq!(ours as i64, textbook);
    }

    #[test]
    fn gotoh_matches_textbook(
        q in dna_strategy(32),
        r in dna_strategy(32),
        open in -8i32..-2,
        ext in -2i32..0,
    ) {
        let params = AffineParams::<i32> {
            match_score: 2,
            mismatch: -3,
            gap_open: open,
            gap_extend: ext,
        };
        let ours = run_reference::<GlobalAffine<i32>>(&params, &q, &r, Banding::None).best_score;
        let textbook = textbook_gotoh(&q, &r, 2, -3, open as i64, ext as i64);
        prop_assert_eq!(ours as i64, textbook);
    }

    #[test]
    fn sdtw_matches_textbook(
        seed in 0u64..500,
        qlen in 2usize..16,
        rlen in 8usize..40,
    ) {
        let mut rng = dphls_util::Xoshiro256::seed_from_u64(seed);
        let q: Vec<i16> = (0..qlen).map(|_| rng.next_range(900) as i16).collect();
        let r: Vec<i16> = (0..rlen).map(|_| rng.next_range(900) as i16).collect();
        let ours = run_reference::<Sdtw<i32>>(&NoParams, &q, &r, Banding::None).best_score;
        prop_assert_eq!(ours as i64, textbook_sdtw(&q, &r));
    }
}

#[test]
fn dtw_matches_f64_textbook_within_fixed_point_error() {
    let mut g = ComplexSignalGenerator::new(17);
    for _ in 0..6 {
        let (a, b) = g.warped_pair(48, 0.25);
        let ours = run_reference::<Dtw>(&NoParams, a.as_slice(), b.as_slice(), Banding::None)
            .best_score
            .to_f64();
        let textbook = textbook_dtw(a.as_slice(), b.as_slice());
        // ap_fixed<32,26> has 6 fraction bits: each path step's squared
        // distance truncates by up to 2 x 2^-6 (two multiplies), and the
        // fixed-point path may legitimately differ where costs quantize
        // equal, so the bound is absolute in the path length.
        let tol = 0.05 * textbook + (a.len() + b.len()) as f64 * 2.0 / 64.0;
        assert!(
            (ours - textbook).abs() <= tol,
            "fixed-point {ours} vs f64 {textbook}"
        );
    }
}

#[test]
fn profile_alignment_matches_textbook_on_random_profiles() {
    use dphls_seq::gen::ProfileBuilder;
    let params = ProfileParams::<i32>::dna(4);
    let sub = |a: usize, b: usize| -> i64 {
        match (a, b) {
            (4, 4) => 0,
            (4, _) | (_, 4) => -2,
            _ if a == b => 2,
            _ => -1,
        }
    };
    let gap = -2i64 * 4 * 4;
    let mut builder = ProfileBuilder::new(23);
    for _ in 0..4 {
        let (x, y) = builder.profile_pair(24, 4, 0.3);
        let ours =
            run_reference::<ProfileAlign>(&params, x.as_slice(), y.as_slice(), Banding::None)
                .best_score;
        let textbook = textbook_profile(x.as_slice(), y.as_slice(), &sub, gap);
        assert_eq!(ours as i64, textbook);
    }
}

#[test]
fn nw_agrees_on_realistic_reads() {
    let mut sim = ReadSimulator::new(31337);
    let params = LinearParams::<i32>::dna();
    for _ in 0..4 {
        let (reference, mut read) = sim.read_pair(120, 0.3);
        read.truncate(120);
        let ours = run_reference::<GlobalLinear<i32>>(
            &params,
            read.as_slice(),
            reference.as_slice(),
            Banding::None,
        )
        .best_score;
        let textbook = textbook_nw(read.as_slice(), reference.as_slice(), 2, -3, -2);
        assert_eq!(ours as i64, textbook);
    }
}
