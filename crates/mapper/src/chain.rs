//! Colinear seed chaining: from a bag of seed hits to one candidate locus
//! and strand per read.
//!
//! The chainer is the classic two-step of minimizer mappers: (1) band the
//! seeds by diagonal — hits of the true locus agree on `ref_pos − read_pos`
//! up to the net indel drift — and take the heaviest diagonal band as the
//! candidate; (2) within that band, extract a strictly colinear chain
//! (read and reference positions both strictly increasing), which is what
//! the extension stage anchors on.

use crate::index::Seed;

/// A colinear chain of seeds supporting one candidate locus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// The chained seeds: strictly increasing in both read and reference
    /// position.
    pub anchors: Vec<Seed>,
    /// Estimated reference position of read base 0 (the candidate locus):
    /// the first anchor's diagonal, clamped at the reference start.
    pub ref_start: usize,
}

impl Chain {
    /// Number of chained anchors — the chain score the driver ranks
    /// candidates by.
    pub fn score(&self) -> usize {
        self.anchors.len()
    }
}

/// Chains seeds into the best candidate locus.
///
/// `band` is the diagonal tolerance: seeds within a `band`-wide diagonal
/// window are considered to support the same locus (it bounds the net
/// indel drift a chain may accumulate, so it should scale with read length
/// times the expected indel rate). Returns `None` when no window holds at
/// least `min_anchors` seeds.
pub fn chain(seeds: &[Seed], band: u64, min_anchors: usize) -> Option<Chain> {
    assert!(min_anchors >= 1, "min_anchors must be >= 1");
    if seeds.len() < min_anchors {
        return None;
    }
    // Sort by diagonal; slide a band-wide window and keep the heaviest.
    let mut by_diag: Vec<Seed> = seeds.to_vec();
    by_diag.sort_by_key(|s| (s.diagonal(), s.read_pos));
    let mut best_range = 0..0;
    let mut lo = 0usize;
    for hi in 0..by_diag.len() {
        while by_diag[hi].diagonal() - by_diag[lo].diagonal() > band as i64 {
            lo += 1;
        }
        if hi + 1 - lo > best_range.len() {
            best_range = lo..hi + 1;
        }
    }
    if best_range.len() < min_anchors {
        return None;
    }
    // Strict colinearity within the winning band: sort by read position and
    // greedily keep seeds advancing in BOTH coordinates. Greedy is enough
    // here — within one diagonal band a longest chain and a greedy chain
    // differ by at most the band's worth of anchors.
    let mut in_band: Vec<Seed> = by_diag[best_range].to_vec();
    in_band.sort_by_key(|s| (s.read_pos, s.ref_pos));
    let mut anchors: Vec<Seed> = Vec::with_capacity(in_band.len());
    for s in in_band {
        match anchors.last() {
            Some(last) if s.read_pos <= last.read_pos || s.ref_pos <= last.ref_pos => {}
            _ => anchors.push(s),
        }
    }
    if anchors.len() < min_anchors {
        return None;
    }
    let first = anchors[0];
    let ref_start = (first.ref_pos as i64 - first.read_pos as i64).max(0) as usize;
    Some(Chain { anchors, ref_start })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(read_pos: u32, ref_pos: u32) -> Seed {
        Seed { read_pos, ref_pos }
    }

    #[test]
    fn perfect_diagonal_chains_fully() {
        let seeds: Vec<Seed> = (0..10).map(|i| seed(i * 10, 500 + i * 10)).collect();
        let c = chain(&seeds, 16, 3).unwrap();
        assert_eq!(c.score(), 10);
        assert_eq!(c.ref_start, 500);
    }

    #[test]
    fn off_diagonal_noise_is_rejected() {
        let mut seeds: Vec<Seed> = (0..8).map(|i| seed(i * 10, 500 + i * 10)).collect();
        // Random repeats far off the true diagonal.
        seeds.push(seed(5, 90_000));
        seeds.push(seed(55, 12));
        let c = chain(&seeds, 16, 3).unwrap();
        assert_eq!(c.score(), 8);
        assert_eq!(c.ref_start, 500);
        assert!(c.anchors.iter().all(|s| (s.diagonal() - 500).abs() <= 16));
    }

    #[test]
    fn chain_is_strictly_monotone() {
        // Seeds with duplicated read positions (one k-mer, two close hits)
        // must come out strictly increasing in both coordinates.
        let seeds = vec![
            seed(0, 100),
            seed(0, 104),
            seed(10, 110),
            seed(10, 108),
            seed(20, 120),
        ];
        let c = chain(&seeds, 16, 2).unwrap();
        for pair in c.anchors.windows(2) {
            assert!(pair[0].read_pos < pair[1].read_pos);
            assert!(pair[0].ref_pos < pair[1].ref_pos);
        }
    }

    #[test]
    fn too_few_anchors_is_none() {
        let seeds = vec![seed(0, 100), seed(10, 110)];
        assert!(chain(&seeds, 16, 3).is_none());
        assert!(chain(&[], 16, 1).is_none());
    }

    #[test]
    fn indel_drift_within_band_still_chains() {
        // Diagonal drifts by 1 every other seed (steady deletions): stays
        // chained as long as the total drift fits the band.
        let seeds: Vec<Seed> = (0..12u32)
            .map(|i| seed(i * 20, 300 + i * 20 + i / 2))
            .collect();
        let c = chain(&seeds, 8, 3).unwrap();
        assert_eq!(c.score(), 12);
    }

    #[test]
    fn heaviest_band_wins_over_decoy() {
        let mut seeds: Vec<Seed> = (0..4).map(|i| seed(i * 10, 9_000 + i * 10)).collect();
        seeds.extend((0..9).map(|i| seed(i * 10, 2_000 + i * 10)));
        let c = chain(&seeds, 16, 3).unwrap();
        assert_eq!(c.ref_start, 2_000);
        assert_eq!(c.score(), 9);
    }
}
