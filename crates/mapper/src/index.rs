//! Minimizer/k-mer index over a reference genome with bucket-capped repeat
//! masking — the seeding stage of the mapping pipeline.
//!
//! The index stores, for each selected k-mer, the reference positions where
//! it occurs. Selection is by **minimizers** (robust winnowing): in every
//! window of `w` consecutive k-mers, the one with the smallest hash is
//! kept, so any two sequences sharing `w + k − 1` exact bases share at
//! least one selected k-mer. `w = 1` degenerates to indexing every k-mer.
//!
//! Over-represented k-mers (repeats, homopolymer runs) blow up the
//! candidate count without adding locus information; buckets whose
//! occurrence list exceeds `bucket_cap` are **masked** (dropped wholesale),
//! the standard repeat-masking move of minimizer mappers.

use dphls_seq::{Base, DnaSeq};
use std::collections::HashMap;

/// Seeding parameters: k-mer size, minimizer window, repeat cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// K-mer length (`1 ..= 31`, packed 2 bits per base into a `u64`).
    pub k: usize,
    /// Minimizer window: one k-mer kept per window of `w` consecutive
    /// k-mers (`w = 1` keeps them all).
    pub w: usize,
    /// Maximum occurrence-list length before a bucket is masked as repeat.
    pub bucket_cap: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            k: 15,
            w: 5,
            bucket_cap: 64,
        }
    }
}

/// One seed hit: read position → reference position of a shared k-mer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed {
    /// Offset of the k-mer in the read.
    pub read_pos: u32,
    /// Offset of the k-mer in the reference.
    pub ref_pos: u32,
}

impl Seed {
    /// The diagonal this seed lies on (`ref_pos − read_pos`); colinear
    /// seeds of an indel-free alignment share it exactly, indels move it
    /// by the net indel length.
    pub fn diagonal(&self) -> i64 {
        self.ref_pos as i64 - self.read_pos as i64
    }
}

/// Minimizer index over a reference genome.
#[derive(Debug, Clone)]
pub struct KmerIndex {
    cfg: IndexConfig,
    buckets: HashMap<u64, Vec<u32>>,
    masked: usize,
    selected: usize,
}

/// SplitMix64 finalizer: the order-scrambling hash minimizer selection
/// ranks k-mers by, so homopolymer-heavy k-mers don't systematically win.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Packs `seq[pos .. pos + k]` into 2-bit codes (A=0 … T=3).
fn pack(seq: &[Base], pos: usize, k: usize) -> u64 {
    seq[pos..pos + k]
        .iter()
        .fold(0u64, |acc, b| (acc << 2) | b.code() as u64)
}

/// The minimizer positions of `seq`: for every window of `w` consecutive
/// k-mers, the position (leftmost on hash ties) of the smallest-hash k-mer.
/// Returned positions are unique and ascending; `w = 1` yields every k-mer
/// start. Shared by index construction and read lookup so both sides select
/// identically.
pub fn minimizers(seq: &[Base], k: usize, w: usize) -> Vec<(u32, u64)> {
    assert!((1..=31).contains(&k), "k must be in 1..=31");
    assert!(w >= 1, "minimizer window must be >= 1");
    if seq.len() < k {
        return Vec::new();
    }
    let n_kmers = seq.len() - k + 1;
    let keys: Vec<u64> = (0..n_kmers).map(|p| pack(seq, p, k)).collect();
    if w == 1 {
        return keys
            .iter()
            .enumerate()
            .map(|(p, &key)| (p as u32, key))
            .collect();
    }
    let hashes: Vec<u64> = keys.iter().map(|&key| mix(key)).collect();
    let mut out: Vec<(u32, u64)> = Vec::new();
    for win_lo in 0..n_kmers.saturating_sub(w - 1) {
        // Leftmost minimum of hashes[win_lo .. win_lo + w].
        let mut best = win_lo;
        for p in win_lo + 1..win_lo + w {
            if hashes[p] < hashes[best] {
                best = p;
            }
        }
        if out.last().map(|&(p, _)| p as usize) != Some(best) {
            out.push((best as u32, keys[best]));
        }
    }
    out
}

impl KmerIndex {
    /// Builds the index over a reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than `cfg.k` bases, `cfg.k` is
    /// outside `1..=31`, or `cfg.w`/`cfg.bucket_cap` is zero.
    pub fn build(genome: &DnaSeq, cfg: IndexConfig) -> Self {
        assert!(cfg.bucket_cap >= 1, "bucket cap must be >= 1");
        assert!(
            genome.len() >= cfg.k,
            "reference ({} bases) shorter than k ({})",
            genome.len(),
            cfg.k
        );
        let mins = minimizers(genome.as_slice(), cfg.k, cfg.w);
        let selected = mins.len();
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (pos, key) in mins {
            buckets.entry(key).or_default().push(pos);
        }
        let before = buckets.len();
        buckets.retain(|_, positions| positions.len() <= cfg.bucket_cap);
        let masked = before - buckets.len();
        Self {
            cfg,
            buckets,
            masked,
            selected,
        }
    }

    /// The seeding parameters the index was built with.
    pub fn config(&self) -> IndexConfig {
        self.cfg
    }

    /// Reference positions of a packed k-mer (empty if unseen or masked).
    pub fn lookup(&self, key: u64) -> &[u32] {
        self.buckets.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// Number of k-mer buckets masked by the repeat cap.
    pub fn masked_buckets(&self) -> usize {
        self.masked
    }

    /// Number of distinct k-mer buckets kept.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of minimizers selected over the reference (before masking).
    pub fn selected_minimizers(&self) -> usize {
        self.selected
    }

    /// All seed hits between a read and the reference: the read's
    /// minimizers (same `k`/`w` as the index) looked up against the
    /// buckets. Hits are grouped by read position, ascending.
    pub fn seeds(&self, read: &[Base]) -> Vec<Seed> {
        let mut out = Vec::new();
        for (read_pos, key) in minimizers(read, self.cfg.k, self.cfg.w) {
            for &ref_pos in self.lookup(key) {
                out.push(Seed { read_pos, ref_pos });
            }
        }
        out
    }
}

/// The Watson–Crick reverse complement of a read, for mapping the opposite
/// strand against a forward-only index.
pub fn reverse_complement(read: &[Base]) -> Vec<Base> {
    read.iter().rev().map(|b| b.complement()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphls_seq::gen::GenomeGenerator;

    fn genome(len: usize, seed: u64) -> DnaSeq {
        GenomeGenerator::new(seed).generate(len)
    }

    #[test]
    fn dense_index_recovers_every_position() {
        let g = genome(500, 1);
        let cfg = IndexConfig {
            k: 11,
            w: 1,
            bucket_cap: usize::MAX,
        };
        let idx = KmerIndex::build(&g, cfg);
        for p in 0..g.len() - cfg.k + 1 {
            let key = pack(g.as_slice(), p, cfg.k);
            assert!(
                idx.lookup(key).contains(&(p as u32)),
                "position {p} missing from its bucket"
            );
        }
    }

    #[test]
    fn minimizer_density_is_about_two_over_w_plus_one() {
        let g = genome(20_000, 2);
        let mins = minimizers(g.as_slice(), 15, 10);
        let density = mins.len() as f64 / g.len() as f64;
        // Random minimizer density tends to 2 / (w + 1) ≈ 0.18 for w = 10.
        assert!((0.12..0.30).contains(&density), "density {density}");
    }

    #[test]
    fn shared_window_shares_a_minimizer() {
        // The winnowing guarantee: two sequences sharing w + k − 1 exact
        // bases share at least one selected k-mer.
        let (k, w) = (9usize, 6usize);
        let g = genome(2_000, 3);
        let idx = KmerIndex::build(
            &g,
            IndexConfig {
                k,
                w,
                bucket_cap: usize::MAX,
            },
        );
        for start in (0..1_500).step_by(97) {
            let read = g.window(start, w + k - 1);
            let seeds = idx.seeds(read.as_slice());
            assert!(
                seeds
                    .iter()
                    .any(|s| s.ref_pos as usize == start + s.read_pos as usize),
                "window at {start} shares no minimizer"
            );
        }
    }

    #[test]
    fn bucket_cap_masks_homopolymer_repeats() {
        // A genome that is half homopolymer: the AAAA... k-mer bucket
        // explodes and must be masked, while unique k-mers survive.
        let mut bases: Vec<Base> = vec![Base::A; 600];
        bases.extend(genome(600, 4).iter().copied());
        let g = DnaSeq::new(bases);
        let capped = KmerIndex::build(
            &g,
            IndexConfig {
                k: 11,
                w: 1,
                bucket_cap: 32,
            },
        );
        assert!(capped.masked_buckets() >= 1, "poly-A bucket not masked");
        let poly_a = pack(&[Base::A; 11], 0, 11);
        assert!(capped.lookup(poly_a).is_empty());
        // Unique sequence is still seedable.
        let read = g.window(800, 60);
        assert!(!capped.seeds(read.as_slice()).is_empty());
    }

    #[test]
    fn reverse_complement_round_trips() {
        let g = genome(64, 5);
        let rc = reverse_complement(g.as_slice());
        let back = reverse_complement(&rc);
        assert_eq!(back, g.as_slice());
        assert_eq!(rc[0], g[g.len() - 1].complement());
    }

    #[test]
    #[should_panic(expected = "shorter than k")]
    fn tiny_reference_panics() {
        let g: DnaSeq = "ACG".parse().unwrap();
        KmerIndex::build(&g, IndexConfig::default());
    }
}
