//! # dphls-mapper — seeded long-read mapping on the systolic DP engine
//!
//! The mapping pipeline the DP-HLS kernels were built to serve: instead of
//! aligning pre-paired sequences, a read arrives alone and the pipeline
//! finds *where* it aligns —
//!
//! 1. **Index** ([`KmerIndex`]): a minimizer index over the reference with
//!    bucket-capped repeat masking.
//! 2. **Chain** ([`chain()`]): diagonal-banded colinear chaining of seed hits
//!    into one candidate locus and strand per read.
//! 3. **Extend** ([`map_read`]): banded X-drop DP
//!    ([`dphls_systolic::run_xdrop`]) of the read against the candidate
//!    window, sharing [`dphls_kernels::LinearParams`] with the kernel path.
//! 4. **Stream** ([`map_streamed`]): bounded hand-off between stages,
//!    in-order emission through [`dphls_host::OrderedWriter`], and per-read
//!    quarantine so a poisoned read cannot kill the run.
//!
//! ```
//! use dphls_mapper::{map_batch, KmerIndex, IndexConfig, MapperConfig};
//! use dphls_seq::gen::{ErrorModel, ReadSimulator};
//!
//! let mut sim = ReadSimulator::new(7).error_model(ErrorModel::PACBIO_CLR);
//! let genome = sim.genome().clone();
//! let read = sim.simulate_read(600, 0.05);
//! let index = KmerIndex::build(&genome, IndexConfig::default());
//! let outcomes = map_batch(
//!     &index,
//!     &genome,
//!     &[("read0".to_string(), read.read.as_slice().to_vec())],
//!     &MapperConfig::default(),
//! );
//! let m = outcomes[0].mapping().expect("high-identity read maps");
//! assert!(m.locus.abs_diff(read.start) < 64);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]

pub mod chain;
pub mod index;
pub mod pipeline;

pub use chain::{chain, Chain};
pub use index::{minimizers, reverse_complement, IndexConfig, KmerIndex, Seed};
pub use pipeline::{
    map_batch, map_fasta, map_read, map_streamed, MapOutcome, MapReport, MapStreamConfig,
    MapperConfig, Mapping, Strand,
};
