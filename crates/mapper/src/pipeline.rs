//! The mapping driver: seed → chain → X-drop extend, streamed over bounded
//! queues with in-order emission and per-read quarantine.
//!
//! The pipeline mirrors `dphls_host::run_streamed`'s shape — a producer
//! feeding a bounded channel, a worker pool, and an
//! [`OrderedWriter`] restoring input order — but
//! the work items are whole reads with *dynamic* cost (seed-hit counts and
//! extension lengths vary per read), which is exactly why the stages
//! communicate through queues instead of a static loop nest. A read that
//! panics mid-mapping (malformed input, adversarial content) is
//! **quarantined**: it surfaces as [`MapOutcome::Quarantined`] at its input
//! position and the run continues, matching the host engines'
//! `FailurePolicy::Quarantine` behavior.

use crate::chain::chain;
use crate::index::{reverse_complement, KmerIndex};
use crossbeam::channel::bounded;
use dphls_host::OrderedWriter;
use dphls_kernels::LinearParams;
use dphls_seq::fasta::{FastaError, FastaRecord};
use dphls_seq::{Base, DnaSeq};
use dphls_systolic::{run_xdrop, XDropConfig, XDropRun};
use std::fmt::Display;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which strand of the reference a read mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strand {
    /// The read matches the reference as given.
    Forward,
    /// The read's reverse complement matches the reference.
    Reverse,
}

/// One accepted mapping, emitted in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Identifier of the read (FASTA id or caller-supplied).
    pub read_id: String,
    /// Reference position the read's first covered base maps to (for a
    /// reverse-strand read: the start of the covered interval, forward
    /// coordinates).
    pub locus: usize,
    /// Mapped strand.
    pub strand: Strand,
    /// X-drop extension score of the read against the candidate window.
    pub score: i32,
    /// Interior DP cells the extension computed.
    pub cells: u64,
}

/// Outcome of one read, exactly one per input, in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapOutcome {
    /// The read chained and extended at a candidate locus.
    Mapped(Mapping),
    /// No candidate chain reached the anchor threshold.
    Unmapped {
        /// Identifier of the read.
        read_id: String,
    },
    /// The read (or its source record) was poisoned; the run continued.
    Quarantined {
        /// Identifier of the read, or `<input #idx>` for source errors.
        read_id: String,
        /// Panic or source-error text.
        message: String,
    },
}

impl MapOutcome {
    /// The mapping, if this outcome is [`MapOutcome::Mapped`].
    pub fn mapping(&self) -> Option<&Mapping> {
        match self {
            MapOutcome::Mapped(m) => Some(m),
            _ => None,
        }
    }
}

/// Mapping-policy knobs (seeding lives in [`crate::IndexConfig`], carried
/// by the index itself).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapperConfig {
    /// Diagonal tolerance when banding seeds into candidate chains; bounds
    /// the net indel drift a chain may accumulate.
    pub chain_band: u64,
    /// Minimum chained anchors for a candidate to be extended.
    pub min_anchors: usize,
    /// X-drop extension configuration (band half-width + threshold).
    pub xdrop: XDropConfig,
    /// Linear scoring scheme shared with the kernel path.
    pub params: LinearParams<i32>,
    /// Extra reference bases appended to the candidate window beyond the
    /// read length plus expected net deletion drift.
    pub window_slack: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        Self {
            chain_band: 96,
            min_anchors: 4,
            xdrop: XDropConfig {
                half_width: 32,
                x: 100,
            },
            params: LinearParams::dna(),
            window_slack: 48,
        }
    }
}

/// Streaming-stage sizing: worker count and queue bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapStreamConfig {
    /// Mapping worker threads.
    pub workers: usize,
    /// Capacity of the bounded hand-off queues between stages.
    pub queue: usize,
    /// Maximum reads in flight (admitted but not yet emitted); also sizes
    /// the reorder window, so in-order emission can never overflow.
    pub in_flight: usize,
}

impl Default for MapStreamConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue: 16,
            in_flight: 64,
        }
    }
}

/// Aggregate report of one streamed mapping run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MapReport {
    /// Reads pulled from the source (including poisoned ones).
    pub reads: usize,
    /// Reads that mapped.
    pub mapped: usize,
    /// Reads with no qualifying chain.
    pub unmapped: usize,
    /// Reads quarantined by a panic or source error.
    pub quarantined: usize,
    /// Total interior DP cells computed by the extension stage.
    pub cells: u64,
    /// Peak out-of-order outputs buffered while restoring input order.
    pub reorder_high_water: usize,
}

/// Maps one read against the indexed reference: seed both strands, chain
/// each, extend the heavier chain's candidate window with banded X-drop DP.
/// Returns `None` when neither strand produces `min_anchors` colinear
/// seeds.
pub fn map_read(
    index: &KmerIndex,
    genome: &DnaSeq,
    read: &[Base],
    cfg: &MapperConfig,
) -> Option<(usize, Strand, XDropRun)> {
    let fwd_seeds = index.seeds(read);
    let rc = reverse_complement(read);
    let rc_seeds = index.seeds(&rc);
    let fwd = chain(&fwd_seeds, cfg.chain_band, cfg.min_anchors);
    let rev = chain(&rc_seeds, cfg.chain_band, cfg.min_anchors);
    let (best, strand, oriented): (_, _, &[Base]) = match (fwd, rev) {
        (Some(f), Some(r)) if r.score() > f.score() => (r, Strand::Reverse, &rc),
        (Some(f), _) => (f, Strand::Forward, read),
        (None, Some(r)) => (r, Strand::Reverse, &rc),
        (None, None) => return None,
    };
    let locus = best.ref_start.min(genome.len().saturating_sub(1));
    // Candidate window: the read length plus headroom for net deletion
    // drift (the true span exceeds the read length when deletions
    // dominate) plus slack for the locus estimate's own error.
    let span = oriented.len() + oriented.len() / 8 + cfg.window_slack;
    let window = genome.window(locus, span.min(genome.len() - locus));
    let run = run_xdrop(
        oriented,
        window.as_slice(),
        |a, b| cfg.params.substitution(a == b),
        cfg.params.gap,
        &cfg.xdrop,
    );
    Some((locus, strand, run))
}

/// A unit of work entering the pipeline: a read, or a source error carried
/// to its input position for in-order quarantine.
enum MapJob {
    Read { id: String, read: Vec<Base> },
    SourceError { message: String },
}

fn tally(report: &mut MapReport, outcome: &MapOutcome) {
    match outcome {
        MapOutcome::Mapped(m) => {
            report.mapped += 1;
            report.cells += m.cells;
        }
        MapOutcome::Unmapped { .. } => report.unmapped += 1,
        MapOutcome::Quarantined { .. } => report.quarantined += 1,
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Streams reads through the seed → chain → extend pipeline, emitting one
/// [`MapOutcome`] per read **in input order** through `sink`.
///
/// Reads are pulled incrementally from `reads` (ids paired with base
/// vectors; source errors quarantine at their position), handed to
/// `stream.workers` mapping workers over bounded queues, and re-ordered
/// through an [`OrderedWriter`] whose window is sized to the in-flight
/// bound — admission is permit-gated so the reorder buffer cannot
/// overflow. A read that panics mid-mapping is quarantined and the run
/// continues.
///
/// # Panics
///
/// Panics if `stream.workers`, `stream.queue`, or `stream.in_flight` is
/// zero.
pub fn map_streamed<I, E, F>(
    index: &KmerIndex,
    genome: &DnaSeq,
    reads: I,
    cfg: &MapperConfig,
    stream: MapStreamConfig,
    sink: F,
) -> MapReport
where
    I: Iterator<Item = Result<(String, Vec<Base>), E>> + Send,
    E: Display,
    F: FnMut(usize, MapOutcome),
{
    assert!(stream.workers >= 1, "need at least one worker");
    assert!(stream.queue >= 1, "queues must be non-empty");
    assert!(stream.in_flight >= 1, "in-flight bound must be >= 1");
    let mut report = MapReport::default();
    let mut high_water = 0usize;
    std::thread::scope(|s| {
        let (in_tx, in_rx) = bounded::<(usize, MapJob)>(stream.queue);
        let (out_tx, out_rx) = bounded::<(usize, MapOutcome)>(stream.queue);
        let (permit_tx, permit_rx) = bounded::<()>(stream.in_flight);
        for _ in 0..stream.in_flight {
            permit_tx.send(()).expect("fresh permit channel");
        }

        // Producer: admit reads under the permit gate, converting source
        // errors into jobs so they quarantine at the right position.
        let producer = s.spawn(move || {
            let mut admitted = 0usize;
            for (idx, item) in reads.enumerate() {
                let job = match item {
                    Ok((id, read)) => MapJob::Read { id, read },
                    Err(e) => MapJob::SourceError {
                        message: e.to_string(),
                    },
                };
                if permit_rx.recv().is_err() || in_tx.send((idx, job)).is_err() {
                    break; // collector / workers gone: shutting down
                }
                admitted += 1;
            }
            admitted
        });

        // Worker pool: dynamic-cost mapping, panics quarantined per read.
        for _ in 0..stream.workers {
            let in_rx = in_rx.clone();
            let out_tx = out_tx.clone();
            s.spawn(move || {
                while let Ok((idx, job)) = in_rx.recv() {
                    let outcome = match job {
                        MapJob::SourceError { message } => MapOutcome::Quarantined {
                            read_id: format!("<input #{idx}>"),
                            message,
                        },
                        MapJob::Read { id, read } => {
                            let attempt = catch_unwind(AssertUnwindSafe(|| {
                                map_read(index, genome, &read, cfg)
                            }));
                            match attempt {
                                Ok(Some((locus, strand, run))) => MapOutcome::Mapped(Mapping {
                                    read_id: id,
                                    locus,
                                    strand,
                                    score: run.score,
                                    cells: run.cells,
                                }),
                                Ok(None) => MapOutcome::Unmapped { read_id: id },
                                Err(p) => MapOutcome::Quarantined {
                                    read_id: id,
                                    message: panic_text(p),
                                },
                            }
                        }
                    };
                    if out_tx.send((idx, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(in_rx);
        drop(out_tx);

        // Collector (this thread): restore input order, return permits as
        // outputs are emitted. The writer window exceeds the in-flight
        // bound by one, so a push can never overflow.
        let mut writer = OrderedWriter::new(stream.in_flight + 1, sink);
        for (idx, outcome) in out_rx.iter() {
            tally(&mut report, &outcome);
            let before = writer.next_emit();
            writer
                .push(idx, outcome)
                .expect("reorder window sized to the in-flight bound");
            for _ in 0..writer.next_emit() - before {
                // The producer may already be gone; permits then just drop.
                let _ = permit_tx.send(());
            }
        }
        assert!(
            writer.is_drained(),
            "collector exited with buffered outputs"
        );
        high_water = writer.high_water();
        report.reads = producer.join().expect("producer panicked");
    });
    report.reorder_high_water = high_water;
    report
}

/// Maps a batch of `(id, read)` pairs serially (no threads), returning one
/// outcome per input in order. The streaming path's semantics on a single
/// worker; convenient for examples and tests.
pub fn map_batch(
    index: &KmerIndex,
    genome: &DnaSeq,
    reads: &[(String, Vec<Base>)],
    cfg: &MapperConfig,
) -> Vec<MapOutcome> {
    reads
        .iter()
        .map(|(id, read)| {
            let attempt = catch_unwind(AssertUnwindSafe(|| map_read(index, genome, read, cfg)));
            match attempt {
                Ok(Some((locus, strand, run))) => MapOutcome::Mapped(Mapping {
                    read_id: id.clone(),
                    locus,
                    strand,
                    score: run.score,
                    cells: run.cells,
                }),
                Ok(None) => MapOutcome::Unmapped {
                    read_id: id.clone(),
                },
                Err(p) => MapOutcome::Quarantined {
                    read_id: id.clone(),
                    message: panic_text(p),
                },
            }
        })
        .collect()
}

/// Streams a FASTA source through the mapper: records parse leniently —
/// a malformed record or non-DNA symbol quarantines that read (the
/// [`FastaError`] carried to its input position) instead of killing the
/// run.
pub fn map_fasta<F>(
    index: &KmerIndex,
    genome: &DnaSeq,
    records: impl Iterator<Item = Result<FastaRecord, FastaError>> + Send,
    cfg: &MapperConfig,
    stream: MapStreamConfig,
    sink: F,
) -> MapReport
where
    F: FnMut(usize, MapOutcome),
{
    let reads = records.map(|rec| {
        let rec = rec?;
        let dna = rec.dna()?;
        Ok::<_, FastaError>((rec.id, dna.into_vec()))
    });
    map_streamed(index, genome, reads, cfg, stream, sink)
}
