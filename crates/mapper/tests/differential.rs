//! Differential suite: the systolic-side banded X-drop engine
//! (`dphls_systolic::run_xdrop`) against the CPU reference
//! (`dphls_baselines::xdrop_extend`). The two prune differently — the
//! baseline is unbanded, the engine re-centers a fixed band — so outside
//! the degenerate exhaustive point the relation is "both are lower bounds
//! of the full extension, and on high-identity reads both reach it".

use dphls_baselines::heuristics::xdrop_extend;
use dphls_kernels::LinearParams;
use dphls_seq::gen::{ErrorModel, ReadSimulator};
use dphls_seq::Base;
use dphls_systolic::{run_xdrop, XDropConfig};
use proptest::prelude::*;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<Base>> {
    proptest::collection::vec((0u8..4).prop_map(Base::from_code), 1..max_len)
}

fn sub(p: &LinearParams<i32>) -> impl Fn(&Base, &Base) -> i32 + '_ {
    move |a, b| p.substitution(a == b)
}

/// Full-matrix extension maximum — the common upper bound.
fn full_extension(q: &[Base], r: &[Base], p: &LinearParams<i32>) -> i32 {
    let n = r.len();
    let mut prev: Vec<i32> = (0..=n as i32).map(|j| j * p.gap).collect();
    let mut best = 0;
    for &qc in q {
        let mut cur = vec![0i32; n + 1];
        cur[0] = prev[0] + p.gap;
        for j in 1..=n {
            cur[j] = (prev[j - 1] + p.substitution(qc == r[j - 1]))
                .max(prev[j] + p.gap)
                .max(cur[j - 1] + p.gap);
            best = best.max(cur[j]);
        }
        prev = cur;
    }
    best
}

/// Large enough to never drop a cell at these sizes, small enough that the
/// baseline's `best - x` arithmetic cannot wrap.
const X_HUGE: i32 = 1 << 20;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exhaustive_configs_agree_cell_for_cell(q in dna(40), r in dna(40)) {
        // With nothing pruned both engines ARE the full extension matrix:
        // identical scores and identical interior cell counts.
        let p = LinearParams::<i32>::dna();
        let cfg = XDropConfig { x: X_HUGE, ..XDropConfig::exhaustive(q.len(), r.len()) };
        let engine = run_xdrop(&q, &r, sub(&p), p.gap, &cfg);
        let baseline = xdrop_extend(&q, &r, &p, X_HUGE);
        prop_assert_eq!(engine.score, baseline.score);
        prop_assert_eq!(engine.cells, baseline.cells);
        prop_assert_eq!(engine.cells, (q.len() * r.len()) as u64);
        prop_assert_eq!(engine.score, full_extension(&q, &r, &p));
    }

    #[test]
    fn both_engines_are_lower_bounds_of_the_full_extension(
        q in dna(48),
        r in dna(48),
        w in 1usize..16,
        x in 0i32..80,
    ) {
        let p = LinearParams::<i32>::dna();
        let exact = full_extension(&q, &r, &p);
        let engine = run_xdrop(&q, &r, sub(&p), p.gap, &XDropConfig { half_width: w, x });
        let baseline = xdrop_extend(&q, &r, &p, x);
        prop_assert!(engine.score <= exact && baseline.score <= exact);
        prop_assert!(engine.score >= 0 && baseline.score >= 0);
    }
}

#[test]
fn engines_agree_on_high_identity_extensions() {
    // The production operating point: reads at ≤ 5% error against their
    // true window. No optimal-path cell is pruned by either engine, so both
    // must land on the exact full-extension score — and the banded engine
    // must not visit more cells than the unbanded baseline's live window.
    let p = LinearParams::<i32>::dna();
    let cfg = XDropConfig {
        half_width: 64,
        x: 100,
    };
    for seed in 0..10u64 {
        let mut sim = ReadSimulator::new(0xD1FF + seed).error_model(ErrorModel::PACBIO_CLR);
        let r = sim.simulate_read(500, 0.05);
        let window = sim.genome().window(r.start, r.span);
        let exact = full_extension(r.read.as_slice(), window.as_slice(), &p);
        let engine = run_xdrop(r.read.as_slice(), window.as_slice(), sub(&p), p.gap, &cfg);
        let baseline = xdrop_extend(r.read.as_slice(), window.as_slice(), &p, 100);
        assert_eq!(engine.score, exact, "seed {seed}: engine missed exact");
        assert_eq!(baseline.score, exact, "seed {seed}: baseline missed exact");
        let full = (r.read.len() * window.len()) as u64;
        assert!(engine.cells < full / 2, "seed {seed}: engine barely pruned");
        assert!(baseline.cells < full, "seed {seed}");
    }
}

#[test]
fn both_engines_terminate_on_divergent_sequences() {
    // Disjoint homopolymers: every path decays by at least the gap penalty
    // per wavefront, so the X-drop test is guaranteed to fire in both
    // engines. (Random-vs-random DNA is NOT a termination case at
    // +2/−3/−2 — that scheme sits near the critical point where the
    // expected extension drift is ~zero.)
    let p = LinearParams::<i32>::dna();
    let q = vec![Base::A; 400];
    let r = vec![Base::C; 400];
    let cfg = XDropConfig {
        half_width: 32,
        x: 40,
    };
    let engine = run_xdrop(&q, &r, sub(&p), p.gap, &cfg);
    let baseline = xdrop_extend(&q, &r, &p, 40);
    let full = (q.len() * r.len()) as u64;
    assert!(engine.terminated, "engine should give up on junk");
    assert_eq!(engine.score, 0, "empty extension wins");
    assert_eq!(baseline.score, 0);
    assert!(engine.cells * 16 < full, "engine cells {}", engine.cells);
    assert!(
        baseline.cells * 16 < full,
        "baseline cells {}",
        baseline.cells
    );
}
