//! Property suites for the seeding and chaining stages: planted k-mers are
//! always recovered, chains are strictly colinear within their diagonal
//! band, and the repeat cap never masks away a read's true locus at
//! realistic error rates.

use dphls_mapper::{chain, map_read, IndexConfig, KmerIndex, MapperConfig, Seed};
use dphls_seq::gen::{ErrorModel, GenomeGenerator, ReadSimulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn planted_window_is_always_seeded(seed in 0u64..1 << 32, start in 0usize..3_800) {
        // Winnowing guarantee, read-vs-index flavor: any read sharing
        // w + k − 1 exact bases with the reference yields at least one seed
        // on the true diagonal.
        let genome = GenomeGenerator::new(seed).generate(4_000);
        let cfg = IndexConfig { k: 15, w: 5, bucket_cap: usize::MAX };
        let idx = KmerIndex::build(&genome, cfg);
        // start < 3,800 leaves >= 200 bases: always room for a 40-base read.
        let read = genome.window(start, 40);
        let seeds = idx.seeds(read.as_slice());
        prop_assert!(
            seeds.iter().any(|s| s.ref_pos as usize == start + s.read_pos as usize),
            "no true-diagonal seed for window at {start}"
        );
    }

    #[test]
    fn chains_are_strictly_colinear_within_their_band(
        raw in proptest::collection::vec((0u32..2_000, 0u32..50_000), 0..60),
        band in 1u64..200,
        min_anchors in 1usize..5,
    ) {
        let seeds: Vec<Seed> = raw
            .iter()
            .map(|&(read_pos, ref_pos)| Seed { read_pos, ref_pos })
            .collect();
        if let Some(c) = chain(&seeds, band, min_anchors) {
            prop_assert!(c.score() >= min_anchors);
            for pair in c.anchors.windows(2) {
                prop_assert!(pair[0].read_pos < pair[1].read_pos, "read_pos not strict");
                prop_assert!(pair[0].ref_pos < pair[1].ref_pos, "ref_pos not strict");
            }
            let lo = c.anchors.iter().map(Seed::diagonal).min().unwrap();
            let hi = c.anchors.iter().map(Seed::diagonal).max().unwrap();
            prop_assert!((hi - lo) as u64 <= band, "chain drifts past its band");
            // Every anchor must be one of the input seeds.
            for a in &c.anchors {
                prop_assert!(seeds.contains(a));
            }
        }
    }

    #[test]
    fn bucket_cap_never_drops_the_true_locus(seed in 0u64..1 << 20) {
        // The ISSUE's recall property at property-test scale: reads at ≤ 5%
        // error against a 100 kb reference must map to their true locus with
        // the DEFAULT (capped) index configuration.
        let genome = GenomeGenerator::new(seed ^ 0xC0FFEE).generate(100_000);
        let mut sim = ReadSimulator::with_genome(seed, genome.clone())
            .error_model(ErrorModel::PACBIO_CLR);
        let idx = KmerIndex::build(&genome, IndexConfig::default());
        let cfg = MapperConfig::default();
        for _ in 0..3 {
            let r = sim.simulate_read(1_000, 0.05);
            let (locus, _, run) = map_read(&idx, &genome, r.read.as_slice(), &cfg)
                .expect("5%-error read must map");
            prop_assert!(
                locus.abs_diff(r.start) <= 64,
                "locus {locus} vs true start {}", r.start
            );
            prop_assert!(run.score > 0);
        }
    }
}

#[test]
fn capped_and_uncapped_index_agree_on_unique_sequence() {
    // On a repeat-free random genome the default cap never fires, so the
    // capped index is byte-for-byte the uncapped one from the mapper's
    // perspective.
    let genome = GenomeGenerator::new(42).generate(50_000);
    let capped = KmerIndex::build(&genome, IndexConfig::default());
    let uncapped = KmerIndex::build(
        &genome,
        IndexConfig {
            bucket_cap: usize::MAX,
            ..IndexConfig::default()
        },
    );
    assert_eq!(capped.masked_buckets(), 0, "random genome tripped the cap");
    assert_eq!(capped.buckets(), uncapped.buckets());
    let read = genome.window(31_337, 500);
    assert_eq!(
        capped.seeds(read.as_slice()),
        uncapped.seeds(read.as_slice())
    );
}
