//! End-to-end recall and streaming-semantics harness: simulated long reads
//! (both strands, realistic error rates) must map back to their true loci,
//! in input order, with poisoned inputs quarantined rather than fatal.

use dphls_mapper::{
    map_batch, map_fasta, map_streamed, IndexConfig, KmerIndex, MapOutcome, MapStreamConfig,
    MapperConfig, Strand,
};
use dphls_seq::fasta::{FastaError, FastaRecord};
use dphls_seq::gen::{ErrorModel, ReadSimulator};
use dphls_seq::{Base, DnaSeq};

/// Locus tolerance: the chain estimates the locus from its first anchor,
/// which indel drift can shift by a few bases.
const LOCUS_TOL: usize = 64;

struct TestSet {
    genome: DnaSeq,
    /// `(id, read_bases, true_start, reverse?)`
    reads: Vec<(String, Vec<Base>, usize, bool)>,
}

fn simulated_set(seed: u64, n: usize, len: usize, error_rate: f64) -> TestSet {
    let mut sim = ReadSimulator::new(seed).error_model(ErrorModel::PACBIO_CLR);
    let genome = sim.genome().clone();
    let reads = (0..n)
        .map(|i| {
            let r = sim.simulate_read(len, error_rate);
            let reverse = i % 2 == 1;
            let bases = if reverse {
                dphls_mapper::reverse_complement(r.read.as_slice())
            } else {
                r.read.as_slice().to_vec()
            };
            (format!("r{i}"), bases, r.start, reverse)
        })
        .collect();
    TestSet { genome, reads }
}

fn check_mapped(outcome: &MapOutcome, id: &str, start: usize, reverse: bool) {
    let m = outcome
        .mapping()
        .unwrap_or_else(|| panic!("read {id} (true start {start}) did not map: {outcome:?}"));
    assert_eq!(m.read_id, id);
    let expect = if reverse {
        Strand::Reverse
    } else {
        Strand::Forward
    };
    assert_eq!(m.strand, expect, "read {id} mapped to the wrong strand");
    assert!(
        m.locus.abs_diff(start) <= LOCUS_TOL,
        "read {id}: locus {} vs true start {start}",
        m.locus
    );
    assert!(m.score > 0, "read {id}: non-positive score {}", m.score);
    assert!(m.cells > 0);
}

#[test]
fn streamed_reads_all_map_to_their_true_locus_in_order() {
    let set = simulated_set(0xFEED, 60, 1_000, 0.05);
    let index = KmerIndex::build(&set.genome, IndexConfig::default());
    let cfg = MapperConfig::default();
    let stream = MapStreamConfig {
        workers: 4,
        queue: 8,
        in_flight: 16,
    };
    let source = set
        .reads
        .iter()
        .map(|(id, bases, _, _)| Ok::<_, String>((id.clone(), bases.clone())));
    let mut seen = Vec::new();
    let report = map_streamed(&index, &set.genome, source, &cfg, stream, |idx, out| {
        seen.push((idx, out))
    });
    assert_eq!(report.reads, set.reads.len());
    assert_eq!(
        report.mapped,
        set.reads.len(),
        "imperfect recall: {report:?}"
    );
    assert_eq!(report.unmapped + report.quarantined, 0);
    assert!(report.cells > 0);
    assert!(report.reorder_high_water <= stream.in_flight);
    // One outcome per input, emitted 0, 1, 2, ... despite 4 racing workers.
    assert_eq!(seen.len(), set.reads.len());
    for (pos, (idx, out)) in seen.iter().enumerate() {
        assert_eq!(*idx, pos, "emission order violated at {pos}");
        let (id, _, start, reverse) = &set.reads[pos];
        check_mapped(out, id, *start, *reverse);
    }
}

#[test]
fn tiny_in_flight_window_drains_everything() {
    // The permit gate at its tightest: two reads in flight, four workers.
    let set = simulated_set(0xACE, 40, 600, 0.04);
    let index = KmerIndex::build(&set.genome, IndexConfig::default());
    let stream = MapStreamConfig {
        workers: 4,
        queue: 4,
        in_flight: 2,
    };
    let source = set
        .reads
        .iter()
        .map(|(id, bases, _, _)| Ok::<_, String>((id.clone(), bases.clone())));
    let mut next = 0usize;
    let report = map_streamed(
        &index,
        &set.genome,
        source,
        &MapperConfig::default(),
        stream,
        |idx, _| {
            assert_eq!(idx, next);
            next += 1;
        },
    );
    assert_eq!(next, set.reads.len());
    assert_eq!(report.mapped, set.reads.len());
    assert!(report.reorder_high_water <= 2);
}

#[test]
fn source_errors_quarantine_at_their_position() {
    let set = simulated_set(0xBEE, 8, 500, 0.03);
    let index = KmerIndex::build(&set.genome, IndexConfig::default());
    let source = set.reads.iter().enumerate().map(|(i, (id, bases, _, _))| {
        if i == 3 {
            Err("truncated record".to_string())
        } else {
            Ok((id.clone(), bases.clone()))
        }
    });
    let mut outcomes = Vec::new();
    let report = map_streamed(
        &index,
        &set.genome,
        source,
        &MapperConfig::default(),
        MapStreamConfig::default(),
        |_, out| outcomes.push(out),
    );
    assert_eq!(report.reads, 8);
    assert_eq!(report.quarantined, 1);
    assert_eq!(report.mapped, 7);
    match &outcomes[3] {
        MapOutcome::Quarantined { read_id, message } => {
            assert_eq!(read_id, "<input #3>");
            assert!(message.contains("truncated record"));
        }
        other => panic!("expected quarantine at index 3, got {other:?}"),
    }
    assert!(outcomes[2].mapping().is_some() && outcomes[4].mapping().is_some());
}

#[test]
fn panicking_reads_quarantine_instead_of_killing_the_run() {
    // min_anchors = 0 trips the chainer's own assertion inside map_read —
    // a stand-in for any per-read panic; the pipeline must absorb it.
    let set = simulated_set(0xD00D, 6, 400, 0.03);
    let index = KmerIndex::build(&set.genome, IndexConfig::default());
    let poisoned = MapperConfig {
        min_anchors: 0,
        ..MapperConfig::default()
    };
    let source = set
        .reads
        .iter()
        .map(|(id, bases, _, _)| Ok::<_, String>((id.clone(), bases.clone())));
    let mut outcomes = Vec::new();
    let report = map_streamed(
        &index,
        &set.genome,
        source,
        &poisoned,
        MapStreamConfig::default(),
        |_, out| outcomes.push(out),
    );
    assert_eq!(report.quarantined, 6, "{report:?}");
    assert_eq!(report.mapped + report.unmapped, 0);
    for (i, out) in outcomes.iter().enumerate() {
        match out {
            MapOutcome::Quarantined { read_id, message } => {
                assert_eq!(read_id, &format!("r{i}"));
                assert!(message.contains("min_anchors"), "message: {message}");
            }
            other => panic!("read {i}: expected quarantine, got {other:?}"),
        }
    }
}

#[test]
fn fasta_records_with_bad_symbols_quarantine() {
    let set = simulated_set(0xFA57, 5, 500, 0.03);
    let index = KmerIndex::build(&set.genome, IndexConfig::default());
    let to_string = |bases: &[Base]| bases.iter().map(|b| b.to_char()).collect::<String>();
    let records: Vec<Result<FastaRecord, FastaError>> = set
        .reads
        .iter()
        .enumerate()
        .map(|(i, (id, bases, _, _))| {
            let mut sequence = to_string(bases);
            if i == 2 {
                sequence.insert(10, 'X'); // not a DNA base
            }
            Ok(FastaRecord {
                id: id.clone(),
                description: String::new(),
                sequence,
            })
        })
        .collect();
    let mut outcomes = Vec::new();
    let report = map_fasta(
        &index,
        &set.genome,
        records.into_iter(),
        &MapperConfig::default(),
        MapStreamConfig::default(),
        |_, out| outcomes.push(out),
    );
    assert_eq!(report.quarantined, 1);
    assert_eq!(report.mapped, 4);
    assert!(matches!(&outcomes[2], MapOutcome::Quarantined { .. }));
    for (i, (_, _, start, reverse)) in set.reads.iter().enumerate() {
        if i != 2 {
            check_mapped(&outcomes[i], &set.reads[i].0, *start, *reverse);
        }
    }
}

#[test]
fn unrelated_reads_are_unmapped_not_forced() {
    let set = simulated_set(0x0FF, 4, 500, 0.03);
    let index = KmerIndex::build(&set.genome, IndexConfig::default());
    // Reads drawn from a DIFFERENT genome share no 15-mers with this one.
    let mut alien = ReadSimulator::new(0x414C_u64).error_model(ErrorModel::PACBIO_CLR);
    let reads: Vec<(String, Vec<Base>)> = (0..4)
        .map(|i| {
            let r = alien.simulate_read(500, 0.03);
            (format!("alien{i}"), r.read.as_slice().to_vec())
        })
        .collect();
    let outcomes = map_batch(&index, &set.genome, &reads, &MapperConfig::default());
    for out in &outcomes {
        assert!(
            matches!(out, MapOutcome::Unmapped { .. }),
            "alien read should not map: {out:?}"
        );
    }
}

#[test]
fn batch_and_streamed_agree() {
    let set = simulated_set(0x5A5A, 24, 800, 0.05);
    let index = KmerIndex::build(&set.genome, IndexConfig::default());
    let cfg = MapperConfig::default();
    let pairs: Vec<(String, Vec<Base>)> = set
        .reads
        .iter()
        .map(|(id, bases, _, _)| (id.clone(), bases.clone()))
        .collect();
    let batch = map_batch(&index, &set.genome, &pairs, &cfg);
    let source = pairs
        .iter()
        .map(|(id, bases)| Ok::<_, String>((id.clone(), bases.clone())));
    let mut streamed = Vec::new();
    map_streamed(
        &index,
        &set.genome,
        source,
        &cfg,
        MapStreamConfig::default(),
        |_, out| streamed.push(out),
    );
    assert_eq!(batch, streamed, "serial and streamed outcomes diverge");
}
