//! The sequence alphabets of Table 1, as Rust types.
//!
//! Each alphabet records its on-device storage width ([`Symbol::BITS`]): the
//! systolic back-end uses it to size local sequence buffers and the host model
//! uses it to compute transfer cycles, exactly as the HLS `char_t` width
//! would determine them on the FPGA.

use dphls_fixed::ApFixed;
use std::fmt;

/// A symbol that can stream through the systolic array.
///
/// `BITS` is the storage width of one symbol in the device-side sequence
/// buffers (e.g. 2 for a DNA base, 64 for a complex sample of two
/// `ap_fixed<32,26>` halves).
pub trait Symbol: Copy + fmt::Debug + PartialEq + Send + Sync + 'static {
    /// Storage width of one symbol in bits.
    const BITS: u32;
}

/// A DNA/RNA nucleotide stored in 2 bits (`ap_uint<2>` in the paper's
/// Listing 1).
///
/// # Example
///
/// ```
/// use dphls_seq::Base;
/// assert_eq!(Base::from_char('G'), Some(Base::G));
/// assert_eq!(Base::G.to_char(), 'G');
/// assert_eq!(Base::from_code(3), Base::T);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code 0).
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Guanine (code 2).
    G = 2,
    /// Thymine / Uracil (code 3).
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decodes a 2-bit code (wraps on the low 2 bits).
    pub fn from_code(code: u8) -> Base {
        Base::ALL[(code & 3) as usize]
    }

    /// The 2-bit code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses an IUPAC character (case-insensitive; `U` maps to `T`).
    pub fn from_char(c: char) -> Option<Base> {
        match c.to_ascii_uppercase() {
            'A' => Some(Base::A),
            'C' => Some(Base::C),
            'G' => Some(Base::G),
            'T' | 'U' => Some(Base::T),
            _ => None,
        }
    }

    /// The uppercase character for this base.
    pub fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }

    /// Watson–Crick complement.
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::T => Base::A,
            Base::C => Base::G,
            Base::G => Base::C,
        }
    }
}

impl Symbol for Base {
    const BITS: u32 = 2;
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// One of the 20 standard amino acids, stored as a 5-bit index (kernel #15).
///
/// The index order matches the BLOSUM matrix rows used by
/// `dphls-kernels::k15_protein_sw`.
///
/// # Example
///
/// ```
/// use dphls_seq::AminoAcid;
/// let trp = AminoAcid::from_char('W').unwrap();
/// assert_eq!(trp.to_char(), 'W');
/// assert!(trp.index() < 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AminoAcid(u8);

/// Canonical one-letter order used for indices 0..20.
pub const AMINO_ORDER: [char; 20] = [
    'A', 'R', 'N', 'D', 'C', 'Q', 'E', 'G', 'H', 'I', 'L', 'K', 'M', 'F', 'P', 'S', 'T', 'W', 'Y',
    'V',
];

impl AminoAcid {
    /// Creates from an index in `0..20`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 20`.
    pub fn from_index(index: u8) -> AminoAcid {
        assert!(index < 20, "amino acid index must be < 20");
        AminoAcid(index)
    }

    /// The matrix index in `0..20`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parses a one-letter code (case-insensitive).
    pub fn from_char(c: char) -> Option<AminoAcid> {
        let up = c.to_ascii_uppercase();
        AMINO_ORDER
            .iter()
            .position(|&a| a == up)
            .map(|i| AminoAcid(i as u8))
    }

    /// The one-letter code.
    pub fn to_char(self) -> char {
        AMINO_ORDER[self.index()]
    }
}

impl Symbol for AminoAcid {
    const BITS: u32 = 5;
}

impl fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Number of entries in a DNA profile column: A, C, G, T, and gap.
pub const PROFILE_DEPTH: usize = 5;

/// One column of a DNA sequence profile: the frequency of each nucleotide and
/// of gaps at this alignment position (kernel #8; §2.2.1).
///
/// Stored as 16-bit counts — on the device each column is a tuple of five
/// integers, so `BITS = 5 × 16 = 80`.
///
/// # Example
///
/// ```
/// use dphls_seq::ProfileColumn;
/// let col = ProfileColumn::new([3, 0, 0, 0, 1]); // 3×A, 1×gap
/// assert_eq!(col.total(), 4);
/// assert_eq!(col.count(0), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ProfileColumn {
    counts: [u16; PROFILE_DEPTH],
}

impl ProfileColumn {
    /// Creates a column from raw counts `[A, C, G, T, gap]`.
    pub fn new(counts: [u16; PROFILE_DEPTH]) -> Self {
        Self { counts }
    }

    /// Count of entry `i` (0..=3 = A,C,G,T; 4 = gap).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 5`.
    pub fn count(&self, i: usize) -> u16 {
        self.counts[i]
    }

    /// All five counts.
    pub fn counts(&self) -> [u16; PROFILE_DEPTH] {
        self.counts
    }

    /// Total number of sequences contributing to this column.
    pub fn total(&self) -> u32 {
        self.counts.iter().map(|&c| c as u32).sum()
    }
}

impl Symbol for ProfileColumn {
    const BITS: u32 = (PROFILE_DEPTH as u32) * 16;
}

/// The fixed-point format of one complex-signal half, `ap_fixed<32, 26>`
/// (paper Listing 1, right).
pub type SignalFixed = ApFixed<32, 26>;

/// A complex sample for the DTW kernel (#9): two `ap_fixed<32,26>` halves.
///
/// # Example
///
/// ```
/// use dphls_seq::Complex;
/// let z = Complex::from_f64(1.0, -2.0);
/// assert_eq!(z.re.to_f64(), 1.0);
/// assert_eq!(z.im.to_f64(), -2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Complex {
    /// Real part.
    pub re: SignalFixed,
    /// Imaginary part.
    pub im: SignalFixed,
}

impl Complex {
    /// Builds a sample from two floats (each rounded into `ap_fixed<32,26>`).
    pub fn from_f64(re: f64, im: f64) -> Self {
        Self {
            re: SignalFixed::from_f64(re),
            im: SignalFixed::from_f64(im),
        }
    }
}

impl Symbol for Complex {
    const BITS: u32 = 64;
}

impl Symbol for i16 {
    const BITS: u32 = 16;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_roundtrips_chars() {
        for c in ['A', 'C', 'G', 'T'] {
            assert_eq!(Base::from_char(c).unwrap().to_char(), c);
        }
        assert_eq!(Base::from_char('u'), Some(Base::T));
        assert_eq!(Base::from_char('N'), None);
    }

    #[test]
    fn base_codes_roundtrip() {
        for code in 0..4u8 {
            assert_eq!(Base::from_code(code).code(), code);
        }
        assert_eq!(Base::from_code(7), Base::T); // wraps low 2 bits
    }

    #[test]
    fn base_complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn amino_parses_all_twenty() {
        for (i, &c) in AMINO_ORDER.iter().enumerate() {
            let aa = AminoAcid::from_char(c).unwrap();
            assert_eq!(aa.index(), i);
            assert_eq!(aa.to_char(), c);
        }
        assert_eq!(AminoAcid::from_char('B'), None);
        assert_eq!(AminoAcid::from_char('w'), AminoAcid::from_char('W'));
    }

    #[test]
    #[should_panic(expected = "< 20")]
    fn amino_index_bound() {
        AminoAcid::from_index(20);
    }

    #[test]
    fn profile_column_totals() {
        let col = ProfileColumn::new([1, 2, 3, 4, 5]);
        assert_eq!(col.total(), 15);
        assert_eq!(col.count(4), 5);
        assert_eq!(col.counts(), [1, 2, 3, 4, 5]);
    }

    #[test]
    fn symbol_bits_match_paper_types() {
        assert_eq!(Base::BITS, 2); // ap_uint<2>
        assert_eq!(Complex::BITS, 64); // two ap_fixed<32,26>
        assert_eq!(<i16 as Symbol>::BITS, 16);
        assert_eq!(ProfileColumn::BITS, 80);
        assert_eq!(AminoAcid::BITS, 5);
    }

    #[test]
    fn complex_from_f64() {
        let z = Complex::from_f64(0.5, 0.25);
        assert_eq!(z.re.to_f64(), 0.5);
        assert_eq!(z.im.to_f64(), 0.25);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Base::G.to_string(), "G");
        assert_eq!(AminoAcid::from_char('W').unwrap().to_string(), "W");
    }
}
