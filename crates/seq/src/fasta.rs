//! Minimal FASTA reading/writing, so workloads can come from (or be saved
//! as) the standard interchange format the paper's tools consume.
//!
//! Only the features the reproduction needs: multi-record parse with
//! wrapped sequence lines, comments, and round-trip writing, in two forms —
//! the whole-text batch [`parse`] and the incremental pull-based
//! [`FastaStream`] that reads one record at a time from any [`BufRead`]
//! source (the front end of the host streaming pipeline, which must not
//! materialize the workload). Both forms share the same [`FastaError`]
//! surface, record semantics, and 1-based error line numbers; the
//! differential suite in `tests/fasta_stream.rs` holds them identical.
//! DNA and protein records are parsed through the same machinery.

use crate::{AminoAcid, Base, DnaSeq, ProteinSeq, Sequence};
use std::fmt;
use std::io::BufRead;

/// A named FASTA record before alphabet interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text after `>`, up to the first whitespace.
    pub id: String,
    /// Header text after the id (description), possibly empty.
    pub description: String,
    /// Raw sequence characters (whitespace removed).
    pub sequence: String,
}

impl FastaRecord {
    /// Builds an empty record from the text after a `>`: id up to the first
    /// whitespace, the rest (trimmed) as the description. Shared by the
    /// batch and incremental parsers so their header semantics cannot
    /// drift apart.
    fn from_header(header: &str) -> Self {
        let mut parts = header.splitn(2, char::is_whitespace);
        FastaRecord {
            id: parts.next().unwrap_or("").to_string(),
            description: parts.next().unwrap_or("").trim().to_string(),
            sequence: String::new(),
        }
    }

    /// Appends one sequence line, dropping any whitespace inside it.
    /// Shared by the batch and incremental parsers.
    fn push_seq_line(&mut self, line: &str) {
        self.sequence
            .extend(line.chars().filter(|c| !c.is_whitespace()));
    }

    /// Interprets the record's sequence as DNA.
    ///
    /// # Errors
    ///
    /// Returns [`FastaError::BadSymbol`] on the first non-ACGTU character.
    pub fn dna(&self) -> Result<DnaSeq, FastaError> {
        let seq: Result<Vec<Base>, FastaError> = self
            .sequence
            .chars()
            .map(|c| {
                Base::from_char(c).ok_or(FastaError::BadSymbol {
                    id: self.id.clone(),
                    symbol: c,
                })
            })
            .collect();
        Ok(Sequence::new(seq?))
    }

    /// Interprets the record's sequence as a protein.
    ///
    /// # Errors
    ///
    /// Returns [`FastaError::BadSymbol`] on the first non-amino-acid
    /// character.
    pub fn protein(&self) -> Result<ProteinSeq, FastaError> {
        let seq: Result<Vec<AminoAcid>, FastaError> = self
            .sequence
            .chars()
            .map(|c| {
                AminoAcid::from_char(c).ok_or(FastaError::BadSymbol {
                    id: self.id.clone(),
                    symbol: c,
                })
            })
            .collect();
        Ok(Sequence::new(seq?))
    }
}

/// Error from FASTA parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastaError {
    /// Sequence data appeared before any `>` header.
    MissingHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A record had a header but no sequence lines.
    EmptyRecord {
        /// The record id.
        id: String,
        /// 1-based line number of the record's `>` header.
        line: usize,
    },
    /// A sequence character failed alphabet conversion.
    BadSymbol {
        /// The record id.
        id: String,
        /// The offending character.
        symbol: char,
    },
    /// The underlying reader failed (incremental parse only; the message is
    /// the I/O error's display form so the variant stays `Clone + Eq`).
    Io {
        /// The I/O error message.
        message: String,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::MissingHeader { line } => {
                write!(f, "sequence data before any '>' header at line {line}")
            }
            FastaError::EmptyRecord { id, line } => {
                write!(f, "record '{id}' (header at line {line}) has no sequence")
            }
            FastaError::BadSymbol { id, symbol } => {
                write!(f, "record '{id}' contains invalid symbol {symbol:?}")
            }
            FastaError::Io { message } => write!(f, "FASTA read failed: {message}"),
        }
    }
}

impl std::error::Error for FastaError {}

/// Parses FASTA text into raw records.
///
/// # Errors
///
/// Returns [`FastaError`] on data before the first header or an empty
/// record.
///
/// # Example
///
/// ```
/// use dphls_seq::fasta::parse;
/// let recs = parse(">seq1 test\nACGT\nACGT\n>seq2\nTTTT\n")?;
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[0].id, "seq1");
/// assert_eq!(recs[0].sequence, "ACGTACGT");
/// # Ok::<(), dphls_seq::fasta::FastaError>(())
/// ```
pub fn parse(text: &str) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    // Header line of each record, parallel to `records`, so empty-record
    // errors can point at the offending `>` line. Comment and blank lines
    // still advance `lineno` (it indexes *file* lines, not logical ones).
    let mut header_lines: Vec<usize> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            records.push(FastaRecord::from_header(header));
            header_lines.push(lineno + 1);
        } else {
            let Some(rec) = records.last_mut() else {
                return Err(FastaError::MissingHeader { line: lineno + 1 });
            };
            rec.push_seq_line(line);
        }
    }
    for (rec, &line) in records.iter().zip(&header_lines) {
        if rec.sequence.is_empty() {
            return Err(FastaError::EmptyRecord {
                id: rec.id.clone(),
                line,
            });
        }
    }
    Ok(records)
}

/// Pull-based incremental FASTA parser: an iterator yielding one
/// [`FastaRecord`] at a time from any [`BufRead`] source, holding only the
/// record under construction in memory. This is the producer end of the
/// host streaming pipeline, where the workload must never be materialized.
///
/// Semantics match [`parse`] exactly — trimmed lines, `;` comments, wrapped
/// sequence data, CRLF tolerance, the same [`FastaError`] values with the
/// same 1-based line numbers — with one inherent difference: [`parse`]
/// returns nothing on a malformed file, while the stream yields every
/// record that *precedes* the malformed one before yielding the error.
/// The differential tests in `tests/fasta_stream.rs` pin both halves of
/// that contract. After yielding an error the iterator is fused (returns
/// `None` forever) — unless [`lenient`](FastaStream::lenient) mode is on,
/// where malformed records are yielded as per-record errors (with their
/// line numbers) and parsing continues with the next record.
///
/// # Example
///
/// ```
/// use dphls_seq::fasta::FastaStream;
/// let text = ">a\nACGT\n>b\nTT\nTT\n";
/// let recs: Vec<_> = FastaStream::new(text.as_bytes())
///     .collect::<Result<Vec<_>, _>>()?;
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[1].sequence, "TTTT");
/// # Ok::<(), dphls_seq::fasta::FastaError>(())
/// ```
pub struct FastaStream<R> {
    reader: R,
    /// 1-based number of the last line read.
    lineno: usize,
    /// Record under construction plus its header line, if any.
    pending: Option<(FastaRecord, usize)>,
    /// Set after EOF or a fatal error; the iterator then yields `None`.
    done: bool,
    /// Lenient mode: record-level errors don't fuse the iterator.
    lenient: bool,
    buf: String,
}

impl<R: BufRead> FastaStream<R> {
    /// Wraps a buffered reader in an incremental record iterator.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            lineno: 0,
            pending: None,
            done: false,
            lenient: false,
            buf: String::new(),
        }
    }

    /// Switches the stream to **lenient** mode: a malformed record
    /// ([`FastaError::EmptyRecord`], [`FastaError::MissingHeader`]) is
    /// yielded as an `Err` — with the same value and line number strict
    /// mode would report — but the iterator keeps going, yielding every
    /// well-formed record that follows. One stray data line yields one
    /// `MissingHeader` error. I/O errors ([`FastaError::Io`]) remain
    /// fatal: a broken reader cannot be resumed.
    ///
    /// This is the parser half of the host pipeline's degradation
    /// contract: feed a lenient stream to a `Quarantine`-policy streamed
    /// run and malformed records become quarantined pairs instead of
    /// ending the run.
    ///
    /// ```
    /// use dphls_seq::fasta::{FastaError, FastaStream};
    /// let text = ">a\nACGT\n>empty\n>b\nTT\n";
    /// let items: Vec<_> = FastaStream::new(text.as_bytes()).lenient().collect();
    /// assert_eq!(items.len(), 3);
    /// assert!(items[0].is_ok());
    /// assert!(matches!(
    ///     items[1],
    ///     Err(FastaError::EmptyRecord { line: 3, .. })
    /// ));
    /// assert_eq!(items[2].as_ref().unwrap().sequence, "TT");
    /// ```
    pub fn lenient(mut self) -> Self {
        self.lenient = true;
        self
    }

    /// Closes the pending record: errors if it never saw sequence data,
    /// exactly as [`parse`]'s end-of-text sweep would.
    fn finish_pending(
        pending: Option<(FastaRecord, usize)>,
    ) -> Option<Result<FastaRecord, FastaError>> {
        let (rec, header_line) = pending?;
        if rec.sequence.is_empty() {
            Some(Err(FastaError::EmptyRecord {
                id: rec.id,
                line: header_line,
            }))
        } else {
            Some(Ok(rec))
        }
    }
}

impl<R: BufRead> Iterator for FastaStream<R> {
    type Item = Result<FastaRecord, FastaError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return Self::finish_pending(self.pending.take());
                }
                Ok(_) => self.lineno += 1,
                Err(e) => {
                    self.done = true;
                    return Some(Err(FastaError::Io {
                        message: e.to_string(),
                    }));
                }
            }
            let line = self.buf.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            if let Some(header) = line.strip_prefix('>') {
                let next = FastaRecord::from_header(header);
                let prev = self.pending.replace((next, self.lineno));
                if let Some(done) = Self::finish_pending(prev) {
                    if done.is_err() && !self.lenient {
                        // Strict mode fuses on the first record error;
                        // lenient mode keeps the new header pending and
                        // carries on after yielding it.
                        self.done = true;
                    }
                    return Some(done);
                }
            } else {
                let Some((rec, _)) = self.pending.as_mut() else {
                    if !self.lenient {
                        self.done = true;
                    }
                    return Some(Err(FastaError::MissingHeader { line: self.lineno }));
                };
                rec.push_seq_line(line);
            }
        }
    }
}

/// Parses FASTA text into named DNA sequences.
///
/// # Errors
///
/// Returns [`FastaError`] on malformed records or non-ACGTU characters.
pub fn parse_dna(text: &str) -> Result<Vec<(String, DnaSeq)>, FastaError> {
    parse(text)?
        .into_iter()
        .map(|rec| {
            let seq = rec.dna()?;
            Ok((rec.id, seq))
        })
        .collect()
}

/// Parses FASTA text into named protein sequences.
///
/// # Errors
///
/// Returns [`FastaError`] on malformed records or non-amino-acid characters.
pub fn parse_protein(text: &str) -> Result<Vec<(String, ProteinSeq)>, FastaError> {
    parse(text)?
        .into_iter()
        .map(|rec| {
            let seq = rec.protein()?;
            Ok((rec.id, seq))
        })
        .collect()
}

/// Writes records as FASTA with lines wrapped at `width` characters.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn write_dna<'a>(
    records: impl IntoIterator<Item = (&'a str, &'a DnaSeq)>,
    width: usize,
) -> String {
    assert!(width > 0, "wrap width must be non-zero");
    let mut out = String::new();
    for (id, seq) in records {
        out.push('>');
        out.push_str(id);
        out.push('\n');
        let text = seq.to_string();
        for chunk in text.as_bytes().chunks(width) {
            out.push_str(std::str::from_utf8(chunk).expect("ASCII"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_record_with_wrapping() {
        let recs = parse(">a first\nACGT\nacgt\n\n>b\nTT TT\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "a");
        assert_eq!(recs[0].description, "first");
        assert_eq!(recs[0].sequence, "ACGTacgt");
        assert_eq!(recs[1].sequence, "TTTT");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let recs = parse("; comment\n>x\nAC\n; mid comment\nGT\n").unwrap();
        assert_eq!(recs[0].sequence, "ACGT");
    }

    #[test]
    fn data_before_header_errors() {
        let err = parse("ACGT\n>x\nAC\n").unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_record_errors_with_header_line() {
        let err = parse(">x\n>y\nACGT\n").unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { line: 1, .. }));

        // A record closed by EOF with no sequence also errors, pointing at
        // its own header line.
        let err = parse(">a\nACGT\n>b\n").unwrap_err();
        assert!(matches!(
            err,
            FastaError::EmptyRecord { ref id, line: 3 } if id == "b"
        ));
    }

    #[test]
    fn empty_record_line_correct_across_comment_separators() {
        // Regression for the line-number audit: comment and blank lines
        // between records must still count toward the reported line number.
        let text =
            ">a\nACGT\n; separator one\n\n; separator two\n>empty\n; only comments\n>c\nTT\n";
        let err = parse(text).unwrap_err();
        assert!(
            matches!(err, FastaError::EmptyRecord { ref id, line: 6 } if id == "empty"),
            "{err:?}"
        );
    }

    #[test]
    fn missing_header_line_correct_after_comments() {
        // Comment/blank lines before the stray data must count in the
        // reported line number (they are file lines, not logical lines).
        let err = parse("; c1\n\n; c2\nACGT\n>x\nAC\n").unwrap_err();
        assert!(
            matches!(err, FastaError::MissingHeader { line: 4 }),
            "{err:?}"
        );
    }

    #[test]
    fn dna_parse_and_roundtrip() {
        let named = parse_dna(">r1\nACGTACGTAC\n").unwrap();
        assert_eq!(named[0].1.len(), 10);
        let text = write_dna(named.iter().map(|(n, s)| (n.as_str(), s)), 4);
        assert_eq!(text, ">r1\nACGT\nACGT\nAC\n");
        let back = parse_dna(&text).unwrap();
        assert_eq!(back, named);
    }

    #[test]
    fn dna_rejects_ambiguity_codes() {
        let err = parse_dna(">r\nACGNT\n").unwrap_err();
        assert!(matches!(err, FastaError::BadSymbol { symbol: 'N', .. }));
    }

    #[test]
    fn protein_parse() {
        let named = parse_protein(">p\nMKWVTF\n").unwrap();
        assert_eq!(named[0].1.to_string(), "MKWVTF");
        assert!(parse_protein(">p\nMKB\n").is_err()); // B not standard
    }

    #[test]
    fn generator_output_roundtrips_through_fasta() {
        let g = crate::gen::GenomeGenerator::new(3).generate(200);
        let text = write_dna([("genome", &g)], 60);
        let back = parse_dna(&text).unwrap();
        assert_eq!(back[0].1, g);
    }
}
