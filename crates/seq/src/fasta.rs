//! Minimal FASTA reading/writing, so workloads can come from (or be saved
//! as) the standard interchange format the paper's tools consume.
//!
//! Only the features the reproduction needs: multi-record parse with
//! wrapped sequence lines, comments, and round-trip writing. DNA and protein
//! records are parsed through the same machinery.

use crate::{AminoAcid, Base, DnaSeq, ProteinSeq, Sequence};
use std::fmt;

/// A named FASTA record before alphabet interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text after `>`, up to the first whitespace.
    pub id: String,
    /// Header text after the id (description), possibly empty.
    pub description: String,
    /// Raw sequence characters (whitespace removed).
    pub sequence: String,
}

/// Error from FASTA parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastaError {
    /// Sequence data appeared before any `>` header.
    MissingHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A record had a header but no sequence lines.
    EmptyRecord {
        /// The record id.
        id: String,
    },
    /// A sequence character failed alphabet conversion.
    BadSymbol {
        /// The record id.
        id: String,
        /// The offending character.
        symbol: char,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::MissingHeader { line } => {
                write!(f, "sequence data before any '>' header at line {line}")
            }
            FastaError::EmptyRecord { id } => write!(f, "record '{id}' has no sequence"),
            FastaError::BadSymbol { id, symbol } => {
                write!(f, "record '{id}' contains invalid symbol {symbol:?}")
            }
        }
    }
}

impl std::error::Error for FastaError {}

/// Parses FASTA text into raw records.
///
/// # Errors
///
/// Returns [`FastaError`] on data before the first header or an empty
/// record.
///
/// # Example
///
/// ```
/// use dphls_seq::fasta::parse;
/// let recs = parse(">seq1 test\nACGT\nACGT\n>seq2\nTTTT\n")?;
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[0].id, "seq1");
/// assert_eq!(recs[0].sequence, "ACGTACGT");
/// # Ok::<(), dphls_seq::fasta::FastaError>(())
/// ```
pub fn parse(text: &str) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts.next().unwrap_or("").trim().to_string();
            records.push(FastaRecord {
                id,
                description,
                sequence: String::new(),
            });
        } else {
            let Some(rec) = records.last_mut() else {
                return Err(FastaError::MissingHeader { line: lineno + 1 });
            };
            rec.sequence
                .extend(line.chars().filter(|c| !c.is_whitespace()));
        }
    }
    for rec in &records {
        if rec.sequence.is_empty() {
            return Err(FastaError::EmptyRecord { id: rec.id.clone() });
        }
    }
    Ok(records)
}

/// Parses FASTA text into named DNA sequences.
///
/// # Errors
///
/// Returns [`FastaError`] on malformed records or non-ACGTU characters.
pub fn parse_dna(text: &str) -> Result<Vec<(String, DnaSeq)>, FastaError> {
    parse(text)?
        .into_iter()
        .map(|rec| {
            let seq: Result<Vec<Base>, FastaError> = rec
                .sequence
                .chars()
                .map(|c| {
                    Base::from_char(c).ok_or(FastaError::BadSymbol {
                        id: rec.id.clone(),
                        symbol: c,
                    })
                })
                .collect();
            Ok((rec.id, Sequence::new(seq?)))
        })
        .collect()
}

/// Parses FASTA text into named protein sequences.
///
/// # Errors
///
/// Returns [`FastaError`] on malformed records or non-amino-acid characters.
pub fn parse_protein(text: &str) -> Result<Vec<(String, ProteinSeq)>, FastaError> {
    parse(text)?
        .into_iter()
        .map(|rec| {
            let seq: Result<Vec<AminoAcid>, FastaError> = rec
                .sequence
                .chars()
                .map(|c| {
                    AminoAcid::from_char(c).ok_or(FastaError::BadSymbol {
                        id: rec.id.clone(),
                        symbol: c,
                    })
                })
                .collect();
            Ok((rec.id, Sequence::new(seq?)))
        })
        .collect()
}

/// Writes records as FASTA with lines wrapped at `width` characters.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn write_dna<'a>(
    records: impl IntoIterator<Item = (&'a str, &'a DnaSeq)>,
    width: usize,
) -> String {
    assert!(width > 0, "wrap width must be non-zero");
    let mut out = String::new();
    for (id, seq) in records {
        out.push('>');
        out.push_str(id);
        out.push('\n');
        let text = seq.to_string();
        for chunk in text.as_bytes().chunks(width) {
            out.push_str(std::str::from_utf8(chunk).expect("ASCII"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_record_with_wrapping() {
        let recs = parse(">a first\nACGT\nacgt\n\n>b\nTT TT\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "a");
        assert_eq!(recs[0].description, "first");
        assert_eq!(recs[0].sequence, "ACGTacgt");
        assert_eq!(recs[1].sequence, "TTTT");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let recs = parse("; comment\n>x\nAC\n; mid comment\nGT\n").unwrap();
        assert_eq!(recs[0].sequence, "ACGT");
    }

    #[test]
    fn data_before_header_errors() {
        let err = parse("ACGT\n>x\nAC\n").unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_record_errors() {
        let err = parse(">x\n>y\nACGT\n").unwrap_err();
        assert!(matches!(err, FastaError::EmptyRecord { .. }));
    }

    #[test]
    fn dna_parse_and_roundtrip() {
        let named = parse_dna(">r1\nACGTACGTAC\n").unwrap();
        assert_eq!(named[0].1.len(), 10);
        let text = write_dna(named.iter().map(|(n, s)| (n.as_str(), s)), 4);
        assert_eq!(text, ">r1\nACGT\nACGT\nAC\n");
        let back = parse_dna(&text).unwrap();
        assert_eq!(back, named);
    }

    #[test]
    fn dna_rejects_ambiguity_codes() {
        let err = parse_dna(">r\nACGNT\n").unwrap_err();
        assert!(matches!(err, FastaError::BadSymbol { symbol: 'N', .. }));
    }

    #[test]
    fn protein_parse() {
        let named = parse_protein(">p\nMKWVTF\n").unwrap();
        assert_eq!(named[0].1.to_string(), "MKWVTF");
        assert!(parse_protein(">p\nMKB\n").is_err()); // B not standard
    }

    #[test]
    fn generator_output_roundtrips_through_fasta() {
        let g = crate::gen::GenomeGenerator::new(3).generate(200);
        let text = write_dna([("genome", &g)], 60);
        let back = parse_dna(&text).unwrap();
        assert_eq!(back[0].1, g);
    }
}
