//! Synthetic reference genome generation (GRCh38 stand-in).
//!
//! The paper simulates PacBio reads from the human reference genome; the
//! evaluation only depends on the reads' length and error statistics, so a
//! synthetic genome with a configurable GC content and short tandem repeats
//! (to keep alignments non-trivial) preserves the relevant behaviour.

use crate::{Base, DnaSeq};
use dphls_util::Xoshiro256;

/// Generates a random reference genome.
///
/// # Example
///
/// ```
/// use dphls_seq::gen::GenomeGenerator;
/// let genome = GenomeGenerator::new(7).gc_content(0.41).generate(10_000);
/// assert_eq!(genome.len(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct GenomeGenerator {
    rng: Xoshiro256,
    gc: f64,
    repeat_prob: f64,
    repeat_len: usize,
}

impl GenomeGenerator {
    /// Creates a generator with human-like defaults (41 % GC, sparse repeats).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256::seed_from_u64(seed),
            gc: 0.41,
            repeat_prob: 0.002,
            repeat_len: 24,
        }
    }

    /// Sets the GC content in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `gc` is outside `[0, 1]`.
    pub fn gc_content(mut self, gc: f64) -> Self {
        assert!((0.0..=1.0).contains(&gc), "gc content must be in [0,1]");
        self.gc = gc;
        self
    }

    /// Sets the per-position probability of starting a tandem repeat and the
    /// repeat length.
    pub fn repeats(mut self, prob: f64, len: usize) -> Self {
        self.repeat_prob = prob;
        self.repeat_len = len;
        self
    }

    /// Generates a genome of exactly `len` bases.
    pub fn generate(&mut self, len: usize) -> DnaSeq {
        let mut out: Vec<Base> = Vec::with_capacity(len);
        while out.len() < len {
            if !out.is_empty() && self.rng.next_bool(self.repeat_prob) {
                // Copy a recent window to create a tandem repeat.
                let rl = self.repeat_len.min(out.len());
                let start = out.len() - rl;
                for i in 0..rl {
                    if out.len() >= len {
                        break;
                    }
                    let b = out[start + i];
                    out.push(b);
                }
            } else {
                out.push(self.random_base());
            }
        }
        out.truncate(len);
        DnaSeq::new(out)
    }

    fn random_base(&mut self) -> Base {
        let gc = self.rng.next_bool(self.gc);
        if gc {
            if self.rng.next_bool(0.5) {
                Base::G
            } else {
                Base::C
            }
        } else if self.rng.next_bool(0.5) {
            Base::A
        } else {
            Base::T
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length() {
        for len in [0, 1, 100, 4096] {
            assert_eq!(GenomeGenerator::new(1).generate(len).len(), len);
        }
    }

    #[test]
    fn gc_content_is_respected() {
        let g = GenomeGenerator::new(2)
            .gc_content(0.8)
            .repeats(0.0, 0)
            .generate(20_000);
        let gc =
            g.iter().filter(|&&b| b == Base::G || b == Base::C).count() as f64 / g.len() as f64;
        assert!((gc - 0.8).abs() < 0.02, "observed gc {gc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GenomeGenerator::new(9).generate(500);
        let b = GenomeGenerator::new(9).generate(500);
        assert_eq!(a, b);
        let c = GenomeGenerator::new(10).generate(500);
        assert_ne!(a, c);
    }

    #[test]
    fn repeats_create_self_similarity() {
        let g = GenomeGenerator::new(3).repeats(0.05, 16).generate(5000);
        // Count positions equal to the base 16 earlier; repeats push this
        // well above the 25% random baseline.
        let hits =
            (16..g.len()).filter(|&i| g[i] == g[i - 16]).count() as f64 / (g.len() - 16) as f64;
        assert!(hits > 0.3, "self-similarity {hits}");
    }

    #[test]
    #[should_panic(expected = "[0,1]")]
    fn bad_gc_panics() {
        GenomeGenerator::new(0).gc_content(1.5);
    }
}
