//! Synthetic dataset generators replacing the paper's external data sources
//! (§6.1). Every generator is seeded and deterministic.

mod genome;
mod profile;
mod protein;
mod reads;
mod signal;

pub use genome::GenomeGenerator;
pub use profile::ProfileBuilder;
pub use protein::ProteinSampler;
pub use reads::{ErrorModel, ReadSimulator, SimulatedRead};
pub use signal::{ComplexSignalGenerator, SquiggleSimulator};
